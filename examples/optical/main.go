// Optical-switch scenario: pick a deflection policy for a bufferless
// optical label-switching fabric.
//
// The report's motivation is optical networks, where packets cannot be
// buffered without converting them to electronics: every packet must leave
// on some link every step, and the routing decision must be simple enough
// for label-switching hardware. This example compares the paper's
// algorithm against the baseline deflection policies on a 16×16 fabric at
// two operating points — a half-loaded switch and a fully saturated one —
// and reports the metrics an optical-switch designer would look at:
// delivery latency, path stretch, deflection rate, and injection backlog.
//
//	go run ./examples/optical
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/hotpotato"
	"repro/internal/routing"
	"repro/internal/stats"
	"repro/internal/traffic"
)

func main() {
	const n = 16
	// Part 1: policy choice at two operating points under uniform traffic.
	for _, load := range []float64{50, 100} {
		table := stats.Table{
			Title: fmt.Sprintf("16x16 optical fabric, %.0f%% of ports injecting, 150 steps", load),
			Header: []string{"policy", "avg latency", "stretch", "deflection rate",
				"avg inject wait", "backlog"},
		}
		for _, name := range routing.Names() {
			policy, err := routing.ByName(name)
			if err != nil {
				log.Fatal(err)
			}
			cfg := hotpotato.DefaultConfig(n)
			cfg.Policy = policy
			cfg.InjectorPercent = load
			cfg.Steps = 150
			cfg.Seed = 7

			sim, model, err := hotpotato.Build(cfg)
			if err != nil {
				log.Fatal(err)
			}
			if _, err := sim.Run(); err != nil {
				log.Fatal(err)
			}
			t := model.Totals(sim)
			table.AddRow(name,
				stats.FormatNumber(t.AvgDelivery),
				fmt.Sprintf("%.3f", t.Stretch),
				fmt.Sprintf("%.2f%%", 100*t.DeflectionRate),
				stats.FormatNumber(t.AvgWait),
				fmt.Sprintf("%d", t.StillQueued))
		}
		if err := table.Render(os.Stdout); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}
	// Part 2: how the chosen algorithm behaves under the traffic the
	// fabric will actually see — permutations and hotspots, not just
	// uniform random.
	table := stats.Table{
		Title:  "Paper's algorithm under the synthetic traffic suite (100% load, 150 steps)",
		Header: []string{"traffic", "avg latency", "stretch", "deflection rate", "backlog"},
	}
	for _, name := range traffic.Names() {
		pattern, err := traffic.ByName(name)
		if err != nil {
			log.Fatal(err)
		}
		cfg := hotpotato.DefaultConfig(n)
		cfg.Traffic = pattern
		cfg.Steps = 150
		cfg.Seed = 7
		sim, model, err := hotpotato.Build(cfg)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := sim.Run(); err != nil {
			log.Fatal(err)
		}
		t := model.Totals(sim)
		table.AddRow(name,
			stats.FormatNumber(t.AvgDelivery),
			fmt.Sprintf("%.3f", t.Stretch),
			fmt.Sprintf("%.2f%%", 100*t.DeflectionRate),
			fmt.Sprintf("%d", t.StillQueued))
	}
	if err := table.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Println("Latency is end-to-end steps; stretch is hops over shortest distance;")
	fmt.Println("backlog is packets still waiting at the injectors when the run ends.")
}
