// Quickstart: simulate hot-potato routing on a 16×16 bufferless torus for
// 100 synchronous steps and print the network statistics.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/hotpotato"
)

func main() {
	// The default configuration is the report's standard scenario: every
	// router injects one packet per step, the network starts full (four
	// packets per router), and the Busch–Herlihy–Wattenhofer algorithm
	// routes them.
	cfg := hotpotato.DefaultConfig(16)
	cfg.Steps = 100
	cfg.Seed = 42

	sim, model, err := hotpotato.Build(cfg)
	if err != nil {
		log.Fatal(err)
	}
	kernelStats, err := sim.Run()
	if err != nil {
		log.Fatal(err)
	}

	totals := model.Totals(sim)
	fmt.Println("hot-potato routing on a 16x16 torus, 100 steps")
	fmt.Print(totals)
	fmt.Printf("\nsimulated %d events at %.0f events/s on %d PEs\n",
		kernelStats.Committed, kernelStats.EventRate, kernelStats.NumPEs)
}
