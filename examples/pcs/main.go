// PCS example: size the channel count of a cellular network.
//
// The report's simulation methodology descends from the PCS (Personal
// Communication Service) studies on Georgia Tech Time Warp and ROSS; this
// example runs the bundled PCS model — cells with finite radio channels,
// Poisson call arrivals, mid-call handoffs — across a range of channel
// counts and shows the Erlang-style blocking/dropping trade-off.
//
//	go run ./examples/pcs
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/pcs"
	"repro/internal/stats"
)

func main() {
	table := stats.Table{
		Title:  "16x16-cell PCS network, mean call 3 min, handoff every 6 min, 480 simulated minutes",
		Header: []string{"channels/cell", "calls", "P(block)", "P(drop)", "handoffs", "completed"},
	}
	for _, channels := range []int{4, 6, 8, 10, 14} {
		cfg := pcs.Config{
			N:                16,
			Channels:         channels,
			MeanInterarrival: 0.75, // ~1.33 calls/min/cell: a loaded network
			MeanCallDuration: 3,
			MeanMoveTime:     6,
			EndTime:          480,
			Seed:             11,
		}
		sim, model, err := pcs.Build(cfg)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := sim.Run(); err != nil {
			log.Fatal(err)
		}
		t := model.Totals(sim)
		table.AddRow(
			fmt.Sprintf("%d", channels),
			fmt.Sprintf("%d", t.Arrivals),
			fmt.Sprintf("%.4f", t.BlockProb),
			fmt.Sprintf("%.4f", t.DropProb),
			fmt.Sprintf("%d", t.Handoffs),
			fmt.Sprintf("%d", t.Completed))
	}
	if err := table.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nMore channels per cell buy lower blocking and dropping probabilities;")
	fmt.Println("the knee of the curve is where extra spectrum stops paying for itself.")
}
