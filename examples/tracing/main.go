// Tracing demo: follow individual packets through the optimistic
// simulation, safely.
//
// Printing from Forward is misleading under Time Warp — the handler runs
// speculatively and may be rolled back, so naive logs contain events that
// never (finally) happened. The trace package records events at commit
// time instead, and sorts the dump into the deterministic event order, so
// the parallel run's trace below is byte-identical to what a sequential
// run would log.
//
//	go run ./examples/tracing
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/hotpotato"
	"repro/internal/trace"
)

func main() {
	cfg := hotpotato.DefaultConfig(4) // tiny fabric so the trace is readable
	cfg.InjectorPercent = 0           // static drain: just the initial fill
	cfg.InitialFill = 1
	cfg.Steps = 30
	cfg.Seed = 3
	cfg.NumPEs = 2

	sim, model, err := hotpotato.Build(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Wrap every router's handler; describe deliveries and routing hops.
	rec := trace.NewRecorder(0)
	describe := func(lp *core.LP, ev *core.Event) string {
		msg, ok := ev.Data.(*hotpotato.Msg)
		if !ok || msg == nil {
			return "?"
		}
		switch msg.Kind {
		case hotpotato.KindArrive:
			if msg.P.Dst == lp.ID {
				return fmt.Sprintf("DELIVERED %d->%d after %d hops (%s)",
					msg.P.Src, msg.P.Dst, msg.P.Hops, msg.P.Prio)
			}
			return fmt.Sprintf("arrive    %d->%d hop %d (%s)", msg.P.Src, msg.P.Dst, msg.P.Hops, msg.P.Prio)
		case hotpotato.KindRoute:
			return fmt.Sprintf("route     %d->%d", msg.P.Src, msg.P.Dst)
		default:
			return msg.Kind.String()
		}
	}
	sim.ForEachLP(func(lp *core.LP) {
		lp.Handler = trace.Wrap(lp.Handler, rec, describe)
	})

	ks, err := sim.Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("4x4 torus static drain: %d events committed on %d PEs (%d rolled back)\n\n",
		ks.Committed, ks.NumPEs, ks.RolledBackEvents)
	if err := rec.Dump(os.Stdout); err != nil {
		log.Fatal(err)
	}
	totals := model.Totals(sim)
	fmt.Printf("\n%d packets delivered, avg %.2f steps\n", totals.Delivered, totals.AvgDelivery)
}
