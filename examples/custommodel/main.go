// Custom-model tutorial: how to write your own simulation on the Time
// Warp kernel.
//
// The model here is a ring of N stations passing a token with a random
// per-hop latency; each station counts its token sightings. It shows the
// three things every gotw model implements:
//
//  1. Forward  — mutate LP state, draw randomness through the LP, send
//     events with positive delays, and save whatever you overwrite into
//     your own message struct;
//
//  2. Reverse  — restore exactly what Forward changed (the kernel undoes
//     sends, random draws and the send sequence for you);
//
//  3. setup    — install handlers/state through the Host interface and
//     schedule bootstrap events, so the same code runs on the sequential
//     engine and the parallel kernel.
//
//     go run ./examples/custommodel
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
)

// station is the per-LP state.
type station struct {
	Sightings int64
	LastSeen  core.Time
}

// tokenMsg is the message payload; PrevSeen is the reverse-computation
// save slot for the LastSeen field Forward overwrites.
type tokenMsg struct {
	HopsLeft int
	PrevSeen core.Time
}

// ring is the model: a handler shared by every LP.
type ring struct {
	size int64
}

// Forward counts the sighting and passes the token to the next station
// with a random latency, until its hop budget runs out.
func (r ring) Forward(lp *core.LP, ev *core.Event) {
	st := lp.State.(*station)
	msg := ev.Data.(*tokenMsg)

	msg.PrevSeen = st.LastSeen // save before overwrite
	st.Sightings++
	st.LastSeen = ev.RecvTime()

	if msg.HopsLeft > 0 {
		next := core.LPID((int64(lp.ID) + 1) % r.size)
		latency := core.Time(0.1 + lp.RandExp(0.9))
		lp.Send(next, latency, &tokenMsg{HopsLeft: msg.HopsLeft - 1})
	}
}

// Reverse restores the two fields Forward changed. The send, the random
// draw and the send-sequence counter are rolled back by the kernel.
func (r ring) Reverse(lp *core.LP, ev *core.Event) {
	st := lp.State.(*station)
	msg := ev.Data.(*tokenMsg)
	st.Sightings--
	st.LastSeen = msg.PrevSeen
}

// setup installs the model on either engine.
func setup(h core.Host, size int64, tokens int) {
	h.ForEachLP(func(lp *core.LP) {
		lp.Handler = ring{size: size}
		lp.State = &station{}
	})
	for i := 0; i < tokens; i++ {
		// Start each token at a different station, at staggered times so
		// no two bootstrap events tie.
		h.Schedule(core.LPID(i), core.Time(float64(i+1))*0.001, &tokenMsg{HopsLeft: 5000})
	}
}

func main() {
	const size = 64
	const tokens = 8

	// Parallel run.
	sim, err := core.New(core.Config{NumLPs: size, NumPEs: 4, EndTime: 1000, Seed: 9})
	if err != nil {
		log.Fatal(err)
	}
	setup(sim, size, tokens)
	ks, err := sim.Run()
	if err != nil {
		log.Fatal(err)
	}

	// Sequential reference with the same seed.
	seq, err := core.NewSequential(core.Config{NumLPs: size, EndTime: 1000, Seed: 9})
	if err != nil {
		log.Fatal(err)
	}
	setup(seq, size, tokens)
	if _, err := seq.Run(); err != nil {
		log.Fatal(err)
	}

	var parTotal, seqTotal int64
	mismatches := 0
	for i := 0; i < size; i++ {
		p := sim.LP(core.LPID(i)).State.(*station)
		s := seq.LP(core.LPID(i)).State.(*station)
		parTotal += p.Sightings
		seqTotal += s.Sightings
		if *p != *s {
			mismatches++
		}
	}
	fmt.Printf("ring of %d stations, %d tokens: %d sightings (parallel) / %d (sequential)\n",
		size, tokens, parTotal, seqTotal)
	fmt.Printf("kernel: %d committed, %d rolled back, %.0f events/s on %d PEs\n",
		ks.Committed, ks.RolledBackEvents, ks.EventRate, ks.NumPEs)
	if mismatches == 0 {
		fmt.Println("station states identical across engines — reverse computation is exact")
	} else {
		fmt.Printf("%d stations differ — reverse computation bug!\n", mismatches)
	}
}
