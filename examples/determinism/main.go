// Determinism demo (the report's Attachment 3): run the same hot-potato
// configuration on the sequential engine and on the optimistic parallel
// kernel, and show that every statistic matches exactly.
//
// The report's argument (§4.2.1): an optimistic simulator executes events
// out of order and rolls back, so the only way its results can equal the
// sequential run is if the synchronization is airtight and simultaneous
// events are fully ordered — which the per-packet jitter randomisation
// plus the kernel's total event order guarantee.
//
//	go run ./examples/determinism
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/hotpotato"
)

func main() {
	cfg := hotpotato.DefaultConfig(16)
	cfg.Steps = 100
	cfg.Seed = 2002 // the report's year

	seq, seqModel, err := hotpotato.BuildSequential(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := seq.Run(); err != nil {
		log.Fatal(err)
	}
	seqTotals := seqModel.Totals(seq)

	pcfg := cfg
	pcfg.NumPEs = 4
	pcfg.NumKPs = 64
	pcfg.BatchSize = 8 // small batches provoke more optimism and rollbacks
	pcfg.GVTInterval = 4
	sim, parModel, err := hotpotato.Build(pcfg)
	if err != nil {
		log.Fatal(err)
	}
	ks, err := sim.Run()
	if err != nil {
		log.Fatal(err)
	}
	parTotals := parModel.Totals(sim)

	// Third engine: the conservative window-synchronous executor.
	ccfg := cfg
	ccfg.NumPEs = 4
	cons, consModel, err := hotpotato.BuildConservative(ccfg)
	if err != nil {
		log.Fatal(err)
	}
	cks, err := cons.Run()
	if err != nil {
		log.Fatal(err)
	}
	consTotals := consModel.Totals(cons)

	fmt.Println("sequential engine:")
	fmt.Print(seqTotals)
	fmt.Printf("\nparallel Time Warp (%d PEs, %d KPs, %d events rolled back):\n",
		ks.NumPEs, ks.NumKPs, ks.RolledBackEvents)
	fmt.Print(parTotals)
	fmt.Printf("\nconservative engine (%d PEs, %d windows):\n", cks.NumPEs, cks.GVTRounds)
	fmt.Print(consTotals)

	if seqTotals == parTotals && seqTotals == consTotals {
		fmt.Println("\nRESULT: every statistic identical across all three engines —")
		fmt.Println("the model is deterministic and repeatable, despite optimistic")
		fmt.Println("execution with rollbacks on one engine and windowed barriers on another.")
		return
	}
	fmt.Println("\nRESULT: MISMATCH — this should never happen; please file a bug.")
	os.Exit(1)
}
