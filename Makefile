# Developer entry points; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test race cover bench bench-all simcheck simlint soak lint check figures figures-full examples clean

all: build test

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test ./... -race -timeout 15m

# Differential smoke matrix: all models under all engines, clean and
# fault-injected, compared against the sequential reference (seconds).
simcheck:
	$(GO) run ./cmd/simcheck

# Build the simlint multichecker once (CI caches the binary).
bin/simlint: $(shell find internal/analysis cmd/simlint -name '*.go' -not -path '*/testdata/*')
	@mkdir -p bin
	$(GO) build -o bin/simlint ./cmd/simlint

simlint: bin/simlint
	./bin/simlint ./...

# Randomized soak/chaos run: seeded episode schedule composing the kernel
# fault injectors with live invariant sweeps and the memory valve, failing
# episodes auto-shrunk to .replay artifacts (docs/TESTING.md, "Soaking").
# Defaults match the per-PR CI smoke soak; the nightly run uses a rotating
# seed and a 20-minute budget.
SOAK_SEED ?= 7
SOAK_WALL ?= 90s
soak:
	$(GO) run ./cmd/soaktest -seed $(SOAK_SEED) -wall $(SOAK_WALL) -artifacts soak-artifacts

# Static analysis: gofmt, go vet, and the simlint Time Warp contract
# checkers (docs/ANALYSIS.md). Fails on any unannotated finding.
# (staticcheck would slot in here, but the build environment is offline;
# vet + simlint are the self-contained equivalent.)
lint: simlint
	$(GO) vet ./...
	@fmt_out=$$(gofmt -l . 2>/dev/null); \
	if [ -n "$$fmt_out" ]; then \
	  echo "gofmt needed on:"; echo "$$fmt_out"; exit 1; \
	fi

# Everything a PR must pass: vet, lint, tests, race tests, differential
# matrix.
check: build lint test race simcheck

cover:
	$(GO) test ./internal/... -cover

# Figure benchmarks with allocation accounting, captured as a machine-
# readable trajectory (format documented in EXPERIMENTS.md). The baseline
# is the committed PR5 result set: the memory valve sits on the scheduler
# hot path (one gauge increment per executed event plus one budget test
# per pass when disarmed), so the gates hold the valve-disabled kernel to
# PR5 speed and allocation counts. ns/op gates are generous because
# benchtime=1x wall-clock numbers carry ~8% noise and the baseline was
# captured on one particular host; the allocs gates are
# hardware-independent.
bench:
	$(GO) test -run '^$$' -bench=. -benchtime=1x -benchmem . \
	  | $(GO) run ./cmd/benchjson \
	      -label "PR6 memory valve (disabled) vs PR5" \
	      -baseline BENCH_PR5.json \
	      -check 'KernelPHOLD/pe1:ns/op<=1.2*baseline' \
	      -check 'KernelPHOLD/pe4:ns/op<=1.2*baseline' \
	      -check 'KernelPHOLD/pe1:allocs/op<=1.05*baseline' \
	      -check 'KernelPHOLD/pe4:allocs/op<=1.05*baseline' \
	      -check 'KernelTorusComms/pe4:ns/op<=1.2*baseline' \
	      -check 'KernelTorusComms/pe4:allocs/op<=1.05*baseline' \
	      -out BENCH_PR6.json
	@echo wrote BENCH_PR6.json

# Every benchmark in every package, human-readable.
bench-all:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every report figure at quick scale (minutes).
figures:
	$(GO) run ./cmd/figures -fig all

# Report-scale sweeps: N up to 256 — hours of CPU and lots of memory.
figures-full:
	$(GO) run ./cmd/figures -fig all -full

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/optical
	$(GO) run ./examples/pcs
	$(GO) run ./examples/determinism
	$(GO) run ./examples/custommodel
	$(GO) run ./examples/tracing

clean:
	$(GO) clean ./...
