# Developer entry points; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test race cover bench bench-all simcheck simlint soak lint check figures figures-full examples clean

all: build test

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test ./... -race -timeout 15m

# Differential smoke matrix: all models under all engines, clean and
# fault-injected, compared against the sequential reference (seconds).
simcheck:
	$(GO) run ./cmd/simcheck

# Build the simlint multichecker once (CI caches the binary).
bin/simlint: $(shell find internal/analysis cmd/simlint -name '*.go' -not -path '*/testdata/*')
	@mkdir -p bin
	$(GO) build -o bin/simlint ./cmd/simlint

# LINT_FORMAT=json emits machine-readable finding records (waived ones
# included) for CI annotation; the default text output prints only the
# unwaived findings a human must act on. Exit status is identical.
LINT_FORMAT ?= text
simlint: bin/simlint
	./bin/simlint -format $(LINT_FORMAT) ./...

# Randomized soak/chaos run: seeded episode schedule composing the kernel
# fault injectors with live invariant sweeps and the memory valve, failing
# episodes auto-shrunk to .replay artifacts (docs/TESTING.md, "Soaking").
# Defaults match the per-PR CI smoke soak; the nightly run uses a rotating
# seed and a 20-minute budget.
SOAK_SEED ?= 7
SOAK_WALL ?= 90s
soak:
	$(GO) run ./cmd/soaktest -seed $(SOAK_SEED) -wall $(SOAK_WALL) -artifacts soak-artifacts

# Static analysis: gofmt, go vet, and the simlint Time Warp contract
# checkers (docs/ANALYSIS.md). Fails on any unannotated finding.
# (staticcheck would slot in here, but the build environment is offline;
# vet + simlint are the self-contained equivalent.)
lint: simlint
	$(GO) vet ./...
	@fmt_out=$$(gofmt -l . 2>/dev/null); \
	if [ -n "$$fmt_out" ]; then \
	  echo "gofmt needed on:"; echo "$$fmt_out"; exit 1; \
	fi

# Everything a PR must pass: vet, lint, tests, race tests, differential
# matrix.
check: build lint test race simcheck

cover:
	$(GO) test ./internal/... -cover

# Figure benchmarks with allocation accounting, captured as a machine-
# readable trajectory (format documented in EXPERIMENTS.md). The baseline
# is the committed PR6 result set (barrier GVT): the default engine is now
# the asynchronous token GVT, which is structurally disadvantaged on a
# single core — there is no idle processor for the non-blocking rounds to
# exploit, while barrier lockstep costs almost nothing there — so the
# gates hold async mode to 1-core parity (see EXPERIMENTS.md for the
# multi-core expectation). ns/op gates are generous, and each benchmark
# runs three times with benchjson -best keeping the fastest sample:
# wall-clock noise on a shared host is one-sided (interference only slows
# a run) and was measured swinging 2-3x between samples, far past any
# honest gate factor. The allocs gates are hardware-independent and also
# police the speculation quota (unthrottled async speculation would blow
# the event pool past its barrier-mode footprint).
# The queue microbenchmark gates are absolute (speedup is splay's best
# hold round over the ladder's within one sample, so the ratio is immune
# to host-wide slowdowns): the ladder must beat the splay tree on the
# mostly-increasing pattern at both gated populations. The ladder's
# zero-steady-state-allocation property is gated by
# TestLadderSteadyStateAllocs instead — benchjson treats a 0-valued field
# as absent, so allocs/op == 0 cannot be asserted here.
bench:
	$(GO) test -run '^$$' -bench=. -benchtime=1x -count=3 -benchmem . ./internal/eventq \
	  | $(GO) run ./cmd/benchjson -best \
	      -label "PR8 ladder queue (default) vs PR7 splay" \
	      -baseline BENCH_PR7.json \
	      -check 'KernelPHOLD/pe1:ns/op<=1.2*baseline' \
	      -check 'KernelPHOLD/pe4:ns/op<=1.2*baseline' \
	      -check 'KernelPHOLD/pe1:allocs/op<=1.05*baseline' \
	      -check 'KernelPHOLD/pe4:allocs/op<=1.05*baseline' \
	      -check 'KernelTorusComms/pe4:ns/op<=1.2*baseline' \
	      -check 'KernelTorusComms/pe4:allocs/op<=1.05*baseline' \
	      -check 'QueueLadderVsSplay/n=100000:speedup>=1.0' \
	      -check 'QueueLadderVsSplay/n=1000000:speedup>=1.0' \
	      -out BENCH_PR8.json
	@echo wrote BENCH_PR8.json

# Every benchmark in every package, human-readable.
bench-all:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every report figure at quick scale (minutes).
figures:
	$(GO) run ./cmd/figures -fig all

# Report-scale sweeps: N up to 256 — hours of CPU and lots of memory.
figures-full:
	$(GO) run ./cmd/figures -fig all -full

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/optical
	$(GO) run ./examples/pcs
	$(GO) run ./examples/determinism
	$(GO) run ./examples/custommodel
	$(GO) run ./examples/tracing

clean:
	$(GO) clean ./...
