# Developer entry points; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test race cover bench bench-all simcheck check figures figures-full examples clean

all: build test

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test ./... -race -timeout 15m

# Differential smoke matrix: all models under all engines, clean and
# fault-injected, compared against the sequential reference (seconds).
simcheck:
	$(GO) run ./cmd/simcheck

# Everything a PR must pass: vet, tests, race tests, differential matrix.
check: build test race simcheck

cover:
	$(GO) test ./internal/... -cover

# Figure benchmarks with allocation accounting, captured as a machine-
# readable trajectory (BENCH_PR2.json embeds the committed baseline so
# before/after travel together; format documented in EXPERIMENTS.md). The
# check fails the target if the pooled event lifecycle regresses to more
# than half the seed's allocations per run.
bench:
	$(GO) test -run '^$$' -bench=. -benchtime=1x -benchmem . \
	  | $(GO) run ./cmd/benchjson \
	      -label "PR2 recycled event lifecycle" \
	      -baseline BENCH_BASELINE.json \
	      -check 'KernelPHOLD/pe4:allocs/op<=0.5*baseline' \
	      -check 'KernelPHOLD/pe1:allocs/op<=0.5*baseline' \
	      -out BENCH_PR2.json
	@echo wrote BENCH_PR2.json

# Every benchmark in every package, human-readable.
bench-all:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every report figure at quick scale (minutes).
figures:
	$(GO) run ./cmd/figures -fig all

# Report-scale sweeps: N up to 256 — hours of CPU and lots of memory.
figures-full:
	$(GO) run ./cmd/figures -fig all -full

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/optical
	$(GO) run ./examples/pcs
	$(GO) run ./examples/determinism
	$(GO) run ./examples/custommodel
	$(GO) run ./examples/tracing

clean:
	$(GO) clean ./...
