# Developer entry points; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test race cover bench bench-all simcheck simlint soak crashtest lint check figures figures-full examples clean

all: build test

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test ./... -race -timeout 15m

# Differential smoke matrix: all models under all engines, clean and
# fault-injected, compared against the sequential reference (seconds).
simcheck:
	$(GO) run ./cmd/simcheck

# Build the simlint multichecker once (CI caches the binary).
bin/simlint: $(shell find internal/analysis cmd/simlint -name '*.go' -not -path '*/testdata/*')
	@mkdir -p bin
	$(GO) build -o bin/simlint ./cmd/simlint

# LINT_FORMAT=json emits machine-readable finding records (waived ones
# included) for CI annotation; the default text output prints only the
# unwaived findings a human must act on. Exit status is identical.
LINT_FORMAT ?= text
simlint: bin/simlint
	./bin/simlint -format $(LINT_FORMAT) ./...

# Randomized soak/chaos run: seeded episode schedule composing the kernel
# fault injectors with live invariant sweeps and the memory valve, failing
# episodes auto-shrunk to .replay artifacts (docs/TESTING.md, "Soaking").
# Defaults match the per-PR CI smoke soak; the nightly run uses a rotating
# seed and a 20-minute budget.
SOAK_SEED ?= 7
SOAK_WALL ?= 90s
soak:
	$(GO) run ./cmd/soaktest -seed $(SOAK_SEED) -wall $(SOAK_WALL) -artifacts soak-artifacts

# Crash-recovery smoke: build a crashpoints-tagged child (with -race),
# SIGKILL it at every registered kill point inside checkpoint publication,
# and require each resumed run to reproduce the uninterrupted recording
# bit-for-bit (docs/TESTING.md, "Crash testing"). The nightly CI job runs
# the randomized variant (-iters) with a rotating seed.
crashtest:
	$(GO) run ./cmd/crashtest -race -artifacts crash-artifacts

# Static analysis: gofmt, go vet, and the simlint Time Warp contract
# checkers (docs/ANALYSIS.md). Fails on any unannotated finding.
# (staticcheck would slot in here, but the build environment is offline;
# vet + simlint are the self-contained equivalent.)
lint: simlint
	$(GO) vet ./...
	@fmt_out=$$(gofmt -l . 2>/dev/null); \
	if [ -n "$$fmt_out" ]; then \
	  echo "gofmt needed on:"; echo "$$fmt_out"; exit 1; \
	fi

# Everything a PR must pass: vet, lint, tests, race tests, differential
# matrix, crash-recovery sweep.
check: build lint test race simcheck crashtest

cover:
	$(GO) test ./internal/... -cover

# Figure benchmarks with allocation accounting, captured as a machine-
# readable trajectory (format documented in EXPERIMENTS.md). The baseline
# is the committed PR8 result set (ladder queue default). This PR's story
# is that checkpointing *disabled* is perf-neutral: with no sink armed the
# kernel's checkpoint hook is one nil test per GVT round and the crash
# kill points compile to no-ops without the crashpoints tag — so the
# ns/op and allocs/op gates are held to 1.05x of the PR8 baseline, far
# tighter than the cross-structure PR8 gates. Each benchmark still runs
# three times with benchjson -best keeping the fastest sample: wall-clock
# noise on a shared host is one-sided (interference only slows a run), so
# best-of-three is what makes a 1.05x wall-clock gate honest.
# The queue microbenchmark gates are absolute (speedup is splay's best
# hold round over the ladder's within one sample, so the ratio is immune
# to host-wide slowdowns): the ladder must beat the splay tree on the
# mostly-increasing pattern at both gated populations. The ladder's
# zero-steady-state-allocation property is gated by
# TestLadderSteadyStateAllocs instead — benchjson treats a 0-valued field
# as absent, so allocs/op == 0 cannot be asserted here.
bench:
	$(GO) test -run '^$$' -bench=. -benchtime=1x -count=3 -benchmem . ./internal/eventq \
	  | $(GO) run ./cmd/benchjson -best \
	      -label "PR10 checkpointing disarmed vs PR8" \
	      -baseline BENCH_PR8.json \
	      -check 'KernelPHOLD/pe1:ns/op<=1.05*baseline' \
	      -check 'KernelPHOLD/pe4:ns/op<=1.05*baseline' \
	      -check 'KernelPHOLD/pe1:allocs/op<=1.05*baseline' \
	      -check 'KernelPHOLD/pe4:allocs/op<=1.05*baseline' \
	      -check 'KernelTorusComms/pe4:ns/op<=1.05*baseline' \
	      -check 'KernelTorusComms/pe4:allocs/op<=1.05*baseline' \
	      -check 'QueueLadderVsSplay/n=100000:speedup>=1.0' \
	      -check 'QueueLadderVsSplay/n=1000000:speedup>=1.0' \
	      -out BENCH_PR10.json
	@echo wrote BENCH_PR10.json

# Every benchmark in every package, human-readable.
bench-all:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every report figure at quick scale (minutes).
figures:
	$(GO) run ./cmd/figures -fig all

# Report-scale sweeps: N up to 256 — hours of CPU and lots of memory.
figures-full:
	$(GO) run ./cmd/figures -fig all -full

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/optical
	$(GO) run ./examples/pcs
	$(GO) run ./examples/determinism
	$(GO) run ./examples/custommodel
	$(GO) run ./examples/tracing

clean:
	$(GO) clean ./...
