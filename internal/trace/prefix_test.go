package trace

import (
	"testing"

	"repro/internal/core"
)

// TestPrefixHashesMatchManualPrefixes: the incremental single-pass result
// must equal hashing each prefix from scratch, and the last horizon past
// the end of the trace must equal the full-trace hash.
func TestPrefixHashesMatchManualPrefixes(t *testing.T) {
	rec := NewRecorder(0)
	run(t, true, rec)
	recs := rec.Records()
	if len(recs) == 0 {
		t.Fatal("empty trace")
	}
	mid := recs[len(recs)/2].T
	horizons := []core.Time{0, mid / 2, mid, mid, recs[len(recs)-1].T + 1}
	got := rec.PrefixHashes(horizons)

	for i, hor := range horizons {
		h := fnvOffset
		for _, r := range recs {
			if r.T < hor {
				h = fnvRecord(h, r)
			}
		}
		if got[i] != h {
			t.Errorf("horizon %v: incremental %016x != from-scratch %016x", hor, got[i], h)
		}
	}
	if got[0] != fnvOffset {
		t.Error("horizon 0 should hash the empty prefix")
	}
	if got[len(got)-1] != rec.Hash() {
		t.Error("horizon past end of trace != full-trace hash")
	}
	// Equal consecutive horizons must produce equal hashes.
	if got[2] != got[3] {
		t.Error("repeated horizon produced different hashes")
	}
}

// TestPrefixHashesTransferAcrossRuns is the property replay's per-round
// verification rests on: a prefix hash depends only on the committed
// history and the horizon, so a parallel run and a sequential run of the
// same model agree at every horizon even though their execution schedules
// (and GVT round placements) differ completely.
func TestPrefixHashesTransferAcrossRuns(t *testing.T) {
	recPar := NewRecorder(0)
	run(t, true, recPar)
	recSeq := NewRecorder(0)
	run(t, false, recSeq)

	recs := recPar.Records()
	horizons := make([]core.Time, 0, 16)
	for i := 0; i < len(recs); i += len(recs)/15 + 1 {
		horizons = append(horizons, recs[i].T)
	}
	horizons = append(horizons, recs[len(recs)-1].T+1)

	par := recPar.PrefixHashes(horizons)
	seq := recSeq.PrefixHashes(horizons)
	for i := range horizons {
		if par[i] != seq[i] {
			t.Errorf("horizon %v: parallel %016x != sequential %016x", horizons[i], par[i], seq[i])
		}
	}
}

func TestPrefixHashesPanics(t *testing.T) {
	rec := NewRecorder(0)
	run(t, false, rec)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("decreasing horizons did not panic")
			}
		}()
		rec.PrefixHashes([]core.Time{2, 1})
	}()

	small := NewRecorder(4) // bounded: will drop records
	run(t, false, small)
	if small.Dropped() == 0 {
		t.Fatal("bounded recorder dropped nothing; test needs a longer run")
	}
	defer func() {
		if recover() == nil {
			t.Error("PrefixHashes on a dropping recorder did not panic")
		}
	}()
	small.PrefixHashes([]core.Time{1})
}

// TestStateHashSeesModelState: equal final states hash equal; perturbing
// one LP's state changes the hash.
func TestStateHashSeesModelState(t *testing.T) {
	build := func() core.Host {
		cfg := core.Config{NumLPs: 8, EndTime: 1, Seed: 1}
		q, err := core.NewSequential(cfg)
		if err != nil {
			t.Fatal(err)
		}
		q.ForEachLP(func(lp *core.LP) {
			lp.Handler = echoModel{numLPs: 8}
			lp.State = &echoState{count: int64(lp.ID) * 3}
		})
		return q
	}
	a, b := build(), build()
	if StateHash(a) != StateHash(b) {
		t.Fatal("identical states hash differently")
	}
	b.LP(5).State.(*echoState).count++
	if StateHash(a) == StateHash(b) {
		t.Fatal("perturbed state hashes the same")
	}
}
