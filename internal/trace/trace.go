// Package trace records committed events for debugging and analysis.
//
// Optimistic execution makes printf-debugging misleading: Forward runs
// speculatively and may be rolled back, so anything it logs can describe
// events that "never happened". The Recorder solves this by hooking the
// commit path — an event is recorded only once it is irrevocably in the
// past — and by sorting the dump into the kernel's deterministic event
// order, so a parallel run's trace is byte-identical to the sequential
// run's.
//
// Usage:
//
//	rec := trace.NewRecorder(100000)
//	sim.ForEachLP(func(lp *core.LP) {
//	    lp.Handler = trace.Wrap(model, rec, trace.DescribeData)
//	})
//	...
//	rec.Dump(os.Stdout)
package trace

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"

	"repro/internal/core"
)

// Record is one committed event.
type Record struct {
	T    core.Time
	Dst  core.LPID
	Src  core.LPID
	Note string
}

// Describe renders an event into the Record's Note field at commit time.
type Describe func(lp *core.LP, ev *core.Event) string

// DescribeData is the default describer: the payload's %v rendering.
func DescribeData(lp *core.LP, ev *core.Event) string {
	return fmt.Sprintf("%v", ev.Data)
}

// Recorder accumulates committed-event records. It is safe for concurrent
// use: commits arrive from every PE goroutine.
type Recorder struct {
	mu      sync.Mutex
	records []Record
	limit   int
	dropped int64

	// Seeded prefix (SeedPrefix): a checkpoint-resumed run records only
	// commits at or beyond the checkpoint's GVT, so the recorder folds its
	// hashes from the checkpointed prefix digests instead of the FNV offset
	// basis, and Len counts the prefix records it never saw.
	seeded     bool
	prefixLen  int
	prefixHash uint64
	prefixLP   []uint64
}

// NewRecorder returns a recorder holding at most limit records (0 means
// unbounded). Once full it counts drops rather than growing.
func NewRecorder(limit int) *Recorder {
	return &Recorder{limit: limit}
}

func (r *Recorder) add(rec Record) {
	r.mu.Lock()
	if r.limit > 0 && len(r.records) >= r.limit {
		r.dropped++
	} else {
		r.records = append(r.records, rec)
	}
	r.mu.Unlock()
}

// SeedPrefix primes an empty recorder with the digests of a committed
// trace prefix it will never observe — the below-GVT prefix a checkpoint
// captured. Every record added afterwards must sort at or after the whole
// prefix (checkpoint resume guarantees it: resumed commits all have
// T >= the checkpoint's GVT), so Hash, LPHashes and PrefixHashes remain
// exact fold continuations of the uninterrupted run's values, and Len
// counts prefix records as held. PrefixHashes stays valid only for
// horizons at or beyond the prefix's own horizon — earlier horizons would
// have to split the prefix, which only its original recorder could do.
func (r *Recorder) SeedPrefix(length int, hash uint64, lpHashes []uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.seeded || len(r.records) > 0 || r.dropped > 0 {
		panic("trace: SeedPrefix on a non-empty recorder")
	}
	r.seeded = true
	r.prefixLen = length
	r.prefixHash = hash
	r.prefixLP = append([]uint64(nil), lpHashes...)
}

// hashBasis returns the starting fold value for whole-trace hashes.
func (r *Recorder) hashBasis() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.seeded {
		return r.prefixHash
	}
	return fnvOffset
}

// lpBasis returns LP i's starting fold value.
func (r *Recorder) lpBasis(i int) uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.seeded && i < len(r.prefixLP) {
		return r.prefixLP[i]
	}
	return fnvOffset
}

// Len returns the number of records held, including a seeded prefix's.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.records) + r.prefixLen
}

// Dropped returns how many commits exceeded the limit.
func (r *Recorder) Dropped() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Records returns a copy of the records sorted into the kernel's event
// order (time, destination, source) — the order a sequential run commits.
func (r *Recorder) Records() []Record {
	r.mu.Lock()
	out := make([]Record, len(r.records))
	copy(out, r.records)
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.T != b.T {
			return a.T < b.T
		}
		if a.Dst != b.Dst {
			return a.Dst < b.Dst
		}
		return a.Src < b.Src
	})
	return out
}

// FNV-1a, inlined so per-LP hashing needs no allocation per record.
const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

func fnvByte(h uint64, b byte) uint64 {
	return (h ^ uint64(b)) * fnvPrime
}

func fnvUint64(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h = fnvByte(h, byte(v>>(8*uint(i))))
	}
	return h
}

func fnvString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h = fnvByte(h, s[i])
	}
	return fnvByte(h, 0) // terminator so adjacent notes cannot alias
}

func fnvRecord(h uint64, rec Record) uint64 {
	h = fnvUint64(h, math.Float64bits(float64(rec.T)))
	h = fnvUint64(h, uint64(uint32(rec.Dst))<<32|uint64(uint32(rec.Src)))
	return fnvString(h, rec.Note)
}

// Hash digests the sorted trace (times, endpoints and notes) into one
// order-sensitive value: two runs committed the same event history iff
// their hashes agree. The differential harness compares these across
// engines. Call it only on unbounded recorders — a recorder that dropped
// records hashes a prefix, and the method panics to keep such a hash from
// ever being mistaken for a whole-run fingerprint.
func (r *Recorder) Hash() uint64 {
	if r.Dropped() > 0 {
		panic("trace: Hash on a recorder that dropped records")
	}
	h := r.hashBasis()
	for _, rec := range r.Records() {
		h = fnvRecord(h, rec)
	}
	return h
}

// PrefixHashes digests, for each horizon, the sorted-trace prefix of
// records with T strictly below that horizon. Horizons must be
// nondecreasing (GVT estimates are); the method panics otherwise. The
// point of prefix hashes over "hash of what was committed when the round
// ran" is that they are a pure function of the final committed trace and
// the horizon values: the kernel's determinism guarantee makes them
// reproducible across runs even though GVT round boundaries (a wall-clock
// artifact) are not. The replay verifier leans on exactly this — it
// evaluates a recording's horizons against a fresh run's trace. Same
// bounded-recorder caveat as Hash.
func (r *Recorder) PrefixHashes(horizons []core.Time) []uint64 {
	if r.Dropped() > 0 {
		panic("trace: PrefixHashes on a recorder that dropped records")
	}
	recs := r.Records()
	out := make([]uint64, len(horizons))
	h := r.hashBasis()
	i := 0
	for j, hor := range horizons {
		if j > 0 && hor < horizons[j-1] {
			panic("trace: PrefixHashes horizons must be nondecreasing")
		}
		for i < len(recs) && recs[i].T < hor {
			h = fnvRecord(h, recs[i])
			i++
		}
		out[j] = h
	}
	return out
}

// StateHash digests every LP's final model state (its %+v rendering, which
// walks exported struct fields deterministically) into one value. It is
// the "did the runs end in the same world" half of a run fingerprint, the
// committed trace being the "did they get there the same way" half; the
// simcheck harness and the replay verifier compare both.
func StateHash(h core.Host) uint64 {
	out := fnvOffset
	h.ForEachLP(func(lp *core.LP) {
		out = fnvString(out, fmt.Sprintf("%d=%+v;", lp.ID, lp.State))
	})
	return out
}

// LPHashes digests each destination LP's committed event order separately,
// so a divergence can be localised to the LPs whose histories differ rather
// than reported as one global mismatch. Records for destinations outside
// [0, numLPs) are ignored. Same caveat as Hash for bounded recorders.
func (r *Recorder) LPHashes(numLPs int) []uint64 {
	if r.Dropped() > 0 {
		panic("trace: LPHashes on a recorder that dropped records")
	}
	hs := make([]uint64, numLPs)
	for i := range hs {
		hs[i] = r.lpBasis(i)
	}
	for _, rec := range r.Records() {
		if rec.Dst >= 0 && int(rec.Dst) < numLPs {
			hs[rec.Dst] = fnvRecord(hs[rec.Dst], rec)
		}
	}
	return hs
}

// Dump writes the sorted trace, one event per line.
func (r *Recorder) Dump(w io.Writer) error {
	for _, rec := range r.Records() {
		if _, err := fmt.Fprintf(w, "%.6f lp=%d src=%d %s\n",
			float64(rec.T), rec.Dst, rec.Src, rec.Note); err != nil {
			return err
		}
	}
	if d := r.Dropped(); d > 0 {
		if _, err := fmt.Fprintf(w, "... %d records dropped (limit reached)\n", d); err != nil {
			return err
		}
	}
	return nil
}

// wrapped decorates a model handler with commit-time recording. It
// preserves the inner handler's Committer behaviour.
type wrapped struct {
	inner    core.Handler
	rec      *Recorder
	describe Describe
}

// Wrap returns a handler that behaves exactly like inner and additionally
// records every committed event. describe may be nil (DescribeData). If the
// inner handler recycles payloads (core.Recycler), the wrapper forwards
// Recycle so tracing does not silently disable the payload pool; handlers
// without one get a wrapper that does not advertise the interface.
func Wrap(inner core.Handler, rec *Recorder, describe Describe) core.Handler {
	if describe == nil {
		describe = DescribeData
	}
	w := &wrapped{inner: inner, rec: rec, describe: describe}
	if _, ok := inner.(core.Recycler); ok {
		return &recyclingWrapped{wrapped: *w}
	}
	return w
}

// recyclingWrapped is the Wrap variant for inner handlers that implement
// core.Recycler.
type recyclingWrapped struct {
	wrapped
}

// Recycle implements core.Recycler by forwarding to the inner handler.
func (w *recyclingWrapped) Recycle(data any) {
	w.inner.(core.Recycler).Recycle(data)
}

// Forward implements core.Handler.
func (w *wrapped) Forward(lp *core.LP, ev *core.Event) { w.inner.Forward(lp, ev) }

// Reverse implements core.Handler.
func (w *wrapped) Reverse(lp *core.LP, ev *core.Event) { w.inner.Reverse(lp, ev) }

// Commit implements core.Committer: the inner handler's Commit (if any)
// runs first, then the event is recorded.
func (w *wrapped) Commit(lp *core.LP, ev *core.Event) {
	if committer, ok := w.inner.(core.Committer); ok {
		committer.Commit(lp, ev)
	}
	w.rec.add(Record{
		T:    ev.RecvTime(),
		Dst:  ev.Dst(),
		Src:  ev.Src(),
		Note: w.describe(lp, ev),
	})
}
