package trace

import (
	"bytes"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/core"
)

// echoState counts events; echoMsg carries an id.
type echoState struct{ count int64 }
type echoMsg struct {
	ID   int
	Prev int64
}

type echoModel struct{ numLPs int64 }

func (m echoModel) Forward(lp *core.LP, ev *core.Event) {
	st := lp.State.(*echoState)
	msg := ev.Data.(*echoMsg)
	msg.Prev = st.count
	st.count++
	if msg.ID > 0 {
		dst := core.LPID(lp.RandInt(0, m.numLPs-1))
		lp.Send(dst, core.Time(lp.RandExp(1))+0.01, &echoMsg{ID: msg.ID - 1})
	}
}
func (m echoModel) Reverse(lp *core.LP, ev *core.Event) {
	lp.State.(*echoState).count = ev.Data.(*echoMsg).Prev
}

func run(t *testing.T, parallel bool, rec *Recorder) int64 {
	t.Helper()
	cfg := core.Config{NumLPs: 16, EndTime: 40, Seed: 21}
	if parallel {
		cfg.NumPEs = 4
		cfg.NumKPs = 8
		cfg.BatchSize = 4
		cfg.GVTInterval = 2
	}
	install := func(h core.Host) {
		model := echoModel{numLPs: 16}
		h.ForEachLP(func(lp *core.LP) {
			lp.Handler = Wrap(model, rec, nil)
			lp.State = &echoState{}
		})
		for i := 0; i < 16; i++ {
			h.Schedule(core.LPID(i), core.Time(0.01*float64(i+1)), &echoMsg{ID: 12})
		}
	}
	if parallel {
		s, err := core.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		install(s)
		stats, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return stats.Committed
	}
	q, err := core.NewSequential(cfg)
	if err != nil {
		t.Fatal(err)
	}
	install(q)
	stats, err := q.Run()
	if err != nil {
		t.Fatal(err)
	}
	return stats.Committed
}

// TestTraceCountsCommits: exactly one record per committed event, even
// under rollbacks.
func TestTraceCountsCommits(t *testing.T) {
	rec := NewRecorder(0)
	committed := run(t, true, rec)
	if int64(rec.Len()) != committed {
		t.Fatalf("recorded %d, committed %d", rec.Len(), committed)
	}
}

// TestTraceParallelEqualsSequential: the sorted parallel trace must be
// identical to the sequential trace.
func TestTraceParallelEqualsSequential(t *testing.T) {
	seqRec := NewRecorder(0)
	run(t, false, seqRec)
	parRec := NewRecorder(0)
	run(t, true, parRec)

	var seqBuf, parBuf bytes.Buffer
	if err := seqRec.Dump(&seqBuf); err != nil {
		t.Fatal(err)
	}
	if err := parRec.Dump(&parBuf); err != nil {
		t.Fatal(err)
	}
	if seqBuf.String() != parBuf.String() {
		t.Fatalf("traces differ:\nseq %d bytes, par %d bytes", seqBuf.Len(), parBuf.Len())
	}
	if seqBuf.Len() == 0 {
		t.Fatal("empty trace")
	}
}

// TestTraceSorted: records come out in event order.
func TestTraceSorted(t *testing.T) {
	rec := NewRecorder(0)
	run(t, true, rec)
	records := rec.Records()
	for i := 1; i < len(records); i++ {
		if records[i].T < records[i-1].T {
			t.Fatalf("trace out of order at %d: %v after %v", i, records[i].T, records[i-1].T)
		}
	}
}

// TestTraceLimit: the recorder must cap and count drops.
func TestTraceLimit(t *testing.T) {
	rec := NewRecorder(10)
	committed := run(t, false, rec)
	if rec.Len() != 10 {
		t.Fatalf("held %d records, limit 10", rec.Len())
	}
	if rec.Dropped() != committed-10 {
		t.Fatalf("dropped %d, want %d", rec.Dropped(), committed-10)
	}
	var buf bytes.Buffer
	if err := rec.Dump(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "dropped") {
		t.Fatal("dump does not mention drops")
	}
}

// committingModel implements Committer itself, so Wrap must chain to it.
// Commit runs on every PE goroutine, hence the atomic counter.
type committingModel struct {
	echoModel
	commits *atomic.Int64
}

func (m committingModel) Commit(lp *core.LP, ev *core.Event) { m.commits.Add(1) }

// TestWrapChainsInnerCommit: when the wrapped model has its own Commit,
// the recorder must call it and still record the event.
func TestWrapChainsInnerCommit(t *testing.T) {
	rec := NewRecorder(0)
	var commits atomic.Int64
	s, err := core.New(core.Config{NumLPs: 4, EndTime: 20, Seed: 8, NumPEs: 2})
	if err != nil {
		t.Fatal(err)
	}
	model := committingModel{echoModel: echoModel{numLPs: 4}, commits: &commits}
	s.ForEachLP(func(lp *core.LP) {
		lp.Handler = Wrap(model, rec, nil)
		lp.State = &echoState{}
	})
	for i := 0; i < 4; i++ {
		s.Schedule(core.LPID(i), core.Time(0.01*float64(i+1)), &echoMsg{ID: 5})
	}
	stats, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if commits.Load() != stats.Committed {
		t.Fatalf("inner Commit ran %d times, committed %d", commits.Load(), stats.Committed)
	}
	if int64(rec.Len()) != stats.Committed {
		t.Fatalf("recorder saw %d, committed %d", rec.Len(), stats.Committed)
	}
}

// TestDescribeCustom: a custom describer's output lands in the notes.
func TestDescribeCustom(t *testing.T) {
	rec := NewRecorder(0)
	cfg := core.Config{NumLPs: 1, EndTime: 10, NumPEs: 1}
	s, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	model := echoModel{numLPs: 1}
	s.ForEachLP(func(lp *core.LP) {
		lp.Handler = Wrap(model, rec, func(lp *core.LP, ev *core.Event) string { return "CUSTOM" })
		lp.State = &echoState{}
	})
	s.Schedule(0, 1, &echoMsg{ID: 0})
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	records := rec.Records()
	if len(records) != 1 || records[0].Note != "CUSTOM" {
		t.Fatalf("records = %+v", records)
	}
}

func TestHashInsensitiveToArrivalOrder(t *testing.T) {
	recs := []Record{
		{T: 1.5, Dst: 0, Src: 1, Note: "a"},
		{T: 0.5, Dst: 2, Src: 0, Note: "b"},
		{T: 1.5, Dst: 1, Src: 0, Note: "c"},
	}
	fwd, rev := NewRecorder(0), NewRecorder(0)
	for i := range recs {
		fwd.add(recs[i])
		rev.add(recs[len(recs)-1-i])
	}
	if fwd.Hash() != rev.Hash() {
		t.Fatal("hash depends on commit arrival order; it must only depend on the sorted trace")
	}
}

func TestHashSensitiveToContent(t *testing.T) {
	base := Record{T: 1, Dst: 0, Src: 1, Note: "x"}
	variants := []Record{
		{T: 2, Dst: 0, Src: 1, Note: "x"},
		{T: 1, Dst: 2, Src: 1, Note: "x"},
		{T: 1, Dst: 0, Src: 3, Note: "x"},
		{T: 1, Dst: 0, Src: 1, Note: "y"},
	}
	ref := NewRecorder(0)
	ref.add(base)
	for i, v := range variants {
		r := NewRecorder(0)
		r.add(v)
		if r.Hash() == ref.Hash() {
			t.Errorf("variant %d hashes equal to base: %+v", i, v)
		}
	}
	empty := NewRecorder(0)
	if empty.Hash() == ref.Hash() {
		t.Error("empty trace hashes equal to non-empty")
	}
}

func TestLPHashesLocaliseDivergence(t *testing.T) {
	a, b := NewRecorder(0), NewRecorder(0)
	shared := []Record{
		{T: 1, Dst: 0, Src: 1, Note: "s"},
		{T: 2, Dst: 2, Src: 0, Note: "s"},
	}
	for _, rec := range shared {
		a.add(rec)
		b.add(rec)
	}
	a.add(Record{T: 3, Dst: 1, Src: 0, Note: "only-a"})
	b.add(Record{T: 3, Dst: 1, Src: 0, Note: "only-b"})
	ha, hb := a.LPHashes(4), b.LPHashes(4)
	for i := range ha {
		if i == 1 && ha[i] == hb[i] {
			t.Errorf("LP %d histories differ but hashes agree", i)
		}
		if i != 1 && ha[i] != hb[i] {
			t.Errorf("LP %d histories agree but hashes differ", i)
		}
	}
	if a.Hash() == b.Hash() {
		t.Error("global hashes must differ too")
	}
}

func TestHashPanicsAfterDrop(t *testing.T) {
	r := NewRecorder(1)
	r.add(Record{T: 1})
	r.add(Record{T: 2})
	defer func() {
		if recover() == nil {
			t.Fatal("Hash on a recorder with drops must panic")
		}
	}()
	r.Hash()
}
