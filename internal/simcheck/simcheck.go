// Package simcheck is the differential correctness harness for the Time
// Warp stack. Its core claim-check is the report's: optimistic parallel
// execution commits *exactly* the trajectory the sequential simulator
// produces. The harness makes that claim testable at scale by running each
// bundled model (hot-potato, PHOLD, qnet) under every engine (sequential,
// conservative, optimistic) across a matrix of PE/KP counts, queues and
// seeds, and comparing run fingerprints: a hash of the committed event
// trace, a per-LP event-order hash (to localise divergence), and a hash of
// final model state.
//
// On top of the clean differential sweep it drives the kernel's fault
// injectors (core.Faults) — forced rollbacks, GVT delay, mailbox
// perturbation, PE throttling — which must leave every fingerprint
// untouched; and it carries deliberately seeded bugs (Mutation) that must
// NOT leave the fingerprints untouched, proving the harness can actually
// see a divergence when one exists.
//
// A failure is reported as the diverging matrix cell (model, engine, PEs,
// KPs, queue, seed, fault plan), which is the complete recipe for
// reproducing it.
package simcheck

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/eventq"
	"repro/internal/trace"
)

// EngineKind names one of the three execution engines.
type EngineKind string

// The engines the harness can drive.
const (
	EngSequential   EngineKind = "sequential"
	EngConservative EngineKind = "conservative"
	EngOptimistic   EngineKind = "optimistic"
)

// Engines lists all engine kinds in reference-first order.
func Engines() []EngineKind {
	return []EngineKind{EngSequential, EngConservative, EngOptimistic}
}

// Cell is one point of the differential matrix: everything needed to build
// and run a simulation, and therefore everything needed to reproduce a
// failure. Its String form is the failure artifact the harness prints.
type Cell struct {
	Model  string
	Engine EngineKind
	PEs    int
	KPs    int
	Queue  string
	Seed   uint64
	// Faults is the kernel fault plan; only meaningful for the optimistic
	// engine.
	Faults *core.Faults
	// GVTMode selects the optimistic kernel's GVT algorithm
	// (core.GVTAsync or core.GVTBarrier; empty takes the kernel default).
	// GVT is scheduling-only, so the two modes must fingerprint
	// identically — that differential is the async algorithm's main
	// correctness check.
	GVTMode string
	// MaxLive, when positive, arms the kernel's fossil-collection pressure
	// valve (core.Config.MaxLiveEvents) on optimistic cells: each PE's
	// executed-but-uncommitted events are capped at this budget. The valve
	// is scheduling-only, so a bounded cell must fingerprint identically
	// to its unbounded twin.
	MaxLive int
	// Paranoid enables the kernel's invariant checks on optimistic cells,
	// including the in-run sweep every few scheduler passes — the soak
	// harness's live-invariant mode.
	Paranoid bool
	// Mutation is the deliberately seeded bug, if any (self-test only).
	Mutation Mutation
}

func (c Cell) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "model=%s engine=%s pes=%d kps=%d queue=%s seed=%d",
		c.Model, c.Engine, c.PEs, c.KPs, c.Queue, c.Seed)
	if c.GVTMode != "" {
		fmt.Fprintf(&b, " gvt=%s", c.GVTMode)
	}
	if c.Faults != nil {
		fmt.Fprintf(&b, " faults=%+v", *c.Faults)
	}
	if c.MaxLive > 0 {
		fmt.Fprintf(&b, " maxlive=%d", c.MaxLive)
	}
	if c.Paranoid {
		b.WriteString(" paranoid")
	}
	if c.Mutation != MutNone {
		fmt.Fprintf(&b, " mutation=%s", c.Mutation)
	}
	return b.String()
}

// Fingerprint is what the harness compares between runs. Two runs of the
// same model and seed must agree on every field regardless of engine,
// parallelism, queue kind or fault plan.
type Fingerprint struct {
	// Committed is the kernel's committed event count.
	Committed int64
	// TraceLen is the number of committed, recorded events.
	TraceLen int
	// TraceHash digests the full committed trace in deterministic order.
	TraceHash uint64
	// LPHashes digests each LP's committed event order separately.
	LPHashes []uint64
	// StateHash digests the final per-LP model state.
	StateHash uint64
}

// Result is one executed cell.
type Result struct {
	Cell    Cell
	FP      Fingerprint
	Stats   *core.Stats
	Summary string
}

// Divergence is one detected mismatch (or failed run) with the artifact
// needed to reproduce it.
type Divergence struct {
	// Ref is the reference cell (zero Cell when Got failed outright).
	Ref Cell
	// Got is the diverging cell.
	Got Cell
	// Details name the fingerprint fields that differ, or the run error.
	Details []string
}

func (d Divergence) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "DIVERGENCE at [%s]", d.Got)
	if d.Ref.Model != "" {
		fmt.Fprintf(&b, "\n  reference [%s]", d.Ref)
	}
	for _, detail := range d.Details {
		fmt.Fprintf(&b, "\n  %s", detail)
	}
	return b.String()
}

// Compare returns the list of fingerprint fields where got differs from
// ref; empty means the runs committed identical results. The soak harness
// uses it to judge episodes outside a Matrix run.
func Compare(ref, got Fingerprint) []string { return compare(ref, got) }

// compare returns the list of fingerprint fields where got differs from
// ref; empty means the runs committed identical results.
func compare(ref, got Fingerprint) []string {
	var diffs []string
	if ref.Committed != got.Committed {
		diffs = append(diffs, fmt.Sprintf("committed events: ref=%d got=%d", ref.Committed, got.Committed))
	}
	if ref.TraceLen != got.TraceLen {
		diffs = append(diffs, fmt.Sprintf("trace length: ref=%d got=%d", ref.TraceLen, got.TraceLen))
	}
	if ref.TraceHash != got.TraceHash {
		diffs = append(diffs, fmt.Sprintf("trace hash: ref=%016x got=%016x", ref.TraceHash, got.TraceHash))
	}
	if len(ref.LPHashes) != len(got.LPHashes) {
		diffs = append(diffs, fmt.Sprintf("LP count: ref=%d got=%d", len(ref.LPHashes), len(got.LPHashes)))
	} else {
		bad := make([]int, 0, 4)
		for i := range ref.LPHashes {
			if ref.LPHashes[i] != got.LPHashes[i] {
				bad = append(bad, i)
			}
		}
		if len(bad) > 0 {
			show := bad
			if len(show) > 8 {
				show = show[:8]
			}
			diffs = append(diffs, fmt.Sprintf("per-LP event order: %d LPs differ, first %v", len(bad), show))
		}
	}
	if ref.StateHash != got.StateHash {
		diffs = append(diffs, fmt.Sprintf("final model state hash: ref=%016x got=%016x", ref.StateHash, got.StateHash))
	}
	return diffs
}

// Matrix spans a differential sweep. Every model runs under every engine it
// supports, for every (PEs, KPs, queue, fault plan) combination and every
// seed; each (model, seed) pair is compared against a clean single-PE
// sequential reference run.
type Matrix struct {
	Models  []string
	Engines []EngineKind
	PEs     []int
	KPs     []int
	Queues  []string
	Seeds   []uint64
	// Faults are the kernel fault plans to sweep; nil entries mean a clean
	// run, and non-nil entries apply only to optimistic cells.
	Faults []*core.Faults
	// MemBounds are the per-PE live-event budgets to sweep (Cell.MaxLive);
	// 0 entries mean unbounded, and positive entries apply only to
	// optimistic cells. Empty means unbounded only.
	MemBounds []int
	// GVTModes are the optimistic GVT algorithms to sweep (Cell.GVTMode);
	// empty means the kernel default only. Non-optimistic engines have no
	// GVT, so the dimension collapses for them.
	GVTModes []string
	// Mutation arms a seeded bug in every non-sequential cell; the
	// reference stays clean so the self-test can assert the harness
	// reports the divergence.
	Mutation Mutation
	// AutoRecord, when non-empty, names a directory where every diverging
	// optimistic cell is re-recorded through internal/replay, shrunk to a
	// minimal failing log, and written as a .replay artifact (the paths
	// land in Report.Artifacts).
	AutoRecord string
}

// Smoke is the CI matrix: both fast models under all three engines, two PE
// counts, two seeds, clean and fault-injected. It finishes in seconds.
func Smoke() Matrix {
	return Matrix{
		Models:    []string{"hotpotato", "phold"},
		Engines:   Engines(),
		PEs:       []int{2, 4},
		KPs:       []int{8},
		Queues:    []string{"heap", "ladder"},
		Seeds:     []uint64{1, 42},
		Faults:    []*core.Faults{nil, DefaultFaults(), BurstFaults()},
		MemBounds: []int{0, 10},
		GVTModes:  []string{core.GVTAsync, core.GVTBarrier},
	}
}

// Full is the pre-merge matrix: every model, every registered queue kind,
// more seeds and a second KP granularity.
func Full() Matrix {
	return Matrix{
		Models:    ModelNames(),
		Engines:   Engines(),
		PEs:       []int{1, 2, 4},
		KPs:       []int{4, 16},
		Queues:    eventq.Kinds(),
		Seeds:     []uint64{1, 7, 42, 1234},
		Faults:    []*core.Faults{nil, DefaultFaults(), BurstFaults()},
		MemBounds: []int{0, 6, 24},
		GVTModes:  []string{core.GVTAsync, core.GVTBarrier},
	}
}

// DefaultFaults is the standard adversarial plan: frequent shallow forced
// rollbacks, delayed GVT, perturbed delivery order and one throttled PE.
func DefaultFaults() *core.Faults {
	return &core.Faults{
		Seed:          0xC0FFEE,
		RollbackEvery: 2,
		RollbackDepth: 4,
		GVTDelay:      1,
		ShuffleMail:   true,
		ThrottlePEs:   1,
		ThrottleBatch: 1,
	}
}

// BurstFaults stresses the comms layer's delayed-flush coalescing: outgoing
// mail is held for several passes and released as oversized bursts (driving
// the lane-overflow retry path), on top of forced rollbacks and shuffled
// delivery so anti-messages ride the same bursts as the positives they
// chase.
func BurstFaults() *core.Faults {
	return &core.Faults{
		Seed:          0xB00527,
		RollbackEvery: 3,
		RollbackDepth: 4,
		ShuffleMail:   true,
		MailBurst:     4,
	}
}

// Injector is one kernel fault injector (core.Faults) as a composable
// toggle, so tests and the soak scheduler can build arbitrary
// compositions from the same canonical list instead of hand-rolling
// plans. Arm enables the injector on a plan; level in [0, 3] scales its
// aggressiveness (0 is the mildest setting, not off).
type Injector struct {
	Name string
	Arm  func(f *core.Faults, level int)
}

// Injectors returns the canonical list of kernel fault injectors, one per
// independent core.Faults mechanism. The pairwise composition tests and
// the soak harness's randomized schedules both draw from this list, so a
// new injector added here is automatically composed everywhere.
func Injectors() []Injector {
	return []Injector{
		{"rollback", func(f *core.Faults, level int) {
			f.RollbackEvery = 4 - min(level, 3)
			f.RollbackDepth = 2 + level
		}},
		{"gvtdelay", func(f *core.Faults, level int) {
			f.GVTDelay = 1 + level
		}},
		{"shuffle", func(f *core.Faults, level int) {
			f.ShuffleMail = true
		}},
		{"burst", func(f *core.Faults, level int) {
			f.MailBurst = 2 + level
		}},
		{"throttle", func(f *core.Faults, level int) {
			f.ThrottlePEs = 1
			f.ThrottleBatch = 1 + level/2
		}},
	}
}

// cells expands the matrix into concrete cells. The sequential engine is
// deterministic in PEs/KPs/faults, so it collapses to one cell per (model,
// queue, seed); fault plans apply only to the optimistic engine.
func (m Matrix) cells(model string, seed uint64, spec *modelSpec) []Cell {
	var out []Cell
	seen := make(map[string]bool)
	for _, eng := range m.Engines {
		if !spec.engines[eng] {
			continue
		}
		pes, kps, faults, bounds, gvts := m.PEs, m.KPs, m.Faults, m.MemBounds, m.GVTModes
		if eng == EngSequential {
			pes, kps = []int{1}, []int{1}
		}
		if eng != EngOptimistic {
			faults = []*core.Faults{nil}
			bounds = []int{0}
			gvts = []string{""}
		}
		if len(faults) == 0 {
			faults = []*core.Faults{nil}
		}
		if len(bounds) == 0 {
			bounds = []int{0}
		}
		if len(gvts) == 0 {
			gvts = []string{""}
		}
		for _, pe := range pes {
			for _, kp := range kps {
				for _, q := range m.Queues {
					for _, f := range faults {
						for _, ml := range bounds {
							for _, gm := range gvts {
								c := Cell{
									Model: model, Engine: eng,
									PEs: pe, KPs: kp, Queue: q, Seed: seed,
									Faults: f, MaxLive: ml, GVTMode: gm,
								}
								if eng != EngSequential {
									c.Mutation = m.Mutation
								}
								if key := c.String(); !seen[key] {
									seen[key] = true
									out = append(out, c)
								}
							}
						}
					}
				}
			}
		}
	}
	return out
}

// Report is the outcome of a matrix run.
type Report struct {
	// Cells is the number of runs executed (references included).
	Cells int
	// Divergences holds every mismatch and failed run.
	Divergences []Divergence
	// ForcedRollbacks totals the fault-injected rollbacks across cells —
	// evidence the adversarial plans actually fired.
	ForcedRollbacks int64
	// Artifacts lists the .replay files auto-recorded for diverging cells
	// (only when Matrix.AutoRecord is set).
	Artifacts []string
}

// OK reports whether every cell matched its reference.
func (r *Report) OK() bool { return len(r.Divergences) == 0 }

// RunCell builds, instruments and runs one cell.
func RunCell(c Cell) (Result, error) {
	spec, ok := models[c.Model]
	if !ok {
		return Result{}, fmt.Errorf("simcheck: unknown model %q (have %v)", c.Model, ModelNames())
	}
	if !spec.engines[c.Engine] {
		return Result{}, fmt.Errorf("simcheck: model %q does not support engine %q", c.Model, c.Engine)
	}
	inst, err := spec.build(c, 0)
	if err != nil {
		return Result{}, err
	}
	stats, err := inst.run()
	if err != nil {
		return Result{}, err
	}
	res := Result{
		Cell: c,
		FP: Fingerprint{
			Committed: stats.Committed,
			TraceLen:  inst.rec.Len(),
			TraceHash: inst.rec.Hash(),
			LPHashes:  inst.rec.LPHashes(inst.numLPs),
			StateHash: trace.StateHash(inst.host),
		},
		Stats:   stats,
		Summary: inst.summary(),
	}
	return res, nil
}

// Run executes the matrix and returns the report. logf, when non-nil,
// receives one line per cell.
func Run(m Matrix, logf func(format string, args ...any)) *Report {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	rep := &Report{}
	for _, model := range m.Models {
		spec, ok := models[model]
		if !ok {
			rep.Divergences = append(rep.Divergences, Divergence{
				Got:     Cell{Model: model},
				Details: []string{fmt.Sprintf("unknown model (have %v)", ModelNames())},
			})
			continue
		}
		queue := "heap"
		if len(m.Queues) > 0 {
			queue = m.Queues[0]
		}
		for _, seed := range m.Seeds {
			// The reference is always a clean, unmutated sequential run.
			refCell := Cell{Model: model, Engine: EngSequential, PEs: 1, KPs: 1, Queue: queue, Seed: seed}
			ref, err := RunCell(refCell)
			rep.Cells++
			if err != nil {
				rep.Divergences = append(rep.Divergences, Divergence{
					Got:     refCell,
					Details: []string{fmt.Sprintf("reference run failed: %v", err)},
				})
				continue
			}
			logf("ref  [%s] committed=%d trace=%016x", refCell, ref.FP.Committed, ref.FP.TraceHash)
			for _, c := range m.cells(model, seed, spec) {
				got, err := RunCell(c)
				rep.Cells++
				if err != nil {
					rep.Divergences = append(rep.Divergences, Divergence{
						Ref:     refCell,
						Got:     c,
						Details: []string{fmt.Sprintf("run failed: %v", err)},
					})
					logf("FAIL [%s] run error: %v", c, err)
					continue
				}
				if got.Stats != nil {
					rep.ForcedRollbacks += got.Stats.ForcedRollbacks
				}
				if diffs := compare(ref.FP, got.FP); len(diffs) > 0 {
					rep.Divergences = append(rep.Divergences, Divergence{Ref: refCell, Got: c, Details: diffs})
					logf("FAIL [%s] %s", c, strings.Join(diffs, "; "))
					if m.AutoRecord != "" && c.Engine == EngOptimistic {
						if path, err := AutoRecord(m.AutoRecord, c, logf); err != nil {
							logf("auto-record [%s] failed: %v", c, err)
						} else {
							rep.Artifacts = append(rep.Artifacts, path)
							logf("auto-record [%s] wrote %s", c, path)
						}
					}
				} else {
					logf("ok   [%s] committed=%d", c, got.FP.Committed)
				}
			}
		}
	}
	return rep
}

// instance is one built, instrumented engine ready to run.
type instance struct {
	host    core.Host
	run     func() (*core.Stats, error)
	rec     *trace.Recorder
	numLPs  int
	endTime core.Time
	summary func() string
	// describe renders an event's semantic payload for the trace hash. It
	// must omit reverse-computation scratch (Saved* fields): scratch is
	// consumed by Reverse, not restored, so after a rollback it carries
	// residue of undone executions — legitimate differences between runs
	// that committed identical histories.
	describe trace.Describe
}

// cellSweepEvery is the in-run invariant sweep cadence paranoid cells run
// with: aggressive enough that corruption surfaces within a few passes of
// appearing, cheap enough for hours-scale soaking.
const cellSweepEvery = 8

// instrument wraps every LP handler with the cell's mutation (if any) and
// commit-time trace recording, and arms the cell's post-construction
// kernel knobs (memory bound, paranoid sweeps) on optimistic hosts.
// Recording is unbounded so the trace hash always covers the whole run.
func (in *instance) instrument(c Cell) {
	if sim, ok := in.host.(*core.Simulator); ok {
		if c.MaxLive > 0 {
			sim.SetMemoryBound(c.MaxLive, 0)
		}
		if c.Paranoid {
			sim.SetParanoid(cellSweepEvery)
		}
	}
	in.rec = trace.NewRecorder(0)
	var ledger []peCounter
	var cell *publishCell
	if c.Mutation == MutOwnership {
		// One shared ledger across the cell's wrappers: one slot per LP
		// (each bumped only by its owner's PE) plus a trailing sentinel
		// slot no LP owns, which LP 0's seeded write pokes by direct
		// field access — the ownercheck bug shape without a second
		// goroutine ever touching the same slot.
		ledger = make([]peCounter, in.numLPs+1)
		cell = &publishCell{}
	}
	in.host.ForEachLP(func(lp *core.LP) {
		h := lp.Handler
		switch c.Mutation {
		case MutBrokenReverse:
			h = brokenReverse{inner: h}
		case MutMapOrder:
			h = mapOrderNoise{inner: h}
		case MutOwnership:
			h = ownershipNoise{inner: h, ledger: ledger, cell: cell}
		}
		lp.Handler = trace.Wrap(h, in.rec, in.describe)
	})
}

// SupportsEngine reports whether the named model ships a builder for eng.
// Schedule generators use it to avoid emitting cells RunCell would reject
// (e.g. qnet has no conservative builder).
func SupportsEngine(model string, eng EngineKind) bool {
	spec, ok := models[model]
	return ok && spec.engines[eng]
}

// ModelNames returns the models the harness knows, sorted.
func ModelNames() []string {
	names := make([]string, 0, len(models))
	for name := range models {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
