package simcheck

import (
	"strings"
	"testing"

	"repro/internal/core"
)

// TestSmokeMatrix is the harness's positive control: the CI smoke matrix —
// all models and engines, clean and fault-injected — must report zero
// divergence, and the fault plans must demonstrably have fired.
func TestSmokeMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("matrix run in -short mode")
	}
	rep := Run(Smoke(), t.Logf)
	for _, d := range rep.Divergences {
		t.Errorf("%s", d)
	}
	if rep.Cells < 20 {
		t.Errorf("smoke matrix ran only %d cells", rep.Cells)
	}
	if rep.ForcedRollbacks == 0 {
		t.Error("smoke matrix includes fault plans but no forced rollback fired")
	}
}

// TestQNetMatrix covers the model the smoke matrix omits, under the
// heaviest fault plan.
func TestQNetMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("matrix run in -short mode")
	}
	rep := Run(Matrix{
		Models:  []string{"qnet"},
		Engines: Engines(),
		PEs:     []int{2, 4},
		KPs:     []int{9},
		Queues:  []string{"heap", "splay"},
		Seeds:   []uint64{3},
		Faults:  []*core.Faults{nil, DefaultFaults()},
	}, t.Logf)
	for _, d := range rep.Divergences {
		t.Errorf("%s", d)
	}
}

// TestMutationBrokenReverseDetected is the harness's negative control: with
// a Reverse handler that forgets odd LPs and a fault plan that forces
// rollbacks everywhere, the matrix MUST report a divergence, and the
// failure artifact must carry the cell (seed included) needed to reproduce
// it.
func TestMutationBrokenReverseDetected(t *testing.T) {
	rep := Run(Matrix{
		Models:   []string{"phold"},
		Engines:  []EngineKind{EngOptimistic},
		PEs:      []int{2},
		KPs:      []int{8},
		Queues:   []string{"heap"},
		Seeds:    []uint64{1},
		Faults:   []*core.Faults{{Seed: 7, RollbackEvery: 1, RollbackDepth: 4, ShuffleMail: true}},
		Mutation: MutBrokenReverse,
	}, t.Logf)
	if rep.OK() {
		t.Fatal("seeded broken-reverse bug went undetected")
	}
	artifact := rep.Divergences[0].String()
	for _, want := range []string{"seed=1", "model=phold", "engine=optimistic", "mutation=broken-reverse"} {
		if !strings.Contains(artifact, want) {
			t.Errorf("failure artifact missing %q:\n%s", want, artifact)
		}
	}
}

// TestMutationBrokenPriorityDetected: inverting the hot-potato Sleeping
// upgrade comparison must change the committed trajectory even without any
// fault plan — almost every routed packet takes the wrong priority band.
func TestMutationBrokenPriorityDetected(t *testing.T) {
	rep := Run(Matrix{
		Models:   []string{"hotpotato"},
		Engines:  []EngineKind{EngOptimistic},
		PEs:      []int{2},
		KPs:      []int{8},
		Queues:   []string{"heap"},
		Seeds:    []uint64{1},
		Mutation: MutBrokenPriority,
	}, t.Logf)
	if rep.OK() {
		t.Fatal("seeded broken-priority bug went undetected")
	}
	artifact := rep.Divergences[0].String()
	for _, want := range []string{"seed=1", "model=hotpotato", "mutation=broken-priority"} {
		if !strings.Contains(artifact, want) {
			t.Errorf("failure artifact missing %q:\n%s", want, artifact)
		}
	}
}

// TestMutationMapOrderDetected: folding map iteration order into state —
// the nondeterminism class simlint's determcheck rejects statically —
// must be caught dynamically too: the mutated run's committed state
// cannot match the clean reference.
func TestMutationMapOrderDetected(t *testing.T) {
	rep := Run(Matrix{
		Models:   []string{"phold"},
		Engines:  []EngineKind{EngOptimistic},
		PEs:      []int{2},
		KPs:      []int{8},
		Queues:   []string{"heap"},
		Seeds:    []uint64{1},
		Mutation: MutMapOrder,
	}, t.Logf)
	if rep.OK() {
		t.Fatal("seeded map-order bug went undetected")
	}
	artifact := rep.Divergences[0].String()
	for _, want := range []string{"seed=1", "model=phold", "mutation=map-order"} {
		if !strings.Contains(artifact, want) {
			t.Errorf("failure artifact missing %q:\n%s", want, artifact)
		}
	}
}

// TestMutationsInvisibleToCleanCells: a mutated matrix still runs its
// reference un-mutated; this guards against the self-test passing because
// both sides carry the same bug.
func TestMutationsInvisibleToCleanCells(t *testing.T) {
	clean, err := RunCell(Cell{Model: "hotpotato", Engine: EngSequential, PEs: 1, KPs: 1, Queue: "heap", Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	mutated, err := RunCell(Cell{Model: "hotpotato", Engine: EngSequential, PEs: 1, KPs: 1, Queue: "heap", Seed: 5, Mutation: MutBrokenPriority})
	if err != nil {
		t.Fatal(err)
	}
	if diffs := compare(clean.FP, mutated.FP); len(diffs) == 0 {
		t.Fatal("broken-priority mutation had no effect even when armed (self-test would be vacuous)")
	}
	clean2, err := RunCell(Cell{Model: "hotpotato", Engine: EngSequential, PEs: 1, KPs: 1, Queue: "heap", Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if diffs := compare(clean.FP, clean2.FP); len(diffs) != 0 {
		t.Fatalf("identical clean cells diverged: %v", diffs)
	}
}

func TestRunCellRejectsBadInput(t *testing.T) {
	if _, err := RunCell(Cell{Model: "nosuch", Engine: EngSequential}); err == nil {
		t.Error("unknown model accepted")
	}
	if _, err := RunCell(Cell{Model: "qnet", Engine: EngConservative, PEs: 1, KPs: 1, Seed: 1}); err == nil {
		t.Error("qnet has no conservative builder; cell must be rejected")
	}
}

func TestCellStringIsReproductionRecipe(t *testing.T) {
	c := Cell{
		Model: "phold", Engine: EngOptimistic, PEs: 4, KPs: 16,
		Queue: "splay", Seed: 99,
		Faults:   &core.Faults{RollbackEvery: 2},
		Mutation: MutBrokenReverse,
	}
	s := c.String()
	for _, want := range []string{"model=phold", "engine=optimistic", "pes=4", "kps=16", "queue=splay", "seed=99", "RollbackEvery:2", "mutation=broken-reverse"} {
		if !strings.Contains(s, want) {
			t.Errorf("cell artifact %q missing %q", s, want)
		}
	}
}
