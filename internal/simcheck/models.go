package simcheck

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/hotpotato"
	"repro/internal/phold"
	"repro/internal/qnet"
)

// modelSpec adapts one bundled model to the harness: which engines it can
// build, and how to build an instrumented instance for a cell. Model sizes
// are fixed small so a full matrix stays in CI territory; the seed is the
// only knob a cell turns on the workload itself. endTime, when positive,
// overrides the model's default horizon (the replay shrinker bisects it);
// models with quantized horizons round it up.
type modelSpec struct {
	engines map[EngineKind]bool
	build   func(c Cell, endTime core.Time) (*instance, error)
}

var models = map[string]*modelSpec{
	"hotpotato": {
		engines: map[EngineKind]bool{EngSequential: true, EngConservative: true, EngOptimistic: true},
		build:   buildHotpotato,
	},
	"phold": {
		engines: map[EngineKind]bool{EngSequential: true, EngConservative: true, EngOptimistic: true},
		build:   buildPHOLD,
	},
	// qnet ships no conservative builder, so it sweeps two engines.
	"qnet": {
		engines: map[EngineKind]bool{EngSequential: true, EngOptimistic: true},
		build:   buildQNet,
	},
}

// Aggressive scheduling knobs shared by all cells: small batches and
// frequent GVT rounds maximise interleaving variety per committed event.
const (
	cellBatchSize   = 8
	cellGVTInterval = 2
)

func buildHotpotato(c Cell, endTime core.Time) (*instance, error) {
	cfg := hotpotato.Config{
		N:               8,
		Policy:          hotpotatoPolicy(c.Mutation),
		InjectorPercent: 100,
		InjectionProb:   1,
		AbsorbSleeping:  true,
		InitialFill:     4,
		Steps:           30,
		Seed:            c.Seed,
		NumPEs:          c.PEs,
		NumKPs:          c.KPs,
		BatchSize:       cellBatchSize,
		GVTInterval:     cellGVTInterval,
		GVTMode:         c.GVTMode,
		Queue:           c.Queue,
		Faults:          c.Faults,
	}
	if endTime > 0 {
		// The hot-potato horizon is an integer step count; round a
		// fractional override up so it stays positive.
		cfg.Steps = int(math.Ceil(float64(endTime)))
		if cfg.Steps < 1 {
			cfg.Steps = 1
		}
	}
	var (
		host core.Host
		run  func() (*core.Stats, error)
		m    *hotpotato.Model
		err  error
	)
	switch c.Engine {
	case EngSequential:
		var e *core.Sequential
		if e, m, err = hotpotato.BuildSequential(cfg); err == nil {
			host, run = e, e.Run
		}
	case EngConservative:
		var e *core.Conservative
		if e, m, err = hotpotato.BuildConservative(cfg); err == nil {
			host, run = e, e.Run
		}
	case EngOptimistic:
		var e *core.Simulator
		if e, m, err = hotpotato.Build(cfg); err == nil {
			host, run = e, e.Run
		}
	default:
		err = fmt.Errorf("simcheck: unknown engine %q", c.Engine)
	}
	if err != nil {
		return nil, err
	}
	inst := &instance{
		host: host, run: run, numLPs: host.NumLPs(),
		endTime:  core.Time(cfg.Steps),
		summary:  func() string { return m.Totals(host).String() },
		describe: describeHotpotato,
	}
	inst.instrument(c)
	return inst, nil
}

// describeHotpotato renders the semantic payload — event kind plus the
// packet label — and deliberately drops the Msg's Saved* scratch area (see
// instance.describe for why scratch cannot be hashed).
func describeHotpotato(lp *core.LP, ev *core.Event) string {
	if m, ok := ev.Data.(*hotpotato.Msg); ok {
		return fmt.Sprintf("%v %+v", m.Kind, m.P)
	}
	return fmt.Sprintf("%v", ev.Data)
}

func buildPHOLD(c Cell, endTime core.Time) (*instance, error) {
	cfg := phold.Config{
		NumLPs:     64,
		Population: 2,
		RemoteProb: 0.5,
		MeanDelay:  1,
		Lookahead:  0.1,
		EndTime:    40,
		Seed:       c.Seed,
		NumPEs:     c.PEs,
		NumKPs:     c.KPs,
		BatchSize:  cellBatchSize,
		// GVTInterval below via kernel default would be too lazy; phold's
		// Config exposes it directly.
		GVTInterval: cellGVTInterval,
		GVTMode:     c.GVTMode,
		Queue:       c.Queue,
		Faults:      c.Faults,
	}
	if endTime > 0 {
		cfg.EndTime = endTime
	}
	var (
		host core.Host
		run  func() (*core.Stats, error)
		m    *phold.Model
		err  error
	)
	switch c.Engine {
	case EngSequential:
		var e *core.Sequential
		if e, m, err = phold.BuildSequential(cfg); err == nil {
			host, run = e, e.Run
		}
	case EngConservative:
		var e *core.Conservative
		if e, m, err = phold.BuildConservative(cfg); err == nil {
			host, run = e, e.Run
		}
	case EngOptimistic:
		var e *core.Simulator
		if e, m, err = phold.Build(cfg); err == nil {
			host, run = e, e.Run
		}
	default:
		err = fmt.Errorf("simcheck: unknown engine %q", c.Engine)
	}
	if err != nil {
		return nil, err
	}
	inst := &instance{
		host: host, run: run, numLPs: host.NumLPs(),
		endTime: cfg.EndTime,
		summary: func() string { return fmt.Sprintf("phold: %d jobs processed", m.TotalProcessed(host)) },
	}
	inst.instrument(c)
	return inst, nil
}

func buildQNet(c Cell, endTime core.Time) (*instance, error) {
	cfg := qnet.Config{
		N:              6,
		JobsPerStation: 2,
		MeanService:    1,
		EndTime:        25,
		Seed:           c.Seed,
		NumPEs:         c.PEs,
		NumKPs:         c.KPs,
		BatchSize:      cellBatchSize,
		GVTInterval:    cellGVTInterval,
		GVTMode:        c.GVTMode,
		Queue:          c.Queue,
		Faults:         c.Faults,
	}
	if endTime > 0 {
		cfg.EndTime = endTime
	}
	var (
		host core.Host
		run  func() (*core.Stats, error)
		m    *qnet.Model
		err  error
	)
	switch c.Engine {
	case EngSequential:
		var e *core.Sequential
		if e, m, err = qnet.BuildSequential(cfg); err == nil {
			host, run = e, e.Run
		}
	case EngOptimistic:
		var e *core.Simulator
		if e, m, err = qnet.Build(cfg); err == nil {
			host, run = e, e.Run
		}
	default:
		err = fmt.Errorf("simcheck: engine %q not supported by qnet", c.Engine)
	}
	if err != nil {
		return nil, err
	}
	inst := &instance{
		host: host, run: run, numLPs: host.NumLPs(),
		endTime: cfg.EndTime,
		summary: func() string { return m.Totals(host, cfg.EndTime).String() },
	}
	inst.instrument(c)
	return inst, nil
}
