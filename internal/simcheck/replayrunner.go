package simcheck

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/core"
	"repro/internal/hotpotato"
	"repro/internal/phold"
	"repro/internal/qnet"
	"repro/internal/replay"
)

// codecNames maps each harness model to its registered replay codec.
var codecNames = map[string]string{
	"hotpotato": hotpotato.CodecName,
	"phold":     phold.CodecName,
	"qnet":      qnet.CodecName,
}

// SpecForCell builds the replay spec describing cell c: the complete
// recipe — model, codec, engine shape, scheduling knobs, seed, fault plan
// and mutation — for re-recording the cell's run. EndTime is left zero
// (model default); recording resolves it.
func SpecForCell(c Cell) replay.Spec {
	return replay.Spec{
		Model:       c.Model,
		Codec:       codecNames[c.Model],
		Queue:       c.Queue,
		Mutation:    string(c.Mutation),
		PEs:         c.PEs,
		KPs:         c.KPs,
		BatchSize:   cellBatchSize,
		GVTInterval: cellGVTInterval,
		Seed:        c.Seed,
		Faults:      c.Faults,
	}
}

// Runner adapts the harness's model registry to the replay subsystem: it
// rebuilds a Spec's cell under the requested engine, with the mutation and
// fault plan armed only on optimistic builds — mirroring the matrix's
// reference semantics, where the sequential oracle is always clean.
type Runner struct{}

// Build implements replay.Runner.
func (Runner) Build(spec replay.Spec, eng replay.Engine, bootstrap bool) (*replay.Instance, error) {
	c := Cell{
		Model: spec.Model,
		PEs:   spec.PEs,
		KPs:   spec.KPs,
		Queue: spec.Queue,
		Seed:  spec.Seed,
	}
	switch eng {
	case replay.EngineSequential:
		c.Engine = EngSequential
	case replay.EngineOptimistic:
		c.Engine = EngOptimistic
		c.Faults = spec.Faults
		c.Mutation = Mutation(spec.Mutation)
		if c.Mutation != MutNone {
			known := false
			for _, m := range Mutations() {
				if m == c.Mutation {
					known = true
				}
			}
			if !known {
				return nil, fmt.Errorf("simcheck: unknown mutation %q (have %v)", spec.Mutation, Mutations())
			}
		}
	default:
		return nil, fmt.Errorf("simcheck: replay engine %q not supported", eng)
	}
	ms, ok := models[spec.Model]
	if !ok {
		return nil, fmt.Errorf("simcheck: unknown model %q (have %v)", spec.Model, ModelNames())
	}
	if !ms.engines[c.Engine] {
		return nil, fmt.Errorf("simcheck: model %q does not support engine %q", spec.Model, c.Engine)
	}
	inst, err := ms.build(c, spec.EndTime)
	if err != nil {
		return nil, err
	}
	ri := &replay.Instance{
		Host:    inst.host,
		Run:     inst.run,
		Trace:   inst.rec,
		NumLPs:  inst.numLPs,
		NumPEs:  1,
		EndTime: inst.endTime,
	}
	switch h := inst.host.(type) {
	case *core.Simulator:
		ri.NumPEs = h.NumPEs()
		ri.Bootstrap = h.ForEachBootstrap
		ri.SetRecord = h.SetRecord
		if !bootstrap {
			h.DropBootstrap()
		}
	case *core.Sequential:
		ri.Bootstrap = h.ForEachBootstrap
		if !bootstrap {
			h.DropBootstrap()
		}
	default:
		return nil, fmt.Errorf("simcheck: engine %q host cannot replay", c.Engine)
	}
	return ri, nil
}

// AutoRecord re-records a diverging optimistic cell through the replay
// subsystem, shrinks the recording to a minimal failing log, and writes it
// under dir, returning the artifact path. If the shrink cannot reproduce
// the failure (a flaky divergence) the unshrunk recording is written
// instead — a recording of the diverging configuration is still the best
// available artifact. Matrix.AutoRecord uses it for every diverging
// optimistic cell; the soak harness calls it directly for failed
// episodes. logf must be non-nil.
func AutoRecord(dir string, c Cell, logf func(format string, args ...any)) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	lg, err := replay.Record(Runner{}, SpecForCell(c))
	if err != nil {
		return "", err
	}
	if res, err := replay.Shrink(Runner{}, lg, logf); err != nil {
		logf("auto-record [%s] shrink failed (%v); keeping full recording", c, err)
	} else {
		logf("auto-record [%s] shrunk %d->%d injections, horizon %v->%v in %d tests",
			c, res.FromInjections, res.ToInjections, res.FromEndTime, res.ToEndTime, res.Tests)
		lg = res.Log
	}
	path := filepath.Join(dir, artifactName(c))
	return path, replay.WriteFile(path, lg)
}

// artifactName renders a cell into a stable, filesystem-safe file name.
func artifactName(c Cell) string {
	name := fmt.Sprintf("%s-%s-pe%d-kp%d-%s-seed%d", c.Model, c.Engine, c.PEs, c.KPs, c.Queue, c.Seed)
	if c.Faults != nil {
		name += fmt.Sprintf("-faults%x", c.Faults.Seed)
	}
	if c.Mutation != MutNone {
		name += "-" + string(c.Mutation)
	}
	return strings.ReplaceAll(name, string(os.PathSeparator), "_") + ".replay"
}
