package simcheck

import (
	"testing"
)

// TestMemoryBoundDifferential is the pressure valve's differential gate:
// a PHOLD cell run with the per-PE live-event budget squeezed to ~25% of
// the unbounded run's peak must commit the identical trace and final
// state, while core.Stats proves the valve both engaged and held.
func TestMemoryBoundDifferential(t *testing.T) {
	base := Cell{Model: "phold", Engine: EngOptimistic, PEs: 4, KPs: 8, Queue: "heap", Seed: 42}
	free, err := RunCell(base)
	if err != nil {
		t.Fatal(err)
	}
	if free.Stats.LivePeak < 8 {
		t.Fatalf("unbounded live peak %d too small to squeeze; tune the cell", free.Stats.LivePeak)
	}

	bounded := base
	bounded.MaxLive = int(free.Stats.LivePeak / 4)
	if bounded.MaxLive < 2 {
		bounded.MaxLive = 2
	}
	bounded.Paranoid = true // the gauge identity is checked every sweep
	got, err := RunCell(bounded)
	if err != nil {
		t.Fatal(err)
	}
	if diffs := compare(free.FP, got.FP); len(diffs) > 0 {
		t.Fatalf("bounded run diverged from unbounded: %v", diffs)
	}
	if got.Stats.MemThrottles == 0 {
		t.Fatalf("valve never engaged at budget %d (unbounded peak %d)", bounded.MaxLive, free.Stats.LivePeak)
	}
	// Per-pass overshoot is bounded by the cell batch size plus the events
	// already below GVT+window when the clamp bit; the default window for
	// this cell (EndTime/64 ≈ 0.6 vs mean delay 1) keeps that to a handful.
	slack := int64(cellBatchSize + 16)
	if got.Stats.LivePeak > int64(bounded.MaxLive)+slack {
		t.Fatalf("bounded live peak %d exceeds budget %d + slack %d",
			got.Stats.LivePeak, bounded.MaxLive, slack)
	}
}

// TestMemoryBoundSweepInMatrix: the Smoke matrix carries bounded
// optimistic cells, and they must differ from their unbounded twins only
// in scheduling — i.e. the matrix reports zero divergences (covered by
// TestSmokeMatrix) and actually contains maxlive cells.
func TestMemoryBoundSweepInMatrix(t *testing.T) {
	m := Smoke()
	found := false
	for _, model := range m.Models {
		spec := models[model]
		for _, c := range m.cells(model, m.Seeds[0], spec) {
			if c.MaxLive > 0 {
				if c.Engine != EngOptimistic {
					t.Fatalf("bounded cell on non-optimistic engine: %s", c)
				}
				found = true
			}
		}
	}
	if !found {
		t.Fatal("Smoke matrix carries no memory-bounded cells")
	}
}
