package simcheck

import (
	"testing"

	"repro/internal/core"
)

// TestMemoryBoundDifferential is the pressure valve's differential gate:
// a PHOLD cell run with the per-PE live-event budget squeezed to ~25% of
// the unbounded run's peak must commit the identical trace and final
// state, while core.Stats proves the valve both engaged and held. Barrier
// mode: the valve needs an unbounded control run to squeeze, and the async
// engine's speculation quota would bound the peak on its own.
func TestMemoryBoundDifferential(t *testing.T) {
	base := Cell{Model: "phold", Engine: EngOptimistic, PEs: 4, KPs: 8, Queue: "heap", Seed: 42,
		GVTMode: core.GVTBarrier}
	free, err := RunCell(base)
	if err != nil {
		t.Fatal(err)
	}
	if free.Stats.LivePeak < 8 {
		t.Fatalf("unbounded live peak %d too small to squeeze; tune the cell", free.Stats.LivePeak)
	}

	bounded := base
	bounded.MaxLive = int(free.Stats.LivePeak / 4)
	if bounded.MaxLive < 2 {
		bounded.MaxLive = 2
	}
	bounded.Paranoid = true // the gauge identity is checked every sweep
	got, err := RunCell(bounded)
	if err != nil {
		t.Fatal(err)
	}
	if diffs := compare(free.FP, got.FP); len(diffs) > 0 {
		t.Fatalf("bounded run diverged from unbounded: %v", diffs)
	}
	if got.Stats.MemThrottles == 0 {
		t.Fatalf("valve never engaged at budget %d (unbounded peak %d)", bounded.MaxLive, free.Stats.LivePeak)
	}
	// Events below GVT+window are deliberately executable regardless of the
	// gauge (they are what keeps GVT advancing), and at this cell's scale
	// that exempt population — up to a window's worth of the 128 circulating
	// jobs — can dominate the peak in the scheduling tail, so an absolute
	// budget+slack bound is not a theorem here and was observed flaking.
	// The hard per-pass bound is proven in core's TestMemoryValveBoundsLiveEvents
	// on a model whose exempt population is controlled; what this cell can
	// guarantee is that the squeezed run never needs materially more memory
	// than the unbounded one.
	slack := int64(cellBatchSize + 16)
	if got.Stats.LivePeak > free.Stats.LivePeak+slack {
		t.Fatalf("bounded live peak %d exceeds unbounded peak %d + slack %d",
			got.Stats.LivePeak, free.Stats.LivePeak, slack)
	}
}

// TestMemoryBoundSweepInMatrix: the Smoke matrix carries bounded
// optimistic cells, and they must differ from their unbounded twins only
// in scheduling — i.e. the matrix reports zero divergences (covered by
// TestSmokeMatrix) and actually contains maxlive cells.
func TestMemoryBoundSweepInMatrix(t *testing.T) {
	m := Smoke()
	found := false
	for _, model := range m.Models {
		spec := models[model]
		for _, c := range m.cells(model, m.Seeds[0], spec) {
			if c.MaxLive > 0 {
				if c.Engine != EngOptimistic {
					t.Fatalf("bounded cell on non-optimistic engine: %s", c)
				}
				found = true
			}
		}
	}
	if !found {
		t.Fatal("Smoke matrix carries no memory-bounded cells")
	}
}
