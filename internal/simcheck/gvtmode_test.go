package simcheck

import (
	"testing"

	"repro/internal/core"
)

// TestGVTModeDifferential is the async GVT algorithm's differential gate:
// the same PHOLD cell run under the circulating-token algorithm and under
// the stop-the-world barrier must commit the identical trace and final
// state — GVT is scheduling-only, so the algorithm computing it must never
// show through. Faulted twins stress the interesting interleavings (forced
// rollbacks while the token circulates, suppressed round requests).
func TestGVTModeDifferential(t *testing.T) {
	base := Cell{Model: "phold", Engine: EngOptimistic, PEs: 4, KPs: 8, Queue: "heap", Seed: 42}
	for _, faults := range []*core.Faults{nil, DefaultFaults(), BurstFaults()} {
		async := base
		async.GVTMode = core.GVTAsync
		async.Faults = faults
		barrier := base
		barrier.GVTMode = core.GVTBarrier
		barrier.Faults = faults

		a, err := RunCell(async)
		if err != nil {
			t.Fatalf("[%s]: %v", async, err)
		}
		b, err := RunCell(barrier)
		if err != nil {
			t.Fatalf("[%s]: %v", barrier, err)
		}
		if diffs := compare(a.FP, b.FP); len(diffs) > 0 {
			t.Fatalf("async diverged from barrier (faults=%+v): %v", faults, diffs)
		}
		if a.Stats.GVTMode != core.GVTAsync || b.Stats.GVTMode != core.GVTBarrier {
			t.Fatalf("stats report wrong modes: %q vs %q", a.Stats.GVTMode, b.Stats.GVTMode)
		}
		if a.Stats.GVTRounds == 0 || b.Stats.GVTRounds == 0 {
			t.Fatalf("a mode computed no GVT rounds: async=%d barrier=%d",
				a.Stats.GVTRounds, b.Stats.GVTRounds)
		}
	}
}

// TestGVTModeSweepInMatrix: the Smoke matrix sweeps both GVT modes on
// optimistic cells only — the divergence check itself is covered by
// TestSmokeMatrix, so here we only assert the cells exist.
func TestGVTModeSweepInMatrix(t *testing.T) {
	m := Smoke()
	modes := map[string]bool{}
	for _, model := range m.Models {
		spec := models[model]
		for _, c := range m.cells(model, m.Seeds[0], spec) {
			if c.GVTMode != "" {
				if c.Engine != EngOptimistic {
					t.Fatalf("GVT-mode cell on non-optimistic engine: %s", c)
				}
				modes[c.GVTMode] = true
			}
		}
	}
	if !modes[core.GVTAsync] || !modes[core.GVTBarrier] {
		t.Fatalf("Smoke matrix misses a GVT mode: got %v", modes)
	}
}
