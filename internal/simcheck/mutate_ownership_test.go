package simcheck

import (
	"strings"
	"testing"

	"repro/internal/analysis/driver"
)

// lintSelf runs the simlint driver over this package and returns every
// finding, waived included. The MutOwnership seeded bugs live in the
// source itself (ownershipNoise and publishCell in mutate.go), so their
// detector is the static analyzer suite, not the runtime oracle: the
// proof that the mutation "fires" is a waived finding on the seeded line,
// waived being exactly what keeps TestRepoIsClean green while the bug
// stays in-tree.
func lintSelf(t *testing.T) []driver.Finding {
	t.Helper()
	// Patterns resolve from the module root, not the test's directory.
	findings, err := driver.Run(".", false, "./internal/simcheck")
	if err != nil {
		t.Fatalf("simlint failed to run: %v", err)
	}
	return findings
}

// TestMutationOwnershipDetected: ownercheck must flag the seeded
// cross-slot write to peCounter.events — a goroutine-owned field stored
// outside its owner's methods, mirroring the use-after-free bug class the
// PE freelist annotations exist to prevent.
func TestMutationOwnershipDetected(t *testing.T) {
	found := false
	for _, f := range lintSelf(t) {
		if f.Analyzer == "ownercheck" && f.Waived &&
			strings.HasSuffix(f.Position.Filename, "mutate.go") &&
			strings.Contains(f.Message, "write to goroutine-owned field") &&
			strings.Contains(f.Message, "events") {
			found = true
			t.Logf("ownercheck caught the seeded bug: %s", f)
		}
	}
	if !found {
		t.Fatal("ownercheck did not flag the seeded cross-ownership write in ownershipNoise.Forward")
	}
}

// TestMutationPublishOrderDetected: atomiccheck must flag publishCell.leak
// storing the payload after the atomic guard that publishes it.
func TestMutationPublishOrderDetected(t *testing.T) {
	found := false
	for _, f := range lintSelf(t) {
		if f.Analyzer == "atomiccheck" && f.Waived &&
			strings.HasSuffix(f.Position.Filename, "mutate.go") &&
			strings.Contains(f.Message, "after the ready store") {
			found = true
			t.Logf("atomiccheck caught the seeded bug: %s", f)
		}
	}
	if !found {
		t.Fatal("atomiccheck did not flag the seeded publish-order bug in publishCell.leak")
	}
}

// TestMutationOwnershipRunsClean: arming the mutation in a live cell must
// not diverge — the ledger is diagnostic-only, per-LP slots are bumped
// only by their owners and the seeded write is confined to LP 0's
// goroutine, so the oracle sees identical committed histories (and -race
// sees nothing: the bug is a contract violation, not an actual race).
// (The detection happens statically, in the two tests above.)
func TestMutationOwnershipRunsClean(t *testing.T) {
	rep := Run(Matrix{
		Models:   []string{"phold"},
		Engines:  []EngineKind{EngOptimistic},
		PEs:      []int{2},
		KPs:      []int{8},
		Queues:   []string{"heap"},
		Seeds:    []uint64{1},
		Mutation: MutOwnership,
	}, t.Logf)
	for _, d := range rep.Divergences {
		t.Errorf("%s", d)
	}
}
