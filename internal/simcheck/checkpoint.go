package simcheck

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/hotpotato"
	"repro/internal/phold"
	"repro/internal/qnet"
	"repro/internal/replay"
	"repro/internal/trace"
)

// stateCodecNames maps each harness model to its registered replay state
// codec, mirroring codecNames for event payloads. A model missing here
// cannot checkpoint (its LP state has no serialisation).
var stateCodecNames = map[string]string{
	"hotpotato": hotpotato.StateCodecName,
	"phold":     phold.StateCodecName,
	"qnet":      qnet.StateCodecName,
}

// StateCodecName returns the registered replay state codec for a harness
// model, or "" if the model is unknown. The crash harness and the CLIs use
// it to arm checkpoint writers without hard-coding the model→codec mapping.
func StateCodecName(model string) string { return stateCodecNames[model] }

// CheckpointEvery is the default checkpoint cadence in GVT rounds for
// harness-driven runs. The rendezvous rolls every KP back to GVT, so the
// cadence must leave room for real progress between cuts: checkpointing
// every round discards almost all optimistic work each time and the run
// crawls. The harness cells complete in a few hundred GVT rounds, so this
// cadence publishes a handful of checkpoints per run.
const CheckpointEvery = 32

// RunCellResumed runs an optimistic cell across a checkpoint/restore cut:
// phase one runs the cell to completion with a checkpoint published into
// dir every `every` GVT rounds (CheckpointEvery if every <= 0); phase two
// builds the cell again from scratch, restores the last published
// checkpoint and runs only the tail. The returned Result carries the
// composed fingerprint (committed count summed across the cut, trace
// hashes folded from the checkpoint's seeded prefix) and phase two's
// kernel stats — so Stats.Committed < FP.Committed proves the run
// genuinely resumed mid-stream rather than re-running everything.
//
// The composed fingerprint must equal a clean sequential reference run's:
// that is the crash-recovery claim in miniature, and the soak harness holds
// 1-in-N episodes to it.
func RunCellResumed(c Cell, dir string, every int) (Result, error) {
	if c.Engine != EngOptimistic {
		return Result{}, fmt.Errorf("simcheck: resume requires the optimistic engine, not %q", c.Engine)
	}
	if every <= 0 {
		every = CheckpointEvery
	}
	spec, ok := models[c.Model]
	if !ok {
		return Result{}, fmt.Errorf("simcheck: unknown model %q (have %v)", c.Model, ModelNames())
	}
	// Phase one: an ordinary optimistic run, checkpointing every GVT round.
	inst, err := spec.build(c, 0)
	if err != nil {
		return Result{}, err
	}
	sim, ok := inst.host.(*core.Simulator)
	if !ok {
		return Result{}, fmt.Errorf("simcheck: %T cannot checkpoint", inst.host)
	}
	w, err := replay.NewCheckpointWriter(dir, stateCodecNames[c.Model], codecNames[c.Model], inst.rec)
	if err != nil {
		return Result{}, err
	}
	sim.SetCheckpoint(w, every)
	if _, err := inst.run(); err != nil {
		return Result{}, err
	}
	cp, err := replay.LoadCheckpoint(dir)
	if err != nil {
		return Result{}, fmt.Errorf("simcheck: cell published no loadable checkpoint: %w", err)
	}
	// Phase two: a fresh build of the same cell, bootstrap dropped, resumed
	// from the published checkpoint. Its recorder starts seeded with the
	// checkpoint's trace digests, so the folded hashes cover the whole run.
	inst2, err := spec.build(c, 0)
	if err != nil {
		return Result{}, err
	}
	sim2, ok := inst2.host.(*core.Simulator)
	if !ok {
		return Result{}, fmt.Errorf("simcheck: %T cannot resume", inst2.host)
	}
	if err := replay.RestoreCheckpoint(cp, sim2, inst2.rec); err != nil {
		return Result{}, err
	}
	stats, err := inst2.run()
	if err != nil {
		return Result{}, err
	}
	res := Result{
		Cell: c,
		FP: Fingerprint{
			Committed: cp.Committed + stats.Committed,
			TraceLen:  inst2.rec.Len(),
			TraceHash: inst2.rec.Hash(),
			LPHashes:  inst2.rec.LPHashes(inst2.numLPs),
			StateHash: trace.StateHash(inst2.host),
		},
		Stats:   stats,
		Summary: inst2.summary(),
	}
	return res, nil
}
