package simcheck

import (
	"repro/internal/core"
	"repro/internal/phold"
	"repro/internal/routing"
)

// Mutation names a deliberately seeded bug. Mutations exist to validate the
// harness itself: a differential oracle that never fires is
// indistinguishable from one that cannot fire, so the self-test arms each
// mutation in the non-reference cells and asserts a divergence IS reported.
type Mutation string

// The seeded bugs.
const (
	MutNone Mutation = ""
	// MutBrokenReverse makes every odd LP's Reverse handler forget to undo
	// the model state — the classic hand-written reverse-computation bug.
	// It only bites when rollbacks occur, so pair it with a fault plan that
	// forces them.
	MutBrokenReverse Mutation = "broken-reverse"
	// MutBrokenPriority inverts the outcome of the hot-potato policy's
	// Sleeping→Active upgrade comparison (Rand() < 1/24n becomes its
	// complement), the kind of flipped-comparison bug a priority scheme
	// makes easy to write. Hot-potato only.
	MutBrokenPriority Mutation = "broken-priority"
	// MutMapOrder folds Go's randomised map iteration order into PHOLD
	// state on every event — the nondeterminism bug class simlint's
	// determcheck rejects statically (handlers must be pure functions of
	// state, event and the LP's reversible stream). Seeding it here keeps
	// the differential oracle honest about the same contract: two runs of
	// the same cell commit different histories, so the matrix must report
	// a divergence. PHOLD only.
	MutMapOrder Mutation = "map-order"
)

// Mutations lists the seeded bugs available to -mutation.
func Mutations() []Mutation {
	return []Mutation{MutBrokenReverse, MutBrokenPriority, MutMapOrder}
}

// brokenReverse skips the inner Reverse on odd LPs. Commit must still chain
// so trace recording (and model commit pruning) keep working.
type brokenReverse struct{ inner core.Handler }

func (b brokenReverse) Forward(lp *core.LP, ev *core.Event) { b.inner.Forward(lp, ev) }

func (b brokenReverse) Reverse(lp *core.LP, ev *core.Event) {
	if lp.ID%2 == 1 {
		return // seeded bug: forgets to restore state
	}
	b.inner.Reverse(lp, ev)
}

func (b brokenReverse) Commit(lp *core.LP, ev *core.Event) {
	if committer, ok := b.inner.(core.Committer); ok {
		committer.Commit(lp, ev)
	}
}

// brokenPriority flips the Sleeping-state upgrade decision after the fact:
// the inner policy consumes exactly the same random draws (so kernel
// reversal accounting is untouched), but a packet that would have stayed
// Sleeping upgrades and vice versa.
type brokenPriority struct{ inner routing.Policy }

func (b brokenPriority) Name() string { return b.inner.Name() + "+broken-priority" }

func (b brokenPriority) Route(ctx *routing.Ctx) routing.Decision {
	d := b.inner.Route(ctx)
	if ctx.Prio == routing.Sleeping {
		switch d.NewPrio {
		case routing.Sleeping:
			d.NewPrio = routing.Active
		case routing.Active:
			d.NewPrio = routing.Sleeping
		}
	}
	return d
}

// mapOrderNoise perturbs PHOLD state by the first key a map range
// happens to yield. The map is rebuilt per event so every execution —
// including re-execution after a rollback — draws a fresh iteration
// order; committed state becomes run-dependent, which is exactly the
// contract violation determcheck flags at compile time.
type mapOrderNoise struct{ inner core.Handler }

func (m mapOrderNoise) Forward(lp *core.LP, ev *core.Event) {
	m.inner.Forward(lp, ev)
	if st, ok := lp.State.(*phold.State); ok {
		noise := map[int64]int64{1: 1, 2: 2, 3: 3, 5: 5, 8: 8, 13: 13, 21: 21, 34: 34}
		for k := range noise { //simlint:deterministic seeded map-order bug: the simcheck self-test asserts the oracle catches this
			st.Processed += k //simlint:irreversible seeded bug: the noise is unreversible by construction (not a function of state/event)
			break
		}
	}
}

func (m mapOrderNoise) Reverse(lp *core.LP, ev *core.Event) {
	// Deliberately does not undo the noise: the perturbation is not a
	// function of (state, event), so no reverse computation could.
	m.inner.Reverse(lp, ev)
}

func (m mapOrderNoise) Commit(lp *core.LP, ev *core.Event) {
	if committer, ok := m.inner.(core.Committer); ok {
		committer.Commit(lp, ev)
	}
}

// hotpotatoPolicy returns the routing policy for a hot-potato cell,
// mutated when the cell asks for it.
func hotpotatoPolicy(m Mutation) routing.Policy {
	base := routing.NewBusch()
	if m == MutBrokenPriority {
		return brokenPriority{inner: base}
	}
	return base
}
