package simcheck

import (
	"repro/internal/core"
	"repro/internal/routing"
)

// Mutation names a deliberately seeded bug. Mutations exist to validate the
// harness itself: a differential oracle that never fires is
// indistinguishable from one that cannot fire, so the self-test arms each
// mutation in the non-reference cells and asserts a divergence IS reported.
type Mutation string

// The seeded bugs.
const (
	MutNone Mutation = ""
	// MutBrokenReverse makes every odd LP's Reverse handler forget to undo
	// the model state — the classic hand-written reverse-computation bug.
	// It only bites when rollbacks occur, so pair it with a fault plan that
	// forces them.
	MutBrokenReverse Mutation = "broken-reverse"
	// MutBrokenPriority inverts the outcome of the hot-potato policy's
	// Sleeping→Active upgrade comparison (Rand() < 1/24n becomes its
	// complement), the kind of flipped-comparison bug a priority scheme
	// makes easy to write. Hot-potato only.
	MutBrokenPriority Mutation = "broken-priority"
)

// Mutations lists the seeded bugs available to -mutation.
func Mutations() []Mutation { return []Mutation{MutBrokenReverse, MutBrokenPriority} }

// brokenReverse skips the inner Reverse on odd LPs. Commit must still chain
// so trace recording (and model commit pruning) keep working.
type brokenReverse struct{ inner core.Handler }

func (b brokenReverse) Forward(lp *core.LP, ev *core.Event) { b.inner.Forward(lp, ev) }

func (b brokenReverse) Reverse(lp *core.LP, ev *core.Event) {
	if lp.ID%2 == 1 {
		return // seeded bug: forgets to restore state
	}
	b.inner.Reverse(lp, ev)
}

func (b brokenReverse) Commit(lp *core.LP, ev *core.Event) {
	if committer, ok := b.inner.(core.Committer); ok {
		committer.Commit(lp, ev)
	}
}

// brokenPriority flips the Sleeping-state upgrade decision after the fact:
// the inner policy consumes exactly the same random draws (so kernel
// reversal accounting is untouched), but a packet that would have stayed
// Sleeping upgrades and vice versa.
type brokenPriority struct{ inner routing.Policy }

func (b brokenPriority) Name() string { return b.inner.Name() + "+broken-priority" }

func (b brokenPriority) Route(ctx *routing.Ctx) routing.Decision {
	d := b.inner.Route(ctx)
	if ctx.Prio == routing.Sleeping {
		switch d.NewPrio {
		case routing.Sleeping:
			d.NewPrio = routing.Active
		case routing.Active:
			d.NewPrio = routing.Sleeping
		}
	}
	return d
}

// hotpotatoPolicy returns the routing policy for a hot-potato cell,
// mutated when the cell asks for it.
func hotpotatoPolicy(m Mutation) routing.Policy {
	base := routing.NewBusch()
	if m == MutBrokenPriority {
		return brokenPriority{inner: base}
	}
	return base
}
