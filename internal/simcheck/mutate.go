package simcheck

import (
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/phold"
	"repro/internal/routing"
)

// Mutation names a deliberately seeded bug. Mutations exist to validate the
// harness itself: a differential oracle that never fires is
// indistinguishable from one that cannot fire, so the self-test arms each
// mutation in the non-reference cells and asserts a divergence IS reported.
type Mutation string

// The seeded bugs.
const (
	MutNone Mutation = ""
	// MutBrokenReverse makes every odd LP's Reverse handler forget to undo
	// the model state — the classic hand-written reverse-computation bug.
	// It only bites when rollbacks occur, so pair it with a fault plan that
	// forces them.
	MutBrokenReverse Mutation = "broken-reverse"
	// MutBrokenPriority inverts the outcome of the hot-potato policy's
	// Sleeping→Active upgrade comparison (Rand() < 1/24n becomes its
	// complement), the kind of flipped-comparison bug a priority scheme
	// makes easy to write. Hot-potato only.
	MutBrokenPriority Mutation = "broken-priority"
	// MutMapOrder folds Go's randomised map iteration order into PHOLD
	// state on every event — the nondeterminism bug class simlint's
	// determcheck rejects statically (handlers must be pure functions of
	// state, event and the LP's reversible stream). Seeding it here keeps
	// the differential oracle honest about the same contract: two runs of
	// the same cell commit different histories, so the matrix must report
	// a divergence. PHOLD only.
	MutMapOrder Mutation = "map-order"
	// MutOwnership writes to another slot's goroutine-owned counter from
	// outside its owner's methods — the cross-PE sharing bug class
	// simlint's ownercheck rejects statically. Unlike the mutations above
	// it is detected at lint time, not by the differential oracle: the
	// seeded write lives permanently in ownershipNoise below, where
	// TestMutationOwnershipDetected asserts ownercheck flags it.
	MutOwnership Mutation = "ownership"
)

// Mutations lists the seeded bugs available to -mutation.
func Mutations() []Mutation {
	return []Mutation{MutBrokenReverse, MutBrokenPriority, MutMapOrder, MutOwnership}
}

// brokenReverse skips the inner Reverse on odd LPs. Commit must still chain
// so trace recording (and model commit pruning) keep working.
type brokenReverse struct{ inner core.Handler }

func (b brokenReverse) Forward(lp *core.LP, ev *core.Event) { b.inner.Forward(lp, ev) }

func (b brokenReverse) Reverse(lp *core.LP, ev *core.Event) {
	if lp.ID%2 == 1 {
		return // seeded bug: forgets to restore state
	}
	b.inner.Reverse(lp, ev)
}

func (b brokenReverse) Commit(lp *core.LP, ev *core.Event) {
	if committer, ok := b.inner.(core.Committer); ok {
		committer.Commit(lp, ev)
	}
}

// brokenPriority flips the Sleeping-state upgrade decision after the fact:
// the inner policy consumes exactly the same random draws (so kernel
// reversal accounting is untouched), but a packet that would have stayed
// Sleeping upgrades and vice versa.
type brokenPriority struct{ inner routing.Policy }

func (b brokenPriority) Name() string { return b.inner.Name() + "+broken-priority" }

func (b brokenPriority) Route(ctx *routing.Ctx) routing.Decision {
	d := b.inner.Route(ctx)
	if ctx.Prio == routing.Sleeping {
		switch d.NewPrio {
		case routing.Sleeping:
			d.NewPrio = routing.Active
		case routing.Active:
			d.NewPrio = routing.Sleeping
		}
	}
	return d
}

// mapOrderNoise perturbs PHOLD state by the first key a map range
// happens to yield. The map is rebuilt per event so every execution —
// including re-execution after a rollback — draws a fresh iteration
// order; committed state becomes run-dependent, which is exactly the
// contract violation determcheck flags at compile time.
type mapOrderNoise struct{ inner core.Handler }

func (m mapOrderNoise) Forward(lp *core.LP, ev *core.Event) {
	m.inner.Forward(lp, ev)
	if st, ok := lp.State.(*phold.State); ok {
		noise := map[int64]int64{1: 1, 2: 2, 3: 3, 5: 5, 8: 8, 13: 13, 21: 21, 34: 34}
		for k := range noise { //simlint:deterministic seeded map-order bug: the simcheck self-test asserts the oracle catches this
			st.Processed += k //simlint:irreversible seeded bug: the noise is unreversible by construction (not a function of state/event)
			break
		}
	}
}

func (m mapOrderNoise) Reverse(lp *core.LP, ev *core.Event) {
	// Deliberately does not undo the noise: the perturbation is not a
	// function of (state, event), so no reverse computation could.
	m.inner.Reverse(lp, ev)
}

func (m mapOrderNoise) Commit(lp *core.LP, ev *core.Event) {
	if committer, ok := m.inner.(core.Committer); ok {
		committer.Commit(lp, ev)
	}
}

// peCounter is one slot of the ownership-mutation ledger. Its events
// field is goroutine-owned: only the slot's owner — via bump, on the PE
// executing that slot's LP — may touch it.
type peCounter struct {
	events int64 //simlint:owned
}

// bump is the owner-side increment; it exists so the seeded bug below has
// a correct counterpart to contrast with.
func (c *peCounter) bump() { c.events++ }

// publishCell is the seeded publish-order bug: ready is tagged as the
// atomic guard publishing total, but leak stores total *after* ready —
// so a consumer that trusted the guard could read total mid-write. The
// cell is only ever touched from LP 0's goroutine (no consumer exists),
// so arming it races nothing; the bug is caught statically by
// atomiccheck, not by the oracle.
type publishCell struct {
	//simlint:publishes total
	ready atomic.Int64
	total int64
}

func (p *publishCell) leak(v int64) {
	p.ready.Store(1)
	p.total = v //simlint:crosspe seeded publish-order bug: stores the payload after the guard that publishes it; TestMutationPublishOrderDetected asserts atomiccheck flags this line
}

// ownershipNoise is the MutOwnership wrapper: each event first bumps the
// executing LP's own ledger slot (legal — the ledger carries one slot per
// LP), then LP 0's handler also pokes the trailing sentinel slot by
// direct field access — a write to a goroutine-owned field from outside
// its owner's methods, the exact shape ownercheck exists to reject — and
// leaks a running total through the mis-ordered publishCell. The sentinel
// slot belongs to no LP, so the seeded write is confined to LP 0's
// goroutine: arming the mutation races nothing and perturbs no model
// state; the bugs are caught statically, not by the oracle.
type ownershipNoise struct {
	inner  core.Handler
	ledger []peCounter
	cell   *publishCell
}

func (o ownershipNoise) Forward(lp *core.LP, ev *core.Event) {
	o.inner.Forward(lp, ev)
	if n := len(o.ledger); n > 1 {
		if i := int(lp.ID); i < n-1 {
			o.ledger[i].bump()
		}
		if lp.ID == 0 {
			o.ledger[n-1].events++ //simlint:crosspe seeded ownership bug: bypasses the owning slot's bump method; TestMutationOwnershipDetected asserts ownercheck flags this line
			o.cell.leak(o.ledger[n-1].events)
		}
	}
}

func (o ownershipNoise) Reverse(lp *core.LP, ev *core.Event) {
	// The ledger is diagnostic-only (never folded into model state), so
	// leaving the counts un-reversed cannot diverge committed histories.
	o.inner.Reverse(lp, ev)
}

func (o ownershipNoise) Commit(lp *core.LP, ev *core.Event) {
	if committer, ok := o.inner.(core.Committer); ok {
		committer.Commit(lp, ev)
	}
}

// hotpotatoPolicy returns the routing policy for a hot-potato cell,
// mutated when the cell asks for it.
func hotpotatoPolicy(m Mutation) routing.Policy {
	base := routing.NewBusch()
	if m == MutBrokenPriority {
		return brokenPriority{inner: base}
	}
	return base
}
