package simcheck

// Pairwise fault-composition tests: every pair of kernel fault injectors
// (core/faults.go) composed into one plan and run in a short optimistic
// cell against the sequential oracle. Single-injector cells are exercised
// by the standing matrices; pairs are where injector interactions live
// (e.g. MailBurst holding the anti-messages a forced rollback emits while
// GVTDelay stretches the speculation horizon they must chase). CI runs
// this under -race, where the interleavings the compositions force are
// also checked for data races.

import (
	"fmt"
	"testing"

	"repro/internal/core"
)

// TestPairwiseFaultComposition runs each of the C(5,2) injector pairs in
// one optimistic cell per bundled model family, asserting zero divergence
// from the clean sequential reference.
func TestPairwiseFaultComposition(t *testing.T) {
	inj := Injectors()
	// Models alternate per pair so every injector pair meets both the
	// routing-heavy and the uniform-traffic workload over the suite
	// without doubling its runtime.
	modelNames := []string{"hotpotato", "phold"}
	const seed = 42

	refs := make(map[string]Result)
	for _, model := range modelNames {
		ref, err := RunCell(Cell{Model: model, Engine: EngSequential, PEs: 1, KPs: 1, Queue: "heap", Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		refs[model] = ref
	}

	pair := 0
	for i := 0; i < len(inj); i++ {
		for j := i + 1; j < len(inj); j++ {
			model := modelNames[pair%len(modelNames)]
			pair++
			name := fmt.Sprintf("%s+%s/%s", inj[i].Name, inj[j].Name, model)
			t.Run(name, func(t *testing.T) {
				f := &core.Faults{Seed: 0xFA17 + uint64(i*8+j)}
				inj[i].Arm(f, 1)
				inj[j].Arm(f, 1)
				c := Cell{
					Model: model, Engine: EngOptimistic,
					PEs: 2, KPs: 8, Queue: "heap", Seed: seed,
					Faults: f, Paranoid: true,
				}
				got, err := RunCell(c)
				if err != nil {
					t.Fatalf("run failed: %v", err)
				}
				if diffs := compare(refs[model].FP, got.FP); len(diffs) > 0 {
					t.Errorf("composition diverged from sequential oracle: %v", diffs)
				}
			})
		}
	}
	if want := len(inj) * (len(inj) - 1) / 2; pair != want {
		t.Fatalf("ran %d pairs, want %d", pair, want)
	}
}
