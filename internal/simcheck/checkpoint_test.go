package simcheck

import (
	"testing"

	"repro/internal/core"
	"repro/internal/replay"
)

// TestRunCellResumedMatchesSequential is the checkpoint/resume differential:
// for every model and both GVT algorithms, an optimistic run split across a
// checkpoint/restore cut must compose to exactly the fingerprint a clean
// sequential run commits. It also proves the cut was real — the resumed
// phase commits strictly fewer events than the whole run, and the published
// checkpoint sits strictly inside the horizon.
func TestRunCellResumedMatchesSequential(t *testing.T) {
	for _, model := range ModelNames() {
		for _, mode := range []string{core.GVTAsync, core.GVTBarrier} {
			t.Run(model+"/"+mode, func(t *testing.T) {
				t.Parallel()
				refCell := Cell{Model: model, Engine: EngSequential, PEs: 1, KPs: 1, Queue: "heap", Seed: 42}
				ref, err := RunCell(refCell)
				if err != nil {
					t.Fatalf("reference run: %v", err)
				}
				c := Cell{
					Model: model, Engine: EngOptimistic,
					PEs: 4, KPs: 8, Queue: "heap", Seed: 42, GVTMode: mode,
				}
				dir := t.TempDir()
				res, err := RunCellResumed(c, dir, 0)
				if err != nil {
					t.Fatalf("resumed run [%s]: %v", c, err)
				}
				if diffs := Compare(ref.FP, res.FP); len(diffs) > 0 {
					t.Fatalf("resumed fingerprint diverges from sequential reference [%s]:\n%v", c, diffs)
				}
				// The resume must have skipped a committed prefix, not re-run
				// the whole workload.
				if res.Stats.Committed >= res.FP.Committed {
					t.Fatalf("resumed phase committed %d of %d events — nothing was restored",
						res.Stats.Committed, res.FP.Committed)
				}
				cp, err := replay.LoadCheckpoint(dir)
				if err != nil {
					t.Fatalf("load checkpoint: %v", err)
				}
				if cp.GVT <= 0 {
					t.Fatalf("checkpoint GVT %v is not mid-run", cp.GVT)
				}
				if cp.Committed <= 0 {
					t.Fatalf("checkpoint committed count %d is not mid-run", cp.Committed)
				}
			})
		}
	}
}

// TestRunCellResumedUnderFaults holds the checkpoint/resume cut to the
// sequential oracle while the kernel's fault injectors are hammering the
// run: forced rollbacks and shuffled delivery must not leak into what a
// checkpoint captures.
func TestRunCellResumedUnderFaults(t *testing.T) {
	refCell := Cell{Model: "hotpotato", Engine: EngSequential, PEs: 1, KPs: 1, Queue: "heap", Seed: 7}
	ref, err := RunCell(refCell)
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	c := Cell{
		Model: "hotpotato", Engine: EngOptimistic,
		PEs: 4, KPs: 8, Queue: "heap", Seed: 7,
		GVTMode: core.GVTAsync, Faults: DefaultFaults(),
	}
	res, err := RunCellResumed(c, t.TempDir(), 0)
	if err != nil {
		t.Fatalf("resumed run [%s]: %v", c, err)
	}
	if diffs := Compare(ref.FP, res.FP); len(diffs) > 0 {
		t.Fatalf("resumed fingerprint diverges under faults [%s]:\n%v", c, diffs)
	}
}
