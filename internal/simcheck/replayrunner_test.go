package simcheck

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/replay"
)

// TestAutoRecordShrinksMutation is the shrinker's end-to-end self-test: a
// seeded map-order bug must (a) diverge in the matrix, (b) auto-record a
// .replay artifact, (c) shrink to at most half the original injections,
// and (d) still fail — replaying the shrunken log on the clean sequential
// oracle must disagree with the recorded (mutated) fingerprints.
func TestAutoRecordShrinksMutation(t *testing.T) {
	if testing.Short() {
		t.Skip("shrink run in -short mode")
	}
	dir := t.TempDir()
	rep := Run(Matrix{
		Models:     []string{"phold"},
		Engines:    []EngineKind{EngSequential, EngOptimistic},
		PEs:        []int{2},
		KPs:        []int{8},
		Queues:     []string{"heap"},
		Seeds:      []uint64{1},
		Mutation:   MutMapOrder,
		AutoRecord: dir,
	}, t.Logf)
	if rep.OK() {
		t.Fatal("seeded map-order bug went undetected; nothing to record")
	}
	if len(rep.Artifacts) == 0 {
		t.Fatal("diverging optimistic cell produced no .replay artifact")
	}
	path := rep.Artifacts[0]
	if filepath.Dir(path) != dir {
		t.Errorf("artifact %s written outside AutoRecord dir %s", path, dir)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("artifact missing on disk: %v", err)
	}

	lg, err := replay.ReadFile(path)
	if err != nil {
		t.Fatalf("artifact does not decode: %v", err)
	}
	if lg.Spec.Mutation != string(MutMapOrder) {
		t.Errorf("artifact mutation = %q, want %q", lg.Spec.Mutation, MutMapOrder)
	}
	// The full phold bootstrap is 64 LPs x population 2 = 128 injections;
	// the map-order bug fires on every processed event, so ddmin must cut
	// the log to at most half that (the acceptance bar) — in practice far
	// fewer.
	if len(lg.Inject) > 64 {
		t.Errorf("shrunken log keeps %d injections, want <= 64", len(lg.Inject))
	}
	t.Logf("shrunken artifact: %d injections, horizon %v", len(lg.Inject), lg.Spec.EndTime)

	// The minimal log must still fail: the clean sequential oracle replay
	// of the same injections cannot reproduce the mutated recording.
	diffs, err := replay.Replay(Runner{}, lg, replay.EngineSequential)
	if err != nil {
		t.Fatalf("sequential replay of shrunken log errored: %v", err)
	}
	if len(diffs) == 0 {
		t.Error("shrunken log no longer fails: sequential oracle matched the mutated recording")
	}
}

// TestRecordVerifyCleanCell: recording a clean optimistic hot-potato cell
// and replaying it must reproduce every per-round prefix hash and the final
// fingerprint, on both engines. This is the tentpole's determinism claim in
// miniature (the golden-fixture test covers the cross-session variant).
func TestRecordVerifyCleanCell(t *testing.T) {
	spec := SpecForCell(Cell{
		Model: "hotpotato", Engine: EngOptimistic,
		PEs: 2, KPs: 8, Queue: "heap", Seed: 7,
	})
	lg, err := replay.Record(Runner{}, spec)
	if err != nil {
		t.Fatalf("record: %v", err)
	}
	if len(lg.Inject) == 0 {
		t.Fatal("recording captured no injections")
	}
	if len(lg.Rounds) == 0 {
		t.Fatal("recording captured no GVT rounds")
	}
	for _, eng := range []replay.Engine{replay.EngineOptimistic, replay.EngineSequential} {
		diffs, err := replay.Replay(Runner{}, lg, eng)
		if err != nil {
			t.Fatalf("%s replay: %v", eng, err)
		}
		for _, d := range diffs {
			t.Errorf("%s replay diverged: %s", eng, d)
		}
	}
}

// TestRunnerRejectsUnknownSpecs: the Runner must fail loudly, not build a
// half-configured cell, when a log names a model or mutation this build
// does not know (e.g. an artifact from a newer tree).
func TestRunnerRejectsUnknownSpecs(t *testing.T) {
	if _, err := (Runner{}).Build(replay.Spec{Model: "nonesuch", PEs: 1, KPs: 1, Queue: "heap"}, replay.EngineSequential, false); err == nil {
		t.Error("unknown model accepted")
	}
	if _, err := (Runner{}).Build(replay.Spec{Model: "phold", Mutation: "nonesuch", PEs: 2, KPs: 8, Queue: "heap"}, replay.EngineOptimistic, false); err == nil {
		t.Error("unknown mutation accepted")
	}
	if _, err := (Runner{}).Build(SpecForCell(Cell{Model: "qnet", PEs: 2, KPs: 6, Queue: "heap"}), "conservative", false); err == nil {
		t.Error("unsupported replay engine accepted")
	}
}
