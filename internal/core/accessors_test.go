package core

import "testing"

// TestAccessors covers the small read-only surface across all three
// engines: sizes, IDs, placement queries and randomness helpers.
func TestAccessors(t *testing.T) {
	s, err := New(Config{NumLPs: 6, NumPEs: 2, NumKPs: 3, EndTime: 10,
		KPOfLP: func(lp int) int { return lp % 3 },
		PEOfKP: func(kp int) int { return kp % 2 }})
	if err != nil {
		t.Fatal(err)
	}
	if s.NumLPs() != 6 || s.NumKPs() != 3 || s.NumPEs() != 2 {
		t.Fatalf("sizes: %d/%d/%d", s.NumLPs(), s.NumKPs(), s.NumPEs())
	}
	for i := 0; i < 6; i++ {
		lp := s.LP(LPID(i))
		if lp.ID != LPID(i) {
			t.Fatalf("LP %d has ID %d", i, lp.ID)
		}
		if lp.KPID() != i%3 {
			t.Fatalf("LP %d on KP %d, want %d", i, lp.KPID(), i%3)
		}
	}
	for _, kp := range s.kps {
		if kp.ID() != kp.id {
			t.Fatal("KP.ID accessor broken")
		}
	}
	for _, pe := range s.pes {
		if pe.ID() != pe.id {
			t.Fatal("PE.ID accessor broken")
		}
	}
	if s.lookup(-1) != nil || s.lookup(99) != nil {
		t.Fatal("lookup accepted out-of-range IDs")
	}

	cons, err := NewConservative(Config{NumLPs: 4, NumPEs: 2, EndTime: 10}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if cons.NumLPs() != 4 {
		t.Fatalf("conservative NumLPs = %d", cons.NumLPs())
	}
	if cons.pes[0].lookup(99) != nil || cons.pes[0].lookup(-1) != nil {
		t.Fatal("conservative lookup accepted out-of-range IDs")
	}
	mustPanic(t, "conservative negative time", func() { cons.Schedule(0, -1, nil) })
	mustPanic(t, "conservative unknown LP", func() { cons.Schedule(99, 0, nil) })

	seq, err := NewSequential(Config{NumLPs: 4, EndTime: 10})
	if err != nil {
		t.Fatal(err)
	}
	if seq.lookup(99) != nil || seq.lookup(-1) != nil {
		t.Fatal("sequential lookup accepted out-of-range IDs")
	}
	mustPanic(t, "sequential negative time", func() { seq.Schedule(0, -1, nil) })
	mustPanic(t, "sequential unknown LP", func() { seq.Schedule(99, 0, nil) })
}

// TestRandBoolAndNow exercises the remaining LP helpers inside a handler.
func TestRandBoolAndNow(t *testing.T) {
	s, err := New(Config{NumLPs: 1, NumPEs: 1, EndTime: 10, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	trues, total := 0, 0
	s.LP(0).Handler = funcHandler{
		forward: func(lp *LP, ev *Event) {
			if lp.Now() != ev.RecvTime() {
				t.Errorf("Now %v != RecvTime %v", lp.Now(), ev.RecvTime())
			}
			total++
			if lp.RandBool(0.5) {
				trues++
			}
			if ev.RecvTime() < 9 {
				lp.SendSelf(0.5, nil)
			}
		},
		reverse: func(lp *LP, ev *Event) {},
	}
	s.Schedule(0, 0.25, nil)
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if total == 0 {
		t.Fatal("no events ran")
	}
	if trues == 0 || trues == total {
		t.Logf("RandBool produced %d/%d trues (small sample; informational)", trues, total)
	}
}

// TestStateSaverDepthAccessor covers the test hook itself.
func TestStateSaverDepthAccessor(t *testing.T) {
	saver := StateSaving(snapStressModel{numLPs: 1}).(*stateSaver)
	if saver.depth() != 0 {
		t.Fatalf("fresh depth %d", saver.depth())
	}
	saver.snaps = append(saver.snaps, 1, 2, 3)
	saver.base = 1
	if saver.depth() != 2 {
		t.Fatalf("depth %d, want 2", saver.depth())
	}
}
