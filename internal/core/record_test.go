package core

import (
	"reflect"
	"sync"
	"testing"
)

// countingSink is a RecordSink that tallies what the kernel reports. The
// callbacks run on kernel goroutines, so it locks; a real recorder avoids
// the lock via per-PE ownership (see internal/replay), but a test sink
// favours simplicity.
type countingSink struct {
	mu        sync.Mutex
	mailCalls int
	mailMsgs  int
	rollbacks int
	forced    int
	secondary int
	rounds    []Time
	violation string
}

func (s *countingSink) MailBatch(dst, src, n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.mailCalls++
	s.mailMsgs += n
	if n <= 0 {
		s.violation = "MailBatch with n <= 0"
	}
	if dst == src {
		s.violation = "MailBatch from a PE to itself"
	}
}

func (s *countingSink) Rollback(pe, kp, events int, secondary, forced bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rollbacks++
	if forced {
		s.forced++
	}
	if secondary {
		s.secondary++
	}
	if events < 0 {
		s.violation = "Rollback with negative event count"
	}
}

func (s *countingSink) GVTRound(round int64, gvt Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.rounds) > 0 && gvt < s.rounds[len(s.rounds)-1] {
		s.violation = "GVT estimates went backwards"
	}
	s.rounds = append(s.rounds, gvt)
}

// TestRecordSinkObservesRun: with a sink attached, an adversarial multi-PE
// run must report cross-PE mail, rollbacks (forced ones flagged as such)
// and a nondecreasing GVT round sequence — and the sink must not change the
// committed trajectory.
func TestRecordSinkObservesRun(t *testing.T) {
	base := Config{NumLPs: 64, EndTime: 40, Seed: 11}
	want, _ := runStressSequential(t, base, 16)

	cfg := base
	cfg.NumPEs = 4
	cfg.NumKPs = 16
	cfg.BatchSize = 8
	cfg.GVTInterval = 2
	cfg.CheckInvariants = true
	cfg.Faults = &Faults{Seed: 5, RollbackEvery: 2, RollbackDepth: 4, ShuffleMail: true}
	sink := &countingSink{}
	cfg.Record = sink

	got, stats := runStressParallel(t, cfg, 16)
	if !reflect.DeepEqual(got, want) {
		t.Fatal("attaching a record sink changed the committed trajectory")
	}
	if sink.violation != "" {
		t.Fatalf("sink contract violated: %s", sink.violation)
	}
	if sink.mailCalls == 0 || sink.mailMsgs == 0 {
		t.Error("4-PE all-to-all run reported no cross-PE mail")
	}
	if len(sink.rounds) == 0 {
		t.Error("run reported no GVT rounds")
	}
	if sink.forced == 0 {
		t.Errorf("forced-rollback fault plan armed but sink saw %d forced rollbacks", sink.forced)
	}
	if int64(sink.rollbacks) < stats.ForcedRollbacks {
		t.Errorf("sink saw %d rollbacks, stats report %d forced alone", sink.rollbacks, stats.ForcedRollbacks)
	}
}

// TestSetRecordAfterRunPanics pins the misuse guard.
func TestSetRecordAfterRunPanics(t *testing.T) {
	cfg := Config{NumLPs: 4, NumPEs: 1, NumKPs: 1, EndTime: 1, BatchSize: 4, GVTInterval: 4}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.ForEachLP(func(lp *LP) {
		lp.Handler = stressModel{numLPs: 4}
		lp.State = &stressState{}
	})
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("SetRecord after Run did not panic")
		}
	}()
	s.SetRecord(&countingSink{})
}

// TestBootstrapHarvestRoundTrip is the property replay depends on: visiting
// a simulation's bootstrap events with ForEachBootstrap, dropping them, and
// re-scheduling the harvested list must commit the identical trajectory —
// on both engines. (DropBootstrap resets the bootstrap sequence counter, so
// re-injected events get the same tie-breaking identity.)
func TestBootstrapHarvestRoundTrip(t *testing.T) {
	type boot struct {
		dst LPID
		t   Time
		ttl int
	}
	schedule := func(sched func(LPID, Time, any)) {
		for i := 0; i < 16; i++ {
			sched(LPID(i), Time(0.001*float64(i+1)), &stressMsg{TTL: 12})
		}
	}

	t.Run("parallel", func(t *testing.T) {
		cfg := Config{NumLPs: 16, NumPEs: 2, NumKPs: 4, EndTime: 30, Seed: 3,
			BatchSize: 8, GVTInterval: 2, CheckInvariants: true}
		want, _ := runStressParallel(t, cfg, 12)

		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		model := stressModel{numLPs: 16}
		s.ForEachLP(func(lp *LP) { lp.Handler = model; lp.State = &stressState{} })
		schedule(s.Schedule)
		var harvested []boot
		s.ForEachBootstrap(func(dst LPID, tm Time, data any) {
			harvested = append(harvested, boot{dst, tm, data.(*stressMsg).TTL})
		})
		if len(harvested) != 16 {
			t.Fatalf("harvested %d bootstrap events, want 16", len(harvested))
		}
		s.DropBootstrap()
		for _, b := range harvested {
			s.Schedule(b.dst, b.t, &stressMsg{TTL: b.ttl})
		}
		if _, err := s.Run(); err != nil {
			t.Fatal(err)
		}
		got := snapshotStress(s.NumLPs(), s.LP)
		if !reflect.DeepEqual(got, want) {
			t.Fatal("harvest/drop/re-schedule changed the parallel trajectory")
		}
	})

	t.Run("sequential", func(t *testing.T) {
		cfg := Config{NumLPs: 16, EndTime: 30, Seed: 3}
		want, _ := runStressSequential(t, cfg, 12)

		q, err := NewSequential(cfg)
		if err != nil {
			t.Fatal(err)
		}
		model := stressModel{numLPs: 16}
		q.ForEachLP(func(lp *LP) { lp.Handler = model; lp.State = &stressState{} })
		schedule(q.Schedule)
		var harvested []boot
		q.ForEachBootstrap(func(dst LPID, tm Time, data any) {
			harvested = append(harvested, boot{dst, tm, data.(*stressMsg).TTL})
		})
		q.DropBootstrap()
		for _, b := range harvested {
			q.Schedule(b.dst, b.t, &stressMsg{TTL: b.ttl})
		}
		if _, err := q.Run(); err != nil {
			t.Fatal(err)
		}
		got := snapshotStress(q.NumLPs(), q.LP)
		if !reflect.DeepEqual(got, want) {
			t.Fatal("harvest/drop/re-schedule changed the sequential trajectory")
		}
	})
}
