package core

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/eventq"
)

// Conservative is a window-synchronous conservative parallel executor —
// the classical alternative to Time Warp that the optimistic literature
// (and this repository's comparison experiment) measures against.
//
// It relies on a model-declared Lookahead: a strictly positive lower
// bound on every event's send delay. Events in the half-open window
// [T, T+Lookahead), where T is the global minimum pending time, cannot
// affect each other across LPs (anything they send lands at or beyond
// T+Lookahead), so all PEs may execute their share of the window in
// parallel with no possibility of rollback. The engine barriers between
// windows to agree on the next T.
//
// Its performance lives and dies by the lookahead-to-activity ratio: the
// hot-potato model's sub-step schedule offers a usable lookahead (0.05
// steps), while models that forward messages in nanoseconds (pcs, qnet)
// degenerate to one barrier per event — which is exactly the argument for
// optimistic synchronisation, reproduced here as an experiment.
//
// Results are bit-identical to the Sequential engine: within a window,
// cross-LP events are independent, and each PE executes its own LPs'
// events in the kernel's total order.
type Conservative struct {
	cfg       Config
	lookahead Time
	lps       []*LP
	pes       []*consPE
	bar       *barrier
	bootSeq   uint64
	ran       bool

	windowMins []Time
	windowEnd  Time // current window [start, end) shared after barrier
	done       bool

	failOnce sync.Once
	failErr  error

	windows   int64
	processed int64
}

// consPE is one conservative worker: a pending queue and a mailbox, no
// rollback machinery. Its event pool follows the same ownership rule as the
// optimistic kernel's: allocation on the sender's pool, free on the
// destination's — and within a window the destination PE is the only one
// touching the event, so no lock is needed.
type consPE struct {
	id        int
	sim       *Conservative
	pending   eventq.Queue[*Event]
	inbox     mailbox
	batch     []mail
	pool      eventPool
	processed int64
}

// NewConservative builds the conservative engine. lookahead must be a
// strictly positive lower bound on every send delay the model performs;
// the engine enforces it at Send time and fails the run on violation.
func NewConservative(cfg Config, lookahead Time) (*Conservative, error) {
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	if !(lookahead > 0) {
		return nil, errors.New("core: conservative lookahead must be positive")
	}
	c := &Conservative{cfg: cfg, lookahead: lookahead}
	c.pes = make([]*consPE, cfg.NumPEs)
	for i := range c.pes {
		pe := &consPE{id: i, sim: c}
		pe.pending = newEventQueue(cfg.Queue)
		c.pes[i] = pe
	}
	c.lps = make([]*LP, cfg.NumLPs)
	for i := range c.lps {
		kpID := cfg.KPOfLP(i)
		peID := cfg.PEOfKP(kpID)
		lp := &LP{
			ID:  LPID(i),
			rng: newLPStream(cfg.Seed, i),
			eng: c.pes[peID],
			kp:  &KP{id: kpID},
		}
		c.lps[i] = lp
	}
	c.bar = newBarrier(cfg.NumPEs)
	c.windowMins = make([]Time, cfg.NumPEs)
	return c, nil
}

// NumLPs returns the number of logical processes.
func (c *Conservative) NumLPs() int { return len(c.lps) }

// LP returns the logical process with the given ID.
func (c *Conservative) LP(id LPID) *LP { return c.lps[id] }

// ForEachLP applies fn to every LP in ID order.
func (c *Conservative) ForEachLP(fn func(lp *LP)) {
	for _, lp := range c.lps {
		fn(lp)
	}
}

// Schedule enqueues a bootstrap event; same semantics as
// Simulator.Schedule.
func (c *Conservative) Schedule(dst LPID, t Time, data any) {
	if c.ran {
		panic("core: Schedule after Run")
	}
	if t < 0 {
		panic("core: Schedule with negative time")
	}
	if dst < 0 || int(dst) >= len(c.lps) {
		panic("core: Schedule to unknown LP")
	}
	ev := &Event{recvTime: t, dst: dst, src: NoLP, seq: c.bootSeq, Data: data}
	c.bootSeq++
	ev.state = statePending
	c.peOf(dst).pending.Push(ev)
}

func (c *Conservative) peOf(dst LPID) *consPE {
	return c.lps[dst].eng.(*consPE)
}

// scheduleNew implements engine: route to the owning PE, enforcing the
// declared lookahead. The sender is recovered from the event's src — Send
// is only legal during Forward, so the source LP's current event is the
// one that produced ev.
func (pe *consPE) scheduleNew(ev *Event) {
	c := pe.sim
	from := c.lps[ev.src]
	// Allow a ULP of slack: recvTime is now+delay after rounding, so an
	// exactly-lookahead delay can land a hair below it.
	if delay := ev.recvTime - from.cur.recvTime; delay < c.lookahead-c.lookahead*1e-12 {
		panic(fmt.Sprintf("core: conservative lookahead violated: delay %g < declared %g",
			float64(delay), float64(c.lookahead)))
	}
	dst := c.peOf(ev.dst)
	ev.state = statePending
	if dst == pe {
		pe.pending.Push(ev)
		return
	}
	dst.inbox.post(mail{ev: ev})
}

// alloc implements engine: events come from this worker's free list.
func (pe *consPE) alloc() *Event { return pe.pool.get() }

// lookup implements engine.
func (pe *consPE) lookup(id LPID) *LP {
	c := pe.sim
	if id < 0 || int(id) >= len(c.lps) {
		return nil
	}
	return c.lps[id]
}

func (c *Conservative) fail(err error) {
	c.failOnce.Do(func() {
		c.failErr = err
		c.bar.poison()
	})
}

// Run executes windows until the horizon. It may be called once.
func (c *Conservative) Run() (*Stats, error) {
	if c.ran {
		return nil, errors.New("core: Run called twice")
	}
	c.ran = true
	for _, lp := range c.lps {
		if lp.Handler == nil {
			return nil, fmt.Errorf("core: LP %d has no handler", lp.ID)
		}
	}
	start := time.Now()
	var wg sync.WaitGroup
	errs := make([]error, len(c.pes))
	for i, pe := range c.pes {
		wg.Add(1)
		go func(i int, pe *consPE) {
			defer wg.Done()
			errs[i] = pe.run()
		}(i, pe)
	}
	wg.Wait()
	wall := time.Since(start)
	if c.failErr != nil {
		return nil, c.failErr
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	st := &Stats{
		Processed: c.processed,
		Committed: c.processed,
		GVTRounds: c.windows, // window rounds play GVT's role
		NumPEs:    len(c.pes),
		NumKPs:    len(c.pes),
		Wall:      wall,
	}
	for _, pe := range c.pes {
		var ps PEStats
		pe.pool.addTo(&ps)
		st.addPool(ps)
	}
	st.finishPools()
	if secs := wall.Seconds(); secs > 0 {
		st.EventRate = float64(st.Committed) / secs
	}
	st.Efficiency = 1
	return st, nil
}

// run is one conservative worker's loop: agree on a window, execute it,
// repeat.
func (pe *consPE) run() (err error) {
	defer func() {
		if r := recover(); r != nil {
			buf := make([]byte, 16<<10)
			buf = buf[:runtime.Stack(buf, false)]
			err = fmt.Errorf("core: conservative PE %d panicked: %v\n%s", pe.id, r, buf)
			pe.sim.fail(err)
		}
	}()
	c := pe.sim
	for {
		// Drain cross-PE messages produced by the previous window.
		msgs := pe.inbox.drainInto(pe.batch)
		for _, m := range msgs {
			pe.pending.Push(m.ev)
		}
		pe.batch = msgs

		// Agree on the next window start: the global minimum pending time.
		local := TimeInfinity
		if ev, ok := pe.pending.Min(); ok {
			local = ev.recvTime
		}
		c.windowMins[pe.id] = local
		if err := c.bar.await(); err != nil {
			return err
		}
		if pe.id == 0 {
			min := TimeInfinity
			for _, m := range c.windowMins {
				if m < min {
					min = m
				}
			}
			c.windowEnd = min + c.lookahead
			c.done = min >= c.cfg.EndTime
			if !c.done {
				c.windows++
			}
		}
		if err := c.bar.await(); err != nil {
			return err
		}
		if c.done {
			return nil
		}
		end := c.windowEnd
		if end > c.cfg.EndTime {
			end = c.cfg.EndTime
		}

		// Execute this PE's share of the window; no other PE can produce
		// events inside it, so no synchronisation is needed until the next
		// barrier. The whole window is one bulk drain: the bound sorts
		// before every real event at the window end (real destinations
		// are >= 0), and events sent during execution are strictly later
		// than the event executing (positive delays), so same-window
		// local sends are still delivered in-call — identical semantics
		// to the former Min/Pop loop, minus the per-element rebalancing
		// on the ladder.
		bound := &Event{recvTime: end, dst: -1 << 31, src: -1 << 31}
		eventq.Drain(pe.pending, bound, (*Event).before, func(ev *Event) {
			lp := c.lps[ev.dst]
			ev.state = stateProcessed
			ev.Bits = 0
			ev.prevSendSeq = lp.sendSeq
			lp.mode = modeForward
			lp.cur = ev
			lp.Handler.Forward(lp, ev)
			if committer, ok := lp.Handler.(Committer); ok {
				lp.mode = modeCommit
				committer.Commit(lp, ev)
			}
			lp.cur = nil
			lp.mode = modeIdle
			// Committed at execution, like the sequential engine: the
			// event is dead and returns to this worker's pool.
			ev.state = stateCommitted
			pe.pool.release(lp, ev)
			pe.processed++
		})
		if err := c.bar.await(); err != nil {
			return err
		}
		if pe.id == 0 {
			for _, p := range c.pes {
				c.processed += p.processed
				p.processed = 0
			}
		}
	}
}
