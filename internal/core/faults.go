package core

import (
	"errors"

	"repro/internal/rng"
)

// Faults is the kernel's fault-injection plan, consumed by the simcheck
// differential harness. Every injector is adversarial but correctness-
// preserving: it exercises rollback, cancellation, GVT and scheduling paths
// far harder than natural execution does, while the committed trajectory
// must remain bit-identical to a fault-free (and sequential) run. A nil
// plan — the production configuration — compiles to zero overhead on the
// hot paths beyond a pointer test.
//
// Only the optimistic Simulator honours a fault plan; the Sequential and
// Conservative engines have no speculative machinery to stress and ignore
// it.
type Faults struct {
	// Seed drives the injectors' private random stream. The stream only
	// chooses *where* to inject (which KP, what depth, what permutation);
	// committed results must not depend on it.
	Seed uint64

	// RollbackEvery, when positive, forces an artificial rollback on each
	// PE after every n-th non-empty scheduler pass: a random live suffix of
	// a random local KP is unwound through the full reverse-computation
	// path and re-executed. This manufactures rollback volume even in
	// configurations (one PE, generous batches) that would never roll back
	// naturally. Under async GVT the suffix is clamped to events at or
	// above the PE's last token contribution — unwinding below it would
	// violate the promise the circulating round was built on.
	RollbackEvery int
	// RollbackDepth bounds how many events one forced rollback unwinds
	// (uniform in [1, RollbackDepth]; 0 or 1 means exactly one event). The
	// depth is additionally capped at one less than the number of events
	// the pass just executed, so an injecting pass always nets at least one
	// new event and the run cannot stall in an execute/unwind cycle.
	RollbackDepth int

	// GVTDelay, when positive, suppresses all but every (n+1)-th GVT
	// request. GVT rounds are retried by the requesting PEs, so progress is
	// delayed, never lost; the effect is longer speculation horizons, more
	// live events, and later fossil collection.
	GVTDelay int

	// ShuffleMail randomly permutes every drained mailbox batch before it
	// is applied, preserving only the one ordering the kernel relies on: a
	// cancellation is applied after the positive copy of the same event
	// (all positive events first, in random order, then all cancellations,
	// in random order). This simulates adversarial message-delivery
	// interleavings between PEs.
	ShuffleMail bool

	// MailBurst, when positive, holds each PE's outgoing mail batches in
	// the outbox for n scheduler passes, then releases everything at once.
	// This stresses the delayed-flush coalescing path: bursts arrive as
	// one oversized batch (often overflowing a lane into the partial-push
	// retry path), stragglers get older, and the GVT stability loop must
	// keep counting held mail as in flight. GVT rounds force-flush, so
	// held mail never outlives the round that needs it.
	MailBurst int

	// ThrottlePEs, when positive, slows PEs with id < ThrottlePEs: their
	// batch size is capped at ThrottleBatch (default 1) and they yield the
	// processor every pass. Uneven PE progress widens the spread between
	// the fastest and slowest PE, which is what makes stragglers frequent.
	ThrottlePEs int
	// ThrottleBatch is the throttled PEs' batch cap; 0 means 1.
	ThrottleBatch int
}

func (f *Faults) validate() error {
	if f.RollbackEvery < 0 || f.RollbackDepth < 0 || f.GVTDelay < 0 ||
		f.ThrottlePEs < 0 || f.ThrottleBatch < 0 || f.MailBurst < 0 {
		return errors.New("core: Faults fields must be non-negative")
	}
	return nil
}

// peFaults is the per-PE fault-injection state: a private random stream
// (never the model's — injector randomness must not perturb model
// randomness) and the pass counter for forced rollbacks.
type peFaults struct {
	plan   *Faults
	rng    *rng.Stream
	passes int
	burst  int
}

// holdMail implements the MailBurst fault: report true (hold the outbox)
// for MailBurst consecutive flush attempts, then false (release) once.
// Only unforced flushes consult it — the GVT stability loop always flushes.
func (f *peFaults) holdMail() bool {
	if f.plan.MailBurst <= 0 {
		return false
	}
	f.burst++
	if f.burst <= f.plan.MailBurst {
		return true
	}
	f.burst = 0
	return false
}

func newPEFaults(plan *Faults, peID int) *peFaults {
	return &peFaults{
		plan: plan,
		// Spread PE streams far apart from each other and from model
		// streams (which use small sequential ids).
		rng: rng.NewStream(plan.Seed*0x9E3779B1 + uint64(peID)<<32 + 0xFA07),
	}
}

// batchCap returns the PE's effective batch size under throttling.
func (f *peFaults) batchCap(peID, batch int) int {
	if f.plan.ThrottlePEs == 0 || peID >= f.plan.ThrottlePEs {
		return batch
	}
	cap := f.plan.ThrottleBatch
	if cap <= 0 {
		cap = 1
	}
	if cap < batch {
		return cap
	}
	return batch
}

// shuffle applies an in-place Fisher–Yates permutation driven by the fault
// stream.
func (f *peFaults) shuffle(msgs []mail) {
	for i := len(msgs) - 1; i > 0; i-- {
		j := int(f.rng.Integer(0, int64(i)))
		msgs[i], msgs[j] = msgs[j], msgs[i]
	}
}

// perturbMail adversarially reorders a drained mailbox batch. The only
// ordering the kernel's cancellation protocol needs is that an event's
// positive copy is applied before its anti-message; partitioning positives
// before cancellations preserves it (per-sender FIFO through the outbox
// and lane already guarantees the pair arrives in order, hence in the same
// or an earlier drain), while the shuffles within each half explore
// arbitrary arrival interleavings.
func (f *peFaults) perturbMail(msgs []mail) {
	p := 0
	for i := range msgs {
		if !msgs[i].cancel {
			msgs[p], msgs[i] = msgs[i], msgs[p]
			p++
		}
	}
	f.shuffle(msgs[:p])
	f.shuffle(msgs[p:])
}

// maybeForceRollback runs after each non-empty scheduler pass and, every
// RollbackEvery-th pass, unwinds a random live suffix of a random local KP.
// The events re-enter the pending queue and re-execute, so the committed
// trajectory is unchanged — only the rollback machinery gets exercised.
// executed is the number of events the pass just ran; the unwind depth
// stays below it so injection never cancels a whole pass's progress (which
// would turn the run into a non-terminating random walk).
func (pe *PE) maybeForceRollback(executed int) {
	f := pe.faults
	if f.plan.RollbackEvery <= 0 || executed < 2 {
		return
	}
	f.passes++
	if f.passes < f.plan.RollbackEvery {
		return
	}
	f.passes = 0

	start := 0
	if len(pe.kps) > 1 {
		start = int(f.rng.Integer(0, int64(len(pe.kps))-1))
	}
	var kp *KP
	for i := 0; i < len(pe.kps); i++ {
		if cand := pe.kps[(start+i)%len(pe.kps)]; cand.live() > 0 {
			kp = cand
			break
		}
	}
	if kp == nil {
		return
	}
	depth := 1
	if f.plan.RollbackDepth > 1 {
		depth = int(f.rng.Integer(1, int64(f.plan.RollbackDepth)))
	}
	if max := executed - 1; depth > max {
		depth = max
	}
	if live := kp.live(); depth > live {
		depth = live
	}
	if pe.sim.async {
		// A token visit promised that nothing this PE can still affect
		// lies below its folded contribution, and the round publishes an
		// estimate other PEs fossil-collect against. Natural rollbacks
		// keep the promise by causality — they are triggered by mail the
		// sender's coverage ledger already folded in — but a spontaneous
		// unwind of processed events below the promise would emit
		// anti-messages under the published floor, cancelling events
		// already committed and recycled. Clamp the suffix to events
		// at or above the last contribution. (Barrier rounds are
		// quiescent: no injection interleaves with a cut, so no clamp.)
		for depth > 0 && kp.processed[len(kp.processed)-depth].recvTime < pe.lastContrib {
			depth--
		}
		if depth == 0 {
			return
		}
	}
	key := kp.processed[len(kp.processed)-depth].key()
	n := pe.rollback(kp, key)
	pe.forcedRollbacks++
	if rec := pe.sim.cfg.Record; rec != nil {
		rec.Rollback(pe.id, kp.id, n, false, true)
	}
}
