package core

// This file implements copy state saving, the rollback technique of the
// Georgia Tech Time Warp system that ROSS's reverse computation replaced
// (report §3.2.1): instead of undoing an event's effects, the kernel
// snapshots the LP state before every event and reinstates the snapshot
// on rollback.
//
// It exists both as a convenience — models without hand-written Reverse
// handlers can still run optimistically — and as the ablation the report
// implies: the state-saving vs reverse-computation benchmark quantifies
// why ROSS's approach wins when state is large relative to each event's
// footprint.

// SnapshotModel is the model contract for state saving: Forward as usual,
// plus deep-copy in and out of lp.State.
type SnapshotModel interface {
	// Forward executes the event, exactly as Handler.Forward.
	Forward(lp *LP, ev *Event)
	// Snapshot returns a copy of lp.State sufficient to reinstate it;
	// it must not alias mutable memory reachable from lp.State.
	Snapshot(lp *LP) any
	// Restore reinstates a snapshot produced by Snapshot into lp.State.
	Restore(lp *LP, snap any)
}

// stateSaver adapts one LP's SnapshotModel to the Handler interface. It
// keeps the per-LP snapshot history: pushed on Forward, popped from the
// top on Reverse (rollback is LIFO), dropped from the bottom on Commit.
type stateSaver struct {
	m     SnapshotModel
	snaps []any
	base  int
}

// StateSaving adapts a SnapshotModel to the kernel's Handler interface
// using copy state saving. The returned handler holds that LP's snapshot
// stack, so create one adapter per LP:
//
//	h.ForEachLP(func(lp *core.LP) {
//	    lp.Handler = core.StateSaving(model)
//	    lp.State = newState()
//	})
func StateSaving(m SnapshotModel) Handler {
	return &stateSaver{m: m}
}

// Forward implements Handler: snapshot, then execute.
func (s *stateSaver) Forward(lp *LP, ev *Event) {
	s.snaps = append(s.snaps, s.m.Snapshot(lp))
	s.m.Forward(lp, ev)
}

// Reverse implements Handler: reinstate the pre-event snapshot.
func (s *stateSaver) Reverse(lp *LP, ev *Event) {
	top := len(s.snaps) - 1
	s.m.Restore(lp, s.snaps[top])
	s.snaps[top] = nil
	s.snaps = s.snaps[:top]
}

// Commit implements Committer: the pre-event snapshot of a committed
// event can never be needed again; drop it (and chain to the model's own
// Commit if it has one).
func (s *stateSaver) Commit(lp *LP, ev *Event) {
	if committer, ok := s.m.(Committer); ok {
		committer.Commit(lp, ev)
	}
	// Release the snapshot now, not at the next compaction: the dead slot
	// itself is one interface word, but the state copy behind it can be
	// arbitrarily large, and fossil collection is where that memory must
	// actually return.
	s.snaps[s.base] = nil
	s.base++
	// Compact once the dead prefix dominates.
	if s.base > 64 && s.base > len(s.snaps)/2 {
		n := copy(s.snaps, s.snaps[s.base:])
		for i := n; i < len(s.snaps); i++ {
			s.snaps[i] = nil
		}
		s.snaps = s.snaps[:n]
		s.base = 0
	}
}

// depth returns the live snapshot count (uncommitted events); exposed for
// tests.
func (s *stateSaver) depth() int { return len(s.snaps) - s.base }
