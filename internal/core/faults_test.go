package core

import (
	"reflect"
	"testing"
)

// TestFaultsPreserveTrajectory is the fault injectors' defining property:
// under any combination of forced rollbacks, GVT delay, mailbox
// perturbation and PE throttling, the parallel kernel still commits exactly
// the sequential trajectory.
func TestFaultsPreserveTrajectory(t *testing.T) {
	base := Config{NumLPs: 64, EndTime: 40, Seed: 11}
	want, _ := runStressSequential(t, base, 16)

	plans := []struct {
		name string
		f    Faults
	}{
		{"forced-rollbacks", Faults{Seed: 1, RollbackEvery: 2, RollbackDepth: 4}},
		{"gvt-delay", Faults{Seed: 2, GVTDelay: 3}},
		{"shuffle-mail", Faults{Seed: 3, ShuffleMail: true}},
		{"throttle", Faults{Seed: 4, ThrottlePEs: 1, ThrottleBatch: 1}},
		{"everything", Faults{
			Seed: 5, RollbackEvery: 2, RollbackDepth: 4,
			GVTDelay: 1, ShuffleMail: true,
			ThrottlePEs: 1, ThrottleBatch: 1,
		}},
	}
	for _, tc := range plans {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			cfg := base
			cfg.NumPEs = 4
			cfg.NumKPs = 16
			cfg.BatchSize = 8
			cfg.GVTInterval = 2
			cfg.CheckInvariants = true
			cfg.Faults = &tc.f
			got, stats := runStressParallel(t, cfg, 16)
			if !reflect.DeepEqual(got, want) {
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("LP %d diverged under faults: got %+v want %+v", i, got[i], want[i])
					}
				}
			}
			if tc.f.RollbackEvery > 0 && stats.ForcedRollbacks == 0 {
				t.Fatalf("forced-rollback fault armed but ForcedRollbacks == 0\n%s", stats)
			}
			if stats.Processed != stats.Committed+stats.RolledBackEvents {
				t.Fatalf("accounting broken: processed=%d committed=%d rolledBack=%d",
					stats.Processed, stats.Committed, stats.RolledBackEvents)
			}
		})
	}
}

// TestForcedRollbacksGenerateVolume checks the injector manufactures real
// rollback work even in a configuration that would rarely roll back on its
// own (single PE cannot have stragglers at all).
func TestForcedRollbacksGenerateVolume(t *testing.T) {
	cfg := Config{
		NumLPs: 16, NumPEs: 1, NumKPs: 4, EndTime: 30, Seed: 3,
		BatchSize: 8, GVTInterval: 2, CheckInvariants: true,
		Faults: &Faults{Seed: 9, RollbackEvery: 1, RollbackDepth: 4},
	}
	want, _ := runStressSequential(t, Config{NumLPs: 16, EndTime: 30, Seed: 3}, 12)
	got, stats := runStressParallel(t, cfg, 12)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("single-PE forced rollbacks diverged")
	}
	if stats.ForcedRollbacks == 0 || stats.RolledBackEvents == 0 {
		t.Fatalf("expected rollback volume, got forced=%d events=%d",
			stats.ForcedRollbacks, stats.RolledBackEvents)
	}
	if stats.PrimaryRollbacks != 0 {
		t.Fatalf("single PE cannot see stragglers, yet primary rollbacks = %d", stats.PrimaryRollbacks)
	}
}

func TestFaultsValidate(t *testing.T) {
	cfg := Config{NumLPs: 4, EndTime: 1, Faults: &Faults{RollbackEvery: -1}}
	if _, err := New(cfg); err == nil {
		t.Fatal("negative fault field accepted")
	}
}
