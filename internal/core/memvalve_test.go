package core

// Tests for the fossil-collection pressure valve (Config.MaxLiveEvents):
// a bounded run must commit exactly what the unbounded run commits, with a
// bounded concurrent live-event footprint, and the in-run invariant sweep
// (Config.InvariantSweep) must actually fire.

import (
	"sync/atomic"
	"testing"
)

// chainState counts processed events; chainModel forwards each event one
// tick ahead to a fixed next LP, so a closed population of jobs circulates
// forever and live events pile up whenever fossil collection lags.
type chainState struct {
	Processed int64
}

type chainModel struct {
	numLPs int
}

func (m chainModel) Forward(lp *LP, ev *Event) {
	st := lp.State.(*chainState)
	st.Processed++
	next := (int(lp.ID)*7 + 1) % m.numLPs
	lp.Send(LPID(next), 1, nil)
}

func (m chainModel) Reverse(lp *LP, ev *Event) {
	st := lp.State.(*chainState)
	st.Processed--
}

// buildChain constructs a chain-model simulator. The generous GVTInterval
// lets PEs race far ahead of commitment, which is exactly the pressure the
// valve exists to contain. Barrier mode, because these tests need the
// unbounded control run to actually build up a live-event pile: the async
// engine's always-on speculation quota and adaptive window would contain
// it before the valve ever mattered.
func buildChain(t *testing.T, cfg Config) *Simulator {
	t.Helper()
	cfg.NumLPs = 32
	cfg.EndTime = 120
	cfg.BatchSize = 4
	cfg.GVTInterval = 64
	cfg.Seed = 9
	cfg.GVTMode = GVTBarrier
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.ForEachLP(func(lp *LP) {
		lp.Handler = chainModel{numLPs: s.NumLPs()}
		lp.State = &chainState{}
	})
	for i := 0; i < s.NumLPs(); i++ {
		s.Schedule(LPID(i), 0, nil)
	}
	return s
}

func chainTotal(s *Simulator) int64 {
	var total int64
	s.ForEachLP(func(lp *LP) { total += lp.State.(*chainState).Processed })
	return total
}

// TestMemoryValveBoundsLiveEvents: with the valve set well below the
// unbounded run's live peak, the run must still complete, commit the same
// event population, engage the throttle, and keep the concurrent live
// count near the budget.
func TestMemoryValveBoundsLiveEvents(t *testing.T) {
	free := buildChain(t, Config{NumPEs: 2, CheckInvariants: true})
	freeStats, err := free.Run()
	if err != nil {
		t.Fatal(err)
	}
	if freeStats.MemThrottles != 0 {
		t.Fatalf("unbounded run reported %d throttled passes", freeStats.MemThrottles)
	}
	if freeStats.LivePeak < 24 {
		t.Fatalf("unbounded live peak %d too small for the valve to matter; tune the model", freeStats.LivePeak)
	}

	budget := int(freeStats.LivePeak / 4)
	bounded := buildChain(t, Config{
		NumPEs:          2,
		CheckInvariants: true,
		MaxLiveEvents:   budget,
		PressureWindow:  1.5,
	})
	boundedStats, err := bounded.Run()
	if err != nil {
		t.Fatal(err)
	}
	if boundedStats.MemThrottles == 0 {
		t.Fatal("valve never engaged despite a quarter-size budget")
	}
	if boundedStats.Committed != freeStats.Committed {
		t.Fatalf("bounded run committed %d events, unbounded %d", boundedStats.Committed, freeStats.Committed)
	}
	if got, want := chainTotal(bounded), chainTotal(free); got != want {
		t.Fatalf("bounded final state %d, unbounded %d", got, want)
	}
	// The valve is checked once per pass, so a pass may overshoot by up to
	// BatchSize, plus whatever already sat below GVT+window when the clamp
	// bit; with a 1.5-tick window at most one tick's events (<= NumLPs) are
	// below it. Anything past that slack means the clamp is not holding.
	slack := int64(4 /* BatchSize */ + 32 /* one tick of LPs */)
	if boundedStats.LivePeak > int64(budget)+slack {
		t.Fatalf("bounded live peak %d exceeds budget %d + slack %d", boundedStats.LivePeak, budget, slack)
	}
	if boundedStats.LivePeak >= freeStats.LivePeak {
		t.Fatalf("bounded live peak %d not below unbounded peak %d", boundedStats.LivePeak, freeStats.LivePeak)
	}
}

// TestInvariantSweepRuns: InvariantSweep must fire between GVT rounds and
// imply CheckInvariants.
func TestInvariantSweepRuns(t *testing.T) {
	s := buildChain(t, Config{NumPEs: 2, InvariantSweep: 2})
	if !s.cfg.CheckInvariants {
		t.Fatal("InvariantSweep did not imply CheckInvariants")
	}
	stats, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if stats.InvariantSweeps == 0 {
		t.Fatal("no in-run invariant sweeps ran")
	}
}

// TestInvariantSweepCatchesCorruption: an in-run sweep must surface
// planted corruption as a run error even when no GVT round would see it.
func TestInvariantSweepCatchesCorruption(t *testing.T) {
	s := buildChain(t, Config{NumPEs: 1, InvariantSweep: 1})
	// Corrupt the gauge from the first Forward: the next sweep must fail
	// the liveEvents identity.
	var armed atomic.Bool
	s.ForEachLP(func(lp *LP) {
		inner := lp.Handler
		lp.Handler = funcHandler{
			forward: func(lp *LP, ev *Event) {
				inner.Forward(lp, ev)
				if armed.CompareAndSwap(false, true) {
					lp.kp.pe.liveEvents += 100
				}
			},
			reverse: inner.Reverse,
		}
	})
	if _, err := s.Run(); err == nil {
		t.Fatal("corrupted live gauge not caught by in-run sweep")
	}
}

// TestSettersArmValveAndParanoia: the post-construction setters must be
// equivalent to the Config fields, and reject calls after Run.
func TestSettersArmValveAndParanoia(t *testing.T) {
	s := buildChain(t, Config{NumPEs: 2})
	s.SetMemoryBound(16, 0)
	if s.cfg.MaxLiveEvents != 16 || s.cfg.PressureWindow <= 0 {
		t.Fatalf("SetMemoryBound: MaxLiveEvents=%d PressureWindow=%v", s.cfg.MaxLiveEvents, s.cfg.PressureWindow)
	}
	s.SetParanoid(4)
	if !s.cfg.CheckInvariants || s.cfg.InvariantSweep != 4 {
		t.Fatalf("SetParanoid: CheckInvariants=%v InvariantSweep=%d", s.cfg.CheckInvariants, s.cfg.InvariantSweep)
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	mustPanic(t, "SetMemoryBound after Run", func() { s.SetMemoryBound(1, 0) })
	mustPanic(t, "SetParanoid after Run", func() { s.SetParanoid(1) })
}
