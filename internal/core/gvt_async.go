package core

import (
	"sync/atomic"
	"time"
)

// This file is the asynchronous GVT: a Mattern-style token circulating
// PE 0 → 1 → … → N-1 → PE 0. No PE ever blocks on a barrier — each keeps
// executing, learns new estimates from the published GVT word, and
// fossil-collects on its own schedule. The synchronous barrier algorithm
// (gvt.go) remains selectable via Config.GVTMode so the two can be
// verified against each other.
//
// # Transient messages: sender-side coverage
//
// The classical schemes make the receiver prove that every message sent
// before the cut has arrived — by coloring messages and counting, or (the
// FIFO-channel variant) by letting the token queue behind the data. Both
// stall the round behind mail backlogs: a visit cannot complete until the
// receiver drains everything the senders had queued, which under rollback
// storms is exactly when the backlogs are deepest and a fresh GVT is most
// needed. This kernel inverts the obligation: the *sender* covers its own
// in-flight mail, so a token visit never waits on delivery at all.
//
// Each PE keeps, per destination d:
//
//   - outMin[d]: the minimum receive time of all mail posted to d in the
//     current "epoch" (anti-messages count at their target's receive time,
//     which bounds everything the cancellation can cause);
//   - epochs[d]: closed epochs still possibly in flight, each tagged with
//     the destination lane's tail index at close time.
//
// At its token visit the PE contributes min(pending minimum, every open
// and closed epoch minimum) — so any message of ours that might be
// undelivered is counted by us, no matter whose cut it crosses. Then it
// retires coverage exactly: a closed epoch is delivered once the lane's
// consumer-owned head index passes the epoch's recorded tail, and the open
// epoch closes only when the outbox to d is empty (otherwise some of its
// mail has no lane index yet and it keeps accumulating). The lane indices
// make the acking exact — no tags, no counts, no second lap.
//
// # Validity
//
// Round r's cut at PE p is its token visit, at wall time T_r(p); every
// round-(r+1) visit happens after every round-r visit (the token returns
// to PE 0 in between). Consider a message m from s to d:
//
//   - Posted after s's round-r visit: m is caused by an event s executes
//     (or rolls back) after its cut; by induction over causal chains —
//     sends carry strictly positive delay, anti-messages carry their
//     target's receive time — its receive time is bounded below by the
//     round's fold.
//   - Posted before s's round-r visit and not yet retired: counted in s's
//     round-r contribution directly.
//   - Posted before s's round-r visit and retired earlier: retirement
//     means the lane head passed m before some visit ≤ T_r(s), so m was
//     *delivered* before T_r(s) — and therefore before every round-(r+1)
//     cut. By d's round-(r+1) visit, m is in d's pending queue (counted in
//     its pending minimum) or processed (covered by the induction above).
//     Retired coverage is thus only ever needed for one more round, and
//     the round that retires it has already folded it in.
//
// Estimates may transiently fold a stale epoch minimum for mail that was
// delivered, processed and committed rounds ago; completeRound clamps the
// publish to the current GVT, which stays valid because a published floor
// never regresses.
//
// The token's non-holder fields are plain: only the PE named by holder may
// touch them, and the holder store/load chain hands the happens-before
// edge from each PE's visit to the next.
type gvtToken struct {
	// holder is the ID of the PE currently holding the token. Its
	// store/load pairs are the only synchronisation the token uses.
	//
	//simlint:publishes min
	holder atomic.Int64
	_      [56]byte // the plain fields below are single-owner; keep them off the holder's line
	// min is the running fold of this round's contributions.
	min Time //simlint:owned
	// round counts launches; completions are published via sim.gvtRounds.
	round int64 //simlint:owned
}

// outEpoch is one closed batch of sender-side coverage: mail posted to one
// destination whose receive-time minimum is min, all of it pushed into the
// destination lane at indices below tail. The epoch is retired — provably
// delivered — once the lane's head index reaches tail.
type outEpoch struct {
	tail uint64
	min  Time
}

// maxEpochs bounds the per-destination coverage ledger; at the cap the two
// oldest epochs merge (min of mins, the newer tail), which only lengthens
// coverage. The lane bounds live epochs at laneCap messages regardless;
// this just keeps the worst case tidy.
const maxEpochs = 8

// asyncPass is the per-pass GVT step of the async engine, called from the
// run loop after every drain/flush. It is the whole algorithm from one PE's
// view: notice termination, fossil-collect up to any newly published
// estimate, and move the token along if we hold it. Returns done=true when
// the run is over and this PE has committed everything.
func (pe *PE) asyncPass() (bool, error) {
	s := pe.sim
	if s.finished.Load() {
		return true, pe.asyncShutdown()
	}
	if gvt := s.GVT(); gvt > pe.lastFossil {
		pe.lastFossil = gvt
		pe.fossilCollect(gvt)
		if s.cfg.CheckInvariants {
			if err := pe.checkInvariants(gvt); err != nil {
				s.fail(err)
				return false, err
			}
		}
	}
	if n := s.gvtRounds.Load(); n != pe.obsRound {
		// Once per completed round: refill the speculation quota and feed
		// the optimism controller. The controller observes rounds, not GVT
		// advances: rounds complete even while the estimate is pinned, and
		// a rollback storm pins it — narrowing the window is exactly what
		// un-pins it, so gating the controller on advances would deadlock
		// its own feedback loop.
		pe.obsRound = n
		pe.sinceGVT = 0
		if pe.opt != nil {
			pe.opt.observe(pe.processed, pe.rolledBackEvents)
		}
	}
	if s.ckptPending.Load() {
		// A completed round armed a checkpoint: rendezvous before anything
		// else — in particular before PE 0 can launch the next round, which
		// is what makes the flag's lifetime race-free (only PE 0 sets it,
		// and PE 0 is held in the rendezvous until the capture is done).
		if err := pe.checkpointRendezvous(s.GVT()); err != nil {
			return false, err
		}
	}
	if s.token.holder.Load() == int64(pe.id) {
		pe.tokenPass()
	}
	return false, nil
}

// tokenPass advances the token while this PE holds it: complete a returned
// round (PE 0), launch a requested one (PE 0), or contribute and forward.
// A visit never waits — the sender-side coverage ledger means there is no
// delivery condition to block on.
//
//simlint:crosspe token-ordered: only the holder touches the token's plain fields, and forwardToken's holder store hands the happens-before edge to the next visit
func (pe *PE) tokenPass() {
	s := pe.sim
	t := &s.token
	if pe.id == 0 {
		if pe.tokenLaunched {
			// The token circulated back: the fold is the new GVT.
			pe.tokenLaunched = false
			pe.completeRound(t.min)
			return
		}
		// Token parked here between rounds; launch only when someone asked
		// (idle escalation, optimism throttle, or the batch quota — all of
		// which funnel through requestGVT and its GVTDelay suppression).
		if !s.gvtRequested.Load() {
			return
		}
	}

	// Contribute: everything this PE can still affect is bounded by its
	// live pending minimum and its in-flight coverage ledger.
	local := TimeInfinity
	if ev, ok := pe.nextLive(); ok {
		local = ev.recvTime
	}
	for d := range pe.outMin {
		if m := pe.outMin[d]; m < local {
			local = m
		}
		for _, e := range pe.epochs[d] {
			if e.min < local {
				local = e.min
			}
		}
	}
	pe.retireEpochs()
	pe.lastContrib = local
	// Record whether this visit found the PE idle: parking is allowed only
	// after a round whose visit here saw no runnable work completes — that
	// round's estimate then reflects this PE's idleness, so if the whole
	// machine has drained the round discovers termination rather than
	// leaving every PE asleep with no round pending.
	pe.visitIdle = pe.idleMarked
	pe.visitDone = s.gvtRounds.Load() + 1
	if pe.id == 0 {
		t.min = local
		t.round++
		pe.tokenLaunched = true
		pe.roundStart = time.Now()
	} else if local < t.min {
		t.min = local
	}
	pe.forwardToken()
}

// retireEpochs advances the coverage ledger at a token visit, after this
// visit's contribution folded every live entry: epochs whose lane range the
// consumer has drained are dropped, and the open epoch closes against the
// lane's current tail when the outbox holds nothing destined there. Both
// lane indices are safe here — head is the consumer's atomic, tail is our
// own producer word.
func (pe *PE) retireEpochs() {
	s := pe.sim
	for d := range pe.outMin {
		if d == pe.id {
			continue
		}
		lane := &s.pes[d].lanes[pe.id]
		head := lane.head.Load()
		es := pe.epochs[d]
		k := 0
		for _, e := range es {
			if e.tail > head {
				es[k] = e
				k++
			}
		}
		es = es[:k]
		if pe.outMin[d] < TimeInfinity && len(pe.outbox.bufs[d]) == 0 {
			if tail := lane.tail.Load(); tail > head {
				if len(es) == maxEpochs {
					if es[0].min < es[1].min {
						es[1].min = es[0].min
					}
					es = append(es[:0], es[1:]...)
				}
				es = append(es, outEpoch{tail: tail, min: pe.outMin[d]})
			}
			// tail == head means the whole epoch is already delivered.
			pe.outMin[d] = TimeInfinity
		}
		pe.epochs[d] = es
	}
}

// forwardToken hands the token to the next PE in the ring. The holder
// store publishes every plain write this visit made; the wake covers a
// parked successor — token arrival is one of the things a parked PE must
// see promptly, because its contribution is what lets the round (and
// therefore termination detection) complete.
func (pe *PE) forwardToken() {
	s := pe.sim
	next := pe.id + 1
	if next == len(s.pes) {
		next = 0
	}
	s.token.holder.Store(int64(next))
	if next != pe.id {
		s.pes[next].wake()
	}
}

// completeRound publishes a finished round's estimate: PE 0 only, while
// holding the returned token. The clamp keeps publishes monotone (stale
// retired-mail minima can fold in, see the file comment; and the replay
// subsystem requires a nondecreasing recorded GVT sequence).
func (pe *PE) completeRound(est Time) {
	s := pe.sim
	if cur := s.GVT(); est < cur {
		est = cur
	}
	advanced := est > s.GVT()
	s.setGVT(est)
	n := s.gvtRounds.Add(1)
	if hook := s.cfg.OnGVT; hook != nil {
		hook(est)
	}
	if rec := s.cfg.Record; rec != nil {
		rec.GVTRound(n, est)
	}
	s.gvtRequested.Store(false)
	pe.sinceGVT = 0
	pe.gvtLatency += time.Since(pe.roundStart)
	if est >= s.cfg.EndTime {
		s.finished.Store(true)
		s.wakeAll()
	} else if s.checkpointDue(n, est) {
		// Arm the checkpoint rendezvous: every PE's next asyncPass — PE 0's
		// included, before it can launch another round — routes into it.
		// The wake covers parked PEs, and park's recheck keeps anyone from
		// sleeping through the flag.
		s.ckptPending.Store(true)
		s.wakeAll()
	} else if advanced {
		// Parked PEs fossil-collect (and memory-throttled ones re-open
		// their windows) against the new estimate.
		s.wakeAll()
	}
}

// asyncShutdown is the async engine's termination path. The final estimate
// proved no rollback can reach below the end time, but mail at or beyond
// it may still sit in lanes and outboxes; one barrier-synchronized drain to
// the sent==delivered fixed point (the only barrier the async mode ever
// takes, and the machine is done — nothing is stalled by it) parks that
// mail in pending queues so the comms conservation invariants hold at
// exit, then the unconditional final fossil collection commits everything
// processed. Drained events here are all at or beyond the end time: they
// insert as pending (never executing, never rolling anything back) and
// their anti-messages cancel pending events — no new speculation occurs.
func (pe *PE) asyncShutdown() error {
	s := pe.sim
	if err := pe.commsFixedPoint(); err != nil {
		return err
	}
	pe.fossilCollect(TimeInfinity)
	if s.cfg.CheckInvariants {
		if err := pe.checkInvariants(TimeInfinity); err != nil {
			s.fail(err)
			return err
		}
	}
	return nil
}
