package core

import "fmt"

// This file implements the kernel's paranoid mode: structural invariant
// checks that run at every GVT round, when all PEs are quiescent and no
// message is in flight. The checks are aimed at model authors — a Reverse
// handler that fails to restore state, or a handler that mutates another
// LP's state directly, surfaces here as a precise error instead of a
// mysteriously wrong statistic at the end of the run.

// checkInvariants validates this PE's structures. Called between GVT
// barriers (quiescent), after fossil collection, with the just-computed
// GVT.
func (pe *PE) checkInvariants(gvt Time) error {
	// The pressure valve's gauge must agree with ground truth: liveEvents
	// is maintained incrementally (execute, rollback, fossil collection)
	// and a drift here would silently mis-throttle — or never throttle —
	// the memory bound.
	live := int64(0)
	for _, kp := range pe.kps {
		live += int64(kp.live())
	}
	if live != pe.liveEvents {
		return fmt.Errorf("core: invariant: PE %d live-event gauge %d != %d live across KPs",
			pe.id, pe.liveEvents, live)
	}
	for _, kp := range pe.kps {
		// Processed lists ascend strictly in the total event order and
		// hold only processed events at or above the commit horizon.
		var prev *Event
		for i := kp.head; i < len(kp.processed); i++ {
			ev := kp.processed[i]
			if ev == nil {
				return fmt.Errorf("core: invariant: KP %d has nil processed entry", kp.id)
			}
			if ev.state != stateProcessed {
				return fmt.Errorf("core: invariant: KP %d processed list holds event in state %d (%v)",
					kp.id, ev.state, ev)
			}
			if prev != nil && !prev.before(ev) {
				return fmt.Errorf("core: invariant: KP %d processed list out of order: %v then %v",
					kp.id, prev, ev)
			}
			prev = ev
		}
		// lastKey agrees with the tail.
		if tail := kp.tail(); tail != nil {
			if !kp.hasLast || kp.lastKey != tail.key() {
				return fmt.Errorf("core: invariant: KP %d lastKey stale", kp.id)
			}
		}
	}
	// Pending events belong to this PE, are pending or cancelled, and —
	// for live ones — sort after their KP's last processed event (the
	// straggler rule's postcondition).
	var err error
	pe.pending.Each(func(ev *Event) {
		if err != nil {
			return
		}
		switch ev.state {
		case statePending:
			kp := pe.sim.lps[ev.dst].kp
			if kp.pe != pe {
				err = fmt.Errorf("core: invariant: PE %d queue holds event for PE %d (%v)",
					pe.id, kp.pe.id, ev)
				return
			}
			if kp.hasLast && ev.beforeKey(kp.lastKey) {
				err = fmt.Errorf("core: invariant: pending event %v precedes KP %d's last processed",
					ev, kp.id)
				return
			}
		case stateCanceled:
			// Awaiting lazy removal; fine.
		case stateFree:
			err = fmt.Errorf("core: invariant: use after free: pooled event still queued (%v)", ev)
		default:
			err = fmt.Errorf("core: invariant: queued event in state %d (%v)", ev.state, ev)
		}
	})
	return err
}

// checkQuiescentComms validates that this PE's communication state is
// empty at the GVT fixed point: the stability loop has force-flushed every
// outbox and drained every lane (sent == delivered), so anything left
// behind is mail the GVT estimate failed to account for. Unlike
// checkInvariants it must run *inside* the GVT round, right after the
// stability loop breaks — after the round's final barrier other PEs resume
// executing and may legitimately refill this PE's lanes.
func (pe *PE) checkQuiescentComms() error {
	for i := range pe.lanes {
		if !pe.lanes[i].isEmpty() {
			return fmt.Errorf("core: invariant: PE %d lane from PE %d not empty at GVT quiescence", pe.id, i)
		}
	}
	for d, buf := range pe.outbox.bufs {
		if len(buf) > 0 {
			return fmt.Errorf("core: invariant: PE %d outbox for PE %d holds %d messages at GVT quiescence",
				pe.id, d, len(buf))
		}
	}
	return nil
}
