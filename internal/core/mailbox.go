package core

import (
	"sync"
	"sync/atomic"
)

// This file is the optimistic kernel's cross-PE communication layer:
// per-sender SPSC lanes (the lock-free mailbox), per-destination outboxes
// that coalesce sends into batches, and the park/wake protocol idle PEs use
// instead of spinning. DESIGN.md ("Communication architecture") carries the
// full correctness argument; the short form is that all ordering the
// cancellation protocol needs is per-sender FIFO, which the outbox and the
// lane both preserve by construction.

// mail is one message between PEs: a positive event or a cancellation
// (anti-message) for one.
type mail struct {
	ev     *Event
	cancel bool
}

// mailbox is a mutex-guarded multi-producer single-consumer queue. The
// optimistic kernel no longer uses it; it remains the right tool for the
// window-synchronous Conservative engine, where producers within one window
// can send an unbounded number of events to one destination with no
// concurrent drain (a bounded lane would fill with no one to empty it) and
// the per-window barrier makes lock contention irrelevant.
type mailbox struct {
	mu  sync.Mutex
	buf []mail
}

func (m *mailbox) post(msg mail) {
	m.mu.Lock()
	m.buf = append(m.buf, msg)
	m.mu.Unlock()
}

// drainInto swaps the buffer out under the lock and returns it; the caller
// recycles the previous batch slice to avoid churn.
func (m *mailbox) drainInto(batch []mail) []mail {
	m.mu.Lock()
	out := m.buf
	m.buf = batch[:0]
	m.mu.Unlock()
	return out
}

// laneCap is the capacity of one SPSC lane; must be a power of two. A full
// lane is not an error: the sender keeps the overflow in its outbox and
// retries next pass (see flushMail), so laneCap only bounds how much mail
// rides in the lock-free buffer at once, never how much can be in flight.
const laneCap = 128

// lane is a bounded single-producer single-consumer ring carrying mail from
// one sender PE to one destination PE. head is written only by the consumer
// (the destination), tail only by the producer (the sender); both grow
// monotonically and are masked into the buffer. The producer publishes a
// whole batch of slot writes with one tail store, and the atomic store/load
// pair is the only synchronisation either side performs — no mutex, no CAS.
//
// Lifecycle tripwire encoded here by design rather than by check: a message
// sitting in a lane is counted as sent-but-not-delivered (the sender bumped
// mailSent at outbox-append time, the consumer bumps mailReceived only at
// drain), so the GVT stability loop cannot reach its fixed point while the
// lane is non-empty — and no event can be fossil-collected or recycled
// while its mail is still in flight. drainMailbox additionally asserts this
// under CheckInvariants.
type lane struct {
	//simlint:spsc
	head atomic.Uint64
	_    [56]byte // keep the consumer-owned and producer-owned indices on separate cache lines
	//simlint:spsc
	//simlint:publishes buf
	tail atomic.Uint64
	_    [56]byte
	buf  [laneCap]mail
}

// push appends up to len(msgs) messages, preserving order, and returns how
// many fit. A single release store of tail publishes the whole batch.
func (l *lane) push(msgs []mail) int {
	head := l.head.Load()
	tail := l.tail.Load()
	n := laneCap - int(tail-head)
	if n > len(msgs) {
		n = len(msgs)
	}
	for i := 0; i < n; i++ {
		l.buf[(tail+uint64(i))&(laneCap-1)] = msgs[i]
	}
	if n > 0 {
		l.tail.Store(tail + uint64(n))
	}
	return n
}

// drain appends every queued message to into and empties the lane. Slots
// are scrubbed so the ring never pins a recycled event's payload, and the
// single head store republishes the freed capacity to the producer.
func (l *lane) drain(into []mail) []mail {
	head := l.head.Load()
	tail := l.tail.Load()
	if head == tail {
		return into
	}
	for i := head; i != tail; i++ {
		slot := &l.buf[i&(laneCap-1)]
		into = append(into, *slot)
		*slot = mail{}
	}
	l.head.Store(tail)
	return into
}

// isEmpty reports whether the lane holds no messages. Exact only when the
// producer is quiescent (GVT invariant checks) or as a conservative hint
// (park's recheck, where a concurrent push re-wakes the PE anyway).
func (l *lane) isEmpty() bool {
	return l.head.Load() == l.tail.Load()
}

// eagerFlushLen is the outbox batch size that triggers an immediate flush
// of that destination instead of waiting for the pass boundary. Coalescing
// amortises the handoff cost, but unbounded batching would let a consumer
// speculate on stale information for a whole pass — more stragglers,
// deeper rollbacks, more anti-messages. The threshold keeps the latency
// bounded while still collapsing a pass's worth of small sends into a few
// lane pushes.
const eagerFlushLen = 16

// outbox coalesces a PE's outgoing remote mail into per-destination batches
// that flush when they reach eagerFlushLen and at every scheduling-pass
// boundary. bufs is indexed by destination PE; dirty lists destinations
// with queued mail in first-touch order, so a flush visits only live
// batches.
type outbox struct {
	bufs  [][]mail
	dirty []int
}

// post queues one outgoing message for a remote destination PE. The
// per-PE mailSent counter doubles as this PE's shard of the global
// in-flight accounting: it is bumped here, at append time, so mail parked
// in the outbox (or a lane) keeps the GVT stability loop unstable and the
// referenced event alive.
func (pe *PE) post(dst *PE, msg mail) {
	ob := &pe.outbox
	d := dst.id
	if len(ob.bufs[d]) == 0 {
		ob.dirty = append(ob.dirty, d)
	}
	ob.bufs[d] = append(ob.bufs[d], msg)
	pe.mailSent++
	if pe.sim.async {
		// Token-GVT sender coverage: the open epoch's minimum receive time
		// for this destination (see gvt_async.go). An anti-message carries
		// its target's receive time, which bounds everything the
		// cancellation can cause.
		if t := msg.ev.recvTime; t < pe.outMin[d] {
			pe.outMin[d] = t
		}
	}
	if len(ob.bufs[d]) >= eagerFlushLen &&
		(pe.faults == nil || pe.faults.plan.MailBurst == 0) {
		pe.flushDst(d)
	}
}

// flushDst pushes one destination's batch into its lane, keeping any
// overflow (full lane) in the outbox in order. The destination stays in
// the dirty list either way; flushMail compacts entries that emptied.
func (pe *PE) flushDst(d int) {
	buf := pe.outbox.bufs[d]
	if len(buf) == 0 {
		return
	}
	dst := pe.sim.pes[d]
	n := dst.lanes[pe.id].push(buf)
	if n == 0 {
		return
	}
	pe.batchesFlushed++
	pe.batchedMessages += int64(n)
	if n < len(buf) {
		rest := copy(buf, buf[n:])
		for i := rest; i < len(buf); i++ {
			buf[i] = mail{}
		}
		buf = buf[:rest]
	} else {
		buf = buf[:0]
	}
	pe.outbox.bufs[d] = buf
	dst.wake()
}

// flushMail pushes every dirty outbox batch into the destination's lane for
// this sender. When a lane is full, the unsent suffix stays in the outbox —
// in order — and is retried on the next pass or the next GVT stability
// iteration; the sender never spins on a full lane, which matters because
// the consumer may itself be blocked at a GVT barrier waiting for this PE.
// force bypasses the MailBurst fault's hold (the GVT stability loop must
// always flush, or held mail could outlive the round that needs it).
func (pe *PE) flushMail(force bool) {
	ob := &pe.outbox
	if len(ob.dirty) == 0 {
		return
	}
	if !force && pe.faults != nil && pe.faults.holdMail() {
		return
	}
	keep := ob.dirty[:0]
	for _, d := range ob.dirty {
		pe.flushDst(d)
		if len(ob.bufs[d]) > 0 {
			keep = append(keep, d)
		}
	}
	ob.dirty = keep
}

// drainMailbox empties every inbound lane and applies the messages:
// positive events are inserted (possibly triggering a primary rollback),
// cancellations are resolved (possibly triggering a secondary rollback).
// Scanning lanes in sender order costs O(NumPEs) atomic loads; the payoff
// is that per-sender FIFO — the only order the cancellation protocol
// needs — holds structurally.
func (pe *PE) drainMailbox() {
	msgs := pe.batch[:0]
	rec := pe.sim.cfg.Record
	for i := range pe.lanes {
		before := len(msgs)
		msgs = pe.lanes[i].drain(msgs)
		if rec != nil {
			if n := len(msgs) - before; n > 0 {
				rec.MailBatch(pe.id, i, n)
			}
		}
	}
	pe.batch = msgs
	if len(msgs) == 0 {
		return
	}
	pe.mailReceived += int64(len(msgs))
	if n := int64(len(msgs)); n > pe.mailboxPeak {
		pe.mailboxPeak = n
	}
	if pe.faults != nil && pe.faults.plan.ShuffleMail && len(msgs) > 1 {
		pe.faults.perturbMail(msgs)
	}
	check := pe.sim.cfg.CheckInvariants
	for _, m := range msgs {
		if check {
			// In-flight lifecycle tripwires: a positive event must still be
			// in its freshly-allocated state (no one may touch it before the
			// destination), and a cancellation's target must not have been
			// recycled while its anti-message rode a lane.
			if !m.cancel && m.ev.state != stateInit {
				panic("core: remote event drained in state " + m.ev.String())
			}
			if m.cancel && m.ev.state == stateFree {
				panic("core: use after free: anti-message drained for pooled event " + m.ev.String())
			}
		}
		if m.cancel {
			pe.cancelLocal(m.ev)
		} else {
			pe.insert(m.ev)
		}
	}
}

// hasInbound reports whether any inbound lane holds mail.
func (pe *PE) hasInbound() bool {
	for i := range pe.lanes {
		if !pe.lanes[i].isEmpty() {
			return true
		}
	}
	return false
}

// wake unparks the PE if it is parked. The CAS elects exactly one waker per
// park; the buffered channel makes the token-send non-blocking, and a stale
// token (left when the parking PE bailed out in its recheck) only causes a
// benign spurious wake. Callers: flushMail after landing mail in a lane,
// requestGVT (a parked PE must join the barrier), and fail.
func (pe *PE) wake() {
	if pe.parked.CompareAndSwap(true, false) {
		pe.wakes.Add(1)
		select {
		case pe.wakeCh <- struct{}{}:
		default:
		}
	}
}

// wakeAll unparks every PE; called when a global phase change (GVT request,
// failure) needs all PEs moving.
func (s *Simulator) wakeAll() {
	for _, pe := range s.pes {
		pe.wake()
	}
}

// park blocks until another PE wakes this one. The Dekker-style recheck
// after publishing parked=true closes the sleep/wake race: a sender either
// observes parked=true after its lane push and wakes us, or pushed before
// our store — in which case hasInbound sees its mail (the push's tail store
// and our parked store are both sequentially consistent). The same argument
// covers the async token: forwardToken stores the holder and then wakes the
// successor, so either the wake finds us parked or our recheck sees the
// holder store and bails — a PE can never sleep while holding the token.
// In barrier mode the run loop additionally only calls park after a GVT
// round has come and gone with this PE continuously idle, which proves no
// mail was in flight toward it when it went idle.
func (pe *PE) park() {
	s := pe.sim
	pe.parked.Store(true)
	if pe.hasInbound() || len(pe.outbox.dirty) > 0 ||
		s.gvtRequested.Load() || s.finished.Load() || s.ckptPending.Load() ||
		(s.async && s.token.holder.Load() == int64(pe.id)) {
		pe.parked.Store(false)
		return
	}
	pe.parks++
	<-pe.wakeCh
	pe.parked.Store(false)
}
