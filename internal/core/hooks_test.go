package core

import (
	"sync"
	"testing"
)

// TestOnGVTMonotonic: GVT estimates must be non-decreasing and end at or
// beyond the horizon (TimeInfinity once the population drains).
func TestOnGVTMonotonic(t *testing.T) {
	var mu sync.Mutex
	var gvts []Time
	cfg := Config{
		NumLPs: 32, EndTime: 40, Seed: 5, NumPEs: 4, NumKPs: 8,
		BatchSize: 4, GVTInterval: 2,
		OnGVT: func(gvt Time) {
			mu.Lock()
			gvts = append(gvts, gvt)
			mu.Unlock()
		},
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	model := stressModel{numLPs: 32}
	s.ForEachLP(func(lp *LP) { lp.Handler = model; lp.State = &stressState{} })
	for i := 0; i < 32; i++ {
		s.Schedule(LPID(i), Time(0.001*float64(i+1)), &stressMsg{TTL: 30})
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(gvts) == 0 {
		t.Fatal("OnGVT never fired")
	}
	for i := 1; i < len(gvts); i++ {
		if gvts[i] < gvts[i-1] {
			t.Fatalf("GVT went backwards: %v then %v", gvts[i-1], gvts[i])
		}
	}
	if last := gvts[len(gvts)-1]; last < cfg.EndTime {
		t.Fatalf("final GVT %v below horizon %v", last, cfg.EndTime)
	}
}

// TestOnRollbackMatchesStats: the hook's event counts must sum to the
// kernel's rolled-back statistic, with the right secondary attribution.
func TestOnRollbackMatchesStats(t *testing.T) {
	var mu sync.Mutex
	var hookEvents int64
	var primary, secondary int64
	cfg := Config{
		NumLPs: 64, EndTime: 60, Seed: 11, NumPEs: 4, NumKPs: 8,
		BatchSize: 2, GVTInterval: 1,
		OnRollback: func(kp int, events int, sec bool) {
			mu.Lock()
			hookEvents += int64(events)
			if sec {
				secondary++
			} else {
				primary++
			}
			mu.Unlock()
		},
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	model := stressModel{numLPs: 64}
	s.ForEachLP(func(lp *LP) { lp.Handler = model; lp.State = &stressState{} })
	for i := 0; i < 64; i++ {
		s.Schedule(LPID(i), Time(0.001*float64(i+1)), &stressMsg{TTL: 30})
	}
	stats, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if hookEvents != stats.RolledBackEvents {
		t.Fatalf("hook saw %d rolled-back events, stats %d", hookEvents, stats.RolledBackEvents)
	}
	if primary != stats.PrimaryRollbacks || secondary != stats.SecondaryRollbacks {
		t.Fatalf("hook rollbacks %d/%d, stats %d/%d",
			primary, secondary, stats.PrimaryRollbacks, stats.SecondaryRollbacks)
	}
}
