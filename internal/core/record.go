package core

// RecordSink receives low-level kernel occurrences for the record/replay
// subsystem (internal/replay): cross-PE mail arrival batches, rollback
// points, and GVT rounds. Every callback runs on a kernel goroutine in the
// scheduling hot path, so implementations must be cheap, must not block,
// and must not call back into the simulator. The arguments are plain
// integers and times on purpose — a sink never sees an *Event, so it can
// neither retain a pooled event nor force an allocation at the call site.
// A nil sink (the default) costs one pointer test per site.
//
// Only the optimistic Simulator emits records; the Sequential and
// Conservative engines ignore Config.Record.
type RecordSink interface {
	// MailBatch reports that PE dst drained n messages (positive events
	// and anti-messages alike) that sender PE src had published to its
	// lane, in arrival order. Runs on dst's goroutine.
	MailBatch(dst, src, n int)
	// Rollback reports a completed rollback on PE pe of KP kp that
	// reversed events events. secondary marks cancellation-induced
	// rollbacks, forced marks fault-injected ones (see Faults); a
	// straggler-induced primary rollback has both false. Runs on pe's
	// goroutine.
	Rollback(pe, kp, events int, secondary, forced bool)
	// GVTRound reports that GVT round round computed estimate gvt
	// (TimeInfinity on the final, drained round). Runs on PE 0. In barrier
	// mode (Config.GVTMode) the machine is quiescent — every PE is paused
	// between the round's barriers. Under the async default the other PEs
	// keep executing; the estimate is still a sound commit horizon (that
	// is the GVT property recording relies on), and successive estimates
	// are nondecreasing in both modes, which the replay subsystem's
	// prefix-hash fingerprints require.
	GVTRound(round int64, gvt Time)
}
