package core

import (
	"strings"
	"testing"
)

// TestParanoidModeCleanRun: a correct model under heavy rollback pressure
// must pass every invariant round.
func TestParanoidModeCleanRun(t *testing.T) {
	cfg := Config{
		NumLPs: 64, EndTime: 60, Seed: 11, NumPEs: 4, NumKPs: 8,
		BatchSize: 4, GVTInterval: 2, CheckInvariants: true,
	}
	_, stats := runStressParallel(t, cfg, 30)
	if stats.GVTRounds == 0 {
		t.Fatal("no GVT rounds ran, so no invariants were checked")
	}
}

// brokenReverseModel fails to restore its counter, which paranoid mode
// cannot see directly — but a model corrupting kernel structures can be
// simulated by mutating the processed list; instead we verify the checker
// itself by corrupting a KP after a run step.
func TestInvariantCheckerDetectsCorruption(t *testing.T) {
	s, err := New(Config{NumLPs: 2, NumPEs: 1, NumKPs: 2, EndTime: 1000,
		KPOfLP: func(lp int) int { return lp }, PEOfKP: func(int) int { return 0 }})
	if err != nil {
		t.Fatal(err)
	}
	s.ForEachLP(func(lp *LP) { lp.Handler = recModel{}; lp.State = &recState{} })
	pe := s.pes[0]
	pe.insert(&Event{recvTime: 1, dst: 0, src: NoLP, seq: 1, Data: &recMsg{}})
	pe.insert(&Event{recvTime: 2, dst: 0, src: NoLP, seq: 2, Data: &recMsg{}})
	exec(t, pe)
	exec(t, pe)

	if err := pe.checkInvariants(0); err != nil {
		t.Fatalf("clean state flagged: %v", err)
	}

	// Corrupt: swap the processed order.
	kp := s.lps[0].kp
	kp.processed[0], kp.processed[1] = kp.processed[1], kp.processed[0]
	err = pe.checkInvariants(0)
	if err == nil || !strings.Contains(err.Error(), "out of order") {
		t.Fatalf("corruption not detected: %v", err)
	}
	kp.processed[0], kp.processed[1] = kp.processed[1], kp.processed[0]

	// Corrupt: stale lastKey.
	kp.lastKey.seq++
	err = pe.checkInvariants(0)
	if err == nil || !strings.Contains(err.Error(), "lastKey") {
		t.Fatalf("stale lastKey not detected: %v", err)
	}
	kp.lastKey.seq--

	// Corrupt: pending event before the KP's last processed event.
	bad := &Event{recvTime: 0.5, dst: 0, src: NoLP, seq: 99}
	bad.state = statePending
	pe.pending.Push(bad)
	err = pe.checkInvariants(0)
	if err == nil || !strings.Contains(err.Error(), "precedes") {
		t.Fatalf("straggler postcondition violation not detected: %v", err)
	}
}
