package core

import "testing"

// TestMaxOptimismPreservesResults: the throttle is a performance knob; it
// must not change committed results.
func TestMaxOptimismPreservesResults(t *testing.T) {
	base := Config{NumLPs: 64, EndTime: 50, Seed: 7}
	want, seqStats := runStressSequential(t, base, 20)

	for _, maxOpt := range []Time{0.5, 2, 10} {
		cfg := base
		cfg.NumPEs = 4
		cfg.NumKPs = 16
		cfg.BatchSize = 8
		cfg.GVTInterval = 4
		cfg.MaxOptimism = maxOpt
		got, parStats := runStressParallel(t, cfg, 20)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("maxOpt=%v LP %d: %+v != %+v", maxOpt, i, got[i], want[i])
			}
		}
		if parStats.Committed != seqStats.Committed {
			t.Fatalf("maxOpt=%v: committed %d != %d", maxOpt, parStats.Committed, seqStats.Committed)
		}
	}
}

// TestMaxOptimismBoundsSpeculation: with an aggressive over-optimistic
// configuration, enabling the throttle must cut the rolled-back volume
// substantially.
func TestMaxOptimismBoundsSpeculation(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive comparison")
	}
	run := func(maxOpt Time) *Stats {
		cfg := Config{
			NumLPs: 128, EndTime: 120, Seed: 11, NumPEs: 8, NumKPs: 16,
			BatchSize: 256, GVTInterval: 64, MaxOptimism: maxOpt,
		}
		_, stats := runStressParallel(t, cfg, 60)
		return stats
	}
	wild := run(0)
	tame := run(2)
	// The wild configuration on an oversubscribed host typically rolls
	// back many times its committed volume; the throttle must keep it
	// within a small multiple. Guard loosely to stay robust across hosts,
	// but catch order-of-magnitude regressions.
	if wild.RolledBackEvents > 0 && tame.RolledBackEvents > wild.RolledBackEvents {
		t.Fatalf("throttle increased rollbacks: %d -> %d", wild.RolledBackEvents, tame.RolledBackEvents)
	}
	if tame.RolledBackEvents > 4*tame.Committed {
		t.Fatalf("throttled run still rolled back %d events for %d committed",
			tame.RolledBackEvents, tame.Committed)
	}
}
