package core

import (
	"fmt"
	"strings"
	"time"
)

// PEStats are per-processing-element kernel counters.
type PEStats struct {
	ID                 int
	Processed          int64
	Committed          int64
	RolledBackEvents   int64
	PrimaryRollbacks   int64
	SecondaryRollbacks int64
	// ForcedRollbacks counts rollbacks injected by the fault plan
	// (Config.Faults); always zero in production runs.
	ForcedRollbacks int64
	MailSent        int64
	MailReceived    int64
	Busy            time.Duration
	// GVTWait is the time this PE spent blocked at GVT barriers — the
	// per-round rendezvous in barrier mode, and only the one-time shutdown
	// drain in async mode, whose token visits never wait (sender-side
	// coverage; see gvt_async.go). GVTLatency, nonzero on PE 0 only,
	// totals round latency — barrier-entry to estimate in barrier mode,
	// token launch to return in async mode. OptClamps counts
	// scheduler passes where the adaptive optimism window (rather than a
	// static bound) clamped this PE's horizon.
	GVTWait    time.Duration
	GVTLatency time.Duration
	OptClamps  int64

	// Comms counters (see mailbox.go). BatchesFlushed counts outbox
	// batches pushed into lanes, BatchedMessages the messages they
	// carried (their ratio is the average coalesced batch size);
	// MailboxPeak is the most messages one drain pass applied. Parks
	// counts times this PE slept instead of spinning idle, Wakes the
	// wakeups delivered to it (by mail arrival, GVT requests or failure).
	BatchesFlushed  int64
	BatchedMessages int64
	MailboxPeak     int64
	Parks           int64
	Wakes           int64

	// Memory-bound counters (see Config.MaxLiveEvents). LivePeak is the
	// high-water mark of this PE's executed-but-uncommitted events — the
	// concurrent optimistic memory footprint the pressure valve bounds
	// (and, under copy state saving, the peak live snapshot count).
	// MemThrottles counts scheduler passes run with the valve engaged;
	// InvariantSweeps counts in-run invariant sweeps performed
	// (Config.InvariantSweep).
	LivePeak        int64
	MemThrottles    int64
	InvariantSweeps int64

	// Event-pool counters (see pool.go). PoolHits are Sends served from
	// the free list, PoolMisses the ones that had to allocate;
	// EventsRecycled counts events returned to this PE's pool (which may
	// have been allocated on another PE — events migrate between pools).
	PoolHits         int64
	PoolMisses       int64
	EventsRecycled   int64
	PayloadsRecycled int64
	// PoolLivePeak is this pool's high-water mark of net outstanding
	// events; summed over PEs it bounds the event working set.
	PoolLivePeak int64
}

// KPStats are per-kernel-process counters — the rollback-locality data
// behind the report's Figure 7 discussion.
type KPStats struct {
	ID                 int
	PE                 int
	Committed          int64
	RolledBackEvents   int64
	PrimaryRollbacks   int64
	SecondaryRollbacks int64
	// PeakLiveEvents is the high-water mark of executed-but-uncommitted
	// events, the KP's contribution to optimistic memory pressure.
	PeakLiveEvents int
}

// Stats summarises a run of the kernel. Processed counts every forward
// execution including ones later rolled back; Committed counts events that
// survived to fossil collection — the sequential-equivalent work. The
// difference, RolledBackEvents, is the report's "Total Events Rolled Back"
// (Figures 7a–c), and EventRate is its "events per second" (Figures 5, 8).
type Stats struct {
	Processed          int64
	Committed          int64
	RolledBackEvents   int64
	PrimaryRollbacks   int64
	SecondaryRollbacks int64
	ForcedRollbacks    int64
	MailSent           int64
	MailReceived       int64
	GVTRounds          int64
	// GVTMode names the GVT algorithm the run used (Config.GVTMode).
	// GVTLatency is the total round latency (launch to estimate) and
	// GVTWait the summed per-PE time blocked at GVT barriers (async mode
	// has none mid-run; see PEStats). OptClamps totals the passes clamped
	// by the adaptive optimism window (Config.AdaptiveOptimism).
	GVTMode    string
	GVTLatency time.Duration
	GVTWait    time.Duration
	OptClamps  int64
	NumPEs     int
	NumKPs     int
	Wall       time.Duration
	EventRate  float64 // committed events per wall-clock second
	Efficiency float64 // committed / processed
	// PeakLiveEvents sums the per-KP high-water marks: the optimistic
	// memory footprint in events.
	PeakLiveEvents int
	// LivePeak is the largest concurrent per-PE live-event count seen on
	// any PE — the number the pressure valve (Config.MaxLiveEvents)
	// bounds. MemThrottles totals the passes PEs ran with the valve
	// engaged (0 in unbounded runs); InvariantSweeps totals the in-run
	// invariant sweeps (Config.InvariantSweep).
	LivePeak        int64
	MemThrottles    int64
	InvariantSweeps int64
	// Event-pool totals across all pools: allocations avoided (PoolHits),
	// allocations performed (PoolMisses), events and payloads recycled,
	// and the summed per-pool live high-water mark. PoolHitRate is
	// PoolHits/(PoolHits+PoolMisses) — at steady state it approaches 1 and
	// the event loop stops touching the allocator.
	PoolHits         int64
	PoolMisses       int64
	EventsRecycled   int64
	PayloadsRecycled int64
	PoolLivePeak     int64
	PoolHitRate      float64
	// Comms totals across PEs: coalescing effectiveness (batches flushed,
	// messages batched, their ratio as AvgBatchSize), the deepest single
	// mailbox drain on any PE, and the park/wake traffic of idle PEs.
	BatchesFlushed  int64
	BatchedMessages int64
	AvgBatchSize    float64
	MailboxPeak     int64
	Parks           int64
	Wakes           int64
	PEs             []PEStats
	KPs             []KPStats
}

// addPool folds one pool's counters (carried in a PEStats record) into the
// run-level totals.
func (st *Stats) addPool(ps PEStats) {
	st.PoolHits += ps.PoolHits
	st.PoolMisses += ps.PoolMisses
	st.EventsRecycled += ps.EventsRecycled
	st.PayloadsRecycled += ps.PayloadsRecycled
	st.PoolLivePeak += ps.PoolLivePeak
}

// finishPools derives the hit rate once every pool has been folded in.
func (st *Stats) finishPools() {
	if total := st.PoolHits + st.PoolMisses; total > 0 {
		st.PoolHitRate = float64(st.PoolHits) / float64(total)
	}
}

// collectStats folds every PE's sharded counters into one Stats
// snapshot. It runs only after Run has joined all PE goroutines, so each
// PE's counter writes happen-before these reads.
//
//simlint:crosspe post-Run read; the goroutine joins order all PE counter writes before this
func (s *Simulator) collectStats(wall time.Duration) *Stats {
	st := &Stats{
		GVTRounds: s.gvtRounds.Load(),
		GVTMode:   s.cfg.GVTMode,
		NumPEs:    len(s.pes),
		NumKPs:    len(s.kps),
		Wall:      wall,
	}
	for _, pe := range s.pes {
		ps := PEStats{
			ID:                 pe.id,
			Processed:          pe.processed,
			Committed:          pe.committed,
			RolledBackEvents:   pe.rolledBackEvents,
			PrimaryRollbacks:   pe.primaryRollbacks,
			SecondaryRollbacks: pe.secondaryRollbacks,
			ForcedRollbacks:    pe.forcedRollbacks,
			MailSent:           pe.mailSent,
			MailReceived:       pe.mailReceived,
			Busy:               pe.busy,
			GVTWait:            pe.gvtWait,
			GVTLatency:         pe.gvtLatency,
			OptClamps:          pe.optClamps,
			BatchesFlushed:     pe.batchesFlushed,
			BatchedMessages:    pe.batchedMessages,
			MailboxPeak:        pe.mailboxPeak,
			LivePeak:           pe.livePeak,
			MemThrottles:       pe.memThrottles,
			InvariantSweeps:    pe.invariantSweeps,
			Parks:              pe.parks,
			Wakes:              pe.wakes.Load(),
		}
		pe.pool.addTo(&ps)
		st.addPool(ps)
		st.PEs = append(st.PEs, ps)
		st.Processed += ps.Processed
		st.Committed += ps.Committed
		st.RolledBackEvents += ps.RolledBackEvents
		st.PrimaryRollbacks += ps.PrimaryRollbacks
		st.SecondaryRollbacks += ps.SecondaryRollbacks
		st.ForcedRollbacks += ps.ForcedRollbacks
		st.MailSent += ps.MailSent
		st.MailReceived += ps.MailReceived
		st.BatchesFlushed += ps.BatchesFlushed
		st.BatchedMessages += ps.BatchedMessages
		if ps.MailboxPeak > st.MailboxPeak {
			st.MailboxPeak = ps.MailboxPeak
		}
		if ps.LivePeak > st.LivePeak {
			st.LivePeak = ps.LivePeak
		}
		st.MemThrottles += ps.MemThrottles
		st.InvariantSweeps += ps.InvariantSweeps
		st.Parks += ps.Parks
		st.Wakes += ps.Wakes
		st.GVTWait += ps.GVTWait
		st.GVTLatency += ps.GVTLatency
		st.OptClamps += ps.OptClamps
	}
	if st.BatchesFlushed > 0 {
		st.AvgBatchSize = float64(st.BatchedMessages) / float64(st.BatchesFlushed)
	}
	for _, kp := range s.kps {
		st.KPs = append(st.KPs, KPStats{
			ID:                 kp.id,
			PE:                 kp.pe.id,
			Committed:          kp.committed,
			RolledBackEvents:   kp.rolledBackEvents,
			PrimaryRollbacks:   kp.primaryRollbacks,
			SecondaryRollbacks: kp.secondaryRollbacks,
			PeakLiveEvents:     kp.peakLive,
		})
		st.PeakLiveEvents += kp.peakLive
	}
	st.finishPools()
	if secs := wall.Seconds(); secs > 0 {
		st.EventRate = float64(st.Committed) / secs
	}
	if st.Processed > 0 {
		st.Efficiency = float64(st.Committed) / float64(st.Processed)
	}
	return st
}

// String renders the statistics block in the spirit of the report's sample
// output (Attachment 3).
func (st *Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "kernel: PEs=%d KPs=%d wall=%v\n", st.NumPEs, st.NumKPs, st.Wall.Round(time.Millisecond))
	fmt.Fprintf(&b, "  events committed:   %d\n", st.Committed)
	fmt.Fprintf(&b, "  events processed:   %d\n", st.Processed)
	fmt.Fprintf(&b, "  events rolled back: %d\n", st.RolledBackEvents)
	fmt.Fprintf(&b, "  rollbacks:          %d primary, %d secondary\n", st.PrimaryRollbacks, st.SecondaryRollbacks)
	if st.ForcedRollbacks > 0 {
		fmt.Fprintf(&b, "  forced rollbacks:   %d (fault injection)\n", st.ForcedRollbacks)
	}
	fmt.Fprintf(&b, "  remote messages:    %d sent, %d received\n", st.MailSent, st.MailReceived)
	if st.BatchesFlushed > 0 || st.Parks > 0 {
		fmt.Fprintf(&b, "  comms:              %d batches (avg %.1f msgs), peak drain %d, %d parks, %d wakes\n",
			st.BatchesFlushed, st.AvgBatchSize, st.MailboxPeak, st.Parks, st.Wakes)
	}
	mode := st.GVTMode
	if mode == "" {
		mode = "barrier"
	}
	avgLatency := time.Duration(0)
	if st.GVTRounds > 0 {
		avgLatency = st.GVTLatency / time.Duration(st.GVTRounds)
	}
	fmt.Fprintf(&b, "  GVT rounds:         %d (%s, avg latency %v, %v total wait)\n",
		st.GVTRounds, mode, avgLatency.Round(time.Microsecond), st.GVTWait.Round(time.Microsecond))
	if st.OptClamps > 0 {
		fmt.Fprintf(&b, "  adaptive optimism:  %d clamped passes\n", st.OptClamps)
	}
	fmt.Fprintf(&b, "  peak live events:   %d (peak %d concurrent on one PE)\n", st.PeakLiveEvents, st.LivePeak)
	if st.MemThrottles > 0 {
		fmt.Fprintf(&b, "  memory valve:       %d throttled passes\n", st.MemThrottles)
	}
	if st.InvariantSweeps > 0 {
		fmt.Fprintf(&b, "  invariant sweeps:   %d in-run\n", st.InvariantSweeps)
	}
	fmt.Fprintf(&b, "  events recycled:    %d (pool hit rate %.3f, %d allocs avoided)\n",
		st.EventsRecycled, st.PoolHitRate, st.PoolHits)
	if st.PayloadsRecycled > 0 {
		fmt.Fprintf(&b, "  payloads recycled:  %d\n", st.PayloadsRecycled)
	}
	fmt.Fprintf(&b, "  event rate:         %.0f events/s\n", st.EventRate)
	fmt.Fprintf(&b, "  efficiency:         %.3f committed/processed\n", st.Efficiency)
	return b.String()
}
