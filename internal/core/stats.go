package core

import (
	"fmt"
	"strings"
	"time"
)

// PEStats are per-processing-element kernel counters.
type PEStats struct {
	ID                 int
	Processed          int64
	Committed          int64
	RolledBackEvents   int64
	PrimaryRollbacks   int64
	SecondaryRollbacks int64
	// ForcedRollbacks counts rollbacks injected by the fault plan
	// (Config.Faults); always zero in production runs.
	ForcedRollbacks int64
	MailSent        int64
	MailReceived    int64
	Busy            time.Duration
}

// KPStats are per-kernel-process counters — the rollback-locality data
// behind the report's Figure 7 discussion.
type KPStats struct {
	ID                 int
	PE                 int
	Committed          int64
	RolledBackEvents   int64
	PrimaryRollbacks   int64
	SecondaryRollbacks int64
	// PeakLiveEvents is the high-water mark of executed-but-uncommitted
	// events, the KP's contribution to optimistic memory pressure.
	PeakLiveEvents int
}

// Stats summarises a run of the kernel. Processed counts every forward
// execution including ones later rolled back; Committed counts events that
// survived to fossil collection — the sequential-equivalent work. The
// difference, RolledBackEvents, is the report's "Total Events Rolled Back"
// (Figures 7a–c), and EventRate is its "events per second" (Figures 5, 8).
type Stats struct {
	Processed          int64
	Committed          int64
	RolledBackEvents   int64
	PrimaryRollbacks   int64
	SecondaryRollbacks int64
	ForcedRollbacks    int64
	MailSent           int64
	MailReceived       int64
	GVTRounds          int64
	NumPEs             int
	NumKPs             int
	Wall               time.Duration
	EventRate          float64 // committed events per wall-clock second
	Efficiency         float64 // committed / processed
	// PeakLiveEvents sums the per-KP high-water marks: the optimistic
	// memory footprint in events.
	PeakLiveEvents int
	PEs            []PEStats
	KPs            []KPStats
}

func (s *Simulator) collectStats(wall time.Duration) *Stats {
	st := &Stats{
		GVTRounds: s.gvtRounds,
		NumPEs:    len(s.pes),
		NumKPs:    len(s.kps),
		Wall:      wall,
	}
	for _, pe := range s.pes {
		ps := PEStats{
			ID:                 pe.id,
			Processed:          pe.processed,
			Committed:          pe.committed,
			RolledBackEvents:   pe.rolledBackEvents,
			PrimaryRollbacks:   pe.primaryRollbacks,
			SecondaryRollbacks: pe.secondaryRollbacks,
			ForcedRollbacks:    pe.forcedRollbacks,
			MailSent:           pe.mailSent,
			MailReceived:       pe.mailReceived,
			Busy:               pe.busy,
		}
		st.PEs = append(st.PEs, ps)
		st.Processed += ps.Processed
		st.Committed += ps.Committed
		st.RolledBackEvents += ps.RolledBackEvents
		st.PrimaryRollbacks += ps.PrimaryRollbacks
		st.SecondaryRollbacks += ps.SecondaryRollbacks
		st.ForcedRollbacks += ps.ForcedRollbacks
		st.MailSent += ps.MailSent
		st.MailReceived += ps.MailReceived
	}
	for _, kp := range s.kps {
		st.KPs = append(st.KPs, KPStats{
			ID:                 kp.id,
			PE:                 kp.pe.id,
			Committed:          kp.committed,
			RolledBackEvents:   kp.rolledBackEvents,
			PrimaryRollbacks:   kp.primaryRollbacks,
			SecondaryRollbacks: kp.secondaryRollbacks,
			PeakLiveEvents:     kp.peakLive,
		})
		st.PeakLiveEvents += kp.peakLive
	}
	if secs := wall.Seconds(); secs > 0 {
		st.EventRate = float64(st.Committed) / secs
	}
	if st.Processed > 0 {
		st.Efficiency = float64(st.Committed) / float64(st.Processed)
	}
	return st
}

// String renders the statistics block in the spirit of the report's sample
// output (Attachment 3).
func (st *Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "kernel: PEs=%d KPs=%d wall=%v\n", st.NumPEs, st.NumKPs, st.Wall.Round(time.Millisecond))
	fmt.Fprintf(&b, "  events committed:   %d\n", st.Committed)
	fmt.Fprintf(&b, "  events processed:   %d\n", st.Processed)
	fmt.Fprintf(&b, "  events rolled back: %d\n", st.RolledBackEvents)
	fmt.Fprintf(&b, "  rollbacks:          %d primary, %d secondary\n", st.PrimaryRollbacks, st.SecondaryRollbacks)
	if st.ForcedRollbacks > 0 {
		fmt.Fprintf(&b, "  forced rollbacks:   %d (fault injection)\n", st.ForcedRollbacks)
	}
	fmt.Fprintf(&b, "  remote messages:    %d sent, %d received\n", st.MailSent, st.MailReceived)
	fmt.Fprintf(&b, "  GVT rounds:         %d\n", st.GVTRounds)
	fmt.Fprintf(&b, "  peak live events:   %d\n", st.PeakLiveEvents)
	fmt.Fprintf(&b, "  event rate:         %.0f events/s\n", st.EventRate)
	fmt.Fprintf(&b, "  efficiency:         %.3f committed/processed\n", st.Efficiency)
	return b.String()
}
