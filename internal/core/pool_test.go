package core

import (
	"reflect"
	"sync/atomic"
	"testing"
)

// TestEventPoolReuse is the freelist contract: LIFO reuse of the same
// backing Event, a generation bump per free, scrubbed bookkeeping, and a
// sent slice whose capacity survives recycling.
func TestEventPoolReuse(t *testing.T) {
	var p eventPool
	ev := p.get()
	if p.misses != 1 || p.hits != 0 {
		t.Fatalf("first get: hits=%d misses=%d", p.hits, p.misses)
	}
	ev.state = statePending
	ev.Data = "payload"
	ev.sent = append(ev.sent, &Event{}, &Event{})
	gen := ev.gen
	cap0 := cap(ev.sent)

	p.put(ev)
	if ev.state != stateFree || ev.gen != gen+1 {
		t.Fatalf("after put: state=%d gen=%d (was %d)", ev.state, ev.gen, gen)
	}
	if ev.Data != nil || len(ev.sent) != 0 {
		t.Fatalf("put did not scrub: Data=%v sent=%v", ev.Data, ev.sent)
	}

	ev2 := p.get()
	if ev2 != ev {
		t.Fatal("LIFO pool did not reuse the freed event")
	}
	if ev2.state != stateInit {
		t.Fatalf("recycled event state = %d, want stateInit", ev2.state)
	}
	if cap(ev2.sent) != cap0 {
		t.Fatalf("sent capacity lost across recycle: %d -> %d", cap0, cap(ev2.sent))
	}
	if p.hits != 1 || p.misses != 1 || p.recycled != 1 {
		t.Fatalf("counters: hits=%d misses=%d recycled=%d", p.hits, p.misses, p.recycled)
	}
	if p.live != 1 || p.livePeak != 1 {
		t.Fatalf("live accounting: live=%d peak=%d", p.live, p.livePeak)
	}
}

// TestEventPoolDoubleFreePanics: freeing the same incarnation twice is the
// classic freelist corruption and must die immediately.
func TestEventPoolDoubleFreePanics(t *testing.T) {
	var p eventPool
	ev := p.get()
	ev.state = statePending
	p.put(ev)
	defer func() {
		if recover() == nil {
			t.Fatal("double free did not panic")
		}
	}()
	p.put(ev)
}

// recycleCounter is a handler whose Recycle calls are counted; the payload
// is handed back on the freeing PE's goroutine, hence the atomic.
type recycleCounter struct {
	stressModel
	recycles atomic.Int64
}

func (r *recycleCounter) Recycle(data any) {
	if data == nil {
		panic("Recycle called with nil payload")
	}
	r.recycles.Add(1)
}

// TestUseAfterFreeGuards covers the paranoid-mode tripwires: a pooled
// (stateFree) event must be rejected by insert, execute, cancellation and
// the GVT-time queue scan.
func TestUseAfterFreeGuards(t *testing.T) {
	s, err := New(Config{NumLPs: 2, NumPEs: 1, NumKPs: 1, EndTime: 10, CheckInvariants: true})
	if err != nil {
		t.Fatal(err)
	}
	pe := s.pes[0]
	free := func() *Event {
		return &Event{recvTime: 1, dst: 0, src: 0, state: stateFree}
	}
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s accepted a stateFree event", name)
			}
		}()
		fn()
	}
	mustPanic("insert", func() { pe.insert(free()) })
	mustPanic("execute", func() { pe.execute(free()) })
	mustPanic("cancelLocal", func() { pe.cancelLocal(free()) })

	// A freed event that somehow stays queued is caught by the invariant
	// scan even when no operation touches it.
	ev := free()
	pe.pending.Push(ev)
	if err := pe.checkInvariants(0); err == nil {
		t.Fatal("invariant scan missed a pooled event in the pending queue")
	}
}

// TestPoolStatsAcrossEngines: all three executors recycle events and
// report coherent pool counters.
func TestPoolStatsAcrossEngines(t *testing.T) {
	base := Config{NumLPs: 32, EndTime: 30, Seed: 5}
	ttl := 12

	check := func(name string, st *Stats) {
		t.Helper()
		if st.EventsRecycled == 0 {
			t.Errorf("%s: no events recycled", name)
		}
		if st.PoolHits == 0 {
			t.Errorf("%s: pool never reissued an event (hits=0)", name)
		}
		total := st.PoolHits + st.PoolMisses
		if total == 0 || st.PoolHitRate != float64(st.PoolHits)/float64(total) {
			t.Errorf("%s: hit rate %g inconsistent with hits=%d misses=%d",
				name, st.PoolHitRate, st.PoolHits, st.PoolMisses)
		}
		if st.PoolLivePeak <= 0 {
			t.Errorf("%s: PoolLivePeak = %d", name, st.PoolLivePeak)
		}
	}

	_, seqStats := runStressSequential(t, base, ttl)
	check("sequential", seqStats)

	cfg := base
	cfg.NumPEs = 4
	cfg.NumKPs = 8
	cfg.CheckInvariants = true
	_, parStats := runStressParallel(t, cfg, ttl)
	check("parallel", parStats)

	// Conservative engine, via the fixed-lookahead variant of the stress
	// model (delays are already >= 0.001).
	c, err := NewConservative(Config{NumLPs: 32, NumPEs: 4, EndTime: 30, Seed: 5}, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	model := stressModel{numLPs: 32}
	c.ForEachLP(func(lp *LP) {
		lp.Handler = model
		lp.State = &stressState{}
	})
	for i := 0; i < 32; i++ {
		c.Schedule(LPID(i), Time(0.001*float64(i+1)), &stressMsg{TTL: ttl})
	}
	consStats, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	check("conservative", consStats)
}

// TestPayloadRecycling: a handler implementing Recycler gets every non-nil
// payload back exactly once, and the kernel reports the count.
func TestPayloadRecycling(t *testing.T) {
	run := func(name string, parallel bool) {
		model := &recycleCounter{stressModel: stressModel{numLPs: 16}}
		cfg := Config{NumLPs: 16, EndTime: 20, Seed: 3}
		var st *Stats
		if parallel {
			cfg.NumPEs = 2
			cfg.NumKPs = 4
			cfg.CheckInvariants = true
			s, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			s.ForEachLP(func(lp *LP) { lp.Handler = model; lp.State = &stressState{} })
			for i := 0; i < 16; i++ {
				s.Schedule(LPID(i), Time(0.001*float64(i+1)), &stressMsg{TTL: 8})
			}
			st, err = s.Run()
			if err != nil {
				t.Fatal(err)
			}
		} else {
			q, err := NewSequential(cfg)
			if err != nil {
				t.Fatal(err)
			}
			q.ForEachLP(func(lp *LP) { lp.Handler = model; lp.State = &stressState{} })
			for i := 0; i < 16; i++ {
				q.Schedule(LPID(i), Time(0.001*float64(i+1)), &stressMsg{TTL: 8})
			}
			st, err = q.Run()
			if err != nil {
				t.Fatal(err)
			}
		}
		got := model.recycles.Load()
		if got == 0 {
			t.Errorf("%s: Recycle never called", name)
		}
		if st.PayloadsRecycled != got {
			t.Errorf("%s: stats report %d payloads recycled, handler saw %d",
				name, st.PayloadsRecycled, got)
		}
	}
	run("sequential", false)
	run("parallel", true)
}

// TestCancellationRacesRollbackAcrossPEs is the pooling regression test for
// the nastiest lifecycle interleaving: anti-messages crossing PEs while the
// destination is itself rolling back under injected faults, with mailbox
// delivery order shuffled. Every cancelled event is freed into the
// destination pool; if a cancellation could ever chase an already-recycled
// event, paranoid mode panics and the committed trajectory diverges from
// the sequential reference.
func TestCancellationRacesRollbackAcrossPEs(t *testing.T) {
	base := Config{NumLPs: 64, EndTime: 40, Seed: 17}
	want, _ := runStressSequential(t, base, 16)

	cfg := base
	cfg.NumPEs = 4
	cfg.NumKPs = 16
	cfg.BatchSize = 4
	cfg.GVTInterval = 2
	cfg.CheckInvariants = true
	cfg.Faults = &Faults{
		Seed: 23, RollbackEvery: 2, RollbackDepth: 6,
		ShuffleMail: true, GVTDelay: 2,
	}
	got, st := runStressParallel(t, cfg, 16)
	if !reflect.DeepEqual(got, want) {
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("LP %d diverged with pooling under cancellation/rollback races: got %+v want %+v",
					i, got[i], want[i])
			}
		}
	}
	if st.RolledBackEvents == 0 || st.MailSent == 0 {
		t.Fatalf("test did not exercise the race: rolledBack=%d mailSent=%d",
			st.RolledBackEvents, st.MailSent)
	}
	if st.EventsRecycled == 0 {
		t.Fatal("no events recycled under rollback stress")
	}
}
