package core

import (
	"errors"
	"strings"
	"testing"
)

// captureSink deep-copies every CheckpointState it is handed (the kernel
// contract says the sink must not retain the originals) so tests can
// inspect the captures after the run.
type captureSink struct {
	caps []capturedCkpt
	fail error // returned from Checkpoint when set
}

type capturedCkpt struct {
	GVT       Time
	Committed int64
	States    []stressState
	RNGs      [][4]uint64
	Draws     []uint64
	SendSeqs  []uint64
	Frontier  []CheckpointEvent // Data replaced by a copied stressMsg value
}

func (c *captureSink) Checkpoint(cs *CheckpointState) error {
	if c.fail != nil {
		return c.fail
	}
	cap := capturedCkpt{GVT: cs.GVT, Committed: cs.Committed}
	for _, lp := range cs.LPs {
		cap.States = append(cap.States, *lp.State.(*stressState))
		cap.RNGs = append(cap.RNGs, lp.RNG)
		cap.Draws = append(cap.Draws, lp.RNGDraws)
		cap.SendSeqs = append(cap.SendSeqs, lp.SendSeq)
	}
	for _, ev := range cs.Frontier {
		msg := *ev.Data.(*stressMsg)
		cap.Frontier = append(cap.Frontier, CheckpointEvent{
			T: ev.T, Dst: ev.Dst, Src: ev.Src, Seq: ev.Seq, Data: &msg,
		})
	}
	c.caps = append(c.caps, cap)
	return nil
}

func ckptTestConfig(mode string) Config {
	return Config{
		NumLPs: 16, NumPEs: 4, NumKPs: 8, EndTime: 30, Seed: 3,
		BatchSize: 8, GVTInterval: 2, GVTMode: mode,
	}
}

// TestCheckpointCaptureConsistentCut runs the stress model with periodic
// checkpoints and verifies every capture is a well-formed consistent cut:
// GVT strictly advances across captures, committed counts never regress,
// the frontier is strictly sorted in the kernel's total event order and
// never dips below the capture's GVT — and arming the sink leaves the
// committed results untouched (the rendezvous is scheduling-only).
func TestCheckpointCaptureConsistentCut(t *testing.T) {
	for _, mode := range []string{GVTAsync, GVTBarrier} {
		t.Run(mode, func(t *testing.T) {
			want, wantStats := runStressParallel(t, ckptTestConfig(mode), 12)

			s, err := New(ckptTestConfig(mode))
			if err != nil {
				t.Fatal(err)
			}
			model := stressModel{numLPs: int64(s.NumLPs())}
			s.ForEachLP(func(lp *LP) { lp.Handler = model; lp.State = &stressState{} })
			for i := 0; i < s.NumLPs(); i++ {
				s.Schedule(LPID(i), Time(0.001*float64(i+1)), &stressMsg{TTL: 12})
			}
			sink := &captureSink{}
			s.SetCheckpoint(sink, 4)
			stats, err := s.Run()
			if err != nil {
				t.Fatal(err)
			}

			if len(sink.caps) == 0 {
				t.Fatal("no checkpoints captured")
			}
			prevGVT := Time(-1)
			prevCommitted := int64(-1)
			for i, cap := range sink.caps {
				if cap.GVT <= prevGVT {
					t.Fatalf("capture %d: GVT %v did not advance past %v", i, cap.GVT, prevGVT)
				}
				if cap.GVT <= 0 || cap.GVT >= 30 {
					t.Fatalf("capture %d: GVT %v outside (0, EndTime)", i, cap.GVT)
				}
				if cap.Committed < prevCommitted {
					t.Fatalf("capture %d: committed %d regressed from %d", i, cap.Committed, prevCommitted)
				}
				prevGVT, prevCommitted = cap.GVT, cap.Committed
				if len(cap.States) != s.NumLPs() {
					t.Fatalf("capture %d: %d LP states, want %d", i, len(cap.States), s.NumLPs())
				}
				for j, ev := range cap.Frontier {
					if ev.T < cap.GVT {
						t.Fatalf("capture %d: frontier event %d at %v below GVT %v", i, j, ev.T, cap.GVT)
					}
					if j > 0 {
						p := cap.Frontier[j-1]
						if !(p.T < ev.T || (p.T == ev.T && (p.Dst < ev.Dst ||
							(p.Dst == ev.Dst && (p.Src < ev.Src || (p.Src == ev.Src && p.Seq < ev.Seq)))))) {
							t.Fatalf("capture %d: frontier events %d and %d out of order", i, j-1, j)
						}
					}
				}
			}

			// Scheduling-only: same committed count and final states as the
			// uncheckpointed run.
			if stats.Committed != wantStats.Committed {
				t.Fatalf("checkpointed run committed %d events, want %d", stats.Committed, wantStats.Committed)
			}
			got := snapshotStress(s.NumLPs(), s.LP)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("LP %d final state %+v, want %+v", i, got[i], want[i])
				}
			}
		})
	}
}

// TestCheckpointRestoreRoundTrip is the kernel-level resume proof: restore
// the last mid-run capture into a fresh simulator — states, RNG streams,
// send sequences and the frontier with original event identities — run the
// tail, and require the composed run to finish in exactly the
// uninterrupted run's final states with exactly the remaining events
// committed.
func TestCheckpointRestoreRoundTrip(t *testing.T) {
	for _, mode := range []string{GVTAsync, GVTBarrier} {
		t.Run(mode, func(t *testing.T) {
			cfg := ckptTestConfig(mode)
			s, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			model := stressModel{numLPs: int64(cfg.NumLPs)}
			s.ForEachLP(func(lp *LP) { lp.Handler = model; lp.State = &stressState{} })
			for i := 0; i < cfg.NumLPs; i++ {
				s.Schedule(LPID(i), Time(0.001*float64(i+1)), &stressMsg{TTL: 12})
			}
			sink := &captureSink{}
			s.SetCheckpoint(sink, 4)
			stats, err := s.Run()
			if err != nil {
				t.Fatal(err)
			}
			want := snapshotStress(s.NumLPs(), s.LP)
			if len(sink.caps) == 0 {
				t.Fatal("no checkpoints captured")
			}
			cp := sink.caps[len(sink.caps)-1]

			r, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			r.ForEachLP(func(lp *LP) { lp.Handler = model })
			for i := 0; i < cfg.NumLPs; i++ {
				r.Schedule(LPID(i), Time(0.001*float64(i+1)), &stressMsg{TTL: 12})
			}
			r.DropBootstrap()
			for i := 0; i < cfg.NumLPs; i++ {
				st := cp.States[i]
				r.LP(LPID(i)).State = &st
				if err := r.RestoreLP(LPID(i), cp.RNGs[i], cp.Draws[i], cp.SendSeqs[i]); err != nil {
					t.Fatalf("RestoreLP %d: %v", i, err)
				}
			}
			for _, ev := range cp.Frontier {
				msg := *ev.Data.(*stressMsg)
				r.ScheduleRestored(ev.Dst, ev.T, ev.Src, ev.Seq, &msg)
			}
			tail, err := r.Run()
			if err != nil {
				t.Fatal(err)
			}

			if cp.Committed+tail.Committed != stats.Committed {
				t.Fatalf("committed across the cut: %d + %d != %d",
					cp.Committed, tail.Committed, stats.Committed)
			}
			got := snapshotStress(r.NumLPs(), r.LP)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("LP %d resumed final state %+v, want %+v", i, got[i], want[i])
				}
			}
		})
	}
}

// TestCheckpointSinkErrorPoisonsRun: a sink error must surface from Run —
// a checkpoint that cannot be written is a failed run, not a silent skip.
func TestCheckpointSinkErrorPoisonsRun(t *testing.T) {
	s, err := New(ckptTestConfig(GVTAsync))
	if err != nil {
		t.Fatal(err)
	}
	model := stressModel{numLPs: int64(s.NumLPs())}
	s.ForEachLP(func(lp *LP) { lp.Handler = model; lp.State = &stressState{} })
	for i := 0; i < s.NumLPs(); i++ {
		s.Schedule(LPID(i), Time(0.001*float64(i+1)), &stressMsg{TTL: 12})
	}
	boom := errors.New("disk on fire")
	s.SetCheckpoint(&captureSink{fail: boom}, 2)
	if _, err := s.Run(); err == nil || !strings.Contains(err.Error(), "disk on fire") {
		t.Fatalf("Run error = %v, want the sink's error", err)
	}
}
