package core

import (
	"errors"
	"sync"
	"time"
)

// errBarrierBroken is returned from barrier waits after a PE has failed;
// it unblocks every other PE so Run can surface the original error.
var errBarrierBroken = errors.New("core: barrier broken by failed PE")

// barrier is a reusable N-party barrier. poison wakes all waiters and makes
// every subsequent await fail, which is how a panicking PE releases its
// peers.
type barrier struct {
	mu      sync.Mutex
	cond    *sync.Cond
	parties int
	arrived int
	gen     uint64
	broken  bool
}

func newBarrier(parties int) *barrier {
	b := &barrier{parties: parties}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *barrier) await() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.broken {
		return errBarrierBroken
	}
	gen := b.gen
	b.arrived++
	if b.arrived == b.parties {
		b.arrived = 0
		b.gen++
		b.cond.Broadcast()
		return nil
	}
	for gen == b.gen && !b.broken {
		b.cond.Wait()
	}
	if b.broken {
		return errBarrierBroken
	}
	return nil
}

func (b *barrier) poison() {
	b.mu.Lock()
	b.broken = true
	b.cond.Broadcast()
	b.mu.Unlock()
}

// await is the PE-side barrier wait: it charges the blocked time to this
// PE's gvtWait shard, which is the barrier-mode half of the GVT wait-time
// statistic (the async mode charges time the token spends blocked on
// transient messages instead).
func (pe *PE) await() error {
	t0 := time.Now()
	err := pe.sim.bar.await()
	pe.gvtWait += time.Since(t0)
	return err
}

// requestGVT asks for a GVT computation at the next opportunity: in barrier
// mode every PE rendezvouses for a round at its next scheduling boundary;
// in async mode PE 0 launches the token's next circulation. Under the
// GVTDelay fault only every (n+1)-th request goes through; a suppressed
// request is safe because every path that needs GVT to advance (idle spin,
// optimism throttle, batch quota) re-requests until the round actually
// happens.
func (s *Simulator) requestGVT() {
	if f := s.cfg.Faults; f != nil && f.GVTDelay > 0 {
		if s.gvtDelayed.Add(1)%int64(f.GVTDelay+1) != 0 {
			return
		}
	}
	// Parked PEs must notice the request — in barrier mode to join the
	// round, in async mode so PE 0 launches the token; wake them. (A PE
	// that checks gvtRequested after this store never parks, so no sleeper
	// is missed; the Swap makes an already-pending request free.)
	if !s.gvtRequested.Swap(true) {
		s.wakeAll()
	}
}

// commsFixedPoint drives every PE to the point where no message is in
// flight: each repeatedly force-flushes its outbox and drains its lanes
// (which may trigger rollbacks that send further anti-messages) until the
// sent and delivered counts agree. Fujimoto's algorithm only needs the
// in-flight count to agree at the fixed point, not a live global count, so
// the counters are sharded: each PE owns plain mailSent/mailReceived fields
// and PE 0 sums them between barriers. The barrier's mutex orders every
// PE's writes before PE 0's reads (and PE 0's reads before anyone's next
// write), so no atomics are needed. mailSent is bumped at outbox-append
// time, which makes the fixed point cover outboxes and lanes alike: mail
// held anywhere keeps the loop unstable, and its event cannot be
// fossil-collected out from under it.
//
// Callers: every barrier-mode GVT round, and the async mode's one-time
// shutdown drain.
func (pe *PE) commsFixedPoint() error {
	s := pe.sim
	if err := pe.await(); err != nil {
		return err
	}
	for {
		pe.drainMailbox()
		pe.flushMail(true)
		if err := pe.await(); err != nil {
			return err
		}
		if pe.id == 0 {
			var sent, delivered int64
			for _, p := range s.pes {
				// The barrier just crossed orders every PE's counter writes
				// before these reads, and the next barrier holds the PEs
				// until PE0 is done reading.
				sent += p.mailSent          //simlint:crosspe barrier-ordered read inside the GVT stability window
				delivered += p.mailReceived //simlint:crosspe barrier-ordered read inside the GVT stability window
			}
			s.gvtStable.Store(sent == delivered)
		}
		if err := pe.await(); err != nil {
			return err
		}
		if s.gvtStable.Load() {
			break
		}
	}
	if s.cfg.CheckInvariants {
		// Comms quiescence must be checked here, while every PE is still
		// between the fixed point's barriers; after the next barrier other
		// PEs resume and may refill this PE's lanes.
		if err := pe.checkQuiescentComms(); err != nil {
			s.fail(err)
			return err
		}
	}
	return nil
}

// gvtRound is the synchronous shared-memory GVT computation, run by every
// PE together (cf. Fujimoto's GVT algorithm, which ROSS uses on shared
// memory). The round first reaches the no-mail-in-flight fixed point
// (commsFixedPoint), then takes GVT as the minimum pending event time
// across PEs, fossil-collects, and decides termination.
//
// It returns done=true when GVT has passed the end time and this PE has
// committed everything.
func (pe *PE) gvtRound() (bool, error) {
	s := pe.sim
	var t0 time.Time
	if pe.id == 0 {
		t0 = time.Now()
	}
	if err := pe.commsFixedPoint(); err != nil {
		return false, err
	}

	// All messages are now resident in pending queues; the local minimum
	// over live pending events bounds everything this PE can still do.
	local := TimeInfinity
	if ev, ok := pe.nextLive(); ok {
		local = ev.recvTime
	}
	s.localMins[pe.id] = local
	if err := pe.await(); err != nil {
		return false, err
	}
	if pe.id == 0 {
		gvt := TimeInfinity
		for _, m := range s.localMins {
			if m < gvt {
				gvt = m
			}
		}
		s.setGVT(gvt)
		n := s.gvtRounds.Add(1)
		if hook := s.cfg.OnGVT; hook != nil {
			hook(gvt)
		}
		if rec := s.cfg.Record; rec != nil {
			rec.GVTRound(n, gvt)
		}
		if gvt >= s.cfg.EndTime {
			s.finished.Store(true)
		}
		if s.checkpointDue(n, gvt) {
			// Published to the other PEs by the barrier below; every PE
			// routes into the rendezvous at the end of this round.
			s.ckptDue = true
		}
		s.gvtRequested.Store(false)
		pe.gvtLatency += time.Since(t0)
	}
	if err := pe.await(); err != nil {
		return false, err
	}
	done := s.finished.Load()
	gvt := s.GVT()
	if done {
		// Final round: every processed event is below the end time and can
		// never be rolled back; commit them all.
		gvt = TimeInfinity
	}
	pe.fossilCollect(gvt)
	if pe.opt != nil {
		pe.opt.observe(pe.processed, pe.rolledBackEvents)
	}
	if s.cfg.CheckInvariants {
		if err := pe.checkInvariants(gvt); err != nil {
			s.fail(err)
			return false, err
		}
	}
	// ckptDue is barrier-ordered: PE 0 wrote the flag inside this round,
	// before the barrier every PE crossed above.
	if !done && s.ckptDue {
		if err := pe.checkpointRendezvous(s.GVT()); err != nil {
			return false, err
		}
	}
	return done, nil
}
