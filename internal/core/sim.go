package core

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/eventq"
	"repro/internal/rng"
	"repro/internal/topology"
)

// Config parameterises a simulation run.
type Config struct {
	// NumLPs is the number of logical processes; required.
	NumLPs int
	// NumPEs is the number of processing elements (goroutines). Defaults
	// to GOMAXPROCS, capped at NumLPs.
	NumPEs int
	// NumKPs is the number of kernel processes. Defaults to 16 per PE
	// (clamped to NumLPs); the report's model uses 64 total.
	NumKPs int
	// EndTime is the virtual time horizon; events at or beyond it never
	// execute. Required and must be positive.
	EndTime Time
	// BatchSize is the number of events a PE executes between scheduler
	// checks (mailbox drains, GVT flags). Default 32.
	BatchSize int
	// GVTInterval is the number of batches between GVT rounds. Default 16.
	GVTInterval int
	// GVTMode selects the GVT algorithm. GVTAsync (the default) circulates
	// a Mattern-style token over the mail lanes: no PE ever blocks on a
	// barrier, each learns new estimates from the token and fossil-collects
	// on its own schedule. GVTBarrier is the stop-the-world Fujimoto round
	// that rendezvouses every PE; it remains selectable so the differential
	// harness can verify the two algorithms against each other (and the
	// sequential oracle). See gvt.go and gvt_async.go.
	GVTMode string
	// AdaptiveOptimism enables the per-PE optimism controller: each PE's
	// speculation horizon widens and narrows with its observed rollback
	// efficiency (committed/executed per interval), generalizing the static
	// MaxOptimism bound. Scheduling-only, so committed results are
	// unaffected. The async GVT mode always runs the controller — barrier
	// rounds stop the world and so quench rollback cascades as a side
	// effect, but asynchronous rounds never pause anyone, and on tightly
	// coupled models unthrottled speculation can collapse into cascade
	// thrash where GVT barely advances. This flag arms the controller for
	// barrier mode too. See throttle.go.
	AdaptiveOptimism bool
	// Queue selects the pending-queue implementation; any kind registered
	// in eventq is accepted ("heap", "ladder", "splay"), and an empty
	// value selects "ladder" — the calendar-family structure with
	// amortised O(1) Push/Pop on the PDES access pattern, zero
	// steady-state allocation, and a bulk below-bound drain fast path
	// (roughly 3x splay's kernel event rate; see DESIGN.md, "Event
	// queue"). The committed schedule is identical for every kind — the
	// kernel's event order is total — so the choice is purely a
	// performance knob, enforced by simcheck's queue dimension.
	Queue string
	// CheckInvariants enables paranoid mode: at every GVT round, while the
	// machine is quiescent, each PE validates its structural invariants
	// (processed-list ordering, straggler postconditions, ownership).
	// Costs a full queue scan per round; intended for model development
	// and the test suite, not production runs.
	CheckInvariants bool
	// MaxOptimism, when positive, bounds speculation: a PE will not
	// execute events more than this far beyond the last GVT estimate
	// (ROSS's max_opt_lookahead). It trades idle time for rollback
	// volume — essential when PEs outnumber cores and one PE can race
	// far ahead while another is descheduled. 0 means unlimited.
	MaxOptimism Time
	// MaxLiveEvents, when positive, bounds each PE's optimistic memory
	// footprint: once a PE holds this many executed-but-uncommitted
	// events (which is also its count of live state saves — one snapshot
	// per uncommitted event under copy state saving), its optimism window
	// collapses to GVT+PressureWindow until fossil collection drains it
	// back under budget. This is the fossil-collection pressure valve —
	// cancelback-lite: instead of reclaiming memory by returning events
	// to their senders, the PE simply stops advancing (and therefore
	// stops allocating) until commitment catches up. Scheduling-only, so
	// committed results are unaffected. 0 means unbounded.
	MaxLiveEvents int
	// PressureWindow is the optimism window a memory-throttled PE falls
	// back to: with the valve engaged it still executes events below
	// GVT + PressureWindow, which keeps the event at GVT itself — the
	// global minimum — executable and the run deadlock-free. Defaults to
	// MaxOptimism when that is set, else EndTime/64. Only meaningful with
	// MaxLiveEvents.
	PressureWindow Time
	// InvariantSweep, when positive, runs each PE's structural invariant
	// checks (see CheckInvariants) every n scheduler passes in addition
	// to the barrier-time sweep at GVT rounds. The checks touch only
	// PE-owned state, so no quiescence is needed; the cost is a full
	// pending-queue scan per sweep. Intended for the soak harness, where
	// hours-scale runs cannot wait for a round boundary to notice
	// corruption. Implies CheckInvariants.
	InvariantSweep int
	// Seed offsets every LP's random stream, so distinct seeds give
	// statistically independent runs while identical seeds reproduce runs
	// exactly (regardless of PE/KP counts).
	Seed uint64
	// KPOfLP optionally overrides the LP→KP mapping. The default tiles a
	// √NumLPs-square grid into rectangular KP blocks (the report's
	// locality-preserving mapping) when NumLPs is a perfect square, and
	// splits LPs into contiguous runs otherwise.
	KPOfLP func(lp int) int
	// PEOfKP optionally overrides the KP→PE mapping. The default groups
	// contiguous KPs.
	PEOfKP func(kp int) int

	// OnGVT, when set, is called once per GVT round with the new estimate
	// (TimeInfinity when the event population has drained). It runs on
	// PE 0 — in barrier mode while every PE is paused at the round's
	// barrier, in async mode while the other PEs keep executing — so it
	// must not block for long, and under the async default it must not
	// assume the machine is quiescent.
	OnGVT func(gvt Time)
	// OnRollback, when set, is called after each rollback with the KP
	// that rolled back, how many events were reversed, and whether the
	// cause was a cancellation (secondary) rather than a straggler. It
	// runs on the owning PE's goroutine in the scheduling hot path.
	OnRollback func(kp int, events int, secondary bool)

	// Faults, when set, arms the kernel's fault injectors (forced
	// rollbacks, GVT delay, mailbox perturbation, PE throttling); see the
	// Faults type. The injectors stress speculative machinery without
	// changing committed results — they exist for the simcheck harness and
	// must stay nil in production runs. Only the optimistic Simulator
	// honours the plan.
	Faults *Faults

	// Record, when set, streams kernel occurrences (mail batches,
	// rollbacks, GVT rounds) to the record/replay subsystem; see
	// RecordSink. nil (the default) disables recording at the cost of one
	// pointer test per site. Models build their own Config, so callers
	// usually attach a sink afterwards via Simulator.SetRecord.
	Record RecordSink
}

func (cfg *Config) setDefaults() error {
	if cfg.NumLPs <= 0 {
		return errors.New("core: Config.NumLPs must be positive")
	}
	if !(cfg.EndTime > 0) {
		return errors.New("core: Config.EndTime must be positive")
	}
	if cfg.NumPEs <= 0 {
		cfg.NumPEs = runtime.GOMAXPROCS(0)
	}
	if cfg.NumPEs > cfg.NumLPs {
		cfg.NumPEs = cfg.NumLPs
	}
	if cfg.NumKPs <= 0 {
		cfg.NumKPs = 16 * cfg.NumPEs
	}
	if cfg.NumKPs > cfg.NumLPs {
		cfg.NumKPs = cfg.NumLPs
	}
	if cfg.NumKPs < cfg.NumPEs {
		cfg.NumKPs = cfg.NumPEs
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 32
	}
	if cfg.GVTInterval <= 0 {
		cfg.GVTInterval = 16
	}
	if cfg.KPOfLP == nil || cfg.PEOfKP == nil {
		side := int(math.Round(math.Sqrt(float64(cfg.NumLPs))))
		if side*side == cfg.NumLPs && side >= 2 {
			m := topology.NewBlockMapping(side, cfg.NumKPs, cfg.NumPEs)
			cfg.NumKPs = m.NumKPs()
			cfg.NumPEs = m.NumPEs()
			if cfg.KPOfLP == nil {
				cfg.KPOfLP = m.KPOfLP
			}
			if cfg.PEOfKP == nil {
				cfg.PEOfKP = m.PEOfKP
			}
		} else {
			nLPs, nKPs, nPEs := cfg.NumLPs, cfg.NumKPs, cfg.NumPEs
			if cfg.KPOfLP == nil {
				cfg.KPOfLP = func(lp int) int { return lp * nKPs / nLPs }
			}
			if cfg.PEOfKP == nil {
				cfg.PEOfKP = func(kp int) int { return kp * nPEs / nKPs }
			}
		}
	}
	if cfg.Queue == "" {
		cfg.Queue = "ladder"
	}
	if err := eventq.Valid(cfg.Queue); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	switch cfg.GVTMode {
	case "":
		cfg.GVTMode = GVTAsync
	case GVTAsync, GVTBarrier:
	default:
		return fmt.Errorf("core: unknown GVT mode %q", cfg.GVTMode)
	}
	if cfg.MaxLiveEvents < 0 || cfg.InvariantSweep < 0 {
		return errors.New("core: MaxLiveEvents and InvariantSweep must be non-negative")
	}
	if cfg.InvariantSweep > 0 {
		cfg.CheckInvariants = true
	}
	if cfg.MaxLiveEvents > 0 && cfg.PressureWindow <= 0 {
		cfg.PressureWindow = cfg.defaultPressureWindow()
	}
	if cfg.Faults != nil {
		if err := cfg.Faults.validate(); err != nil {
			return err
		}
	}
	return nil
}

// defaultPressureWindow derives the throttled-PE optimism window when the
// caller armed MaxLiveEvents without choosing one. Any positive value is
// correct (the valve is scheduling-only); MaxOptimism, when set, is the
// window the caller already considered reasonable, and EndTime/64 is
// otherwise small enough to bite yet wide enough that GVT rounds make
// visible progress per engagement.
func (cfg *Config) defaultPressureWindow() Time {
	if cfg.MaxOptimism > 0 {
		return cfg.MaxOptimism
	}
	return cfg.EndTime / 64
}

// The Config.GVTMode values.
const (
	// GVTAsync is the asynchronous token GVT (gvt_async.go).
	GVTAsync = "async"
	// GVTBarrier is the synchronous barrier GVT (gvt.go).
	GVTBarrier = "barrier"
)

// Host is the setup interface shared by the parallel Simulator and the
// Sequential reference engine; models install themselves against it so one
// setup function serves both (which is what makes the sequential-vs-
// parallel equality tests possible).
type Host interface {
	NumLPs() int
	LP(LPID) *LP
	ForEachLP(func(*LP))
	Schedule(dst LPID, t Time, data any)
}

// Simulator is the optimistic parallel kernel. Build one with New, attach
// handlers and bootstrap events, then Run.
type Simulator struct {
	cfg Config
	lps []*LP
	kps []*KP
	pes []*PE

	boot    []*Event
	bootSeq uint64

	bar          *barrier
	gvtDelayed   atomic.Int64
	gvtRequested atomic.Bool
	gvtStable    atomic.Bool
	finished     atomic.Bool
	gvtBits      atomic.Uint64
	localMins    []Time
	gvtRounds    atomic.Int64

	// async selects the token GVT (Config.GVTMode == GVTAsync); token is
	// its circulating state. See gvt_async.go.
	async bool
	token gvtToken

	// Periodic checkpointing (SetCheckpoint; see checkpoint.go). ckptDue is
	// barrier mode's round flag: PE 0 writes it between a round's barriers
	// and every PE reads it after the next barrier, so it needs no atomic.
	// ckptPending is the async mode's equivalent — there is no barrier to
	// order a plain flag, so completeRound publishes it atomically and
	// every PE's next asyncPass routes into the rendezvous. ckptLastRound
	// is PE 0's bookkeeping only.
	ckptSink      CheckpointSink
	ckptEvery     int64
	ckptDue       bool
	ckptPending   atomic.Bool
	ckptLastRound int64

	failOnce sync.Once
	failErr  error

	ran bool
}

// New builds a simulator: LPs, their KP/PE placement, queues and random
// streams. Attach model handlers with ForEachLP or LP before calling Run.
//
//simlint:crosspe construction: the PE goroutines have not started, and Run's goroutine spawn orders these writes before them
func New(cfg Config) (*Simulator, error) {
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	s := &Simulator{cfg: cfg}
	s.kps = make([]*KP, cfg.NumKPs)
	s.pes = make([]*PE, cfg.NumPEs)
	for i := range s.pes {
		s.pes[i] = &PE{
			id:     i,
			sim:    s,
			lanes:  make([]lane, cfg.NumPEs),
			wakeCh: make(chan struct{}, 1),
		}
		s.pes[i].outbox.bufs = make([][]mail, cfg.NumPEs)
		if cfg.Faults != nil {
			s.pes[i].faults = newPEFaults(cfg.Faults, i)
		}
	}
	for i := range s.kps {
		peID := cfg.PEOfKP(i)
		if peID < 0 || peID >= cfg.NumPEs {
			return nil, fmt.Errorf("core: PEOfKP(%d) = %d out of range", i, peID)
		}
		kp := &KP{id: i, pe: s.pes[peID]}
		s.kps[i] = kp
		s.pes[peID].kps = append(s.pes[peID].kps, kp)
	}
	s.lps = make([]*LP, cfg.NumLPs)
	for i := range s.lps {
		kpID := cfg.KPOfLP(i)
		if kpID < 0 || kpID >= cfg.NumKPs {
			return nil, fmt.Errorf("core: KPOfLP(%d) = %d out of range", i, kpID)
		}
		kp := s.kps[kpID]
		lp := &LP{
			ID:  LPID(i),
			kp:  kp,
			rng: rng.NewStream(streamID(cfg.Seed, i)),
			eng: kp.pe,
		}
		s.lps[i] = lp
	}
	for _, pe := range s.pes {
		pe.pending = newEventQueue(cfg.Queue)
	}
	s.bar = newBarrier(cfg.NumPEs)
	s.localMins = make([]Time, cfg.NumPEs)
	s.async = cfg.GVTMode == GVTAsync
	if s.async {
		for _, pe := range s.pes {
			pe.outMin = make([]Time, cfg.NumPEs)
			for d := range pe.outMin {
				pe.outMin[d] = TimeInfinity
			}
			pe.epochs = make([][]outEpoch, cfg.NumPEs)
		}
	}
	if (cfg.AdaptiveOptimism || s.async) && cfg.NumPEs > 1 {
		// Async GVT has no stop-the-world quench, so the controller is not
		// optional there (see Config.AdaptiveOptimism). A single-PE machine
		// executes in timestamp order and cannot roll back, so throttling it
		// would only cap batch depth for nothing.
		for _, pe := range s.pes {
			pe.opt = newOptimismController(&s.cfg, runtime.GOMAXPROCS(0))
		}
	}
	s.setGVT(0)
	return s, nil
}

// streamID spaces LP streams so different seeds and different LPs never
// collide in practice.
func streamID(seed uint64, lp int) uint64 {
	return seed*0x9E3779B1 + uint64(lp)
}

// newEventQueue builds a pending queue ordered by the kernel's total
// event order; shared by all three engines. The key projection hands
// calendar-family kinds the receive time to bucket by — monotone with
// respect to before(), whose first field is recvTime. The kind is
// validated before any engine gets here (setDefaults, NewSequential,
// NewConservative), so a constructor error is a kernel bug, not user
// input.
func newEventQueue(kind string) eventq.Queue[*Event] {
	q, err := eventq.New[*Event](kind,
		func(a, b *Event) bool { return a.before(b) },
		func(e *Event) float64 { return float64(e.recvTime) })
	if err != nil {
		panic("core: " + err.Error())
	}
	return q
}

// newLPStream builds the reversible stream for one LP under a seed.
func newLPStream(seed uint64, lp int) *rng.Stream {
	return rng.NewStream(streamID(seed, lp))
}

// NumLPs returns the number of logical processes.
func (s *Simulator) NumLPs() int { return len(s.lps) }

// NumKPs returns the number of kernel processes after mapping adjustment.
func (s *Simulator) NumKPs() int { return len(s.kps) }

// NumPEs returns the number of processing elements after mapping
// adjustment.
func (s *Simulator) NumPEs() int { return len(s.pes) }

// LP returns the logical process with the given ID.
func (s *Simulator) LP(id LPID) *LP { return s.lps[id] }

// ForEachLP applies fn to every LP in ID order; the idiomatic place to
// install handlers and initial state.
func (s *Simulator) ForEachLP(fn func(lp *LP)) {
	for _, lp := range s.lps {
		fn(lp)
	}
}

// Schedule enqueues a bootstrap event before the run starts. Bootstrap
// events have source NoLP and a global sequence, so their order is as
// deterministic as every other event's.
func (s *Simulator) Schedule(dst LPID, t Time, data any) {
	if s.ran {
		panic("core: Schedule after Run")
	}
	if t < 0 {
		panic("core: Schedule with negative time")
	}
	if dst < 0 || int(dst) >= len(s.lps) {
		panic("core: Schedule to unknown LP")
	}
	ev := &Event{recvTime: t, dst: dst, src: NoLP, seq: s.bootSeq, Data: data}
	s.bootSeq++
	s.boot = append(s.boot, ev)
}

// SetRecord attaches a record sink (see Config.Record). It must be called
// before Run; models construct the kernel Config internally, so this is
// how the replay subsystem reaches a model-built simulator.
func (s *Simulator) SetRecord(r RecordSink) {
	if s.ran {
		panic("core: SetRecord after Run")
	}
	s.cfg.Record = r
}

// SetMemoryBound arms the fossil-collection pressure valve after
// construction (see Config.MaxLiveEvents/PressureWindow): each PE caps its
// executed-but-uncommitted events at maxLive, falling back to a
// GVT+window optimism horizon while over budget. window <= 0 picks the
// default. Models build the kernel Config internally, so — like SetRecord
// — this is how harnesses reach a model-built simulator; it must be
// called before Run. maxLive <= 0 disarms the valve.
func (s *Simulator) SetMemoryBound(maxLive int, window Time) {
	if s.ran {
		panic("core: SetMemoryBound after Run")
	}
	if maxLive <= 0 {
		s.cfg.MaxLiveEvents, s.cfg.PressureWindow = 0, 0
		return
	}
	s.cfg.MaxLiveEvents = maxLive
	s.cfg.PressureWindow = window
	if window <= 0 {
		s.cfg.PressureWindow = s.cfg.defaultPressureWindow()
	}
}

// SetParanoid enables the kernel's invariant checks after construction
// (Config.CheckInvariants), with an additional in-run sweep every
// sweepEvery scheduler passes when sweepEvery is positive (see
// Config.InvariantSweep). Must be called before Run.
func (s *Simulator) SetParanoid(sweepEvery int) {
	if s.ran {
		panic("core: SetParanoid after Run")
	}
	s.cfg.CheckInvariants = true
	if sweepEvery > 0 {
		s.cfg.InvariantSweep = sweepEvery
	}
}

// ForEachBootstrap visits every bootstrap event scheduled so far, in
// schedule (sequence) order. The replay subsystem uses it to harvest a
// model's injections; data is the payload passed to Schedule and must not
// be mutated.
func (s *Simulator) ForEachBootstrap(fn func(dst LPID, t Time, data any)) {
	for _, ev := range s.boot {
		fn(ev.dst, ev.recvTime, ev.Data)
	}
}

// DropBootstrap discards every bootstrap event scheduled so far and resets
// the bootstrap sequence, so a recorded injection list can be re-scheduled
// in its place (internal/replay). Only legal before Run.
func (s *Simulator) DropBootstrap() {
	if s.ran {
		panic("core: DropBootstrap after Run")
	}
	s.boot = nil
	s.bootSeq = 0
}

// GVT returns the last computed global virtual time.
func (s *Simulator) GVT() Time {
	return Time(math.Float64frombits(s.gvtBits.Load()))
}

func (s *Simulator) setGVT(t Time) {
	s.gvtBits.Store(math.Float64bits(float64(t)))
}

// lookup implements part of the engine interface on the simulator's
// behalf; PEs delegate to it.
func (s *Simulator) lookup(id LPID) *LP {
	if id < 0 || int(id) >= len(s.lps) {
		return nil
	}
	return s.lps[id]
}

func (s *Simulator) fail(err error) {
	s.failOnce.Do(func() {
		s.failErr = err
		s.finished.Store(true)
		// Bypass requestGVT (and its GVTDelay suppression): every PE —
		// including parked ones, once woken — must route into gvtRound,
		// where the poisoned barrier surfaces the failure.
		s.gvtRequested.Store(true)
		s.bar.poison()
		s.wakeAll()
	})
}

// Run executes the simulation to completion and returns kernel statistics.
// It may be called once.
func (s *Simulator) Run() (*Stats, error) {
	if s.ran {
		return nil, errors.New("core: Run called twice")
	}
	s.ran = true
	for _, lp := range s.lps {
		if lp.Handler == nil {
			return nil, fmt.Errorf("core: LP %d has no handler", lp.ID)
		}
	}
	for _, ev := range s.boot {
		s.lps[ev.dst].kp.pe.insert(ev)
	}
	s.boot = nil

	start := time.Now()
	var wg sync.WaitGroup
	errs := make([]error, len(s.pes))
	for i, pe := range s.pes {
		wg.Add(1)
		go func(i int, pe *PE) {
			defer wg.Done()
			errs[i] = pe.run()
		}(i, pe)
	}
	wg.Wait()
	wall := time.Since(start)

	if s.failErr != nil {
		return nil, s.failErr
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return s.collectStats(wall), nil
}
