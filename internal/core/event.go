// Package core implements gotw, an optimistic parallel discrete-event
// simulation kernel in the style of ROSS (Rensselaer's Optimistic
// Simulation System): Time Warp synchronisation with rollback by reverse
// computation, kernel processes (KPs) that bound rollback scope, a
// shared-memory barrier GVT with transient-message accounting, fossil
// collection with commit callbacks, and per-LP reversible random streams.
//
// A simulation is a set of logical processes (LPs) exchanging timestamped
// events. LPs are grouped into kernel processes, and kernel processes onto
// processing elements (PEs) — one goroutine each — which execute events
// optimistically and roll back when a straggler or cancellation arrives.
//
// The kernel guarantees a deterministic committed execution: events are
// totally ordered by (receive time, destination, source, sequence), and a
// parallel run commits exactly the order a sequential run produces, which
// is what lets the test suite compare the two bit-for-bit (the report's
// Attachment 3 experiment).
package core

import "fmt"

// Time is simulation virtual time. The hot-potato model uses one unit per
// synchronous network step with sub-unit offsets ordering intra-step
// decisions.
type Time float64

// TimeInfinity is later than every event; GVT reaches it when the
// simulation has drained.
const TimeInfinity = Time(1e308 * 1.5) // +Inf without importing math

// LPID identifies a logical process; IDs are dense in [0, NumLPs).
type LPID int32

// NoLP is the source of bootstrap events scheduled before the run starts.
const NoLP LPID = -1

// Bitfield is per-event scratch the model may use to remember which
// branches Forward took, so Reverse can undo exactly those effects — the
// analogue of ROSS's tw_bf. It is zeroed before every Forward call.
type Bitfield uint32

// Set sets bit i.
func (b *Bitfield) Set(i uint) { *b |= 1 << i }

// Clear clears bit i.
func (b *Bitfield) Clear(i uint) { *b &^= 1 << i }

// Test reports bit i.
func (b Bitfield) Test(i uint) bool { return b&(1<<i) != 0 }

type eventState uint8

const (
	stateInit eventState = iota
	statePending
	stateProcessed
	stateCanceled
	stateCommitted
	// stateFree marks an event sitting in (or just released to) an event
	// pool. A stateFree event reachable from any queue, KP history or
	// mailbox is a lifecycle bug; paranoid mode hunts for exactly that.
	stateFree
)

// Event is one timestamped message between LPs. The kernel owns the
// unexported bookkeeping; models interact with the exported Data payload
// and Bits scratch, plus the read-only accessors.
//
// Following ROSS's idiom, the Data payload doubles as the reverse-
// computation save area: Forward stores the few values it overwrites into
// its own message struct, and Reverse restores them.
type Event struct {
	recvTime Time
	dst      LPID
	src      LPID
	seq      uint64 // per-source send sequence; (src, seq) unique per history

	// Data is the model-defined message payload.
	Data any
	// Bits is the reverse-computation branch scratch, zeroed before Forward.
	Bits Bitfield

	// Kernel bookkeeping, touched only by the owning (destination) PE
	// after the event has been handed off. While the event (or an
	// anti-message for it) rides a cross-PE lane, neither side may touch
	// any of it: the sender stopped owning it at post time, and the
	// destination does not own it until drain. The in-flight accounting
	// (mailbox.go) is what makes the gap safe — mail queued in an outbox
	// or lane keeps GVT from stabilising, so the event cannot be
	// committed, fossil-collected, or recycled while in transit. That is
	// also why Event carries no intrusive queue link: an event and its
	// anti-message can be in flight simultaneously, which no single
	// embedded next-pointer could represent.
	state       eventState
	gen         uint32   // incarnation counter, bumped on every pool free
	sent        []*Event // events produced while processing this event
	rngDraws    uint32   // random draws Forward consumed
	prevSendSeq uint64   // sender-side sequence before Forward, for reversal
}

// RecvTime returns the virtual time at which the event executes.
func (e *Event) RecvTime() Time { return e.recvTime }

// Dst returns the destination LP.
func (e *Event) Dst() LPID { return e.dst }

// Src returns the sending LP, or NoLP for bootstrap events.
func (e *Event) Src() LPID { return e.src }

// String renders the event identity for diagnostics.
func (e *Event) String() string {
	return fmt.Sprintf("Event{t=%g dst=%d src=%d seq=%d}", float64(e.recvTime), e.dst, e.src, e.seq)
}

// before is the kernel's total order on events. Receive time dominates;
// destination, source and the per-source sequence break ties. Because
// (src, seq) is unique along any committed history, two distinct events
// never compare equal, so every queue pop, straggler check and rollback
// agrees on one global order — the root of the kernel's determinism.
func (e *Event) before(o *Event) bool {
	if e.recvTime != o.recvTime {
		return e.recvTime < o.recvTime
	}
	if e.dst != o.dst {
		return e.dst < o.dst
	}
	if e.src != o.src {
		return e.src < o.src
	}
	return e.seq < o.seq
}

// eventKey is a value copy of an event's ordering key; KPs keep one for
// their last processed event so the straggler test survives fossil
// collection of the event itself.
type eventKey struct {
	recvTime Time
	dst      LPID
	src      LPID
	seq      uint64
}

func (e *Event) key() eventKey {
	return eventKey{e.recvTime, e.dst, e.src, e.seq}
}

func (k eventKey) beforeEvent(e *Event) bool {
	if k.recvTime != e.recvTime {
		return k.recvTime < e.recvTime
	}
	if k.dst != e.dst {
		return k.dst < e.dst
	}
	if k.src != e.src {
		return k.src < e.src
	}
	return k.seq < e.seq
}

func (e *Event) beforeKey(k eventKey) bool {
	if e.recvTime != k.recvTime {
		return e.recvTime < k.recvTime
	}
	if e.dst != k.dst {
		return e.dst < k.dst
	}
	if e.src != k.src {
		return e.src < k.src
	}
	return e.seq < k.seq
}
