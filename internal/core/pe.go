package core

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/eventq"
)

// minIdleThreshold is the initial number of empty scheduler passes before
// an idle PE requests a GVT round.
const minIdleThreshold = 16

// mail is one message between PEs: a positive event or a cancellation
// (anti-message) for one.
type mail struct {
	ev     *Event
	cancel bool
}

// mailbox is a mutex-guarded multi-producer single-consumer queue. Posts
// from all senders are totally ordered by the lock, which guarantees a
// cancellation can never be drained before the positive message it chases.
type mailbox struct {
	mu  sync.Mutex
	buf []mail
}

func (m *mailbox) post(msg mail) {
	m.mu.Lock()
	m.buf = append(m.buf, msg)
	m.mu.Unlock()
}

// drainInto swaps the buffer out under the lock and returns it; the caller
// recycles the previous batch slice to avoid churn.
func (m *mailbox) drainInto(batch []mail) []mail {
	m.mu.Lock()
	out := m.buf
	m.buf = batch[:0]
	m.mu.Unlock()
	return out
}

// PE is a processing element: one goroutine owning a set of KPs (and their
// LPs), a pending-event queue, and a mailbox for events arriving from other
// PEs. All state reachable from a PE's LPs is only ever touched by that
// PE's goroutine.
type PE struct {
	id  int
	sim *Simulator

	pending eventq.Queue[*Event]
	inbox   mailbox
	batch   []mail // recycled drain buffer
	pool    eventPool
	kps     []*KP

	sinceGVT      int
	idleSpins     int
	idleThreshold int

	// faults is non-nil only when Config.Faults is set; see faults.go.
	faults *peFaults

	// Statistics (owned by this PE; read by others only after Run).
	processed          int64
	committed          int64
	rolledBackEvents   int64
	primaryRollbacks   int64
	secondaryRollbacks int64
	mailSent           int64
	mailReceived       int64
	canceledPending    int64
	forcedRollbacks    int64
	busy               time.Duration
}

// ID returns the PE index.
func (pe *PE) ID() int { return pe.id }

// post delivers a message from another PE; the global in-flight counter is
// incremented before the post so the GVT round can detect transients.
func (pe *PE) postRemote(msg mail) {
	pe.sim.sent.Add(1)
	pe.inbox.post(msg)
}

// drainMailbox pulls every queued message and applies it: positive events
// are inserted (possibly triggering a primary rollback), cancellations are
// resolved (possibly triggering a secondary rollback).
func (pe *PE) drainMailbox() {
	msgs := pe.inbox.drainInto(pe.batch)
	if len(msgs) == 0 {
		pe.batch = msgs
		return
	}
	pe.sim.delivered.Add(int64(len(msgs)))
	pe.mailReceived += int64(len(msgs))
	if pe.faults != nil && pe.faults.plan.ShuffleMail && len(msgs) > 1 {
		pe.faults.perturbMail(msgs)
	}
	for _, m := range msgs {
		if m.cancel {
			pe.cancelLocal(m.ev)
		} else {
			pe.insert(m.ev)
		}
	}
	pe.batch = msgs
}

// alloc implements engine: events come from this PE's free list.
func (pe *PE) alloc() *Event { return pe.pool.get() }

// free returns a dead event (committed or cancelled-and-discarded) to this
// PE's pool, recycling its payload through the model if it opted in. Only
// the PE owning the event's destination may call it — which is exactly the
// PE whose goroutine proves the event dead.
func (pe *PE) free(ev *Event) {
	pe.pool.release(pe.sim.lps[ev.dst], ev)
}

// insert adds an event to this PE's pending queue. If the event is in the
// past of its KP, the KP is first rolled back to just before it (a primary
// rollback).
func (pe *PE) insert(ev *Event) {
	if pe.sim.cfg.CheckInvariants && ev.state == stateFree {
		panic("core: use after free: inserting pooled event " + ev.String())
	}
	kp := pe.sim.lps[ev.dst].kp
	if kp.hasLast && ev.beforeKey(kp.lastKey) {
		n := pe.rollback(kp, ev.key())
		kp.primaryRollbacks++
		pe.primaryRollbacks++
		if hook := pe.sim.cfg.OnRollback; hook != nil {
			hook(kp.id, n, false)
		}
	}
	ev.state = statePending
	pe.pending.Push(ev)
}

// cancelLocal resolves an anti-message whose target lives on this PE.
func (pe *PE) cancelLocal(ev *Event) {
	switch ev.state {
	case statePending:
		// Lazy removal: the event stays queued and is discarded when it
		// surfaces at the top.
		ev.state = stateCanceled
		pe.canceledPending++
	case stateProcessed:
		kp := pe.sim.lps[ev.dst].kp
		n := pe.rollback(kp, ev.key())
		kp.secondaryRollbacks++
		pe.secondaryRollbacks++
		if hook := pe.sim.cfg.OnRollback; hook != nil {
			hook(kp.id, n, true)
		}
		// The rollback returned the event to pending; discard it there.
		ev.state = stateCanceled
		pe.canceledPending++
	case stateCanceled:
		panic("core: event cancelled twice")
	case stateCommitted:
		panic("core: cancellation for a committed event (GVT violation)")
	case stateFree:
		panic("core: use after free: cancellation for pooled event " + ev.String())
	default:
		panic("core: cancellation for an unscheduled event")
	}
}

// rollback unprocesses every event in kp at or after key, in reverse
// processing order: the model's Reverse handler runs, random draws are
// rewound, the send sequence is restored, and every event the unprocessed
// event had sent is cancelled (cascading to other PEs as anti-messages).
// Unprocessed events return to the pending queue for re-execution. It
// returns the number of events reversed.
func (pe *PE) rollback(kp *KP, key eventKey) int {
	n := 0
	for {
		tail := kp.tail()
		if tail == nil || tail.beforeKey(key) {
			break
		}
		kp.popTail()
		pe.reverse(tail)
		tail.state = statePending
		pe.pending.Push(tail)
		kp.rolledBackEvents++
		pe.rolledBackEvents++
		n++
	}
	return n
}

// reverse undoes one processed event.
func (pe *PE) reverse(ev *Event) {
	lp := pe.sim.lps[ev.dst]
	lp.mode = modeReverse
	lp.cur = ev
	lp.Handler.Reverse(lp, ev)
	lp.cur = nil
	lp.mode = modeIdle
	lp.rng.Reverse(uint64(ev.rngDraws))
	ev.rngDraws = 0
	lp.sendSeq = ev.prevSendSeq
	for i := len(ev.sent) - 1; i >= 0; i-- {
		pe.cancel(ev.sent[i])
	}
	ev.sent = ev.sent[:0]
}

// cancel routes a cancellation for a previously sent event to the PE that
// owns its destination.
func (pe *PE) cancel(ev *Event) {
	dstPE := pe.sim.lps[ev.dst].kp.pe
	if dstPE == pe {
		pe.cancelLocal(ev)
		return
	}
	pe.mailSent++
	dstPE.postRemote(mail{ev: ev, cancel: true})
}

// scheduleNew implements engine for the parallel kernel: a freshly sent
// event goes straight into the local queue when its destination is local,
// or through the destination PE's mailbox otherwise.
func (pe *PE) scheduleNew(ev *Event) {
	dstPE := pe.sim.lps[ev.dst].kp.pe
	if dstPE == pe {
		pe.insert(ev)
		return
	}
	pe.mailSent++
	dstPE.postRemote(mail{ev: ev})
}

// nextLive pops cancelled events off the top of the pending queue and
// returns the first live one without removing it. A cancelled event popped
// here is dead — it was either never executed or already rolled back, and
// the anti-message that killed it has been consumed — so it returns to
// this (its destination's) PE's pool.
func (pe *PE) nextLive() (*Event, bool) {
	for {
		ev, ok := pe.pending.Min()
		if !ok {
			return nil, false
		}
		if ev.state == stateCanceled {
			pe.pending.Pop()
			pe.free(ev)
			continue
		}
		return ev, true
	}
}

// execute runs one event forward.
func (pe *PE) execute(ev *Event) {
	if pe.sim.cfg.CheckInvariants && ev.state == stateFree {
		panic("core: use after free: executing pooled event " + ev.String())
	}
	lp := pe.sim.lps[ev.dst]
	kp := lp.kp
	ev.state = stateProcessed
	ev.Bits = 0
	ev.prevSendSeq = lp.sendSeq
	lp.mode = modeForward
	lp.cur = ev
	lp.Handler.Forward(lp, ev)
	lp.cur = nil
	lp.mode = modeIdle
	kp.push(ev)
	pe.processed++
}

// run is the PE goroutine body.
func (pe *PE) run() (err error) {
	defer func() {
		if r := recover(); r != nil {
			buf := make([]byte, 16<<10)
			buf = buf[:runtime.Stack(buf, false)]
			err = fmt.Errorf("core: PE %d panicked: %v\n%s", pe.id, r, buf)
			pe.sim.fail(err)
		}
	}()
	s := pe.sim
	start := time.Now()
	defer func() { pe.busy = time.Since(start) }()
	for {
		pe.drainMailbox()

		if s.gvtRequested.Load() {
			done, gerr := pe.gvtRound()
			if gerr != nil {
				return gerr
			}
			if done {
				return nil
			}
			continue
		}

		n := 0
		batch := s.cfg.BatchSize
		if pe.faults != nil {
			batch = pe.faults.batchCap(pe.id, batch)
		}
		horizon := s.cfg.EndTime
		if s.cfg.MaxOptimism > 0 {
			if h := s.GVT() + s.cfg.MaxOptimism; h < horizon {
				horizon = h
			}
		}
		for n < batch {
			ev, ok := pe.nextLive()
			if !ok || ev.recvTime >= horizon {
				break
			}
			pe.pending.Pop()
			pe.execute(ev)
			n++
		}

		if n == 0 {
			// Nothing executable below the horizon. If the optimism
			// throttle is what blocks us (work exists below the end time),
			// only a GVT advance can unblock, so request a round promptly.
			// Otherwise spin briefly (new mail may be en route) with an
			// exponential backoff so a starved PE does not thrash the
			// whole machine with barrier rounds.
			throttled := false
			if ev, ok := pe.nextLive(); ok && ev.recvTime < s.cfg.EndTime {
				throttled = true
			}
			pe.idleSpins++
			if throttled && pe.idleSpins >= minIdleThreshold {
				pe.idleSpins = 0
				s.requestGVT()
			} else if pe.idleSpins >= pe.idleThreshold {
				pe.idleSpins = 0
				if pe.idleThreshold < 4096 {
					pe.idleThreshold *= 2
				}
				s.requestGVT()
			} else {
				runtime.Gosched()
			}
			continue
		}
		pe.idleSpins = 0
		pe.idleThreshold = minIdleThreshold
		pe.sinceGVT += n
		if pe.faults != nil {
			pe.maybeForceRollback(n)
			if batch < s.cfg.BatchSize {
				// Throttled PE: hand the processor over so the gap to the
				// unthrottled PEs actually widens.
				runtime.Gosched()
			}
		}
		if pe.sinceGVT >= s.cfg.BatchSize*s.cfg.GVTInterval {
			pe.sinceGVT = 0
			s.requestGVT()
		}
	}
}

// lookup implements the engine interface by delegating to the simulator.
func (pe *PE) lookup(id LPID) *LP { return pe.sim.lookup(id) }

// fossilCollect commits all events below gvt on this PE's KPs.
func (pe *PE) fossilCollect(gvt Time) {
	for _, kp := range pe.kps {
		before := kp.committed
		kp.fossilCollect(gvt, pe)
		pe.committed += kp.committed - before
	}
}
