package core

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"time"

	"repro/internal/eventq"
)

// minIdleThreshold is the number of empty scheduler passes before an idle
// PE escalates: first to a GVT request, then — once a round has come and
// gone with the PE still idle — to parking (see mailbox.go).
const minIdleThreshold = 16

// PE is a processing element: one goroutine owning a set of KPs (and their
// LPs), a pending-event queue, and per-sender inbound lanes for events
// arriving from other PEs (see mailbox.go). All state reachable from a
// PE's LPs is only ever touched by that PE's goroutine.
type PE struct {
	id  int
	sim *Simulator

	pending eventq.Queue[*Event] //simlint:owned
	lanes   []lane               // inbound SPSC rings, indexed by sender PE: the lanes themselves are the sync structure
	outbox  outbox               //simlint:owned
	batch   []mail               //simlint:owned
	pool    eventPool            //simlint:owned
	kps     []*KP                //simlint:owned

	parked atomic.Bool
	wakeCh chan struct{}

	sinceGVT  int
	idleSpins int
	// idleRound records that a GVT round completed while this PE was
	// continuously idle; only then may it park, because the round's
	// stability loop proved no mail was in flight toward it. Barrier mode
	// only; the async mode's equivalent is visitIdle/visitDone below.
	idleRound bool

	// Async-GVT state (allocated and used only under Config.GVTMode ==
	// GVTAsync; see gvt_async.go). outMin[d] is the minimum receive time of
	// mail posted to PE d in the open coverage epoch; epochs[d] holds the
	// closed epochs still possibly in flight. Both are owner-only — the
	// sender-side coverage scheme needs no cross-PE state beyond the lane
	// indices the comms layer already publishes. lastFossil is the GVT
	// estimate this PE last fossil-collected against.
	outMin     []Time       //simlint:owned
	epochs     [][]outEpoch //simlint:owned
	lastFossil Time         //simlint:owned
	// lastContrib is the local minimum this PE folded into the token at
	// its most recent visit: a standing promise that nothing it can still
	// affect lies below that time. Natural execution honours it by
	// causality (every rollback is triggered by covered mail); the forced-
	// rollback injector must be clamped to it explicitly.
	lastContrib Time //simlint:owned
	// tokenLaunched/roundStart are PE 0's round bookkeeping. idleMarked is
	// set while the PE sits in its idle escalation; visitIdle/visitDone
	// record whether the last token visit found it idle and which
	// completed-round count that visit belongs to — the async parking
	// precondition.
	tokenLaunched bool
	roundStart    time.Time
	idleMarked    bool
	visitIdle     bool
	visitDone     int64
	// obsRound is the completed-round count the optimism controller last
	// observed at, so each round feeds it exactly one sample.
	obsRound int64

	// opt is the adaptive optimism controller, non-nil only under
	// Config.AdaptiveOptimism (see throttle.go).
	opt *optimismController

	// faults is non-nil only when Config.Faults is set; see faults.go.
	faults *peFaults

	// liveEvents is the pressure valve's gauge: this PE's current count of
	// executed-but-uncommitted events, maintained exactly (+1 at execute,
	// -1 per rollback unwind, -committed at fossil collection) so it always
	// equals the sum of kp.live() over this PE's KPs — which is also the
	// number of live state saves under copy state saving (one snapshot per
	// uncommitted event). checkInvariants asserts the identity.
	liveEvents int64 //simlint:owned
	// sweepSince counts scheduler passes since the last in-run invariant
	// sweep (Config.InvariantSweep).
	sweepSince int

	// Statistics (owned by this PE; read by others only after Run).
	// mailSent and mailReceived double as this PE's shards of the global
	// in-flight message accounting: the GVT stability loop sums them
	// across PEs between barriers (gvt.go), so no live global counter —
	// and no cross-PE cache-line ping-pong — is needed.
	//
	//simlint:sharded
	processed          int64
	committed          int64         //simlint:sharded
	rolledBackEvents   int64         //simlint:sharded
	primaryRollbacks   int64         //simlint:sharded
	secondaryRollbacks int64         //simlint:sharded
	mailSent           int64         //simlint:sharded
	mailReceived       int64         //simlint:sharded
	canceledPending    int64         //simlint:sharded
	forcedRollbacks    int64         //simlint:sharded
	batchesFlushed     int64         //simlint:sharded
	batchedMessages    int64         //simlint:sharded
	mailboxPeak        int64         //simlint:sharded
	livePeak           int64         //simlint:sharded
	memThrottles       int64         //simlint:sharded
	invariantSweeps    int64         //simlint:sharded
	parks              int64         //simlint:sharded
	wakes              atomic.Int64  // bumped by the waker, not the owner: atomic, so not sharded
	busy               time.Duration //simlint:sharded
	gvtWait            time.Duration //simlint:sharded
	gvtLatency         time.Duration //simlint:sharded
	optClamps          int64         //simlint:sharded
}

// ID returns the PE index.
func (pe *PE) ID() int { return pe.id }

// alloc implements engine: events come from this PE's free list.
func (pe *PE) alloc() *Event { return pe.pool.get() }

// free returns a dead event (committed or cancelled-and-discarded) to this
// PE's pool, recycling its payload through the model if it opted in. Only
// the PE owning the event's destination may call it — which is exactly the
// PE whose goroutine proves the event dead.
func (pe *PE) free(ev *Event) {
	pe.pool.release(pe.sim.lps[ev.dst], ev)
}

// insert adds an event to this PE's pending queue. If the event is in the
// past of its KP, the KP is first rolled back to just before it (a primary
// rollback).
func (pe *PE) insert(ev *Event) {
	if pe.sim.cfg.CheckInvariants && ev.state == stateFree {
		panic("core: use after free: inserting pooled event " + ev.String())
	}
	kp := pe.sim.lps[ev.dst].kp
	if kp.hasLast && ev.beforeKey(kp.lastKey) {
		n := pe.rollback(kp, ev.key())
		kp.primaryRollbacks++
		pe.primaryRollbacks++
		if hook := pe.sim.cfg.OnRollback; hook != nil {
			hook(kp.id, n, false)
		}
		if rec := pe.sim.cfg.Record; rec != nil {
			rec.Rollback(pe.id, kp.id, n, false, false)
		}
	}
	ev.state = statePending
	pe.pending.Push(ev)
}

// cancelLocal resolves an anti-message whose target lives on this PE.
func (pe *PE) cancelLocal(ev *Event) {
	switch ev.state {
	case statePending:
		// Lazy removal: the event stays queued and is discarded when it
		// surfaces at the top.
		ev.state = stateCanceled
		pe.canceledPending++
	case stateProcessed:
		kp := pe.sim.lps[ev.dst].kp
		n := pe.rollback(kp, ev.key())
		kp.secondaryRollbacks++
		pe.secondaryRollbacks++
		if hook := pe.sim.cfg.OnRollback; hook != nil {
			hook(kp.id, n, true)
		}
		if rec := pe.sim.cfg.Record; rec != nil {
			rec.Rollback(pe.id, kp.id, n, true, false)
		}
		// The rollback returned the event to pending; discard it there.
		ev.state = stateCanceled
		pe.canceledPending++
	case stateCanceled:
		panic("core: event cancelled twice")
	case stateCommitted:
		panic("core: cancellation for a committed event (GVT violation)")
	case stateFree:
		panic("core: use after free: cancellation for pooled event " + ev.String())
	default:
		panic("core: cancellation for an unscheduled event")
	}
}

// rollback unprocesses every event in kp at or after key, in reverse
// processing order: the model's Reverse handler runs, random draws are
// rewound, the send sequence is restored, and every event the unprocessed
// event had sent is cancelled (cascading to other PEs as anti-messages).
// Unprocessed events return to the pending queue for re-execution. It
// returns the number of events reversed.
func (pe *PE) rollback(kp *KP, key eventKey) int {
	n := 0
	for {
		tail := kp.tail()
		if tail == nil || tail.beforeKey(key) {
			break
		}
		kp.popTail()
		pe.reverse(tail)
		tail.state = statePending
		pe.pending.Push(tail)
		kp.rolledBackEvents++
		pe.rolledBackEvents++
		pe.liveEvents--
		n++
	}
	return n
}

// reverse undoes one processed event.
func (pe *PE) reverse(ev *Event) {
	lp := pe.sim.lps[ev.dst]
	lp.mode = modeReverse
	lp.cur = ev
	lp.Handler.Reverse(lp, ev)
	lp.cur = nil
	lp.mode = modeIdle
	lp.rng.Reverse(uint64(ev.rngDraws))
	ev.rngDraws = 0
	lp.sendSeq = ev.prevSendSeq
	for i := len(ev.sent) - 1; i >= 0; i-- {
		pe.cancel(ev.sent[i])
	}
	ev.sent = ev.sent[:0]
}

// cancel routes a cancellation for a previously sent event to the PE that
// owns its destination.
func (pe *PE) cancel(ev *Event) {
	dstPE := pe.sim.lps[ev.dst].kp.pe
	if dstPE == pe {
		pe.cancelLocal(ev)
		return
	}
	pe.post(dstPE, mail{ev: ev, cancel: true})
}

// scheduleNew implements engine for the parallel kernel: a freshly sent
// event goes straight into the local queue when its destination is local,
// or into the outbox batch for its destination PE otherwise.
func (pe *PE) scheduleNew(ev *Event) {
	dstPE := pe.sim.lps[ev.dst].kp.pe
	if dstPE == pe {
		pe.insert(ev)
		return
	}
	pe.post(dstPE, mail{ev: ev})
}

// nextLive pops cancelled events off the top of the pending queue and
// returns the first live one without removing it. A cancelled event popped
// here is dead — it was either never executed or already rolled back, and
// the anti-message that killed it has been consumed — so it returns to
// this (its destination's) PE's pool.
func (pe *PE) nextLive() (*Event, bool) {
	for {
		ev, ok := pe.pending.Min()
		if !ok {
			return nil, false
		}
		if ev.state == stateCanceled {
			pe.pending.Pop()
			pe.free(ev)
			continue
		}
		return ev, true
	}
}

// execute runs one event forward.
func (pe *PE) execute(ev *Event) {
	if pe.sim.cfg.CheckInvariants && ev.state == stateFree {
		panic("core: use after free: executing pooled event " + ev.String())
	}
	lp := pe.sim.lps[ev.dst]
	kp := lp.kp
	ev.state = stateProcessed
	ev.Bits = 0
	ev.prevSendSeq = lp.sendSeq
	lp.mode = modeForward
	lp.cur = ev
	lp.Handler.Forward(lp, ev)
	lp.cur = nil
	lp.mode = modeIdle
	kp.push(ev)
	pe.processed++
	pe.liveEvents++
	if pe.liveEvents > pe.livePeak {
		pe.livePeak = pe.liveEvents
	}
}

// run is the PE goroutine body.
func (pe *PE) run() (err error) {
	defer func() {
		if r := recover(); r != nil {
			buf := make([]byte, 16<<10)
			buf = buf[:runtime.Stack(buf, false)]
			err = fmt.Errorf("core: PE %d panicked: %v\n%s", pe.id, r, buf)
			pe.sim.fail(err)
		}
	}()
	s := pe.sim
	start := time.Now()
	defer func() { pe.busy = time.Since(start) }()
	for {
		// Drain before flushing: applying inbound mail can roll back and
		// generate anti-messages, and those are the latency-critical
		// sends — a destination that keeps executing a cancelled event's
		// descendants only digs a deeper rollback.
		pe.drainMailbox()
		pe.flushMail(false)

		if s.async {
			// Asynchronous GVT: no rendezvous — notice termination, fossil-
			// collect against any new estimate, move the token if held.
			done, gerr := pe.asyncPass()
			if gerr != nil {
				return gerr
			}
			if done {
				return nil
			}
		} else if s.gvtRequested.Load() {
			done, gerr := pe.gvtRound()
			if gerr != nil {
				return gerr
			}
			if done {
				return nil
			}
			pe.idleRound = true
			continue
		}

		n := 0
		batch := s.cfg.BatchSize
		if pe.faults != nil {
			batch = pe.faults.batchCap(pe.id, batch)
		}
		if s.async && pe.sinceGVT >= s.cfg.BatchSize*s.cfg.GVTInterval {
			// Speculation quota: in barrier mode a PE executes at most one
			// GVT interval's worth of events before the round stops the
			// world, which bounds how far commits can lag execution no
			// matter how densely events are packed in virtual time. The
			// token round has no such stop, so enforce the same bound by
			// count: a PE that has executed a full interval since the last
			// completed round idles (requesting rounds, below) until one
			// completes and resets the counter. Time-based windows cannot
			// catch this — any fixed width is wrong for some event density.
			batch = 0
		}
		horizon := s.cfg.EndTime
		if s.cfg.MaxOptimism > 0 {
			if h := s.GVT() + s.cfg.MaxOptimism; h < horizon {
				horizon = h
			}
		}
		if pe.opt != nil {
			// Adaptive optimism: the controller's window (never wider than
			// MaxOptimism when that is set) tracks this PE's rollback
			// efficiency; see throttle.go.
			if h := s.GVT() + pe.opt.window; h < horizon {
				horizon = h
				pe.optClamps++
			}
		}
		if b := s.cfg.MaxLiveEvents; b > 0 && pe.liveEvents >= int64(b) {
			// Pressure valve engaged: this PE is at its live-event budget,
			// so it stops advancing past GVT+window until fossil collection
			// drains it back under. The window stays positive, so the event
			// at GVT itself — the global minimum — remains executable and
			// GVT keeps advancing; the overshoot within one pass is bounded
			// by BatchSize plus whatever sits below the window.
			if h := s.GVT() + s.cfg.PressureWindow; h < horizon {
				horizon = h
				pe.memThrottles++
			}
		}
		for n < batch {
			ev, ok := pe.nextLive()
			if !ok || ev.recvTime >= horizon {
				break
			}
			pe.pending.Pop()
			pe.execute(ev)
			n++
			if s.async && s.token.holder.Load() == int64(pe.id) &&
				(pe.id != 0 || pe.tokenLaunched || s.gvtRequested.Load()) {
				// An actionable token visit is worth more than batch depth:
				// every event the holder executes first adds a full event to
				// the round's latency, and round latency is the bound on how
				// far commits lag execution (so it directly sets the live-
				// event population). The next pass flushes and visits.
				break
			}
		}

		if n == 0 {
			// Nothing executable below the horizon. Spin briefly (new mail
			// may be en route), then escalate. If the optimism throttle is
			// what blocks us (work exists below the end time), only a GVT
			// advance can unblock, so keep requesting rounds — likewise if
			// no round has run since we went idle, because mail may still
			// be in flight toward us. Only once a round has come and gone
			// with this PE still empty-handed is it safe to park: the
			// round's stability loop proved nothing was in flight, so any
			// future mail comes from a future send, whose flush wakes us.
			throttled := false
			if ev, ok := pe.nextLive(); ok && ev.recvTime < s.cfg.EndTime {
				throttled = true
			}
			pe.idleMarked = true
			pe.idleSpins++
			if pe.idleSpins < minIdleThreshold {
				runtime.Gosched()
				continue
			}
			pe.idleSpins = 0
			if s.async {
				// No barrier to rendezvous at. A throttled PE needs rounds
				// until GVT advances past its horizon; an unthrottled idle PE
				// needs one round whose token visit saw it idle to complete —
				// that round either discovers termination or proves someone
				// else still has the work, and only then is parking safe
				// (otherwise every PE could fall asleep on a stale estimate
				// with no round pending to notice the machine has drained).
				// The token holder never parks — and it must also keep
				// requesting rounds while idle: between rounds the token
				// rests at its holder, so if the holder merely yielded, the
				// other PEs could all park with the request flag clear and
				// no round would ever launch to discover termination.
				parkable := pe.visitIdle && s.gvtRounds.Load() >= pe.visitDone
				holding := s.token.holder.Load() == int64(pe.id)
				if throttled || !parkable || holding {
					// Under the GVTDelay fault the request may be suppressed;
					// re-requesting every threshold is what keeps that safe.
					s.requestGVT()
					runtime.Gosched()
				} else if s.gvtRequested.Load() {
					runtime.Gosched()
				} else {
					pe.park()
				}
				continue
			}
			if throttled || !pe.idleRound {
				// Under the GVTDelay fault the request may be suppressed;
				// re-requesting every threshold is what keeps that safe,
				// and !idleRound keeps us from parking until one lands.
				s.requestGVT()
				runtime.Gosched()
			} else if !s.gvtRequested.Load() {
				pe.park()
			}
			continue
		}
		pe.idleSpins = 0
		pe.idleRound = false
		pe.idleMarked = false
		pe.visitIdle = false
		pe.sinceGVT += n
		if sw := s.cfg.InvariantSweep; sw > 0 {
			// In-run invariant sweep: validate this PE's own structures
			// every sw non-empty passes, without waiting for a GVT round.
			// Everything checkInvariants touches is PE-owned, so no
			// quiescence is required.
			pe.sweepSince++
			if pe.sweepSince >= sw {
				pe.sweepSince = 0
				pe.invariantSweeps++
				if err := pe.checkInvariants(s.GVT()); err != nil {
					s.fail(err)
					return err
				}
			}
		}
		if pe.faults != nil {
			pe.maybeForceRollback(n)
			if batch < s.cfg.BatchSize {
				// Throttled PE: hand the processor over so the gap to the
				// unthrottled PEs actually widens.
				runtime.Gosched()
			}
		}
		if pe.sinceGVT >= s.cfg.BatchSize*s.cfg.GVTInterval {
			// In async mode the counter is the speculation quota above and
			// only a completed round (asyncPass) may reset it; in barrier
			// mode the request itself guarantees a round is imminent.
			if !s.async {
				pe.sinceGVT = 0
			}
			s.requestGVT()
		}
	}
}

// lookup implements the engine interface by delegating to the simulator.
func (pe *PE) lookup(id LPID) *LP { return pe.sim.lookup(id) }

// fossilCollect commits all events below gvt on this PE's KPs. Committing
// drains the pressure valve's gauge: every committed event leaves the
// live set (and, under copy state saving, drops its snapshot), which is
// what re-opens a memory-throttled PE's optimism window.
func (pe *PE) fossilCollect(gvt Time) {
	for _, kp := range pe.kps {
		before := kp.committed
		kp.fossilCollect(gvt, pe)
		delta := kp.committed - before
		pe.committed += delta
		pe.liveEvents -= delta
	}
	pe.reclaimCanceled(gvt)
}

// reclaimCanceled sweeps the pending queue's below-GVT prefix back to the
// pool. Only cancelled husks can live there: GVT is a lower bound on
// every unprocessed live event, so anything pending below it must be an
// event whose anti-message already struck. nextLive reclaims such husks
// lazily, but only when they surface at the queue top — a cancelled
// event buried behind the frontier would otherwise sit in the queue (and
// in the pressure valve's gauge) until the run ends. Piggybacking the
// sweep on fossil collection bounds that garbage by one GVT round, and
// on the ladder the sweep is the BulkDrain fast path over an
// already-sorted prefix. A live event below GVT is a kernel bug — a GVT
// estimate that overtook an unprocessed event — and is loud, not
// tolerated: the PE run loop's recover turns the panic into sim.fail.
// The sweep stops at EndTime even when GVT has passed it (the final
// collection reports TimeInfinity): beyond-horizon events are live,
// pending and simply never executed.
func (pe *PE) reclaimCanceled(gvt Time) {
	if gvt > pe.sim.cfg.EndTime {
		gvt = pe.sim.cfg.EndTime
	}
	bound := &Event{recvTime: gvt, dst: -1 << 31, src: -1 << 31}
	eventq.Drain(pe.pending, bound, (*Event).before, func(ev *Event) {
		if ev.state != stateCanceled {
			panic(fmt.Sprintf("core: GVT violation: live pending event %s below GVT %g",
				ev.String(), float64(gvt)))
		}
		pe.free(ev)
	})
}
