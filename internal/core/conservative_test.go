package core

import "testing"

// lookaheadModel is the stress model with a guaranteed minimum delay so
// it is legal under the conservative engine.
type lookaheadModel struct {
	numLPs    int64
	lookahead Time
}

func (m lookaheadModel) Forward(lp *LP, ev *Event) {
	st := lp.State.(*stressState)
	msg := ev.Data.(*stressMsg)
	msg.PrevHash = st.Hash
	st.Hash = st.Hash*1099511628211 ^ uint64(ev.Src()+1)<<17 ^ uint64(ev.RecvTime()*1e6)
	st.Counter++
	if msg.TTL > 0 {
		dst := LPID(lp.RandInt(0, m.numLPs-1))
		delay := m.lookahead + Time(lp.RandExp(1.0))
		lp.Send(dst, delay, &stressMsg{TTL: msg.TTL - 1})
	}
}

func (m lookaheadModel) Reverse(lp *LP, ev *Event) {
	st := lp.State.(*stressState)
	st.Hash = ev.Data.(*stressMsg).PrevHash
	st.Counter--
}

func setupLookahead(h Host, n int, ttl int, la Time) {
	model := lookaheadModel{numLPs: int64(n), lookahead: la}
	h.ForEachLP(func(lp *LP) {
		lp.Handler = model
		lp.State = &stressState{}
	})
	for i := 0; i < n; i++ {
		h.Schedule(LPID(i), Time(0.001*float64(i+1)), &stressMsg{TTL: ttl})
	}
}

// TestConservativeMatchesSequential: the third engine must commit the
// exact sequential history too.
func TestConservativeMatchesSequential(t *testing.T) {
	const n = 48
	const la = Time(0.25)
	cfg := Config{NumLPs: n, EndTime: 40, Seed: 9}

	seq, err := NewSequential(cfg)
	if err != nil {
		t.Fatal(err)
	}
	setupLookahead(seq, n, 15, la)
	seqStats, err := seq.Run()
	if err != nil {
		t.Fatal(err)
	}
	want := snapshotStress(n, seq.LP)

	for _, pes := range []int{1, 2, 4} {
		ccfg := cfg
		ccfg.NumPEs = pes
		cons, err := NewConservative(ccfg, la)
		if err != nil {
			t.Fatal(err)
		}
		setupLookahead(cons, n, 15, la)
		stats, err := cons.Run()
		if err != nil {
			t.Fatal(err)
		}
		got := snapshotStress(n, cons.LP)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("pes=%d LP %d: %+v != %+v", pes, i, got[i], want[i])
			}
		}
		if stats.Committed != seqStats.Committed {
			t.Fatalf("pes=%d: committed %d != %d", pes, stats.Committed, seqStats.Committed)
		}
		if stats.GVTRounds == 0 {
			t.Fatalf("pes=%d: no windows executed", pes)
		}
	}
}

// TestConservativeLookaheadViolationCaught: a model that sends below its
// declared lookahead must fail the run, not corrupt it.
func TestConservativeLookaheadViolationCaught(t *testing.T) {
	cons, err := NewConservative(Config{NumLPs: 2, NumPEs: 2, EndTime: 10}, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	cons.ForEachLP(func(lp *LP) {
		lp.Handler = funcHandler{
			forward: func(lp *LP, ev *Event) { lp.Send(0, 0.5, nil) }, // below lookahead 1.0
			reverse: func(lp *LP, ev *Event) {},
		}
	})
	cons.Schedule(0, 1, nil)
	if _, err := cons.Run(); err == nil {
		t.Fatal("lookahead violation not surfaced")
	}
}

// TestConservativeValidation: guard rails.
func TestConservativeValidation(t *testing.T) {
	if _, err := NewConservative(Config{NumLPs: 2, EndTime: 10}, 0); err == nil {
		t.Fatal("zero lookahead accepted")
	}
	if _, err := NewConservative(Config{NumLPs: 0, EndTime: 10}, 1); err == nil {
		t.Fatal("invalid config accepted")
	}
	cons, err := NewConservative(Config{NumLPs: 2, NumPEs: 1, EndTime: 10}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cons.Run(); err == nil {
		t.Fatal("Run succeeded without handlers")
	}
}

// TestConservativeEmptyTerminates: no events must still finish.
func TestConservativeEmptyTerminates(t *testing.T) {
	cons, err := NewConservative(Config{NumLPs: 4, NumPEs: 2, EndTime: 100}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	cons.ForEachLP(func(lp *LP) { lp.Handler = funcHandler{forward: func(*LP, *Event) {}, reverse: func(*LP, *Event) {}} })
	stats, err := cons.Run()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Committed != 0 {
		t.Fatalf("committed %d in empty run", stats.Committed)
	}
}
