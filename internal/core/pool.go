package core

// This file implements the recycled event lifecycle — the analogue of
// ROSS's preallocated tw_event free lists, which are the reason its
// steady-state event loop never touches the allocator. Every engine owns
// one or more eventPools: LP.Send draws events from the pool of the
// engine executing the sender, and dead events are returned at the two
// points the kernel proves they can never be referenced again:
//
//   - fossil collection: a committed event is irrevocably in the past;
//   - cancelled-event discard: an anti-messaged event popped off the
//     pending queue was either never executed or already rolled back.
//
// Ownership rule: an event is freed only by the goroutine that owns it at
// death, which is always the PE of the event's *destination* LP (events
// migrate between pools — allocated from the sender's pool, freed into the
// receiver's — so no lock is ever needed). See DESIGN.md "Memory
// management" for the full argument.
//
// Every free stamps the event with a new generation and the stateFree
// marker, so a use-after-free — the classic free-list corruption — is
// detectable: paranoid mode (Config.CheckInvariants) panics the moment a
// freed event is inserted, executed or found in any queue.

// Recycler is optionally implemented by model handlers that want their
// event payloads back once the kernel proves the event dead, so a typed
// payload pool (e.g. a sync.Pool of message structs) can stop the per-send
// allocation of the Data box. Recycle runs on the goroutine of the event's
// destination PE, outside any handler phase: it must only stash the
// payload for reuse, never touch LP state. After Recycle returns, the
// kernel drops its reference; the model must fully re-initialise a
// recycled payload before sending it again.
type Recycler interface {
	Recycle(data any)
}

// eventPool is a LIFO free list of dead events, owned by exactly one
// goroutine (its PE's, or the engine's for the sequential executor), so
// get and put need no synchronisation. LIFO maximises cache warmth: the
// most recently dead event is the next one reissued.
type eventPool struct {
	free []*Event //simlint:owned

	// Counters for Stats: hits are gets served from the free list, misses
	// the gets that had to allocate, recycled the puts, payloads those
	// handed back to a model's Recycler. live tracks this pool's net
	// outstanding events (gets minus puts); because events allocated on
	// one PE may die on another, a single pool's live count is
	// approximate — it can even go negative on a PE that frees more than
	// it allocates — but the sum over all pools is exact net allocation,
	// and livePeak bounds each pool's contribution to the optimistic
	// memory footprint.
	hits     int64 //simlint:sharded
	misses   int64 //simlint:sharded
	recycled int64 //simlint:sharded
	payloads int64 //simlint:sharded
	live     int64 //simlint:sharded
	livePeak int64 //simlint:sharded
}

// get returns a ready-to-initialise event: recycled when possible,
// freshly allocated otherwise. All kernel bookkeeping fields are clean
// (put scrubbed them); the caller sets identity, payload and time.
func (p *eventPool) get() *Event {
	p.live++
	if p.live > p.livePeak {
		p.livePeak = p.live
	}
	if n := len(p.free); n > 0 {
		ev := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		p.hits++
		ev.state = stateInit
		return ev
	}
	p.misses++
	return &Event{}
}

// put returns a dead event to the free list. The event's generation is
// bumped so stale references are distinguishable from the recycled
// incarnation, and its bookkeeping is scrubbed — except the sent slice's
// backing array, which is kept (cleared) so re-sends after recycling do
// not re-grow it from nil.
func (p *eventPool) put(ev *Event) {
	if ev.state == stateFree {
		panic("core: event freed twice: " + ev.String())
	}
	p.live--
	p.recycled++
	ev.gen++
	ev.state = stateFree
	ev.Data = nil
	for i := range ev.sent {
		ev.sent[i] = nil
	}
	ev.sent = ev.sent[:0]
	ev.Bits = 0
	ev.rngDraws = 0
	ev.prevSendSeq = 0
	p.free = append(p.free, ev)
}

// release frees one dead event into pool p, first offering its payload
// back to the destination LP's handler if the model opted into payload
// recycling. lp is the event's destination LP (the pool owner's).
func (p *eventPool) release(lp *LP, ev *Event) {
	if ev.Data != nil {
		if r, ok := lp.Handler.(Recycler); ok {
			r.Recycle(ev.Data)
			p.payloads++
		}
		ev.Data = nil
	}
	p.put(ev)
}

// addTo folds this pool's counters into a PEStats record.
func (p *eventPool) addTo(ps *PEStats) {
	ps.PoolHits += p.hits
	ps.PoolMisses += p.misses
	ps.EventsRecycled += p.recycled
	ps.PayloadsRecycled += p.payloads
	ps.PoolLivePeak += p.livePeak
}
