package core

// Tests for the asynchronous GVT engine (Config.GVTMode = GVTAsync) and the
// adaptive optimism controller that rides on it: token rounds must commit
// exactly the sequential history under adversarial fault plans, the
// controller's TCP-shaped window must narrow under rollback storms and earn
// its width back afterwards, and the speculation quota must bound the live
// uncommitted footprint where no time-based window can.

import (
	"fmt"
	"testing"
)

// TestAsyncGVTMatchesSequential pins GVTMode explicitly (async is the
// default, but the pin keeps the test honest if the default ever moves) and
// drives the stress model through PE/KP/batch shapes chosen to exercise the
// token machinery: single-PE self-handoff, uneven mappings, and tiny GVT
// intervals that keep the token hot. This is the async arm of the CI -race
// stress step.
func TestAsyncGVTMatchesSequential(t *testing.T) {
	base := Config{NumLPs: 64, EndTime: 50, Seed: 11}
	want, seqStats := runStressSequential(t, base, 20)

	configs := []Config{
		{NumLPs: 64, EndTime: 50, Seed: 11, NumPEs: 1, NumKPs: 4},
		{NumLPs: 64, EndTime: 50, Seed: 11, NumPEs: 2, NumKPs: 8, BatchSize: 4, GVTInterval: 1},
		{NumLPs: 64, EndTime: 50, Seed: 11, NumPEs: 4, NumKPs: 16, BatchSize: 4, GVTInterval: 2},
		{NumLPs: 64, EndTime: 50, Seed: 11, NumPEs: 3, NumKPs: 7}, // uneven mapping
		{NumLPs: 64, EndTime: 50, Seed: 11, NumPEs: 4, NumKPs: 8, AdaptiveOptimism: true},
	}
	for _, cfg := range configs {
		cfg := cfg
		cfg.GVTMode = GVTAsync
		name := fmt.Sprintf("pe%d_kp%d_b%d_g%d", cfg.NumPEs, cfg.NumKPs, cfg.BatchSize, cfg.GVTInterval)
		t.Run(name, func(t *testing.T) {
			got, parStats := runStressParallel(t, cfg, 20)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("LP %d state mismatch: async %+v vs sequential %+v", i, got[i], want[i])
				}
			}
			if parStats.Committed != seqStats.Committed {
				t.Fatalf("committed events: async %d vs sequential %d",
					parStats.Committed, seqStats.Committed)
			}
			if parStats.GVTMode != GVTAsync {
				t.Fatalf("stats report GVTMode %q, want %q", parStats.GVTMode, GVTAsync)
			}
			if parStats.GVTRounds == 0 {
				t.Fatal("async run completed zero token rounds")
			}
		})
	}
}

// TestBarrierGVTMatchesSequential keeps the synchronous barrier engine
// covered now that async is the default: both algorithms must stay
// differentially equal to the sequential oracle, or GVTModes sweeps in
// simcheck lose their reference.
func TestBarrierGVTMatchesSequential(t *testing.T) {
	base := Config{NumLPs: 64, EndTime: 50, Seed: 11}
	want, seqStats := runStressSequential(t, base, 20)

	cfg := Config{NumLPs: 64, EndTime: 50, Seed: 11, NumPEs: 4, NumKPs: 16,
		BatchSize: 4, GVTInterval: 2, GVTMode: GVTBarrier}
	got, parStats := runStressParallel(t, cfg, 20)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("LP %d state mismatch: barrier %+v vs sequential %+v", i, got[i], want[i])
		}
	}
	if parStats.Committed != seqStats.Committed {
		t.Fatalf("committed events: barrier %d vs sequential %d",
			parStats.Committed, seqStats.Committed)
	}
	if parStats.GVTMode != GVTBarrier {
		t.Fatalf("stats report GVTMode %q, want %q", parStats.GVTMode, GVTBarrier)
	}
}

// TestAsyncGVTUnderFaults runs the async engine under every fault injector
// at once: forced rollbacks stress epoch coverage of anti-message mail,
// GVTDelay stresses the request-suppression path, mail bursts hold epochs
// open across token visits, shuffled delivery stresses the sender-side
// coverage argument, and throttled PEs drag the token ring at two speeds.
// Committed results must still be bit-identical to sequential.
func TestAsyncGVTUnderFaults(t *testing.T) {
	base := Config{NumLPs: 48, EndTime: 30, Seed: 5}
	want, seqStats := runStressSequential(t, base, 12)

	plans := []Faults{
		{Seed: 1, RollbackEvery: 3, RollbackDepth: 4},
		{Seed: 2, GVTDelay: 3, ShuffleMail: true},
		{Seed: 3, MailBurst: 2, ThrottlePEs: 1},
		{Seed: 4, RollbackEvery: 2, RollbackDepth: 6, GVTDelay: 2, ShuffleMail: true, MailBurst: 3, ThrottlePEs: 2},
		// The combination that exposed the forced-rollback/token-promise
		// interaction (use-after-free of a committed cancellation target):
		// spontaneous unwinds below a PE's folded contribution while held
		// bursts delay the covering mail. Fixed by clamping the injector
		// to the last contribution; see maybeForceRollback.
		{Seed: 11535655, RollbackEvery: 3, RollbackDepth: 4, ShuffleMail: true, MailBurst: 4},
	}
	for i, plan := range plans {
		plan := plan
		t.Run(fmt.Sprintf("plan%d", i), func(t *testing.T) {
			cfg := Config{NumLPs: 48, EndTime: 30, Seed: 5, NumPEs: 4, NumKPs: 8,
				BatchSize: 4, GVTInterval: 2, GVTMode: GVTAsync,
				CheckInvariants: true, Faults: &plan}
			got, parStats := runStressParallel(t, cfg, 12)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("LP %d state mismatch under %+v: %+v vs %+v", i, plan, got[i], want[i])
				}
			}
			if parStats.Committed != seqStats.Committed {
				t.Fatalf("committed events under %+v: %d vs sequential %d",
					plan, parStats.Committed, seqStats.Committed)
			}
		})
	}
}

// TestAdaptiveWindowDynamics drives the controller directly through a
// rollback storm and out the other side: slow-start to the cap on clean
// intervals, halving with threshold tracking under the storm, and the
// post-storm climb that goes additive at the threshold the storm set.
func TestAdaptiveWindowDynamics(t *testing.T) {
	cfg := &Config{EndTime: 256}
	oc := newOptimismController(cfg, 8)
	if oc.min != 1 || oc.max != 256 {
		t.Fatalf("bounds: min=%v max=%v, want 1, 256", oc.min, oc.max)
	}
	if oc.window != oc.min {
		t.Fatalf("window starts at %v, want the floor %v", oc.window, oc.min)
	}

	// Sub-threshold samples fold into the next interval without moving the
	// window.
	proc, rb := int64(optSampleMin-1), int64(0)
	oc.observe(proc, rb)
	if oc.window != oc.min || oc.procMark != 0 {
		t.Fatalf("short interval moved the window (%v) or the mark (%d)", oc.window, oc.procMark)
	}

	// Clean intervals: pure slow start doubles the floor to the cap in
	// log2(optFloorDiv) observations.
	steps := 0
	for oc.window < oc.max {
		proc += optSampleMin
		oc.observe(proc, rb)
		if steps++; steps > 64 {
			t.Fatalf("window stuck at %v after %d clean intervals", oc.window, steps)
		}
	}
	if steps != 8 {
		t.Fatalf("slow start took %d doublings from %v to %v, want 8", steps, oc.min, oc.max)
	}

	// Storm: every interval rollback-dominated (efficiency 0.5) halves the
	// window down to the floor, dragging the threshold with it.
	for i := 0; oc.window > oc.min; i++ {
		proc += 2 * optSampleMin
		rb += optSampleMin
		oc.observe(proc, rb)
		if i > 64 {
			t.Fatalf("storm never drove the window to the floor (at %v)", oc.window)
		}
	}
	if oc.thresh != oc.min {
		t.Fatalf("threshold %v did not follow the storm down to the floor %v", oc.thresh, oc.min)
	}

	// Recovery: the threshold the storm set makes the climb additive from
	// the first step — one floor unit per clean interval, no overshooting
	// jump back to the width that just stormed.
	proc += optSampleMin
	oc.observe(proc, rb)
	if oc.window != 2*oc.min {
		t.Fatalf("first post-storm step took window to %v, want additive %v", oc.window, 2*oc.min)
	}
	for i := 0; oc.window < oc.max; i++ {
		proc += optSampleMin
		oc.observe(proc, rb)
		if i > 2*optFloorDiv {
			t.Fatalf("additive climb never reached the cap (at %v)", oc.window)
		}
	}

	// Dead band: an interval between the thresholds leaves the window alone.
	proc += optSampleMin
	rb += optSampleMin * 18 / 100 // efficiency 0.82 ∈ [narrowAt, widenAt)
	before := oc.window
	oc.observe(proc, rb)
	if oc.window != before {
		t.Fatalf("dead-band interval moved the window %v -> %v", before, oc.window)
	}
}

// TestAdaptiveWindowPinnedOnOneCPU: with one processor the cap collapses to
// the floor and no observation stream may widen the window — speculation on
// a timesliced core only displaces critical-path work.
func TestAdaptiveWindowPinnedOnOneCPU(t *testing.T) {
	oc := newOptimismController(&Config{EndTime: 256}, 1)
	if oc.max != oc.min {
		t.Fatalf("cap %v not collapsed to floor %v", oc.max, oc.min)
	}
	proc := int64(0)
	for i := 0; i < 32; i++ {
		proc += optSampleMin
		oc.observe(proc, 0)
		if oc.window != oc.min {
			t.Fatalf("perfect efficiency widened a pinned window to %v", oc.window)
		}
	}
}

// denseModel reproduces the shape that defeats every time-based optimism
// window: a population of jobs bootstrapped at microsecond spacing, each
// hopping one microsecond ahead around a ring until its TTL expires. The
// whole run spans a few hundred microseconds while any window floor derived
// from the end time is thousands of microseconds wide, so the horizon clamp
// can never bind and only the count-based speculation quota stands between
// the async engine and executing the entire population ahead of GVT.
type denseState struct{ Processed int64 }

type denseModel struct{ numLPs int }

func (m denseModel) Forward(lp *LP, ev *Event) {
	lp.State.(*denseState).Processed++
	if ttl := ev.Data.(int); ttl > 0 {
		lp.Send(LPID((int(lp.ID)+1)%m.numLPs), 1e-6, ttl-1)
	}
}

func (m denseModel) Reverse(lp *LP, ev *Event) {
	lp.State.(*denseState).Processed--
}

func runDense(t *testing.T, cfg Config, ttl int) *Stats {
	t.Helper()
	cfg.NumLPs = 256
	cfg.EndTime = 1
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.ForEachLP(func(lp *LP) {
		lp.Handler = denseModel{numLPs: s.NumLPs()}
		lp.State = &denseState{}
	})
	for i := 0; i < s.NumLPs(); i++ {
		s.Schedule(LPID(i), Time(float64(i+1)*1e-6), ttl)
	}
	stats, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	s.ForEachLP(func(lp *LP) { total += lp.State.(*denseState).Processed })
	if want := int64(s.NumLPs() * (ttl + 1)); total != want {
		t.Fatalf("processed %d events, want %d", total, want)
	}
	return stats
}

// TestSpeculationQuotaBoundsDenseBootstrap: on the dense model the barrier
// engine with a generous interval executes most of the population ahead of
// commitment (nothing stops it before its round fires), while the async
// engine's quota stops execution after one interval's worth of events per
// completed round no matter how tightly the timestamps pack. One PE makes
// the bound exact: every completed round advances GVT to the local frontier
// and commits everything executed, so the live peak is one quota plus at
// most a batch of overshoot. (Multi-PE lag additionally depends on how the
// OS schedules the starved PE, so the crisp contract is per round, not
// global — see the quota comment in pe.go.)
func TestSpeculationQuotaBoundsDenseBootstrap(t *testing.T) {
	const ttl = 40
	barrier := runDense(t, Config{NumPEs: 1, NumKPs: 8, Seed: 1,
		BatchSize: 16, GVTInterval: 512, GVTMode: GVTBarrier}, ttl)

	async := runDense(t, Config{NumPEs: 1, NumKPs: 8, Seed: 1,
		BatchSize: 16, GVTInterval: 8, GVTMode: GVTAsync}, ttl)

	// Fossil collection commits strictly below GVT, and in this ring up to
	// ttl+1 jobs coincide on the frontier tick, so those stay live past a
	// round; add a batch of overshoot on top of the quota itself.
	quota := int64(16 * 8)
	if limit := quota + int64(ttl+1) + 16; async.LivePeak > limit {
		t.Fatalf("async live peak %d exceeds quota-derived bound %d", async.LivePeak, limit)
	}
	if async.LivePeak*10 > barrier.LivePeak {
		t.Fatalf("async live peak %d not well below unthrottled barrier peak %d",
			async.LivePeak, barrier.LivePeak)
	}
	if barrier.Committed != async.Committed {
		t.Fatalf("committed events: barrier %d vs async %d", barrier.Committed, async.Committed)
	}
}
