package core

// White-box tests that drive the kernel's rollback, cancellation and
// fossil-collection machinery directly, without relying on scheduling
// races to trigger the paths.

import (
	"testing"
)

// recState records execution effects so tests can observe forward and
// reverse processing precisely.
type recState struct {
	Log []Time // receive times of events currently "applied"
}

// recMsg saves nothing — the log is undone by truncation, which is valid
// because Reverse runs in exact LIFO order.
type recMsg struct {
	Fanout []fan // events to send on execution
}

type fan struct {
	dst   LPID
	delay Time
}

// recModel appends to the log on Forward, truncates on Reverse.
type recModel struct{}

func (recModel) Forward(lp *LP, ev *Event) {
	st := lp.State.(*recState)
	st.Log = append(st.Log, ev.RecvTime())
	if m, ok := ev.Data.(*recMsg); ok && m != nil {
		for _, f := range m.Fanout {
			lp.Send(f.dst, f.delay, &recMsg{})
		}
	}
}

func (recModel) Reverse(lp *LP, ev *Event) {
	st := lp.State.(*recState)
	st.Log = st.Log[:len(st.Log)-1]
}

// build2LPKernel builds a 1-PE kernel with two LPs on separate KPs so
// straggler handling is observable per KP.
func build2LPKernel(t *testing.T) *Simulator {
	t.Helper()
	s, err := New(Config{
		NumLPs:  2,
		NumPEs:  1,
		NumKPs:  2,
		EndTime: 1000,
		KPOfLP:  func(lp int) int { return lp },
		PEOfKP:  func(kp int) int { return 0 },
	})
	if err != nil {
		t.Fatal(err)
	}
	s.ForEachLP(func(lp *LP) {
		lp.Handler = recModel{}
		lp.State = &recState{}
	})
	return s
}

// exec pops and executes exactly one event on the PE.
func exec(t *testing.T, pe *PE) *Event {
	t.Helper()
	ev, ok := pe.nextLive()
	if !ok {
		t.Fatal("no live event to execute")
	}
	pe.pending.Pop()
	pe.execute(ev)
	return ev
}

// TestStragglerRollsBackOnlyItsKP: a straggler for LP 0 must reverse LP
// 0's later events but leave LP 1 (a different KP) untouched.
func TestStragglerRollsBackOnlyItsKP(t *testing.T) {
	s := build2LPKernel(t)
	pe := s.pes[0]
	// LP0 at t=10, 20; LP1 at t=15.
	pe.insert(&Event{recvTime: 10, dst: 0, src: NoLP, seq: 100, Data: &recMsg{}})
	pe.insert(&Event{recvTime: 20, dst: 0, src: NoLP, seq: 101, Data: &recMsg{}})
	pe.insert(&Event{recvTime: 15, dst: 1, src: NoLP, seq: 102, Data: &recMsg{}})
	exec(t, pe) // t=10 LP0
	exec(t, pe) // t=15 LP1
	exec(t, pe) // t=20 LP0

	st0 := s.lps[0].State.(*recState)
	st1 := s.lps[1].State.(*recState)
	if len(st0.Log) != 2 || len(st1.Log) != 1 {
		t.Fatalf("setup wrong: %v %v", st0.Log, st1.Log)
	}

	// Straggler for LP0 at t=12: the t=20 event must be reversed, t=10
	// kept, and LP1 untouched.
	pe.insert(&Event{recvTime: 12, dst: 0, src: NoLP, seq: 103, Data: &recMsg{}})
	if got := len(st0.Log); got != 1 || st0.Log[0] != 10 {
		t.Fatalf("LP0 log after straggler: %v", st0.Log)
	}
	if got := len(st1.Log); got != 1 {
		t.Fatalf("LP1 was rolled back: %v", st1.Log)
	}
	if pe.rolledBackEvents != 1 || pe.primaryRollbacks != 1 {
		t.Fatalf("rollback counters: events=%d primary=%d", pe.rolledBackEvents, pe.primaryRollbacks)
	}
	// Re-execution: straggler (12) then the reversed event (20).
	e1 := exec(t, pe)
	e2 := exec(t, pe)
	if e1.recvTime != 12 || e2.recvTime != 20 {
		t.Fatalf("re-execution order: %v then %v", e1.recvTime, e2.recvTime)
	}
	if len(st0.Log) != 3 {
		t.Fatalf("final LP0 log: %v", st0.Log)
	}
}

// TestCascadingCancellation: rolling back an event that sent to another
// KP must reverse the downstream processed event too (secondary rollback).
func TestCascadingCancellation(t *testing.T) {
	s := build2LPKernel(t)
	pe := s.pes[0]
	// LP0's event at t=10 sends to LP1 at t=13.
	pe.insert(&Event{recvTime: 10, dst: 0, src: NoLP, seq: 100,
		Data: &recMsg{Fanout: []fan{{dst: 1, delay: 3}}}})
	exec(t, pe) // t=10 LP0, queues 13@LP1
	exec(t, pe) // t=13 LP1

	st1 := s.lps[1].State.(*recState)
	if len(st1.Log) != 1 {
		t.Fatalf("downstream not executed: %v", st1.Log)
	}

	// Straggler at t=5 for LP0 reverses t=10, which must cancel the
	// downstream event — already processed — triggering a secondary
	// rollback on LP1's KP.
	pe.insert(&Event{recvTime: 5, dst: 0, src: NoLP, seq: 101, Data: &recMsg{}})
	if len(st1.Log) != 0 {
		t.Fatalf("downstream event not reversed: %v", st1.Log)
	}
	if pe.secondaryRollbacks != 1 {
		t.Fatalf("secondary rollbacks = %d", pe.secondaryRollbacks)
	}
	// The cancelled event must not re-execute: drain everything.
	for {
		ev, ok := pe.nextLive()
		if !ok {
			break
		}
		pe.pending.Pop()
		pe.execute(ev)
	}
	st0 := s.lps[0].State.(*recState)
	// LP0: t=5 and t=10 re-executed; LP1: only the re-sent 13.
	if len(st0.Log) != 2 {
		t.Fatalf("LP0 log: %v", st0.Log)
	}
	if len(st1.Log) != 1 || st1.Log[0] != 13 {
		t.Fatalf("LP1 log after re-execution: %v", st1.Log)
	}
}

// TestCancelPendingIsLazy: cancelling an unprocessed event marks it and
// nextLive skips it.
func TestCancelPendingIsLazy(t *testing.T) {
	s := build2LPKernel(t)
	pe := s.pes[0]
	pe.insert(&Event{recvTime: 10, dst: 0, src: NoLP, seq: 100,
		Data: &recMsg{Fanout: []fan{{dst: 1, delay: 5}}}})
	src := exec(t, pe) // queues 15@LP1

	// Roll back the sender before the downstream event runs.
	pe.insert(&Event{recvTime: 2, dst: 0, src: NoLP, seq: 101, Data: &recMsg{}})
	if pe.canceledPending != 1 {
		t.Fatalf("canceledPending = %d", pe.canceledPending)
	}
	_ = src
	// Drain: LP1 must see exactly one event (the re-sent one at 15).
	for {
		ev, ok := pe.nextLive()
		if !ok {
			break
		}
		pe.pending.Pop()
		pe.execute(ev)
	}
	st1 := s.lps[1].State.(*recState)
	if len(st1.Log) != 1 || st1.Log[0] != 15 {
		t.Fatalf("LP1 log: %v", st1.Log)
	}
}

// TestRNGRewindOnRollback: a rolled-back event's random draws must be
// returned to the stream so re-execution sees the same values.
func TestRNGRewindOnRollback(t *testing.T) {
	s, err := New(Config{NumLPs: 1, NumPEs: 1, EndTime: 100})
	if err != nil {
		t.Fatal(err)
	}
	var drawn []float64
	s.LP(0).Handler = funcHandler{
		forward: func(lp *LP, ev *Event) { drawn = append(drawn, lp.Rand()) },
		reverse: func(lp *LP, ev *Event) { drawn = drawn[:len(drawn)-1] },
	}
	pe := s.pes[0]
	pe.insert(&Event{recvTime: 10, dst: 0, src: NoLP, seq: 100})
	exec(t, pe)
	first := drawn[0]
	// Straggler reverses it; the stream must be rewound.
	pe.insert(&Event{recvTime: 5, dst: 0, src: NoLP, seq: 101})
	exec(t, pe) // t=5 draws what WOULD have been first had order been right
	exec(t, pe) // t=10 re-executes
	if len(drawn) != 2 {
		t.Fatalf("drawn: %v", drawn)
	}
	if drawn[0] != first {
		t.Fatalf("stream not rewound: first draw %v then %v", first, drawn[0])
	}
	if drawn[1] == drawn[0] {
		t.Fatal("re-execution repeated the same draw for a different event")
	}
}

// funcHandler adapts closures to the Handler interface for tests.
type funcHandler struct {
	forward func(*LP, *Event)
	reverse func(*LP, *Event)
}

func (h funcHandler) Forward(lp *LP, ev *Event) { h.forward(lp, ev) }
func (h funcHandler) Reverse(lp *LP, ev *Event) { h.reverse(lp, ev) }

// TestSendSeqRestoredOnRollback: the per-LP send sequence must roll back
// with the event, keeping event identities deterministic on replay.
func TestSendSeqRestoredOnRollback(t *testing.T) {
	s := build2LPKernel(t)
	pe := s.pes[0]
	pe.insert(&Event{recvTime: 10, dst: 0, src: NoLP, seq: 100,
		Data: &recMsg{Fanout: []fan{{dst: 1, delay: 1}, {dst: 1, delay: 2}}}})
	exec(t, pe)
	if got := s.lps[0].sendSeq; got != 2 {
		t.Fatalf("sendSeq after 2 sends = %d", got)
	}
	pe.insert(&Event{recvTime: 5, dst: 0, src: NoLP, seq: 101, Data: &recMsg{}})
	if got := s.lps[0].sendSeq; got != 0 {
		t.Fatalf("sendSeq after rollback = %d", got)
	}
}

// TestFossilCollectionCommitsBelowGVT: fossil collection must commit
// strictly below GVT, keep the boundary event, and compact the list.
func TestFossilCollectionCommitsBelowGVT(t *testing.T) {
	s := build2LPKernel(t)
	pe := s.pes[0]
	for i := 0; i < 100; i++ {
		pe.insert(&Event{recvTime: Time(i + 1), dst: 0, src: NoLP, seq: uint64(100 + i), Data: &recMsg{}})
	}
	for i := 0; i < 100; i++ {
		exec(t, pe)
	}
	kp := s.lps[0].kp
	if kp.live() != 100 {
		t.Fatalf("live = %d", kp.live())
	}
	pe.fossilCollect(51) // events at t=1..50 commit; t=51 stays
	if kp.committed != 50 {
		t.Fatalf("committed = %d", kp.committed)
	}
	if kp.live() != 50 {
		t.Fatalf("live after fossil = %d", kp.live())
	}
	if kp.tail().recvTime != 100 {
		t.Fatalf("tail = %v", kp.tail().recvTime)
	}
	// The straggler guard still works for the uncommitted region.
	st0 := s.lps[0].State.(*recState)
	before := len(st0.Log)
	pe.insert(&Event{recvTime: 60.5, dst: 0, src: NoLP, seq: 500, Data: &recMsg{}})
	if rolled := before - len(st0.Log); rolled != 40 {
		t.Fatalf("straggler at 60.5 rolled back %d events, want 40", rolled)
	}
}

// TestFossilCompaction: repeated fossil collection must not let the
// processed slice grow without bound.
func TestFossilCompaction(t *testing.T) {
	s := build2LPKernel(t)
	pe := s.pes[0]
	kp := s.lps[0].kp
	tick := Time(1)
	seq := uint64(1)
	for round := 0; round < 50; round++ {
		for i := 0; i < 100; i++ {
			pe.insert(&Event{recvTime: tick, dst: 0, src: NoLP, seq: seq, Data: &recMsg{}})
			tick++
			seq++
			exec(t, pe)
		}
		pe.fossilCollect(tick)
	}
	if len(kp.processed) > 256 {
		t.Fatalf("processed slice grew to %d despite fossil collection", len(kp.processed))
	}
	if kp.committed != 5000 {
		t.Fatalf("committed = %d", kp.committed)
	}
}

// TestEventOrderingTotal: before() must be a strict total order on
// distinct identities and agree with beforeKey/keyBefore.
func TestEventOrderingTotal(t *testing.T) {
	evs := []*Event{
		{recvTime: 1, dst: 0, src: 0, seq: 0},
		{recvTime: 1, dst: 0, src: 0, seq: 1},
		{recvTime: 1, dst: 0, src: 1, seq: 0},
		{recvTime: 1, dst: 1, src: 0, seq: 0},
		{recvTime: 2, dst: 0, src: NoLP, seq: 7}, // bootstrap source sorts first
		{recvTime: 2, dst: 0, src: 0, seq: 0},
	}
	for i, a := range evs {
		if a.before(a) {
			t.Fatalf("event %d before itself", i)
		}
		for j, b := range evs {
			if i == j {
				continue
			}
			ab, ba := a.before(b), b.before(a)
			if ab == ba {
				t.Fatalf("order not strict/total for %d,%d: %v %v", i, j, ab, ba)
			}
			if ab != a.beforeKey(b.key()) || ab != !b.key().beforeEvent(a) && ab != a.before(b) {
				t.Fatalf("key comparisons disagree for %d,%d", i, j)
			}
			if a.key().beforeEvent(b) != ab {
				t.Fatalf("keyBefore disagrees for %d,%d", i, j)
			}
		}
	}
	// Transitivity over the sorted chain.
	for i := 0; i < len(evs); i++ {
		for j := i + 1; j < len(evs); j++ {
			if !evs[i].before(evs[j]) {
				t.Fatalf("list not ascending at %d,%d", i, j)
			}
		}
	}
}

// TestBitfield covers the tw_bf analogue.
func TestBitfield(t *testing.T) {
	var b Bitfield
	for i := uint(0); i < 32; i++ {
		if b.Test(i) {
			t.Fatalf("fresh bit %d set", i)
		}
		b.Set(i)
		if !b.Test(i) {
			t.Fatalf("bit %d not set", i)
		}
	}
	b.Clear(7)
	if b.Test(7) || !b.Test(6) || !b.Test(8) {
		t.Fatal("Clear touched neighbours")
	}
}

// TestBarrier: n goroutines must pass together, generations must reuse,
// and poison must release waiters with an error.
func TestBarrier(t *testing.T) {
	const n = 4
	b := newBarrier(n)
	done := make(chan int, n)
	for i := 0; i < n; i++ {
		go func(id int) {
			for round := 0; round < 100; round++ {
				if err := b.await(); err != nil {
					t.Error(err)
					break
				}
			}
			done <- id
		}(i)
	}
	for i := 0; i < n; i++ {
		<-done
	}

	// Poison: three waiters plus a poisoner.
	b2 := newBarrier(n)
	errs := make(chan error, n-1)
	for i := 0; i < n-1; i++ {
		go func() { errs <- b2.await() }()
	}
	b2.poison()
	for i := 0; i < n-1; i++ {
		if err := <-errs; err == nil {
			t.Fatal("poisoned barrier returned nil")
		}
	}
	if err := b2.await(); err == nil {
		t.Fatal("await after poison returned nil")
	}
}

// TestLPGuards: Now/Rand/Send outside handlers must panic.
func TestLPGuards(t *testing.T) {
	s, err := New(Config{NumLPs: 1, NumPEs: 1, EndTime: 1})
	if err != nil {
		t.Fatal(err)
	}
	lp := s.LP(0)
	mustPanic(t, "Now outside handler", func() { lp.Now() })
	mustPanic(t, "Rand outside handler", func() { lp.Rand() })
	mustPanic(t, "Send outside handler", func() { lp.Send(0, 1, nil) })
}

// TestEventAccessors covers the public read-only surface.
func TestEventAccessors(t *testing.T) {
	ev := &Event{recvTime: 3.5, dst: 2, src: 1, seq: 9}
	if ev.RecvTime() != 3.5 || ev.Dst() != 2 || ev.Src() != 1 {
		t.Fatalf("accessors wrong: %v", ev)
	}
	if ev.String() == "" {
		t.Fatal("empty String()")
	}
}

// heavyState carries a KiB of model state so snapshot retention is visible
// in bytes, not just counts.
type heavyState struct {
	data []byte
}

// heavySnap is a SnapshotModel whose per-event snapshots are full copies of
// the KiB state — the copy-state-saving worst case fossil collection must
// actually reclaim.
type heavySnap struct{}

func (heavySnap) Forward(lp *LP, ev *Event) {
	st := lp.State.(*heavyState)
	st.data[0]++
}

func (heavySnap) Snapshot(lp *LP) any {
	st := lp.State.(*heavyState)
	cp := make([]byte, len(st.data))
	copy(cp, st.data)
	return cp
}

func (heavySnap) Restore(lp *LP, snap any) {
	st := lp.State.(*heavyState)
	copy(st.data, snap.([]byte))
}

// snapBytes sums the bytes a stateSaver still references: live counts only
// snaps the kernel may yet restore; retained also counts committed
// snapshots whose slots have not been compacted away.
func snapBytes(s *stateSaver) (live, retained int) {
	for i, snap := range s.snaps {
		if snap == nil {
			continue
		}
		n := len(snap.([]byte))
		retained += n
		if i >= s.base {
			live += n
		}
	}
	return live, retained
}

// TestFossilCollectionFreesStateSaves: fossil collection must release
// state saves along with events — the committed prefix of the snapshot
// stack is dropped and compacted, the live snapshot count tracks kp.live()
// exactly, and the pressure valve's gauge follows both down.
func TestFossilCollectionFreesStateSaves(t *testing.T) {
	s := build2LPKernel(t)
	pe := s.pes[0]
	saver := StateSaving(heavySnap{}).(*stateSaver)
	s.lps[0].Handler = saver
	s.lps[0].State = &heavyState{data: make([]byte, 1024)}

	const n = 200
	for i := 0; i < n; i++ {
		pe.insert(&Event{recvTime: Time(i + 1), dst: 0, src: NoLP, seq: uint64(100 + i)})
		exec(t, pe)
	}
	kp := s.lps[0].kp
	if kp.live() != n || pe.liveEvents != n {
		t.Fatalf("live=%d gauge=%d, want %d", kp.live(), pe.liveEvents, n)
	}
	liveB, retainedB := snapBytes(saver)
	if liveB != n*1024 || retainedB != n*1024 {
		t.Fatalf("pre-fossil snapshot bytes live=%d retained=%d, want %d", liveB, retainedB, n*1024)
	}

	pe.fossilCollect(151) // t=1..150 commit; 50 live remain
	if kp.committed != 150 || kp.live() != 50 {
		t.Fatalf("committed=%d live=%d", kp.committed, kp.live())
	}
	if pe.liveEvents != 50 {
		t.Fatalf("gauge after fossil = %d, want 50", pe.liveEvents)
	}
	if err := pe.checkInvariants(0); err != nil {
		t.Fatal(err)
	}
	liveB, retainedB = snapBytes(saver)
	if liveB != 50*1024 {
		t.Fatalf("live snapshot bytes after fossil = %d, want %d", liveB, 50*1024)
	}
	// Commit-time compaction (base > 64 and > half the stack) must have
	// dropped the dead prefix, so retained bytes equal live bytes: no
	// committed KiB snapshot outlives its event.
	if retainedB != liveB {
		t.Fatalf("fossil collection leaked committed snapshots: retained=%d live=%d", retainedB, liveB)
	}

	// A straggler below the live region restores from the surviving
	// snapshots, proving the compaction kept the right ones.
	st := s.lps[0].State.(*heavyState)
	before := st.data[0]
	pe.insert(&Event{recvTime: 160.5, dst: 0, src: NoLP, seq: 999})
	if rolled := int(before) - int(st.data[0]); rolled != 40 {
		t.Fatalf("straggler rolled back %d applications, want 40", rolled)
	}
	if pe.liveEvents != 10 {
		t.Fatalf("gauge after rollback = %d, want 10", pe.liveEvents)
	}
}
