package core

import (
	"fmt"
	"testing"
)

// stressState is the per-LP state of the kernel stress model. Hash is an
// order-sensitive digest of every event the LP processed, so any deviation
// of the parallel committed order from the sequential order changes it.
type stressState struct {
	Counter int64
	Hash    uint64
}

// stressMsg is the stress model's payload; PrevHash is the reverse-
// computation save slot.
type stressMsg struct {
	TTL      int
	PrevHash uint64
}

// stressModel bounces messages between uniformly random LPs with random
// exponential delays until each message's TTL expires. The all-to-all
// traffic and tiny delays make stragglers (and therefore rollbacks) very
// likely under parallel execution.
type stressModel struct {
	numLPs int64
}

func (m stressModel) Forward(lp *LP, ev *Event) {
	st := lp.State.(*stressState)
	msg := ev.Data.(*stressMsg)
	msg.PrevHash = st.Hash
	st.Hash = st.Hash*1099511628211 ^ uint64(ev.Src()+1)<<17 ^ uint64(ev.RecvTime()*1e6)
	st.Counter++
	if msg.TTL > 0 {
		dst := LPID(lp.RandInt(0, m.numLPs-1))
		delay := Time(lp.RandExp(1.0)) + 0.001
		lp.Send(dst, delay, &stressMsg{TTL: msg.TTL - 1})
	}
}

func (m stressModel) Reverse(lp *LP, ev *Event) {
	st := lp.State.(*stressState)
	msg := ev.Data.(*stressMsg)
	st.Hash = msg.PrevHash
	st.Counter--
}

// runStressSequential runs the stress model on the Sequential engine and
// returns the per-LP states plus kernel stats.
func runStressSequential(t *testing.T, cfg Config, ttl int) ([]stressState, *Stats) {
	t.Helper()
	q, err := NewSequential(cfg)
	if err != nil {
		t.Fatalf("NewSequential: %v", err)
	}
	model := stressModel{numLPs: int64(cfg.NumLPs)}
	q.ForEachLP(func(lp *LP) {
		lp.Handler = model
		lp.State = &stressState{}
	})
	for i := 0; i < cfg.NumLPs; i++ {
		q.Schedule(LPID(i), Time(0.001*float64(i+1)), &stressMsg{TTL: ttl})
	}
	stats, err := q.Run()
	if err != nil {
		t.Fatalf("sequential Run: %v", err)
	}
	return snapshotStress(q.NumLPs(), q.LP), stats
}

// runStressParallel runs the stress model on the parallel kernel.
func runStressParallel(t *testing.T, cfg Config, ttl int) ([]stressState, *Stats) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	model := stressModel{numLPs: int64(cfg.NumLPs)}
	s.ForEachLP(func(lp *LP) {
		lp.Handler = model
		lp.State = &stressState{}
	})
	for i := 0; i < cfg.NumLPs; i++ {
		s.Schedule(LPID(i), Time(0.001*float64(i+1)), &stressMsg{TTL: ttl})
	}
	stats, err := s.Run()
	if err != nil {
		t.Fatalf("parallel Run: %v", err)
	}
	return snapshotStress(s.NumLPs(), s.LP), stats
}

func snapshotStress(n int, lp func(LPID) *LP) []stressState {
	out := make([]stressState, n)
	for i := 0; i < n; i++ {
		out[i] = *lp(LPID(i)).State.(*stressState)
	}
	return out
}

// TestParallelMatchesSequential is the kernel's core correctness property
// (the report's Attachment 3): for any PE/KP/queue configuration, the
// parallel kernel commits exactly the event history the sequential engine
// produces.
func TestParallelMatchesSequential(t *testing.T) {
	base := Config{NumLPs: 64, EndTime: 50, Seed: 7}
	want, seqStats := runStressSequential(t, base, 20)

	configs := []Config{
		{NumLPs: 64, EndTime: 50, Seed: 7, NumPEs: 1, NumKPs: 4},
		{NumLPs: 64, EndTime: 50, Seed: 7, NumPEs: 2, NumKPs: 8},
		{NumLPs: 64, EndTime: 50, Seed: 7, NumPEs: 4, NumKPs: 16, BatchSize: 4, GVTInterval: 2},
		{NumLPs: 64, EndTime: 50, Seed: 7, NumPEs: 4, NumKPs: 4, BatchSize: 2, GVTInterval: 1},
		{NumLPs: 64, EndTime: 50, Seed: 7, NumPEs: 8, NumKPs: 64, Queue: "splay"},
		{NumLPs: 64, EndTime: 50, Seed: 7, NumPEs: 3, NumKPs: 7}, // uneven mapping
	}
	for _, cfg := range configs {
		cfg := cfg
		name := fmt.Sprintf("pe%d_kp%d_q%s_b%d", cfg.NumPEs, cfg.NumKPs, cfg.Queue, cfg.BatchSize)
		t.Run(name, func(t *testing.T) {
			got, parStats := runStressParallel(t, cfg, 20)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("LP %d state mismatch: parallel %+v vs sequential %+v", i, got[i], want[i])
				}
			}
			if parStats.Committed != seqStats.Committed {
				t.Fatalf("committed events: parallel %d vs sequential %d",
					parStats.Committed, seqStats.Committed)
			}
		})
	}
}

// TestParallelDeterministicAcrossRuns runs the same parallel configuration
// twice and demands bit-identical model state: the randomised-delay +
// total-event-order design makes optimistic execution repeatable (§3.2.2).
func TestParallelDeterministicAcrossRuns(t *testing.T) {
	cfg := Config{NumLPs: 48, EndTime: 40, Seed: 3, NumPEs: 4, NumKPs: 8, BatchSize: 4, GVTInterval: 2}
	a, _ := runStressParallel(t, cfg, 15)
	b, _ := runStressParallel(t, cfg, 15)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run-to-run mismatch at LP %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// TestRollbacksActuallyHappen keeps the stress configuration honest: with
// several PEs, tiny batches and all-to-all traffic, the parallel runs that
// the equality test relies on must actually exercise rollback paths.
func TestRollbacksActuallyHappen(t *testing.T) {
	if testing.Short() {
		t.Skip("needs a multi-PE run")
	}
	cfg := Config{NumLPs: 128, EndTime: 80, Seed: 11, NumPEs: 4, NumKPs: 8, BatchSize: 4, GVTInterval: 2}
	_, stats := runStressParallel(t, cfg, 40)
	if stats.RolledBackEvents == 0 {
		t.Log("warning: no rollbacks occurred; equality test may not cover rollback paths on this host")
	}
	if stats.Processed < stats.Committed {
		t.Fatalf("processed %d < committed %d", stats.Processed, stats.Committed)
	}
	if stats.Processed != stats.Committed+stats.RolledBackEvents {
		t.Fatalf("processed %d != committed %d + rolled back %d",
			stats.Processed, stats.Committed, stats.RolledBackEvents)
	}
}

// TestSeedChangesResults guards against the RNG being ignored: different
// seeds must lead to different histories.
func TestSeedChangesResults(t *testing.T) {
	cfgA := Config{NumLPs: 32, EndTime: 30, Seed: 1}
	cfgB := Config{NumLPs: 32, EndTime: 30, Seed: 2}
	a, _ := runStressSequential(t, cfgA, 10)
	b, _ := runStressSequential(t, cfgB, 10)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical histories")
	}
}

// TestConfigValidation exercises the error paths of New/NewSequential.
func TestConfigValidation(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"zero LPs", Config{NumLPs: 0, EndTime: 10}},
		{"negative LPs", Config{NumLPs: -4, EndTime: 10}},
		{"zero end time", Config{NumLPs: 4}},
		{"negative end time", Config{NumLPs: 4, EndTime: -1}},
		{"bad queue", Config{NumLPs: 4, EndTime: 10, Queue: "fibheap"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := New(tc.cfg); err == nil {
				t.Error("New accepted invalid config")
			}
			if _, err := NewSequential(tc.cfg); err == nil {
				t.Error("NewSequential accepted invalid config")
			}
		})
	}
}

// TestConfigDefaults checks the derived placement parameters.
func TestConfigDefaults(t *testing.T) {
	cfg := Config{NumLPs: 100, EndTime: 1}
	if err := cfg.setDefaults(); err != nil {
		t.Fatal(err)
	}
	if cfg.NumPEs <= 0 || cfg.NumPEs > 100 {
		t.Errorf("NumPEs = %d", cfg.NumPEs)
	}
	if cfg.NumKPs < cfg.NumPEs || cfg.NumKPs > 100 {
		t.Errorf("NumKPs = %d with NumPEs = %d", cfg.NumKPs, cfg.NumPEs)
	}
	if cfg.BatchSize <= 0 || cfg.GVTInterval <= 0 {
		t.Errorf("batch %d interval %d", cfg.BatchSize, cfg.GVTInterval)
	}
	// More PEs than LPs must clamp.
	cfg2 := Config{NumLPs: 3, EndTime: 1, NumPEs: 64, NumKPs: 128}
	if err := cfg2.setDefaults(); err != nil {
		t.Fatal(err)
	}
	if cfg2.NumPEs > 3 || cfg2.NumKPs > 3 {
		t.Errorf("clamping failed: PEs=%d KPs=%d", cfg2.NumPEs, cfg2.NumKPs)
	}
}

// TestRunRequiresHandlers verifies the missing-handler diagnostic.
func TestRunRequiresHandlers(t *testing.T) {
	s, err := New(Config{NumLPs: 2, EndTime: 1, NumPEs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err == nil {
		t.Fatal("Run succeeded without handlers")
	}
}

// TestRunTwiceFails verifies single-use semantics.
func TestRunTwiceFails(t *testing.T) {
	cfg := Config{NumLPs: 2, EndTime: 1, NumPEs: 1}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.ForEachLP(func(lp *LP) { lp.Handler = stressModel{numLPs: 2}; lp.State = &stressState{} })
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err == nil {
		t.Fatal("second Run succeeded")
	}
}

// TestEmptySimulationTerminates: no events at all must still finish.
func TestEmptySimulationTerminates(t *testing.T) {
	for _, pes := range []int{1, 2, 4} {
		s, err := New(Config{NumLPs: 8, EndTime: 100, NumPEs: pes})
		if err != nil {
			t.Fatal(err)
		}
		s.ForEachLP(func(lp *LP) { lp.Handler = stressModel{numLPs: 8}; lp.State = &stressState{} })
		stats, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		if stats.Committed != 0 {
			t.Errorf("pes=%d: committed %d events in an empty simulation", pes, stats.Committed)
		}
	}
}

// TestEventsBeyondEndTimeNeverExecute checks the horizon semantics.
func TestEventsBeyondEndTimeNeverExecute(t *testing.T) {
	s, err := New(Config{NumLPs: 4, EndTime: 10, NumPEs: 2})
	if err != nil {
		t.Fatal(err)
	}
	s.ForEachLP(func(lp *LP) { lp.Handler = stressModel{numLPs: 4}; lp.State = &stressState{} })
	s.Schedule(0, 5, &stressMsg{TTL: 0})
	s.Schedule(1, 10, &stressMsg{TTL: 0}) // exactly at horizon: excluded
	s.Schedule(2, 15, &stressMsg{TTL: 0})
	stats, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Committed != 1 {
		t.Fatalf("committed %d, want 1", stats.Committed)
	}
	if c := s.LP(1).State.(*stressState).Counter; c != 0 {
		t.Errorf("event at the horizon executed (counter=%d)", c)
	}
}

// panicModel triggers a panic on the first event; the kernel must convert
// it into an error from Run on every PE, not a deadlock.
type panicModel struct{}

func (panicModel) Forward(lp *LP, ev *Event) { panic("boom") }
func (panicModel) Reverse(lp *LP, ev *Event) {}

func TestHandlerPanicBecomesError(t *testing.T) {
	for _, pes := range []int{1, 4} {
		s, err := New(Config{NumLPs: 8, EndTime: 10, NumPEs: pes})
		if err != nil {
			t.Fatal(err)
		}
		s.ForEachLP(func(lp *LP) { lp.Handler = panicModel{} })
		s.Schedule(3, 1, nil)
		if _, err := s.Run(); err == nil {
			t.Fatalf("pes=%d: Run did not surface the handler panic", pes)
		}
	}
}

// TestScheduleValidation covers the bootstrap-event guard rails.
func TestScheduleValidation(t *testing.T) {
	s, err := New(Config{NumLPs: 2, EndTime: 1, NumPEs: 1})
	if err != nil {
		t.Fatal(err)
	}
	mustPanic(t, "negative time", func() { s.Schedule(0, -1, nil) })
	mustPanic(t, "unknown LP", func() { s.Schedule(99, 0, nil) })
}

func mustPanic(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	fn()
}

// zeroDelayModel checks the Send guard rails at runtime.
type zeroDelayModel struct{}

func (zeroDelayModel) Forward(lp *LP, ev *Event) { lp.SendSelf(0, nil) }
func (zeroDelayModel) Reverse(lp *LP, ev *Event) {}

func TestZeroDelaySendRejected(t *testing.T) {
	s, err := New(Config{NumLPs: 1, EndTime: 10, NumPEs: 1})
	if err != nil {
		t.Fatal(err)
	}
	s.ForEachLP(func(lp *LP) { lp.Handler = zeroDelayModel{} })
	s.Schedule(0, 1, nil)
	if _, err := s.Run(); err == nil {
		t.Fatal("zero-delay send was accepted")
	}
}

// commitRecorder verifies Commit runs exactly once per committed event, in
// per-LP event order, after the event can no longer roll back.
type commitRecorder struct {
	numLPs int64
}

type commitState struct {
	commits []Time
}

func (m commitRecorder) Forward(lp *LP, ev *Event) {
	msg := ev.Data.(*stressMsg)
	if msg.TTL > 0 {
		dst := LPID(lp.RandInt(0, m.numLPs-1))
		lp.Send(dst, Time(lp.RandExp(1))+0.001, &stressMsg{TTL: msg.TTL - 1})
	}
}
func (m commitRecorder) Reverse(lp *LP, ev *Event) {}
func (m commitRecorder) Commit(lp *LP, ev *Event) {
	st := lp.State.(*commitState)
	st.commits = append(st.commits, ev.RecvTime())
}

func TestCommitOrderPerLP(t *testing.T) {
	for _, pes := range []int{1, 4} {
		cfg := Config{NumLPs: 16, EndTime: 30, Seed: 5, NumPEs: pes, NumKPs: 8, BatchSize: 4, GVTInterval: 2}
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		model := commitRecorder{numLPs: 16}
		s.ForEachLP(func(lp *LP) {
			lp.Handler = model
			lp.State = &commitState{}
		})
		for i := 0; i < 16; i++ {
			s.Schedule(LPID(i), Time(0.01*float64(i+1)), &stressMsg{TTL: 10})
		}
		stats, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		total := 0
		s.ForEachLP(func(lp *LP) {
			st := lp.State.(*commitState)
			for i := 1; i < len(st.commits); i++ {
				if st.commits[i] < st.commits[i-1] {
					t.Fatalf("pes=%d LP %d: commits out of order: %v", pes, lp.ID, st.commits)
				}
			}
			total += len(st.commits)
		})
		if int64(total) != stats.Committed {
			t.Fatalf("pes=%d: Commit callbacks %d != committed %d", pes, total, stats.Committed)
		}
	}
}

// TestStatsString smoke-tests the human-readable rendering.
func TestStatsString(t *testing.T) {
	_, stats := runStressSequential(t, Config{NumLPs: 8, EndTime: 10, Seed: 1}, 3)
	out := stats.String()
	if len(out) == 0 {
		t.Fatal("empty stats rendering")
	}
}
