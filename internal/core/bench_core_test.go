package core

// Kernel micro-benchmarks: raw event-loop throughput, rollback cost, and
// remote-message overhead, independent of any model semantics.

import (
	"fmt"
	"testing"
)

// nopModel is the cheapest possible self-driving model: one forwarded
// event per event, no state, no randomness.
type nopModel struct{}

func (nopModel) Forward(lp *LP, ev *Event) { lp.SendSelf(1.0, nil) }
func (nopModel) Reverse(lp *LP, ev *Event) {}

// BenchmarkSequentialEventLoop measures pure sequential scheduling cost
// per event.
func BenchmarkSequentialEventLoop(b *testing.B) {
	q, err := NewSequential(Config{NumLPs: 1, EndTime: Time(b.N) + 1})
	if err != nil {
		b.Fatal(err)
	}
	q.LP(0).Handler = nopModel{}
	q.Schedule(0, 0.5, nil)
	b.ResetTimer()
	if _, err := q.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkParallelSelfLoop measures the 1-PE Time Warp scheduling cost
// per event (queue + processed-list + GVT machinery, no rollbacks).
func BenchmarkParallelSelfLoop(b *testing.B) {
	s, err := New(Config{NumLPs: 1, NumPEs: 1, EndTime: Time(b.N) + 1})
	if err != nil {
		b.Fatal(err)
	}
	s.LP(0).Handler = nopModel{}
	s.Schedule(0, 0.5, nil)
	b.ResetTimer()
	if _, err := s.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkRollbackReplay measures reverse-computation cost: each
// iteration executes a window of events, rolls it back with a straggler,
// and re-executes.
func BenchmarkRollbackReplay(b *testing.B) {
	for _, window := range []int{8, 64} {
		b.Run(fmt.Sprintf("window%d", window), func(b *testing.B) {
			s, err := New(Config{NumLPs: 1, NumPEs: 1, EndTime: 1e12,
				KPOfLP: func(int) int { return 0 }, PEOfKP: func(int) int { return 0 }})
			if err != nil {
				b.Fatal(err)
			}
			s.LP(0).Handler = funcHandler{
				forward: func(lp *LP, ev *Event) {},
				reverse: func(lp *LP, ev *Event) {},
			}
			pe := s.pes[0]
			now := Time(1)
			seq := uint64(1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				base := now
				for w := 0; w < window; w++ {
					pe.insert(&Event{recvTime: now, dst: 0, src: NoLP, seq: seq})
					seq++
					now++
					ev, _ := pe.nextLive()
					pe.pending.Pop()
					pe.execute(ev)
				}
				// Straggler just before the window: rolls everything back.
				pe.insert(&Event{recvTime: base - 0.5, dst: 0, src: NoLP, seq: seq})
				seq++
				// Re-execute the straggler and the reversed window.
				for {
					ev, ok := pe.nextLive()
					if !ok {
						break
					}
					pe.pending.Pop()
					pe.execute(ev)
				}
				pe.fossilCollect(now)
			}
			b.StopTimer()
			if pe.rolledBackEvents != int64(b.N)*int64(window) {
				b.Fatalf("rolled back %d, want %d", pe.rolledBackEvents, int64(b.N)*int64(window))
			}
		})
	}
}

// BenchmarkRemoteMessage measures the mailbox round-trip cost with two
// PEs ping-ponging a single event.
func BenchmarkRemoteMessage(b *testing.B) {
	s, err := New(Config{
		NumLPs: 2, NumPEs: 2, NumKPs: 2, EndTime: Time(b.N) + 1,
		KPOfLP: func(lp int) int { return lp },
		PEOfKP: func(kp int) int { return kp },
	})
	if err != nil {
		b.Fatal(err)
	}
	s.ForEachLP(func(lp *LP) {
		other := LPID(1 - int(lp.ID))
		lp.Handler = funcHandler{
			forward: func(lp *LP, ev *Event) { lp.Send(other, 1.0, nil) },
			reverse: func(lp *LP, ev *Event) {},
		}
	})
	s.Schedule(0, 0.5, nil)
	b.ResetTimer()
	if _, err := s.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkNeighborRing measures local-send scheduling cost across many
// LPs on one PE: a ring of 64 LPs each forwarding to its successor.
func BenchmarkNeighborRing(b *testing.B) {
	s, err := New(Config{NumLPs: 64, NumPEs: 1, EndTime: Time(b.N) + 1})
	if err != nil {
		b.Fatal(err)
	}
	s.ForEachLP(func(lp *LP) {
		next := LPID((int(lp.ID) + 1) % 64)
		lp.Handler = funcHandler{
			forward: func(lp *LP, ev *Event) { lp.Send(next, 1.0, nil) },
			reverse: func(lp *LP, ev *Event) {},
		}
	})
	s.Schedule(0, 0.5, nil)
	b.ResetTimer()
	if _, err := s.Run(); err != nil {
		b.Fatal(err)
	}
}
