package core

import (
	"fmt"
	"testing"
)

// snapStressModel is the stress model expressed without a Reverse
// handler: state saving carries the rollback burden.
type snapStressModel struct {
	numLPs int64
}

func (m snapStressModel) Forward(lp *LP, ev *Event) {
	st := lp.State.(*stressState)
	st.Hash = st.Hash*1099511628211 ^ uint64(ev.Src()+1)<<17 ^ uint64(ev.RecvTime()*1e6)
	st.Counter++
	msg := ev.Data.(*stressMsg)
	if msg.TTL > 0 {
		dst := LPID(lp.RandInt(0, m.numLPs-1))
		lp.Send(dst, Time(lp.RandExp(1.0))+0.001, &stressMsg{TTL: msg.TTL - 1})
	}
}

func (m snapStressModel) Snapshot(lp *LP) any {
	st := *lp.State.(*stressState)
	return &st
}

func (m snapStressModel) Restore(lp *LP, snap any) {
	*lp.State.(*stressState) = *snap.(*stressState)
}

// TestStateSavingMatchesReverseComputation: the same model realised via
// copy state saving must commit the identical history the reverse-
// computation version commits — across sequential and parallel engines.
func TestStateSavingMatchesReverseComputation(t *testing.T) {
	cfg := Config{NumLPs: 48, EndTime: 40, Seed: 13}
	want, wantStats := runStressSequential(t, cfg, 15)

	build := func(pcfg Config) []stressState {
		s, err := New(pcfg)
		if err != nil {
			t.Fatal(err)
		}
		model := snapStressModel{numLPs: int64(pcfg.NumLPs)}
		s.ForEachLP(func(lp *LP) {
			lp.Handler = StateSaving(model)
			lp.State = &stressState{}
		})
		for i := 0; i < pcfg.NumLPs; i++ {
			s.Schedule(LPID(i), Time(0.001*float64(i+1)), &stressMsg{TTL: 15})
		}
		stats, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		if stats.Committed != wantStats.Committed {
			t.Fatalf("committed %d, want %d", stats.Committed, wantStats.Committed)
		}
		return snapshotStress(pcfg.NumLPs, s.LP)
	}

	for _, pes := range []int{1, 4} {
		pcfg := cfg
		pcfg.NumPEs = pes
		pcfg.NumKPs = 8
		pcfg.BatchSize = 4
		pcfg.GVTInterval = 2
		got := build(pcfg)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("pes=%d LP %d: state-saving %+v != reverse-comp %+v", pes, i, got[i], want[i])
			}
		}
	}
}

// TestStateSavingDepthBounded: fossil collection must trim the snapshot
// stacks, keeping memory proportional to the uncommitted window.
func TestStateSavingDepthBounded(t *testing.T) {
	s, err := New(Config{NumLPs: 4, NumPEs: 1, EndTime: 5000, GVTInterval: 2, BatchSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	model := snapStressModel{numLPs: 4}
	s.ForEachLP(func(lp *LP) {
		lp.Handler = StateSaving(model)
		lp.State = &stressState{}
	})
	// Self-perpetuating traffic: high TTL keeps events flowing to the end.
	for i := 0; i < 4; i++ {
		s.Schedule(LPID(i), Time(0.001*float64(i+1)), &stressMsg{TTL: 1 << 30})
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	s.ForEachLP(func(lp *LP) {
		saver := lp.Handler.(*stateSaver)
		if got := len(saver.snaps); got > 4096 {
			t.Fatalf("LP %d snapshot slice grew to %d — commit trimming broken", lp.ID, got)
		}
	})
}

// BenchmarkRollbackStrategy compares reverse computation against copy
// state saving on a model whose state is a K-word vector mutated one word
// per event — the regime where the report's §3.2.1 choice matters. Each
// iteration executes a window of events, rolls all of them back, and
// re-executes.
func BenchmarkRollbackStrategy(b *testing.B) {
	const window = 32
	for _, stateWords := range []int{16, 256, 4096} {
		// Reverse computation: undo one word using the value saved in the
		// message.
		b.Run(fmt.Sprintf("reverse/words%d", stateWords), func(b *testing.B) {
			benchStrategy(b, stateWords, window, false)
		})
		// State saving: copy the whole vector every event.
		b.Run(fmt.Sprintf("snapshot/words%d", stateWords), func(b *testing.B) {
			benchStrategy(b, stateWords, window, true)
		})
	}
}

type vecState struct{ words []int64 }

type vecMsg struct {
	idx   int
	saved int64
}

type vecReverse struct{}

func (vecReverse) Forward(lp *LP, ev *Event) {
	st := lp.State.(*vecState)
	m := ev.Data.(*vecMsg)
	m.saved = st.words[m.idx]
	st.words[m.idx] = m.saved*31 + 7
}
func (vecReverse) Reverse(lp *LP, ev *Event) {
	st := lp.State.(*vecState)
	m := ev.Data.(*vecMsg)
	st.words[m.idx] = m.saved
}

type vecSnapshot struct{}

func (vecSnapshot) Forward(lp *LP, ev *Event) {
	st := lp.State.(*vecState)
	m := ev.Data.(*vecMsg)
	st.words[m.idx] = st.words[m.idx]*31 + 7
}
func (vecSnapshot) Snapshot(lp *LP) any {
	st := lp.State.(*vecState)
	cp := make([]int64, len(st.words))
	copy(cp, st.words)
	return &vecState{words: cp}
}
func (vecSnapshot) Restore(lp *LP, snap any) {
	st := lp.State.(*vecState)
	copy(st.words, snap.(*vecState).words)
}

func benchStrategy(b *testing.B, stateWords, window int, snapshotting bool) {
	s, err := New(Config{NumLPs: 1, NumPEs: 1, EndTime: 1e15})
	if err != nil {
		b.Fatal(err)
	}
	if snapshotting {
		s.LP(0).Handler = StateSaving(vecSnapshot{})
	} else {
		s.LP(0).Handler = vecReverse{}
	}
	s.LP(0).State = &vecState{words: make([]int64, stateWords)}
	pe := s.pes[0]
	now := Time(1)
	seq := uint64(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		base := now
		for w := 0; w < window; w++ {
			pe.insert(&Event{recvTime: now, dst: 0, src: NoLP, seq: seq,
				Data: &vecMsg{idx: int(seq) % stateWords}})
			seq++
			now++
			ev, _ := pe.nextLive()
			pe.pending.Pop()
			pe.execute(ev)
		}
		pe.insert(&Event{recvTime: base - 0.5, dst: 0, src: NoLP, seq: seq, Data: &vecMsg{}})
		seq++
		for {
			ev, ok := pe.nextLive()
			if !ok {
				break
			}
			pe.pending.Pop()
			pe.execute(ev)
		}
		pe.fossilCollect(now)
	}
}
