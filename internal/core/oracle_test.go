package core

import (
	"math/rand"
	"sort"
	"testing"
)

// TestRandomScheduleOracle model-checks the single-PE rollback machinery:
// a random interleaving of inserts and executions — stragglers landing in
// the executed past at arbitrary points — must leave every LP in exactly
// the state produced by executing the same events in sorted order.
//
// Unlike the stress tests (which rely on scheduler timing to produce
// rollbacks), this drives the straggler paths deterministically from a
// seeded random source, so every run exercises thousands of rollback
// scenarios reproducibly.
func TestRandomScheduleOracle(t *testing.T) {
	const numLPs = 8
	for trial := 0; trial < 50; trial++ {
		r := rand.New(rand.NewSource(int64(trial)))

		// Build the kernel: one PE, one KP per LP (finest rollback grain)
		// half the time, a single shared KP (coarsest) the other half.
		kpOf := func(lp int) int { return lp }
		numKPs := numLPs
		if trial%2 == 1 {
			kpOf = func(int) int { return 0 }
			numKPs = 1
		}
		s, err := New(Config{
			NumLPs: numLPs, NumPEs: 1, NumKPs: numKPs, EndTime: 1e9,
			KPOfLP: kpOf, PEOfKP: func(int) int { return 0 },
		})
		if err != nil {
			t.Fatal(err)
		}
		s.ForEachLP(func(lp *LP) {
			lp.Handler = recModel{}
			lp.State = &recState{}
		})
		pe := s.pes[0]

		// Generate a random event population with distinct times.
		type planned struct {
			t   Time
			dst LPID
		}
		n := 20 + r.Intn(60)
		plan := make([]planned, n)
		used := map[Time]bool{}
		for i := range plan {
			var tm Time
			for {
				tm = Time(r.Intn(1000)) + Time(r.Float64())
				if !used[tm] {
					used[tm] = true
					break
				}
			}
			plan[i] = planned{t: tm, dst: LPID(r.Intn(numLPs))}
		}

		// Interleave inserts and executions randomly; stragglers happen
		// naturally whenever an insert lands below something executed.
		inserted := 0
		for inserted < n || func() bool { _, ok := pe.nextLive(); return ok }() {
			if inserted < n && (r.Intn(2) == 0 || pe.pending.Len() == 0) {
				p := plan[inserted]
				pe.insert(&Event{recvTime: p.t, dst: p.dst, src: NoLP, seq: uint64(inserted), Data: &recMsg{}})
				inserted++
				continue
			}
			ev, ok := pe.nextLive()
			if !ok {
				continue
			}
			pe.pending.Pop()
			pe.execute(ev)
		}

		if err := pe.checkInvariants(0); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}

		// Oracle: per-LP event times in ascending order.
		oracle := make([][]Time, numLPs)
		sort.Slice(plan, func(i, j int) bool { return plan[i].t < plan[j].t })
		for _, p := range plan {
			oracle[p.dst] = append(oracle[p.dst], p.t)
		}
		for lp := 0; lp < numLPs; lp++ {
			got := s.LP(LPID(lp)).State.(*recState).Log
			want := oracle[lp]
			if len(got) != len(want) {
				t.Fatalf("trial %d LP %d: %d events, want %d", trial, lp, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("trial %d LP %d: event %d at %v, want %v\ngot  %v\nwant %v",
						trial, lp, i, got[i], want[i], got, want)
				}
			}
		}
	}
}

// TestRandomCancellationOracle extends the model-check with fan-out and
// cancellation: root events spawn children, random stragglers force the
// roots to re-execute, and the final per-LP logs must equal the sorted
// execution of the final event set.
func TestRandomCancellationOracle(t *testing.T) {
	const numLPs = 6
	for trial := 0; trial < 30; trial++ {
		r := rand.New(rand.NewSource(int64(1000 + trial)))
		s, err := New(Config{
			NumLPs: numLPs, NumPEs: 1, NumKPs: 3, EndTime: 1e9,
			KPOfLP: func(lp int) int { return lp % 3 }, PEOfKP: func(int) int { return 0 },
		})
		if err != nil {
			t.Fatal(err)
		}
		s.ForEachLP(func(lp *LP) {
			lp.Handler = recModel{}
			lp.State = &recState{}
		})
		pe := s.pes[0]

		// Roots with deterministic fan-out: each sends one child to a
		// fixed LP at +10. Because recModel's fan-out comes from the
		// message payload, re-execution reproduces the same children.
		nRoots := 10 + r.Intn(20)
		used := map[Time]bool{}
		for i := 0; i < nRoots; i++ {
			var tm Time
			for {
				tm = Time(r.Intn(500)) + Time(r.Float64())
				if !used[tm] {
					used[tm] = true
					break
				}
			}
			dst := LPID(r.Intn(numLPs))
			child := LPID(r.Intn(numLPs))
			pe.insert(&Event{recvTime: tm, dst: dst, src: NoLP, seq: uint64(i),
				Data: &recMsg{Fanout: []fan{{dst: child, delay: 10}}}})
			// Execute a random amount of available work between inserts.
			for k := r.Intn(4); k > 0; k-- {
				ev, ok := pe.nextLive()
				if !ok {
					break
				}
				pe.pending.Pop()
				pe.execute(ev)
			}
		}
		for {
			ev, ok := pe.nextLive()
			if !ok {
				break
			}
			pe.pending.Pop()
			pe.execute(ev)
		}
		if err := pe.checkInvariants(0); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}

		// Every root executed exactly once and spawned exactly one child:
		// total events = 2 * roots.
		total := 0
		s.ForEachLP(func(lp *LP) { total += len(lp.State.(*recState).Log) })
		if total != 2*nRoots {
			t.Fatalf("trial %d: %d events committed, want %d", trial, total, 2*nRoots)
		}
	}
}
