package core

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/eventq"
	"repro/internal/rng"
)

// Sequential is an independent, non-optimistic executor for the same model
// API: one event queue, strict order, no rollbacks. It exists for two
// reasons. First, it is the reference the parallel kernel is validated
// against — the report's correctness argument is that the parallel and
// sequential simulations produce identical output (Attachment 3), and the
// test suite asserts exactly that. Second, it is the 1-processor baseline
// of the speed-up experiments (Figures 5 and 6).
type Sequential struct {
	cfg     Config
	lps     []*LP
	pending eventq.Queue[*Event]
	pool    eventPool
	boot    []*Event
	bootSeq uint64
	ran     bool

	processed int64
}

// NewSequential builds a sequential executor. Only NumLPs, EndTime, Seed
// and Queue are consulted; the placement fields are irrelevant without
// parallelism.
func NewSequential(cfg Config) (*Sequential, error) {
	if cfg.NumLPs <= 0 {
		return nil, errors.New("core: Config.NumLPs must be positive")
	}
	if !(cfg.EndTime > 0) {
		return nil, errors.New("core: Config.EndTime must be positive")
	}
	if cfg.Queue == "" {
		cfg.Queue = "ladder" // same default as the parallel engines
	}
	if err := eventq.Valid(cfg.Queue); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	q := &Sequential{cfg: cfg}
	q.lps = make([]*LP, cfg.NumLPs)
	for i := range q.lps {
		q.lps[i] = &LP{
			ID:  LPID(i),
			rng: rng.NewStream(streamID(cfg.Seed, i)),
			eng: q,
		}
	}
	q.pending = newEventQueue(cfg.Queue)
	return q, nil
}

// NumLPs returns the number of logical processes.
func (q *Sequential) NumLPs() int { return len(q.lps) }

// LP returns the logical process with the given ID.
func (q *Sequential) LP(id LPID) *LP { return q.lps[id] }

// ForEachLP applies fn to every LP in ID order.
func (q *Sequential) ForEachLP(fn func(lp *LP)) {
	for _, lp := range q.lps {
		fn(lp)
	}
}

// Schedule enqueues a bootstrap event; same semantics as Simulator.Schedule.
func (q *Sequential) Schedule(dst LPID, t Time, data any) {
	if q.ran {
		panic("core: Schedule after Run")
	}
	if t < 0 {
		panic("core: Schedule with negative time")
	}
	if dst < 0 || int(dst) >= len(q.lps) {
		panic("core: Schedule to unknown LP")
	}
	ev := &Event{recvTime: t, dst: dst, src: NoLP, seq: q.bootSeq, Data: data}
	q.bootSeq++
	q.boot = append(q.boot, ev)
}

// ForEachBootstrap visits every bootstrap event scheduled so far, in
// schedule order; same semantics as Simulator.ForEachBootstrap.
func (q *Sequential) ForEachBootstrap(fn func(dst LPID, t Time, data any)) {
	for _, ev := range q.boot {
		fn(ev.dst, ev.recvTime, ev.Data)
	}
}

// DropBootstrap discards the bootstrap events scheduled so far; same
// semantics as Simulator.DropBootstrap.
func (q *Sequential) DropBootstrap() {
	if q.ran {
		panic("core: DropBootstrap after Run")
	}
	q.boot = nil
	q.bootSeq = 0
}

// scheduleNew implements engine: new events go straight into the queue.
func (q *Sequential) scheduleNew(ev *Event) {
	ev.state = statePending
	q.pending.Push(ev)
}

// alloc implements engine: events come from the executor's free list.
func (q *Sequential) alloc() *Event { return q.pool.get() }

// lookup implements engine.
func (q *Sequential) lookup(id LPID) *LP {
	if id < 0 || int(id) >= len(q.lps) {
		return nil
	}
	return q.lps[id]
}

// Run executes events in order until the queue drains or the end time is
// reached. Commit callbacks fire immediately after each Forward — in the
// sequential world every event is final the moment it executes.
func (q *Sequential) Run() (*Stats, error) {
	if q.ran {
		return nil, errors.New("core: Run called twice")
	}
	q.ran = true
	for _, lp := range q.lps {
		if lp.Handler == nil {
			return nil, fmt.Errorf("core: LP %d has no handler", lp.ID)
		}
	}
	for _, ev := range q.boot {
		ev.state = statePending
		q.pending.Push(ev)
	}
	q.boot = nil
	start := time.Now()
	// One bulk drain to the horizon replaces the Min/Pop loop: the bound
	// sorts before every real event at EndTime (real destinations are
	// >= 0), so exactly the events with recvTime < EndTime execute. The
	// ladder consumes its sorted runs directly; heap and splay take
	// eventq.Drain's equivalent Min/Pop fallback. Events sent during
	// execution land strictly later than the event being executed
	// (LP.Send requires a positive delay), which is precisely the
	// BulkDrain re-entrancy contract.
	bound := &Event{recvTime: q.cfg.EndTime, dst: -1 << 31, src: -1 << 31}
	eventq.Drain(q.pending, bound, (*Event).before, func(ev *Event) {
		lp := q.lps[ev.dst]
		ev.state = stateProcessed
		ev.Bits = 0
		ev.prevSendSeq = lp.sendSeq
		lp.mode = modeForward
		lp.cur = ev
		lp.Handler.Forward(lp, ev)
		if committer, ok := lp.Handler.(Committer); ok {
			lp.mode = modeCommit
			committer.Commit(lp, ev)
		}
		lp.cur = nil
		lp.mode = modeIdle
		// Sequentially, an executed event is committed and therefore dead;
		// it goes straight back to the pool for the next Send.
		ev.state = stateCommitted
		q.pool.release(lp, ev)
		q.processed++
	})
	wall := time.Since(start)
	st := &Stats{
		Processed: q.processed,
		Committed: q.processed,
		NumPEs:    1,
		NumKPs:    1,
		Wall:      wall,
	}
	var ps PEStats
	q.pool.addTo(&ps)
	st.addPool(ps)
	st.finishPools()
	if secs := wall.Seconds(); secs > 0 {
		st.EventRate = float64(st.Committed) / secs
	}
	st.Efficiency = 1
	return st, nil
}
