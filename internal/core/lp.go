package core

import "repro/internal/rng"

// Handler is the model-side behaviour of a logical process. Forward
// executes an event, mutating the LP's State and sending new events;
// Reverse must exactly undo Forward's mutations of State, using values the
// model saved in the event's Data payload and Bits scratch. The kernel
// itself undoes everything else: events Forward sent are cancelled, random
// draws are rewound, and the send sequence is restored.
//
// Reverse is called with events in the exact reverse of processing order,
// so a handler may rely on LIFO undo semantics.
type Handler interface {
	Forward(lp *LP, ev *Event)
	Reverse(lp *LP, ev *Event)
}

// Committer is optionally implemented by handlers that want a callback
// once an event is irrevocably in the past (below GVT). Commit runs during
// fossil collection in per-LP event order and is the safe place for
// irreversible actions: I/O, appending to output logs, final tallies.
type Committer interface {
	Commit(lp *LP, ev *Event)
}

// lpMode guards the operations legal in each handler phase: only Forward
// may send events or draw randomness.
type lpMode uint8

const (
	modeIdle lpMode = iota
	modeForward
	modeReverse
	modeCommit
)

// LP is one logical process. Handler and State are set by the model during
// setup (before Run); everything else is kernel-owned. An LP is only ever
// touched by the PE that owns its KP, so handlers need no locking.
type LP struct {
	// ID is the dense identifier of this LP.
	ID LPID
	// Handler implements the model's event processing; required.
	Handler Handler
	// State is the model's mutable per-LP state.
	State any

	kp      *KP
	rng     *rng.Stream
	sendSeq uint64
	cur     *Event
	mode    lpMode
	eng     engine
}

// engine abstracts the three executors (parallel, sequential,
// conservative) behind LP.Send.
type engine interface {
	// scheduleNew routes a freshly created event to its destination. The
	// event carries its full identity (src, seq, recvTime), so the engine
	// needs no separate sender argument.
	scheduleNew(ev *Event)
	// lookup returns the LP with the given ID.
	lookup(id LPID) *LP
	// alloc draws a blank event from the engine's free list (allocating
	// only on pool miss); the caller initialises identity and payload.
	alloc() *Event
}

// Now returns the receive time of the event being handled. It is valid in
// Forward, Reverse and Commit.
func (lp *LP) Now() Time {
	if lp.cur == nil {
		panic("core: LP.Now called outside an event handler")
	}
	return lp.cur.recvTime
}

// Rand draws a uniform variate in (0,1) from the LP's reversible stream.
// Only legal during Forward; the kernel rewinds the draws automatically if
// the event is rolled back, so Reverse must not (and cannot) re-draw.
func (lp *LP) Rand() float64 {
	lp.checkDraw()
	return lp.rng.Uniform()
}

// RandInt draws a uniform integer in [lo, hi] inclusive (one draw).
func (lp *LP) RandInt(lo, hi int64) int64 {
	lp.checkDraw()
	return lp.rng.Integer(lo, hi)
}

// RandExp draws an exponential variate with the given mean (one draw).
func (lp *LP) RandExp(mean float64) float64 {
	lp.checkDraw()
	return lp.rng.Exponential(mean)
}

// RandBool is true with probability p (one draw).
func (lp *LP) RandBool(p float64) bool {
	lp.checkDraw()
	return lp.rng.Bool(p)
}

func (lp *LP) checkDraw() {
	if lp.mode != modeForward {
		panic("core: random draw outside Forward (randomness must be replayable)")
	}
	lp.cur.rngDraws++
}

// Send schedules a new event for LP dst at Now()+delay carrying data.
// delay must be strictly positive: zero-delay events would execute at the
// same virtual time as their cause, and Time Warp's correctness argument
// (and the report's synchronous network model) requires causes to strictly
// precede effects. Only legal during Forward.
//
// The returned event is kernel-owned and recycled through a free list once
// it is committed or cancelled; do not retain the pointer beyond the
// current handler call.
func (lp *LP) Send(dst LPID, delay Time, data any) *Event {
	if lp.mode != modeForward {
		panic("core: Send outside Forward")
	}
	if !(delay > 0) {
		panic("core: Send requires a strictly positive delay")
	}
	if target := lp.eng.lookup(dst); target == nil {
		panic("core: Send to unknown LP")
	}
	ev := lp.eng.alloc()
	ev.recvTime = lp.cur.recvTime + delay
	ev.dst = dst
	ev.src = lp.ID
	ev.seq = lp.sendSeq
	ev.Data = data
	lp.sendSeq++
	lp.cur.sent = append(lp.cur.sent, ev)
	lp.eng.scheduleNew(ev)
	return ev
}

// SendSelf schedules an event for this LP itself.
func (lp *LP) SendSelf(delay Time, data any) *Event {
	return lp.Send(lp.ID, delay, data)
}

// KPID returns the kernel process this LP is mapped to; exposed so models
// and experiments can report placement.
func (lp *LP) KPID() int {
	if lp.kp == nil {
		return 0
	}
	return lp.kp.id
}
