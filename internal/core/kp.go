package core

// KP is a kernel process: a group of LPs that shares one processed-event
// list and therefore one rollback scope. When a straggler or cancellation
// arrives for any LP in the KP, every later event processed in the KP is
// rolled back — including events of sibling LPs that were not causally
// affected ("false rollbacks", report §4.2.3). More KPs mean finer rollback
// scope but more fossil-collection bookkeeping; the report's Figures 7 and
// 8 chart exactly this trade-off, and the experiment harness reproduces
// them by sweeping Config.NumKPs.
type KP struct {
	id int
	pe *PE

	// processed holds this KP's executed-but-uncommitted events in
	// processing order (ascending by the kernel's total event order).
	// head indexes the first live entry; fossil collection advances it and
	// compacts lazily.
	processed []*Event
	head      int

	// lastKey is the ordering key of the most recently processed event,
	// valid when hasLast is true. Kept as a value copy so the straggler
	// test works even after the event is fossil-collected.
	lastKey eventKey
	hasLast bool

	// Statistics.
	rolledBackEvents   int64
	primaryRollbacks   int64
	secondaryRollbacks int64
	committed          int64
	peakLive           int
}

// ID returns the KP's index.
func (kp *KP) ID() int { return kp.id }

func (kp *KP) live() int { return len(kp.processed) - kp.head }

func (kp *KP) push(ev *Event) {
	kp.processed = append(kp.processed, ev)
	kp.lastKey = ev.key()
	kp.hasLast = true
	if live := kp.live(); live > kp.peakLive {
		kp.peakLive = live
	}
}

// popTail removes and returns the most recently processed live event, or
// nil when none remain.
func (kp *KP) popTail() *Event {
	if kp.live() == 0 {
		return nil
	}
	last := len(kp.processed) - 1
	ev := kp.processed[last]
	kp.processed[last] = nil
	kp.processed = kp.processed[:last]
	kp.refreshLast()
	return ev
}

func (kp *KP) refreshLast() {
	if kp.live() == 0 {
		kp.hasLast = false
		return
	}
	kp.lastKey = kp.processed[len(kp.processed)-1].key()
	kp.hasLast = true
}

// tail returns the most recently processed live event without removing it.
func (kp *KP) tail() *Event {
	if kp.live() == 0 {
		return nil
	}
	return kp.processed[len(kp.processed)-1]
}

// fossilCollect commits and releases every processed event strictly below
// gvt, calling Commit handlers in processing order. A committed event can
// never be referenced again — its KP keeps only the value-copied lastKey,
// and a cancellation for it would be a GVT violation — so it returns to
// the owning PE's pool the moment its Commit handler finishes.
func (kp *KP) fossilCollect(gvt Time, pe *PE) {
	for kp.head < len(kp.processed) {
		ev := kp.processed[kp.head]
		if ev.recvTime >= gvt {
			break
		}
		lp := pe.sim.lps[ev.dst]
		if committer, ok := lp.Handler.(Committer); ok {
			lp.mode = modeCommit
			lp.cur = ev
			committer.Commit(lp, ev)
			lp.cur = nil
			lp.mode = modeIdle
		}
		ev.state = stateCommitted
		kp.processed[kp.head] = nil
		kp.head++
		kp.committed++
		pe.free(ev)
	}
	// Compact once the dead prefix dominates, to keep memory bounded.
	if kp.head > 64 && kp.head > len(kp.processed)/2 {
		n := copy(kp.processed, kp.processed[kp.head:])
		for i := n; i < len(kp.processed); i++ {
			kp.processed[i] = nil
		}
		kp.processed = kp.processed[:n]
		kp.head = 0
	}
}
