package core

import "sort"

// This file is the kernel side of checkpoint/restore: a periodic capture of
// the committed below-GVT state, taken at a GVT commit point, plus the
// resume hooks a fresh simulator uses to continue a captured run.
//
// # What a checkpoint is
//
// The capture happens at a coordinated rendezvous keyed to one GVT
// estimate g: every PE reaches the no-mail-in-flight fixed point, fossil-
// collects everything below g, then rolls every KP back to exactly g —
// re-pending its speculative work and cancelling the events that work had
// sent — and one more fixed point drains those cancellations. At that
// moment the machine IS the committed prefix: every LP state, RNG stream
// and send sequence is exactly what a run that executed only the events
// below g would hold, and the pending queues hold exactly the frontier —
// the events at or beyond g sent by committed causes (or bootstrap). The
// rollback is pure scheduling: the re-pended events re-execute afterwards
// and commit the same results, so an unkilled run is unchanged (the
// differential tests hold checkpointing runs to the sequential oracle).
//
// Rolling back to GVT instead of snapshotting live speculation is what
// keeps the capture consistent and small: speculative state may be wrong
// (that is the point of Time Warp), and in-flight anti-message chains have
// no consistent cut — whereas the committed prefix is immutable by
// definition of GVT.
//
// # Resume
//
// A resumed run is a fresh Simulator whose bootstrap is the checkpointed
// frontier (ScheduleRestored keeps each event's original identity, so the
// total order — and therefore the committed schedule — is untouched) and
// whose LP states, RNG streams and send sequences are reinstated
// (RestoreLP plus the model state codec in internal/replay). Everything
// the resumed run commits has T >= g; its trace appended to the
// checkpoint's trace prefix reproduces the uninterrupted run bit-for-bit,
// which is exactly what the crash harness asserts. The serialization,
// file format and atomic publication live in internal/replay
// (docs/CHECKPOINT.md); the kernel only hands a CheckpointState to the
// sink while the machine is provably quiescent.

// CheckpointLP is one LP's captured committed state. State aliases the
// live lp.State object — the sink must serialize it before returning.
type CheckpointLP struct {
	State    any
	RNG      [4]uint64
	RNGDraws uint64
	SendSeq  uint64
}

// CheckpointEvent is one frontier event: pending, uncommitted, receive
// time at or beyond the checkpoint's GVT, sent by a committed event (src,
// seq from its original send) or by bootstrap (src == NoLP). Data aliases
// the live payload — the sink must serialize it before returning.
type CheckpointEvent struct {
	T    Time
	Dst  LPID
	Src  LPID
	Seq  uint64
	Data any
}

// CheckpointState is the consistent cut handed to a CheckpointSink: the
// committed prefix below GVT plus the frontier that regenerates the rest.
// Frontier is sorted by the kernel's total event order.
type CheckpointState struct {
	GVT       Time
	Committed int64
	LPs       []CheckpointLP
	Frontier  []CheckpointEvent
}

// CheckpointSink consumes periodic checkpoints. Checkpoint is called on
// PE 0's goroutine while every other PE is parked at a barrier, so the
// state is quiescent for the duration of the call; an error poisons the
// run (it surfaces from Run on every PE). The sink must not retain cs or
// anything reachable from it after returning.
type CheckpointSink interface {
	Checkpoint(cs *CheckpointState) error
}

// SetCheckpoint arms periodic checkpointing: every everyRounds completed
// GVT rounds (at least 1) with a positive estimate, the kernel rendezvouses,
// rolls back to the estimate and hands the committed state to sink. Must be
// called before Run; a nil sink disarms. Like SetRecord, this is how
// harnesses reach a model-built simulator.
func (s *Simulator) SetCheckpoint(sink CheckpointSink, everyRounds int) {
	if s.ran {
		panic("core: SetCheckpoint after Run")
	}
	s.ckptSink = sink
	if everyRounds < 1 {
		everyRounds = 1
	}
	s.ckptEvery = int64(everyRounds)
}

// checkpointDue is PE 0's per-round arming decision, made while it owns the
// round (between gvtRound's barriers, or in completeRound). Checkpoints at
// estimate 0 are skipped — there is nothing committed to capture — and a
// finishing round never checkpoints (the run is about to produce its final
// state anyway).
func (s *Simulator) checkpointDue(round int64, est Time) bool {
	return s.ckptSink != nil && est > 0 && est < s.cfg.EndTime &&
		round-s.ckptLastRound >= s.ckptEvery
}

// checkpointRendezvous is the all-PE capture protocol, entered by every PE
// in the same GVT round (barrier mode: the ckptDue flag published inside
// the round; async mode: the ckptPending flag set by completeRound). gvt is
// the current published estimate, stable for the duration — only PE 0
// advances it and PE 0 is in here.
func (pe *PE) checkpointRendezvous(gvt Time) error {
	s := pe.sim
	// Quiesce: drain every lane and outbox to the sent == delivered fixed
	// point, so all mail is resident in pending queues and the straggler/
	// cancellation state below is complete.
	if err := pe.commsFixedPoint(); err != nil {
		return err
	}
	// Commit everything below the estimate (idempotent where a mode already
	// collected this round), then unwind everything at or beyond it. The
	// rollback key sorts before every real event at time gvt, so each KP's
	// whole speculative suffix re-pends and its sends are cancelled; KPs end
	// empty (live() == 0, hasLast false), LP states/RNGs/sequences end at
	// their committed values.
	pe.fossilCollect(gvt)
	if s.async && gvt > pe.lastFossil {
		pe.lastFossil = gvt
	}
	key := eventKey{recvTime: gvt, dst: -1 << 31, src: -1 << 31}
	for _, kp := range pe.kps {
		pe.rollback(kp, key)
	}
	// Drain the anti-messages the rollback just posted. Every KP is empty,
	// so arriving cancellations only mark pending events — no cascades —
	// and the fixed point leaves the frontier fully resolved: statePending
	// events are exactly the committed-cause sends, stateCanceled husks are
	// the rolled-back speculation's.
	if err := pe.commsFixedPoint(); err != nil {
		return err
	}
	if pe.id == 0 {
		err := s.captureCheckpoint(gvt)
		s.ckptDue = false
		s.ckptPending.Store(false)
		s.ckptLastRound = s.gvtRounds.Load()
		if err != nil {
			s.fail(err)
			return err
		}
	}
	// Release barrier: the other PEs wait here while PE 0 captures (their
	// last fixed-point barrier orders their writes before its reads), then
	// everyone resumes and re-executes the unwound suffix.
	return pe.await()
}

// captureCheckpoint assembles the CheckpointState and hands it to the sink.
// PE 0 only, between the rendezvous barriers: every other PE is blocked at
// the release barrier, so the cross-PE reads below are barrier-ordered.
func (s *Simulator) captureCheckpoint(gvt Time) error {
	cs := &CheckpointState{GVT: gvt}
	for _, pe := range s.pes {
		cs.Committed += pe.committed //simlint:crosspe barrier-ordered read inside the checkpoint rendezvous
	}
	cs.LPs = make([]CheckpointLP, len(s.lps))
	for i, lp := range s.lps {
		cs.LPs[i] = CheckpointLP{
			State:    lp.State,
			RNG:      lp.rng.State(),
			RNGDraws: lp.rng.Draws(),
			SendSeq:  lp.sendSeq,
		}
	}
	for _, pe := range s.pes {
		pe.pending.Each(func(ev *Event) { //simlint:crosspe barrier-ordered read inside the checkpoint rendezvous
			if ev.state != statePending {
				return // cancelled husks: rolled-back speculation, reclaimed later
			}
			cs.Frontier = append(cs.Frontier, CheckpointEvent{
				T: ev.recvTime, Dst: ev.dst, Src: ev.src, Seq: ev.seq, Data: ev.Data,
			})
		})
	}
	sort.Slice(cs.Frontier, func(i, j int) bool {
		a, b := cs.Frontier[i], cs.Frontier[j]
		if a.T != b.T {
			return a.T < b.T
		}
		if a.Dst != b.Dst {
			return a.Dst < b.Dst
		}
		if a.Src != b.Src {
			return a.Src < b.Src
		}
		return a.Seq < b.Seq
	})
	return s.ckptSink.Checkpoint(cs)
}

// RestoreLP reinstates one LP's checkpointed RNG stream and send sequence
// (the model state itself is restored in place through lp.State by the
// caller, typically via a replay.StateCodec). Only legal before Run.
func (s *Simulator) RestoreLP(id LPID, state [4]uint64, draws, sendSeq uint64) error {
	if s.ran {
		panic("core: RestoreLP after Run")
	}
	lp := s.lookup(id)
	if lp == nil {
		panic("core: RestoreLP for unknown LP")
	}
	if err := lp.rng.Restore(state, draws); err != nil {
		return err
	}
	lp.sendSeq = sendSeq
	return nil
}

// ScheduleRestored enqueues one checkpointed frontier event before the run
// starts, preserving its original identity (src — NoLP for bootstrap —
// and per-source sequence), so the kernel's total order places it exactly
// where the original run did. Use after DropBootstrap when resuming; do not
// mix with Schedule, whose events draw from the bootstrap sequence.
func (s *Simulator) ScheduleRestored(dst LPID, t Time, src LPID, seq uint64, data any) {
	if s.ran {
		panic("core: ScheduleRestored after Run")
	}
	if t < 0 {
		panic("core: ScheduleRestored with negative time")
	}
	if dst < 0 || int(dst) >= len(s.lps) {
		panic("core: ScheduleRestored to unknown LP")
	}
	ev := &Event{recvTime: t, dst: dst, src: src, seq: seq, Data: data}
	s.boot = append(s.boot, ev)
}
