package core

import "testing"

// TestKPStatsConsistent: per-KP statistics must sum to the kernel totals
// and the memory high-water mark must be positive for a run with work.
func TestKPStatsConsistent(t *testing.T) {
	cfg := Config{NumLPs: 64, EndTime: 50, Seed: 3, NumPEs: 4, NumKPs: 8, BatchSize: 4, GVTInterval: 2}
	_, stats := runStressParallel(t, cfg, 20)
	if len(stats.KPs) != stats.NumKPs {
		t.Fatalf("got %d KP entries, want %d", len(stats.KPs), stats.NumKPs)
	}
	var committed, rolled, prim, sec int64
	peak := 0
	for _, kp := range stats.KPs {
		if kp.PE < 0 || kp.PE >= stats.NumPEs {
			t.Fatalf("KP %d on invalid PE %d", kp.ID, kp.PE)
		}
		committed += kp.Committed
		rolled += kp.RolledBackEvents
		prim += kp.PrimaryRollbacks
		sec += kp.SecondaryRollbacks
		peak += kp.PeakLiveEvents
	}
	if committed != stats.Committed {
		t.Fatalf("KP committed sum %d != total %d", committed, stats.Committed)
	}
	if rolled != stats.RolledBackEvents || prim != stats.PrimaryRollbacks || sec != stats.SecondaryRollbacks {
		t.Fatalf("KP rollback sums disagree with totals")
	}
	if peak != stats.PeakLiveEvents || peak <= 0 {
		t.Fatalf("peak live events %d (sum %d)", stats.PeakLiveEvents, peak)
	}
}

// TestMaxOptimismReducesPeakLive: bounding speculation must bound the
// optimistic memory footprint.
func TestMaxOptimismReducesPeakLive(t *testing.T) {
	run := func(maxOpt Time) int {
		cfg := Config{NumLPs: 64, EndTime: 100, Seed: 5, NumPEs: 4, NumKPs: 8,
			BatchSize: 64, GVTInterval: 32, MaxOptimism: maxOpt}
		_, stats := runStressParallel(t, cfg, 50)
		return stats.PeakLiveEvents
	}
	wild := run(0)
	tame := run(1)
	if tame > wild {
		t.Fatalf("throttled peak %d > unthrottled %d", tame, wild)
	}
}
