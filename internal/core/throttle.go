package core

// This file is the adaptive optimism throttle (Config.AdaptiveOptimism): a
// per-PE controller that widens and narrows the speculation horizon from
// observed rollback efficiency, generalizing the static MaxOptimism bound
// and the memory valve's fixed PressureWindow. The controller is pure
// scheduling policy — like both of those, it changes *when* events execute,
// never what commits — so every differential harness holds it to the same
// sequential oracle.
//
// The policy is TCP-shaped, sampled once per GVT round over the
// interval's executions. Efficiency (1 - rolledBack/processed over the
// interval) at or above optWidenAt grows the window: doubling below the
// congestion threshold (slow start), one floor-unit at a time at or above
// it (probing). Efficiency below optNarrowAt halves the window and moves
// the threshold down to the halved value, so the next climb switches to
// additive probing *before* the width that just stormed. The band between
// leaves the window alone so mixed intervals do not oscillate it. Pure
// multiplicative-increase is the wrong shape here: success at w says "try
// 2w", so the controller repeatedly overshoots the workload's coupling
// width and every overshoot costs a rollback storm plus the slow halving
// walk back down. The floor stays strictly positive, which keeps the event
// at GVT itself executable and the run deadlock-free (the same argument as
// the memory valve's window).

const (
	// optSampleMin is the minimum number of new executions between window
	// adjustments; smaller intervals are folded into the next one so a
	// near-idle GVT round cannot swing the window on a handful of events.
	optSampleMin = 64
	// optWidenAt and optNarrowAt bound the efficiency dead band.
	optWidenAt  = 0.85
	optNarrowAt = 0.80
	// optFloorDiv sets the window floor as a fraction of the cap.
	optFloorDiv = 256
)

// optimismController holds one PE's adaptive window. All fields are owned
// by the PE's goroutine; the controller is only ever consulted between
// batches.
type optimismController struct {
	window Time
	min    Time
	max    Time
	// thresh is the congestion threshold: the window grows multiplicatively
	// below it and additively at or above it. Starts at the cap (everything
	// is slow start) and tracks the halved window on every narrow.
	thresh Time
	// procMark/rbMark are the counter values at the last adjustment.
	procMark int64
	rbMark   int64
}

// newOptimismController derives the window bounds from the run's horizon:
// the cap is MaxOptimism when the caller set one (the adaptive window then
// only ever tightens it) and the full horizon otherwise; the floor keeps a
// throttled PE executing a strictly positive window past GVT. The window
// starts at the floor and earns width: a PE that never rolls back doubles
// to the cap within optFloorDiv-log2 rounds (a few milliseconds of real
// time), whereas starting wide costs a full cascade storm up front on
// tightly coupled workloads — the controller would have to narrow *through*
// the storm it just caused, and in async mode nothing else quenches it.
//
// cpus is the scheduler parallelism available to the PE goroutines
// (runtime.GOMAXPROCS in production). With one processor the cap collapses
// to the floor, pinning the window there: optimism's entire value is
// converting idle processors into speculative progress, and on a
// timesliced core there are no idle processors — every speculated event
// displaces critical-path work and still carries rollback risk. The
// observe dynamics then run unchanged against max == min, so the window
// provably cannot move.
func newOptimismController(cfg *Config, cpus int) *optimismController {
	max := cfg.MaxOptimism
	if max <= 0 {
		max = cfg.EndTime
	}
	min := max / optFloorDiv
	if min <= 0 {
		min = 1
	}
	if cpus <= 1 {
		max = min
	}
	return &optimismController{window: min, min: min, max: max, thresh: max}
}

// observe feeds the controller the PE's cumulative processed/rolled-back
// counters (called once per GVT round) and adjusts the window when the
// interval holds enough samples.
func (oc *optimismController) observe(processed, rolledBack int64) {
	dp := processed - oc.procMark
	if dp < optSampleMin {
		return
	}
	drb := rolledBack - oc.rbMark
	oc.procMark, oc.rbMark = processed, rolledBack
	eff := 1 - float64(drb)/float64(dp)
	switch {
	case eff >= optWidenAt:
		if oc.window < oc.thresh {
			oc.window *= 2
			if oc.window > oc.thresh {
				oc.window = oc.thresh
			}
		} else {
			oc.window += oc.min
		}
		if oc.window > oc.max {
			oc.window = oc.max
		}
	case eff < optNarrowAt:
		oc.window /= 2
		if oc.window < oc.min {
			oc.window = oc.min
		}
		oc.thresh = oc.window
	}
}
