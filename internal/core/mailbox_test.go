package core

import (
	"sync"
	"testing"
	"time"
)

// newCommsSim builds a wired simulator (lanes, outboxes, wake channels)
// without handlers; comms unit tests drive the PEs' mailbox machinery
// directly instead of calling Run.
func newCommsSim(t testing.TB, pes int) *Simulator {
	t.Helper()
	s, err := New(Config{NumLPs: pes * 2, NumPEs: pes, EndTime: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.pes) != pes {
		t.Fatalf("got %d PEs, want %d", len(s.pes), pes)
	}
	return s
}

// TestLaneFIFOWraparound drives one lane through several capacity's worth
// of push/drain cycles with odd batch sizes, checking FIFO order across
// the ring's wraparound and the partial-push contract when full.
func TestLaneFIFOWraparound(t *testing.T) {
	var l lane
	next := uint64(0) // next seq to push
	want := uint64(0) // next seq expected out
	var batch []mail
	pushBatch := func(n int) int {
		batch = batch[:0]
		for i := 0; i < n; i++ {
			batch = append(batch, mail{ev: &Event{seq: next + uint64(i)}})
		}
		pushed := l.push(batch)
		next += uint64(pushed)
		return pushed
	}
	var out []mail
	drainAll := func() {
		out = l.drain(out[:0])
		for _, m := range out {
			if m.ev.seq != want {
				t.Fatalf("drained seq %d, want %d", m.ev.seq, want)
			}
			want++
		}
	}

	// Fill to capacity in odd-sized batches; the last push must be partial.
	for pushed := 0; pushed < laneCap; {
		n := pushBatch(7)
		pushed += n
		if n == 0 {
			t.Fatal("push returned 0 with lane not yet full")
		}
	}
	if n := pushBatch(3); n != 0 {
		t.Fatalf("push into full lane accepted %d messages", n)
	}
	drainAll()
	if want != uint64(laneCap) {
		t.Fatalf("drained %d messages, want %d", want, laneCap)
	}

	// Cycle well past the index wrap region with mixed batch sizes.
	for cycle := 0; cycle < 50; cycle++ {
		pushBatch(1 + cycle%13)
		if cycle%3 != 0 {
			drainAll()
		}
	}
	drainAll()
	if want != next {
		t.Fatalf("drained %d of %d pushed messages", want, next)
	}
	if !l.isEmpty() {
		t.Fatal("lane not empty after full drain")
	}
}

// TestLaneSPSCConcurrent runs one producer against one concurrent consumer
// and asserts strict FIFO; under -race this also proves the slot writes are
// properly published by the tail store (and the frees by the head store).
func TestLaneSPSCConcurrent(t *testing.T) {
	const total = 20000
	var l lane
	done := make(chan struct{})
	go func() {
		defer close(done)
		var batch []mail
		sent := uint64(0)
		for sent < total {
			batch = batch[:0]
			n := int(sent%9) + 1
			for i := 0; i < n && sent+uint64(i) < total; i++ {
				batch = append(batch, mail{ev: &Event{seq: sent + uint64(i)}})
			}
			pushed := l.push(batch)
			sent += uint64(pushed)
		}
	}()
	var out []mail
	want := uint64(0)
	for want < total {
		out = l.drain(out[:0])
		for _, m := range out {
			if m.ev.seq != want {
				t.Fatalf("drained seq %d, want %d", m.ev.seq, want)
			}
			want++
		}
	}
	<-done
	if !l.isEmpty() {
		t.Fatal("lane not empty after consuming every message")
	}
}

// TestOutboxPartialFlushKeepsOrder posts more mail to one destination than
// a lane can hold, so flushMail must take the partial-push path; the
// retried remainder has to come out in the original order.
func TestOutboxPartialFlushKeepsOrder(t *testing.T) {
	s := newCommsSim(t, 2)
	src, dst := s.pes[0], s.pes[1]

	total := laneCap + laneCap/2
	for i := 0; i < total; i++ {
		src.post(dst, mail{ev: &Event{seq: uint64(i)}})
	}
	if src.mailSent != int64(total) {
		t.Fatalf("mailSent = %d, want %d", src.mailSent, total)
	}

	var got []mail
	for pass := 0; len(got) < total; pass++ {
		if pass > 4 {
			t.Fatalf("mail not through after %d flush passes (%d/%d)", pass, len(got), total)
		}
		src.flushMail(false)
		got = dst.lanes[src.id].drain(got)
	}
	for i, m := range got {
		if m.ev.seq != uint64(i) {
			t.Fatalf("position %d holds seq %d; partial flush broke FIFO", i, m.ev.seq)
		}
	}
	if len(src.outbox.dirty) != 0 {
		t.Fatal("outbox still dirty after full flush")
	}
	if src.batchesFlushed < 2 {
		t.Fatalf("batchesFlushed = %d, want >= 2 (one full lane + remainder)", src.batchesFlushed)
	}
}

// TestMailboxMPSCOrdering is the ordering property test the tentpole asks
// for: N concurrent senders each stream paired positive/cancel messages at
// one consumer. The kernel's correctness hinge is that per-sender FIFO
// order suffices — a positive event and its cancellation always originate
// from the same source PE (the sender is who rolls back), so as long as
// each sender's lane is FIFO, a cancellation can never be drained before
// the positive message it chases, no matter how the senders interleave.
func TestMailboxMPSCOrdering(t *testing.T) {
	const (
		senders = 4
		pairs   = 3000
	)
	s := newCommsSim(t, senders+1)
	consumer := s.pes[senders]

	var wg sync.WaitGroup
	for sn := 0; sn < senders; sn++ {
		wg.Add(1)
		go func(sn int) {
			defer wg.Done()
			l := &consumer.lanes[sn]
			var backlog []mail
			seq := uint64(0)
			for seq < pairs || len(backlog) > 0 {
				// Queue a positive/cancel pair (the cancel chases its own
				// positive, exactly like an aggressive rollback), then push
				// as much of the backlog as fits.
				if seq < pairs {
					ev := &Event{src: LPID(sn), seq: seq}
					backlog = append(backlog, mail{ev: ev}, mail{ev: ev, cancel: true})
					seq++
				}
				n := l.push(backlog)
				backlog = backlog[:copy(backlog, backlog[n:])]
			}
		}(sn)
	}

	lastSeq := make([]int64, senders) // highest positive seq seen per sender, -1 init
	for i := range lastSeq {
		lastSeq[i] = -1
	}
	open := make(map[[2]uint64]bool) // (sender, seq) -> positive seen, cancel pending
	received := 0
	var out []mail
	for received < senders*pairs*2 {
		out = out[:0]
		for i := 0; i < senders; i++ {
			out = consumer.lanes[i].drain(out)
		}
		for _, m := range out {
			key := [2]uint64{uint64(m.ev.src), m.ev.seq}
			if m.cancel {
				if !open[key] {
					t.Fatalf("cancellation for sender %d seq %d drained before its positive message",
						m.ev.src, m.ev.seq)
				}
				delete(open, key)
			} else {
				if int64(m.ev.seq) <= lastSeq[m.ev.src] {
					t.Fatalf("sender %d positive seq %d arrived after seq %d; per-sender FIFO broken",
						m.ev.src, m.ev.seq, lastSeq[m.ev.src])
				}
				lastSeq[m.ev.src] = int64(m.ev.seq)
				open[key] = true
			}
		}
		received += len(out)
	}
	wg.Wait()
	if len(open) != 0 {
		t.Fatalf("%d positives never chased by their cancellation", len(open))
	}
}

// TestParkWakeOnMail checks the park/wake handshake: a parked PE wakes when
// a sender flushes mail into its lane, and the Dekker recheck refuses to
// park when mail is already waiting.
func TestParkWakeOnMail(t *testing.T) {
	s := newCommsSim(t, 2)
	src, dst := s.pes[0], s.pes[1]

	parked := make(chan struct{})
	go func() {
		dst.park()
		close(parked)
	}()
	waitFor(t, "PE to park", func() bool { return dst.parked.Load() })

	src.post(dst, mail{ev: &Event{seq: 1}})
	src.flushMail(false)
	select {
	case <-parked:
	case <-time.After(5 * time.Second):
		t.Fatal("flushMail did not wake the parked PE")
	}
	if dst.parks != 1 {
		t.Fatalf("parks = %d, want 1", dst.parks)
	}
	if dst.wakes.Load() != 1 {
		t.Fatalf("wakes = %d, want 1", dst.wakes.Load())
	}

	// Mail still in the lane: the recheck must bail out instead of
	// sleeping with work pending.
	dst.park()
	if got := dst.parks; got != 1 {
		t.Fatalf("PE parked with mail in its lane (parks = %d)", got)
	}
}

// TestParkWakeOnGVTRequest checks the other wake source: requestGVT must
// unpark every PE so the round's barrier can form, and a pending GVT
// request must prevent parking in the first place.
func TestParkWakeOnGVTRequest(t *testing.T) {
	s := newCommsSim(t, 2)
	pe := s.pes[1]

	parked := make(chan struct{})
	go func() {
		pe.park()
		close(parked)
	}()
	waitFor(t, "PE to park", func() bool { return pe.parked.Load() })

	s.requestGVT()
	select {
	case <-parked:
	case <-time.After(5 * time.Second):
		t.Fatal("requestGVT did not wake the parked PE")
	}

	// With the request still pending, park must refuse to sleep.
	pe.park()
	if pe.parks != 1 {
		t.Fatalf("PE parked while a GVT round was requested (parks = %d)", pe.parks)
	}
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestAntiMessageOrderingUnderStress encodes the per-sender-FIFO
// sufficiency argument end to end: four PEs under forced rollbacks, mail
// shuffling, delayed GVT and held-then-burst flushes generate heavy
// cross-PE anti-message traffic, while paranoid mode's drain tripwires
// panic the run if a cancellation ever arrives ahead of its positive
// (an unscheduled-state target) or after a premature recycle (stateFree).
// The committed trajectory must still match the sequential reference.
func TestAntiMessageOrderingUnderStress(t *testing.T) {
	base := Config{NumLPs: 64, EndTime: 30, Seed: 29}
	want, _ := runStressSequential(t, base, 16)

	cfg := base
	cfg.NumPEs = 4
	cfg.NumKPs = 16
	cfg.BatchSize = 4
	cfg.GVTInterval = 2
	cfg.CheckInvariants = true
	cfg.Faults = &Faults{
		Seed: 31, RollbackEvery: 2, RollbackDepth: 5,
		ShuffleMail: true, GVTDelay: 1, MailBurst: 3,
	}
	got, st := runStressParallel(t, cfg, 16)
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("LP %d diverged under comms stress: got %+v want %+v", i, got[i], want[i])
		}
	}
	if st.MailSent == 0 || st.RolledBackEvents == 0 {
		t.Fatalf("stress did not exercise cross-PE cancellation: mailSent=%d rolledBack=%d",
			st.MailSent, st.RolledBackEvents)
	}
	if st.MailSent != st.MailReceived {
		t.Fatalf("in-flight accounting leaked: sent %d != received %d", st.MailSent, st.MailReceived)
	}
	if st.BatchesFlushed == 0 || st.BatchedMessages != st.MailSent {
		t.Fatalf("coalescing stats inconsistent: %d batches, %d batched of %d sent",
			st.BatchesFlushed, st.BatchedMessages, st.MailSent)
	}
}

// FuzzMailboxOrdering fuzzes deterministic interleavings of posts, holds,
// flushes and drains across two senders and one consumer, asserting the
// two mailbox-ordering properties (per-sender FIFO; cancel never before
// its positive) and conservation of the sharded in-flight counters.
func FuzzMailboxOrdering(f *testing.F) {
	f.Add([]byte{0x00, 0x41, 0x9f, 0x22, 0xe7})
	f.Add([]byte{0xff, 0xff, 0x00, 0x00, 0x13, 0x37, 0x55, 0xaa})
	f.Fuzz(func(t *testing.T, program []byte) {
		s := newCommsSim(t, 3)
		consumer := s.pes[2]
		senders := []*PE{s.pes[0], s.pes[1]}
		seq := [2]uint64{}
		uncancelled := [2][]uint64{} // positives posted, cancel not yet posted
		lastSeq := [2]int64{-1, -1}
		open := map[[2]uint64]bool{}
		var out []mail

		drain := func() {
			out = out[:0]
			for i := range senders {
				out = consumer.lanes[senders[i].id].drain(out)
			}
			consumer.mailReceived += int64(len(out))
			for _, m := range out {
				key := [2]uint64{uint64(m.ev.src), m.ev.seq}
				if m.cancel {
					if !open[key] {
						t.Fatalf("cancel for sender %d seq %d before its positive", m.ev.src, m.ev.seq)
					}
					delete(open, key)
				} else {
					if int64(m.ev.seq) <= lastSeq[m.ev.src] {
						t.Fatalf("sender %d FIFO broken at seq %d", m.ev.src, m.ev.seq)
					}
					lastSeq[m.ev.src] = int64(m.ev.seq)
					open[key] = true
				}
			}
		}

		for _, op := range program {
			sn := int(op >> 7)
			src := senders[sn]
			switch (op >> 4) & 7 {
			case 0, 1, 2: // post a positive
				src.post(consumer, mail{ev: &Event{src: LPID(sn), seq: seq[sn]}})
				uncancelled[sn] = append(uncancelled[sn], seq[sn])
				seq[sn]++
			case 3, 4: // cancel an outstanding positive (same-sender rule)
				if n := len(uncancelled[sn]); n > 0 {
					pick := int(op&0x0f) % n
					cseq := uncancelled[sn][pick]
					uncancelled[sn] = append(uncancelled[sn][:pick], uncancelled[sn][pick+1:]...)
					src.post(consumer, mail{ev: &Event{src: LPID(sn), seq: cseq}, cancel: true})
				}
			case 5: // flush (possibly partial if the lane is full)
				src.flushMail(false)
			case 6: // consumer drains everything available
				drain()
			case 7: // burst: several posts then an immediate flush
				for i := 0; i < int(op&0x0f); i++ {
					src.post(consumer, mail{ev: &Event{src: LPID(sn), seq: seq[sn]}})
					uncancelled[sn] = append(uncancelled[sn], seq[sn])
					seq[sn]++
				}
				src.flushMail(false)
			}
		}
		// Drain to empty: flush any outbox remainder, then pull the lanes.
		for i := 0; i < 64; i++ {
			senders[0].flushMail(true)
			senders[1].flushMail(true)
			drain()
			if len(senders[0].outbox.dirty) == 0 && len(senders[1].outbox.dirty) == 0 &&
				!consumer.hasInbound() {
				break
			}
		}
		if sent := senders[0].mailSent + senders[1].mailSent; sent != consumer.mailReceived {
			t.Fatalf("counter conservation broken: sent %d, received %d", sent, consumer.mailReceived)
		}
	})
}

// TestStatsCommsCountersConserved runs a real mail-heavy simulation and
// cross-checks the comms counters against each other.
func TestStatsCommsCountersConserved(t *testing.T) {
	cfg := Config{NumLPs: 64, NumPEs: 4, NumKPs: 16, EndTime: 30, Seed: 7,
		BatchSize: 4, GVTInterval: 2, CheckInvariants: true}
	_, st := runStressParallel(t, cfg, 16)
	if st.MailSent != st.MailReceived {
		t.Fatalf("sent %d != received %d at termination", st.MailSent, st.MailReceived)
	}
	if st.BatchedMessages != st.MailSent {
		t.Fatalf("batched %d != sent %d: some mail bypassed the outbox", st.BatchedMessages, st.MailSent)
	}
	if st.MailSent > 0 {
		if st.BatchesFlushed == 0 || st.MailboxPeak == 0 {
			t.Fatalf("comms stats missing: %+v", st)
		}
		if st.AvgBatchSize < 1 {
			t.Fatalf("average batch size %.2f < 1 with %d messages", st.AvgBatchSize, st.MailSent)
		}
	}
}
