package core_test

import (
	"fmt"

	"repro/internal/core"
)

// counter is a minimal model: each event increments the LP's counter and
// forwards itself to the next LP until its hop budget runs out.
type counter struct{ numLPs int }

type hopMsg struct{ left int }

func (c counter) Forward(lp *core.LP, ev *core.Event) {
	lp.State = lp.State.(int) + 1
	msg := ev.Data.(*hopMsg)
	if msg.left > 0 {
		next := core.LPID((int(lp.ID) + 1) % c.numLPs)
		lp.Send(next, 1.0, &hopMsg{left: msg.left - 1})
	}
}

func (c counter) Reverse(lp *core.LP, ev *core.Event) {
	lp.State = lp.State.(int) - 1
}

// Example shows the full life cycle of a parallel simulation: configure,
// install a model, schedule bootstrap events, run, read results. The
// output is identical no matter how many PEs execute it — the kernel's
// determinism guarantee.
func Example() {
	sim, err := core.New(core.Config{NumLPs: 4, NumPEs: 2, EndTime: 100, Seed: 1})
	if err != nil {
		panic(err)
	}
	model := counter{numLPs: 4}
	sim.ForEachLP(func(lp *core.LP) {
		lp.Handler = model
		lp.State = 0
	})
	sim.Schedule(0, 0.5, &hopMsg{left: 9}) // a token making 10 stops

	stats, err := sim.Run()
	if err != nil {
		panic(err)
	}
	total := 0
	sim.ForEachLP(func(lp *core.LP) { total += lp.State.(int) })
	fmt.Printf("committed %d events, counted %d visits\n", stats.Committed, total)
	// Output: committed 10 events, counted 10 visits
}

// snapCounter is the same model without a Reverse handler: copy state
// saving does the rollback work.
type snapCounter struct{ numLPs int }

func (c snapCounter) Forward(lp *core.LP, ev *core.Event) {
	lp.State = lp.State.(int) + 1
	msg := ev.Data.(*hopMsg)
	if msg.left > 0 {
		next := core.LPID((int(lp.ID) + 1) % c.numLPs)
		lp.Send(next, 1.0, &hopMsg{left: msg.left - 1})
	}
}
func (c snapCounter) Snapshot(lp *core.LP) any      { return lp.State }
func (c snapCounter) Restore(lp *core.LP, snap any) { lp.State = snap }

// ExampleStateSaving runs the same simulation with GTW-style copy state
// saving instead of reverse computation: write Forward plus Snapshot and
// Restore, and wrap with StateSaving.
func ExampleStateSaving() {
	sim, err := core.New(core.Config{NumLPs: 4, NumPEs: 2, EndTime: 100, Seed: 1})
	if err != nil {
		panic(err)
	}
	model := snapCounter{numLPs: 4}
	sim.ForEachLP(func(lp *core.LP) {
		lp.Handler = core.StateSaving(model)
		lp.State = 0
	})
	sim.Schedule(0, 0.5, &hopMsg{left: 9})

	if _, err := sim.Run(); err != nil {
		panic(err)
	}
	total := 0
	sim.ForEachLP(func(lp *core.LP) { total += lp.State.(int) })
	fmt.Printf("counted %d visits\n", total)
	// Output: counted 10 visits
}

// ExampleNewSequential shows the reference engine: the same setup code
// works because both engines implement core.Host.
func ExampleNewSequential() {
	seq, err := core.NewSequential(core.Config{NumLPs: 4, EndTime: 100, Seed: 1})
	if err != nil {
		panic(err)
	}
	model := counter{numLPs: 4}
	seq.ForEachLP(func(lp *core.LP) {
		lp.Handler = model
		lp.State = 0
	})
	seq.Schedule(0, 0.5, &hopMsg{left: 9})
	stats, err := seq.Run()
	if err != nil {
		panic(err)
	}
	fmt.Printf("committed %d events\n", stats.Committed)
	// Output: committed 10 events
}
