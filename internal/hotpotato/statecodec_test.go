package hotpotato

import (
	"reflect"
	"testing"
)

// TestStateCodecRoundTrip fills every Router field with distinct values and
// requires decode(encode(r)) to reproduce the struct exactly — the codec
// must cover everything trace.StateHash renders, or resumed fingerprints
// can never match.
func TestStateCodecRoundTrip(t *testing.T) {
	r := &Router{
		claim:      [4]int64{-1, 7, 8, 9},
		links:      0xb,
		isInjector: true,
		queue:      []int64{3, 5, 5, 9},
		qBase:      2,
		qHead:      4,
	}
	// Give every stats field a distinct nonzero value via the wire-order
	// enumeration itself.
	for i, f := range statsFields(&r.stats) {
		*f = int64(100 + i)
	}
	enc, err := stateCodec{}.EncodeState(nil, r)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	got := &Router{}
	if err := (stateCodec{}).DecodeState(enc, got); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(got, r) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, r)
	}
	// Truncations must error, never panic.
	for i := 0; i < len(enc); i++ {
		if err := (stateCodec{}).DecodeState(enc[:i], &Router{}); err == nil {
			t.Fatalf("state prefix of %d/%d bytes decoded", i, len(enc))
		}
	}
}
