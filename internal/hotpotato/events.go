package hotpotato

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/routing"
	"repro/internal/topology"
)

// Kind discriminates the model's event types, mirroring the report's
// ARRIVE / ROUTE / PACKET_INJECTION_APPLICATION / HEARTBEAT.
type Kind uint8

// The event kinds.
const (
	KindArrive Kind = iota
	KindRoute
	KindInject
	KindHeartbeat
)

// String returns the event-kind name.
func (k Kind) String() string {
	switch k {
	case KindArrive:
		return "ARRIVE"
	case KindRoute:
		return "ROUTE"
	case KindInject:
		return "INJECT"
	case KindHeartbeat:
		return "HEARTBEAT"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Packet is the optical label of a packet in flight: destination and
// priority (the algorithm's routing information) plus provenance carried
// for statistics. A fresh copy travels in each hop's message, so packet
// fields never need reverse handling.
type Packet struct {
	// Dst is the destination router.
	Dst core.LPID
	// Src is the router that injected the packet.
	Src core.LPID
	// Prio is the packet's priority state.
	Prio routing.State
	// Jitter is the per-packet arrival offset in [0, 0.5), drawn at
	// creation and carried for the packet's lifetime (report §3.2.2).
	Jitter float64
	// Born is the virtual time the packet first entered the network (its
	// first arrival), the basis for delivery-time statistics.
	Born core.Time
	// CreatedStep is the step the injection application generated the
	// packet; Born−CreatedStep−1 is its injection wait.
	CreatedStep int64
	// Dist is the source-destination distance at injection.
	Dist int32
	// Hops counts link traversals so far.
	Hops int32
}

// Msg is the model's message payload. The Saved* fields are the reverse-
// computation save area: Forward records the values it overwrites and
// Reverse restores them (the Bits flags on the event record which branches
// ran).
type Msg struct {
	Kind Kind
	P    Packet

	SavedDir         topology.Direction
	SavedClaim       int64
	SavedWait        int64
	SavedWaitMax     int64
	SavedHeadAfter   int64
	SavedDeliveryMax int64
}

// Event bit-flag indices (the tw_bf analogue).
const (
	bitDelivered   = 0 // Arrive: packet was absorbed here
	bitInjected    = 1 // Inject: a packet entered the network
	bitWaitMax     = 2 // Inject: the worst-case wait was updated
	bitDeflected   = 3 // Route: the packet was deflected
	bitUpgraded    = 4 // Route: priority increased
	bitDowngraded  = 5 // Route: priority decreased
	bitGenerated   = 6 // Inject: a new packet was generated this step
	bitDeliveryMax = 7 // Arrive: the worst-case delivery time was updated
	bitDiscarded   = 8 // Inject: a self-addressed packet was dropped
)

// DistBuckets is the resolution of the per-distance delivery profile: each
// router accumulates delivery times into DistBuckets bins spanning
// [0, diameter], so the expected-delivery-vs-distance curve — the SPAA
// 2001 theorem this simulation tests — can be plotted without per-packet
// logs.
const DistBuckets = 32

// TimeBuckets is the resolution of the delivery time series: deliveries
// are also binned by *when* they completed, spanning [0, Steps), which
// exposes the warm-up transient and the steady state behind the
// aggregate Figure 3 numbers.
const TimeBuckets = 32

// Router is the per-LP state: the link claims of the current step, the
// injection application's queue, and reversible statistics counters.
type Router struct {
	// claim[d] is the last step in which output link d was claimed; a
	// link is free in step s while claim[d] != s.
	claim [topology.NumDirections]int64
	// links caches the existing directions (all four on the torus; fewer
	// at mesh boundaries).
	links topology.DirSet

	isInjector bool
	// queue holds the generation step of every packet the injection
	// application has created; entries before qHead have been injected.
	// qBase is the absolute index of queue[0] (committed entries are
	// trimmed).
	queue []int64
	qBase int64
	qHead int64

	stats RouterStats
}

// IsInjector reports whether this router runs an injection application.
func (r *Router) IsInjector() bool { return r.isInjector }

// QueueLen returns the number of packets waiting to be injected.
func (r *Router) QueueLen() int64 { return r.qBase + int64(len(r.queue)) - r.qHead }

// Stats returns the router's statistics.
func (r *Router) Stats() RouterStats { return r.stats }

// RouterStats are the per-router measurements of §3.1.5: delivery counts
// and times, injection counts and waits, plus algorithm-behaviour counters.
// Every field is reversible (counters and saved-max), so statistics survive
// optimistic execution exactly.
// RouterStats fields measuring time do so in whole synchronous steps and
// are int64 on purpose: integer accumulators make += / -= exactly
// invertible, so statistics survive any rollback sequence bit-exactly
// (floating-point accumulators are not associative and would drift after
// reverse computation).
type RouterStats struct {
	Delivered       int64
	DeliveredByPrio [routing.NumStates]int64
	TransitTotal    int64 // total delivery time, in steps
	DistTotal       int64
	HopsTotal       int64
	DeliveryMax     int64 // worst delivery time, in steps
	// Delivery profile binned by source-destination distance.
	DelivTimeByDist  [DistBuckets]int64
	DelivCountByDist [DistBuckets]int64
	// Delivery series binned by completion time.
	DelivTimeByTime  [TimeBuckets]int64
	DelivCountByTime [TimeBuckets]int64

	Routed      int64
	Deflections int64
	Upgrades    int64
	Downgrades  int64

	Generated int64
	Injected  int64
	Discarded int64 // self-addressed packets dropped at injection
	WaitTotal int64 // total injection wait, in steps
	WaitMax   int64 // worst injection wait, in steps

	Heartbeats int64
}

// step returns the synchronous time step containing virtual time t.
func step(t core.Time) int64 { return int64(math.Floor(float64(t))) }

// prioOffset staggers routing decisions within a step so higher-priority
// packets claim links first: Running at +0.5, Excited +0.6, Active +0.7,
// Sleeping +0.8 (before the per-packet jitter contribution).
func prioOffset(p routing.State) float64 {
	return float64(routing.Running-p) * prioSpacing
}

// routeTime returns the virtual time at which a packet arriving in step s
// makes its routing decision.
func routeTime(s int64, p *Packet) core.Time {
	return core.Time(float64(s) + routeBase + prioOffset(p.Prio) + p.Jitter*jitterScale)
}

// Forward implements core.Handler.
func (m *Model) Forward(lp *core.LP, ev *core.Event) {
	msg := ev.Data.(*Msg)
	switch msg.Kind {
	case KindArrive:
		m.arrive(lp, ev, msg)
	case KindRoute:
		m.route(lp, ev, msg)
	case KindInject:
		m.inject(lp, ev, msg)
	case KindHeartbeat:
		r := lp.State.(*Router)
		r.stats.Heartbeats++
		lp.SendSelf(1.0, m.newMsg(Msg{Kind: KindHeartbeat}))
	default:
		panic(fmt.Sprintf("hotpotato: unknown event kind %d", msg.Kind))
	}
}

// Reverse implements core.Handler, restoring exactly what Forward changed.
func (m *Model) Reverse(lp *core.LP, ev *core.Event) {
	msg := ev.Data.(*Msg)
	r := lp.State.(*Router)
	switch msg.Kind {
	case KindArrive:
		if ev.Bits.Test(bitDelivered) {
			transit := step(ev.RecvTime()) - step(msg.P.Born)
			r.stats.Delivered--
			r.stats.DeliveredByPrio[msg.P.Prio]--
			r.stats.TransitTotal -= transit
			r.stats.DistTotal -= int64(msg.P.Dist)
			r.stats.HopsTotal -= int64(msg.P.Hops)
			b := m.distBucket(int(msg.P.Dist))
			r.stats.DelivTimeByDist[b] -= transit
			r.stats.DelivCountByDist[b]--
			tb := m.timeBucket(step(ev.RecvTime()))
			r.stats.DelivTimeByTime[tb] -= transit
			r.stats.DelivCountByTime[tb]--
			if ev.Bits.Test(bitDeliveryMax) {
				r.stats.DeliveryMax = msg.SavedDeliveryMax
			}
		}
	case KindRoute:
		r.claim[msg.SavedDir] = msg.SavedClaim
		r.stats.Routed--
		if ev.Bits.Test(bitDeflected) {
			r.stats.Deflections--
		}
		if ev.Bits.Test(bitUpgraded) {
			r.stats.Upgrades--
		}
		if ev.Bits.Test(bitDowngraded) {
			r.stats.Downgrades--
		}
	case KindInject:
		if ev.Bits.Test(bitInjected) {
			if ev.Bits.Test(bitWaitMax) {
				r.stats.WaitMax = msg.SavedWaitMax
			}
			r.stats.WaitTotal -= msg.SavedWait
			r.stats.Injected--
			r.claim[msg.SavedDir] = msg.SavedClaim
			r.qHead--
		}
		if ev.Bits.Test(bitDiscarded) {
			r.stats.Discarded--
			r.qHead--
		}
		if ev.Bits.Test(bitGenerated) {
			r.queue = r.queue[:len(r.queue)-1]
			r.stats.Generated--
		}
	case KindHeartbeat:
		r.stats.Heartbeats--
	}
}

// Commit implements core.Committer: once an injection event is final, the
// queue entries it consumed can never be re-read, so the committed prefix
// is trimmed to keep injector memory proportional to the uncommitted
// window instead of the whole run.
func (m *Model) Commit(lp *core.LP, ev *core.Event) {
	msg := ev.Data.(*Msg)
	if msg.Kind != KindInject {
		return
	}
	r := lp.State.(*Router)
	if drop := msg.SavedHeadAfter - r.qBase; drop > 256 {
		r.queue = append([]int64(nil), r.queue[drop:]...)
		r.qBase = msg.SavedHeadAfter
	}
}

// arrive handles a packet arriving at a router: absorb it at its
// destination (unless it is Sleeping and the model runs in the
// theoretical non-absorbing mode) or schedule its routing decision.
func (m *Model) arrive(lp *core.LP, ev *core.Event, msg *Msg) {
	t := ev.RecvTime()
	p := &msg.P
	r := lp.State.(*Router)
	if p.Dst == lp.ID && (m.cfg.AbsorbSleeping || p.Prio != routing.Sleeping) {
		ev.Bits.Set(bitDelivered)
		// Both times share the packet's jitter, so the step difference is
		// the exact whole number of steps in transit.
		transit := step(t) - step(p.Born)
		r.stats.Delivered++
		r.stats.DeliveredByPrio[p.Prio]++
		r.stats.TransitTotal += transit
		r.stats.DistTotal += int64(p.Dist)
		r.stats.HopsTotal += int64(p.Hops)
		b := m.distBucket(int(p.Dist))
		r.stats.DelivTimeByDist[b] += transit
		r.stats.DelivCountByDist[b]++
		tb := m.timeBucket(step(t))
		r.stats.DelivTimeByTime[tb] += transit
		r.stats.DelivCountByTime[tb]++
		if transit > r.stats.DeliveryMax {
			ev.Bits.Set(bitDeliveryMax)
			msg.SavedDeliveryMax = r.stats.DeliveryMax
			r.stats.DeliveryMax = transit
		}
		return
	}
	s := step(t)
	lp.SendSelf(routeTime(s, p)-t, m.newMsg(Msg{Kind: KindRoute, P: *p}))
}

// route makes one routing decision: build the free/good context, ask the
// policy, claim the link, and forward the packet to the neighbour for the
// next step.
func (m *Model) route(lp *core.LP, ev *core.Event, msg *Msg) {
	t := ev.RecvTime()
	s := step(t)
	p := &msg.P
	r := lp.State.(*Router)
	self := int(lp.ID)

	free := freeLinks(r, s)
	if free.Empty() {
		panic(fmt.Sprintf("hotpotato: router %d has no free link in step %d (conservation violated)", self, s))
	}
	ctx := routing.Ctx{
		Prio:    p.Prio,
		Free:    free,
		Good:    m.net.GoodDirs(self, int(p.Dst)),
		HomeRun: m.net.HomeRunDir(self, int(p.Dst)),
		N:       m.cfg.N,
		Rand:    lp.Rand,
		RandInt: lp.RandInt,
	}
	dec := m.cfg.Policy.Route(&ctx)
	if !free.Has(dec.Dir) {
		panic(fmt.Sprintf("hotpotato: policy %s chose busy/absent link %v", m.cfg.Policy.Name(), dec.Dir))
	}

	msg.SavedDir = dec.Dir
	msg.SavedClaim = r.claim[dec.Dir]
	r.claim[dec.Dir] = s

	r.stats.Routed++
	if dec.Deflected {
		ev.Bits.Set(bitDeflected)
		r.stats.Deflections++
	}
	switch {
	case dec.NewPrio > p.Prio:
		ev.Bits.Set(bitUpgraded)
		r.stats.Upgrades++
	case dec.NewPrio < p.Prio:
		ev.Bits.Set(bitDowngraded)
		r.stats.Downgrades++
	}

	next := m.net.Neighbor(self, dec.Dir)
	np := *p
	np.Prio = dec.NewPrio
	np.Hops++
	arrival := core.Time(float64(s+1) + p.Jitter)
	lp.Send(core.LPID(next), arrival-t, m.newMsg(Msg{Kind: KindArrive, P: np}))
}

// inject runs one step of the injection application: generate a packet,
// and if the router has a free link, put the oldest waiting packet on the
// wire (the report: "a packet can only be injected when there is a free
// link at that router").
func (m *Model) inject(lp *core.LP, ev *core.Event, msg *Msg) {
	t := ev.RecvTime()
	s := step(t)
	r := lp.State.(*Router)

	if m.cfg.InjectionProb >= 1 || lp.Rand() < m.cfg.InjectionProb {
		ev.Bits.Set(bitGenerated)
		r.queue = append(r.queue, s)
		r.stats.Generated++
	}

	free := freeLinks(r, s)
	if !free.Empty() && r.qHead < r.qBase+int64(len(r.queue)) {
		dst := core.LPID(m.cfg.Traffic.Dest(m.net, int(lp.ID), lp.RandInt))
		if dst == lp.ID {
			// A deterministic pattern addressed the packet to its own
			// source; drop it rather than wire it (transpose diagonal etc.).
			ev.Bits.Set(bitDiscarded)
			r.qHead++
			r.stats.Discarded++
			msg.SavedHeadAfter = r.qHead
			lp.SendSelf(1.0, m.newMsg(Msg{Kind: KindInject}))
			return
		}
		ev.Bits.Set(bitInjected)
		born := r.queue[r.qHead-r.qBase]
		r.qHead++

		jitter := lp.Rand() * maxJitter
		good := m.net.GoodDirs(int(lp.ID), int(dst))
		var dir topology.Direction
		if fg := free & good; !fg.Empty() {
			dir = fg.Nth(int(lp.RandInt(0, int64(fg.Count())-1)))
		} else {
			dir = free.Nth(int(lp.RandInt(0, int64(free.Count())-1)))
		}
		msg.SavedDir = dir
		msg.SavedClaim = r.claim[dir]
		r.claim[dir] = s

		arrival := core.Time(float64(s+1) + jitter)
		pkt := Packet{
			Dst: dst,
			Src: lp.ID,
			// The packet leaves its source during step s and has already
			// traversed one link when it first arrives, so it is born in
			// step s with one hop on the meter — keeping transit equal to
			// links traversed (plus deflection detours) for injected and
			// initial-fill packets alike.
			Prio:        routing.Sleeping,
			Jitter:      jitter,
			Born:        core.Time(float64(s)) + core.Time(jitter),
			Hops:        1,
			CreatedStep: born,
			Dist:        int32(m.net.Dist(int(lp.ID), int(dst))),
		}
		wait := s - born
		msg.SavedWait = wait
		r.stats.Injected++
		r.stats.WaitTotal += wait
		if wait > r.stats.WaitMax {
			ev.Bits.Set(bitWaitMax)
			msg.SavedWaitMax = r.stats.WaitMax
			r.stats.WaitMax = wait
		}
		lp.Send(core.LPID(m.net.Neighbor(int(lp.ID), dir)), arrival-t, m.newMsg(Msg{Kind: KindArrive, P: pkt}))
	}
	msg.SavedHeadAfter = r.qHead

	// Next attempt, one step later.
	lp.SendSelf(1.0, m.newMsg(Msg{Kind: KindInject}))
}

// distBucket maps a source-destination distance onto the delivery
// profile's bins.
func (m *Model) distBucket(dist int) int {
	b := dist * DistBuckets / (m.maxDist + 1)
	if b >= DistBuckets {
		b = DistBuckets - 1
	}
	return b
}

// timeBucket maps a completion step onto the time-series bins.
func (m *Model) timeBucket(s int64) int {
	b := int(s * TimeBuckets / int64(m.cfg.Steps))
	if b >= TimeBuckets {
		b = TimeBuckets - 1
	}
	if b < 0 {
		b = 0
	}
	return b
}

// BucketStep returns the representative (central) step of a time-series
// bin.
func (m *Model) BucketStep(bucket int) float64 {
	width := float64(m.cfg.Steps) / TimeBuckets
	return (float64(bucket) + 0.5) * width
}

// BucketDistance returns the representative (central) distance of a
// profile bin — the inverse of distBucket for presentation.
func (m *Model) BucketDistance(bucket int) float64 {
	width := float64(m.maxDist+1) / DistBuckets
	return (float64(bucket) + 0.5) * width
}

// freeLinks returns the router's links not yet claimed in step s.
func freeLinks(r *Router, s int64) topology.DirSet {
	free := r.links
	for d := topology.Direction(0); d < topology.NumDirections; d++ {
		if free.Has(d) && r.claim[d] == s {
			free = free.Remove(d)
		}
	}
	return free
}
