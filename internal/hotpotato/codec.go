package hotpotato

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/replay"
	"repro/internal/routing"
)

// CodecName is the registered replay codec for hot-potato payloads.
const CodecName = "hotpotato.v1"

func init() {
	replay.RegisterCodec(codec{})
}

// codec serialises *Msg payloads for the replay log. Only the semantic
// fields (Kind and the Packet) travel: the Saved* scratch area is reverse-
// computation state that is zero on any not-yet-executed event, which is
// the only kind a recording holds.
type codec struct{}

func (codec) Name() string { return CodecName }

func (codec) Encode(dst []byte, data any) ([]byte, error) {
	if data == nil {
		return append(dst, 0), nil
	}
	m, ok := data.(*Msg)
	if !ok {
		return nil, fmt.Errorf("hotpotato: cannot encode payload of type %T", data)
	}
	dst = append(dst, 1, byte(m.Kind), byte(m.P.Prio))
	dst = binary.AppendVarint(dst, int64(m.P.Dst))
	dst = binary.AppendVarint(dst, int64(m.P.Src))
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(m.P.Jitter))
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(float64(m.P.Born)))
	dst = binary.AppendVarint(dst, m.P.CreatedStep)
	dst = binary.AppendVarint(dst, int64(m.P.Dist))
	dst = binary.AppendVarint(dst, int64(m.P.Hops))
	return dst, nil
}

func (codec) Decode(src []byte) (any, error) {
	if len(src) == 0 {
		return nil, errors.New("hotpotato: empty payload")
	}
	if src[0] == 0 {
		if len(src) != 1 {
			return nil, errors.New("hotpotato: trailing bytes after nil payload")
		}
		return nil, nil
	}
	if src[0] != 1 || len(src) < 3 {
		return nil, errors.New("hotpotato: malformed payload")
	}
	m := &Msg{Kind: Kind(src[1]), P: Packet{Prio: routing.State(src[2])}}
	if m.Kind > KindHeartbeat {
		return nil, fmt.Errorf("hotpotato: unknown event kind %d", src[1])
	}
	if m.P.Prio > routing.Running {
		return nil, fmt.Errorf("hotpotato: unknown priority state %d", src[2])
	}
	off := 3
	varint := func() (int64, error) {
		v, n := binary.Varint(src[off:])
		if n <= 0 {
			return 0, errors.New("hotpotato: truncated payload")
		}
		off += n
		return v, nil
	}
	f64 := func() (float64, error) {
		if len(src)-off < 8 {
			return 0, errors.New("hotpotato: truncated payload")
		}
		f := math.Float64frombits(binary.LittleEndian.Uint64(src[off:]))
		off += 8
		if math.IsNaN(f) {
			return 0, errors.New("hotpotato: NaN in payload")
		}
		return f, nil
	}
	dst, err := varint()
	if err != nil {
		return nil, err
	}
	srcLP, err := varint()
	if err != nil {
		return nil, err
	}
	if dst < math.MinInt32 || dst > math.MaxInt32 || srcLP < math.MinInt32 || srcLP > math.MaxInt32 {
		return nil, errors.New("hotpotato: LP id out of range in payload")
	}
	m.P.Dst, m.P.Src = core.LPID(dst), core.LPID(srcLP)
	if m.P.Jitter, err = f64(); err != nil {
		return nil, err
	}
	born, err := f64()
	if err != nil {
		return nil, err
	}
	m.P.Born = core.Time(born)
	if m.P.CreatedStep, err = varint(); err != nil {
		return nil, err
	}
	dist, err := varint()
	if err != nil {
		return nil, err
	}
	hops, err := varint()
	if err != nil {
		return nil, err
	}
	if dist < math.MinInt32 || dist > math.MaxInt32 || hops < math.MinInt32 || hops > math.MaxInt32 {
		return nil, errors.New("hotpotato: counter out of range in payload")
	}
	m.P.Dist, m.P.Hops = int32(dist), int32(hops)
	if off != len(src) {
		return nil, errors.New("hotpotato: trailing bytes in payload")
	}
	return m, nil
}
