package hotpotato

import (
	"testing"

	"repro/internal/traffic"
)

// TestTrafficPatternsParallelEquality: every pattern must stay rollback-
// exact (pattern draw counts vary per decision, which exercises the
// kernel's dynamic draw accounting).
func TestTrafficPatternsParallelEquality(t *testing.T) {
	for _, name := range traffic.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			pattern, err := traffic.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			cfg := DefaultConfig(8)
			cfg.Traffic = pattern
			cfg.Steps = 40
			cfg.Seed = 61
			want, _ := runSeq(t, cfg)
			if want.Routed == 0 {
				t.Fatal("vacuous: nothing was routed")
			}

			pcfg := cfg
			pcfg.NumPEs = 4
			pcfg.NumKPs = 16
			pcfg.BatchSize = 4
			pcfg.GVTInterval = 2
			got, _, _ := runPar(t, pcfg)
			if got != want {
				t.Fatalf("pattern %s: totals mismatch:\npar: %+v\nseq: %+v", name, got, want)
			}
		})
	}
}

// TestTransposeDiscardsDiagonal: the N diagonal injectors must discard
// their self-addressed packets; everyone else must inject normally.
func TestTransposeDiscardsDiagonal(t *testing.T) {
	cfg := DefaultConfig(8)
	cfg.Traffic = traffic.Transpose{}
	cfg.InitialFill = 0
	cfg.Steps = 60
	cfg.Seed = 62
	totals, _ := runSeq(t, cfg)
	if totals.Discarded == 0 {
		t.Fatal("no diagonal packets were discarded")
	}
	if totals.Delivered == 0 {
		t.Fatal("transpose traffic delivered nothing")
	}
	// Every generated packet is injected, discarded, or still queued.
	if totals.Generated != totals.Injected+totals.Discarded+totals.StillQueued {
		t.Fatalf("injection accounting broken: %+v", totals)
	}
}

// TestHotspotCongestion: hotspot traffic must deliver more slowly than
// uniform traffic at the same load — the congestion the pattern exists to
// provoke.
func TestHotspotCongestion(t *testing.T) {
	base := DefaultConfig(8)
	base.Steps = 120
	base.Seed = 63
	base.InitialFill = 0
	uniform, _ := runSeq(t, base)

	hs := base
	hs.Traffic = traffic.Hotspot{Target: -1, Fraction: 0.5}
	hot, _ := runSeq(t, hs)

	if hot.AvgDelivery <= uniform.AvgDelivery {
		t.Fatalf("hotspot delivery %.2f not slower than uniform %.2f",
			hot.AvgDelivery, uniform.AvgDelivery)
	}
}

// TestNeighborTrafficIsFast: nearest-neighbour traffic must deliver in
// nearly one step with almost no deflections.
func TestNeighborTrafficIsFast(t *testing.T) {
	cfg := DefaultConfig(8)
	cfg.Traffic = traffic.Neighbor{}
	cfg.InitialFill = 0
	cfg.Steps = 60
	cfg.Seed = 64
	totals, _ := runSeq(t, cfg)
	if totals.AvgDistance < 0.99 || totals.AvgDistance > 1.01 {
		t.Fatalf("neighbour traffic distance %.3f", totals.AvgDistance)
	}
	if totals.AvgDelivery > 2.0 {
		t.Fatalf("neighbour traffic delivery %.2f steps", totals.AvgDelivery)
	}
}
