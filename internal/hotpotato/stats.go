package hotpotato

import (
	"fmt"
	"strings"

	"repro/internal/core"
)

// Totals are the system-wide aggregates of §3.1.5: every router's
// statistics folded together by the statistics-collection visitor, plus
// the derived averages the report's figures plot.
type Totals struct {
	Routers   int
	Injectors int

	// Delivery statistics (Figure 3).
	Delivered       int64
	DeliveredByPrio [4]int64
	AvgDelivery     float64 // average time steps in transit
	MaxDelivery     float64 // worst observed delivery time
	AvgDistance     float64 // average source-destination distance
	AvgHops         float64 // average links traversed
	Stretch         float64 // AvgHops / AvgDistance

	// Routing behaviour.
	Routed         int64
	Deflections    int64
	DeflectionRate float64
	Upgrades       int64
	Downgrades     int64

	// Injection statistics (Figure 4).
	Generated   int64
	Injected    int64
	Discarded   int64 // self-addressed packets dropped (deterministic patterns)
	StillQueued int64
	AvgWait     float64 // average steps a packet waited to be injected
	MaxWait     float64 // worst-case wait (report: "longest time any packet had to wait")

	Heartbeats int64
}

// Totals aggregates every router's statistics from a finished host. It is
// the model's statistics-collection function: like the report's visitor
// functor it runs once per LP after the simulation completes.
func (m *Model) Totals(h Host) Totals {
	var t Totals
	h.ForEachLP(func(lp *core.LP) {
		r := lp.State.(*Router)
		s := r.stats
		t.Routers++
		if r.isInjector {
			t.Injectors++
		}
		t.Delivered += s.Delivered
		for i, c := range s.DeliveredByPrio {
			t.DeliveredByPrio[i] += c
		}
		t.AvgDelivery += float64(s.TransitTotal)
		t.AvgDistance += float64(s.DistTotal)
		t.AvgHops += float64(s.HopsTotal)
		t.Routed += s.Routed
		t.Deflections += s.Deflections
		t.Upgrades += s.Upgrades
		t.Downgrades += s.Downgrades
		t.Generated += s.Generated
		t.Injected += s.Injected
		t.Discarded += s.Discarded
		t.AvgWait += float64(s.WaitTotal)
		if w := float64(s.WaitMax); w > t.MaxWait {
			t.MaxWait = w
		}
		if d := float64(s.DeliveryMax); d > t.MaxDelivery {
			t.MaxDelivery = d
		}
		t.Heartbeats += s.Heartbeats
	})
	t.StillQueued = t.Generated - t.Injected - t.Discarded
	if t.Delivered > 0 {
		t.AvgDelivery /= float64(t.Delivered)
		t.AvgDistance /= float64(t.Delivered)
		t.AvgHops /= float64(t.Delivered)
		if t.AvgDistance > 0 {
			t.Stretch = t.AvgHops / t.AvgDistance
		}
	}
	if t.Routed > 0 {
		t.DeflectionRate = float64(t.Deflections) / float64(t.Routed)
	}
	if t.Injected > 0 {
		t.AvgWait /= float64(t.Injected)
	}
	return t
}

// DistPoint is one bin of the delivery-time-vs-distance profile.
type DistPoint struct {
	// Distance is the representative source-destination distance of the
	// bin.
	Distance float64
	// Count is the number of packets delivered in the bin.
	Count int64
	// AvgDelivery is the mean delivery time of those packets.
	AvgDelivery float64
}

// DeliveryProfile aggregates the per-distance delivery profile across all
// routers: the empirical E[delivery | distance] curve, which the SPAA 2001
// analysis predicts is O(distance) in expectation. Empty bins are omitted.
func (m *Model) DeliveryProfile(h Host) []DistPoint {
	var times, counts [DistBuckets]int64
	h.ForEachLP(func(lp *core.LP) {
		s := &lp.State.(*Router).stats
		for b := 0; b < DistBuckets; b++ {
			times[b] += s.DelivTimeByDist[b]
			counts[b] += s.DelivCountByDist[b]
		}
	})
	var out []DistPoint
	for b := 0; b < DistBuckets; b++ {
		if counts[b] == 0 {
			continue
		}
		out = append(out, DistPoint{
			Distance:    m.BucketDistance(b),
			Count:       counts[b],
			AvgDelivery: float64(times[b]) / float64(counts[b]),
		})
	}
	return out
}

// TimePoint is one bin of the delivery time series.
type TimePoint struct {
	// Step is the representative simulation step of the bin.
	Step float64
	// Count is the number of packets delivered during the bin.
	Count int64
	// AvgDelivery is their mean delivery time.
	AvgDelivery float64
}

// TimeSeries aggregates the delivery series across routers: delivery rate
// and mean latency as functions of simulation time. It exposes the
// warm-up transient (the initial fill draining) and the steady state that
// the aggregate statistics summarise. Empty bins are omitted.
func (m *Model) TimeSeries(h Host) []TimePoint {
	var times, counts [TimeBuckets]int64
	h.ForEachLP(func(lp *core.LP) {
		s := &lp.State.(*Router).stats
		for b := 0; b < TimeBuckets; b++ {
			times[b] += s.DelivTimeByTime[b]
			counts[b] += s.DelivCountByTime[b]
		}
	})
	var out []TimePoint
	for b := 0; b < TimeBuckets; b++ {
		if counts[b] == 0 {
			continue
		}
		out = append(out, TimePoint{
			Step:        m.BucketStep(b),
			Count:       counts[b],
			AvgDelivery: float64(times[b]) / float64(counts[b]),
		})
	}
	return out
}

// String renders the totals in the spirit of the report's sample output.
func (t Totals) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "network: %d routers, %d injectors\n", t.Routers, t.Injectors)
	fmt.Fprintf(&b, "  packets delivered:   %d (sleep=%d active=%d excited=%d running=%d)\n",
		t.Delivered, t.DeliveredByPrio[0], t.DeliveredByPrio[1], t.DeliveredByPrio[2], t.DeliveredByPrio[3])
	fmt.Fprintf(&b, "  avg delivery time:   %.3f steps (max %.3f, avg distance %.3f, avg hops %.3f, stretch %.3f)\n",
		t.AvgDelivery, t.MaxDelivery, t.AvgDistance, t.AvgHops, t.Stretch)
	fmt.Fprintf(&b, "  routing decisions:   %d (%.2f%% deflected, %d upgrades, %d downgrades)\n",
		t.Routed, 100*t.DeflectionRate, t.Upgrades, t.Downgrades)
	fmt.Fprintf(&b, "  packets generated:   %d, injected %d, still queued %d\n",
		t.Generated, t.Injected, t.StillQueued)
	if t.Discarded > 0 {
		fmt.Fprintf(&b, "  self-addressed:      %d discarded\n", t.Discarded)
	}
	fmt.Fprintf(&b, "  avg wait to inject:  %.3f steps (max %.0f)\n", t.AvgWait, t.MaxWait)
	if t.Heartbeats > 0 {
		fmt.Fprintf(&b, "  heartbeats:          %d\n", t.Heartbeats)
	}
	return b.String()
}
