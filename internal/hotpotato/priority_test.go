package hotpotato

import (
	"testing"

	"repro/internal/routing"
	"repro/internal/topology"
)

// This file pins the Busch policy's priority-state machine (report §1.2.4)
// transition by transition, with link geometry taken from a real 8×8 torus
// rather than hand-built direction sets, and with scripted randomness so
// each probabilistic branch is forced both ways.
//
// Probability reminders at n=8: a routed Sleeping packet upgrades with
// probability 1/(24n) = 1/192; a deflected Active packet upgrades with
// probability 1/(16n) = 1/128.

// scriptedCtx builds a Ctx for the torus hop from→to with deterministic
// randomness: rand is returned by every Rand() call, and RandInt always
// picks index pickIdx (clamped to the requested range).
func scriptedCtx(t *testing.T, net topology.Torus, from, to int, prio routing.State, free topology.DirSet, rand float64, pickIdx int64) *routing.Ctx {
	t.Helper()
	return &routing.Ctx{
		Prio:    prio,
		Free:    free,
		Good:    net.GoodDirs(from, to),
		HomeRun: net.HomeRunDir(from, to),
		N:       net.N(),
		Rand:    func() float64 { return rand },
		RandInt: func(lo, hi int64) int64 {
			if pickIdx < lo || pickIdx > hi {
				return lo
			}
			return pickIdx
		},
	}
}

func TestBuschPriorityTransitions(t *testing.T) {
	net := topology.NewTorus(8)
	policy := routing.NewBusch()
	all := net.Links(0) // torus: all four links exist everywhere

	// Geometry on the 8×8 torus, IDs are row*8+col:
	//   (0,0)→(0,3): east-only traffic — Good = {East}, HomeRun = East.
	//   (0,0)→(2,2): Good = {East, South}, HomeRun = East (row-first).
	const (
		origin   = 0
		eastward = 3  // (0, 3)
		diagonal = 18 // (2, 2)
	)
	east := net.HomeRunDir(origin, eastward)
	if east != topology.East {
		t.Fatalf("geometry sanity: home-run (0,0)→(0,3) = %v, want East", east)
	}

	// noGood blocks every good link for the diagonal destination but keeps
	// the network's other links free, forcing a deflection.
	noGood := all.Remove(topology.East).Remove(topology.South)

	cases := []struct {
		name string
		to   int
		prio routing.State
		free topology.DirSet
		rand float64 // scripted Rand() value
		pick int64   // scripted RandInt() index

		wantPrio      routing.State
		wantDeflected bool
		// wantDirIn, when non-empty, asserts the chosen link's membership.
		wantDirIn topology.DirSet
		// wantDir, when set (not None), asserts the exact link.
		wantDir topology.Direction
	}{
		{
			name: "sleeping advances and stays sleeping above 1/24n",
			to:   eastward, prio: routing.Sleeping, free: all, rand: 1.0 / 192 * 1.01,
			wantPrio: routing.Sleeping, wantDir: topology.East,
		},
		{
			name: "sleeping upgrades to active below 1/24n",
			to:   eastward, prio: routing.Sleeping, free: all, rand: 1.0 / 192 * 0.99,
			wantPrio: routing.Active, wantDir: topology.East,
		},
		{
			name: "sleeping deflected still rolls the upgrade die",
			to:   diagonal, prio: routing.Sleeping, free: noGood, rand: 1.0 / 192 * 0.99,
			wantPrio: routing.Active, wantDeflected: true, wantDirIn: noGood,
		},
		{
			name: "active advancing never upgrades",
			to:   eastward, prio: routing.Active, free: all, rand: 0,
			wantPrio: routing.Active, wantDir: topology.East,
		},
		{
			name: "active deflected upgrades to excited below 1/16n",
			to:   diagonal, prio: routing.Active, free: noGood, rand: 1.0 / 128 * 0.99,
			wantPrio: routing.Excited, wantDeflected: true, wantDirIn: noGood,
		},
		{
			name: "active deflected stays active above 1/16n",
			to:   diagonal, prio: routing.Active, free: noGood, rand: 1.0 / 128 * 1.01,
			wantPrio: routing.Active, wantDeflected: true, wantDirIn: noGood,
		},
		{
			name: "excited granted home-run becomes running",
			to:   diagonal, prio: routing.Excited, free: all,
			wantPrio: routing.Running, wantDir: topology.East, // row-first
		},
		{
			name: "excited denied home-run falls back to active",
			to:   diagonal, prio: routing.Excited, free: noGood,
			wantPrio: routing.Active, wantDeflected: true, wantDirIn: noGood,
		},
		{
			name: "running keeps its home-run link",
			to:   diagonal, prio: routing.Running, free: all,
			wantPrio: routing.Running, wantDir: topology.East,
		},
		{
			name: "running loses its link and drops to active",
			to:   diagonal, prio: routing.Running, free: noGood,
			wantPrio: routing.Active, wantDeflected: true, wantDirIn: noGood,
		},
		{
			name: "running grabs the bend link south after turning",
			to:   8, // (1, 0): same column, HomeRun = South
			prio: routing.Running, free: all,
			wantPrio: routing.Running, wantDir: topology.South,
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			ctx := scriptedCtx(t, net, origin, tc.to, tc.prio, tc.free, tc.rand, tc.pick)
			d := policy.Route(ctx)
			if d.NewPrio != tc.wantPrio {
				t.Errorf("NewPrio = %v, want %v", d.NewPrio, tc.wantPrio)
			}
			if d.Deflected != tc.wantDeflected {
				t.Errorf("Deflected = %v, want %v", d.Deflected, tc.wantDeflected)
			}
			if tc.wantDir != topology.None && d.Dir != tc.wantDir {
				t.Errorf("Dir = %v, want %v", d.Dir, tc.wantDir)
			}
			if !tc.wantDirIn.Empty() && !tc.wantDirIn.Has(d.Dir) {
				t.Errorf("Dir = %v, want a member of %v", d.Dir, tc.wantDirIn)
			}
			if !ctx.Free.Has(d.Dir) {
				t.Errorf("Dir = %v is not free", d.Dir)
			}
		})
	}
}

// TestBuschTieBreaking pins how ties are broken when several links would
// do: among free∩good links when advancing, and among all free links when
// deflecting, the policy takes exactly the RandInt-selected member — every
// candidate is reachable and the choice is uniform in the scripted index.
func TestBuschTieBreaking(t *testing.T) {
	net := topology.NewTorus(8)
	policy := routing.NewBusch()
	all := net.Links(0)

	const origin = 0
	t.Run("advance ties among free good links", func(t *testing.T) {
		// (0,0)→(2,2): East and South both shorten the path.
		const diagonal = 18
		good := net.GoodDirs(origin, diagonal)
		if good.Count() != 2 {
			t.Fatalf("geometry sanity: %d good dirs, want 2", good.Count())
		}
		seen := make(map[topology.Direction]bool)
		for k := int64(0); k < int64(good.Count()); k++ {
			ctx := scriptedCtx(t, net, origin, diagonal, routing.Active, all, 1, k)
			d := policy.Route(ctx)
			if d.Deflected {
				t.Fatalf("pick %d: deflected with good links free", k)
			}
			if !good.Has(d.Dir) {
				t.Fatalf("pick %d: dir %v not good", k, d.Dir)
			}
			if d.Dir != good.Nth(int(k)) {
				t.Errorf("pick %d: dir %v, want the %d-th good link %v", k, d.Dir, k, good.Nth(int(k)))
			}
			seen[d.Dir] = true
		}
		if len(seen) != good.Count() {
			t.Errorf("only %d of %d good links reachable", len(seen), good.Count())
		}
	})

	t.Run("half-ring ties count both directions as good", func(t *testing.T) {
		// (0,0)→(0,4) on an 8-ring: distance 4 either way, so East and
		// West both strictly reduce the remaining torus distance.
		const opposite = 4
		good := net.GoodDirs(origin, opposite)
		if !good.Has(topology.East) || !good.Has(topology.West) {
			t.Fatalf("half-ring good dirs = %v, want East and West", good)
		}
		// The home-run path must still prefer the canonical direction
		// (East wins row ties).
		if hr := net.HomeRunDir(origin, opposite); hr != topology.East {
			t.Errorf("half-ring home-run = %v, want East", hr)
		}
	})

	t.Run("deflection ties among all free links", func(t *testing.T) {
		// Eastbound packet with its only good link busy: all three
		// remaining links are deflection candidates.
		const eastward = 3
		free := all.Remove(topology.East)
		for k := int64(0); k < int64(free.Count()); k++ {
			ctx := scriptedCtx(t, net, origin, eastward, routing.Active, free, 1, k)
			d := policy.Route(ctx)
			if !d.Deflected {
				t.Fatalf("pick %d: not deflected without good links", k)
			}
			if d.Dir != free.Nth(int(k)) {
				t.Errorf("pick %d: dir %v, want the %d-th free link %v", k, d.Dir, k, free.Nth(int(k)))
			}
		}
	})
}
