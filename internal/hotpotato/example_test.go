package hotpotato_test

import (
	"fmt"

	"repro/internal/hotpotato"
	"repro/internal/routing"
	"repro/internal/traffic"
)

// Example runs the report's standard scenario: a saturated 8×8 torus under
// the Busch–Herlihy–Wattenhofer algorithm. The printed statistics are a
// deterministic function of the seed — golden values guarded by this
// example — regardless of how many PEs execute the run.
func Example() {
	cfg := hotpotato.DefaultConfig(8)
	cfg.Steps = 50
	cfg.Seed = 2002
	cfg.NumPEs = 2

	sim, model, err := hotpotato.Build(cfg)
	if err != nil {
		panic(err)
	}
	if _, err := sim.Run(); err != nil {
		panic(err)
	}
	t := model.Totals(sim)
	fmt.Printf("delivered %d packets, avg %.3f steps over avg distance %.3f\n",
		t.Delivered, t.AvgDelivery, t.AvgDistance)
	// Output: delivered 1633 packets, avg 6.462 steps over avg distance 4.019
}

// Example_custom configures the knobs a study would sweep: topology,
// routing policy, traffic pattern, load, and the theoretical
// (non-absorbing) mode.
func Example_custom() {
	policy, _ := routing.ByName("greedy")
	pattern, _ := traffic.ByName("tornado")
	cfg := hotpotato.Config{
		N:               8,
		Topology:        "torus",
		Policy:          policy,
		Traffic:         pattern,
		InjectorPercent: 50,
		InjectionProb:   0.5,
		AbsorbSleeping:  true,
		InitialFill:     2,
		Steps:           40,
		Seed:            7,
	}
	seq, model, err := hotpotato.BuildSequential(cfg)
	if err != nil {
		panic(err)
	}
	if _, err := seq.Run(); err != nil {
		panic(err)
	}
	t := model.Totals(seq)
	fmt.Printf("tornado traffic: %d delivered, %.1f%% deflected\n",
		t.Delivered, 100*t.DeflectionRate)
	// Output: tornado traffic: 621 delivered, 16.1% deflected
}
