// Package hotpotato implements the dynamic hot-potato (deflection) routing
// simulation of the report: an N×N bufferless synchronous network — the
// model of an optical label-switching network — whose routers run the
// Busch–Herlihy–Wattenhofer algorithm (or a baseline policy), with
// continuous packet injection, on top of the optimistic Time Warp kernel
// in internal/core.
//
// # Time structure
//
// The network is synchronous: virtual time advances in unit steps and a
// packet traverses one link per step. Within step s the model lays events
// out at fixed sub-step offsets:
//
//	s + jitter         packet arrivals (jitter ∈ [0, 0.5), fixed per packet)
//	s + 0.5 + b + j/10 routing decisions, b = 0/0.1/0.2/0.3 for
//	                   Running/Excited/Active/Sleeping — higher priority
//	                   packets are routed first, exactly the report's
//	                   staggered ROUTE timestamps
//	s + 0.92           injection attempts (after all in-network routing)
//	s + 0.99           optional heartbeat
//
// The per-packet jitter is the report's §3.2.2 randomisation: it removes
// simultaneous routing decisions at a router, which — combined with the
// kernel's total event order — makes parallel runs deterministic and equal
// to sequential runs.
//
// # Reverse computation
//
// Every handler saves the few words it overwrites into its own message
// struct (the ROSS idiom) and the Reverse handlers restore them; random
// draws and sent events are rewound by the kernel.
package hotpotato

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/routing"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// Sub-step offsets of the synchronous schedule.
const (
	routeBase   = 0.5  // routing decisions start here
	prioSpacing = 0.1  // one band per priority state
	jitterScale = 0.1  // jitter contribution inside a band: [0, 0.05)
	injectAt    = 0.92 // injection attempts
	heartbeatAt = 0.99 // optional heartbeat
	maxJitter   = 0.5  // packet jitter range [0, maxJitter)
)

// Config parameterises one hot-potato simulation, mirroring the report's
// input parameters (§3.3.1).
type Config struct {
	// N is the network side length (the report's first parameter).
	N int
	// Topology selects "torus" (default, the simulated topology) or
	// "mesh" (the topology of the theoretical analysis).
	Topology string
	// Policy is the routing policy; defaults to the paper's algorithm.
	Policy routing.Policy
	// Traffic selects the destination pattern for injected packets and
	// the initial fill; defaults to the report's uniform random traffic.
	// Packets a deterministic pattern addresses to their own source
	// (e.g. the transpose diagonal) are discarded at injection and
	// counted in Totals.Discarded.
	Traffic traffic.Pattern
	// InjectorPercent is the report's probability_i: the percentage
	// (0–100) of routers that run a packet-injection application. Each
	// router is an injector independently with this probability. 0 gives
	// the static ("one-shot") analysis.
	InjectorPercent float64
	// InjectionProb is the probability that an injector generates a new
	// packet in a given step. 1 (the default; a zero value is treated as
	// 1) is the report's saturating one-packet-per-step application;
	// lower values model the "lower speed users" the dynamic analysis
	// accommodates (§1.2.2–1.2.3 of the report).
	InjectionProb float64
	// AbsorbSleeping is the report's absorb_sleeping_packet flag: when
	// true (the practical mode, the default via DefaultConfig) routers
	// absorb any packet that reaches its destination; when false Sleeping
	// packets pass through their destination, matching the assumptions of
	// the theoretical model in the SPAA 2001 paper.
	AbsorbSleeping bool
	// InitialFill is the number of packets each router holds at time
	// zero; the report initialises the network full at four per router.
	InitialFill int
	// Steps is the simulated duration in time steps (SIMULATION_DURATION).
	Steps int
	// Heartbeat schedules the optional per-step administrative event at
	// every router; the report disables it when other events subsume the
	// work, and so does DefaultConfig. It exists for the event-overhead
	// ablation.
	Heartbeat bool
	// Seed selects the random universe.
	Seed uint64

	// Kernel passthrough (see core.Config). Zero values take the kernel
	// defaults; NumPEs=1 with the Sequential build gives the report's
	// sequential mode.
	NumPEs      int
	NumKPs      int
	BatchSize   int
	GVTInterval int
	GVTMode     string
	Queue       string
	MaxOptimism core.Time
	// AdaptiveOptimism enables the kernel's rollback-efficiency throttle
	// (see core.Config.AdaptiveOptimism).
	AdaptiveOptimism bool
	// OnGVT, when set, receives every GVT estimate — progress reporting
	// for long runs (see core.Config.OnGVT for the calling context).
	OnGVT func(core.Time)
	// CheckInvariants enables the kernel's paranoid mode (see
	// core.Config.CheckInvariants).
	CheckInvariants bool
	// Faults arms the kernel's fault injectors (see core.Faults); only the
	// optimistic Build honours it.
	Faults *core.Faults
	// KPOfLP / PEOfKP optionally override the kernel's locality-preserving
	// LP→KP→PE placement (see core.Config). The comms benchmarks use a
	// striped PEOfKP so nearly every packet hop crosses a PE boundary —
	// the adversarial placement for the mailbox layer.
	KPOfLP func(lp int) int
	PEOfKP func(kp int) int
}

// DefaultConfig returns the report's standard configuration for an N×N
// torus: network initialised full, absorbing destinations, 100 steps.
func DefaultConfig(n int) Config {
	return Config{
		N:               n,
		Topology:        "torus",
		Policy:          routing.NewBusch(),
		InjectorPercent: 100,
		InjectionProb:   1,
		AbsorbSleeping:  true,
		InitialFill:     4,
		Steps:           100,
	}
}

func (cfg *Config) validate() error {
	if cfg.N < 2 {
		return errors.New("hotpotato: N must be at least 2")
	}
	if cfg.InjectorPercent < 0 || cfg.InjectorPercent > 100 {
		return errors.New("hotpotato: InjectorPercent must be in [0, 100]")
	}
	if cfg.InjectionProb == 0 {
		cfg.InjectionProb = 1
	}
	if cfg.InjectionProb < 0 || cfg.InjectionProb > 1 {
		return errors.New("hotpotato: InjectionProb must be in (0, 1]")
	}
	if cfg.InitialFill < 0 || cfg.InitialFill > 4 {
		return errors.New("hotpotato: InitialFill must be in [0, 4] (a router has 4 links)")
	}
	if cfg.Steps <= 0 {
		return errors.New("hotpotato: Steps must be positive")
	}
	if cfg.Policy == nil {
		cfg.Policy = routing.NewBusch()
	}
	if cfg.Traffic == nil {
		cfg.Traffic = traffic.Uniform{}
	}
	switch cfg.Topology {
	case "", "torus", "mesh":
	default:
		return fmt.Errorf("hotpotato: unknown topology %q", cfg.Topology)
	}
	return nil
}

func (cfg *Config) network() topology.Network {
	if cfg.Topology == "mesh" {
		return topology.NewMesh(cfg.N)
	}
	return topology.NewTorus(cfg.N)
}

// Model binds a configuration to its network geometry and policy; it is
// the shared handler for every router LP.
type Model struct {
	cfg     Config
	net     topology.Network
	size    int
	maxDist int

	// msgPool recycles Msg payloads through the kernel's event lifecycle
	// (core.Recycler). It must be a sync.Pool rather than a plain free
	// list: the Model is shared by every LP, and Recycle runs on whichever
	// PE goroutine proves an event dead while other PEs are drawing
	// messages concurrently.
	msgPool sync.Pool
}

// newMsg returns a message initialised to v, reusing a recycled Msg when
// one is available.
func (m *Model) newMsg(v Msg) *Msg {
	nm, ok := m.msgPool.Get().(*Msg)
	if !ok {
		nm = new(Msg)
	}
	*nm = v
	return nm
}

// Recycle implements core.Recycler: the kernel hands back each event's
// payload once the event is committed or cancelled, and the model reissues
// it on a later send. Msg holds no pointers, so recycling also relieves
// the garbage collector of scanning dead payloads.
func (m *Model) Recycle(data any) {
	m.msgPool.Put(data.(*Msg))
}

// Host abstracts the two kernel engines (core.Simulator and
// core.Sequential) for model installation.
type Host = core.Host

// Build constructs the parallel simulator with the model installed and the
// initial events scheduled. Run the returned simulator, then read results
// with model.Totals.
func Build(cfg Config) (*core.Simulator, *Model, error) {
	if err := cfg.validate(); err != nil {
		return nil, nil, err
	}
	net := cfg.network()
	kcfg := core.Config{
		NumLPs:           net.Size(),
		NumPEs:           cfg.NumPEs,
		NumKPs:           cfg.NumKPs,
		EndTime:          core.Time(cfg.Steps),
		BatchSize:        cfg.BatchSize,
		GVTInterval:      cfg.GVTInterval,
		GVTMode:          cfg.GVTMode,
		Queue:            cfg.Queue,
		Seed:             cfg.Seed,
		MaxOptimism:      cfg.MaxOptimism,
		AdaptiveOptimism: cfg.AdaptiveOptimism,
		OnGVT:            cfg.OnGVT,
		CheckInvariants:  cfg.CheckInvariants,
		Faults:           cfg.Faults,
		KPOfLP:           cfg.KPOfLP,
		PEOfKP:           cfg.PEOfKP,
	}
	sim, err := core.New(kcfg)
	if err != nil {
		return nil, nil, err
	}
	m := newModel(cfg, net)
	m.install(sim)
	return sim, m, nil
}

// Lookahead is the model's minimum send delay in steps: an arrival with
// the maximum jitter (just under 0.5) routes at least 0.05 steps later;
// every other edge of the sub-step schedule has more slack. It is what a
// conservative executor may exploit.
const Lookahead = core.Time(0.05)

// BuildConservative constructs the window-synchronous conservative
// executor for the same model — the comparison point for the optimistic
// kernel (see the sync experiment).
func BuildConservative(cfg Config) (*core.Conservative, *Model, error) {
	if err := cfg.validate(); err != nil {
		return nil, nil, err
	}
	net := cfg.network()
	kcfg := core.Config{
		NumLPs:  net.Size(),
		NumPEs:  cfg.NumPEs,
		NumKPs:  cfg.NumKPs,
		EndTime: core.Time(cfg.Steps),
		Queue:   cfg.Queue,
		Seed:    cfg.Seed,
	}
	cons, err := core.NewConservative(kcfg, Lookahead)
	if err != nil {
		return nil, nil, err
	}
	m := newModel(cfg, net)
	m.install(cons)
	return cons, m, nil
}

// BuildSequential constructs the sequential reference simulation with an
// identical model and identical initial events.
func BuildSequential(cfg Config) (*core.Sequential, *Model, error) {
	if err := cfg.validate(); err != nil {
		return nil, nil, err
	}
	net := cfg.network()
	kcfg := core.Config{
		NumLPs:  net.Size(),
		EndTime: core.Time(cfg.Steps),
		Queue:   cfg.Queue,
		Seed:    cfg.Seed,
	}
	seq, err := core.NewSequential(kcfg)
	if err != nil {
		return nil, nil, err
	}
	m := newModel(cfg, net)
	m.install(seq)
	return seq, m, nil
}

func newModel(cfg Config, net topology.Network) *Model {
	m := &Model{cfg: cfg, net: net, size: net.Size()}
	// Network diameter: node 0 is a corner on the mesh and an arbitrary
	// node on the (vertex-transitive) torus, so its eccentricity is the
	// diameter in both cases.
	for j := 1; j < m.size; j++ {
		if d := net.Dist(0, j); d > m.maxDist {
			m.maxDist = d
		}
	}
	return m
}

// MaxDist returns the network diameter (the maximum node distance).
func (m *Model) MaxDist() int { return m.maxDist }

// Config returns the configuration the model was built with.
func (m *Model) Config() Config { return m.cfg }

// Network returns the model's topology.
func (m *Model) Network() topology.Network { return m.net }

// install attaches router state and handlers to every LP and schedules the
// bootstrap events: the initial network fill, the first injection attempt
// at each injector, and optional heartbeats. All setup randomness comes
// from a dedicated stream so both engines schedule identical bootstraps.
func (m *Model) install(h Host) {
	setup := rng.NewStream(m.cfg.Seed ^ 0xD1B54A32D192ED03)
	injectorThreshold := m.cfg.InjectorPercent / 100
	h.ForEachLP(func(lp *core.LP) {
		r := &Router{links: m.net.Links(int(lp.ID))}
		for d := range r.claim {
			r.claim[d] = -1
		}
		r.isInjector = injectorThreshold > 0 && setup.Uniform() < injectorThreshold
		lp.Handler = m
		lp.State = r
	})

	for id := 0; id < m.size; id++ {
		// A router can route at most one packet per link per step, so the
		// initial fill is clamped to the node degree (relevant at mesh
		// boundaries; a no-op on the torus).
		fill := m.cfg.InitialFill
		if deg := m.net.Links(id).Count(); fill > deg {
			fill = deg
		}
		for p := 0; p < fill; p++ {
			dst := core.LPID(m.cfg.Traffic.Dest(m.net, id, setup.Integer))
			if int(dst) == id {
				continue // deterministic pattern addressing itself
			}
			jitter := setup.Uniform() * maxJitter
			arrival := core.Time(jitter)
			pkt := Packet{
				Dst:    dst,
				Src:    core.LPID(id),
				Prio:   routing.Sleeping,
				Jitter: jitter,
				Born:   arrival,
				Dist:   int32(m.net.Dist(id, int(dst))),
			}
			h.Schedule(core.LPID(id), arrival, m.newMsg(Msg{Kind: KindArrive, P: pkt}))
		}
	}
	h.ForEachLP(func(lp *core.LP) {
		if lp.State.(*Router).isInjector {
			h.Schedule(lp.ID, injectAt, m.newMsg(Msg{Kind: KindInject}))
		}
		if m.cfg.Heartbeat {
			h.Schedule(lp.ID, heartbeatAt, m.newMsg(Msg{Kind: KindHeartbeat}))
		}
	})
}
