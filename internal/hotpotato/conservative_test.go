package hotpotato

import "testing"

// TestConservativeMatchesSequential: the conservative engine must produce
// the identical hot-potato history — three engines, one result.
func TestConservativeMatchesSequential(t *testing.T) {
	cfg := DefaultConfig(8)
	cfg.Steps = 40
	cfg.Seed = 51
	want, wantStats := runSeq(t, cfg)

	for _, pes := range []int{1, 2, 4} {
		ccfg := cfg
		ccfg.NumPEs = pes
		cons, m, err := BuildConservative(ccfg)
		if err != nil {
			t.Fatal(err)
		}
		ks, err := cons.Run()
		if err != nil {
			t.Fatal(err)
		}
		got := m.Totals(cons)
		if got != want {
			t.Fatalf("pes=%d: conservative totals differ:\ncons: %+v\nseq:  %+v", pes, got, want)
		}
		if ks.GVTRounds == 0 {
			t.Fatalf("pes=%d: no windows executed", pes)
		}
		_ = wantStats
	}
}

// TestConservativeWindowCount: the window count must be bounded by the
// schedule's density — at most (span of activity / lookahead) windows,
// and at least one window per step (events exist in every step).
func TestConservativeWindowCount(t *testing.T) {
	cfg := DefaultConfig(6)
	cfg.Steps = 20
	cfg.Seed = 52
	cons, _, err := BuildConservative(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ks, err := cons.Run()
	if err != nil {
		t.Fatal(err)
	}
	maxWindows := int64(float64(cfg.Steps)/float64(Lookahead)) + 2
	if ks.GVTRounds < int64(cfg.Steps) || ks.GVTRounds > maxWindows {
		t.Fatalf("windows = %d, want within [%d, %d]", ks.GVTRounds, cfg.Steps, maxWindows)
	}
}
