package hotpotato

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/replay"
	"repro/internal/topology"
)

// StateCodecName is the registered replay state codec for Router state.
const StateCodecName = "hotpotato-state.v1"

func init() {
	replay.RegisterStateCodec(stateCodec{})
}

// stateCodec serialises *Router state for checkpoints. Every field travels
// — trace.StateHash renders unexported fields too, so a restored router
// must be bit-identical: link claims, the cached link set, the injection
// queue window (including its absolute base, which commit-time trimming
// advances deterministically) and the full statistics block.
type stateCodec struct{}

func (stateCodec) Name() string { return StateCodecName }

// statsFields enumerates RouterStats in a fixed wire order.
func statsFields(st *RouterStats) []*int64 {
	fields := []*int64{
		&st.Delivered, &st.TransitTotal, &st.DistTotal, &st.HopsTotal,
		&st.DeliveryMax, &st.Routed, &st.Deflections, &st.Upgrades,
		&st.Downgrades, &st.Generated, &st.Injected, &st.Discarded,
		&st.WaitTotal, &st.WaitMax, &st.Heartbeats,
	}
	for i := range st.DeliveredByPrio {
		fields = append(fields, &st.DeliveredByPrio[i])
	}
	for i := range st.DelivTimeByDist {
		fields = append(fields, &st.DelivTimeByDist[i])
	}
	for i := range st.DelivCountByDist {
		fields = append(fields, &st.DelivCountByDist[i])
	}
	for i := range st.DelivTimeByTime {
		fields = append(fields, &st.DelivTimeByTime[i])
	}
	for i := range st.DelivCountByTime {
		fields = append(fields, &st.DelivCountByTime[i])
	}
	return fields
}

func (stateCodec) EncodeState(dst []byte, state any) ([]byte, error) {
	r, ok := state.(*Router)
	if !ok {
		return nil, fmt.Errorf("hotpotato: cannot encode state of type %T", state)
	}
	for _, c := range r.claim {
		dst = binary.AppendVarint(dst, c)
	}
	dst = append(dst, byte(r.links))
	if r.isInjector {
		dst = append(dst, 1)
	} else {
		dst = append(dst, 0)
	}
	dst = binary.AppendUvarint(dst, uint64(len(r.queue)))
	for _, g := range r.queue {
		dst = binary.AppendVarint(dst, g)
	}
	dst = binary.AppendVarint(dst, r.qBase)
	dst = binary.AppendVarint(dst, r.qHead)
	for _, f := range statsFields(&r.stats) {
		dst = binary.AppendVarint(dst, *f)
	}
	return dst, nil
}

func (stateCodec) DecodeState(src []byte, state any) error {
	r, ok := state.(*Router)
	if !ok {
		return fmt.Errorf("hotpotato: cannot decode state into type %T", state)
	}
	off := 0
	varint := func() (int64, error) {
		v, n := binary.Varint(src[off:])
		if n <= 0 {
			return 0, errors.New("hotpotato: truncated state")
		}
		off += n
		return v, nil
	}
	var dec Router
	for d := range dec.claim {
		c, err := varint()
		if err != nil {
			return err
		}
		dec.claim[d] = c
	}
	if len(src)-off < 2 {
		return errors.New("hotpotato: truncated state")
	}
	links := src[off]
	if links >= 1<<topology.NumDirections {
		return fmt.Errorf("hotpotato: link set %#x out of range in state", links)
	}
	dec.links = topology.DirSet(links)
	inj := src[off+1]
	if inj > 1 {
		return fmt.Errorf("hotpotato: bad injector flag %d in state", inj)
	}
	dec.isInjector = inj == 1
	off += 2
	qLen, n := binary.Uvarint(src[off:])
	if n <= 0 {
		return errors.New("hotpotato: truncated state")
	}
	off += n
	if qLen > uint64(len(src)-off) {
		return fmt.Errorf("hotpotato: queue length %d exceeds state payload", qLen)
	}
	if qLen > 0 {
		dec.queue = make([]int64, 0, qLen)
	}
	for i := uint64(0); i < qLen; i++ {
		g, err := varint()
		if err != nil {
			return err
		}
		dec.queue = append(dec.queue, g)
	}
	var err error
	if dec.qBase, err = varint(); err != nil {
		return err
	}
	if dec.qHead, err = varint(); err != nil {
		return err
	}
	if dec.qBase < 0 || dec.qHead < dec.qBase || dec.qHead > dec.qBase+int64(len(dec.queue)) {
		return fmt.Errorf("hotpotato: inconsistent queue window base=%d head=%d len=%d",
			dec.qBase, dec.qHead, len(dec.queue))
	}
	for _, f := range statsFields(&dec.stats) {
		if *f, err = varint(); err != nil {
			return err
		}
	}
	if off != len(src) {
		return errors.New("hotpotato: trailing bytes in state")
	}
	*r = dec
	return nil
}
