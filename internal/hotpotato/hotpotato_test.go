package hotpotato

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/routing"
)

// runSeq builds and runs the sequential reference, returning totals and
// per-router stats snapshots.
func runSeq(t *testing.T, cfg Config) (Totals, []RouterStats) {
	t.Helper()
	seq, m, err := BuildSequential(cfg)
	if err != nil {
		t.Fatalf("BuildSequential: %v", err)
	}
	if _, err := seq.Run(); err != nil {
		t.Fatalf("sequential Run: %v", err)
	}
	return m.Totals(seq), snapshot(seq)
}

// runPar builds and runs the parallel kernel.
func runPar(t *testing.T, cfg Config) (Totals, []RouterStats, *core.Stats) {
	t.Helper()
	sim, m, err := Build(cfg)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	ks, err := sim.Run()
	if err != nil {
		t.Fatalf("parallel Run: %v", err)
	}
	return m.Totals(sim), snapshot(sim), ks
}

func snapshot(h Host) []RouterStats {
	out := make([]RouterStats, h.NumLPs())
	for i := range out {
		out[i] = h.LP(core.LPID(i)).State.(*Router).stats
	}
	return out
}

// TestParallelMatchesSequential is the model-level Attachment 3: the full
// hot-potato simulation must produce identical per-router statistics under
// sequential and parallel execution, for several placements.
func TestParallelMatchesSequential(t *testing.T) {
	cfg := DefaultConfig(8)
	cfg.Steps = 30
	cfg.Seed = 42
	wantTotals, want := runSeq(t, cfg)
	if wantTotals.Delivered == 0 {
		t.Fatal("sequential run delivered nothing; test is vacuous")
	}

	variants := []struct {
		pes, kps, batch, gvt int
		queue                string
	}{
		{1, 4, 0, 0, ""},
		{2, 8, 8, 4, ""},
		{4, 16, 4, 2, ""},
		{4, 4, 2, 1, "splay"},
		{8, 64, 0, 0, "heap"},
		{4, 64, 4, 2, ""}, // report-style 64 KPs
	}
	for _, v := range variants {
		v := v
		t.Run(fmt.Sprintf("pe%d_kp%d", v.pes, v.kps), func(t *testing.T) {
			pcfg := cfg
			pcfg.NumPEs, pcfg.NumKPs = v.pes, v.kps
			pcfg.BatchSize, pcfg.GVTInterval = v.batch, v.gvt
			pcfg.Queue = v.queue
			gotTotals, got, _ := runPar(t, pcfg)
			if gotTotals != wantTotals {
				t.Fatalf("totals mismatch:\nparallel:   %+v\nsequential: %+v", gotTotals, wantTotals)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("router %d stats mismatch:\nparallel:   %+v\nsequential: %+v", i, got[i], want[i])
				}
			}
		})
	}
}

// TestSoakParanoid: a longer multi-PE run with the kernel's invariant
// checker active at every GVT round — the deepest single gate in the
// suite. Skipped under -short.
func TestSoakParanoid(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	cfg := DefaultConfig(16)
	cfg.Steps = 150
	cfg.Seed = 99
	cfg.NumPEs = 4
	cfg.NumKPs = 64
	cfg.BatchSize = 8
	cfg.GVTInterval = 4
	cfg.CheckInvariants = true
	want, _ := runSeq(t, cfg)
	got, _, ks := runPar(t, cfg)
	if got != want {
		t.Fatalf("soak mismatch:\npar: %+v\nseq: %+v", got, want)
	}
	if ks.GVTRounds == 0 {
		t.Fatal("no invariant rounds ran")
	}
}

// TestMeshParallelMatchesSequential: the equality guarantee must hold on
// the theory topology too (boundary nodes have irregular degree).
func TestMeshParallelMatchesSequential(t *testing.T) {
	cfg := DefaultConfig(7)
	cfg.Topology = "mesh"
	cfg.InitialFill = 2
	cfg.Steps = 30
	cfg.Seed = 44
	want, wantStats := runSeq(t, cfg)
	if want.Delivered == 0 {
		t.Fatal("vacuous mesh test")
	}
	pcfg := cfg
	pcfg.NumPEs = 4
	pcfg.NumKPs = 8
	pcfg.BatchSize = 4
	pcfg.GVTInterval = 2
	got, gotStats, _ := runPar(t, pcfg)
	if got != want {
		t.Fatalf("mesh totals mismatch:\npar: %+v\nseq: %+v", got, want)
	}
	for i := range wantStats {
		if gotStats[i] != wantStats[i] {
			t.Fatalf("mesh router %d stats mismatch", i)
		}
	}
}

// TestStaticDrainDeliversEverything: with no injectors (the one-shot /
// static analysis) every initial packet must eventually be delivered, and
// nothing else must remain.
func TestStaticDrainDeliversEverything(t *testing.T) {
	cfg := DefaultConfig(8)
	cfg.InjectorPercent = 0
	cfg.Steps = 400 // generous horizon for a static drain on an 8×8 torus
	cfg.Seed = 1
	totals, _ := runSeq(t, cfg)
	wantPackets := int64(8 * 8 * cfg.InitialFill)
	if totals.Delivered != wantPackets {
		t.Fatalf("delivered %d of %d initial packets", totals.Delivered, wantPackets)
	}
	if totals.Generated != 0 || totals.Injected != 0 {
		t.Fatalf("static run injected packets: generated=%d injected=%d", totals.Generated, totals.Injected)
	}
	if totals.AvgDelivery < totals.AvgDistance {
		t.Fatalf("average delivery time %.3f below average distance %.3f", totals.AvgDelivery, totals.AvgDistance)
	}
}

// TestDeliveryTimeAtLeastDistance: per aggregate, hops >= distance always.
func TestDeliveryTimeAtLeastDistance(t *testing.T) {
	cfg := DefaultConfig(6)
	cfg.Steps = 60
	cfg.Seed = 5
	totals, _ := runSeq(t, cfg)
	if totals.Delivered == 0 {
		t.Fatal("nothing delivered")
	}
	if totals.AvgHops < totals.AvgDistance {
		t.Fatalf("avg hops %.3f < avg distance %.3f", totals.AvgHops, totals.AvgDistance)
	}
	if totals.Stretch < 1 {
		t.Fatalf("stretch %.3f < 1", totals.Stretch)
	}
}

// TestConservation: packets are never duplicated or lost. Everything ever
// put into the network (initial fill + injected) is either delivered or
// still in flight; since in-flight count is not directly observable, we
// bound: delivered <= initial + injected, and with a long horizon and no
// injection the bound is tight (covered by the drain test). Here we check
// the dynamic case.
func TestConservation(t *testing.T) {
	cfg := DefaultConfig(8)
	cfg.Steps = 50
	cfg.Seed = 9
	totals, _ := runSeq(t, cfg)
	entered := int64(8*8*cfg.InitialFill) + totals.Injected
	if totals.Delivered > entered {
		t.Fatalf("delivered %d > entered %d (packet duplication)", totals.Delivered, entered)
	}
	if totals.Injected > totals.Generated {
		t.Fatalf("injected %d > generated %d", totals.Injected, totals.Generated)
	}
	// Every injector generates one packet per full step it executed.
	if totals.Injectors > 0 {
		perInjector := totals.Generated / int64(totals.Injectors)
		if perInjector < int64(cfg.Steps)-2 || perInjector > int64(cfg.Steps) {
			t.Fatalf("generated %d per injector over %d steps", perInjector, cfg.Steps)
		}
	}
}

// TestAbsorbSleepingFlag: in the theoretical mode, Sleeping packets are
// not absorbed, so Sleeping deliveries must be zero and overall deliveries
// strictly fewer than in the practical mode.
func TestAbsorbSleepingFlag(t *testing.T) {
	base := DefaultConfig(8)
	base.Steps = 60
	base.Seed = 4

	practical, _ := runSeq(t, base)

	theory := base
	theory.AbsorbSleeping = false
	theoretical, _ := runSeq(t, theory)

	if theoretical.DeliveredByPrio[routing.Sleeping] != 0 {
		t.Fatalf("non-absorbing mode delivered %d sleeping packets",
			theoretical.DeliveredByPrio[routing.Sleeping])
	}
	if practical.DeliveredByPrio[routing.Sleeping] == 0 {
		t.Fatal("practical mode delivered no sleeping packets; flag test is vacuous")
	}
	if theoretical.Delivered >= practical.Delivered {
		t.Fatalf("non-absorbing delivered %d >= absorbing %d", theoretical.Delivered, practical.Delivered)
	}
}

// TestInjectionWaitGrowsWhenSaturated: in a full network with every router
// injecting, queues must build and the average wait must exceed the wait
// in a lightly loaded network.
func TestInjectionWaitGrowsWhenSaturated(t *testing.T) {
	heavy := DefaultConfig(8)
	heavy.Steps = 80
	heavy.Seed = 2
	ht, _ := runSeq(t, heavy)

	light := heavy
	light.InjectorPercent = 25
	light.InitialFill = 1
	lt, _ := runSeq(t, light)

	if ht.AvgWait <= lt.AvgWait {
		t.Fatalf("saturated wait %.3f <= light wait %.3f", ht.AvgWait, lt.AvgWait)
	}
	if ht.StillQueued == 0 {
		t.Fatal("saturated network has empty injection queues")
	}
}

// TestUpgradesHappen: over a long enough run the probabilistic state
// machine must fire: some packets upgrade, and some deliveries happen at
// priorities above Sleeping.
func TestUpgradesHappen(t *testing.T) {
	cfg := DefaultConfig(8)
	cfg.Steps = 200
	cfg.Seed = 3
	totals, _ := runSeq(t, cfg)
	if totals.Upgrades == 0 {
		t.Fatal("no priority upgrades in 200 steps of a saturated 8x8 torus")
	}
	above := totals.DeliveredByPrio[routing.Active] +
		totals.DeliveredByPrio[routing.Excited] + totals.DeliveredByPrio[routing.Running]
	if above == 0 {
		t.Fatal("no packet was delivered above Sleeping priority")
	}
}

// TestMeshTopologyRuns: the theory topology must satisfy the same basic
// invariants (the conservation panic inside route() would fire otherwise).
func TestMeshTopologyRuns(t *testing.T) {
	cfg := DefaultConfig(6)
	cfg.Topology = "mesh"
	cfg.InitialFill = 2 // corners only have two links
	cfg.Steps = 60
	cfg.Seed = 8
	totals, _ := runSeq(t, cfg)
	if totals.Delivered == 0 {
		t.Fatal("mesh run delivered nothing")
	}
}

// TestMeshInitialFillCorners: a full fill of 4 would overload degree-2
// corners in step 0; the model must reject invalid configs rather than
// panic mid-run... the fill is per-router and capped by validate at 4, so
// for the mesh the model clamps arrivals to the router degree instead.
func TestMeshInitialFillClamped(t *testing.T) {
	cfg := DefaultConfig(4)
	cfg.Topology = "mesh"
	cfg.InitialFill = 4
	cfg.Steps = 30
	cfg.Seed = 8
	// Must run without tripping the conservation panic.
	totals, _ := runSeq(t, cfg)
	if totals.Routed == 0 {
		t.Fatal("no routing happened")
	}
}

// TestHeartbeat: when enabled, each router fires one heartbeat per step.
func TestHeartbeat(t *testing.T) {
	cfg := DefaultConfig(4)
	cfg.Steps = 25
	cfg.Heartbeat = true
	cfg.InjectorPercent = 0
	cfg.InitialFill = 0
	cfg.Seed = 6
	totals, _ := runSeq(t, cfg)
	want := int64(4 * 4 * cfg.Steps)
	if totals.Heartbeats != want {
		t.Fatalf("heartbeats = %d, want %d", totals.Heartbeats, want)
	}
}

// TestPolicies: every registered policy must run the standard scenario
// without violating link conservation, and the greedy policies must
// deliver packets.
func TestPolicies(t *testing.T) {
	for _, name := range routing.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			pol, err := routing.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			cfg := DefaultConfig(8)
			cfg.Policy = pol
			cfg.Steps = 50
			cfg.Seed = 12
			totals, _ := runSeq(t, cfg)
			if totals.Delivered == 0 {
				t.Fatalf("policy %s delivered nothing", name)
			}
		})
	}
}

// TestConfigValidation covers the model's parameter guard rails.
func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{N: 1, Steps: 10},
		{N: 8, Steps: 0},
		{N: 8, Steps: 10, InjectorPercent: -1},
		{N: 8, Steps: 10, InjectorPercent: 101},
		{N: 8, Steps: 10, InitialFill: 5},
		{N: 8, Steps: 10, InitialFill: -1},
		{N: 8, Steps: 10, Topology: "hypercube"},
	}
	for i, cfg := range bad {
		if _, _, err := Build(cfg); err == nil {
			t.Errorf("case %d: Build accepted invalid config %+v", i, cfg)
		}
		if _, _, err := BuildSequential(cfg); err == nil {
			t.Errorf("case %d: BuildSequential accepted invalid config %+v", i, cfg)
		}
	}
}

// TestInjectorSelection: the probabilistic injector selection must land
// near the requested percentage and be reproducible for a fixed seed.
func TestInjectorSelection(t *testing.T) {
	cfg := DefaultConfig(16)
	cfg.InjectorPercent = 50
	cfg.Steps = 1
	cfg.Seed = 123
	totalsA, _ := runSeq(t, cfg)
	totalsB, _ := runSeq(t, cfg)
	if totalsA.Injectors != totalsB.Injectors {
		t.Fatalf("injector selection not reproducible: %d vs %d", totalsA.Injectors, totalsB.Injectors)
	}
	frac := float64(totalsA.Injectors) / 256
	if frac < 0.35 || frac > 0.65 {
		t.Fatalf("injector fraction %.2f far from 0.50", frac)
	}
}

// TestTotalsString smoke-tests the rendering.
func TestTotalsString(t *testing.T) {
	cfg := DefaultConfig(4)
	cfg.Steps = 20
	totals, _ := runSeq(t, cfg)
	if s := totals.String(); len(s) == 0 {
		t.Fatal("empty totals rendering")
	}
}
