package hotpotato

// Tests for the extension features: variable injection rates, worst-case
// delivery tracking, and the delivery-vs-distance profile.

import (
	"testing"
)

// runSeqModel is runSeq but also returning the model for profile access.
func runSeqModel(t *testing.T, cfg Config) (Totals, *Model, Host) {
	t.Helper()
	seq, m, err := BuildSequential(cfg)
	if err != nil {
		t.Fatalf("BuildSequential: %v", err)
	}
	if _, err := seq.Run(); err != nil {
		t.Fatalf("sequential Run: %v", err)
	}
	return m.Totals(seq), m, seq
}

// TestInjectionProbThrottles: a lower per-step generation probability must
// generate proportionally fewer packets and shrink the injection backlog.
func TestInjectionProbThrottles(t *testing.T) {
	base := DefaultConfig(8)
	base.Steps = 120
	base.Seed = 31
	full, _, _ := runSeqModel(t, base)

	slow := base
	slow.InjectionProb = 0.25
	quarter, _, _ := runSeqModel(t, slow)

	if quarter.Generated >= full.Generated {
		t.Fatalf("generated %d at prob 0.25 >= %d at prob 1", quarter.Generated, full.Generated)
	}
	ratio := float64(quarter.Generated) / float64(full.Generated)
	if ratio < 0.15 || ratio > 0.35 {
		t.Fatalf("generation ratio %.3f far from 0.25", ratio)
	}
	if quarter.AvgWait >= full.AvgWait {
		t.Fatalf("slower sources wait longer: %.2f vs %.2f", quarter.AvgWait, full.AvgWait)
	}
	if quarter.StillQueued >= full.StillQueued {
		t.Fatalf("slower sources have bigger backlog: %d vs %d", quarter.StillQueued, full.StillQueued)
	}
}

// TestInjectionProbDeterministicParallel: the probabilistic generation
// path must stay rollback-exact.
func TestInjectionProbDeterministicParallel(t *testing.T) {
	cfg := DefaultConfig(8)
	cfg.Steps = 60
	cfg.Seed = 33
	cfg.InjectionProb = 0.5
	want, _ := runSeq(t, cfg)

	pcfg := cfg
	pcfg.NumPEs = 4
	pcfg.NumKPs = 16
	pcfg.BatchSize = 4
	pcfg.GVTInterval = 2
	got, _, _ := runPar(t, pcfg)
	if got != want {
		t.Fatalf("totals mismatch with InjectionProb:\npar: %+v\nseq: %+v", got, want)
	}
}

// TestInjectionProbValidation: out-of-range probabilities are rejected,
// and the zero value means 1.
func TestInjectionProbValidation(t *testing.T) {
	cfg := DefaultConfig(4)
	cfg.InjectionProb = -0.1
	if _, _, err := Build(cfg); err == nil {
		t.Fatal("negative InjectionProb accepted")
	}
	cfg.InjectionProb = 1.5
	if _, _, err := Build(cfg); err == nil {
		t.Fatal("InjectionProb > 1 accepted")
	}
	cfg = DefaultConfig(4)
	cfg.InjectionProb = 0
	cfg.Steps = 10
	totals, _, _ := runSeqModel(t, cfg)
	if totals.Generated == 0 {
		t.Fatal("zero-value InjectionProb did not default to 1")
	}
}

// TestMaxDeliveryBounds: the worst delivery time must be at least the
// average and at least the observed per-bucket means.
func TestMaxDeliveryBounds(t *testing.T) {
	cfg := DefaultConfig(8)
	cfg.Steps = 100
	cfg.Seed = 35
	totals, m, h := runSeqModel(t, cfg)
	if totals.MaxDelivery < totals.AvgDelivery {
		t.Fatalf("max delivery %.2f < avg %.2f", totals.MaxDelivery, totals.AvgDelivery)
	}
	for _, p := range m.DeliveryProfile(h) {
		if p.AvgDelivery > totals.MaxDelivery {
			t.Fatalf("bucket at distance %.1f has avg %.2f above global max %.2f",
				p.Distance, p.AvgDelivery, totals.MaxDelivery)
		}
	}
}

// TestDeliveryProfileShape: the profile must cover the delivered packets
// exactly, every bucket mean must be at least its distance (a packet needs
// at least dist steps), and the far half of the network must take longer
// than the near half — the empirical E[delivery | distance] = O(distance)
// curve of the SPAA 2001 analysis.
func TestDeliveryProfileShape(t *testing.T) {
	cfg := DefaultConfig(12)
	cfg.Steps = 150
	cfg.Seed = 37
	totals, m, h := runSeqModel(t, cfg)
	profile := m.DeliveryProfile(h)
	if len(profile) == 0 {
		t.Fatal("empty profile")
	}
	var count int64
	for _, p := range profile {
		count += p.Count
		// The bucket's representative distance is a midpoint, so allow the
		// bin width as slack below it.
		width := float64(m.MaxDist()+1) / DistBuckets
		if p.AvgDelivery < p.Distance-width {
			t.Fatalf("bucket at distance %.2f has impossible mean delivery %.2f",
				p.Distance, p.AvgDelivery)
		}
	}
	if count != totals.Delivered {
		t.Fatalf("profile covers %d packets, delivered %d", count, totals.Delivered)
	}
	near, far := profile[0], profile[len(profile)-1]
	if far.AvgDelivery <= near.AvgDelivery {
		t.Fatalf("distance %.1f delivers in %.2f, not slower than %.2f at %.1f",
			far.Distance, far.AvgDelivery, near.AvgDelivery, near.Distance)
	}
}

// TestTimeSeriesShape: the delivery time series must cover all deliveries
// exactly and show the warm-up: early-bin latency (short, initial fill
// deliveries near their sources dominate... actually the earliest bins
// can only contain short transits — nothing longer than the elapsed time
// fits) must be below the steady-state latency of the last bins.
func TestTimeSeriesShape(t *testing.T) {
	cfg := DefaultConfig(12)
	cfg.Steps = 160
	cfg.Seed = 71
	totals, m, h := runSeqModel(t, cfg)
	series := m.TimeSeries(h)
	if len(series) < TimeBuckets/2 {
		t.Fatalf("series has only %d bins", len(series))
	}
	var count int64
	for i, p := range series {
		count += p.Count
		if p.AvgDelivery > float64(p.Step)+1 {
			t.Fatalf("bin at step %.1f reports delivery %.1f longer than elapsed time",
				p.Step, p.AvgDelivery)
		}
		if i > 0 && p.Step <= series[i-1].Step {
			t.Fatal("series steps not increasing")
		}
	}
	if count != totals.Delivered {
		t.Fatalf("series covers %d deliveries, total %d", count, totals.Delivered)
	}
	first, last := series[0], series[len(series)-1]
	if first.AvgDelivery >= last.AvgDelivery {
		t.Fatalf("no warm-up visible: first bin %.2f >= last bin %.2f",
			first.AvgDelivery, last.AvgDelivery)
	}
	// Steady state: the last quarter of bins should agree within a factor.
	tail := series[len(series)-TimeBuckets/4:]
	lo, hi := tail[0].AvgDelivery, tail[0].AvgDelivery
	for _, p := range tail {
		if p.AvgDelivery < lo {
			lo = p.AvgDelivery
		}
		if p.AvgDelivery > hi {
			hi = p.AvgDelivery
		}
	}
	if hi > 2*lo {
		t.Fatalf("no steady state: tail latency ranges %.2f..%.2f", lo, hi)
	}
}

// TestDistBucketRoundTrip: distBucket and BucketDistance must be
// consistent and in range across the whole diameter.
func TestDistBucketRoundTrip(t *testing.T) {
	cfg := DefaultConfig(16)
	cfg.Steps = 1
	_, m, _ := runSeqModel(t, cfg)
	for d := 0; d <= m.MaxDist(); d++ {
		b := m.distBucket(d)
		if b < 0 || b >= DistBuckets {
			t.Fatalf("distance %d maps to bucket %d", d, b)
		}
		rep := m.BucketDistance(b)
		width := float64(m.MaxDist()+1) / DistBuckets
		if float64(d) < rep-width || float64(d) > rep+width {
			t.Fatalf("distance %d not within its bucket's span (rep %.2f, width %.2f)", d, rep, width)
		}
	}
	if m.MaxDist() != 16 { // even torus diameter is N
		t.Fatalf("MaxDist = %d for a 16-torus", m.MaxDist())
	}
}
