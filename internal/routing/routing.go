// Package routing implements the per-step deflection-routing decision of
// the hot-potato model: given the links still free this time step and the
// links that bring a packet closer to its destination, choose an output
// link and the packet's next priority state.
//
// The primary policy is the dynamic algorithm of Busch, Herlihy &
// Wattenhofer ("Routing without Flow Control", SPAA 2001) as described in
// §1.2 of the report: four priority states — Sleeping, Active, Excited,
// Running — with probabilistic upgrades and one-bend home-run paths.
// Baseline policies in the spirit of the experimental literature the
// report cites (Bartzis et al., EuroPar 2000) are provided for comparison.
package routing

import (
	"fmt"

	"repro/internal/topology"
)

// State is a packet's priority state. Order matters: higher values get
// routed earlier within a time step.
type State uint8

// The four priority states of the algorithm, lowest to highest.
const (
	Sleeping State = iota
	Active
	Excited
	Running
	NumStates = 4
)

// String returns the state name.
func (s State) String() string {
	switch s {
	case Sleeping:
		return "Sleeping"
	case Active:
		return "Active"
	case Excited:
		return "Excited"
	case Running:
		return "Running"
	}
	return fmt.Sprintf("State(%d)", uint8(s))
}

// Ctx is everything a policy may consult for one routing decision. Rand
// and RandInt draw from the router LP's reversible stream; policies must
// obtain all randomness through them so decisions replay identically under
// rollback.
type Ctx struct {
	// Prio is the packet's priority state on arrival.
	Prio State
	// Free is the set of existing links not yet claimed this time step.
	// Never empty: a node has at least as many output links as packets to
	// route in a step.
	Free topology.DirSet
	// Good is the set of existing links that strictly reduce the distance
	// to the packet's destination (may be empty only at the destination,
	// which routers handle before routing).
	Good topology.DirSet
	// HomeRun is the next hop of the packet's one-bend row-first path.
	HomeRun topology.Direction
	// N is the network side length (the probabilities 1/24n and 1/16n are
	// in terms of it).
	N int
	// Rand draws a uniform variate in (0,1).
	Rand func() float64
	// RandInt draws a uniform integer in [lo, hi].
	RandInt func(lo, hi int64) int64
}

// Decision is the outcome of one routing step.
type Decision struct {
	// Dir is the chosen output link; always a member of Ctx.Free.
	Dir topology.Direction
	// Deflected reports that the packet did not advance toward its
	// destination this step.
	Deflected bool
	// NewPrio is the packet's priority state for the next step.
	NewPrio State
}

// Policy decides one routing step.
type Policy interface {
	// Name identifies the policy in reports and CLI flags.
	Name() string
	// Route picks an output link and next priority for the packet
	// described by ctx. Implementations must only consult ctx.
	Route(ctx *Ctx) Decision
}

// pick returns a uniformly random member of the set, consuming one draw.
func pick(ctx *Ctx, set topology.DirSet) topology.Direction {
	n := set.Count()
	if n == 0 {
		panic("routing: pick from empty direction set")
	}
	return set.Nth(int(ctx.RandInt(0, int64(n)-1)))
}

// greedy picks a random free good link when one exists, otherwise deflects
// to a random free link.
func greedy(ctx *Ctx) (topology.Direction, bool) {
	if fg := ctx.Free & ctx.Good; !fg.Empty() {
		return pick(ctx, fg), false
	}
	return pick(ctx, ctx.Free), true
}

// Busch is the SPAA 2001 algorithm. Rules (report §1.2.4):
//
//   - Sleeping: route to any good link; every time it is routed it
//     upgrades to Active with probability 1/(24n).
//   - Active: route to any good link; when deflected it upgrades to
//     Excited with probability 1/(16n).
//   - Excited: request the home-run link; granted → Running, deflected →
//     back to Active (Excited lasts at most one step).
//   - Running: follow the home-run path; it can only lose its link while
//     turning, to another Running packet, in which case it drops to
//     Active.
type Busch struct{}

// NewBusch returns the paper's policy.
func NewBusch() Busch { return Busch{} }

// Name implements Policy.
func (Busch) Name() string { return "busch" }

// Route implements Policy.
func (Busch) Route(ctx *Ctx) Decision {
	n := float64(ctx.N)
	switch ctx.Prio {
	case Sleeping:
		dir, deflected := greedy(ctx)
		prio := Sleeping
		if ctx.Rand() < 1.0/(24.0*n) {
			prio = Active
		}
		return Decision{Dir: dir, Deflected: deflected, NewPrio: prio}
	case Active:
		dir, deflected := greedy(ctx)
		prio := Active
		if deflected && ctx.Rand() < 1.0/(16.0*n) {
			prio = Excited
		}
		return Decision{Dir: dir, Deflected: deflected, NewPrio: prio}
	case Excited, Running:
		if ctx.Free.Has(ctx.HomeRun) {
			return Decision{Dir: ctx.HomeRun, NewPrio: Running}
		}
		return Decision{Dir: pick(ctx, ctx.Free), Deflected: true, NewPrio: Active}
	}
	panic("routing: unknown priority state")
}

// GreedyRandom is the stateless baseline: always take a uniformly random
// free good link, deflect uniformly otherwise, never change priority.
// Packets stay Sleeping forever, so it is also the natural policy for
// measuring raw greedy hot-potato behaviour without the paper's machinery.
type GreedyRandom struct{}

// NewGreedyRandom returns the stateless greedy baseline.
func NewGreedyRandom() GreedyRandom { return GreedyRandom{} }

// Name implements Policy.
func (GreedyRandom) Name() string { return "greedy" }

// Route implements Policy.
func (GreedyRandom) Route(ctx *Ctx) Decision {
	dir, deflected := greedy(ctx)
	return Decision{Dir: dir, Deflected: deflected, NewPrio: ctx.Prio}
}

// DimOrder prefers to finish the column dimension first (East/West), then
// the row dimension, deflecting to the first free link in compass order.
// It is fully deterministic — the classic dimension-order preference
// adapted to hot-potato routing.
type DimOrder struct{}

// NewDimOrder returns the dimension-order baseline.
func NewDimOrder() DimOrder { return DimOrder{} }

// Name implements Policy.
func (DimOrder) Name() string { return "dimorder" }

// Route implements Policy.
func (DimOrder) Route(ctx *Ctx) Decision {
	fg := ctx.Free & ctx.Good
	for _, d := range [...]topology.Direction{topology.East, topology.West, topology.North, topology.South} {
		if fg.Has(d) {
			return Decision{Dir: d, NewPrio: ctx.Prio}
		}
	}
	for d := topology.Direction(0); d < topology.NumDirections; d++ {
		if ctx.Free.Has(d) {
			return Decision{Dir: d, Deflected: true, NewPrio: ctx.Prio}
		}
	}
	panic("routing: no free link")
}

// MaxAdvance prefers the good link in the dimension with the most
// remaining distance, balancing progress across dimensions (in the spirit
// of the algorithms compared by Bartzis et al.). The model supplies the
// home-run direction as the row-first hint; MaxAdvance instead randomises
// among good links but biases deflections toward the link opposite a good
// one, which tends to be recoverable.
type MaxAdvance struct{}

// NewMaxAdvance returns the balanced-progress baseline.
func NewMaxAdvance() MaxAdvance { return MaxAdvance{} }

// Name implements Policy.
func (MaxAdvance) Name() string { return "maxadvance" }

// Route implements Policy.
func (MaxAdvance) Route(ctx *Ctx) Decision {
	if fg := ctx.Free & ctx.Good; !fg.Empty() {
		return Decision{Dir: pick(ctx, fg), NewPrio: ctx.Prio}
	}
	// Deflect preferring the reverse of a good direction: the packet can
	// re-attempt the same dimension next step.
	var prefer topology.DirSet
	for d := topology.Direction(0); d < topology.NumDirections; d++ {
		if ctx.Good.Has(d) && ctx.Free.Has(d.Opposite()) {
			prefer = prefer.Add(d.Opposite())
		}
	}
	if !prefer.Empty() {
		return Decision{Dir: pick(ctx, prefer), Deflected: true, NewPrio: ctx.Prio}
	}
	return Decision{Dir: pick(ctx, ctx.Free), Deflected: true, NewPrio: ctx.Prio}
}

// ByName returns the policy registered under name; the recognised names
// are "busch", "greedy", "dimorder" and "maxadvance".
func ByName(name string) (Policy, error) {
	switch name {
	case "busch", "":
		return NewBusch(), nil
	case "greedy":
		return NewGreedyRandom(), nil
	case "dimorder":
		return NewDimOrder(), nil
	case "maxadvance":
		return NewMaxAdvance(), nil
	}
	return nil, fmt.Errorf("routing: unknown policy %q", name)
}

// Names lists the registered policy names.
func Names() []string { return []string{"busch", "greedy", "dimorder", "maxadvance"} }
