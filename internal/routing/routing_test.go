package routing

import (
	"math/rand"
	"testing"

	"repro/internal/rng"
	"repro/internal/topology"
)

// ctxWith builds a decision context backed by a real reversible stream.
func ctxWith(st *rng.Stream, prio State, free, good topology.DirSet, hr topology.Direction) *Ctx {
	return &Ctx{
		Prio:    prio,
		Free:    free,
		Good:    good,
		HomeRun: hr,
		N:       8,
		Rand:    st.Uniform,
		RandInt: st.Integer,
	}
}

func set(dirs ...topology.Direction) topology.DirSet {
	var s topology.DirSet
	for _, d := range dirs {
		s = s.Add(d)
	}
	return s
}

var allDirs = set(topology.North, topology.East, topology.South, topology.West)

// TestAllPoliciesChooseFreeLinks: fuzz every policy over random contexts;
// the chosen direction must always be free, and Deflected must be set iff
// no free good link was taken.
func TestAllPoliciesChooseFreeLinks(t *testing.T) {
	st := rng.NewStream(1)
	r := rand.New(rand.NewSource(2))
	for _, name := range Names() {
		pol, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 5000; trial++ {
			free := topology.DirSet(r.Intn(15) + 1) // non-empty subset
			good := topology.DirSet(r.Intn(16))
			hr := topology.Direction(r.Intn(4))
			if !good.Empty() {
				hr = good.Nth(r.Intn(good.Count()))
			}
			prio := State(r.Intn(4))
			dec := pol.Route(ctxWith(st, prio, free, good, hr))
			if !free.Has(dec.Dir) {
				t.Fatalf("%s: chose non-free dir %v (free %v)", name, dec.Dir, free)
			}
			fg := free & good
			if dec.Deflected && good.Has(dec.Dir) && prio != Excited && prio != Running {
				t.Fatalf("%s: flagged deflected but took good link", name)
			}
			if !dec.Deflected && !fg.Empty() && !good.Has(dec.Dir) {
				t.Fatalf("%s: took bad link %v without deflection flag (free %v good %v)",
					name, dec.Dir, free, good)
			}
		}
	}
}

// TestBuschStateMachine checks every legal transition of §1.2.4.
func TestBuschStateMachine(t *testing.T) {
	st := rng.NewStream(3)
	pol := NewBusch()

	t.Run("excited granted becomes running", func(t *testing.T) {
		dec := pol.Route(ctxWith(st, Excited, allDirs, set(topology.East), topology.East))
		if dec.Dir != topology.East || dec.NewPrio != Running || dec.Deflected {
			t.Fatalf("got %+v", dec)
		}
	})
	t.Run("excited deflected returns to active", func(t *testing.T) {
		// Home-run link East is busy.
		dec := pol.Route(ctxWith(st, Excited, set(topology.North, topology.South), set(topology.East), topology.East))
		if dec.NewPrio != Active || !dec.Deflected {
			t.Fatalf("got %+v", dec)
		}
	})
	t.Run("running keeps its path", func(t *testing.T) {
		dec := pol.Route(ctxWith(st, Running, allDirs, set(topology.South), topology.South))
		if dec.Dir != topology.South || dec.NewPrio != Running || dec.Deflected {
			t.Fatalf("got %+v", dec)
		}
	})
	t.Run("running deflected while turning drops to active", func(t *testing.T) {
		dec := pol.Route(ctxWith(st, Running, set(topology.West), set(topology.South), topology.South))
		if dec.Dir != topology.West || dec.NewPrio != Active || !dec.Deflected {
			t.Fatalf("got %+v", dec)
		}
	})
	t.Run("sleeping routes to good links", func(t *testing.T) {
		for i := 0; i < 50; i++ {
			dec := pol.Route(ctxWith(st, Sleeping, allDirs, set(topology.North, topology.East), topology.East))
			if dec.Deflected || (dec.Dir != topology.North && dec.Dir != topology.East) {
				t.Fatalf("got %+v", dec)
			}
			if dec.NewPrio != Sleeping && dec.NewPrio != Active {
				t.Fatalf("illegal sleeping transition to %v", dec.NewPrio)
			}
		}
	})
	t.Run("active deflection may excite", func(t *testing.T) {
		for i := 0; i < 50; i++ {
			dec := pol.Route(ctxWith(st, Active, set(topology.West), set(topology.East), topology.East))
			if !dec.Deflected {
				t.Fatalf("got %+v", dec)
			}
			if dec.NewPrio != Active && dec.NewPrio != Excited {
				t.Fatalf("illegal active transition to %v", dec.NewPrio)
			}
		}
	})
	t.Run("active advancing never excites", func(t *testing.T) {
		for i := 0; i < 200; i++ {
			dec := pol.Route(ctxWith(st, Active, allDirs, set(topology.East), topology.East))
			if dec.NewPrio != Active {
				t.Fatalf("advancing active changed state: %+v", dec)
			}
		}
	})
}

// TestBuschUpgradeProbabilities: the Sleeping→Active rate must track
// 1/(24n) and the deflected Active→Excited rate 1/(16n) statistically.
func TestBuschUpgradeProbabilities(t *testing.T) {
	st := rng.NewStream(9)
	pol := NewBusch()
	const trials = 400000
	n := 8.0

	upgrades := 0
	for i := 0; i < trials; i++ {
		dec := pol.Route(ctxWith(st, Sleeping, allDirs, set(topology.East), topology.East))
		if dec.NewPrio == Active {
			upgrades++
		}
	}
	want := 1.0 / (24 * n)
	got := float64(upgrades) / trials
	if got < want/2 || got > want*2 {
		t.Errorf("sleeping upgrade rate %v, want ~%v", got, want)
	}

	excites := 0
	for i := 0; i < trials; i++ {
		dec := pol.Route(ctxWith(st, Active, set(topology.West), set(topology.East), topology.East))
		if dec.NewPrio == Excited {
			excites++
		}
	}
	want = 1.0 / (16 * n)
	got = float64(excites) / trials
	if got < want/2 || got > want*2 {
		t.Errorf("active excite rate %v, want ~%v", got, want)
	}
}

// TestGreedyRandomPreservesPriority: the baseline never touches priority.
func TestGreedyRandomPreservesPriority(t *testing.T) {
	st := rng.NewStream(4)
	pol := NewGreedyRandom()
	for _, prio := range []State{Sleeping, Active, Excited, Running} {
		dec := pol.Route(ctxWith(st, prio, allDirs, set(topology.North), topology.North))
		if dec.NewPrio != prio {
			t.Fatalf("priority changed from %v to %v", prio, dec.NewPrio)
		}
	}
}

// TestDimOrderDeterministic: identical context must give identical output
// with no randomness consumed.
func TestDimOrderDeterministic(t *testing.T) {
	st := rng.NewStream(5)
	pol := NewDimOrder()
	before := st.Draws()
	a := pol.Route(ctxWith(st, Active, allDirs, set(topology.West, topology.South), topology.West))
	b := pol.Route(ctxWith(st, Active, allDirs, set(topology.West, topology.South), topology.West))
	if a != b {
		t.Fatalf("nondeterministic: %+v vs %+v", a, b)
	}
	if st.Draws() != before {
		t.Fatal("DimOrder consumed randomness")
	}
	if a.Dir != topology.West {
		t.Fatalf("column-first preference broken: %+v", a)
	}
}

// TestMaxAdvanceDeflectsOpposite: when every good link is busy but its
// opposite is free, the deflection goes opposite a good direction.
func TestMaxAdvanceDeflectsOpposite(t *testing.T) {
	st := rng.NewStream(6)
	pol := NewMaxAdvance()
	// Good: East; free: West and North. Expect West (opposite of East).
	for i := 0; i < 50; i++ {
		dec := pol.Route(ctxWith(st, Sleeping, set(topology.West, topology.North), set(topology.East), topology.East))
		if !dec.Deflected || dec.Dir != topology.West {
			t.Fatalf("got %+v", dec)
		}
	}
}

// TestByName covers the registry.
func TestByName(t *testing.T) {
	for _, name := range Names() {
		pol, err := ByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if pol.Name() != name {
			t.Fatalf("registry name %q != policy name %q", name, pol.Name())
		}
	}
	if pol, err := ByName(""); err != nil || pol.Name() != "busch" {
		t.Fatal("empty name must default to busch")
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

// TestStateString covers the state names used in reports.
func TestStateString(t *testing.T) {
	names := map[State]string{Sleeping: "Sleeping", Active: "Active", Excited: "Excited", Running: "Running"}
	for s, want := range names {
		if s.String() != want {
			t.Errorf("State(%d).String() = %q", s, s.String())
		}
	}
}
