package soak

// Schedule generation: a soak run is a deterministic function of its seed.
// Every knob an episode turns — engine, PE/KP shape, queue kind, model
// seed, fault composition, memory budget — is drawn from a single bounded
// entropy source, so the same seed replays the same schedule byte for
// byte, and the fuzz target can substitute arbitrary bytes for the RNG and
// explore the exact same schedule space.

import (
	"repro/internal/core"
	"repro/internal/eventq"
	"repro/internal/simcheck"
)

// source is the schedule generator's only entropy interface: a bounded
// non-negative draw. *math/rand.Rand satisfies it directly; byteSource
// adapts fuzz input.
type source interface {
	Intn(n int) int
}

// byteSource drives schedule generation from raw bytes (the fuzz target's
// input). Each draw consumes one byte reduced mod n; an exhausted source
// yields zeros, so every byte string decodes to some valid schedule —
// there is no "parse error" surface for the fuzzer to get stuck on.
type byteSource struct {
	data []byte
	off  int
}

func (b *byteSource) Intn(n int) int {
	if n <= 1 {
		return 0
	}
	if b.off >= len(b.data) {
		return 0
	}
	v := int(b.data[b.off])
	b.off++
	return v % n
}

// u32 assembles a wide model/fault seed from four narrow draws, keeping
// full seed-space coverage even for byte-backed sources.
func u32(src source) uint64 {
	var v uint64
	for i := 0; i < 4; i++ {
		v = v<<8 | uint64(src.Intn(256))
	}
	return v
}

// Episode is one scheduled chaos cell: a simcheck matrix point the soak
// loop runs against its clean sequential reference.
type Episode struct {
	Index int
	Cell  simcheck.Cell
	// Checkpoint routes the episode through a mid-run checkpoint/restore
	// cut (simcheck.RunCellResumed): the run checkpoints periodically, is
	// rebuilt from the last published checkpoint, and the composed
	// fingerprint is held to the same sequential oracle. Optimistic
	// episodes only.
	Checkpoint bool
}

// memBoundOdds is the fraction of optimistic episodes that arm the
// fossil-collection pressure valve: 1 in memBoundOdds.
const memBoundOdds = 4

// ckptOdds is the fraction of optimistic episodes that soak the
// checkpoint/restore path: 1 in ckptOdds.
const ckptOdds = 8

// nextEpisode draws episode idx from src. Models rotate round-robin (so
// every model is exercised no matter how short the run); everything else
// is random: mostly-optimistic engines with an occasional conservative
// episode, 1–4 PEs over three KP granularities, both queue kinds, a fault
// plan composing each kernel injector with probability 1/3 at a random
// aggressiveness, and a tight memory budget on a quarter of the optimistic
// episodes.
func nextEpisode(src source, idx int, models []string, mutation simcheck.Mutation, paranoid bool) Episode {
	ckpt := false
	model := models[idx%len(models)]
	kinds := eventq.Kinds() // registry order is deterministic, so the draw replays
	queue := kinds[src.Intn(len(kinds))]
	pes := 1 + src.Intn(4)
	kps := []int{4, 8, 16}[src.Intn(3)]
	seed := u32(src) | 1
	c := simcheck.Cell{
		Model: model, Engine: simcheck.EngOptimistic,
		PEs: pes, KPs: kps, Queue: queue, Seed: seed,
		Paranoid: paranoid,
	}
	if src.Intn(8) == 0 && simcheck.SupportsEngine(model, simcheck.EngConservative) {
		c.Engine = simcheck.EngConservative
	}
	if c.Engine == simcheck.EngOptimistic {
		// Both GVT algorithms soak 50/50: the circulating token and the
		// stop-the-world barrier must be indistinguishable in committed
		// results, and chaos plans interleave very differently under each.
		c.GVTMode = []string{core.GVTAsync, core.GVTBarrier}[src.Intn(2)]
		f := &core.Faults{}
		armed := false
		for _, inj := range simcheck.Injectors() {
			if src.Intn(3) == 0 {
				inj.Arm(f, src.Intn(4))
				armed = true
			}
		}
		if armed {
			f.Seed = u32(src) | 1
			c.Faults = f
		}
		if src.Intn(memBoundOdds) == 0 {
			// Budgets this small sit well under the models' natural live
			// peaks, so the valve genuinely engages rather than idling.
			c.MaxLive = 4 + src.Intn(29)
		}
		// A slice of optimistic episodes exercise crash recovery: run with
		// periodic checkpoints, rebuild from the last one, and hold the
		// composed fingerprint to the same oracle.
		ckpt = src.Intn(ckptOdds) == 0
	}
	// The sequential reference is always clean; every non-sequential cell
	// carries the armed mutation (if any), mirroring Matrix semantics.
	c.Mutation = mutation
	return Episode{Index: idx, Cell: c, Checkpoint: ckpt}
}

// DecodeSchedule expands arbitrary bytes into a short bounded schedule —
// the fuzz target's entry point. The byte string is the entropy stream, so
// the fuzzer mutates schedules directly; exhausted input pads with zeros.
func DecodeSchedule(data []byte, models []string, paranoid bool) []Episode {
	src := &byteSource{data: data}
	n := 1 + src.Intn(2)
	eps := make([]Episode, 0, n)
	for i := 0; i < n; i++ {
		eps = append(eps, nextEpisode(src, i, models, simcheck.MutNone, paranoid))
	}
	return eps
}
