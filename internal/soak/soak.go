// Package soak is the long-duration chaos harness over the simcheck
// differential matrix. Where a matrix run sweeps a fixed grid once, a soak
// run draws an open-ended randomized schedule of episodes from a seed —
// rotating models and engines, composing kernel fault injectors pairwise
// and deeper, squeezing the fossil-collection pressure valve — and runs
// each episode with live in-run invariant sweeps against the clean
// sequential oracle. Budgets are wall-clock or episode-count; the whole
// run is a deterministic function of its seed, and the report carries a
// fingerprint folding every episode's result so two runs of the same seed
// are comparable with a single integer.
//
// On any failing optimistic episode the harness auto-records the cell
// through internal/replay, shrinks it, and writes a ready-to-run .replay
// artifact — a soak failure at 3am lands as a minimal reproducer, not a
// log line.
package soak

import (
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"repro/internal/simcheck"
)

// Config shapes one soak run.
type Config struct {
	// Seed determines the entire schedule. Same seed, same episodes, same
	// report fingerprint (absent genuine nondeterminism bugs — which is
	// the point).
	Seed uint64
	// Episodes caps the run by episode count; 0 means uncapped.
	Episodes int
	// Wall caps the run by wall clock; 0 means uncapped. The budget is
	// checked between episodes, so the last episode may overrun it. With
	// neither cap set, Run defaults to a 16-episode smoke.
	Wall time.Duration
	// Models to rotate through; empty means all bundled models.
	Models []string
	// Mutation arms a seeded bug in every non-sequential cell (self-test:
	// a soak that cannot fail is not testing anything).
	Mutation simcheck.Mutation
	// ArtifactDir, when non-empty, receives shrunk .replay artifacts for
	// failing optimistic episodes.
	ArtifactDir string
	// Paranoid arms the kernel's in-run invariant sweeps on every
	// optimistic episode — the live-invariant mode; soaking without it
	// only checks end states.
	Paranoid bool
	// Logf, when non-nil, receives one line per episode.
	Logf func(format string, args ...any)
}

// Failure is one failed episode with its reproduction artifact.
type Failure struct {
	Episode int
	Cell    simcheck.Cell
	// Details are the fingerprint mismatches, or the run error.
	Details []string
	// Artifact is the .replay path, when one was recorded.
	Artifact string
}

func (f Failure) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "FAILURE episode %d [%s]", f.Episode, f.Cell)
	for _, d := range f.Details {
		fmt.Fprintf(&b, "\n  %s", d)
	}
	if f.Artifact != "" {
		fmt.Fprintf(&b, "\n  artifact: %s", f.Artifact)
	}
	return b.String()
}

// Report is the outcome of a soak run.
type Report struct {
	Seed     uint64
	Episodes int
	// Cells counts executed runs (references included).
	Cells    int
	Failures []Failure
	// Artifacts lists every .replay written (also present on Failures).
	Artifacts []string
	// Fingerprint folds every episode's cell recipe and result hashes;
	// two runs of the same seed must agree on it.
	Fingerprint uint64
	// ForcedRollbacks, MemThrottles and InvariantSweeps total the kernel
	// counters across episodes — evidence the chaos actually bit.
	ForcedRollbacks int64
	MemThrottles    int64
	InvariantSweeps int64
	// PeakLivePE is the largest concurrent live-event count any single PE
	// reached in any episode.
	PeakLivePE int64
	// HeapPeak is the process heap high-water mark (bytes) sampled after
	// each episode.
	HeapPeak uint64
	Elapsed  time.Duration
}

// OK reports whether every episode matched its reference.
func (r *Report) OK() bool { return len(r.Failures) == 0 }

func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "soak: seed=%d episodes=%d cells=%d failures=%d fingerprint=%016x\n",
		r.Seed, r.Episodes, r.Cells, len(r.Failures), r.Fingerprint)
	fmt.Fprintf(&b, "soak: %d forced rollbacks, %d throttled passes, %d invariant sweeps\n",
		r.ForcedRollbacks, r.MemThrottles, r.InvariantSweeps)
	fmt.Fprintf(&b, "soak: peak %d live events on one PE, heap high-water %.1f MiB, elapsed %v",
		r.PeakLivePE, float64(r.HeapPeak)/(1<<20), r.Elapsed.Round(time.Millisecond))
	return b.String()
}

// Run executes a seeded soak until its budget is spent.
func Run(cfg Config) (*Report, error) {
	models := cfg.Models
	if len(models) == 0 {
		models = simcheck.ModelNames()
	}
	for _, m := range models {
		if !simcheck.SupportsEngine(m, simcheck.EngSequential) {
			return nil, fmt.Errorf("soak: unknown model %q (have %v)", m, simcheck.ModelNames())
		}
	}
	if cfg.Mutation != simcheck.MutNone {
		known := false
		for _, mu := range simcheck.Mutations() {
			known = known || mu == cfg.Mutation
		}
		if !known {
			return nil, fmt.Errorf("soak: unknown mutation %q (have %v)", cfg.Mutation, simcheck.Mutations())
		}
	}
	episodes, wall := cfg.Episodes, cfg.Wall
	if episodes <= 0 && wall <= 0 {
		episodes = 16
	}

	src := rand.New(rand.NewSource(int64(cfg.Seed)))
	start := time.Now()
	gen := func(i int) (Episode, bool) {
		if episodes > 0 && i >= episodes {
			return Episode{}, false
		}
		if wall > 0 && i > 0 && time.Since(start) >= wall {
			return Episode{}, false
		}
		return nextEpisode(src, i, models, cfg.Mutation, cfg.Paranoid), true
	}
	rep := run(cfg, gen)
	rep.Elapsed = time.Since(start)
	return rep, nil
}

// RunEpisodes executes a fixed, pre-expanded schedule — the fuzz target's
// driver. Config budgets are ignored; the schedule is the budget.
func RunEpisodes(eps []Episode, cfg Config) *Report {
	start := time.Now()
	gen := func(i int) (Episode, bool) {
		if i >= len(eps) {
			return Episode{}, false
		}
		return eps[i], true
	}
	rep := run(cfg, gen)
	rep.Elapsed = time.Since(start)
	return rep
}

// run drains the episode generator, comparing each cell against its clean
// sequential reference and folding results into the report.
func run(cfg Config, gen func(i int) (Episode, bool)) *Report {
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	rep := &Report{Seed: cfg.Seed}
	digest := fnv.New64a()
	var ms runtime.MemStats
	for i := 0; ; i++ {
		ep, ok := gen(i)
		if !ok {
			break
		}
		rep.Episodes++
		fail := runEpisode(ep, cfg, rep, digest, logf)
		if fail != nil {
			rep.Failures = append(rep.Failures, *fail)
			if fail.Artifact != "" {
				rep.Artifacts = append(rep.Artifacts, fail.Artifact)
			}
		}
		runtime.ReadMemStats(&ms)
		if ms.HeapAlloc > rep.HeapPeak {
			rep.HeapPeak = ms.HeapAlloc
		}
	}
	rep.Fingerprint = digest.Sum64()
	return rep
}

// runEpisode executes one episode and returns its failure, if any. Both
// the reference and the target fold into the rolling digest, so a run
// whose *reference* drifts (a sequential nondeterminism bug) changes the
// report fingerprint too.
func runEpisode(ep Episode, cfg Config, rep *Report, digest io.Writer, logf func(format string, args ...any)) *Failure {
	c := ep.Cell
	refCell := simcheck.Cell{
		Model: c.Model, Engine: simcheck.EngSequential,
		PEs: 1, KPs: 1, Queue: c.Queue, Seed: c.Seed,
	}
	ref, err := simcheck.RunCell(refCell)
	rep.Cells++
	if err != nil {
		fmt.Fprintf(digest, "episode %d ref error\n", ep.Index)
		logf("FAIL ep %d reference [%s]: %v", ep.Index, refCell, err)
		return &Failure{Episode: ep.Index, Cell: refCell,
			Details: []string{fmt.Sprintf("reference run failed: %v", err)}}
	}
	var got simcheck.Result
	ckpt := ep.Checkpoint && c.Engine == simcheck.EngOptimistic
	var ckptDir string
	if ckpt {
		if ckptDir, err = ckptDirFor(cfg, ep); err == nil {
			got, err = simcheck.RunCellResumed(c, ckptDir, 0)
		}
	} else {
		got, err = simcheck.RunCell(c)
	}
	rep.Cells++
	if err != nil {
		fmt.Fprintf(digest, "episode %d [%s] ckpt=%v error\n", ep.Index, c, ckpt)
		logf("FAIL ep %d [%s] run error: %v", ep.Index, c, err)
		return record(ep, cfg, logf, keepCkptDir(ckptDir, logf, &Failure{Episode: ep.Index, Cell: c,
			Details: []string{fmt.Sprintf("run failed: %v", err)}}))
	}
	if got.Stats != nil {
		rep.ForcedRollbacks += got.Stats.ForcedRollbacks
		rep.MemThrottles += got.Stats.MemThrottles
		rep.InvariantSweeps += got.Stats.InvariantSweeps
		if got.Stats.LivePeak > rep.PeakLivePE {
			rep.PeakLivePE = got.Stats.LivePeak
		}
	}
	fmt.Fprintf(digest, "episode %d [%s] ckpt=%v ref=%016x/%016x got=%d/%016x/%016x\n",
		ep.Index, c, ckpt, ref.FP.TraceHash, ref.FP.StateHash,
		got.FP.Committed, got.FP.TraceHash, got.FP.StateHash)
	if diffs := simcheck.Compare(ref.FP, got.FP); len(diffs) > 0 {
		logf("FAIL ep %d [%s] %s", ep.Index, c, strings.Join(diffs, "; "))
		return record(ep, cfg, logf, keepCkptDir(ckptDir, logf, &Failure{Episode: ep.Index, Cell: c, Details: diffs}))
	}
	if ckptDir != "" {
		os.RemoveAll(ckptDir)
	}
	if ckpt {
		logf("ok   ep %d [%s] committed=%d (resumed from checkpoint)", ep.Index, c, got.FP.Committed)
	} else {
		logf("ok   ep %d [%s] committed=%d", ep.Index, c, got.FP.Committed)
	}
	return nil
}

// ckptDirFor allocates a checkpoint directory for a crash-recovery
// episode: under the artifact directory when one is configured (so a
// failing episode's checkpoints survive as evidence), in the system temp
// directory otherwise. The directory is removed when the episode passes.
func ckptDirFor(cfg Config, ep Episode) (string, error) {
	if cfg.ArtifactDir != "" {
		dir := filepath.Join(cfg.ArtifactDir, fmt.Sprintf("ckpt-ep%04d", ep.Index))
		return dir, os.MkdirAll(dir, 0o755)
	}
	return os.MkdirTemp("", "soak-ckpt-")
}

// keepCkptDir annotates a failure with the checkpoint directory kept for
// post-mortem, when the failing episode was a crash-recovery one.
func keepCkptDir(dir string, logf func(format string, args ...any), f *Failure) *Failure {
	if dir != "" {
		logf("keeping checkpoint dir %s for episode %d", dir, f.Episode)
		f.Details = append(f.Details, fmt.Sprintf("checkpoint dir kept: %s", dir))
	}
	return f
}

// record attaches a shrunk .replay artifact to a failing optimistic
// episode when an artifact directory is configured.
func record(ep Episode, cfg Config, logf func(format string, args ...any), f *Failure) *Failure {
	if cfg.ArtifactDir == "" || ep.Cell.Engine != simcheck.EngOptimistic {
		return f
	}
	path, err := simcheck.AutoRecord(cfg.ArtifactDir, ep.Cell, logf)
	if err != nil {
		logf("auto-record ep %d [%s] failed: %v", ep.Index, ep.Cell, err)
		return f
	}
	logf("auto-record ep %d wrote %s", ep.Index, path)
	f.Artifact = path
	return f
}
