package soak

import (
	"testing"
)

// FuzzSoakSchedule treats arbitrary bytes as a soak schedule: every byte
// string must decode to a valid bounded schedule whose episodes run
// without panics, without tripping a live invariant sweep, and without
// diverging from the sequential oracle. The corpus seeds cover the
// schedule space's corners (empty input, conservative draws, dense fault
// compositions, memory-bounded cells); the fuzzer mutates from there.
func FuzzSoakSchedule(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0})
	f.Add([]byte{0, 1, 3, 2, 0xff, 0xee, 0xdd, 0xcc, 7, 0, 0, 0})
	f.Add([]byte{1, 1, 2, 1, 9, 9, 9, 9, 3, 0, 0, 0, 0, 0, 0, 0, 42, 42, 42, 42, 0, 1, 2, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		// hotpotato and phold only: qnet episodes are the slowest and the
		// schedule space under test is the generator's, not the models'.
		eps := DecodeSchedule(data, []string{"hotpotato", "phold"}, true)
		if len(eps) == 0 {
			t.Fatal("empty schedule decoded")
		}
		rep := RunEpisodes(eps, Config{Paranoid: true})
		if !rep.OK() {
			t.Fatalf("decoded schedule diverged:\n%v", rep.Failures)
		}
	})
}
