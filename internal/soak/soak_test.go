package soak

import (
	"math/rand"
	"path/filepath"
	"testing"

	"repro/internal/eventq"
	"repro/internal/replay"
	"repro/internal/simcheck"
)

// TestScheduleDiversity: the generator must actually exercise the space it
// claims — every registered queue kind, multiple PE shapes, conservative
// episodes, fault compositions of depth >= 2, and memory-bounded cells —
// within a modest episode count, and rotate through every model.
func TestScheduleDiversity(t *testing.T) {
	models := simcheck.ModelNames()
	src := rand.New(rand.NewSource(3))
	const n = 64
	var (
		queues       = map[string]int{}
		modelCount   = map[string]int{}
		conservative int
		pes          = map[int]int{}
		bounded      int
		composed     int
	)
	for i := 0; i < n; i++ {
		ep := nextEpisode(src, i, models, simcheck.MutNone, true)
		c := ep.Cell
		queues[c.Queue]++
		modelCount[c.Model]++
		pes[c.PEs]++
		if c.Engine == simcheck.EngConservative {
			conservative++
			if c.Faults != nil || c.MaxLive > 0 {
				t.Fatalf("episode %d: conservative cell carries optimistic knobs: %s", i, c)
			}
		}
		if c.MaxLive > 0 {
			bounded++
		}
		if f := c.Faults; f != nil {
			mechanisms := 0
			if f.RollbackEvery > 0 {
				mechanisms++
			}
			if f.GVTDelay > 0 {
				mechanisms++
			}
			if f.ShuffleMail {
				mechanisms++
			}
			if f.MailBurst > 0 {
				mechanisms++
			}
			if f.ThrottlePEs > 0 {
				mechanisms++
			}
			if mechanisms >= 2 {
				composed++
			}
			if f.Seed == 0 {
				t.Fatalf("episode %d: armed fault plan with zero seed", i)
			}
		}
		if !c.Paranoid {
			t.Fatalf("episode %d: paranoid flag dropped", i)
		}
	}
	for _, m := range models {
		if modelCount[m] == 0 {
			t.Fatalf("model %s never scheduled in %d episodes", m, n)
		}
	}
	for _, kind := range eventq.Kinds() {
		if queues[kind] == 0 {
			t.Fatalf("queue kind %s never scheduled: %v", kind, queues)
		}
	}
	if len(pes) < 3 {
		t.Fatalf("PE shapes too uniform: %v", pes)
	}
	if conservative == 0 {
		t.Fatalf("no conservative episodes in %d", n)
	}
	if bounded == 0 {
		t.Fatalf("no memory-bounded episodes in %d", n)
	}
	if composed == 0 {
		t.Fatalf("no composed (>=2 injector) fault plans in %d", n)
	}
}

// TestSoakReproducible: two runs of the same seed must execute the same
// schedule and land on the same report fingerprint — the property the
// nightly soak's failure reports depend on.
func TestSoakReproducible(t *testing.T) {
	cfg := Config{Seed: 11, Episodes: 6, Paranoid: true}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !a.OK() {
		t.Fatalf("clean soak failed:\n%v", a.Failures)
	}
	if a.Episodes != 6 || a.Cells != 12 {
		t.Fatalf("episodes=%d cells=%d, want 6/12", a.Episodes, a.Cells)
	}
	if a.Fingerprint != b.Fingerprint {
		t.Fatalf("same seed, different fingerprints: %016x vs %016x", a.Fingerprint, b.Fingerprint)
	}
	if c, err := Run(Config{Seed: 12, Episodes: 6, Paranoid: true}); err != nil {
		t.Fatal(err)
	} else if c.Fingerprint == a.Fingerprint {
		t.Fatalf("different seeds, same fingerprint %016x", a.Fingerprint)
	}
}

// TestSoakWallBudget: a wall-clock budget must stop the loop and still run
// at least one episode.
func TestSoakWallBudget(t *testing.T) {
	rep, err := Run(Config{Seed: 5, Wall: 1}) // 1ns: expires after episode 0
	if err != nil {
		t.Fatal(err)
	}
	if rep.Episodes < 1 {
		t.Fatal("wall-budgeted soak ran zero episodes")
	}
	if rep.Episodes > 2 {
		t.Fatalf("1ns wall budget ran %d episodes", rep.Episodes)
	}
}

// TestSoakMutationFailsAndShrinks is the harness self-test demanded by the
// soak's reason for existing: armed with a seeded nondeterminism bug, the
// soak must fail, auto-record, and emit a .replay artifact that still
// demonstrates the failure under cmd/replay's verify mode.
func TestSoakMutationFailsAndShrinks(t *testing.T) {
	dir := t.TempDir()
	rep, err := Run(Config{
		Seed:        21,
		Episodes:    2,
		Models:      []string{"phold"},
		Mutation:    simcheck.MutMapOrder,
		ArtifactDir: dir,
		Paranoid:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("mutation-armed soak reported success")
	}
	if len(rep.Artifacts) == 0 {
		t.Fatalf("no .replay artifacts recorded; failures: %v", rep.Failures)
	}
	path := rep.Artifacts[0]
	if filepath.Dir(path) != dir {
		t.Fatalf("artifact %s not under %s", path, dir)
	}
	lg, err := replay.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// The sequential oracle is the shrinker's own predicate and is
	// deterministic: the artifact must fail it every time.
	diverged, err := replay.Replay(simcheck.Runner{}, lg, replay.EngineSequential)
	if err != nil {
		t.Fatal(err)
	}
	if len(diverged) == 0 {
		t.Fatalf("shrunk artifact %s no longer fails the sequential oracle", path)
	}
	// verify mode = optimistic re-run against the recording. The map-order
	// noise is genuinely nondeterministic, so a heavily shrunk log can
	// collide with the recording on a given run (~5% observed); a few
	// attempts must still surface the divergence.
	for attempt := 0; ; attempt++ {
		diverged, err = replay.Replay(simcheck.Runner{}, lg, replay.EngineOptimistic)
		if err != nil {
			t.Fatal(err)
		}
		if len(diverged) > 0 {
			break
		}
		if attempt == 4 {
			t.Fatalf("shrunk artifact %s never failed verify in %d runs", path, attempt+1)
		}
	}
}

// TestSoakBadConfig: unknown models and mutations must be rejected before
// any episode runs.
func TestSoakBadConfig(t *testing.T) {
	if _, err := Run(Config{Models: []string{"nope"}}); err == nil {
		t.Fatal("unknown model accepted")
	}
	if _, err := Run(Config{Mutation: "nope"}); err == nil {
		t.Fatal("unknown mutation accepted")
	}
}
