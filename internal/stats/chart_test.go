package stats

import (
	"bytes"
	"strings"
	"testing"
)

func renderChart(t *testing.T, c Chart) string {
	t.Helper()
	var buf bytes.Buffer
	if err := c.Render(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestChartBasics: title, axes labels, legend and both markers appear.
func TestChartBasics(t *testing.T) {
	c := Chart{
		Title:  "demo",
		XLabel: "N",
		YLabel: "steps",
		X:      []float64{0, 10, 20, 30},
		Series: []ChartSeries{
			{Name: "up", Y: []float64{0, 10, 20, 30}},
			{Name: "flat", Y: []float64{15, 15, 15, 15}},
		},
	}
	out := renderChart(t, c)
	for _, want := range []string{"demo", "legend: * up, o flat", "(N)", "[y: steps]", "30", "0"} {
		if !strings.Contains(out, want) {
			t.Errorf("chart missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Fatalf("markers missing:\n%s", out)
	}
}

// TestChartMonotoneLine: an increasing series must place its marker higher
// (smaller row index) at the right edge than at the left edge.
func TestChartMonotoneLine(t *testing.T) {
	c := Chart{
		X:      []float64{0, 100},
		Series: []ChartSeries{{Name: "s", Y: []float64{0, 100}}},
		Width:  40, Height: 10,
	}
	out := renderChart(t, c)
	lines := strings.Split(out, "\n")
	firstRow, lastRow := -1, -1
	for i, line := range lines {
		if idx := strings.IndexByte(line, '*'); idx >= 0 {
			if firstRow == -1 {
				firstRow = i
			}
			lastRow = i
		}
	}
	if firstRow == -1 {
		t.Fatalf("no markers:\n%s", out)
	}
	top := lines[firstRow]
	bottom := lines[lastRow]
	if strings.IndexByte(top, '*') < strings.IndexByte(bottom, '*') {
		t.Fatalf("increasing series renders downhill:\n%s", out)
	}
	// The line must be continuous: a marker in every plot column between
	// the endpoints.
	cols := map[int]bool{}
	for _, line := range lines {
		for i := 0; i < len(line); i++ {
			if line[i] == '*' {
				cols[i] = true
			}
		}
	}
	if len(cols) < 38 {
		t.Fatalf("line not interpolated: only %d columns marked", len(cols))
	}
}

// TestChartErrors: degenerate inputs are rejected.
func TestChartErrors(t *testing.T) {
	bad := []Chart{
		{X: []float64{1}, Series: []ChartSeries{{Name: "s", Y: []float64{1}}}},
		{X: []float64{1, 2}, Series: []ChartSeries{{Name: "s", Y: []float64{1}}}},
		{X: []float64{3, 3}, Series: []ChartSeries{{Name: "s", Y: []float64{1, 2}}}},
	}
	for i, c := range bad {
		if err := c.Render(&bytes.Buffer{}); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}
