// Package stats provides the small numeric and presentation helpers the
// experiment harness uses: summary statistics and aligned-text / CSV table
// rendering for the report's figures.
package stats

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strings"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)))
}

// Min returns the smallest element; 0 for empty input.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element; 0 for empty input.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// LinearFit returns the least-squares slope and intercept of y on x. The
// report's headline claims are "approximately linear in N"; the harness
// quantifies them with this fit plus R².
func LinearFit(x, y []float64) (slope, intercept, r2 float64) {
	n := float64(len(x))
	if len(x) != len(y) || len(x) < 2 {
		return 0, 0, 0
	}
	mx, my := Mean(x), Mean(y)
	var sxx, sxy, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return 0, my, 0
	}
	slope = sxy / sxx
	intercept = my - slope*mx
	if syy == 0 {
		return slope, intercept, 1
	}
	r2 = sxy * sxy / (sxx * syy)
	_ = n
	return slope, intercept, r2
}

// Table is a simple column-oriented result table.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends a row of already-formatted cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// AddNumbers appends a row formatting each value with %g precision
// appropriate for result tables.
func (t *Table) AddNumbers(vals ...float64) {
	cells := make([]string, len(vals))
	for i, v := range vals {
		cells[i] = FormatNumber(v)
	}
	t.Rows = append(t.Rows, cells)
}

// FormatNumber renders a float compactly: integers without decimals,
// otherwise three significant decimals.
func FormatNumber(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.3f", v)
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	rule := make([]string, len(t.Header))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	writeRow(rule)
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// RenderCSV writes the table as CSV (header first, no title).
func (t *Table) RenderCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Header); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
