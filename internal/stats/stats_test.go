package stats

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestMeanAndStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Errorf("Mean = %v", m)
	}
	if s := StdDev(xs); math.Abs(s-2) > 1e-12 {
		t.Errorf("StdDev = %v", s)
	}
	if Mean(nil) != 0 || StdDev(nil) != 0 || StdDev([]float64{1}) != 0 {
		t.Error("empty/degenerate cases wrong")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Errorf("Min/Max = %v/%v", Min(xs), Max(xs))
	}
	if Min(nil) != 0 || Max(nil) != 0 {
		t.Error("empty cases wrong")
	}
}

// TestLinearFitExact: a perfectly linear series must recover slope,
// intercept and R² = 1.
func TestLinearFitExact(t *testing.T) {
	prop := func(a, b int8) bool {
		slope := float64(a)
		intercept := float64(b)
		var x, y []float64
		for i := 0; i < 10; i++ {
			x = append(x, float64(i))
			y = append(y, slope*float64(i)+intercept)
		}
		gs, gi, r2 := LinearFit(x, y)
		if slope == 0 {
			return math.Abs(gi-intercept) < 1e-9
		}
		return math.Abs(gs-slope) < 1e-9 && math.Abs(gi-intercept) < 1e-9 && math.Abs(r2-1) < 1e-9
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLinearFitDegenerate(t *testing.T) {
	if s, _, _ := LinearFit([]float64{1}, []float64{2}); s != 0 {
		t.Error("short input must fit zero slope")
	}
	// Vertical data: all x equal.
	s, i, _ := LinearFit([]float64{2, 2, 2}, []float64{1, 2, 3})
	if s != 0 || i != 2 {
		t.Errorf("constant-x fit = %v, %v", s, i)
	}
}

func TestFormatNumber(t *testing.T) {
	cases := map[float64]string{
		3:      "3",
		-12:    "-12",
		3.5:    "3.500",
		0.1234: "0.123",
	}
	for v, want := range cases {
		if got := FormatNumber(v); got != want {
			t.Errorf("FormatNumber(%v) = %q, want %q", v, got, want)
		}
	}
}

func TestTableRender(t *testing.T) {
	tab := Table{Title: "demo", Header: []string{"N", "value"}}
	tab.AddRow("8", "1.5")
	tab.AddNumbers(16, 2.25)
	var buf bytes.Buffer
	if err := tab.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"demo", "N", "value", "16", "2.250", "--"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
}

func TestTableCSV(t *testing.T) {
	tab := Table{Header: []string{"a", "b"}}
	tab.AddRow("1", "x,y") // needs quoting
	var buf bytes.Buffer
	if err := tab.RenderCSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "a,b\n1,\"x,y\"\n"
	if buf.String() != want {
		t.Errorf("CSV = %q, want %q", buf.String(), want)
	}
}
