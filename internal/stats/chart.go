package stats

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// ChartSeries is one line of a Chart.
type ChartSeries struct {
	Name string
	Y    []float64
}

// Chart renders one or more series against a shared X axis as an ASCII
// line chart — the terminal rendition of the report's figures. Values are
// linearly interpolated between points so sparse sweeps still read as
// curves.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	X      []float64
	Series []ChartSeries
	// Width and Height are the plot-area dimensions in characters;
	// defaults 64×16.
	Width  int
	Height int
}

// seriesMarks assigns one marker per series.
const seriesMarks = "*o+x#@%&"

// Render writes the chart.
func (c *Chart) Render(w io.Writer) error {
	width, height := c.Width, c.Height
	if width <= 0 {
		width = 64
	}
	if height <= 0 {
		height = 16
	}
	if len(c.X) < 2 {
		return fmt.Errorf("stats: chart needs at least two x values")
	}
	for _, s := range c.Series {
		if len(s.Y) != len(c.X) {
			return fmt.Errorf("stats: series %q has %d points for %d x values", s.Name, len(s.Y), len(c.X))
		}
	}

	xMin, xMax := c.X[0], c.X[0]
	for _, x := range c.X {
		xMin = math.Min(xMin, x)
		xMax = math.Max(xMax, x)
	}
	yMin, yMax := math.Inf(1), math.Inf(-1)
	for _, s := range c.Series {
		for _, y := range s.Y {
			yMin = math.Min(yMin, y)
			yMax = math.Max(yMax, y)
		}
	}
	if yMin > 0 && yMin < yMax/3 {
		yMin = 0 // anchor at zero unless the data is far from it
	}
	if xMax == xMin || math.IsInf(yMin, 0) {
		return fmt.Errorf("stats: degenerate chart domain")
	}
	if yMax == yMin {
		yMax = yMin + 1
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	toCol := func(x float64) int {
		col := int(math.Round((x - xMin) / (xMax - xMin) * float64(width-1)))
		return clampInt(col, 0, width-1)
	}
	toRow := func(y float64) int {
		row := int(math.Round((y - yMin) / (yMax - yMin) * float64(height-1)))
		return clampInt(height-1-row, 0, height-1)
	}

	for si, s := range c.Series {
		mark := seriesMarks[si%len(seriesMarks)]
		// Interpolate between consecutive points column by column so the
		// series reads as a line.
		for i := 0; i+1 < len(c.X); i++ {
			c0, c1 := toCol(c.X[i]), toCol(c.X[i+1])
			y0, y1 := s.Y[i], s.Y[i+1]
			if c1 == c0 {
				grid[toRow(y0)][c0] = mark
				continue
			}
			for col := c0; col <= c1; col++ {
				f := float64(col-c0) / float64(c1-c0)
				grid[toRow(y0+(y1-y0)*f)][col] = mark
			}
		}
	}

	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "%s\n", c.Title)
	}
	yLo, yHi := FormatNumber(yMin), FormatNumber(yMax)
	labelWidth := len(yLo)
	if len(yHi) > labelWidth {
		labelWidth = len(yHi)
	}
	for r := 0; r < height; r++ {
		label := strings.Repeat(" ", labelWidth)
		switch r {
		case 0:
			label = fmt.Sprintf("%*s", labelWidth, yHi)
		case height - 1:
			label = fmt.Sprintf("%*s", labelWidth, yLo)
		}
		fmt.Fprintf(&b, "%s |%s\n", label, string(grid[r]))
	}
	fmt.Fprintf(&b, "%s +%s\n", strings.Repeat(" ", labelWidth), strings.Repeat("-", width))
	xLo, xHi := FormatNumber(xMin), FormatNumber(xMax)
	pad := width - len(xLo) - len(xHi)
	if pad < 1 {
		pad = 1
	}
	fmt.Fprintf(&b, "%s  %s%s%s", strings.Repeat(" ", labelWidth), xLo, strings.Repeat(" ", pad), xHi)
	if c.XLabel != "" {
		fmt.Fprintf(&b, "  (%s)", c.XLabel)
	}
	b.WriteByte('\n')
	var legend []string
	for si, s := range c.Series {
		legend = append(legend, fmt.Sprintf("%c %s", seriesMarks[si%len(seriesMarks)], s.Name))
	}
	if len(legend) > 0 {
		fmt.Fprintf(&b, "%s  legend: %s", strings.Repeat(" ", labelWidth), strings.Join(legend, ", "))
		if c.YLabel != "" {
			fmt.Fprintf(&b, "  [y: %s]", c.YLabel)
		}
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
