package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Ownercheck generalizes statscheck's counter discipline into full
// goroutine-ownership analysis. A struct field tagged //simlint:owned
// (PE freelists, the liveEvents gauge, outbox ledgers, epoch tables)
// belongs to the goroutine running its owner's methods: the only
// accesses that stay on that goroutine are those made through the
// enclosing method's own receiver. Everything else is a cross-goroutine
// access — the bug class behind the use-after-free panics that
// motivated this analyzer — and must either go through an atomic field
// type (sanctioned, and then policed by atomiccheck) or carry a
// //simlint:crosspe <reason> waiver naming the barrier or token
// ordering that makes it safe. Reads and writes get distinct messages:
// an unordered cross-goroutine write is never fixable by a waiver alone
// and should move to an atomic type unless a real ordering exists.
var Ownercheck = &Analyzer{
	Name:    "ownercheck",
	Doc:     "flag access to goroutine-owned fields from outside the owning receiver's methods",
	Keyword: "crosspe",
	Run:     runOwnercheck,
}

// ownedFact marks a struct field as goroutine-owned. Exported so
// dependent packages flag cross-package access too.
type ownedFact struct{}

func runOwnercheck(pass *Pass) error {
	// Pass 1: collect //simlint:owned fields and their owning types.
	owners := markedFields(pass, "owned")
	for v := range owners {
		pass.ExportObjectFact(v, ownedFact{})
	}

	// Pass 2: audit every selection of an owned field (local or
	// imported).
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			recvVar := receiverVar(pass, fd)
			writes := writeSelections(fd.Body)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				selection, ok := pass.TypesInfo.Selections[sel]
				if !ok || selection.Kind() != types.FieldVal {
					return true
				}
				field, ok := selection.Obj().(*types.Var)
				if !ok {
					return true
				}
				// Generic owners (the eventq ladder arena) instantiate
				// fresh field objects per instantiation; the marker sits
				// on the origin.
				field = field.Origin()
				owner, owned := owners[field]
				if !owned {
					var fact ownedFact
					if field.Pkg() == nil || field.Pkg() == pass.Pkg || !pass.ImportObjectFact(field, &fact) {
						return true
					}
					owner = nil // cross-package: owner identity via field parent lookup below
				}
				if isAtomicType(field.Type()) {
					// Atomics are the sanctioned cross-goroutine channel;
					// atomiccheck polices their publish discipline.
					return true
				}
				if ownedAccess(pass, fd, recvVar, owner, field, sel) {
					return true
				}
				if writes[sel] {
					pass.Reportf(sel.Sel.Pos(),
						"write to goroutine-owned field %s.%s outside its owner's methods; a cross-goroutine write needs an atomic field type, or //simlint:crosspe <reason> naming the ordering (barrier, token hand-off, pre-start construction) that makes it safe",
						fieldOwnerName(field), field.Name())
				} else {
					pass.Reportf(sel.Sel.Pos(),
						"read of goroutine-owned field %s.%s outside its owner's methods; waive with //simlint:crosspe <reason> naming the barrier or token ordering that publishes it",
						fieldOwnerName(field), field.Name())
				}
				return true
			})
		}
	}
	return nil
}

// writeSelections maps every SelectorExpr in body that sits on the
// written side of a statement: assignment LHS chains (including
// compound assignments), IncDec operands, and address-taken expressions
// (an escaping pointer may be written through, so &other.field counts
// as a write for classification).
func writeSelections(body *ast.BlockStmt) map[ast.Node]bool {
	writes := make(map[ast.Node]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range s.Lhs {
				markWriteChain(lhs, writes)
			}
		case *ast.IncDecStmt:
			markWriteChain(s.X, writes)
		case *ast.UnaryExpr:
			if s.Op == token.AND {
				markWriteChain(s.X, writes)
			}
		}
		return true
	})
	return writes
}

// markWriteChain peels expr down to its selector chain, marking every
// selector on the path: a write to pe.outbox.bufs[i] writes through
// both outbox and bufs.
func markWriteChain(expr ast.Expr, writes map[ast.Node]bool) {
	for {
		switch x := ast.Unparen(expr).(type) {
		case *ast.SelectorExpr:
			writes[x] = true
			expr = x.X
		case *ast.IndexExpr:
			expr = x.X
		case *ast.SliceExpr:
			expr = x.X
		case *ast.StarExpr:
			expr = x.X
		default:
			return
		}
	}
}
