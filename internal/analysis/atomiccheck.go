package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Atomiccheck enforces the discipline that makes the kernel's hand-rolled
// lock-free structures (the SPSC mail lanes, the async-GVT token) correct
// without locks. Two annotations opt fields in:
//
//   - //simlint:publishes <field> on an atomic guard (the lane tail, the
//     token holder) declares that storing the guard publishes the named
//     sibling field to another goroutine. Within any one function, every
//     store to the published data must precede the guard store in block
//     order — a slot write after the tail store is visible to a consumer
//     that already observed the tail, the exact bug -race catches only
//     when the interleaving cooperates. The analysis is flow-lite like
//     lifecheck's: a guard store poisons the remaining statements of its
//     block (and their nested blocks); guard stores inside a nested
//     block stay local, so branch-local publishes never false-positive.
//
//   - //simlint:spsc on an atomic index (lane head/tail) declares
//     single-writer discipline: exactly one function may mutate it — the
//     producer stores the tail, the consumer stores the head, and any
//     second writer function is a finding. Cross-package mutation of an
//     imported spsc index is always a finding.
//
// Both annotations also require the field itself to be a sync/atomic
// type: a plain guard store publishes nothing to other goroutines.
// Publish-order is checked within the annotating package (the kernel's
// guards are unexported); single-writer facts travel across packages.
var Atomiccheck = &Analyzer{
	Name:    "atomiccheck",
	Doc:     "enforce lock-free publish ordering and SPSC single-writer discipline on annotated atomic fields",
	Keyword: "crosspe",
	Run:     runAtomiccheck,
}

// spscFact marks a struct field as a single-writer atomic index.
// Exported so dependent packages flag cross-package stores too.
type spscFact struct{}

// atomicMutators are the sync/atomic methods that store.
var atomicMutators = map[string]bool{
	"Store":          true,
	"Add":            true,
	"Swap":           true,
	"CompareAndSwap": true,
	"And":            true,
	"Or":             true,
}

// pubSite records one guard store for the publish-order walk.
type pubSite struct {
	guard string
	pos   token.Pos
}

// pubKey identifies published data: the root variable the selection hangs
// off plus the data field. Keying on the root keeps l.tail publishing
// l.buf without poisoning other.buf.
type pubKey struct {
	base *types.Var
	data *types.Var
}

func runAtomiccheck(pass *Pass) error {
	spsc := markedFields(pass, "spsc")
	for v := range spsc {
		pass.ExportObjectFact(v, spscFact{})
		if !isAtomicType(v.Type()) {
			pass.Reportf(v.Pos(),
				"spsc index %s.%s must be a sync/atomic type; a plain index gives the opposite side no ordered view of it",
				fieldOwnerName(v), v.Name())
		}
	}
	pubs := collectPublishes(pass)

	// Single-writer discipline: the first function (in source order) that
	// mutates an spsc index claims it; every other mutating function is a
	// finding.
	writers := make(map[*types.Var]*ast.FuncDecl)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
				if !ok || !atomicMutators[sel.Sel.Name] {
					return true
				}
				_, fields := selectorChain(pass, sel.X)
				for _, field := range fields {
					if _, tagged := spsc[field]; !tagged {
						var fact spscFact
						if field.Pkg() == nil || field.Pkg() == pass.Pkg || !pass.ImportObjectFact(field, &fact) {
							continue
						}
						pass.Reportf(call.Pos(),
							"spsc index %s.%s is stored outside its declaring package; the producer/consumer pair owning it lives there",
							fieldOwnerName(field), field.Name())
						continue
					}
					first, claimed := writers[field]
					switch {
					case !claimed:
						writers[field] = fd
					case first != fd:
						pass.Reportf(call.Pos(),
							"second writer for spsc index %s.%s: %s also stores it (first writer %s); single-writer discipline allows exactly one function per index (producer stores tail, consumer stores head)",
							fieldOwnerName(field), field.Name(), fd.Name.Name, first.Name.Name)
					}
				}
				return true
			})
		}
	}

	// Publish-order: within each function, no store to published data
	// after the guard store that publishes it.
	if len(pubs) > 0 {
		for _, f := range pass.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				checkPublishOrder(pass, fd.Body, pubs, make(map[pubKey]pubSite))
			}
		}
	}
	return nil
}

// collectPublishes maps each //simlint:publishes-tagged guard field to
// the sibling field it publishes, reporting guards that are not atomic
// or whose argument names no sibling.
func collectPublishes(pass *Pass) map[*types.Var]*types.Var {
	pubs := make(map[*types.Var]*types.Var)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				// Field objects by name, for sibling resolution.
				byName := make(map[string]*types.Var)
				for _, field := range st.Fields.List {
					for _, name := range field.Names {
						if v, ok := pass.TypesInfo.Defs[name].(*types.Var); ok {
							byName[name.Name] = v
						}
					}
				}
				for _, field := range st.Fields.List {
					arg, ok := MarkerArg(field.Doc, "publishes")
					if !ok {
						arg, ok = MarkerArg(field.Comment, "publishes")
					}
					if !ok || len(field.Names) == 0 {
						continue
					}
					guard, ok := pass.TypesInfo.Defs[field.Names[0]].(*types.Var)
					if !ok {
						continue
					}
					if !isAtomicType(guard.Type()) {
						pass.Reportf(guard.Pos(),
							"publish guard %s.%s must be a sync/atomic type; a plain store publishes nothing to other goroutines",
							fieldOwnerName(guard), guard.Name())
					}
					if arg == "" {
						continue // driver hygiene reports the missing argument
					}
					data, ok := byName[arg]
					if !ok {
						pass.Reportf(guard.Pos(),
							"//simlint:publishes %s names no field of %s", arg, ts.Name.Name)
						continue
					}
					pubs[guard] = data
				}
			}
		}
	}
	return pubs
}

// checkPublishOrder walks one block's statements in order, tracking
// guard stores. published maps each (root, data field) pair to the guard
// store that published it. Nested blocks inherit a copy; publishes
// inside them stay local, mirroring lifecheck's dead-set discipline.
func checkPublishOrder(pass *Pass, block *ast.BlockStmt, pubs map[*types.Var]*types.Var, published map[pubKey]pubSite) {
	for _, stmt := range block.List {
		// 1. Stores to already-published data directly in this statement.
		if len(published) > 0 {
			shallowInspect(stmt, func(n ast.Node) {
				switch s := n.(type) {
				case *ast.AssignStmt:
					for _, lhs := range s.Lhs {
						reportLateStore(pass, lhs, published)
					}
				case *ast.IncDecStmt:
					reportLateStore(pass, s.X, published)
				}
			})
		}

		// 2. Nested blocks see the current published set but cannot
		// extend it.
		for _, nested := range nestedBlocks(stmt) {
			checkPublishOrder(pass, nested, pubs, copyPublished(published))
		}

		// 3. Guard stores directly in this statement publish their data
		// for the rest of this block.
		shallowInspect(stmt, func(n ast.Node) {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok || !atomicMutators[sel.Sel.Name] {
				return
			}
			root, fields := selectorChain(pass, sel.X)
			if root == nil {
				return
			}
			for _, field := range fields {
				if data, ok := pubs[field]; ok {
					published[pubKey{root, data}] = pubSite{guard: field.Name(), pos: call.Pos()}
				}
			}
		})
	}
}

// reportLateStore flags a store target that writes through data already
// published in this block.
func reportLateStore(pass *Pass, target ast.Expr, published map[pubKey]pubSite) {
	root, fields := selectorChain(pass, target)
	if root == nil {
		return
	}
	for _, field := range fields {
		if site, ok := published[pubKey{root, field}]; ok {
			pass.Reportf(target.Pos(),
				"store to %s.%s after the %s store at %v that publishes it; a consumer that already observed %s can read this slot mid-write (move the store above the publishing store)",
				root.Name(), field.Name(), site.guard, pass.Fset.Position(site.pos), site.guard)
		}
	}
}

// shallowInspect visits the statement's nodes without descending into
// nested blocks or function literals (the block walk handles those).
func shallowInspect(stmt ast.Stmt, fn func(ast.Node)) {
	ast.Inspect(stmt, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.BlockStmt, *ast.FuncLit:
			return false
		}
		if n != nil {
			fn(n)
		}
		return true
	})
}

// selectorChain peels an expression down to its root identifier,
// collecting the field objects selected along the way: l.buf[i] yields
// (l, [buf]); pe.outbox.bufs yields (pe, [bufs, outbox]).
func selectorChain(pass *Pass, expr ast.Expr) (root *types.Var, fields []*types.Var) {
	for {
		switch x := ast.Unparen(expr).(type) {
		case *ast.IndexExpr:
			expr = x.X
		case *ast.SliceExpr:
			expr = x.X
		case *ast.StarExpr:
			expr = x.X
		case *ast.SelectorExpr:
			if s, ok := pass.TypesInfo.Selections[x]; ok && s.Kind() == types.FieldVal {
				if v, ok := s.Obj().(*types.Var); ok {
					fields = append(fields, v.Origin())
				}
			}
			expr = x.X
		case *ast.Ident:
			v, _ := pass.TypesInfo.Uses[x].(*types.Var)
			if v == nil {
				return nil, nil
			}
			return v, fields
		default:
			return nil, nil
		}
	}
}

func copyPublished(published map[pubKey]pubSite) map[pubKey]pubSite {
	cp := make(map[pubKey]pubSite, len(published))
	for k, v := range published {
		cp[k] = v
	}
	return cp
}
