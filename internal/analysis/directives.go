package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// simlint annotations are single-line comments of the form
//
//	//simlint:<keyword> <reason naming the waived invariant>
//
// A suppression annotation waives one analyzer's findings on the line it
// shares, the line directly below it, or — when it appears in a function's
// doc comment — the whole function body. The reason text is mandatory
// (enforced by the driver): an unexplained waiver is itself a finding, so
// every escape hatch in the tree names the invariant it bypasses.
//
// The non-suppression directives are markers: //simlint:sharded tags a
// struct field as a PE-sharded counter (statscheck), //simlint:owned
// tags a field as goroutine-owned (ownercheck), //simlint:spsc tags an
// atomic index of a single-producer/single-consumer pair and
// //simlint:publishes <field> tags an atomic guard whose store publishes
// the named sibling field (both atomiccheck). Markers take no reason;
// publishes takes the published field's name as its argument.
const directivePrefix = "//simlint:"

// SuppressionKeywords maps each annotation keyword to the analyzers it
// waives. Markers ("sharded", "owned", "spsc", "publishes") are absent:
// they tag declarations, they don't waive findings.
var SuppressionKeywords = map[string]string{
	"irreversible":  "reversecheck",
	"deterministic": "determcheck",
	"retained":      "lifecheck",
	"crosspe":       "statscheck, ownercheck, atomiccheck",
}

// MarkerKeywords are directives that tag declarations for an analyzer
// rather than waiving findings.
var MarkerKeywords = map[string]bool{
	"sharded":   true,
	"owned":     true,
	"spsc":      true,
	"publishes": true,
}

// Directive is one parsed //simlint: annotation.
type Directive struct {
	Keyword string
	Reason  string
	// Pos is the position of the comment.
	Pos token.Pos
	// Doc is true when the annotation sits in a declaration's doc
	// comment, scoping it to the whole declaration.
	Doc bool
	// attached is true when the annotation's comment group is the doc or
	// trailing comment of a field or spec — anchored by attachment even
	// when the group spans more lines than the directive's line scope.
	attached bool
	// startLine..endLine is the suppression scope in the comment's file.
	startLine, endLine int
}

// DirectiveUsage records, across a whole driver run, which suppression
// annotations matched at least one finding (waived or not). The driver's
// stale-waiver pass flags anchored waivers that never did: a waiver that
// suppresses nothing is dead weight at best and, at worst, hides that
// the code it used to cover has drifted.
type DirectiveUsage struct {
	used map[token.Pos]bool
}

// NewDirectiveUsage returns an empty usage store.
func NewDirectiveUsage() *DirectiveUsage {
	return &DirectiveUsage{used: make(map[token.Pos]bool)}
}

func (u *DirectiveUsage) mark(pos token.Pos) {
	if u != nil {
		u.used[pos] = true
	}
}

// Used reports whether the annotation whose comment starts at pos
// suppressed at least one finding.
func (u *DirectiveUsage) Used(pos token.Pos) bool {
	return u != nil && u.used[pos]
}

// directiveIndex holds the annotations of one package's files, keyed by
// file base offset for fast position lookup.
type directiveIndex struct {
	byFile map[*token.File][]Directive
}

// parseDirective splits one comment into a directive, if it is one.
func parseDirective(text string) (keyword, reason string, ok bool) {
	rest, found := strings.CutPrefix(text, directivePrefix)
	if !found {
		return "", "", false
	}
	keyword, reason, _ = strings.Cut(rest, " ")
	return strings.TrimSpace(keyword), strings.TrimSpace(reason), true
}

// indexDirectives collects every simlint annotation in files. Line-level
// annotations cover their own line and the next; annotations inside a
// function declaration's doc comment cover the whole declaration.
func indexDirectives(fset *token.FileSet, files []*ast.File) *directiveIndex {
	idx := &directiveIndex{byFile: make(map[*token.File][]Directive)}
	for _, f := range files {
		tf := fset.File(f.Pos())
		if tf == nil {
			continue
		}
		// Doc-comment scopes: map each doc comment group to its decl span.
		docScope := make(map[*ast.CommentGroup][2]int)
		for _, decl := range f.Decls {
			var doc *ast.CommentGroup
			switch d := decl.(type) {
			case *ast.FuncDecl:
				doc = d.Doc
			case *ast.GenDecl:
				doc = d.Doc
			}
			if doc != nil {
				docScope[doc] = [2]int{fset.Position(decl.Pos()).Line, fset.Position(decl.End()).Line}
			}
		}
		// Comment groups attached to fields and specs: markers there apply
		// by attachment (HasMarker/MarkerArg read the whole group), so they
		// are anchored even when the group spans extra lines.
		attached := make(map[*ast.CommentGroup]bool)
		ast.Inspect(f, func(n ast.Node) bool {
			var doc, comment *ast.CommentGroup
			switch x := n.(type) {
			case *ast.Field:
				doc, comment = x.Doc, x.Comment
			case *ast.TypeSpec:
				doc, comment = x.Doc, x.Comment
			case *ast.ValueSpec:
				doc, comment = x.Doc, x.Comment
			}
			if doc != nil {
				attached[doc] = true
			}
			if comment != nil {
				attached[comment] = true
			}
			return true
		})
		for _, cg := range f.Comments {
			scope, isDoc := docScope[cg]
			for _, c := range cg.List {
				keyword, reason, ok := parseDirective(c.Text)
				if !ok {
					continue
				}
				line := fset.Position(c.Pos()).Line
				d := Directive{Keyword: keyword, Reason: reason, Pos: c.Pos(), attached: attached[cg], startLine: line, endLine: line + 1}
				if isDoc {
					d.Doc = true
					d.startLine, d.endLine = scope[0], scope[1]
				}
				idx.byFile[tf] = append(idx.byFile[tf], d)
			}
		}
	}
	return idx
}

// suppressed reports whether a finding with the given analyzer keyword at
// pos falls inside any matching annotation's scope, marking every match
// as used in the (possibly nil) usage store.
func (idx *directiveIndex) suppressed(fset *token.FileSet, pos token.Pos, keyword string, usage *DirectiveUsage) bool {
	if keyword == "" || !pos.IsValid() {
		return false
	}
	tf := fset.File(pos)
	if tf == nil {
		return false
	}
	line := fset.Position(pos).Line
	hit := false
	for _, d := range idx.byFile[tf] {
		if d.Keyword == keyword && line >= d.startLine && line <= d.endLine {
			usage.mark(d.Pos)
			hit = true
		}
	}
	return hit
}

// Directives returns every annotation in the files, for driver hygiene
// checks (unknown keywords, missing reasons).
func Directives(fset *token.FileSet, files []*ast.File) []Directive {
	idx := indexDirectives(fset, files)
	var out []Directive
	for _, ds := range idx.byFile {
		out = append(out, ds...)
	}
	return out
}

// HasMarker reports whether a comment group carries the given marker
// directive (e.g. "sharded").
func HasMarker(cg *ast.CommentGroup, keyword string) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		if kw, _, ok := parseDirective(c.Text); ok && kw == keyword {
			return true
		}
	}
	return false
}

// MarkerArg returns the argument text of the given marker directive in a
// comment group (e.g. the field name after //simlint:publishes), and
// whether the marker is present at all.
func MarkerArg(cg *ast.CommentGroup, keyword string) (arg string, ok bool) {
	if cg == nil {
		return "", false
	}
	for _, c := range cg.List {
		if kw, rest, isDir := parseDirective(c.Text); isDir && kw == keyword {
			return rest, true
		}
	}
	return "", false
}

// AnchorLines returns the set of lines in files on which a
// finding-capable node begins: statements, struct fields, and
// declaration specs. A line-scoped directive whose two-line scope covers
// none of them cannot suppress anything and is a placement error.
func AnchorLines(fset *token.FileSet, files []*ast.File) map[*token.File]map[int]bool {
	anchors := make(map[*token.File]map[int]bool)
	for _, f := range files {
		tf := fset.File(f.Pos())
		if tf == nil {
			continue
		}
		lines, ok := anchors[tf]
		if !ok {
			lines = make(map[int]bool)
			anchors[tf] = lines
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n.(type) {
			case ast.Stmt, *ast.Field, ast.Spec:
				lines[fset.Position(n.Pos()).Line] = true
			}
			return true
		})
	}
	return anchors
}

// Anchored reports whether the directive's scope covers at least one
// finding-capable line. Doc-comment directives are anchored by
// construction (their scope is the whole declaration), and so are
// directives attached to a field or spec's comment group.
func (d Directive) Anchored(fset *token.FileSet, anchors map[*token.File]map[int]bool) bool {
	if d.Doc || d.attached {
		return true
	}
	tf := fset.File(d.Pos)
	if tf == nil {
		return false
	}
	lines := anchors[tf]
	for line := d.startLine; line <= d.endLine; line++ {
		if lines[line] {
			return true
		}
	}
	return false
}
