package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// simlint annotations are single-line comments of the form
//
//	//simlint:<keyword> <reason naming the waived invariant>
//
// A suppression annotation waives one analyzer's findings on the line it
// shares, the line directly below it, or — when it appears in a function's
// doc comment — the whole function body. The reason text is mandatory
// (enforced by the driver): an unexplained waiver is itself a finding, so
// every escape hatch in the tree names the invariant it bypasses.
//
// The one non-suppression directive is //simlint:sharded, which marks a
// struct field as a PE-sharded counter for statscheck; it takes no reason.
const directivePrefix = "//simlint:"

// SuppressionKeywords maps each annotation keyword to the analyzer it
// waives. "sharded" is absent: it is a marker, not a waiver.
var SuppressionKeywords = map[string]string{
	"irreversible":  "reversecheck",
	"deterministic": "determcheck",
	"retained":      "lifecheck",
	"crosspe":       "statscheck",
}

// MarkerKeywords are directives that tag declarations for an analyzer
// rather than waiving findings.
var MarkerKeywords = map[string]bool{
	"sharded": true,
}

// Directive is one parsed //simlint: annotation.
type Directive struct {
	Keyword string
	Reason  string
	// Pos is the position of the comment.
	Pos token.Pos
	// startLine..endLine is the suppression scope in the comment's file.
	startLine, endLine int
}

// directiveIndex holds the annotations of one package's files, keyed by
// file base offset for fast position lookup.
type directiveIndex struct {
	byFile map[*token.File][]Directive
}

// parseDirective splits one comment into a directive, if it is one.
func parseDirective(text string) (keyword, reason string, ok bool) {
	rest, found := strings.CutPrefix(text, directivePrefix)
	if !found {
		return "", "", false
	}
	keyword, reason, _ = strings.Cut(rest, " ")
	return strings.TrimSpace(keyword), strings.TrimSpace(reason), true
}

// indexDirectives collects every simlint annotation in files. Line-level
// annotations cover their own line and the next; annotations inside a
// function declaration's doc comment cover the whole declaration.
func indexDirectives(fset *token.FileSet, files []*ast.File) *directiveIndex {
	idx := &directiveIndex{byFile: make(map[*token.File][]Directive)}
	for _, f := range files {
		tf := fset.File(f.Pos())
		if tf == nil {
			continue
		}
		// Doc-comment scopes: map each doc comment group to its decl span.
		docScope := make(map[*ast.CommentGroup][2]int)
		for _, decl := range f.Decls {
			var doc *ast.CommentGroup
			switch d := decl.(type) {
			case *ast.FuncDecl:
				doc = d.Doc
			case *ast.GenDecl:
				doc = d.Doc
			}
			if doc != nil {
				docScope[doc] = [2]int{fset.Position(decl.Pos()).Line, fset.Position(decl.End()).Line}
			}
		}
		for _, cg := range f.Comments {
			scope, isDoc := docScope[cg]
			for _, c := range cg.List {
				keyword, reason, ok := parseDirective(c.Text)
				if !ok {
					continue
				}
				line := fset.Position(c.Pos()).Line
				d := Directive{Keyword: keyword, Reason: reason, Pos: c.Pos(), startLine: line, endLine: line + 1}
				if isDoc {
					d.startLine, d.endLine = scope[0], scope[1]
				}
				idx.byFile[tf] = append(idx.byFile[tf], d)
			}
		}
	}
	return idx
}

// suppressed reports whether a finding with the given analyzer keyword at
// pos falls inside any matching annotation's scope.
func (idx *directiveIndex) suppressed(fset *token.FileSet, pos token.Pos, keyword string) bool {
	if keyword == "" || !pos.IsValid() {
		return false
	}
	tf := fset.File(pos)
	if tf == nil {
		return false
	}
	line := fset.Position(pos).Line
	for _, d := range idx.byFile[tf] {
		if d.Keyword == keyword && line >= d.startLine && line <= d.endLine {
			return true
		}
	}
	return false
}

// Directives returns every annotation in the files, for driver hygiene
// checks (unknown keywords, missing reasons).
func Directives(fset *token.FileSet, files []*ast.File) []Directive {
	idx := indexDirectives(fset, files)
	var out []Directive
	for _, ds := range idx.byFile {
		out = append(out, ds...)
	}
	return out
}

// HasMarker reports whether a comment group carries the given marker
// directive (e.g. "sharded").
func HasMarker(cg *ast.CommentGroup, keyword string) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		if kw, _, ok := parseDirective(c.Text); ok && kw == keyword {
			return true
		}
	}
	return false
}
