package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Reversecheck enforces the reverse-computation contract (core.Handler):
// every LP-state field a Forward handler mutates must be restored by the
// matching Reverse handler. This is the invariant ROSS-style kernels rest
// on — the kernel rewinds sends, random draws and the send sequence, but
// model state is the model's job, and a forgotten restore only surfaces
// dynamically as a rollback-dependent state divergence (the exact bug
// class simcheck's MutBrokenReverse seeds).
//
// The analysis is static and intra-package: for each Handler
// implementation it walks Forward's and Reverse's statically reachable
// same-package call graphs, collects assignments to fields of the LP
// state type (discovered from `lp.State.(*T)` assertions), and flags
// field paths mutated forward but never touched in reverse. Mutations
// behind dynamic dispatch are not seen; deliberately irreversible fields
// are waived with //simlint:irreversible <reason>.
var Reversecheck = &Analyzer{
	Name:    "reversecheck",
	Doc:     "flag LP state fields mutated in Forward but never restored in Reverse",
	Keyword: "irreversible",
	Run:     runReversecheck,
}

// stateWrite is one recorded mutation of a state field path.
type stateWrite struct {
	path string
	pos  token.Pos
}

func runReversecheck(pass *Pass) error {
	decls := FuncDecls(pass)
	for _, h := range FindHandlers(pass) {
		fwdDecls := ReachableDecls(pass, decls, h.Forward, nil)
		revDecls := ReachableDecls(pass, decls, h.Reverse, nil)

		stateTypes := make(map[*types.Named]bool)
		for _, fd := range append(append([]*ast.FuncDecl(nil), fwdDecls...), revDecls...) {
			collectStateTypes(pass, fd, stateTypes)
		}
		if len(stateTypes) == 0 {
			continue // delegating wrapper or stateless handler
		}
		isState := func(t types.Type) bool {
			n := namedOf(t)
			return n != nil && stateTypes[n]
		}

		fwd := collectStateWrites(pass, fwdDecls, isState)
		rev := collectStateWrites(pass, revDecls, isState)

		var paths []string
		for path := range fwd {
			paths = append(paths, path)
		}
		sort.Strings(paths)
		for _, path := range paths {
			covered := false
			for rpath := range rev {
				if PathCovers(rpath, path) {
					covered = true
					break
				}
			}
			if covered {
				continue
			}
			w := fwd[path]
			pass.Reportf(w.pos,
				"(%s).Forward mutates LP state field %q but Reverse never restores it; reverse computation is incomplete (waive with //simlint:irreversible <reason>)",
				relType(h.Named, pass.Pkg), pathOrState(path))
		}
	}
	return nil
}

func pathOrState(path string) string {
	if path == "" {
		return "<whole state>"
	}
	return path
}

// relType renders a named type relative to the package under analysis.
func relType(n *types.Named, pkg *types.Package) string {
	if n.Obj().Pkg() == pkg {
		return "*" + n.Obj().Name()
	}
	return "*" + n.Obj().Pkg().Name() + "." + n.Obj().Name()
}

// collectStateTypes records the state types a function body asserts out
// of lp.State — the kernel's convention for binding model state.
func collectStateTypes(pass *Pass, fd *ast.FuncDecl, out map[*types.Named]bool) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		ta, ok := n.(*ast.TypeAssertExpr)
		if !ok || ta.Type == nil {
			return true
		}
		sel, ok := ast.Unparen(ta.X).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "State" {
			return true
		}
		if !isKernelType(pass.TypesInfo.TypeOf(sel.X), "LP") {
			return true
		}
		if n := namedOf(pass.TypesInfo.TypeOf(ta.Type)); n != nil {
			out[n] = true
		}
		return true
	})
}

// collectStateWrites gathers every assignment/inc-dec whose target is a
// field path rooted at a state-typed value, across the given bodies. The
// first write to each path wins (for reporting position).
func collectStateWrites(pass *Pass, decls []*ast.FuncDecl, isState func(types.Type) bool) map[string]stateWrite {
	writes := make(map[string]stateWrite)
	record := func(expr ast.Expr, pos token.Pos) {
		path, ok := StatePath(pass.TypesInfo, expr, isState)
		if !ok {
			return
		}
		if _, dup := writes[path]; !dup {
			writes[path] = stateWrite{path: path, pos: pos}
		}
	}
	for _, fd := range decls {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range s.Lhs {
					if id, ok := lhs.(*ast.Ident); ok && id.Name == "_" {
						continue
					}
					record(lhs, lhs.Pos())
				}
			case *ast.IncDecStmt:
				record(s.X, s.X.Pos())
			case *ast.UnaryExpr:
				// &st.field escaping into a call can be mutated out of
				// sight; treat taking the address of a state field as a
				// write so e.g. json.Unmarshal(&st.X) is accounted for.
				if s.Op == token.AND {
					record(s.X, s.X.Pos())
				}
			}
			return true
		})
	}
	return writes
}
