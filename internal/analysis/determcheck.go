package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Determcheck enforces handler determinism: optimistic execution re-runs
// events after rollbacks, and the kernel's differential guarantee (a
// parallel run commits exactly the sequential order) only holds if a
// handler's effects are a pure function of (state, event, LP random
// stream). Wall-clock time, the global math/rand generators, map
// iteration order, goroutine spawns and channel operations all break
// that: re-execution would diverge from first execution, and parallel
// from sequential.
//
// The analysis walks each Handler's Forward/Reverse static call graph.
// Same-package callees are followed by body; cross-package callees are
// followed through per-function summary facts exported when their home
// package was analyzed (the driver runs packages in dependency order).
// Dynamic calls (interface methods, function values) are not followed.
// Intentional nondeterminism — e.g. the simcheck harness's seeded
// mutations — is waived with //simlint:deterministic <reason>.
var Determcheck = &Analyzer{
	Name:    "determcheck",
	Doc:     "flag nondeterminism (wall clock, global rand, map iteration, goroutines, channels) reachable from Handler call graphs",
	Keyword: "deterministic",
	Run:     runDetermcheck,
}

// detViolation is one nondeterminism site.
type detViolation struct {
	Pos  token.Pos
	What string
}

// detSummary is the object fact exported for every function whose body
// (transitively) contains nondeterminism, so dependent packages can check
// handlers that call into this one.
type detSummary struct {
	Violations []detViolation
}

// maxSummaryViolations bounds fact size; a function with more distinct
// nondeterminism sites than this is flagged at its first few anyway.
const maxSummaryViolations = 8

func runDetermcheck(pass *Pass) error {
	decls := FuncDecls(pass)

	// Order functions deterministically by source position.
	var fns []*types.Func
	for fn := range decls {
		fns = append(fns, fn)
	}
	sort.Slice(fns, func(i, j int) bool { return decls[fns[i]].Pos() < decls[fns[j]].Pos() })

	// Compute per-function transitive summaries with a DFS over the
	// same-package call graph, consulting imported facts at the package
	// boundary. Sites waived by //simlint:deterministic are dropped at
	// collection time, in their home package, so the waiver travels with
	// the fact.
	summaries := make(map[*types.Func]*detSummary)
	visiting := make(map[*types.Func]bool)
	var summarize func(fn *types.Func) *detSummary
	summarize = func(fn *types.Func) *detSummary {
		if s, ok := summaries[fn]; ok {
			return s
		}
		if visiting[fn] {
			return &detSummary{} // recursion: the cycle's sites are collected at its entry
		}
		visiting[fn] = true
		defer delete(visiting, fn)

		fd := decls[fn]
		s := &detSummary{}
		add := func(pos token.Pos, what string) {
			if pass.Suppressed(pos) || len(s.Violations) >= maxSummaryViolations {
				return
			}
			s.Violations = append(s.Violations, detViolation{Pos: pos, What: what})
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.CallExpr:
				if callee := StaticCallee(pass.TypesInfo, x); callee != nil {
					if what := nondetCall(callee); what != "" {
						add(x.Pos(), what)
					} else if sub, ok := decls[callee]; ok && sub != fd {
						for _, v := range summarize(callee).Violations {
							add(v.Pos, v.What)
						}
					} else if callee.Pkg() != nil && callee.Pkg() != pass.Pkg {
						// Cross-package: surface the dependency's summary at
						// this call site, so the diagnostic (and any waiver)
						// lands in the package under analysis.
						var imported detSummary
						if pass.ImportObjectFact(callee, &imported) {
							for _, v := range imported.Violations {
								add(x.Pos(), fmt.Sprintf("%s (via %s, at %v)",
									v.What, callee.FullName(), pass.Fset.Position(v.Pos)))
							}
						}
					}
				}
			case *ast.RangeStmt:
				if t := pass.TypesInfo.TypeOf(x.X); t != nil {
					if _, isMap := t.Underlying().(*types.Map); isMap {
						add(x.Pos(), "map iteration (order is randomised per range statement)")
					}
				}
			case *ast.GoStmt:
				add(x.Pos(), "goroutine spawn")
			case *ast.SendStmt:
				add(x.Pos(), "channel send")
			case *ast.SelectStmt:
				add(x.Pos(), "select statement")
			case *ast.UnaryExpr:
				if x.Op == token.ARROW {
					add(x.Pos(), "channel receive")
				}
			}
			return true
		})
		summaries[fn] = s
		return s
	}

	for _, fn := range fns {
		if s := summarize(fn); len(s.Violations) > 0 {
			pass.ExportObjectFact(fn, *s)
		}
	}

	// Report every violation reachable from a handler root, once per
	// site package-wide (helpers shared by several handlers would
	// otherwise repeat).
	seen := make(map[string]bool)
	for _, h := range FindHandlers(pass) {
		for _, root := range []*ast.FuncDecl{h.Forward, h.Reverse} {
			fn, ok := pass.TypesInfo.Defs[root.Name].(*types.Func)
			if !ok {
				continue
			}
			for _, v := range summarize(fn).Violations {
				key := fmt.Sprintf("%v/%s", v.Pos, v.What)
				if seen[key] {
					continue
				}
				seen[key] = true
				pass.Reportf(v.Pos,
					"%s handler of (%s) reaches nondeterminism: %s; optimistic re-execution will diverge (waive with //simlint:deterministic <reason>)",
					root.Name.Name, relType(h.Named, pass.Pkg), v.What)
			}
		}
	}
	return nil
}

// nondetCall classifies direct calls to known nondeterministic stdlib
// functions.
func nondetCall(fn *types.Func) string {
	pkg := fn.Pkg()
	if pkg == nil {
		return ""
	}
	switch pkg.Path() {
	case "time":
		switch fn.Name() {
		case "Now", "Since", "Until":
			return "wall-clock time via time." + fn.Name()
		}
	case "math/rand", "math/rand/v2":
		// Anything from the global-generator packages: handlers must draw
		// through the LP's reversible stream (lp.Rand and friends), which
		// the kernel rewinds on rollback.
		return pkg.Path() + "." + fn.Name() + " (not rewound on rollback; use the LP's reversible stream)"
	case "runtime":
		if fn.Name() == "Gosched" {
			return "runtime.Gosched (scheduling-dependent)"
		}
	}
	return ""
}
