// Fixture for atomiccheck: publish ordering on //simlint:publishes
// guards, single-writer discipline on //simlint:spsc indexes, and the
// atomic-type requirement on both.
package atomiccheck

import (
	"sync/atomic"

	"spscdep"
)

const laneCap = 8

type mail struct{ seq uint64 }

type lane struct {
	//simlint:spsc
	head atomic.Uint64
	//simlint:spsc
	//simlint:publishes buf
	tail atomic.Uint64
	buf  [laneCap]mail
}

// push is the producer: slot writes precede the publishing tail store,
// and push is the tail's only writer besides reset (flagged there).
func (l *lane) push(m mail) {
	t := l.tail.Load()
	l.buf[t%laneCap] = m
	l.tail.Store(t + 1)
}

// drain is the consumer: reads slots, then advances head.
func (l *lane) drain() []mail {
	var out []mail
	h := l.head.Load()
	for t := l.tail.Load(); h < t; h++ {
		out = append(out, l.buf[h%laneCap])
	}
	l.head.Store(h)
	return out
}

// reset stores both indexes from a third function: each is a
// second-writer violation.
func (l *lane) reset() {
	l.head.Store(0) // want `second writer for spsc index`
	l.tail.Store(0) // want `second writer for spsc index`
}

type cell struct {
	//simlint:publishes data
	ready atomic.Uint32
	data  int
}

// fill writes the data, then publishes: the correct order.
func fill(c *cell, v int) {
	c.data = v
	c.ready.Store(1)
}

// fillLate publishes first: the consumer can observe ready and read
// data mid-write.
func fillLate(c *cell, v int) {
	c.ready.Store(1)
	c.data = v // want `store to c.data after the ready store`
}

// fillBranch publishes inside a branch only: branch-local publishes
// stay local, so the trailing store is not flagged.
func fillBranch(c *cell, v int) {
	if v > 0 {
		c.ready.Store(1)
	}
	c.data = v
}

// fillOther publishes one cell and writes another: the (root, field)
// key keeps them apart.
func fillOther(c, d *cell, v int) {
	c.data = v
	c.ready.Store(1)
	d.data = v
}

type badGuard struct {
	//simlint:publishes payload
	flag    uint32 // want `publish guard .* must be a sync/atomic type`
	payload int
}

type badArg struct {
	//simlint:publishes nosuch
	flag    atomic.Uint32 // want `names no field of badArg`
	payload int
}

type plainIdx struct {
	//simlint:spsc
	idx uint64 // want `spsc index .* must be a sync/atomic type`
}

// pokeDep stores an spsc index from outside its declaring package.
func pokeDep(r *spscdep.Ring) {
	r.Head.Store(0) // want `spsc index .* stored outside its declaring package`
}
