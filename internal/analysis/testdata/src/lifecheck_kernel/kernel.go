// Kernel-side lifecheck fixture. The event free list's entry points
// (eventPool.put/release, PE.free) are unexported, so only code in a
// package named core can call them — this fixture therefore declares
// package core, exactly how the analyzers see the real kernel.
package core

type LP struct{ State any }

type Event struct {
	Data any
	next *Event
}

type eventPool struct{ free *Event }

func (p *eventPool) get() *Event {
	if ev := p.free; ev != nil {
		p.free = ev.next
		return ev
	}
	return new(Event)
}

func (p *eventPool) put(ev *Event) {
	ev.next = p.free
	p.free = ev
}

func (p *eventPool) release(lp *LP, ev *Event) {
	ev.Data = nil
	p.put(ev)
}

type PE struct{ pool eventPool }

func (pe *PE) free(ev *Event) { pe.pool.put(ev) }

func (pe *PE) badPut(ev *Event) {
	pe.pool.put(ev)
	ev.Data = nil // want `use of ev after it was freed/recycled`
}

func (pe *PE) badRelease(lp *LP, ev *Event) {
	pe.pool.release(lp, ev)
	_ = ev.Data // want `use of ev after it was freed/recycled`
}

func (pe *PE) badFree(ev *Event) {
	pe.free(ev)
	_ = ev.Data // want `use of ev after it was freed/recycled`
}

func (pe *PE) doubleFree(ev *Event) {
	pe.pool.put(ev)
	pe.pool.put(ev) // want `use of ev after it was freed/recycled`
}

func (pe *PE) okOrder(ev *Event) {
	_ = ev.Data
	pe.free(ev)
}

func (pe *PE) waived(ev *Event) {
	pe.free(ev)
	_ = ev.Data //simlint:retained fixture: diagnostic peek at a just-pooled event
}
