// Fixture dependency for atomiccheck: the exported spsc index lets the
// importing fixture exercise cross-package spscFact flow.
package spscdep

import "sync/atomic"

type Ring struct {
	//simlint:spsc
	Head atomic.Uint64
}

// Advance is the consumer, the index's single writer.
func (r *Ring) Advance(h uint64) { r.Head.Store(h) }
