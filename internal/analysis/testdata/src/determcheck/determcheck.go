// Fixture for determcheck: nondeterminism reachable from handler call
// graphs, including through same-package helpers and cross-package facts.
package determcheck

import (
	"core"
	"detdep"
	"math/rand"
	"time"
)

type State struct {
	N int
	M map[int]int
}

// Bad reaches several nondeterminism sources directly.
type Bad struct{}

func (Bad) Forward(lp *core.LP, ev *core.Event) {
	st := lp.State.(*State)
	_ = time.Now().Unix() // want `wall-clock time via time\.Now`
	st.N += rand.Intn(4)  // want `math/rand\.Intn`
	for k := range st.M { // want `map iteration`
		st.N += k
	}
}

func (Bad) Reverse(lp *core.LP, ev *core.Event) {}

// Leaky reaches nondeterminism through a helper and through an imported
// package (whose summary arrives as an object fact).
type Leaky struct{}

func (Leaky) Forward(lp *core.LP, ev *core.Event) {
	helper()
	_ = detdep.Jitter() // want `via detdep\.Jitter`
	go func() {}()      // want `goroutine spawn`
}

func (Leaky) Reverse(lp *core.LP, ev *core.Event) {}

func helper() {
	_ = time.Since(time.Time{}) // want `wall-clock time via time\.Since`
}

// Chatty uses channels inside a handler.
type Chatty struct{}

func (Chatty) Forward(lp *core.LP, ev *core.Event) {
	ch := make(chan int, 1)
	ch <- 1  // want `channel send`
	_ = <-ch // want `channel receive`
}

func (Chatty) Reverse(lp *core.LP, ev *core.Event) {}

// Good draws randomness only from the LP's reversible stream and calls a
// deterministic dependency; it must stay silent.
type Good struct{}

func (Good) Forward(lp *core.LP, ev *core.Event) {
	st := lp.State.(*State)
	st.N += int(lp.Rand() & 3)
	st.N += int(detdep.Pure(int64(st.N)))
}

func (Good) Reverse(lp *core.LP, ev *core.Event) {}

// Waived wraps intentional nondeterminism (e.g. seeded fault injection)
// behind an annotated helper; the waiver suppresses it at the source.
type Waived struct{}

func (Waived) Forward(lp *core.LP, ev *core.Event) {
	waivedHelper()
}

func (Waived) Reverse(lp *core.LP, ev *core.Event) {}

// waivedHelper deliberately samples the wall clock.
//
//simlint:deterministic fixture: timing probe only, never feeds back into state
func waivedHelper() {
	_ = time.Now()
}

// NotAHandler has the right names but the wrong signature; it is not a
// handler root, so its nondeterminism is not reported.
type NotAHandler struct{}

func (NotAHandler) Forward(x int) { _ = time.Now() }
func (NotAHandler) Reverse(x int) { _ = time.Now() }
