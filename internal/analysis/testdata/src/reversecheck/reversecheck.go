// Fixture for reversecheck: Forward/Reverse pairs that do and do not
// restore the LP state fields they mutate.
package reversecheck

import "core"

type State struct {
	Count int
	Log   []int
	Nest  struct{ A, B int }
	Skip  int
}

// Bad forgets to restore Log and Nest.A.
type Bad struct{}

func (Bad) Forward(lp *core.LP, ev *core.Event) {
	st := lp.State.(*State)
	st.Count++
	st.Log = append(st.Log, 1) // want `mutates LP state field "Log"`
	st.Nest.A = 7              // want `mutates LP state field "Nest\.A"`
}

func (Bad) Reverse(lp *core.LP, ev *core.Event) {
	st := lp.State.(*State)
	st.Count--
}

// Good restores everything it touches, one field through a helper.
type Good struct{}

func (Good) Forward(lp *core.LP, ev *core.Event) {
	st := lp.State.(*State)
	st.Count++
	bumpLog(st)
}

func (Good) Reverse(lp *core.LP, ev *core.Event) {
	st := lp.State.(*State)
	st.Count--
	st.Log = st.Log[:len(st.Log)-1]
}

func bumpLog(st *State) {
	st.Log = append(st.Log, 1)
}

// Coarse restores the nested struct wholesale: restoring a prefix path
// covers every mutation below it.
type Coarse struct{}

func (Coarse) Forward(lp *core.LP, ev *core.Event) {
	st := lp.State.(*State)
	st.Nest.A = 1
	st.Nest.B = 2
}

func (Coarse) Reverse(lp *core.LP, ev *core.Event) {
	st := lp.State.(*State)
	st.Nest = struct{ A, B int }{}
}

// Waived mutates a monotonic counter on purpose.
type Waived struct{}

func (Waived) Forward(lp *core.LP, ev *core.Event) {
	st := lp.State.(*State)
	st.Skip++ //simlint:irreversible fixture: monotonic diagnostic counter, never read by the model
}

func (Waived) Reverse(lp *core.LP, ev *core.Event) {}
