// Package detdep is a dependency fixture for determcheck's cross-package
// fact propagation: its nondeterminism must surface at call sites in
// packages that import it.
package detdep

import "time"

// Jitter is nondeterministic: it reads the wall clock.
func Jitter() int64 {
	return time.Now().UnixNano()
}

// Pure is deterministic.
func Pure(x int64) int64 { return x * 2654435761 }
