// Fixture dependency for ownercheck: the exported owned field lets the
// importing fixture exercise cross-package ownedFact flow.
package owneddep

type Dep struct {
	Gauge int64 //simlint:owned
}

// Bump is the owner's hot path.
func (d *Dep) Bump() { d.Gauge++ }
