// Fixture for lifecheck: use-after-free of recycled payloads and sends
// that retain pooled memory.
package lifecheck

import (
	"core"
	"sync"
)

type Msg struct {
	N    int
	Hops []int
}

var msgPool = sync.Pool{New: func() any { return new(Msg) }}

func newMsg() *Msg { return msgPool.Get().(*Msg) }

// Pool mimics the model-side Recycler: Recycle(data) returns a payload
// to the pool.
type Pool struct{}

func (Pool) Recycle(data any) {
	msgPool.Put(data)
}

var recycler Pool

// useAfterRecycle reads a payload after handing it back.
func useAfterRecycle(lp *core.LP, ev *core.Event) {
	m := ev.Data.(*Msg)
	recycler.Recycle(m)
	_ = m.N // want `use of m after it was freed/recycled`
}

// useAfterPut writes through a pointer already surrendered to sync.Pool.
func useAfterPut(m *Msg) {
	msgPool.Put(m)
	m.N = 1 // want `use of m after it was freed/recycled`
}

// branchLocalFree only frees on one path; the analysis must not flag the
// common continuation.
func branchLocalFree(m *Msg, done bool) int {
	if done {
		msgPool.Put(m)
		return 0
	}
	return m.N
}

// revived rebinds the variable after the free; the new payload is live.
func revived() int {
	m := newMsg()
	msgPool.Put(m)
	m = newMsg()
	return m.N
}

// retainsInFlight wires the current event's payload into a new send; the
// kernel recycles that payload when the in-flight event dies.
func retainsInFlight(lp *core.LP, ev *core.Event) {
	m := ev.Data.(*Msg)
	lp.Send(1, 1, m) // want `retains m, the in-flight event's pooled payload`
}

// forwardsFresh copies into a fresh payload before sending: fine.
func forwardsFresh(lp *core.LP, ev *core.Event) {
	m := ev.Data.(*Msg)
	out := newMsg()
	out.N = m.N
	lp.Send(1, 1, out)
}

// doubleSend aliases one payload into two live events.
func doubleSend(lp *core.LP) {
	m := newMsg()
	lp.Send(1, 1, m)
	lp.SendSelf(2, m) // want `wired into a second send`
}

// sendTwoFresh sends distinct payloads: fine.
func sendTwoFresh(lp *core.LP) {
	a := newMsg()
	b := newMsg()
	lp.Send(1, 1, a)
	lp.Send(2, 1, b)
}

// waivedRetention documents an intentional alias.
func waivedRetention(lp *core.LP, ev *core.Event) {
	m := ev.Data.(*Msg)
	lp.Send(1, 1, m) //simlint:retained fixture: handler does not recycle, payload ownership transfers
}

// valueSend passes a non-pointer payload; copying is safe, no finding.
func valueSend(lp *core.LP) {
	v := 7
	lp.Send(1, 1, v)
	lp.Send(2, 1, v)
}
