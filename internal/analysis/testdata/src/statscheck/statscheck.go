// Fixture for statscheck: PE-sharded counters may only be touched
// through methods of the owning type; everything else needs a barrier
// and a //simlint:crosspe waiver.
package statscheck

type Shard struct {
	hits int64 //simlint:sharded
	//simlint:sharded
	misses int64
	name   string // untagged: freely shared
}

// bump is the owner's hot path: receiver access is allowed.
func (s *Shard) bump() {
	s.hits++
	s.misses++
}

// stealFrom touches another shard's counter from inside an owner method:
// the receiver check is per-value, not per-type.
func (s *Shard) stealFrom(o *Shard) {
	s.hits += o.hits // want `access to PE-sharded counter`
}

// Sum races with every owner.
func Sum(all []*Shard) int64 {
	var t int64
	for _, s := range all {
		t += s.hits // want `access to PE-sharded counter`
	}
	return t
}

// SumAtBarrier is the sanctioned pattern: a barrier orders the reads, and
// the waiver names it.
func SumAtBarrier(all []*Shard) int64 {
	var t int64
	for _, s := range all {
		t += s.misses //simlint:crosspe fixture: caller holds the collection barrier
	}
	return t
}

// Rename touches only the untagged field: no finding.
func Rename(all []*Shard, n string) {
	for _, s := range all {
		s.name = n
	}
}
