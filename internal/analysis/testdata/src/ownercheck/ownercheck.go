// Fixture for ownercheck: goroutine-owned fields may only be touched
// through the owning receiver's methods; cross-goroutine reads need a
// //simlint:crosspe waiver naming the ordering, writes need an atomic
// field type.
package ownercheck

import (
	"sync/atomic"

	"owneddep"
)

type PE struct {
	free []int //simlint:owned
	//simlint:owned
	live  int64
	wakes atomic.Int64 //simlint:owned
	name  string       // untagged: freely shared
}

// run is the owner's hot path: receiver access is allowed.
func (p *PE) run() {
	p.free = append(p.free, 1)
	p.live++
}

// stealFrom reads another PE's owned field from inside an owner method:
// ownership is per-value, not per-type.
func (p *PE) stealFrom(o *PE) int64 {
	return o.live // want `read of goroutine-owned field`
}

// drain writes an owned field without going through the owner.
func drain(p *PE) {
	p.free = nil // want `write to goroutine-owned field`
}

// bump is a compound write, classified as a write, not a read.
func bump(p *PE) {
	p.live++ // want `write to goroutine-owned field`
}

// gauge reads an owned field without a receiver.
func gauge(p *PE) int64 {
	return p.live // want `read of goroutine-owned field`
}

// gaugeAtBarrier is the sanctioned read: the waiver names the ordering.
func gaugeAtBarrier(p *PE) int64 {
	return p.live //simlint:crosspe fixture: caller holds the collection barrier
}

// wake pokes the atomic field from outside the owner: atomics are the
// sanctioned cross-goroutine channel, so no finding.
func wake(p *PE) {
	p.wakes.Add(1)
}

// construct writes owned fields before the owner goroutine exists; the
// doc-comment waiver covers the whole function.
//
//simlint:crosspe fixture: construction, the owner goroutine has not started
func construct() *PE {
	p := &PE{}
	p.free = make([]int, 0, 8)
	return p
}

// pokeDep writes an owned field known only through a cross-package fact.
func pokeDep(d *owneddep.Dep) {
	d.Gauge++ // want `write to goroutine-owned field`
}

// rename touches only the untagged field: no finding.
func rename(p *PE, n string) {
	p.name = n
}
