// Package core is a minimal stand-in for the real kernel package. The
// simlint analyzers recognise kernel types by name and shape (a package
// named "core" exposing LP, Event, Send, ...), so fixtures built against
// this stub exercise exactly the code paths the real tree does, without
// the fixture tree depending on the module.
package core

type Time float64

type LPID int32

// Event mirrors the kernel event: Data carries the model payload.
type Event struct {
	Data any
}

// LP mirrors the kernel logical process: State holds the model state.
type LP struct {
	State any
}

func (lp *LP) Send(dst LPID, delay Time, data any) *Event {
	return &Event{Data: data}
}

func (lp *LP) SendSelf(delay Time, data any) *Event {
	return &Event{Data: data}
}

// Rand stands in for the LP's reversible random stream.
func (lp *LP) Rand() uint64 { return 4 }
