// Package analysis implements simlint: a suite of static analyzers that
// enforce the Time Warp kernel's model-author contracts at build time —
// reverse-computation completeness (reversecheck), handler determinism
// (determcheck), event/payload lifecycle discipline (lifecheck), per-PE
// counter ownership (statscheck), goroutine-ownership of annotated
// fields (ownercheck) and lock-free publish discipline (atomiccheck).
// See docs/ANALYSIS.md for the contracts and the escape-hatch
// annotations.
//
// The framework mirrors golang.org/x/tools/go/analysis (Analyzer, Pass,
// diagnostics, object facts) but is built on the standard library only:
// the toolchains this repository targets are offline, so the x/tools
// module cannot be fetched. Packages are loaded by internal/analysis/load
// and driven in dependency order by internal/analysis/driver, which is
// what lets analyzers export facts about a package's functions and
// consume them while analyzing its dependents.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"reflect"
)

// An Analyzer is one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics.
	Name string
	// Doc is a one-paragraph description of the contract enforced.
	Doc string
	// Keyword is the //simlint:<keyword> suppression annotation that
	// waives this analyzer's findings (with a reason naming the invariant
	// being waived).
	Keyword string
	// Run executes the analyzer on one package.
	Run func(*Pass) error
}

// A Diagnostic is one finding. Waived findings are still reported — the
// driver uses them for stale-waiver accounting and machine-readable
// output — but they don't fail a lint run.
type Diagnostic struct {
	Pos     token.Pos
	Message string
	// Waived is true when a //simlint:<keyword> annotation suppresses
	// this finding.
	Waived bool
}

// A Pass provides one analyzer with one package's syntax and types, plus
// the fact store shared across the whole driver run.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	directives *directiveIndex
	facts      *FactStore
	usage      *DirectiveUsage
	report     func(Diagnostic)
}

// Reportf records a finding. A //simlint:<keyword> annotation at the
// position (same line, the line above, or the enclosing function's doc
// comment) marks it Waived rather than dropping it, so the driver can
// tell a waiver that still earns its keep from a stale one.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...), Waived: p.Suppressed(pos)})
}

// Suppressed reports whether a finding of this analyzer at pos is waived
// by an annotation, and records every matching annotation as used. Only
// annotations in the files of this pass are consulted, so analyzers that
// surface cross-package facts should check suppression in the fact's
// home package before exporting it.
func (p *Pass) Suppressed(pos token.Pos) bool {
	return p.directives.suppressed(p.Fset, pos, p.Analyzer.Keyword, p.usage)
}

// ExportObjectFact attaches a fact to obj for downstream packages. Facts
// are keyed by (object, concrete fact type): exporting a second fact of
// the same type for the same object overwrites the first.
func (p *Pass) ExportObjectFact(obj types.Object, fact any) {
	p.facts.set(obj, fact)
}

// ImportObjectFact copies the fact of *ptr's type attached to obj into
// *ptr and reports whether one was found.
func (p *Pass) ImportObjectFact(obj types.Object, ptr any) bool {
	return p.facts.get(obj, ptr)
}

// FactStore holds object facts for one driver run. Because every package
// in a run shares one types object world (see internal/analysis/load),
// plain object identity keys work across packages.
type FactStore struct {
	m map[factKey]any
}

type factKey struct {
	obj types.Object
	typ reflect.Type
}

// NewFactStore returns an empty fact store.
func NewFactStore() *FactStore {
	return &FactStore{m: make(map[factKey]any)}
}

func (s *FactStore) set(obj types.Object, fact any) {
	s.m[factKey{obj, reflect.TypeOf(fact)}] = fact
}

func (s *FactStore) get(obj types.Object, ptr any) bool {
	v := reflect.ValueOf(ptr)
	if v.Kind() != reflect.Pointer {
		panic("analysis: ImportObjectFact requires a pointer")
	}
	fact, ok := s.m[factKey{obj, v.Elem().Type()}]
	if !ok {
		return false
	}
	v.Elem().Set(reflect.ValueOf(fact))
	return true
}

// NewPass assembles a Pass for one (analyzer, package) pair. The driver
// and the analysistest harness are the only callers. usage may be nil
// when the caller doesn't care about stale-waiver accounting.
func NewPass(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, facts *FactStore, usage *DirectiveUsage, report func(Diagnostic)) *Pass {
	return &Pass{
		Analyzer:   a,
		Fset:       fset,
		Files:      files,
		Pkg:        pkg,
		TypesInfo:  info,
		directives: indexDirectives(fset, files),
		facts:      facts,
		usage:      usage,
		report:     report,
	}
}

// Analyzers returns the full simlint suite in its canonical order.
func Analyzers() []*Analyzer {
	return []*Analyzer{Reversecheck, Determcheck, Lifecheck, Statscheck, Ownercheck, Atomiccheck}
}
