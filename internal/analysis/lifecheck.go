package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Lifecheck enforces the recycled event/payload lifecycle introduced with
// the kernel's free lists: once an event or payload has been handed to a
// free/recycle call it belongs to the pool (a later get may already have
// reincarnated it), so any further use in the same function is a
// use-after-free that the dynamic tripwires (Config.CheckInvariants,
// simcheck paranoid cells) only catch probabilistically. It also flags
// sends that alias a pooled payload into a second event: the kernel
// recycles each dead event's payload exactly once, so two live events
// sharing one payload means a double-recycle (and a reused payload
// mutating under a live event's feet).
//
// Checked free points:
//   - (*core.eventPool).put / .release and (*core.PE).free — kernel side;
//   - (*sync.Pool).Put — the model-side payload pools;
//   - any method named Recycle — the core.Recycler contract.
//
// The analysis is flow-lite: a variable freed by a statement is dead for
// the remaining statements of the same block (and their nested blocks);
// frees inside a nested block do not poison the enclosing one, so
// branch-local frees never false-positive. Intentional retention is
// waived with //simlint:retained <reason>.
var Lifecheck = &Analyzer{
	Name:    "lifecheck",
	Doc:     "flag use of events/payloads after free or recycle, and sends that retain pooled payloads",
	Keyword: "retained",
	Run:     runLifecheck,
}

func runLifecheck(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkUseAfterFree(pass, fd.Body, make(map[*types.Var]token.Pos))
			checkPayloadRetention(pass, fd)
		}
	}
	return nil
}

// freedArg returns the variable a call kills, if the call is one of the
// recognised free/recycle entry points.
func freedArg(pass *Pass, call *ast.CallExpr) *types.Var {
	fn := StaticCallee(pass.TypesInfo, call)
	argIndex := -1
	if fn != nil {
		recv := fn.Type().(*types.Signature).Recv()
		switch {
		case recv != nil && isNamedIn(recv.Type(), "sync", "Pool") && fn.Name() == "Put":
			argIndex = 0
		case recv != nil && isKernelType(recv.Type(), "eventPool") && fn.Name() == "put":
			argIndex = 0
		case recv != nil && isKernelType(recv.Type(), "eventPool") && fn.Name() == "release":
			argIndex = 1
		case recv != nil && isKernelType(recv.Type(), "PE") && fn.Name() == "free":
			argIndex = 0
		case recv != nil && fn.Name() == "Recycle" && len(call.Args) == 1:
			argIndex = 0
		}
	} else if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Recycle" && len(call.Args) == 1 {
		// Recycle through an interface value (core.Recycler): still a
		// free point even though the callee is dynamic.
		argIndex = 0
	}
	if argIndex < 0 || argIndex >= len(call.Args) {
		return nil
	}
	if id, ok := ast.Unparen(call.Args[argIndex]).(*ast.Ident); ok {
		if v, ok := pass.TypesInfo.Uses[id].(*types.Var); ok {
			return v
		}
	}
	return nil
}

// isNamedIn reports whether t (behind pointers) is the named type
// pkgPath.name.
func isNamedIn(t types.Type, pkgPath, name string) bool {
	n := namedOf(t)
	if n == nil || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Name() == name && n.Obj().Pkg().Path() == pkgPath
}

// checkUseAfterFree walks one block's statements in order, tracking
// variables killed by free calls. dead maps each killed variable to the
// position of its free. Nested blocks inherit a copy of the dead set;
// kills inside them stay local.
func checkUseAfterFree(pass *Pass, block *ast.BlockStmt, dead map[*types.Var]token.Pos) {
	for _, stmt := range block.List {
		// 1. Uses of already-dead variables anywhere in this statement
		// (including its nested blocks) are violations — except the
		// identifiers being reassigned, which revive the variable.
		reassigned := reassignedVars(pass, stmt)
		if len(dead) > 0 {
			ast.Inspect(stmt, func(n ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if !ok {
					return true
				}
				v, ok := pass.TypesInfo.Uses[id].(*types.Var)
				if !ok {
					return true
				}
				if freePos, isDead := dead[v]; isDead && !reassigned[v] {
					pass.Reportf(id.Pos(),
						"use of %s after it was freed/recycled at %v; the pool may already have reissued it (waive with //simlint:retained <reason>)",
						id.Name, pass.Fset.Position(freePos))
					delete(dead, v) // one report per free
				}
				return true
			})
		}
		for v := range reassigned {
			delete(dead, v)
		}

		// 2. Nested blocks see the current dead set but cannot extend it.
		for _, nested := range nestedBlocks(stmt) {
			checkUseAfterFree(pass, nested, copyDead(dead))
		}

		// 3. Free calls directly in this statement (not inside a nested
		// block, which step 2 already handled with a local copy) kill
		// their argument for the rest of this block.
		ast.Inspect(stmt, func(n ast.Node) bool {
			switch n.(type) {
			case *ast.BlockStmt, *ast.FuncLit:
				return false
			}
			if call, ok := n.(*ast.CallExpr); ok {
				if v := freedArg(pass, call); v != nil {
					dead[v] = call.Pos()
				}
			}
			return true
		})
	}
}

// nestedBlocks lists the blocks directly under one statement.
func nestedBlocks(stmt ast.Stmt) []*ast.BlockStmt {
	var out []*ast.BlockStmt
	switch s := stmt.(type) {
	case *ast.BlockStmt:
		out = append(out, s)
	case *ast.IfStmt:
		out = append(out, s.Body)
		if e, ok := s.Else.(*ast.BlockStmt); ok {
			out = append(out, e)
		} else if e, ok := s.Else.(*ast.IfStmt); ok {
			out = append(out, nestedBlocks(e)...)
		}
	case *ast.ForStmt:
		out = append(out, s.Body)
	case *ast.RangeStmt:
		out = append(out, s.Body)
	case *ast.SwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				out = append(out, &ast.BlockStmt{List: cc.Body})
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				out = append(out, &ast.BlockStmt{List: cc.Body})
			}
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				out = append(out, &ast.BlockStmt{List: cc.Body})
			}
		}
	case *ast.LabeledStmt:
		out = append(out, nestedBlocks(s.Stmt)...)
	}
	return out
}

// reassignedVars returns the variables a statement rebinds at its top
// level (assignment or short declaration), which revives them.
func reassignedVars(pass *Pass, stmt ast.Stmt) map[*types.Var]bool {
	out := make(map[*types.Var]bool)
	assign, ok := stmt.(*ast.AssignStmt)
	if !ok {
		return out
	}
	for _, lhs := range assign.Lhs {
		if id, ok := lhs.(*ast.Ident); ok {
			if v, ok := pass.TypesInfo.Defs[id].(*types.Var); ok {
				out[v] = true
			} else if v, ok := pass.TypesInfo.Uses[id].(*types.Var); ok {
				out[v] = true
			}
		}
	}
	return out
}

func copyDead(dead map[*types.Var]token.Pos) map[*types.Var]token.Pos {
	cp := make(map[*types.Var]token.Pos, len(dead))
	for k, v := range dead {
		cp[k] = v
	}
	return cp
}

// checkPayloadRetention flags sends whose payload argument aliases pooled
// memory: the payload of the event currently being handled (which the
// kernel will recycle when that event dies), or a payload already wired
// into an earlier send in the same block.
func checkPayloadRetention(pass *Pass, fd *ast.FuncDecl) {
	// Variables bound to the in-flight event's payload: `msg :=
	// ev.Data.(*T)` anywhere in the function.
	fromData := make(map[*types.Var]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range assign.Rhs {
			ta, ok := ast.Unparen(rhs).(*ast.TypeAssertExpr)
			if !ok || ta.Type == nil {
				continue
			}
			sel, ok := ast.Unparen(ta.X).(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Data" || !isKernelType(pass.TypesInfo.TypeOf(sel.X), "Event") {
				continue
			}
			if i < len(assign.Lhs) {
				if id, ok := assign.Lhs[i].(*ast.Ident); ok {
					if v, ok := pass.TypesInfo.Defs[id].(*types.Var); ok {
						fromData[v] = true
					} else if v, ok := pass.TypesInfo.Uses[id].(*types.Var); ok {
						fromData[v] = true
					}
				}
			}
		}
		return true
	})

	var walkBlock func(block *ast.BlockStmt, sent map[*types.Var]token.Pos)
	walkBlock = func(block *ast.BlockStmt, sent map[*types.Var]token.Pos) {
		for _, stmt := range block.List {
			for _, nested := range nestedBlocks(stmt) {
				walkBlock(nested, copyDead(sent))
			}
			ast.Inspect(stmt, func(n ast.Node) bool {
				switch n.(type) {
				case *ast.BlockStmt, *ast.FuncLit:
					return false
				}
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				arg := sendPayloadArg(pass, call)
				if arg == nil {
					return true
				}
				id, ok := ast.Unparen(arg).(*ast.Ident)
				if !ok {
					return true
				}
				v, ok := pass.TypesInfo.Uses[id].(*types.Var)
				if !ok || !pointerLike(v.Type()) {
					return true
				}
				if fromData[v] {
					pass.Reportf(arg.Pos(),
						"send retains %s, the in-flight event's pooled payload; the kernel recycles it when that event dies, corrupting this send (allocate or draw a fresh payload; waive with //simlint:retained <reason>)",
						id.Name)
				} else if prev, dup := sent[v]; dup {
					pass.Reportf(arg.Pos(),
						"payload %s is wired into a second send (first at %v); two live events would share one pooled payload and it would be recycled twice (waive with //simlint:retained <reason>)",
						id.Name, pass.Fset.Position(prev))
				}
				sent[v] = arg.Pos()
				return true
			})
			for v := range reassignedVars(pass, stmt) {
				delete(sent, v)
			}
		}
	}
	walkBlock(fd.Body, make(map[*types.Var]token.Pos))
}

// pointerLike reports whether sharing values of this type across events
// aliases mutable memory (pointers, maps, slices, chans).
func pointerLike(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Map, *types.Slice, *types.Chan, *types.Interface:
		return true
	}
	return false
}

// sendPayloadArg returns the data argument of a kernel send/schedule
// call, or nil.
func sendPayloadArg(pass *Pass, call *ast.CallExpr) ast.Expr {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	recvType := pass.TypesInfo.TypeOf(sel.X)
	if recvType == nil {
		return nil
	}
	switch sel.Sel.Name {
	case "Send":
		if isKernelType(recvType, "LP") && len(call.Args) == 3 {
			return call.Args[2]
		}
	case "SendSelf":
		if isKernelType(recvType, "LP") && len(call.Args) == 2 {
			return call.Args[1]
		}
	case "Schedule":
		// Host.Schedule(dst, t, data) — engine-agnostic bootstrap; the
		// receiver is an interface (core.Host) or a concrete engine.
		if len(call.Args) == 3 {
			if named := namedOf(recvType); named != nil && named.Obj().Pkg() != nil && named.Obj().Pkg().Name() == "core" {
				return call.Args[2]
			}
			if types.IsInterface(recvType) {
				return call.Args[2]
			}
		}
	}
	return nil
}
