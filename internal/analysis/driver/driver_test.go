package driver_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/driver"
)

// TestRepoIsClean is simlint's self-test: the whole module must analyze
// with zero unwaived findings under the full analyzer suite — every
// intentional contract exception in the tree carries its //simlint:
// annotation with a reason, no annotation is stale or misplaced, and no
// new violation has crept in. This is the same invariant `make lint`
// enforces in CI. Waived findings are expected (they are the record of
// each annotation earning its keep) and are only counted.
func TestRepoIsClean(t *testing.T) {
	suite := make(map[string]bool)
	for _, a := range analysis.Analyzers() {
		suite[a.Name] = true
	}
	for _, want := range []string{"reversecheck", "determcheck", "lifecheck", "statscheck", "ownercheck", "atomiccheck"} {
		if !suite[want] {
			t.Errorf("analyzer suite is missing %s", want)
		}
	}

	findings, err := driver.Run(".", false, "./...")
	if err != nil {
		t.Fatalf("simlint failed to run: %v", err)
	}
	bad := driver.Unwaived(findings)
	for _, f := range bad {
		t.Errorf("%s", f)
	}
	if len(bad) > 0 {
		t.Fatalf("simlint found %d unannotated finding(s); fix them or waive with //simlint:<keyword> <reason>", len(bad))
	}
	t.Logf("clean: %d waived finding(s), 0 unwaived", len(findings))
}

// TestStaleAndMisplacedWaivers drives the full pipeline over a throwaway
// module containing one waiver of each fate: one that suppresses a real
// ownership finding (surfaces as a waived finding, not a stale one), one
// anchored to innocent code (stale — it suppresses nothing), and one
// trailing a closing brace (misplaced — it cannot apply to anything, and
// placement is reported instead of staleness).
func TestStaleAndMisplacedWaivers(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module tmpmod\n\ngo 1.24\n")
	write("tmpmod.go", `package tmpmod

type worker struct {
	n int //simlint:owned
}

func (w *worker) bump() { w.n++ }

// grab reads another goroutine's owned field; the waiver is used, so it
// must surface as a waived finding and must not be reported stale.
func grab(w *worker) int {
	return w.n //simlint:crosspe test barrier: read happens after the owner goroutine is joined
}

func idle() {
	//simlint:crosspe stale: the line below violates nothing, so this waiver suppresses nothing
	_ = 1
}

func stray() {
	_ = 2
} //simlint:crosspe trailing a closing brace, so this anchors to nothing
`)

	findings, err := driver.Run(dir, false, "./...")
	if err != nil {
		t.Fatalf("driver.Run on temp module: %v", err)
	}
	var waivedOwner, stale, misplaced int
	for _, f := range findings {
		switch {
		case f.Analyzer == "ownercheck" && f.Waived:
			waivedOwner++
		case strings.Contains(f.Message, "stale waiver"):
			stale++
			if f.Waived {
				t.Errorf("hygiene finding must not be waivable: %s", f)
			}
		case strings.Contains(f.Message, "misplaced //simlint:crosspe"):
			misplaced++
		default:
			t.Errorf("unexpected finding: %s", f)
		}
	}
	if waivedOwner != 1 {
		t.Errorf("want 1 waived ownercheck finding (the used waiver's record), got %d", waivedOwner)
	}
	if stale != 1 {
		t.Errorf("want 1 stale-waiver finding, got %d", stale)
	}
	if misplaced != 1 {
		t.Errorf("want 1 misplaced-waiver finding, got %d", misplaced)
	}
	if got := len(driver.Unwaived(findings)); got != stale+misplaced {
		t.Errorf("unwaived count %d, want %d (stale + misplaced only)", got, stale+misplaced)
	}
}
