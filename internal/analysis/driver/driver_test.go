package driver_test

import (
	"testing"

	"repro/internal/analysis/driver"
)

// TestRepoIsClean is simlint's self-test: the whole module must analyze
// with zero findings — every intentional contract exception in the tree
// carries its //simlint: annotation, and no new violation has crept in.
// This is the same invariant `make lint` enforces in CI.
func TestRepoIsClean(t *testing.T) {
	findings, err := driver.Run(".", false, "./...")
	if err != nil {
		t.Fatalf("simlint failed to run: %v", err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
	if len(findings) > 0 {
		t.Fatalf("simlint found %d unannotated finding(s); fix them or waive with //simlint:<keyword> <reason>", len(findings))
	}
}
