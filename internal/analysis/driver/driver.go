// Package driver runs the simlint analyzer suite over a module.
//
// It loads the requested packages (plus all their module-internal
// dependencies) through internal/analysis/load, then runs every analyzer
// over every loaded package in dependency order, sharing one fact store —
// so facts exported while analyzing a dependency are visible when its
// dependents are analyzed. Diagnostics are only kept for the packages the
// patterns matched directly; dependencies are analyzed for their facts.
package driver

import (
	"fmt"
	"go/token"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/load"
)

// Finding is one formatted diagnostic.
type Finding struct {
	Position token.Position
	Analyzer string
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Position, f.Analyzer, f.Message)
}

// Run analyzes the packages matched by patterns in the module containing
// dir and returns the findings, sorted by position. includeTests adds
// in-package _test.go files.
func Run(dir string, includeTests bool, patterns ...string) ([]Finding, error) {
	loader, err := load.New(dir)
	if err != nil {
		return nil, err
	}
	loader.IncludeTests = includeTests
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, requested, err := loader.Load(patterns...)
	if err != nil {
		return nil, err
	}

	fset := loader.Fset()
	analyzers := analysis.Analyzers()
	facts := analysis.NewFactStore()
	var findings []Finding
	for _, p := range pkgs {
		// Skip the analyzers' own tree: its fixtures and message strings
		// deliberately violate every contract.
		if strings.HasPrefix(p.ImportPath, loader.ModulePath+"/internal/analysis") {
			continue
		}
		keep := requested[p.ImportPath]
		for _, a := range analyzers {
			pass := analysis.NewPass(a, fset, p.Files, p.Types, p.TypesInfo, facts, func(d analysis.Diagnostic) {
				if keep {
					findings = append(findings, Finding{
						Position: fset.Position(d.Pos),
						Analyzer: a.Name,
						Message:  d.Message,
					})
				}
			})
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %v", p.ImportPath, a.Name, err)
			}
		}
		if keep {
			findings = append(findings, directiveHygiene(fset, p)...)
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i].Position, findings[j].Position
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return findings[i].Message < findings[j].Message
	})
	return findings, nil
}

// directiveHygiene flags malformed //simlint: annotations: unknown
// keywords, and suppression annotations with no reason (an unexplained
// waiver defeats the point of requiring one).
func directiveHygiene(fset *token.FileSet, p *load.Package) []Finding {
	var out []Finding
	for _, d := range analysis.Directives(fset, p.Files) {
		_, isSuppression := analysis.SuppressionKeywords[d.Keyword]
		switch {
		case !isSuppression && !analysis.MarkerKeywords[d.Keyword]:
			known := make([]string, 0, len(analysis.SuppressionKeywords)+len(analysis.MarkerKeywords))
			for k := range analysis.SuppressionKeywords {
				known = append(known, k)
			}
			for k := range analysis.MarkerKeywords {
				known = append(known, k)
			}
			sort.Strings(known)
			out = append(out, Finding{
				Position: fset.Position(d.Pos),
				Analyzer: "simlint",
				Message:  fmt.Sprintf("unknown directive //simlint:%s (known: %s)", d.Keyword, strings.Join(known, ", ")),
			})
		case isSuppression && d.Reason == "":
			out = append(out, Finding{
				Position: fset.Position(d.Pos),
				Analyzer: "simlint",
				Message:  fmt.Sprintf("//simlint:%s needs a reason naming the invariant being waived", d.Keyword),
			})
		}
	}
	return out
}

// Rel shortens a finding position's filename relative to base, for
// stable output in tests and CI logs.
func Rel(base string, f Finding) Finding {
	if rel, err := filepath.Rel(base, f.Position.Filename); err == nil && !strings.HasPrefix(rel, "..") {
		f.Position.Filename = rel
	}
	return f
}
