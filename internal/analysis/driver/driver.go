// Package driver runs the simlint analyzer suite over a module.
//
// It loads the requested packages (plus all their module-internal
// dependencies) through internal/analysis/load, then runs every analyzer
// over every loaded package in dependency order, sharing one fact store —
// so facts exported while analyzing a dependency are visible when its
// dependents are analyzed. Diagnostics are only kept for the packages the
// patterns matched directly; dependencies are analyzed for their facts.
package driver

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/load"
)

// Finding is one formatted diagnostic. Waived findings carry the record
// of an annotation earning its keep: they appear in -format json output
// (and feed stale-waiver detection) but don't fail a lint run.
type Finding struct {
	Position token.Position
	Analyzer string
	Message  string
	Waived   bool
}

func (f Finding) String() string {
	suffix := ""
	if f.Waived {
		suffix = " (waived)"
	}
	return fmt.Sprintf("%s: %s: %s%s", f.Position, f.Analyzer, f.Message, suffix)
}

// Unwaived filters findings down to the ones that fail a lint run.
func Unwaived(findings []Finding) []Finding {
	var out []Finding
	for _, f := range findings {
		if !f.Waived {
			out = append(out, f)
		}
	}
	return out
}

// Run analyzes the packages matched by patterns in the module containing
// dir and returns the findings, sorted by position. includeTests adds
// in-package _test.go files.
func Run(dir string, includeTests bool, patterns ...string) ([]Finding, error) {
	loader, err := load.New(dir)
	if err != nil {
		return nil, err
	}
	loader.IncludeTests = includeTests
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, requested, err := loader.Load(patterns...)
	if err != nil {
		return nil, err
	}

	fset := loader.Fset()
	analyzers := analysis.Analyzers()
	facts := analysis.NewFactStore()
	usage := analysis.NewDirectiveUsage()
	var findings []Finding
	for _, p := range pkgs {
		// Skip the analyzers' own tree: its fixtures and message strings
		// deliberately violate every contract.
		if strings.HasPrefix(p.ImportPath, loader.ModulePath+"/internal/analysis") {
			continue
		}
		keep := requested[p.ImportPath]
		for _, a := range analyzers {
			pass := analysis.NewPass(a, fset, p.Files, p.Types, p.TypesInfo, facts, usage, func(d analysis.Diagnostic) {
				if keep {
					findings = append(findings, Finding{
						Position: fset.Position(d.Pos),
						Analyzer: a.Name,
						Message:  d.Message,
						Waived:   d.Waived,
					})
				}
			})
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %v", p.ImportPath, a.Name, err)
			}
		}
		// Suppression only consults same-package directives and every
		// analyzer has now run over p, so p's usage is final: hygiene
		// (including stale-waiver detection) can run per package.
		if keep {
			findings = append(findings, DirectiveHygiene(fset, p.Files, usage)...)
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i].Position, findings[j].Position
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return findings[i].Message < findings[j].Message
	})
	return findings, nil
}

// DirectiveHygiene flags malformed //simlint: annotations in files:
// unknown keywords, suppression annotations with no reason (an
// unexplained waiver defeats the point of requiring one), markers
// missing a required argument, misplaced annotations whose scope covers
// no finding-capable line, and — given the usage recorded by a completed
// analyzer run — stale waivers that no longer suppress anything. usage
// may be nil to skip stale-waiver detection (the other checks are purely
// syntactic).
func DirectiveHygiene(fset *token.FileSet, files []*ast.File, usage *analysis.DirectiveUsage) []Finding {
	anchors := analysis.AnchorLines(fset, files)
	var out []Finding
	report := func(d analysis.Directive, format string, args ...any) {
		out = append(out, Finding{
			Position: fset.Position(d.Pos),
			Analyzer: "simlint",
			Message:  fmt.Sprintf(format, args...),
		})
	}
	for _, d := range analysis.Directives(fset, files) {
		_, isSuppression := analysis.SuppressionKeywords[d.Keyword]
		switch {
		case !isSuppression && !analysis.MarkerKeywords[d.Keyword]:
			known := make([]string, 0, len(analysis.SuppressionKeywords)+len(analysis.MarkerKeywords))
			for k := range analysis.SuppressionKeywords {
				known = append(known, k)
			}
			for k := range analysis.MarkerKeywords {
				known = append(known, k)
			}
			sort.Strings(known)
			report(d, "unknown directive //simlint:%s (known: %s)", d.Keyword, strings.Join(known, ", "))
		case !d.Anchored(fset, anchors):
			// A directive whose scope holds no statement, field or spec
			// (e.g. trailing a closing brace) suppresses or marks nothing;
			// report placement alone, not a stale waiver on top.
			report(d, "misplaced //simlint:%s: no statement, field or declaration on its line or the next, so it cannot apply to anything", d.Keyword)
		case isSuppression && d.Reason == "":
			report(d, "//simlint:%s needs a reason naming the invariant being waived", d.Keyword)
		case d.Keyword == "publishes" && d.Reason == "":
			report(d, "//simlint:publishes needs the name of the sibling field the tagged guard publishes")
		case isSuppression && usage != nil && !usage.Used(d.Pos):
			report(d, "stale waiver: //simlint:%s suppresses no finding; delete it, or re-anchor it to the code it used to cover", d.Keyword)
		}
	}
	return out
}

// Rel shortens a finding position's filename relative to base, for
// stable output in tests and CI logs.
func Rel(base string, f Finding) Finding {
	if rel, err := filepath.Rel(base, f.Position.Filename); err == nil && !strings.HasPrefix(rel, "..") {
		f.Position.Filename = rel
	}
	return f
}
