package analysis_test

import (
	"testing"

	"repro/internal/analysis"
)

func TestAtomiccheck(t *testing.T) {
	runFixture(t, analysis.Atomiccheck, "atomiccheck")
}
