package analysis_test

import (
	"testing"

	"repro/internal/analysis"
)

func TestReversecheck(t *testing.T) {
	runFixture(t, analysis.Reversecheck, "reversecheck")
}
