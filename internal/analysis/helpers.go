package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// This file holds the shared kernel-shape helpers: recognising the
// core.LP / core.Event types, discovering Handler implementations
// (Forward/Reverse method pairs), and walking the static call graph a
// handler can reach. The analyzers are deliberately name-and-shape based
// rather than hard-wired to one import path, so the analysistest fixtures
// (and any future extraction of the kernel) exercise the same code paths
// as the real tree.

// namedOf unwraps pointers and aliases down to a named type, or nil.
func namedOf(t types.Type) *types.Named {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Alias:
			t = types.Unalias(u)
		case *types.Named:
			return u
		default:
			return nil
		}
	}
}

// isAtomicType reports whether t (possibly behind pointers) is one of
// sync/atomic's types — the one field shape the ownership analyzers
// accept for sanctioned cross-goroutine access.
func isAtomicType(t types.Type) bool {
	n := namedOf(t)
	if n == nil || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Pkg().Path() == "sync/atomic"
}

// markedFields collects every struct field in the pass's files tagged
// with the given marker directive (on the field or its declaration
// group), mapping the field object to the named type that declares it.
func markedFields(pass *Pass, keyword string) map[*types.Var]*types.Named {
	owners := make(map[*types.Var]*types.Named)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				named, _ := pass.TypesInfo.Defs[ts.Name].(*types.TypeName)
				if named == nil {
					continue
				}
				owner := namedOf(named.Type())
				if owner == nil {
					continue
				}
				for _, field := range st.Fields.List {
					if !HasMarker(field.Doc, keyword) && !HasMarker(field.Comment, keyword) {
						continue
					}
					for _, name := range field.Names {
						if v, ok := pass.TypesInfo.Defs[name].(*types.Var); ok {
							owners[v] = owner
						}
					}
				}
			}
		}
	}
	return owners
}

// isKernelType reports whether t (possibly behind pointers) is the named
// type name from a package named "core" — the kernel package, whatever
// path it is vendored under.
func isKernelType(t types.Type, name string) bool {
	n := namedOf(t)
	if n == nil || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Name() == name && n.Obj().Pkg().Name() == "core"
}

// isHandlerSignature reports whether sig is func(*core.LP, *core.Event).
func isHandlerSignature(sig *types.Signature) bool {
	if sig.Params().Len() != 2 || sig.Results().Len() != 0 {
		return false
	}
	return isKernelType(sig.Params().At(0).Type(), "LP") &&
		isKernelType(sig.Params().At(1).Type(), "Event")
}

// HandlerImpl is one concrete Handler implementation found in a package:
// a named type with Forward and Reverse methods of the kernel signature.
type HandlerImpl struct {
	Named   *types.Named
	Forward *ast.FuncDecl
	Reverse *ast.FuncDecl
	Commit  *ast.FuncDecl
}

// FindHandlers discovers the Handler implementations declared in the
// pass's files. Types with only one of the two methods are skipped: they
// are not handlers (the interface requires both), and flagging them would
// double-report what the compiler already rejects at the assignment site.
func FindHandlers(pass *Pass) []*HandlerImpl {
	byType := make(map[*types.Named]*HandlerImpl)
	var order []*types.Named
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil {
				continue
			}
			switch fd.Name.Name {
			case "Forward", "Reverse", "Commit":
			default:
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			sig := obj.Type().(*types.Signature)
			if !isHandlerSignature(sig) {
				continue
			}
			recv := namedOf(sig.Recv().Type())
			if recv == nil {
				continue
			}
			h := byType[recv]
			if h == nil {
				h = &HandlerImpl{Named: recv}
				byType[recv] = h
				order = append(order, recv)
			}
			switch fd.Name.Name {
			case "Forward":
				h.Forward = fd
			case "Reverse":
				h.Reverse = fd
			case "Commit":
				h.Commit = fd
			}
		}
	}
	var out []*HandlerImpl
	for _, n := range order {
		if h := byType[n]; h.Forward != nil && h.Reverse != nil {
			out = append(out, h)
		}
	}
	return out
}

// FuncDecls indexes the package's function declarations by their type
// objects, so call sites resolve to bodies.
func FuncDecls(pass *Pass) map[*types.Func]*ast.FuncDecl {
	m := make(map[*types.Func]*ast.FuncDecl)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				if obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					m[obj] = fd
				}
			}
		}
	}
	return m
}

// StaticCallee resolves a call expression to the concrete function or
// method it invokes, or nil for dynamic calls (interface methods, function
// values, built-ins) — the analyzers' soundness boundary: what dispatches
// dynamically is not followed.
func StaticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, ok := info.Uses[id].(*types.Func)
	if !ok {
		return nil
	}
	sig := fn.Type().(*types.Signature)
	if recv := sig.Recv(); recv != nil && types.IsInterface(recv.Type()) {
		return nil // dynamic dispatch
	}
	return fn
}

// ReachableDecls returns root plus every same-package function reachable
// from it through statically resolvable calls, in discovery order.
// Function literals inside those bodies are visited implicitly (they are
// part of the enclosing body's syntax). Cross-package callees are
// reported through onExternal, once per call site.
func ReachableDecls(pass *Pass, decls map[*types.Func]*ast.FuncDecl, root *ast.FuncDecl, onExternal func(call *ast.CallExpr, callee *types.Func)) []*ast.FuncDecl {
	var order []*ast.FuncDecl
	seen := make(map[*ast.FuncDecl]bool)
	var visit func(fd *ast.FuncDecl)
	visit = func(fd *ast.FuncDecl) {
		if seen[fd] {
			return
		}
		seen[fd] = true
		order = append(order, fd)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := StaticCallee(pass.TypesInfo, call)
			if callee == nil {
				return true
			}
			if next, ok := decls[callee]; ok {
				visit(next)
			} else if callee.Pkg() != nil && callee.Pkg() != pass.Pkg && onExternal != nil {
				onExternal(call, callee)
			}
			return true
		})
	}
	visit(root)
	return order
}

// StatePath resolves an assignable expression to a dotted field path
// rooted at a value of one of the given state types: for a *Router state,
// `r.stats.DelivTimeByDist[b]` yields "stats.DelivTimeByDist". Index
// expressions are dropped (element writes count as writes to the
// container); a direct overwrite of the whole state (`*st = ...`) yields
// the empty path, which covers every field.
func StatePath(info *types.Info, expr ast.Expr, isState func(types.Type) bool) (string, bool) {
	var chain []string
	e := ast.Unparen(expr)
	// A top-level deref (*st = ...) is a whole-state write.
	if star, ok := e.(*ast.StarExpr); ok {
		if t := info.TypeOf(star.X); t != nil && isState(t) {
			return "", true
		}
	}
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SelectorExpr:
			chain = append([]string{x.Sel.Name}, chain...)
			if t := info.TypeOf(x.X); t != nil && isState(t) {
				return strings.Join(chain, "."), true
			}
			e = x.X
		default:
			return "", false
		}
	}
}

// PathCovers reports whether a restore of path r undoes a mutation of
// path f: restoring a field (or the whole state, r == "") covers every
// mutation at or below it.
func PathCovers(r, f string) bool {
	return r == "" || r == f || strings.HasPrefix(f, r+".")
}
