package analysis_test

import (
	"testing"

	"repro/internal/analysis"
)

func TestLifecheck(t *testing.T) {
	runFixture(t, analysis.Lifecheck, "lifecheck")
}

func TestLifecheckKernel(t *testing.T) {
	runFixture(t, analysis.Lifecheck, "lifecheck_kernel")
}
