package analysis_test

import (
	"testing"

	"repro/internal/analysis"
)

func TestOwnercheck(t *testing.T) {
	runFixture(t, analysis.Ownercheck, "ownercheck")
}
