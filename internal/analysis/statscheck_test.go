package analysis_test

import (
	"testing"

	"repro/internal/analysis"
)

func TestStatscheck(t *testing.T) {
	runFixture(t, analysis.Statscheck, "statscheck")
}
