// Package load resolves and typechecks Go packages for the simlint
// analyzers without any dependency outside the standard library.
//
// The hosted toolchains this repository builds on have no network access,
// so golang.org/x/tools/go/packages is not available; this package is the
// minimal equivalent the analysis driver needs. It shells out to
// `go list -deps -export -json` for package metadata (which works fully
// offline: export data for dependencies is compiled into the local build
// cache), then typechecks every module-internal package from source with
// go/types, importing out-of-module dependencies from their compiled
// export data via go/importer.
//
// All packages loaded through one Loader share a single token.FileSet and
// a single types object world, so types.Object identities are comparable
// across packages — which is what lets analyzers attach facts to objects
// in one package and consume them while analyzing another.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one typechecked package: syntax plus type information.
type Package struct {
	// ImportPath is the package's import path (for fixture packages, the
	// synthetic path given to LoadDir).
	ImportPath string
	// Name is the package name.
	Name string
	// Dir is the directory holding the source files.
	Dir string
	// Files are the parsed source files, with comments.
	Files []*ast.File
	// Types is the typechecked package.
	Types *types.Package
	// TypesInfo records types, uses, definitions and selections for every
	// expression in Files.
	TypesInfo *types.Info
	// Imports lists the import paths of direct dependencies.
	Imports []string
}

// listedPackage mirrors the subset of `go list -json` output the loader
// consumes.
type listedPackage struct {
	ImportPath  string
	Name        string
	Dir         string
	Export      string
	Standard    bool
	Goroot      bool
	GoFiles     []string
	TestGoFiles []string
	Imports     []string
	TestImports []string
	Module      *struct{ Path, Dir string }
	Error       *struct{ Err string }
}

// Loader loads and typechecks packages. It is not safe for concurrent
// use.
type Loader struct {
	// ModuleRoot is the directory containing go.mod.
	ModuleRoot string
	// ModulePath is the module path from go.mod.
	ModulePath string
	// IncludeTests adds in-package _test.go files to module packages.
	IncludeTests bool
	// FixtureRoot, when set, resolves imports GOPATH-style from
	// <FixtureRoot>/<import path> before consulting the module or export
	// data — the analysistest testdata/src layout, where fixture packages
	// import each other by bare synthetic paths.
	FixtureRoot string

	fset     *token.FileSet
	meta     map[string]*listedPackage
	pkgs     map[string]*Package // typechecked module-internal packages
	checking map[string]bool     // cycle guard
	gc       types.Importer      // export-data importer for everything else
	fixtures []*Package          // fixture packages, in load (dependency) order
}

// New creates a Loader rooted at the module containing dir (or dir
// itself, walking up to the nearest go.mod).
func New(dir string) (*Loader, error) {
	root, modPath, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	l := &Loader{
		ModuleRoot: root,
		ModulePath: modPath,
		fset:       token.NewFileSet(),
		meta:       make(map[string]*listedPackage),
		pkgs:       make(map[string]*Package),
		checking:   make(map[string]bool),
	}
	l.gc = importer.ForCompiler(l.fset, "gc", l.lookupExport)
	return l, nil
}

// Fset returns the loader's shared file set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// Fixtures returns the fixture packages loaded on demand through
// FixtureRoot, in dependency order (a fixture's imports precede it).
func (l *Loader) Fixtures() []*Package { return l.fixtures }

func dirExists(dir string) bool {
	fi, err := os.Stat(dir)
	return err == nil && fi.IsDir()
}

// findModule locates the enclosing go.mod by walking up from dir and
// reads the module path from its first `module` line.
func findModule(dir string) (root, path string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; d = filepath.Dir(d) {
		mod := filepath.Join(d, "go.mod")
		if data, err := os.ReadFile(mod); err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module"); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("load: no module line in %s", mod)
		}
		if filepath.Dir(d) == d {
			return "", "", fmt.Errorf("load: no go.mod above %s", abs)
		}
	}
}

// goList runs `go list -deps -export -json` on the patterns and merges
// the results into l.meta.
func (l *Loader) goList(patterns ...string) error {
	args := []string{"list", "-e", "-deps", "-export", "-json"}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = l.ModuleRoot
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return fmt.Errorf("load: go list %s: %v\n%s", strings.Join(patterns, " "), err, errb.String())
	}
	dec := json.NewDecoder(&out)
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return fmt.Errorf("load: decoding go list output: %v", err)
		}
		if _, ok := l.meta[p.ImportPath]; !ok {
			cp := p
			l.meta[p.ImportPath] = &cp
		}
	}
	return nil
}

// ensureMeta guarantees metadata for path is present, listing it on
// demand.
func (l *Loader) ensureMeta(path string) (*listedPackage, error) {
	if m, ok := l.meta[path]; ok {
		return m, nil
	}
	if err := l.goList(path); err != nil {
		return nil, err
	}
	m, ok := l.meta[path]
	if !ok {
		return nil, fmt.Errorf("load: package %s not found by go list", path)
	}
	return m, nil
}

// lookupExport feeds the gc importer the export data file recorded by
// `go list -export`.
func (l *Loader) lookupExport(path string) (io.ReadCloser, error) {
	m, err := l.ensureMeta(path)
	if err != nil {
		return nil, err
	}
	if m.Export == "" {
		msg := "no export data"
		if m.Error != nil {
			msg = m.Error.Err
		}
		return nil, fmt.Errorf("load: cannot import %s: %s", path, msg)
	}
	return os.Open(m.Export)
}

// inModule reports whether an import path belongs to the loader's module.
func (l *Loader) inModule(path string) bool {
	return path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/")
}

// importPackage resolves one import during typechecking: module-internal
// packages are typechecked from source (recursively), everything else
// comes from compiled export data.
func (l *Loader) importPackage(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if l.FixtureRoot != "" && !l.inModule(path) {
		if dir := filepath.Join(l.FixtureRoot, path); dirExists(dir) {
			if p, ok := l.pkgs[path]; ok {
				return p.Types, nil
			}
			if l.checking[path] {
				return nil, fmt.Errorf("load: fixture import cycle through %s", path)
			}
			l.checking[path] = true
			defer delete(l.checking, path)
			p, err := l.LoadDir(dir, path)
			if err != nil {
				return nil, err
			}
			l.pkgs[path] = p
			l.fixtures = append(l.fixtures, p)
			return p.Types, nil
		}
	}
	if l.inModule(path) {
		p, err := l.loadModulePackage(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.gc.Import(path)
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// newInfo returns a fully populated types.Info.
func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Instances:  make(map[*ast.Ident]types.Instance),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// check parses and typechecks one package from explicit file paths.
func (l *Loader) check(importPath, dir string, filenames []string) (*Package, error) {
	var files []*ast.File
	for _, name := range filenames {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("load: %v", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("load: no Go files in %s", dir)
	}
	info := newInfo()
	var typeErrs []error
	conf := types.Config{
		Importer: importerFunc(l.importPackage),
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := conf.Check(importPath, l.fset, files, info)
	if len(typeErrs) > 0 {
		var b strings.Builder
		for i, e := range typeErrs {
			if i > 0 {
				b.WriteString("\n")
			}
			b.WriteString(e.Error())
			if i == 9 && len(typeErrs) > 10 {
				fmt.Fprintf(&b, "\n... and %d more", len(typeErrs)-10)
				break
			}
		}
		return nil, fmt.Errorf("load: type errors in %s:\n%s", importPath, b.String())
	}
	return &Package{
		ImportPath: importPath,
		Name:       tpkg.Name(),
		Dir:        dir,
		Files:      files,
		Types:      tpkg,
		TypesInfo:  info,
	}, nil
}

// loadModulePackage typechecks one module-internal package from source,
// memoised.
func (l *Loader) loadModulePackage(path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.checking[path] {
		return nil, fmt.Errorf("load: import cycle through %s", path)
	}
	l.checking[path] = true
	defer delete(l.checking, path)

	m, err := l.ensureMeta(path)
	if err != nil {
		return nil, err
	}
	if m.Error != nil && len(m.GoFiles) == 0 {
		return nil, fmt.Errorf("load: %s: %s", path, m.Error.Err)
	}
	filenames := append([]string(nil), m.GoFiles...)
	if l.IncludeTests {
		filenames = append(filenames, m.TestGoFiles...)
	}
	p, err := l.check(path, m.Dir, filenames)
	if err != nil {
		return nil, err
	}
	p.Imports = append(p.Imports, m.Imports...)
	if l.IncludeTests {
		p.Imports = append(p.Imports, m.TestImports...)
	}
	l.pkgs[path] = p
	return p, nil
}

// Load expands the patterns with `go list` and returns the matched
// module-internal packages plus all their module-internal dependencies,
// in dependency order (dependencies before dependents). The Requested
// field of the result distinguishes directly matched packages.
func (l *Loader) Load(patterns ...string) ([]*Package, map[string]bool, error) {
	if err := l.goList(patterns...); err != nil {
		return nil, nil, err
	}
	// A second, plain listing tells us which packages the patterns matched
	// directly (the -deps listing mixes in every dependency).
	args := append([]string{"list", "-e"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = l.ModuleRoot
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return nil, nil, fmt.Errorf("load: go list %s: %v\n%s", strings.Join(patterns, " "), err, errb.String())
	}
	requested := make(map[string]bool)
	for _, line := range strings.Split(out.String(), "\n") {
		if line = strings.TrimSpace(line); line != "" && l.inModule(line) {
			requested[line] = true
		}
	}

	// Collect every module package reachable from the requested set.
	var order []*Package
	seen := make(map[string]bool)
	var visit func(path string) error
	visit = func(path string) error {
		if seen[path] || !l.inModule(path) {
			return nil
		}
		seen[path] = true
		m, err := l.ensureMeta(path)
		if err != nil {
			return err
		}
		if len(m.GoFiles) == 0 && !(l.IncludeTests && len(m.TestGoFiles) > 0) {
			return nil // test-only or empty package: nothing to analyze
		}
		deps := append([]string(nil), m.Imports...)
		if l.IncludeTests {
			deps = append(deps, m.TestImports...)
		}
		sort.Strings(deps)
		for _, dep := range deps {
			if dep != path { // test files may import the package itself
				if err := visit(dep); err != nil {
					return err
				}
			}
		}
		p, err := l.loadModulePackage(path)
		if err != nil {
			return err
		}
		order = append(order, p)
		return nil
	}
	var paths []string
	for path := range requested {
		paths = append(paths, path)
	}
	sort.Strings(paths)
	for _, path := range paths {
		if err := visit(path); err != nil {
			return nil, nil, err
		}
	}
	return order, requested, nil
}

// LoadDir typechecks the .go files in one directory (excluding _test.go
// files) as a package with the given synthetic import path — the entry
// point for analysistest fixture packages, which live under testdata and
// are invisible to the go tool. Module-internal imports resolve from
// source; everything else from export data.
func (l *Loader) LoadDir(dir, importPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("load: %v", err)
	}
	var filenames []string
	for _, e := range entries {
		name := e.Name()
		if strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			filenames = append(filenames, name)
		}
	}
	sort.Strings(filenames)
	return l.check(importPath, dir, filenames)
}

// LoadModuleDeps typechecks the module-internal packages imported by p
// (transitively), returning them in dependency order. Fixture packages
// loaded with LoadDir use this so analyzers can compute facts for the
// real packages the fixture imports.
func (l *Loader) LoadModuleDeps(p *Package) ([]*Package, error) {
	var order []*Package
	seen := make(map[string]bool)
	var visit func(path string) error
	visit = func(path string) error {
		if seen[path] || !l.inModule(path) {
			return nil
		}
		seen[path] = true
		m, err := l.ensureMeta(path)
		if err != nil {
			return err
		}
		deps := append([]string(nil), m.Imports...)
		sort.Strings(deps)
		for _, dep := range deps {
			if err := visit(dep); err != nil {
				return err
			}
		}
		mp, err := l.loadModulePackage(path)
		if err != nil {
			return err
		}
		order = append(order, mp)
		return nil
	}
	for _, f := range p.Files {
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if err := visit(path); err != nil {
				return nil, err
			}
		}
	}
	return order, nil
}
