package analysis

import (
	"go/ast"
	"go/types"
)

// Statscheck enforces the ownership discipline of the kernel's sharded
// statistics: each PE owns its counters (processed, mailSent, ...) and
// bumps them without atomics, so any read or write from outside methods
// of the owning type is a data race unless it happens inside one of the
// kernel's synchronisation windows (the GVT barrier, post-Run collection).
//
// Fields are opted in with a //simlint:sharded marker on the field (or
// its declaration group). Access is then allowed only through the
// receiver of a method on the owning type — `p.mailSent++` inside a
// (*PE) method is fine, `other.mailSent` anywhere (including inside a
// (*PE) method, since `other` may be a different shard) is flagged.
// Synchronised cross-PE reads are waived with //simlint:crosspe <reason>
// naming the barrier that makes them safe.
var Statscheck = &Analyzer{
	Name:    "statscheck",
	Doc:     "flag access to PE-sharded counters from outside the owning goroutine context",
	Keyword: "crosspe",
	Run:     runStatscheck,
}

// shardedFact marks a struct field as a PE-sharded counter. Exported so
// dependent packages flag cross-package access too.
type shardedFact struct{}

func runStatscheck(pass *Pass) error {
	// Pass 1: collect marked fields and their owning named types.
	owners := markedFields(pass, "sharded")
	for v := range owners {
		pass.ExportObjectFact(v, shardedFact{})
	}

	// Pass 2: audit every selection of a sharded field (local or
	// imported).
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			recvVar := receiverVar(pass, fd)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				selection, ok := pass.TypesInfo.Selections[sel]
				if !ok || selection.Kind() != types.FieldVal {
					return true
				}
				field, ok := selection.Obj().(*types.Var)
				if !ok {
					return true
				}
				owner, sharded := owners[field]
				if !sharded {
					var fact shardedFact
					if field.Pkg() == nil || field.Pkg() == pass.Pkg || !pass.ImportObjectFact(field, &fact) {
						return true
					}
					owner = nil // cross-package: owner identity via field parent lookup below
				}
				if ownedAccess(pass, fd, recvVar, owner, field, sel) {
					return true
				}
				pass.Reportf(sel.Sel.Pos(),
					"access to PE-sharded counter %s.%s outside its owner's methods; unsynchronised cross-PE access races with the owning PE (waive with //simlint:crosspe <reason> if a barrier orders it)",
					fieldOwnerName(field), field.Name())
				return true
			})
		}
	}
	return nil
}

// receiverVar returns the receiver variable of a method declaration, or
// nil for plain functions and anonymous receivers.
func receiverVar(pass *Pass, fd *ast.FuncDecl) *types.Var {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return nil
	}
	v, _ := pass.TypesInfo.Defs[fd.Recv.List[0].Names[0]].(*types.Var)
	return v
}

// ownedAccess reports whether the selection reads the field through the
// enclosing method's own receiver — the one access pattern that stays on
// the owning goroutine. owner may be nil for fields imported via facts;
// the receiver's base type is then matched against the field's parent
// struct by type identity.
func ownedAccess(pass *Pass, fd *ast.FuncDecl, recvVar *types.Var, owner *types.Named, field *types.Var, sel *ast.SelectorExpr) bool {
	if recvVar == nil {
		return false
	}
	// The base expression must be exactly the receiver identifier.
	base, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok || pass.TypesInfo.Uses[base] != recvVar {
		return false
	}
	recvNamed := namedOf(recvVar.Type())
	if recvNamed == nil {
		return false
	}
	if owner != nil {
		return recvNamed.Obj() == owner.Obj()
	}
	// Imported field: owner is the struct type that declares it. Accept if
	// the receiver's underlying struct declares this exact field object.
	if st, ok := recvNamed.Underlying().(*types.Struct); ok {
		for i := 0; i < st.NumFields(); i++ {
			if st.Field(i) == field {
				return true
			}
		}
	}
	return false
}

// fieldOwnerName renders the declaring package-qualified context of a
// sharded field for diagnostics.
func fieldOwnerName(field *types.Var) string {
	if field.Pkg() != nil {
		return field.Pkg().Name()
	}
	return "?"
}
