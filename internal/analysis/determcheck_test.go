package analysis_test

import (
	"testing"

	"repro/internal/analysis"
)

func TestDetermcheck(t *testing.T) {
	runFixture(t, analysis.Determcheck, "determcheck")
}
