package analysis_test

// An analysistest-style harness built on internal/analysis/load: each
// fixture package under testdata/src/<name> annotates the lines where an
// analyzer must report with trailing comments of the form
//
//	// want "regexp" "another regexp"
//
// The test fails on any diagnostic without a matching want on its line,
// and on any want no diagnostic matched — so unannotated fixture code
// doubles as the analyzer's negative (must-stay-silent) cases.

import (
	"go/ast"
	"go/token"
	"path/filepath"
	"regexp"
	"strconv"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/load"
)

// runFixture analyzes testdata/src/<name> with one analyzer, running the
// analyzer over the fixture's own fixture-imports first so object facts
// flow across packages like they do under the real driver.
func runFixture(t *testing.T, a *analysis.Analyzer, name string) {
	t.Helper()
	loader, err := load.New(".")
	if err != nil {
		t.Fatal(err)
	}
	root, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	loader.FixtureRoot = root
	pkg, err := loader.LoadDir(filepath.Join(root, name), name)
	if err != nil {
		t.Fatal(err)
	}
	fset := loader.Fset()
	facts := analysis.NewFactStore()
	for _, dep := range loader.Fixtures() {
		pass := analysis.NewPass(a, fset, dep.Files, dep.Types, dep.TypesInfo, facts, nil, func(analysis.Diagnostic) {})
		if err := a.Run(pass); err != nil {
			t.Fatalf("%s on dep %s: %v", a.Name, dep.ImportPath, err)
		}
	}
	// Waived diagnostics are dropped: fixtures assert analyzer findings,
	// and a fixture line carrying a waiver is the waiver working.
	var got []analysis.Diagnostic
	pass := analysis.NewPass(a, fset, pkg.Files, pkg.Types, pkg.TypesInfo, facts, nil, func(d analysis.Diagnostic) {
		if !d.Waived {
			got = append(got, d)
		}
	})
	if err := a.Run(pass); err != nil {
		t.Fatalf("%s: %v", a.Name, err)
	}
	checkWants(t, fset, pkg.Files, got)
}

// expectation is one parsed want pattern awaiting a diagnostic.
type expectation struct {
	re      *regexp.Regexp
	matched bool
}

// Patterns may be double-quoted or backquoted Go strings.
var wantRe = regexp.MustCompile("want((?:\\s+(?:\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`))+)")
var wantStrRe = regexp.MustCompile("\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`")

func checkWants(t *testing.T, fset *token.FileSet, files []*ast.File, got []analysis.Diagnostic) {
	t.Helper()
	wants := make(map[string][]*expectation) // "file:line" -> patterns
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				key := pos.Filename + ":" + strconv.Itoa(pos.Line)
				for _, q := range wantStrRe.FindAllString(m[1], -1) {
					pat, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s: bad want string %s: %v", key, q, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", key, pat, err)
					}
					wants[key] = append(wants[key], &expectation{re: re})
				}
			}
		}
	}
	for _, d := range got {
		pos := fset.Position(d.Pos)
		key := pos.Filename + ":" + strconv.Itoa(pos.Line)
		found := false
		for _, w := range wants[key] {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: unexpected diagnostic: %s", key, d.Message)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s: no diagnostic matched want %q", key, w.re)
			}
		}
	}
}
