package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

func TestParseDirective(t *testing.T) {
	cases := []struct {
		text    string
		keyword string
		reason  string
		ok      bool
	}{
		{"//simlint:irreversible stats are write-only", "irreversible", "stats are write-only", true},
		{"//simlint:sharded", "sharded", "", true},
		{"//simlint:crosspe", "crosspe", "", true},
		{"// simlint:crosspe spaced prefix is not a directive", "", "", false},
		{"// plain comment", "", "", false},
	}
	for _, c := range cases {
		kw, reason, ok := parseDirective(c.text)
		if ok != c.ok || kw != c.keyword || reason != c.reason {
			t.Errorf("parseDirective(%q) = %q, %q, %v; want %q, %q, %v",
				c.text, kw, reason, ok, c.keyword, c.reason, c.ok)
		}
	}
}

const directiveSrc = `package p

// doc comment
//
//simlint:deterministic whole function is waived
func waived() {
	x := 1
	_ = x
}

func partial() {
	a := 1 //simlint:retained same line
	//simlint:crosspe next line
	b := 2
	_, _ = a, b
	c := 3
	_ = c
}
`

func TestDirectiveScopes(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", directiveSrc, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	idx := indexDirectives(fset, []*ast.File{f})

	posAt := func(line int) token.Pos {
		return fset.File(f.Pos()).LineStart(line)
	}
	cases := []struct {
		line    int
		keyword string
		want    bool
	}{
		{7, "deterministic", true}, // x := 1, inside waived func doc scope
		{8, "deterministic", true}, // _ = x
		{12, "retained", true},     // same-line annotation
		{14, "crosspe", true},      // line below annotation
		{16, "crosspe", false},     // two lines below: out of scope
		{7, "retained", false},     // wrong keyword
	}
	usage := NewDirectiveUsage()
	for _, c := range cases {
		if got := idx.suppressed(fset, posAt(c.line), c.keyword, usage); got != c.want {
			t.Errorf("suppressed(line %d, %s) = %v, want %v", c.line, c.keyword, got, c.want)
		}
	}
	// Every directive in the source matched at least one query above, so
	// all three must now be marked used.
	for _, d := range Directives(fset, []*ast.File{f}) {
		if !usage.Used(d.Pos) {
			t.Errorf("directive //simlint:%s at %s not marked used", d.Keyword, fset.Position(d.Pos))
		}
	}
}
