// Package experiments regenerates every figure of the report:
//
//	Figure 3   — average packet delivery time vs network diameter N
//	Figure 4   — average wait to inject vs N
//	Figure 5   — parallel speed-up (event rate vs N for 1/2/4 PEs)
//	Figure 6   — efficiency (speed-up per PE)
//	Figure 7   — total events rolled back vs number of KPs
//	Figure 8   — event rate vs number of KPs
//	Attachment 3 — sequential vs parallel determinism check
//
// plus the extra studies DESIGN.md calls out: the baseline-policy
// comparison and the event-queue and heartbeat ablations.
//
// Each figure has a sweep function returning typed points and a table
// builder rendering the same rows/series the report plots. cmd/figures is
// the CLI wrapper and the repository-root benchmarks reuse the sweeps at
// reduced scale.
package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/hotpotato"
	"repro/internal/stats"
)

// coreStats shortens internal signatures that thread kernel statistics.
type coreStats = core.Stats

// Options scales the sweeps. The zero value gives laptop-quick settings;
// Full approaches the report's ranges (N up to 256 — 65 536 LPs — which
// takes serious time and memory).
type Options struct {
	// Full selects the report-scale sweep dimensions.
	Full bool
	// Steps overrides the per-figure default simulation length.
	Steps int
	// Seed selects the random universe (default 1).
	Seed uint64
	// PEs overrides the PE count for figures that do not sweep it
	// (default: kernel default, i.e. GOMAXPROCS).
	PEs int
	// Progress, when non-nil, receives one line per completed run.
	Progress io.Writer
}

func (o Options) seed() uint64 {
	if o.Seed == 0 {
		return 1
	}
	return o.Seed
}

func (o Options) steps(def int) int {
	if o.Steps > 0 {
		return o.Steps
	}
	return def
}

func (o Options) progressf(format string, args ...any) {
	if o.Progress != nil {
		fmt.Fprintf(o.Progress, format, args...)
	}
}

// networkSizes returns the N sweep: a quick ladder by default, the
// report's 8…256 range under Full.
func (o Options) networkSizes() []int {
	if o.Full {
		return []int{8, 16, 32, 48, 64, 96, 128, 192, 256}
	}
	return []int{8, 16, 24, 32}
}

// loads is the report's injector percentages for Figures 3 and 4.
var loads = []float64{0, 50, 75, 100}

// runParallel builds and runs one hot-potato configuration on the
// parallel kernel.
func runParallel(cfg hotpotato.Config) (hotpotato.Totals, *core.Stats, error) {
	sim, model, err := hotpotato.Build(cfg)
	if err != nil {
		return hotpotato.Totals{}, nil, err
	}
	ks, err := sim.Run()
	if err != nil {
		return hotpotato.Totals{}, nil, err
	}
	return model.Totals(sim), ks, nil
}

// runSequential builds and runs one hot-potato configuration on the
// sequential engine.
func runSequential(cfg hotpotato.Config) (hotpotato.Totals, *core.Stats, error) {
	seq, model, err := hotpotato.BuildSequential(cfg)
	if err != nil {
		return hotpotato.Totals{}, nil, err
	}
	ks, err := seq.Run()
	if err != nil {
		return hotpotato.Totals{}, nil, err
	}
	return model.Totals(seq), ks, nil
}

// LoadPoint is one (N, load) cell of the Figure 3/4 sweep.
type LoadPoint struct {
	N           int
	LoadPct     float64
	AvgDelivery float64
	AvgDistance float64
	AvgWait     float64
	MaxWait     float64
	Delivered   int64
	Injected    int64
	Wall        time.Duration
}

// DeliverySweep runs the Figure 3/4 grid: network sizes × injector loads.
func DeliverySweep(opt Options) ([]LoadPoint, error) {
	var out []LoadPoint
	for _, n := range opt.networkSizes() {
		for _, load := range loads {
			cfg := hotpotato.DefaultConfig(n)
			cfg.InjectorPercent = load
			cfg.Steps = opt.steps(deliverySteps(n))
			cfg.Seed = opt.seed()
			cfg.NumPEs = opt.PEs
			start := time.Now()
			totals, _, err := runParallel(cfg)
			if err != nil {
				return nil, fmt.Errorf("N=%d load=%.0f%%: %w", n, load, err)
			}
			p := LoadPoint{
				N:           n,
				LoadPct:     load,
				AvgDelivery: totals.AvgDelivery,
				AvgDistance: totals.AvgDistance,
				AvgWait:     totals.AvgWait,
				MaxWait:     totals.MaxWait,
				Delivered:   totals.Delivered,
				Injected:    totals.Injected,
				Wall:        time.Since(start),
			}
			out = append(out, p)
			opt.progressf("fig3/4: N=%d load=%.0f%% delivery=%.2f wait=%.2f (%v)\n",
				n, load, p.AvgDelivery, p.AvgWait, p.Wall.Round(time.Millisecond))
		}
	}
	return out, nil
}

// deliverySteps keeps the measurement window proportional to the network
// so packets at every size see a steady-state mix.
func deliverySteps(n int) int {
	s := 4 * n
	if s < 60 {
		s = 60
	}
	return s
}

// Fig3Table renders the Figure 3 series: one row per N, one delivery-time
// column per injector load.
func Fig3Table(points []LoadPoint) stats.Table {
	return loadTable(points, "Figure 3: average packet delivery time (steps) vs network diameter",
		func(p LoadPoint) float64 { return p.AvgDelivery })
}

// Fig4Table renders the Figure 4 series: average wait to inject a packet.
func Fig4Table(points []LoadPoint) stats.Table {
	return loadTable(points, "Figure 4: average wait to inject a packet (steps) vs network diameter",
		func(p LoadPoint) float64 { return p.AvgWait })
}

func loadTable(points []LoadPoint, title string, value func(LoadPoint) float64) stats.Table {
	t := stats.Table{Title: title, Header: []string{"N"}}
	for _, l := range loads {
		t.Header = append(t.Header, fmt.Sprintf("%.0f%% injectors", l))
	}
	byN := map[int]map[float64]float64{}
	var order []int
	for _, p := range points {
		if byN[p.N] == nil {
			byN[p.N] = map[float64]float64{}
			order = append(order, p.N)
		}
		byN[p.N][p.LoadPct] = value(p)
	}
	for _, n := range order {
		row := []string{fmt.Sprintf("%d", n)}
		for _, l := range loads {
			row = append(row, stats.FormatNumber(byN[n][l]))
		}
		t.AddRow(row...)
	}
	return t
}

// LinearityReport quantifies the report's headline claim for a given load
// series: delivery time (or wait) grows approximately linearly in N.
func LinearityReport(points []LoadPoint, value func(LoadPoint) float64, load float64) (slope, r2 float64) {
	var xs, ys []float64
	for _, p := range points {
		if p.LoadPct == load {
			xs = append(xs, float64(p.N))
			ys = append(ys, value(p))
		}
	}
	slope, _, r2 = stats.LinearFit(xs, ys)
	return slope, r2
}
