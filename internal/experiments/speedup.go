package experiments

import (
	"fmt"
	"time"

	"repro/internal/hotpotato"
	"repro/internal/stats"
)

// peSweep is the processor ladder of Figures 5 and 6; the report's quad
// PC gives {1, 2, 4}. The 1-processor row is the true sequential engine,
// exactly as the report's "sequential mode".
var peSweep = []int{1, 2, 4}

// SpeedupPoint is one (N, PEs) cell of the Figure 5/6 sweep.
type SpeedupPoint struct {
	N         int
	PEs       int
	EventRate float64 // committed events per second
	Committed int64
	Processed int64
	Wall      time.Duration
}

// SpeedupSweep measures event rate across network sizes and PE counts.
// PEs == 1 runs the sequential engine; PEs > 1 the Time Warp kernel.
func SpeedupSweep(opt Options) ([]SpeedupPoint, error) {
	var out []SpeedupPoint
	for _, n := range opt.networkSizes() {
		for _, pes := range peSweep {
			cfg := hotpotato.DefaultConfig(n)
			cfg.Steps = opt.steps(speedupSteps(n))
			cfg.Seed = opt.seed()
			cfg.NumPEs = pes
			var (
				p   SpeedupPoint
				err error
			)
			if pes == 1 {
				p, err = speedupRun(cfg, runSequential)
			} else {
				p, err = speedupRun(cfg, runParallel)
			}
			if err != nil {
				return nil, fmt.Errorf("N=%d PEs=%d: %w", n, pes, err)
			}
			p.N, p.PEs = n, pes
			out = append(out, p)
			opt.progressf("fig5/6: N=%d PEs=%d rate=%.0f ev/s (%v)\n",
				n, pes, p.EventRate, p.Wall.Round(time.Millisecond))
		}
	}
	return out, nil
}

func speedupRun(cfg hotpotato.Config, run func(hotpotato.Config) (hotpotato.Totals, *coreStats, error)) (SpeedupPoint, error) {
	_, ks, err := run(cfg)
	if err != nil {
		return SpeedupPoint{}, err
	}
	return SpeedupPoint{
		EventRate: ks.EventRate,
		Committed: ks.Committed,
		Processed: ks.Processed,
		Wall:      ks.Wall,
	}, nil
}

// speedupSteps keeps speed-up runs long enough to dominate start-up cost
// but short enough for the big sizes.
func speedupSteps(n int) int {
	switch {
	case n <= 16:
		return 200
	case n <= 64:
		return 100
	default:
		return 40
	}
}

// Fig5Table renders event rate per (N, PEs) — the Figure 5 series.
func Fig5Table(points []SpeedupPoint) stats.Table {
	t := stats.Table{Title: "Figure 5: parallel speed-up — event rate (events/s) vs network diameter",
		Header: []string{"N", "LPs"}}
	for _, pes := range peSweep {
		t.Header = append(t.Header, fmt.Sprintf("%d PE", pes))
	}
	forEachN(points, func(n int, row []SpeedupPoint) {
		cells := []string{fmt.Sprintf("%d", n), fmt.Sprintf("%d", n*n)}
		for _, pes := range peSweep {
			cells = append(cells, stats.FormatNumber(findPE(row, pes).EventRate))
		}
		t.AddRow(cells...)
	})
	return t
}

// Fig6Table renders efficiency = rate(P) / (P * rate(1)) — the Figure 6
// series.
func Fig6Table(points []SpeedupPoint) stats.Table {
	t := stats.Table{Title: "Figure 6: efficiency (speed-up / #PE) vs network diameter",
		Header: []string{"N"}}
	for _, pes := range peSweep {
		t.Header = append(t.Header, fmt.Sprintf("%d PE", pes))
	}
	forEachN(points, func(n int, row []SpeedupPoint) {
		base := findPE(row, 1).EventRate
		cells := []string{fmt.Sprintf("%d", n)}
		for _, pes := range peSweep {
			eff := 0.0
			if base > 0 {
				eff = findPE(row, pes).EventRate / (float64(pes) * base)
			}
			cells = append(cells, fmt.Sprintf("%.3f", eff))
		}
		t.AddRow(cells...)
	})
	return t
}

// Efficiency returns the Figure 6 value for one (N, PEs) pair within a
// sweep result.
func Efficiency(points []SpeedupPoint, n, pes int) float64 {
	var base, rate float64
	for _, p := range points {
		if p.N == n && p.PEs == 1 {
			base = p.EventRate
		}
		if p.N == n && p.PEs == pes {
			rate = p.EventRate
		}
	}
	if base == 0 {
		return 0
	}
	return rate / (float64(pes) * base)
}

func forEachN(points []SpeedupPoint, fn func(n int, row []SpeedupPoint)) {
	var order []int
	byN := map[int][]SpeedupPoint{}
	for _, p := range points {
		if _, ok := byN[p.N]; !ok {
			order = append(order, p.N)
		}
		byN[p.N] = append(byN[p.N], p)
	}
	for _, n := range order {
		fn(n, byN[n])
	}
}

func findPE(row []SpeedupPoint, pes int) SpeedupPoint {
	for _, p := range row {
		if p.PEs == pes {
			return p
		}
	}
	return SpeedupPoint{}
}
