package experiments

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/eventq"
)

// tinyOpts keeps experiment smoke tests fast: the quick ladder trimmed
// further via the Steps override.
func tinyOpts() Options {
	return Options{Steps: 20, Seed: 2, PEs: 2}
}

// TestDeliverySweepShape: the Figure 3/4 sweep must cover the full grid
// and deliver packets at every point; delivery time must grow with N at
// fixed load (the linear-in-N headline, loosely checked at small scale).
func TestDeliverySweepShape(t *testing.T) {
	opt := tinyOpts()
	opt.Steps = 0 // use per-size defaults so larger N gets a fair window
	points, err := DeliverySweep(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != len(opt.networkSizes())*len(loads) {
		t.Fatalf("got %d points", len(points))
	}
	byLoad := map[float64][]LoadPoint{}
	for _, p := range points {
		if p.Delivered == 0 {
			t.Fatalf("no deliveries at N=%d load=%.0f", p.N, p.LoadPct)
		}
		byLoad[p.LoadPct] = append(byLoad[p.LoadPct], p)
	}
	for load, series := range byLoad {
		first, last := series[0], series[len(series)-1]
		if last.AvgDelivery <= first.AvgDelivery {
			t.Errorf("load %.0f%%: delivery time not growing with N (%.2f at N=%d vs %.2f at N=%d)",
				load, first.AvgDelivery, first.N, last.AvgDelivery, last.N)
		}
	}
	// Injection wait must be zero at 0% load and positive at 100%.
	for _, p := range points {
		if p.LoadPct == 0 && (p.AvgWait != 0 || p.Injected != 0) {
			t.Errorf("N=%d: static run has injections", p.N)
		}
		if p.LoadPct == 100 && p.AvgWait <= 0 {
			t.Errorf("N=%d: saturated run has zero injection wait", p.N)
		}
	}

	fig3 := Fig3Table(points)
	fig4 := Fig4Table(points)
	var buf bytes.Buffer
	if err := fig3.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "100% injectors") {
		t.Fatalf("figure 3 table malformed:\n%s", buf.String())
	}
	if len(fig4.Rows) != len(opt.networkSizes()) {
		t.Fatalf("figure 4 rows = %d", len(fig4.Rows))
	}

	slope, r2 := LinearityReport(points, func(p LoadPoint) float64 { return p.AvgDelivery }, 100)
	if slope <= 0 {
		t.Errorf("delivery-vs-N slope %.3f not positive", slope)
	}
	if r2 < 0.7 {
		t.Errorf("delivery-vs-N fit R² = %.3f, expected strongly linear", r2)
	}
}

// TestSpeedupSweepShape: Figure 5/6 must produce a rate for every cell and
// an efficiency ≤ a small constant (super-linear flukes aside).
func TestSpeedupSweepShape(t *testing.T) {
	opt := Options{Steps: 15, Seed: 3}
	points, err := SpeedupSweep(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != len(opt.networkSizes())*len(peSweep) {
		t.Fatalf("got %d points", len(points))
	}
	for _, p := range points {
		if p.EventRate <= 0 || p.Committed <= 0 {
			t.Fatalf("empty cell %+v", p)
		}
	}
	// Committed work must not depend on the PE count (determinism).
	forEachN(points, func(n int, row []SpeedupPoint) {
		want := row[0].Committed
		for _, p := range row {
			if p.Committed != want {
				t.Errorf("N=%d: committed differs across PE counts: %d vs %d", n, p.Committed, want)
			}
		}
	})
	if eff := Efficiency(points, opt.networkSizes()[0], 2); eff <= 0 {
		t.Errorf("efficiency %.3f", eff)
	}
	tab5, tab6 := Fig5Table(points), Fig6Table(points)
	if len(tab5.Rows) == 0 || len(tab6.Rows) == 0 {
		t.Fatal("empty speed-up tables")
	}
}

// TestKPSweepShape: Figure 7/8 must fill the grid; identical committed
// counts across KP settings (determinism) and present rollback counters.
func TestKPSweepShape(t *testing.T) {
	opt := Options{Steps: 15, Seed: 4, PEs: 2}
	points, err := KPSweep(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) == 0 {
		t.Fatal("no KP points")
	}
	committed := map[int]int64{}
	for _, p := range points {
		if p.EventRate <= 0 {
			t.Fatalf("empty cell %+v", p)
		}
		if prev, ok := committed[p.N]; ok && prev != p.Committed {
			t.Errorf("N=%d: committed varies with KP count: %d vs %d", p.N, prev, p.Committed)
		}
		committed[p.N] = p.Committed
	}
	tab7, tab8 := Fig7Table(points), Fig8Table(points)
	if len(tab7.Rows) == 0 || len(tab8.Rows) == 0 {
		t.Fatal("empty KP tables")
	}
	var buf bytes.Buffer
	if err := tab7.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "16x16") {
		t.Fatalf("figure 7 table malformed:\n%s", buf.String())
	}
}

// TestDeterminism is the Attachment 3 reproduction at harness level.
func TestDeterminism(t *testing.T) {
	res, err := Determinism(Options{Steps: 30, Seed: 5, PEs: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Equal {
		t.Fatalf("sequential and parallel totals differ:\nseq: %+v\npar: %+v", res.Sequential, res.Parallel)
	}
	if res.Sequential.Delivered == 0 {
		t.Fatal("determinism check ran an empty simulation")
	}
}

// TestBaselineSweep: every policy must appear with deliveries; the paper's
// policy must not be wildly worse than greedy on the saturated torus.
func TestBaselineSweep(t *testing.T) {
	points, err := BaselineSweep(Options{Steps: 40, Seed: 6, PEs: 2})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, p := range points {
		seen[p.Policy] = true
		if p.Delivered == 0 {
			t.Fatalf("policy %s N=%d delivered nothing", p.Policy, p.N)
		}
	}
	if len(seen) != 4 {
		t.Fatalf("expected 4 policies, saw %v", seen)
	}
	if tab := BaselineTable(points); len(tab.Rows) != len(points) {
		t.Fatal("baseline table row mismatch")
	}
}

// TestQueueAblation: every registered queue kind must run and commit
// identical work.
func TestQueueAblation(t *testing.T) {
	points, err := QueueAblation(Options{Steps: 10, Seed: 7, PEs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if want := len(eventq.Kinds()); len(points) != want {
		t.Fatalf("got %d points, want %d", len(points), want)
	}
	for _, p := range points[1:] {
		if p.Committed != points[0].Committed {
			t.Fatalf("queue %s disagrees on committed work: %d vs %s's %d",
				p.Queue, p.Committed, points[0].Queue, points[0].Committed)
		}
	}
	if tab := QueueTable(points); len(tab.Rows) != len(points) {
		t.Fatal("queue table malformed")
	}
}

// TestHeartbeatAblation: heartbeats must add exactly routers×steps events.
func TestHeartbeatAblation(t *testing.T) {
	opt := Options{Steps: 20, Seed: 8, PEs: 2}
	points, err := HeartbeatAblation(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("got %d points", len(points))
	}
	extra := points[1].Committed - points[0].Committed
	want := int64(16 * 16 * opt.Steps)
	if extra != want {
		t.Fatalf("heartbeat overhead %d events, want %d", extra, want)
	}
	if tab := HeartbeatTable(points); len(tab.Rows) != 2 {
		t.Fatal("heartbeat table malformed")
	}
}

// TestProgressWriter: the progress stream must receive one line per run.
func TestProgressWriter(t *testing.T) {
	var buf bytes.Buffer
	opt := Options{Steps: 10, Seed: 9, PEs: 2, Progress: &buf}
	if _, err := QueueAblation(opt); err != nil {
		t.Fatal(err)
	}
	if want := len(eventq.Kinds()); strings.Count(buf.String(), "\n") != want {
		t.Fatalf("progress lines = %d, want %d", strings.Count(buf.String(), "\n"), want)
	}
}
