package experiments

import (
	"fmt"
	"time"

	"repro/internal/hotpotato"
	"repro/internal/stats"
)

// KPPoint is one (N, KPs) cell of the Figure 7/8 sweep.
type KPPoint struct {
	N                  int
	KPs                int
	RolledBackEvents   int64
	PrimaryRollbacks   int64
	SecondaryRollbacks int64
	EventRate          float64
	Committed          int64
	Wall               time.Duration
}

// kpCounts is the KP ladder of Figures 7 and 8.
func (o Options) kpCounts() []int {
	if o.Full {
		return []int{4, 8, 16, 32, 64, 128, 256}
	}
	return []int{4, 8, 16, 32, 64}
}

// kpNetworkSizes matches the report's Figure 7/8 size series (16×16 up to
// 256×256 under Full).
func (o Options) kpNetworkSizes() []int {
	if o.Full {
		return []int{16, 32, 64, 128, 256}
	}
	return []int{16, 32}
}

// KPSweep measures rollback volume and event rate across KP counts, the
// report's §4.2.3 study. The PE count is fixed (default 4, the report's
// machine) so only rollback granularity varies.
func KPSweep(opt Options) ([]KPPoint, error) {
	pes := opt.PEs
	if pes <= 0 {
		pes = 4
	}
	var out []KPPoint
	for _, n := range opt.kpNetworkSizes() {
		for _, kps := range opt.kpCounts() {
			if kps < pes {
				continue
			}
			cfg := hotpotato.DefaultConfig(n)
			cfg.Steps = opt.steps(kpSteps(n))
			cfg.Seed = opt.seed()
			cfg.NumPEs = pes
			cfg.NumKPs = kps
			_, ks, err := runParallel(cfg)
			if err != nil {
				return nil, fmt.Errorf("N=%d KPs=%d: %w", n, kps, err)
			}
			p := KPPoint{
				N:                  n,
				KPs:                kps,
				RolledBackEvents:   ks.RolledBackEvents,
				PrimaryRollbacks:   ks.PrimaryRollbacks,
				SecondaryRollbacks: ks.SecondaryRollbacks,
				EventRate:          ks.EventRate,
				Committed:          ks.Committed,
				Wall:               ks.Wall,
			}
			out = append(out, p)
			opt.progressf("fig7/8: N=%d KPs=%d rolledback=%d rate=%.0f ev/s (%v)\n",
				n, kps, p.RolledBackEvents, p.EventRate, p.Wall.Round(time.Millisecond))
		}
	}
	return out, nil
}

func kpSteps(n int) int {
	switch {
	case n <= 32:
		return 120
	case n <= 64:
		return 60
	default:
		return 30
	}
}

// Fig7Table renders total events rolled back per (KPs, N) — the Figure
// 7a/b/c series (the report splits it across three scales; one table
// carries the same data).
func Fig7Table(points []KPPoint) stats.Table {
	return kpTable(points, "Figure 7: total events rolled back vs number of KPs",
		func(p KPPoint) string { return fmt.Sprintf("%d", p.RolledBackEvents) })
}

// Fig8Table renders event rate per (KPs, N) — the Figure 8 series.
func Fig8Table(points []KPPoint) stats.Table {
	return kpTable(points, "Figure 8: event rate (events/s) vs number of KPs",
		func(p KPPoint) string { return stats.FormatNumber(p.EventRate) })
}

func kpTable(points []KPPoint, title string, value func(KPPoint) string) stats.Table {
	var sizes []int
	bySize := map[int]bool{}
	var kps []int
	byKP := map[int]bool{}
	cell := map[[2]int]string{}
	for _, p := range points {
		if !bySize[p.N] {
			bySize[p.N] = true
			sizes = append(sizes, p.N)
		}
		if !byKP[p.KPs] {
			byKP[p.KPs] = true
			kps = append(kps, p.KPs)
		}
		cell[[2]int{p.KPs, p.N}] = value(p)
	}
	t := stats.Table{Title: title, Header: []string{"KPs"}}
	for _, n := range sizes {
		t.Header = append(t.Header, fmt.Sprintf("%dx%d", n, n))
	}
	for _, k := range kps {
		row := []string{fmt.Sprintf("%d", k)}
		for _, n := range sizes {
			v, ok := cell[[2]int{k, n}]
			if !ok {
				v = "-"
			}
			row = append(row, v)
		}
		t.AddRow(row...)
	}
	return t
}
