package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/hotpotato"
	"repro/internal/phold"
	"repro/internal/stats"
)

// SyncPoint is one engine measurement in the synchronisation comparison.
type SyncPoint struct {
	Workload   string
	Engine     string // "sequential", "timewarp", "conservative"
	Lookahead  float64
	EventRate  float64
	Committed  int64
	Rounds     int64 // GVT rounds or conservative windows
	RolledBack int64
	Wall       time.Duration
}

// SyncComparison runs the same workloads under all three execution
// engines: the sequential reference, optimistic Time Warp, and the
// conservative window-synchronous executor. Two workloads frame the
// classic trade-off:
//
//   - hot-potato routing (lookahead 0.05 steps of dense activity):
//     the conservative engine needs ~20 barrier windows per step;
//   - PHOLD at increasing lookahead: conservative performance climbs with
//     lookahead while Time Warp barely notices — Fujimoto's textbook
//     result, reproduced on this kernel.
func SyncComparison(opt Options) ([]SyncPoint, error) {
	pes := opt.PEs
	if pes <= 0 {
		pes = 4
	}
	var out []SyncPoint
	add := func(p SyncPoint, err error) error {
		if err != nil {
			return err
		}
		out = append(out, p)
		opt.progressf("sync: %s/%s la=%g rate=%.0f\n", p.Workload, p.Engine, p.Lookahead, p.EventRate)
		return nil
	}

	// Hot-potato workload.
	hp := hotpotato.DefaultConfig(16)
	hp.Steps = opt.steps(60)
	hp.Seed = opt.seed()

	if err := add(runSyncHotpotato(hp, "sequential", pes)); err != nil {
		return nil, err
	}
	if err := add(runSyncHotpotato(hp, "timewarp", pes)); err != nil {
		return nil, err
	}
	if err := add(runSyncHotpotato(hp, "conservative", pes)); err != nil {
		return nil, err
	}

	// PHOLD lookahead ladder.
	for _, la := range []float64{0.01, 0.1, 1.0} {
		pcfg := phold.Config{
			NumLPs:     1024,
			Population: 8,
			RemoteProb: 0.5,
			Lookahead:  la,
			EndTime:    core.Time(opt.steps(30)),
			Seed:       opt.seed(),
			NumPEs:     pes,
		}
		if err := add(runSyncPhold(pcfg, "timewarp")); err != nil {
			return nil, err
		}
		if err := add(runSyncPhold(pcfg, "conservative")); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func runSyncHotpotato(cfg hotpotato.Config, engine string, pes int) (SyncPoint, error) {
	p := SyncPoint{Workload: "hotpotato-16", Engine: engine, Lookahead: float64(hotpotato.Lookahead)}
	var ks *core.Stats
	var err error
	switch engine {
	case "sequential":
		var seq *core.Sequential
		seq, _, err = hotpotato.BuildSequential(cfg)
		if err == nil {
			ks, err = seq.Run()
		}
	case "timewarp":
		cfg.NumPEs = pes
		_, ks, err = runParallel(cfg)
	case "conservative":
		cfg.NumPEs = pes
		var cons *core.Conservative
		cons, _, err = hotpotato.BuildConservative(cfg)
		if err == nil {
			ks, err = cons.Run()
		}
	}
	if err != nil {
		return p, fmt.Errorf("hotpotato/%s: %w", engine, err)
	}
	p.EventRate, p.Committed, p.Rounds, p.RolledBack, p.Wall =
		ks.EventRate, ks.Committed, ks.GVTRounds, ks.RolledBackEvents, ks.Wall
	return p, nil
}

func runSyncPhold(cfg phold.Config, engine string) (SyncPoint, error) {
	p := SyncPoint{Workload: "phold-1024", Engine: engine, Lookahead: cfg.Lookahead}
	var ks *core.Stats
	var err error
	switch engine {
	case "timewarp":
		var sim *core.Simulator
		sim, _, err = phold.Build(cfg)
		if err == nil {
			ks, err = sim.Run()
		}
	case "conservative":
		var cons *core.Conservative
		cons, _, err = phold.BuildConservative(cfg)
		if err == nil {
			ks, err = cons.Run()
		}
	}
	if err != nil {
		return p, fmt.Errorf("phold/%s: %w", engine, err)
	}
	p.EventRate, p.Committed, p.Rounds, p.RolledBack, p.Wall =
		ks.EventRate, ks.Committed, ks.GVTRounds, ks.RolledBackEvents, ks.Wall
	return p, nil
}

// SyncTable renders the synchronisation comparison.
func SyncTable(points []SyncPoint) stats.Table {
	t := stats.Table{
		Title:  "Synchronisation comparison: sequential vs Time Warp vs conservative",
		Header: []string{"workload", "engine", "lookahead", "event rate (ev/s)", "committed", "rounds", "rolled back"},
	}
	for _, p := range points {
		t.AddRow(p.Workload, p.Engine, fmt.Sprintf("%g", p.Lookahead),
			stats.FormatNumber(p.EventRate), fmt.Sprintf("%d", p.Committed),
			fmt.Sprintf("%d", p.Rounds), fmt.Sprintf("%d", p.RolledBack))
	}
	return t
}
