package experiments

import "testing"

// TestSyncComparison: every engine must appear, committed work must agree
// between engines on the same workload (determinism across engines), and
// conservative PHOLD throughput must improve with lookahead.
func TestSyncComparison(t *testing.T) {
	points, err := SyncComparison(Options{Steps: 15, Seed: 14, PEs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 9 {
		t.Fatalf("got %d sync points", len(points))
	}
	committed := map[string]map[float64]int64{}
	for _, p := range points {
		if p.EventRate <= 0 || p.Committed <= 0 {
			t.Fatalf("empty cell %+v", p)
		}
		key := p.Workload
		if committed[key] == nil {
			committed[key] = map[float64]int64{}
		}
		if prev, ok := committed[key][p.Lookahead]; ok && prev != p.Committed {
			t.Fatalf("%s la=%g: engines commit different work: %d vs %d",
				key, p.Lookahead, prev, p.Committed)
		}
		committed[key][p.Lookahead] = p.Committed
		if p.Engine != "timewarp" && p.RolledBack != 0 {
			t.Fatalf("%s engine %s rolled back events", p.Workload, p.Engine)
		}
	}
	// Conservative window counts must shrink as lookahead grows.
	var consRounds []int64
	for _, p := range points {
		if p.Workload == "phold-1024" && p.Engine == "conservative" {
			consRounds = append(consRounds, p.Rounds)
		}
	}
	if len(consRounds) != 3 {
		t.Fatalf("conservative phold rows = %d", len(consRounds))
	}
	for i := 1; i < len(consRounds); i++ {
		if consRounds[i] >= consRounds[i-1] {
			t.Fatalf("conservative windows did not shrink with lookahead: %v", consRounds)
		}
	}
	if tab := SyncTable(points); len(tab.Rows) != 9 {
		t.Fatal("sync table malformed")
	}
}
