package experiments

import (
	"fmt"

	"repro/internal/stats"
)

// This file builds the ASCII renditions of the report's figures — the
// actual curves, not just the tables — used by cmd/figures -chart.

// Fig3Chart plots delivery time vs N, one series per load (Figure 3).
func Fig3Chart(points []LoadPoint) stats.Chart {
	return loadChart(points, "Figure 3: packet delivery time vs network diameter",
		"avg delivery (steps)", func(p LoadPoint) float64 { return p.AvgDelivery })
}

// Fig4Chart plots injection wait vs N, one series per load (Figure 4).
func Fig4Chart(points []LoadPoint) stats.Chart {
	return loadChart(points, "Figure 4: wait to inject vs network diameter",
		"avg wait (steps)", func(p LoadPoint) float64 { return p.AvgWait })
}

func loadChart(points []LoadPoint, title, ylabel string, value func(LoadPoint) float64) stats.Chart {
	var xs []float64
	seen := map[int]bool{}
	for _, p := range points {
		if !seen[p.N] {
			seen[p.N] = true
			xs = append(xs, float64(p.N))
		}
	}
	c := stats.Chart{Title: title, XLabel: "N", YLabel: ylabel, X: xs}
	for _, load := range loads {
		var ys []float64
		for _, p := range points {
			if p.LoadPct == load {
				ys = append(ys, value(p))
			}
		}
		if len(ys) == len(xs) {
			c.Series = append(c.Series, stats.ChartSeries{
				Name: fmt.Sprintf("%.0f%%", load), Y: ys,
			})
		}
	}
	return c
}

// Fig5Chart plots event rate vs N, one series per PE count (Figure 5).
func Fig5Chart(points []SpeedupPoint) stats.Chart {
	var xs []float64
	seen := map[int]bool{}
	for _, p := range points {
		if !seen[p.N] {
			seen[p.N] = true
			xs = append(xs, float64(p.N))
		}
	}
	c := stats.Chart{
		Title:  "Figure 5: parallel speed-up — event rate vs network diameter",
		XLabel: "N", YLabel: "events/s", X: xs,
	}
	for _, pes := range peSweep {
		var ys []float64
		for _, p := range points {
			if p.PEs == pes {
				ys = append(ys, p.EventRate)
			}
		}
		if len(ys) == len(xs) {
			c.Series = append(c.Series, stats.ChartSeries{Name: fmt.Sprintf("%d PE", pes), Y: ys})
		}
	}
	return c
}

// Fig7Chart plots events rolled back vs KP count, one series per network
// size (Figure 7).
func Fig7Chart(points []KPPoint) stats.Chart {
	return kpChart(points, "Figure 7: total events rolled back vs number of KPs",
		"events rolled back", func(p KPPoint) float64 { return float64(p.RolledBackEvents) })
}

// Fig8Chart plots event rate vs KP count (Figure 8).
func Fig8Chart(points []KPPoint) stats.Chart {
	return kpChart(points, "Figure 8: event rate vs number of KPs",
		"events/s", func(p KPPoint) float64 { return p.EventRate })
}

func kpChart(points []KPPoint, title, ylabel string, value func(KPPoint) float64) stats.Chart {
	var xs []float64
	seenKP := map[int]bool{}
	var sizes []int
	seenN := map[int]bool{}
	for _, p := range points {
		if !seenKP[p.KPs] {
			seenKP[p.KPs] = true
			xs = append(xs, float64(p.KPs))
		}
		if !seenN[p.N] {
			seenN[p.N] = true
			sizes = append(sizes, p.N)
		}
	}
	c := stats.Chart{Title: title, XLabel: "KPs", YLabel: ylabel, X: xs}
	for _, n := range sizes {
		var ys []float64
		for _, p := range points {
			if p.N == n {
				ys = append(ys, value(p))
			}
		}
		if len(ys) == len(xs) {
			c.Series = append(c.Series, stats.ChartSeries{Name: fmt.Sprintf("%dx%d", n, n), Y: ys})
		}
	}
	return c
}

// DistanceChart plots the E[delivery | distance] profile with the ideal
// one-step-per-hop line for reference.
func DistanceChart(points []ProfilePoint) stats.Chart {
	var xs, ys, ideal []float64
	for _, p := range points {
		xs = append(xs, p.Distance)
		ys = append(ys, p.AvgDelivery)
		ideal = append(ideal, p.Distance)
	}
	return stats.Chart{
		Title:  "Delivery time vs distance (SPAA 2001: expected O(n))",
		XLabel: "source-destination distance", YLabel: "steps",
		X: xs,
		Series: []stats.ChartSeries{
			{Name: "measured", Y: ys},
			{Name: "1 step/hop ideal", Y: ideal},
		},
	}
}
