package experiments

import (
	"fmt"
	"time"

	"repro/internal/hotpotato"
	"repro/internal/stats"
	"repro/internal/traffic"
)

// PatternPoint is one traffic-pattern measurement.
type PatternPoint struct {
	Pattern        string
	AvgDelivery    float64
	MaxDelivery    float64
	AvgDistance    float64
	Stretch        float64
	DeflectionRate float64
	AvgWait        float64
	Delivered      int64
	Wall           time.Duration
}

// PatternSweep evaluates the paper's algorithm under the standard
// synthetic traffic suite on a saturated torus. Uniform random traffic is
// the report's workload; the permutation and hotspot patterns probe the
// deflection behaviour the optical-switching use case cares about.
func PatternSweep(opt Options) ([]PatternPoint, error) {
	n := 16
	if opt.Full {
		n = 32
	}
	var out []PatternPoint
	for _, name := range traffic.Names() {
		pattern, err := traffic.ByName(name)
		if err != nil {
			return nil, err
		}
		cfg := hotpotato.DefaultConfig(n)
		cfg.Traffic = pattern
		cfg.Steps = opt.steps(8 * n)
		cfg.Seed = opt.seed()
		cfg.NumPEs = opt.PEs
		start := time.Now()
		totals, _, err := runParallel(cfg)
		if err != nil {
			return nil, fmt.Errorf("pattern %s: %w", name, err)
		}
		out = append(out, PatternPoint{
			Pattern:        name,
			AvgDelivery:    totals.AvgDelivery,
			MaxDelivery:    totals.MaxDelivery,
			AvgDistance:    totals.AvgDistance,
			Stretch:        totals.Stretch,
			DeflectionRate: totals.DeflectionRate,
			AvgWait:        totals.AvgWait,
			Delivered:      totals.Delivered,
			Wall:           time.Since(start),
		})
		opt.progressf("patterns: %s delivery=%.2f stretch=%.3f defl=%.3f\n",
			name, totals.AvgDelivery, totals.Stretch, totals.DeflectionRate)
	}
	return out, nil
}

// PatternTable renders the traffic-pattern study.
func PatternTable(points []PatternPoint) stats.Table {
	t := stats.Table{
		Title: "Traffic patterns: the algorithm under the synthetic suite (saturated torus)",
		Header: []string{"pattern", "avg delivery", "max", "avg distance", "stretch",
			"deflection rate", "avg wait", "delivered"},
	}
	for _, p := range points {
		t.AddRow(p.Pattern, stats.FormatNumber(p.AvgDelivery), fmt.Sprintf("%.0f", p.MaxDelivery),
			stats.FormatNumber(p.AvgDistance), fmt.Sprintf("%.3f", p.Stretch),
			fmt.Sprintf("%.4f", p.DeflectionRate), stats.FormatNumber(p.AvgWait),
			fmt.Sprintf("%d", p.Delivered))
	}
	return t
}
