package experiments

import (
	"fmt"
	"time"

	"repro/internal/hotpotato"
	"repro/internal/stats"
)

// ProfilePoint is one distance bin of the delivery-vs-distance study.
type ProfilePoint struct {
	N           int
	Distance    float64
	Count       int64
	AvgDelivery float64
}

// DistanceProfile measures E[delivery time | source-destination distance]
// on the saturated torus — the quantity the SPAA 2001 analysis bounds
// (expected O(n) delivery, growing with distance). It is the closest this
// simulation gets to checking the paper's theorem directly rather than
// through the aggregate of Figure 3.
func DistanceProfile(opt Options) ([]ProfilePoint, error) {
	n := 16
	if opt.Full {
		n = 64
	}
	cfg := hotpotato.DefaultConfig(n)
	cfg.Steps = opt.steps(12 * n)
	cfg.Seed = opt.seed()
	cfg.NumPEs = opt.PEs
	sim, model, err := hotpotato.Build(cfg)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	if _, err := sim.Run(); err != nil {
		return nil, err
	}
	var out []ProfilePoint
	for _, p := range model.DeliveryProfile(sim) {
		out = append(out, ProfilePoint{N: n, Distance: p.Distance, Count: p.Count, AvgDelivery: p.AvgDelivery})
	}
	opt.progressf("distance profile: N=%d, %d bins (%v)\n", n, len(out), time.Since(start).Round(time.Millisecond))
	return out, nil
}

// DistanceProfileTable renders the profile with its linear fit.
func DistanceProfileTable(points []ProfilePoint) stats.Table {
	t := stats.Table{
		Title:  "Delivery time vs source-destination distance (SPAA 2001: expected O(n))",
		Header: []string{"distance", "packets", "avg delivery (steps)", "delivery/distance"},
	}
	for _, p := range points {
		ratio := 0.0
		if p.Distance > 0 {
			ratio = p.AvgDelivery / p.Distance
		}
		t.AddRow(fmt.Sprintf("%.1f", p.Distance), fmt.Sprintf("%d", p.Count),
			stats.FormatNumber(p.AvgDelivery), fmt.Sprintf("%.3f", ratio))
	}
	return t
}

// ProfileLinearity fits delivery time against distance.
func ProfileLinearity(points []ProfilePoint) (slope, r2 float64) {
	var xs, ys []float64
	for _, p := range points {
		xs = append(xs, p.Distance)
		ys = append(ys, p.AvgDelivery)
	}
	slope, _, r2 = stats.LinearFit(xs, ys)
	return slope, r2
}

// WarmupPoint is one time bin of the warm-up study.
type WarmupPoint struct {
	Step        float64
	Count       int64
	AvgDelivery float64
}

// Warmup measures delivery rate and latency as functions of simulation
// time on the standard saturated torus — the methodological backdrop of
// Figure 3: the initial full network drains through a transient before
// the injection-driven steady state establishes itself.
func Warmup(opt Options) ([]WarmupPoint, error) {
	n := 16
	if opt.Full {
		n = 32
	}
	cfg := hotpotato.DefaultConfig(n)
	cfg.Steps = opt.steps(12 * n)
	cfg.Seed = opt.seed()
	cfg.NumPEs = opt.PEs
	sim, model, err := hotpotato.Build(cfg)
	if err != nil {
		return nil, err
	}
	if _, err := sim.Run(); err != nil {
		return nil, err
	}
	var out []WarmupPoint
	for _, p := range model.TimeSeries(sim) {
		out = append(out, WarmupPoint{Step: p.Step, Count: p.Count, AvgDelivery: p.AvgDelivery})
	}
	opt.progressf("warmup: N=%d, %d bins\n", n, len(out))
	return out, nil
}

// WarmupTable renders the warm-up study.
func WarmupTable(points []WarmupPoint) stats.Table {
	t := stats.Table{
		Title:  "Warm-up and steady state: deliveries and latency over simulation time",
		Header: []string{"step", "deliveries", "avg delivery (steps)"},
	}
	for _, p := range points {
		t.AddRow(fmt.Sprintf("%.0f", p.Step), fmt.Sprintf("%d", p.Count),
			stats.FormatNumber(p.AvgDelivery))
	}
	return t
}

// WarmupChart plots the latency series.
func WarmupChart(points []WarmupPoint) stats.Chart {
	var xs, ys []float64
	for _, p := range points {
		xs = append(xs, p.Step)
		ys = append(ys, p.AvgDelivery)
	}
	return stats.Chart{
		Title:  "Mean delivery latency over simulation time",
		XLabel: "step", YLabel: "steps",
		X:      xs,
		Series: []stats.ChartSeries{{Name: "avg delivery", Y: ys}},
	}
}

// RatePoint is one injection-rate cell of the variable-rate study.
type RatePoint struct {
	Rate        float64 // packets per injector per step (InjectionProb)
	Generated   int64
	Injected    int64
	AvgWait     float64
	MaxWait     float64
	StillQueued int64
	AvgDelivery float64
}

// RateSweep varies the per-injector generation rate on a fixed network —
// the report's §1.2.3 point that bounded injection lets the network serve
// high-speed and low-speed sources simultaneously: below the network's
// service capacity waits stay flat; saturating sources queue up.
func RateSweep(opt Options) ([]RatePoint, error) {
	n := 16
	if opt.Full {
		n = 32
	}
	var out []RatePoint
	for _, rate := range []float64{0.1, 0.25, 0.5, 0.75, 1.0} {
		cfg := hotpotato.DefaultConfig(n)
		cfg.InjectionProb = rate
		cfg.Steps = opt.steps(8 * n)
		cfg.Seed = opt.seed()
		cfg.NumPEs = opt.PEs
		totals, _, err := runParallel(cfg)
		if err != nil {
			return nil, fmt.Errorf("rate %.2f: %w", rate, err)
		}
		out = append(out, RatePoint{
			Rate:        rate,
			Generated:   totals.Generated,
			Injected:    totals.Injected,
			AvgWait:     totals.AvgWait,
			MaxWait:     totals.MaxWait,
			StillQueued: totals.StillQueued,
			AvgDelivery: totals.AvgDelivery,
		})
		opt.progressf("rates: %.2f pkt/step wait=%.2f queued=%d\n", rate, totals.AvgWait, totals.StillQueued)
	}
	return out, nil
}

// RateTable renders the variable-rate study.
func RateTable(points []RatePoint) stats.Table {
	t := stats.Table{
		Title: "Variable injection rates: per-source load vs injection wait (16x16 torus)",
		Header: []string{"rate (pkt/step)", "generated", "injected", "avg wait", "max wait",
			"backlog", "avg delivery"},
	}
	for _, p := range points {
		t.AddRow(fmt.Sprintf("%.2f", p.Rate), fmt.Sprintf("%d", p.Generated),
			fmt.Sprintf("%d", p.Injected), stats.FormatNumber(p.AvgWait),
			fmt.Sprintf("%.0f", p.MaxWait), fmt.Sprintf("%d", p.StillQueued),
			stats.FormatNumber(p.AvgDelivery))
	}
	return t
}
