package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/eventq"
	"repro/internal/hotpotato"
	"repro/internal/phold"
	"repro/internal/routing"
	"repro/internal/stats"
)

// DeterminismResult is the Attachment 3 reproduction: the full statistics
// of a sequential and a parallel run of the same configuration.
type DeterminismResult struct {
	Sequential hotpotato.Totals
	Parallel   hotpotato.Totals
	Equal      bool
	PEs        int
	KPs        int
}

// Determinism runs the same configuration on both engines and compares
// every aggregate — the report's sample-output equality check.
func Determinism(opt Options) (DeterminismResult, error) {
	n := 16
	if opt.Full {
		n = 32
	}
	cfg := hotpotato.DefaultConfig(n)
	cfg.Steps = opt.steps(50)
	cfg.Seed = opt.seed()

	seqTotals, _, err := runSequential(cfg)
	if err != nil {
		return DeterminismResult{}, err
	}
	pcfg := cfg
	pcfg.NumPEs = opt.PEs
	if pcfg.NumPEs <= 0 {
		pcfg.NumPEs = 4
	}
	pcfg.NumKPs = 16 * pcfg.NumPEs
	parTotals, _, err := runParallel(pcfg)
	if err != nil {
		return DeterminismResult{}, err
	}
	return DeterminismResult{
		Sequential: seqTotals,
		Parallel:   parTotals,
		Equal:      seqTotals == parTotals,
		PEs:        pcfg.NumPEs,
		KPs:        pcfg.NumKPs,
	}, nil
}

// PolicyPoint is one (policy, N) cell of the baseline comparison.
type PolicyPoint struct {
	Policy         string
	N              int
	AvgDelivery    float64
	DeflectionRate float64
	AvgWait        float64
	Delivered      int64
	Wall           time.Duration
}

// BaselineSweep compares the paper's algorithm against the baseline
// deflection policies on the standard saturated workload.
func BaselineSweep(opt Options) ([]PolicyPoint, error) {
	sizes := []int{8, 16}
	if opt.Full {
		sizes = []int{8, 16, 32, 64}
	}
	var out []PolicyPoint
	for _, name := range routing.Names() {
		pol, err := routing.ByName(name)
		if err != nil {
			return nil, err
		}
		for _, n := range sizes {
			cfg := hotpotato.DefaultConfig(n)
			cfg.Policy = pol
			cfg.Steps = opt.steps(deliverySteps(n))
			cfg.Seed = opt.seed()
			cfg.NumPEs = opt.PEs
			start := time.Now()
			totals, _, err := runParallel(cfg)
			if err != nil {
				return nil, fmt.Errorf("policy %s N=%d: %w", name, n, err)
			}
			out = append(out, PolicyPoint{
				Policy:         name,
				N:              n,
				AvgDelivery:    totals.AvgDelivery,
				DeflectionRate: totals.DeflectionRate,
				AvgWait:        totals.AvgWait,
				Delivered:      totals.Delivered,
				Wall:           time.Since(start),
			})
			opt.progressf("baselines: %s N=%d delivery=%.2f defl=%.3f\n",
				name, n, totals.AvgDelivery, totals.DeflectionRate)
		}
	}
	return out, nil
}

// BaselineTable renders the policy comparison.
func BaselineTable(points []PolicyPoint) stats.Table {
	t := stats.Table{
		Title:  "Baseline comparison: deflection policies on the saturated torus",
		Header: []string{"policy", "N", "avg delivery", "deflection rate", "avg inject wait", "delivered"},
	}
	for _, p := range points {
		t.AddRow(p.Policy, fmt.Sprintf("%d", p.N), stats.FormatNumber(p.AvgDelivery),
			fmt.Sprintf("%.4f", p.DeflectionRate), stats.FormatNumber(p.AvgWait),
			fmt.Sprintf("%d", p.Delivered))
	}
	return t
}

// QueuePoint is one cell of the event-queue ablation.
type QueuePoint struct {
	Queue     string
	EventRate float64
	Committed int64
	Wall      time.Duration
}

// QueueAblation compares the pending-queue implementations under PHOLD,
// the neutral kernel stressor.
func QueueAblation(opt Options) ([]QueuePoint, error) {
	lps := 1024
	end := core.Time(opt.steps(50))
	var out []QueuePoint
	for _, q := range eventq.Kinds() {
		cfg := phold.Config{
			NumLPs:     lps,
			Population: 8,
			RemoteProb: 0.5,
			EndTime:    end,
			Seed:       opt.seed(),
			NumPEs:     opt.PEs,
			Queue:      q,
		}
		sim, _, err := phold.Build(cfg)
		if err != nil {
			return nil, err
		}
		ks, err := sim.Run()
		if err != nil {
			return nil, err
		}
		out = append(out, QueuePoint{Queue: q, EventRate: ks.EventRate, Committed: ks.Committed, Wall: ks.Wall})
		opt.progressf("queues: %s rate=%.0f ev/s\n", q, ks.EventRate)
	}
	return out, nil
}

// QueueTable renders the event-queue ablation.
func QueueTable(points []QueuePoint) stats.Table {
	t := stats.Table{
		Title:  "Ablation: pending event queue (PHOLD, 1024 LPs, population 8)",
		Header: []string{"queue", "event rate (ev/s)", "committed", "wall"},
	}
	for _, p := range points {
		t.AddRow(p.Queue, stats.FormatNumber(p.EventRate), fmt.Sprintf("%d", p.Committed), p.Wall.Round(time.Millisecond).String())
	}
	return t
}

// TopologyPoint is one cell of the torus-vs-mesh comparison.
type TopologyPoint struct {
	Topology    string
	N           int
	AvgDistance float64
	AvgDelivery float64
	MaxDelivery float64
	Delivered   int64
}

// TopologySweep compares the torus against the mesh at equal N — the
// report's §1.1 rationale for simulating the torus: wrap-around halves
// the maximum distance (N-1 vs 2(N-1)), and boundary nodes stop being
// special.
func TopologySweep(opt Options) ([]TopologyPoint, error) {
	sizes := []int{8, 16}
	if opt.Full {
		sizes = []int{8, 16, 32}
	}
	var out []TopologyPoint
	for _, topo := range []string{"torus", "mesh"} {
		for _, n := range sizes {
			cfg := hotpotato.DefaultConfig(n)
			cfg.Topology = topo
			cfg.InitialFill = 2 // mesh corners have degree 2
			cfg.Steps = opt.steps(8 * n)
			cfg.Seed = opt.seed()
			cfg.NumPEs = opt.PEs
			totals, _, err := runParallel(cfg)
			if err != nil {
				return nil, fmt.Errorf("%s N=%d: %w", topo, n, err)
			}
			out = append(out, TopologyPoint{
				Topology:    topo,
				N:           n,
				AvgDistance: totals.AvgDistance,
				AvgDelivery: totals.AvgDelivery,
				MaxDelivery: totals.MaxDelivery,
				Delivered:   totals.Delivered,
			})
			opt.progressf("topology: %s N=%d delivery=%.2f dist=%.2f\n",
				topo, n, totals.AvgDelivery, totals.AvgDistance)
		}
	}
	return out, nil
}

// TopologyTable renders the torus-vs-mesh comparison.
func TopologyTable(points []TopologyPoint) stats.Table {
	t := stats.Table{
		Title:  "Topology: torus vs mesh at equal N (report §1.1)",
		Header: []string{"topology", "N", "avg distance", "avg delivery", "max delivery", "delivered"},
	}
	for _, p := range points {
		t.AddRow(p.Topology, fmt.Sprintf("%d", p.N), stats.FormatNumber(p.AvgDistance),
			stats.FormatNumber(p.AvgDelivery), fmt.Sprintf("%.0f", p.MaxDelivery),
			fmt.Sprintf("%d", p.Delivered))
	}
	return t
}

// MemoryPoint is one cell of the optimistic-memory study.
type MemoryPoint struct {
	GVTInterval int
	MaxOptimism float64
	PeakLive    int
	RolledBack  int64
	EventRate   float64
}

// MemorySweep measures the optimistic memory footprint (peak
// executed-but-uncommitted events) as a function of GVT frequency and the
// optimism throttle — the fossil-collection trade-off behind the
// report's §4.2.3 discussion of KPs and fossil overhead.
func MemorySweep(opt Options) ([]MemoryPoint, error) {
	pes := opt.PEs
	if pes <= 0 {
		pes = 4
	}
	type cell struct {
		interval int
		maxOpt   float64
	}
	cells := []cell{{1, 0}, {4, 0}, {16, 0}, {64, 0}, {64, 2}, {64, 8}}
	var out []MemoryPoint
	for _, c := range cells {
		cfg := hotpotato.DefaultConfig(16)
		cfg.Steps = opt.steps(80)
		cfg.Seed = opt.seed()
		cfg.NumPEs = pes
		cfg.GVTInterval = c.interval
		cfg.MaxOptimism = core.Time(c.maxOpt)
		_, ks, err := runParallel(cfg)
		if err != nil {
			return nil, fmt.Errorf("interval=%d: %w", c.interval, err)
		}
		out = append(out, MemoryPoint{
			GVTInterval: c.interval,
			MaxOptimism: c.maxOpt,
			PeakLive:    ks.PeakLiveEvents,
			RolledBack:  ks.RolledBackEvents,
			EventRate:   ks.EventRate,
		})
		opt.progressf("memory: gvt=%d maxopt=%g peak=%d\n", c.interval, c.maxOpt, ks.PeakLiveEvents)
	}
	return out, nil
}

// MemoryTable renders the optimistic-memory study.
func MemoryTable(points []MemoryPoint) stats.Table {
	t := stats.Table{
		Title:  "Optimistic memory: peak uncommitted events vs GVT interval and throttle (16x16, 4 PEs)",
		Header: []string{"GVT interval", "max optimism", "peak live events", "rolled back", "event rate (ev/s)"},
	}
	for _, p := range points {
		throttle := "off"
		if p.MaxOptimism > 0 {
			throttle = fmt.Sprintf("%g steps", p.MaxOptimism)
		}
		t.AddRow(fmt.Sprintf("%d", p.GVTInterval), throttle, fmt.Sprintf("%d", p.PeakLive),
			fmt.Sprintf("%d", p.RolledBack), stats.FormatNumber(p.EventRate))
	}
	return t
}

// HeartbeatPoint is one cell of the heartbeat-overhead ablation.
type HeartbeatPoint struct {
	Heartbeat bool
	Committed int64
	EventRate float64
	Wall      time.Duration
}

// HeartbeatAblation quantifies the report's observation that the
// HEARTBEAT event is omitted "to reduce the total number of simulated
// events": same model, with and without per-router heartbeats.
func HeartbeatAblation(opt Options) ([]HeartbeatPoint, error) {
	var out []HeartbeatPoint
	for _, hb := range []bool{false, true} {
		cfg := hotpotato.DefaultConfig(16)
		cfg.Steps = opt.steps(80)
		cfg.Seed = opt.seed()
		cfg.Heartbeat = hb
		cfg.NumPEs = opt.PEs
		_, ks, err := runParallel(cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, HeartbeatPoint{Heartbeat: hb, Committed: ks.Committed, EventRate: ks.EventRate, Wall: ks.Wall})
		opt.progressf("heartbeat=%v committed=%d rate=%.0f ev/s\n", hb, ks.Committed, ks.EventRate)
	}
	return out, nil
}

// TuningPoint is one cell of the scheduler-tuning ablation.
type TuningPoint struct {
	BatchSize   int
	GVTInterval int
	MaxOptimism float64 // 0 = unthrottled
	EventRate   float64
	RolledBack  int64
	GVTRounds   int64
	Wall        time.Duration
}

// TuningSweep explores the kernel's two scheduling knobs — events per
// batch and batches per GVT round — on the hot-potato workload. Small
// batches bound optimism (fewer rollbacks, more scheduling overhead);
// frequent GVT rounds bound memory (more barriers). This is the tuning
// study every Time Warp deployment runs; ROSS exposes the same two knobs.
func TuningSweep(opt Options) ([]TuningPoint, error) {
	pes := opt.PEs
	if pes <= 0 {
		pes = 4
	}
	type cell struct {
		batch, interval int
		maxOpt          float64
	}
	var cells []cell
	for _, batch := range []int{4, 32, 128} {
		for _, interval := range []int{1, 16, 64} {
			cells = append(cells, cell{batch, interval, 0})
		}
	}
	// The over-optimistic corner, with and without the throttle — the
	// MaxOptimism feature's motivating case.
	cells = append(cells, cell{128, 64, 8})

	var out []TuningPoint
	for _, c := range cells {
		cfg := hotpotato.DefaultConfig(16)
		cfg.Steps = opt.steps(80)
		cfg.Seed = opt.seed()
		cfg.NumPEs = pes
		cfg.BatchSize = c.batch
		cfg.GVTInterval = c.interval
		cfg.MaxOptimism = core.Time(c.maxOpt)
		_, ks, err := runParallel(cfg)
		if err != nil {
			return nil, fmt.Errorf("batch=%d interval=%d: %w", c.batch, c.interval, err)
		}
		out = append(out, TuningPoint{
			BatchSize:   c.batch,
			GVTInterval: c.interval,
			MaxOptimism: c.maxOpt,
			EventRate:   ks.EventRate,
			RolledBack:  ks.RolledBackEvents,
			GVTRounds:   ks.GVTRounds,
			Wall:        ks.Wall,
		})
		opt.progressf("tuning: batch=%d gvt=%d maxopt=%g rate=%.0f rolledback=%d\n",
			c.batch, c.interval, c.maxOpt, ks.EventRate, ks.RolledBackEvents)
	}
	return out, nil
}

// TuningTable renders the scheduler-tuning ablation.
func TuningTable(points []TuningPoint) stats.Table {
	t := stats.Table{
		Title:  "Ablation: scheduler tuning (batch size × GVT interval × optimism throttle, 16x16 torus, 4 PEs)",
		Header: []string{"batch", "GVT interval", "max optimism", "event rate (ev/s)", "rolled back", "GVT rounds"},
	}
	for _, p := range points {
		throttle := "off"
		if p.MaxOptimism > 0 {
			throttle = fmt.Sprintf("%g steps", p.MaxOptimism)
		}
		t.AddRow(fmt.Sprintf("%d", p.BatchSize), fmt.Sprintf("%d", p.GVTInterval), throttle,
			stats.FormatNumber(p.EventRate), fmt.Sprintf("%d", p.RolledBack),
			fmt.Sprintf("%d", p.GVTRounds))
	}
	return t
}

// HeartbeatTable renders the heartbeat ablation.
func HeartbeatTable(points []HeartbeatPoint) stats.Table {
	t := stats.Table{
		Title:  "Ablation: HEARTBEAT administrative events (16x16 torus)",
		Header: []string{"heartbeat", "committed events", "event rate (ev/s)", "wall"},
	}
	for _, p := range points {
		t.AddRow(fmt.Sprintf("%v", p.Heartbeat), fmt.Sprintf("%d", p.Committed),
			stats.FormatNumber(p.EventRate), p.Wall.Round(time.Millisecond).String())
	}
	return t
}
