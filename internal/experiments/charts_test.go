package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// TestChartsRender: every figure chart must build from sweep points and
// render with its series legend.
func TestChartsRender(t *testing.T) {
	loadPts := []LoadPoint{
		{N: 8, LoadPct: 0, AvgDelivery: 5, AvgWait: 0},
		{N: 8, LoadPct: 50, AvgDelivery: 6, AvgWait: 7},
		{N: 8, LoadPct: 75, AvgDelivery: 6.5, AvgWait: 12},
		{N: 8, LoadPct: 100, AvgDelivery: 7, AvgWait: 16},
		{N: 16, LoadPct: 0, AvgDelivery: 11, AvgWait: 0},
		{N: 16, LoadPct: 50, AvgDelivery: 12, AvgWait: 18},
		{N: 16, LoadPct: 75, AvgDelivery: 12.3, AvgWait: 23},
		{N: 16, LoadPct: 100, AvgDelivery: 12.5, AvgWait: 26},
	}
	kpPts := []KPPoint{
		{N: 16, KPs: 4, RolledBackEvents: 500, EventRate: 1e6},
		{N: 16, KPs: 16, RolledBackEvents: 200, EventRate: 1.2e6},
		{N: 32, KPs: 4, RolledBackEvents: 900, EventRate: 9e5},
		{N: 32, KPs: 16, RolledBackEvents: 400, EventRate: 1.1e6},
	}
	spPts := []SpeedupPoint{
		{N: 8, PEs: 1, EventRate: 1e6}, {N: 8, PEs: 2, EventRate: 1.5e6}, {N: 8, PEs: 4, EventRate: 2e6},
		{N: 16, PEs: 1, EventRate: 1e6}, {N: 16, PEs: 2, EventRate: 1.6e6}, {N: 16, PEs: 4, EventRate: 2.5e6},
	}
	profilePts := []ProfilePoint{
		{Distance: 1, AvgDelivery: 2, Count: 10},
		{Distance: 4, AvgDelivery: 6, Count: 20},
		{Distance: 8, AvgDelivery: 11, Count: 15},
	}

	cases := []struct {
		name   string
		render func(*bytes.Buffer) error
		want   string
	}{
		{"fig3", func(b *bytes.Buffer) error { c := Fig3Chart(loadPts); return c.Render(b) }, "100%"},
		{"fig4", func(b *bytes.Buffer) error { c := Fig4Chart(loadPts); return c.Render(b) }, "wait"},
		{"fig5", func(b *bytes.Buffer) error { c := Fig5Chart(spPts); return c.Render(b) }, "4 PE"},
		{"fig7", func(b *bytes.Buffer) error { c := Fig7Chart(kpPts); return c.Render(b) }, "32x32"},
		{"fig8", func(b *bytes.Buffer) error { c := Fig8Chart(kpPts); return c.Render(b) }, "events/s"},
		{"distance", func(b *bytes.Buffer) error { c := DistanceChart(profilePts); return c.Render(b) }, "ideal"},
	}
	for _, tc := range cases {
		var buf bytes.Buffer
		if err := tc.render(&buf); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if !strings.Contains(buf.String(), tc.want) {
			t.Errorf("%s chart missing %q:\n%s", tc.name, tc.want, buf.String())
		}
	}
}

// TestPatternSweepSmoke covers the traffic-pattern experiment end to end.
func TestPatternSweepSmoke(t *testing.T) {
	points, err := PatternSweep(Options{Steps: 15, Seed: 15, PEs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 6 {
		t.Fatalf("got %d pattern points", len(points))
	}
	for _, p := range points {
		if p.Delivered == 0 {
			t.Fatalf("pattern %s delivered nothing", p.Pattern)
		}
	}
	// Nearest-neighbour traffic must be the fastest of the suite.
	var neighbor, uniform float64
	for _, p := range points {
		switch p.Pattern {
		case "neighbor":
			neighbor = p.AvgDelivery
		case "uniform":
			uniform = p.AvgDelivery
		}
	}
	if neighbor >= uniform {
		t.Fatalf("neighbour delivery %.2f not below uniform %.2f", neighbor, uniform)
	}
	if tab := PatternTable(points); len(tab.Rows) != 6 {
		t.Fatal("pattern table malformed")
	}
}

// TestFullOptionLadders: the Full flag must widen every sweep dimension.
func TestFullOptionLadders(t *testing.T) {
	quick, full := Options{}, Options{Full: true}
	if len(full.networkSizes()) <= len(quick.networkSizes()) {
		t.Error("Full did not widen the N ladder")
	}
	if len(full.kpCounts()) <= len(quick.kpCounts()) {
		t.Error("Full did not widen the KP ladder")
	}
	if len(full.kpNetworkSizes()) <= len(quick.kpNetworkSizes()) {
		t.Error("Full did not widen the Figure 7/8 sizes")
	}
	if quick.seed() != 1 {
		t.Error("default seed must be 1")
	}
	if (Options{Seed: 9}).seed() != 9 {
		t.Error("explicit seed ignored")
	}
}
