package experiments

import (
	"strings"
	"testing"
)

// TestDistanceProfile: the E[delivery | distance] curve must be strongly
// linear with slope ≥ 1 (a packet needs at least one step per hop).
func TestDistanceProfile(t *testing.T) {
	points, err := DistanceProfile(Options{Seed: 11, PEs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) < 5 {
		t.Fatalf("profile has only %d bins", len(points))
	}
	var total int64
	for _, p := range points {
		total += p.Count
	}
	if total == 0 {
		t.Fatal("profile counted no packets")
	}
	slope, r2 := ProfileLinearity(points)
	if slope < 1 {
		t.Errorf("delivery grows %.3f steps per hop; must be at least 1", slope)
	}
	if r2 < 0.9 {
		t.Errorf("R² = %.3f; the theorem check expects a strongly linear profile", r2)
	}
	if tab := DistanceProfileTable(points); len(tab.Rows) != len(points) {
		t.Fatal("profile table row mismatch")
	}
}

// TestRateSweep: waits must grow monotonically-ish with rate, and sources
// below capacity must see small backlogs relative to saturating sources.
func TestRateSweep(t *testing.T) {
	points, err := RateSweep(Options{Steps: 80, Seed: 12, PEs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 5 {
		t.Fatalf("got %d rate points", len(points))
	}
	lightest, heaviest := points[0], points[len(points)-1]
	if lightest.AvgWait >= heaviest.AvgWait {
		t.Fatalf("wait at rate %.2f (%.2f) >= wait at rate %.2f (%.2f)",
			lightest.Rate, lightest.AvgWait, heaviest.Rate, heaviest.AvgWait)
	}
	if lightest.StillQueued >= heaviest.StillQueued {
		t.Fatalf("backlog at light load %d >= heavy load %d", lightest.StillQueued, heaviest.StillQueued)
	}
	for _, p := range points {
		if p.Generated == 0 || p.Injected == 0 {
			t.Fatalf("rate %.2f generated/injected nothing: %+v", p.Rate, p)
		}
		if p.Injected > p.Generated {
			t.Fatalf("rate %.2f injected more than generated", p.Rate)
		}
	}
	if tab := RateTable(points); len(tab.Rows) != 5 {
		t.Fatal("rate table malformed")
	}
}

// TestTopologySweep: the torus must beat the mesh at equal N on both
// distance and delivery — the report's §1.1 claim.
func TestTopologySweep(t *testing.T) {
	points, err := TopologySweep(Options{Steps: 40, Seed: 17, PEs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 {
		t.Fatalf("got %d topology points", len(points))
	}
	get := func(topo string, n int) TopologyPoint {
		for _, p := range points {
			if p.Topology == topo && p.N == n {
				return p
			}
		}
		t.Fatalf("missing %s N=%d", topo, n)
		return TopologyPoint{}
	}
	for _, n := range []int{8, 16} {
		torus, mesh := get("torus", n), get("mesh", n)
		if torus.AvgDistance >= mesh.AvgDistance {
			t.Errorf("N=%d: torus distance %.2f >= mesh %.2f", n, torus.AvgDistance, mesh.AvgDistance)
		}
		if torus.AvgDelivery >= mesh.AvgDelivery {
			t.Errorf("N=%d: torus delivery %.2f >= mesh %.2f", n, torus.AvgDelivery, mesh.AvgDelivery)
		}
	}
	if tab := TopologyTable(points); len(tab.Rows) != 4 {
		t.Fatal("topology table malformed")
	}
}

// TestMemorySweep: the footprint study must fill its grid; a throttled
// run must not have a larger footprint than the unthrottled run at the
// same GVT interval.
func TestMemorySweep(t *testing.T) {
	points, err := MemorySweep(Options{Steps: 20, Seed: 16, PEs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 6 {
		t.Fatalf("got %d memory points", len(points))
	}
	var wild, tame int
	for _, p := range points {
		if p.PeakLive <= 0 {
			t.Fatalf("empty cell %+v", p)
		}
		if p.GVTInterval == 64 {
			if p.MaxOptimism == 0 {
				wild = p.PeakLive
			}
			if p.MaxOptimism == 2 {
				tame = p.PeakLive
			}
		}
	}
	if tame > wild {
		t.Fatalf("throttled peak %d > unthrottled %d", tame, wild)
	}
	if tab := MemoryTable(points); len(tab.Rows) != 6 {
		t.Fatal("memory table malformed")
	}
}

// TestWarmup: the time series must rise from the initial transient to a
// steady plateau.
func TestWarmup(t *testing.T) {
	points, err := Warmup(Options{Seed: 18, PEs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) < 8 {
		t.Fatalf("only %d warm-up bins", len(points))
	}
	first, last := points[0], points[len(points)-1]
	if first.AvgDelivery >= last.AvgDelivery {
		t.Fatalf("no transient: %.2f >= %.2f", first.AvgDelivery, last.AvgDelivery)
	}
	if tab := WarmupTable(points); len(tab.Rows) != len(points) {
		t.Fatal("warmup table malformed")
	}
	var buf strings.Builder
	c := WarmupChart(points)
	if err := c.Render(&buf); err != nil {
		t.Fatal(err)
	}
}

// TestTuningSweep: the ablation grid must fill and commit identical work
// in every cell (tuning knobs must not change results, only performance).
func TestTuningSweep(t *testing.T) {
	points, err := TuningSweep(Options{Steps: 20, Seed: 13, PEs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 10 {
		t.Fatalf("got %d tuning points", len(points))
	}
	for _, p := range points {
		if p.EventRate <= 0 || p.GVTRounds <= 0 {
			t.Fatalf("empty cell %+v", p)
		}
	}
	// More frequent GVT rounds at the same batch size must mean at least
	// as many rounds.
	byBatch := map[int][]TuningPoint{}
	for _, p := range points {
		byBatch[p.BatchSize] = append(byBatch[p.BatchSize], p)
	}
	for batch, row := range byBatch {
		for i := 1; i < len(row); i++ {
			if row[i].GVTInterval > row[i-1].GVTInterval && row[i].GVTRounds > row[i-1].GVTRounds {
				t.Errorf("batch %d: interval %d has more rounds (%d) than interval %d (%d)",
					batch, row[i].GVTInterval, row[i].GVTRounds, row[i-1].GVTInterval, row[i-1].GVTRounds)
			}
		}
	}
	if tab := TuningTable(points); len(tab.Rows) != 10 {
		t.Fatal("tuning table malformed")
	}
}
