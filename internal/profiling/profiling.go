// Package profiling gives every command in this repository the same
// profiling surface: -cpuprofile, -memprofile and -trace flags that write
// the standard pprof and runtime/trace formats, so a hot loop found in a
// benchmark can be inspected in the real binaries with
//
//	hotpotato -n 64 -steps 500 -cpuprofile cpu.out
//	go tool pprof cpu.out
//
// The flags are registered on a FlagSet with AddFlags; Start arms the
// requested outputs and returns a stop function the command must run before
// exiting — explicitly before any os.Exit path, since deferred calls do not
// run there.
package profiling

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
)

// Flags holds the output destinations selected on the command line; empty
// fields mean the corresponding output is disabled.
type Flags struct {
	CPUProfile string
	MemProfile string
	Trace      string
}

// AddFlags registers the three profiling flags on fs and returns the
// struct they populate.
func AddFlags(fs *flag.FlagSet) *Flags {
	f := &Flags{}
	fs.StringVar(&f.CPUProfile, "cpuprofile", "", "write a pprof CPU profile to this file")
	fs.StringVar(&f.MemProfile, "memprofile", "", "write a pprof heap profile to this file at exit")
	fs.StringVar(&f.Trace, "trace", "", "write a runtime execution trace to this file")
	return f
}

// Start arms every requested output and returns the function that stops
// them and writes the heap profile. The returned stop is never nil and is
// safe to call when no flag was set; it must run exactly once.
func (f *Flags) Start() (stop func() error, err error) {
	var cpuFile, traceFile *os.File
	cleanup := func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if traceFile != nil {
			trace.Stop()
			traceFile.Close()
		}
	}
	if f.CPUProfile != "" {
		cpuFile, err = os.Create(f.CPUProfile)
		if err != nil {
			return nil, fmt.Errorf("profiling: %w", err)
		}
		if err = pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			cpuFile = nil
			cleanup()
			return nil, fmt.Errorf("profiling: %w", err)
		}
	}
	if f.Trace != "" {
		traceFile, err = os.Create(f.Trace)
		if err != nil {
			cleanup()
			return nil, fmt.Errorf("profiling: %w", err)
		}
		if err = trace.Start(traceFile); err != nil {
			traceFile.Close()
			traceFile = nil
			cleanup()
			return nil, fmt.Errorf("profiling: %w", err)
		}
	}
	return func() error {
		cleanup()
		if f.MemProfile == "" {
			return nil
		}
		out, err := os.Create(f.MemProfile)
		if err != nil {
			return fmt.Errorf("profiling: %w", err)
		}
		// Materialise the true live heap before snapshotting, the
		// conventional prelude to WriteHeapProfile.
		runtime.GC()
		if err := pprof.WriteHeapProfile(out); err != nil {
			out.Close()
			return fmt.Errorf("profiling: %w", err)
		}
		return out.Close()
	}, nil
}
