package traffic

import (
	"testing"

	"repro/internal/rng"
	"repro/internal/topology"
)

func randSource() RandInt {
	st := rng.NewStream(99)
	return st.Integer
}

// TestUniformCoversNetwork: uniform traffic must reach every node except
// the source.
func TestUniformCoversNetwork(t *testing.T) {
	net := topology.NewTorus(4)
	rand := randSource()
	seen := map[int]bool{}
	const src = 5
	for i := 0; i < 2000; i++ {
		d := Uniform{}.Dest(net, src, rand)
		if d == src {
			t.Fatal("uniform returned the source")
		}
		if d < 0 || d >= net.Size() {
			t.Fatalf("destination %d out of range", d)
		}
		seen[d] = true
	}
	if len(seen) != net.Size()-1 {
		t.Fatalf("uniform covered %d of %d destinations", len(seen), net.Size()-1)
	}
}

// TestTransposeIsInvolution: applying transpose twice returns the source,
// and the diagonal maps to itself.
func TestTransposeIsInvolution(t *testing.T) {
	net := topology.NewTorus(5)
	for src := 0; src < net.Size(); src++ {
		d := Transpose{}.Dest(net, src, nil)
		back := Transpose{}.Dest(net, d, nil)
		if back != src {
			t.Fatalf("transpose not an involution at %d", src)
		}
		r, c := src/5, src%5
		if r == c && d != src {
			t.Fatalf("diagonal node %d mapped to %d", src, d)
		}
	}
}

// TestComplementIsInvolution: complement twice is the identity and the
// destination mirrors both coordinates.
func TestComplementIsInvolution(t *testing.T) {
	net := topology.NewTorus(6)
	for src := 0; src < net.Size(); src++ {
		d := BitComplement{}.Dest(net, src, nil)
		if (BitComplement{}).Dest(net, d, nil) != src {
			t.Fatalf("complement not an involution at %d", src)
		}
		sr, sc := src/6, src%6
		dr, dc := d/6, d%6
		if dr != 5-sr || dc != 5-sc {
			t.Fatalf("complement of (%d,%d) = (%d,%d)", sr, sc, dr, dc)
		}
	}
}

// TestTornadoStaysInRow: tornado keeps the row and moves ⌊(N-1)/2⌋
// columns.
func TestTornadoStaysInRow(t *testing.T) {
	net := topology.NewTorus(8)
	for src := 0; src < net.Size(); src++ {
		d := Tornado{}.Dest(net, src, nil)
		if d/8 != src/8 {
			t.Fatalf("tornado left the row at %d", src)
		}
		wantCol := (src%8 + 3) % 8
		if d%8 != wantCol {
			t.Fatalf("tornado column %d, want %d", d%8, wantCol)
		}
	}
}

// TestNeighborIsAdjacent: neighbour traffic lands at distance one.
func TestNeighborIsAdjacent(t *testing.T) {
	net := topology.NewTorus(5)
	rand := randSource()
	for i := 0; i < 500; i++ {
		src := i % net.Size()
		d := Neighbor{}.Dest(net, src, rand)
		if net.Dist(src, d) != 1 {
			t.Fatalf("neighbour destination at distance %d", net.Dist(src, d))
		}
	}
}

// TestHotspotFraction: the hotspot receives roughly its configured share.
func TestHotspotFraction(t *testing.T) {
	net := topology.NewTorus(8)
	rand := randSource()
	h := Hotspot{Target: 27, Fraction: 0.3}
	hits := 0
	const n = 20000
	for i := 0; i < n; i++ {
		src := (i*13 + 1) % net.Size()
		if src == 27 {
			continue
		}
		if h.Dest(net, src, rand) == 27 {
			hits++
		}
	}
	frac := float64(hits) / n
	// Uniform traffic also hits the hotspot occasionally, so the observed
	// fraction is slightly above 0.3.
	if frac < 0.27 || frac > 0.36 {
		t.Fatalf("hotspot fraction %.3f, want ≈0.30", frac)
	}
}

// TestHotspotDefaultsToCenter: an out-of-range target becomes the centre.
func TestHotspotDefaultsToCenter(t *testing.T) {
	net := topology.NewTorus(8)
	target, frac := Hotspot{Target: -1}.params(net)
	if target != 4*8+4 {
		t.Fatalf("default target %d", target)
	}
	if frac != 0.2 {
		t.Fatalf("default fraction %v", frac)
	}
}

// TestByName covers the registry including the hotspot fraction syntax.
func TestByName(t *testing.T) {
	for _, name := range Names() {
		p, err := ByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if p.Name() != name {
			t.Fatalf("registry name %q != pattern name %q", name, p.Name())
		}
	}
	p, err := ByName("hotspot:0.5")
	if err != nil {
		t.Fatal(err)
	}
	if h, ok := p.(Hotspot); !ok || h.Fraction != 0.5 {
		t.Fatalf("parsed hotspot = %+v", p)
	}
	for _, bad := range []string{"nope", "hotspot:x", "hotspot:0", "hotspot:2"} {
		if _, err := ByName(bad); err == nil {
			t.Fatalf("%q accepted", bad)
		}
	}
	if p, err := ByName(""); err != nil || p.Name() != "uniform" {
		t.Fatal("empty name must default to uniform")
	}
}

// TestDeterministicPatternsDrawNothing: transpose/complement/tornado must
// not consume randomness (their draw count is part of the reverse-
// computation contract).
func TestDeterministicPatternsDrawNothing(t *testing.T) {
	net := topology.NewTorus(6)
	st := rng.NewStream(7)
	before := st.Draws()
	for _, p := range []Pattern{Transpose{}, BitComplement{}, Tornado{}} {
		p.Dest(net, 8, st.Integer)
	}
	if st.Draws() != before {
		t.Fatal("deterministic pattern consumed randomness")
	}
}
