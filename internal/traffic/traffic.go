// Package traffic provides destination-selection patterns for the
// hot-potato workload: the standard synthetic traffic suite of the
// interconnection-network literature (uniform random, transpose,
// bit-complement, tornado, hotspot, neighbour). The report evaluates
// uniform random traffic only; the other patterns are the natural
// extension for the optical-switching use case its introduction motivates
// — adversarial permutations and hotspots are where deflection routing's
// behaviour differentiates.
//
// Patterns draw any randomness they need through the caller-supplied
// integer source (the router LP's reversible stream), so destinations
// replay identically under rollback. Deterministic patterns draw nothing.
package traffic

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/topology"
)

// RandInt is the random source signature patterns draw from: a uniform
// integer in [lo, hi] inclusive.
type RandInt func(lo, hi int64) int64

// Pattern selects a destination for a packet injected at src.
type Pattern interface {
	// Name identifies the pattern in reports and CLI flags.
	Name() string
	// Dest returns the destination node for a packet injected at src on
	// net. It must not return src itself unless the pattern is degenerate
	// there (callers skip self-addressed packets).
	Dest(net topology.Network, src int, rand RandInt) int
}

// Uniform is the report's workload: a uniformly random destination other
// than the source. Consumes one draw.
type Uniform struct{}

// Name implements Pattern.
func (Uniform) Name() string { return "uniform" }

// Dest implements Pattern.
func (Uniform) Dest(net topology.Network, src int, rand RandInt) int {
	d := int(rand(0, int64(net.Size())-2))
	if d >= src {
		d++
	}
	return d
}

// Transpose sends (r, c) to (c, r): the matrix-transpose permutation,
// adversarial for dimension-ordered schemes. Deterministic.
type Transpose struct{}

// Name implements Pattern.
func (Transpose) Name() string { return "transpose" }

// Dest implements Pattern.
func (Transpose) Dest(net topology.Network, src int, _ RandInt) int {
	n := net.N()
	r, c := src/n, src%n
	return c*n + r
}

// BitComplement sends node i to node size-1-i, i.e. (r, c) to
// (N-1-r, N-1-c): every packet crosses the network centre. Deterministic.
type BitComplement struct{}

// Name implements Pattern.
func (BitComplement) Name() string { return "complement" }

// Dest implements Pattern.
func (BitComplement) Dest(net topology.Network, src int, _ RandInt) int {
	return net.Size() - 1 - src
}

// Tornado sends each node halfway around its own row — the classic
// worst case for minimal routing on rings and tori. Deterministic.
type Tornado struct{}

// Name implements Pattern.
func (Tornado) Name() string { return "tornado" }

// Dest implements Pattern.
func (Tornado) Dest(net topology.Network, src int, _ RandInt) int {
	n := net.N()
	r, c := src/n, src%n
	return r*n + (c+(n-1)/2)%n
}

// Neighbor sends to a uniformly random adjacent node: the best case for
// any routing scheme. Consumes one draw.
type Neighbor struct{}

// Name implements Pattern.
func (Neighbor) Name() string { return "neighbor" }

// Dest implements Pattern.
func (Neighbor) Dest(net topology.Network, src int, rand RandInt) int {
	links := net.Links(src)
	d := links.Nth(int(rand(0, int64(links.Count())-1)))
	return net.Neighbor(src, d)
}

// Hotspot sends to one fixed node with probability Fraction and uniformly
// otherwise — the congestion-collapse scenario. Consumes one or two draws.
type Hotspot struct {
	// Target is the hot node; -1 (or out of range) means the network
	// centre.
	Target int
	// Fraction is the probability of addressing the hotspot; the
	// remainder is uniform. Default 0.2 when zero.
	Fraction float64
}

// Name implements Pattern.
func (h Hotspot) Name() string { return "hotspot" }

func (h Hotspot) params(net topology.Network) (target int, fraction float64) {
	target = h.Target
	if target < 0 || target >= net.Size() {
		n := net.N()
		target = (n/2)*n + n/2
	}
	fraction = h.Fraction
	if fraction <= 0 {
		fraction = 0.2
	}
	return target, fraction
}

// Dest implements Pattern.
func (h Hotspot) Dest(net topology.Network, src int, rand RandInt) int {
	target, fraction := h.params(net)
	// One integer draw emulates a Bernoulli trial so the pattern stays on
	// the single-draw-per-decision discipline.
	if float64(rand(0, 999999))/1000000 < fraction && target != src {
		return target
	}
	return Uniform{}.Dest(net, src, rand)
}

// ByName resolves a pattern name; "hotspot" accepts an optional
// ":fraction" suffix (e.g. "hotspot:0.3").
func ByName(name string) (Pattern, error) {
	switch {
	case name == "" || name == "uniform":
		return Uniform{}, nil
	case name == "transpose":
		return Transpose{}, nil
	case name == "complement":
		return BitComplement{}, nil
	case name == "tornado":
		return Tornado{}, nil
	case name == "neighbor":
		return Neighbor{}, nil
	case name == "hotspot":
		return Hotspot{Target: -1}, nil
	case strings.HasPrefix(name, "hotspot:"):
		frac, err := strconv.ParseFloat(strings.TrimPrefix(name, "hotspot:"), 64)
		if err != nil || frac <= 0 || frac > 1 {
			return nil, fmt.Errorf("traffic: bad hotspot fraction in %q", name)
		}
		return Hotspot{Target: -1, Fraction: frac}, nil
	}
	return nil, fmt.Errorf("traffic: unknown pattern %q", name)
}

// Names lists the selectable pattern names.
func Names() []string {
	return []string{"uniform", "transpose", "complement", "tornado", "neighbor", "hotspot"}
}
