// Package qnet implements a closed queueing network — the third classic
// Time Warp workload alongside PHOLD and PCS (queueing networks were the
// original Time Warp benchmarks in Jefferson's and Fujimoto's studies).
//
// A fixed population of jobs circulates among FIFO single-server stations
// arranged on a torus: a job arriving at a station queues, receives an
// exponential service, and departs to a uniformly random neighbour.
// Unlike PHOLD, stations carry real queue state (length, busy flag,
// cumulative waiting), so the model exercises reverse computation of
// nontrivial data structures; unlike hot-potato routing, there is no
// admission control, so queues grow and shrink freely.
//
// The model reports per-station throughput and mean queueing delay, and
// its closed-population invariant (jobs are never created or destroyed)
// is a natural conservation test for the kernel.
package qnet

import (
	"errors"
	"fmt"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/topology"
)

// Config parameterises a closed queueing network run.
type Config struct {
	// N is the side of the N×N station torus.
	N int
	// JobsPerStation is the initial population at each station.
	JobsPerStation int
	// MeanService is the mean exponential service time.
	MeanService float64
	// EndTime is the virtual-time horizon.
	EndTime core.Time
	// Seed selects the random universe.
	Seed uint64

	// Kernel passthrough.
	NumPEs      int
	NumKPs      int
	BatchSize   int
	GVTInterval int
	GVTMode     string
	Queue       string
	MaxOptimism core.Time
	// AdaptiveOptimism enables the kernel's rollback-efficiency throttle
	// (see core.Config.AdaptiveOptimism).
	AdaptiveOptimism bool
	// Faults arms the kernel's fault injectors (see core.Faults); only the
	// optimistic Build honours it.
	Faults *core.Faults
}

func (cfg *Config) defaults() error {
	if cfg.N < 2 {
		return errors.New("qnet: N must be at least 2")
	}
	if !(cfg.EndTime > 0) {
		return errors.New("qnet: EndTime must be positive")
	}
	if cfg.JobsPerStation <= 0 {
		cfg.JobsPerStation = 2
	}
	if cfg.MeanService <= 0 {
		cfg.MeanService = 1
	}
	return nil
}

// Kind discriminates the event types.
type Kind uint8

// The event kinds: a job arrives and queues; the job at the head of the
// queue finishes service and departs.
const (
	KindArrive Kind = iota
	KindDepart
)

// Msg is the payload; the Saved fields support reverse computation.
type Msg struct {
	Kind Kind
	// EnqueuedAt is carried on Depart events: the time the departing job
	// joined the queue (for waiting-time statistics).
	EnqueuedAt core.Time
}

// Event bit flags.
const (
	bitStartedService = 0 // Arrive: the server was idle and service began
)

// Station is the per-LP state. The FIFO of enqueue times is an append/
// truncate structure with an absolute head index, trimmed at commit —
// the same reversible-queue idiom the hot-potato injectors use.
type Station struct {
	Busy  bool
	queue []core.Time // enqueue time of each waiting job
	qBase int64
	qHead int64

	Arrivals int64
	Departs  int64
	// WaitTicks accumulates sojourn times in fixed-point ticks (tickScale
	// per time unit). Integer accumulation is the reversal-exact idiom:
	// float64 += / -= is not associative and would drift under rollback.
	WaitTicks int64
}

// tickScale is the fixed-point resolution of sojourn-time accounting.
const tickScale = 1 << 20

func toTicks(d core.Time) int64 { return int64(float64(d) * tickScale) }

// QueueLen returns the number of jobs waiting (excluding the one in
// service).
func (s *Station) QueueLen() int64 { return s.qBase + int64(len(s.queue)) - s.qHead }

// Model is the queueing-network handler.
type Model struct {
	cfg  Config
	net  topology.Torus
	size int

	// msgPool recycles Msg payloads via core.Recycler; sync.Pool because
	// Recycle runs on the destination PE's goroutine while other PEs send
	// concurrently.
	msgPool sync.Pool
}

// newMsg returns a message initialised to v, reusing a recycled Msg when
// one is available.
func (m *Model) newMsg(v Msg) *Msg {
	nm, ok := m.msgPool.Get().(*Msg)
	if !ok {
		nm = new(Msg)
	}
	*nm = v
	return nm
}

// Recycle implements core.Recycler: dead events hand their payloads back
// for reuse by later sends.
func (m *Model) Recycle(data any) {
	m.msgPool.Put(data.(*Msg))
}

// Build constructs the parallel simulator with the model installed.
func Build(cfg Config) (*core.Simulator, *Model, error) {
	if err := cfg.defaults(); err != nil {
		return nil, nil, err
	}
	net := topology.NewTorus(cfg.N)
	sim, err := core.New(core.Config{
		NumLPs:           net.Size(),
		NumPEs:           cfg.NumPEs,
		NumKPs:           cfg.NumKPs,
		EndTime:          cfg.EndTime,
		BatchSize:        cfg.BatchSize,
		GVTInterval:      cfg.GVTInterval,
		GVTMode:          cfg.GVTMode,
		Queue:            cfg.Queue,
		Seed:             cfg.Seed,
		MaxOptimism:      cfg.MaxOptimism,
		AdaptiveOptimism: cfg.AdaptiveOptimism,
		Faults:           cfg.Faults,
	})
	if err != nil {
		return nil, nil, err
	}
	m := &Model{cfg: cfg, net: net, size: net.Size()}
	m.install(sim)
	return sim, m, nil
}

// BuildSequential constructs the sequential reference run.
func BuildSequential(cfg Config) (*core.Sequential, *Model, error) {
	if err := cfg.defaults(); err != nil {
		return nil, nil, err
	}
	net := topology.NewTorus(cfg.N)
	seq, err := core.NewSequential(core.Config{
		NumLPs:  net.Size(),
		EndTime: cfg.EndTime,
		Queue:   cfg.Queue,
		Seed:    cfg.Seed,
	})
	if err != nil {
		return nil, nil, err
	}
	m := &Model{cfg: cfg, net: net, size: net.Size()}
	m.install(seq)
	return seq, m, nil
}

func (m *Model) install(h core.Host) {
	h.ForEachLP(func(lp *core.LP) {
		lp.Handler = m
		lp.State = &Station{}
	})
	for i := 0; i < m.size; i++ {
		for j := 0; j < m.cfg.JobsPerStation; j++ {
			t := core.Time(float64(j*m.size+i+1) * 1e-6)
			h.Schedule(core.LPID(i), t, m.newMsg(Msg{Kind: KindArrive}))
		}
	}
}

// Forward implements core.Handler.
func (m *Model) Forward(lp *core.LP, ev *core.Event) {
	st := lp.State.(*Station)
	msg := ev.Data.(*Msg)
	switch msg.Kind {
	case KindArrive:
		st.Arrivals++
		if !st.Busy {
			// Idle server: begin service immediately.
			ev.Bits.Set(bitStartedService)
			st.Busy = true
			lp.SendSelf(core.Time(lp.RandExp(m.cfg.MeanService))+1e-9,
				m.newMsg(Msg{Kind: KindDepart, EnqueuedAt: ev.RecvTime()}))
			return
		}
		st.queue = append(st.queue, ev.RecvTime())
	case KindDepart:
		st.Departs++
		st.WaitTicks += toTicks(ev.RecvTime() - msg.EnqueuedAt)
		// Forward the job to a random neighbour.
		dir := topology.Direction(lp.RandInt(0, topology.NumDirections-1))
		next := m.net.Neighbor(int(lp.ID), dir)
		lp.Send(core.LPID(next), 1e-9, m.newMsg(Msg{Kind: KindArrive}))
		// Start the next waiting job, if any.
		if st.qHead < st.qBase+int64(len(st.queue)) {
			ev.Bits.Set(bitStartedService)
			enq := st.queue[st.qHead-st.qBase]
			st.qHead++
			lp.SendSelf(core.Time(lp.RandExp(m.cfg.MeanService))+1e-9,
				m.newMsg(Msg{Kind: KindDepart, EnqueuedAt: enq}))
			return
		}
		st.Busy = false
	default:
		panic(fmt.Sprintf("qnet: unknown event kind %d", msg.Kind))
	}
}

// Reverse implements core.Handler.
func (m *Model) Reverse(lp *core.LP, ev *core.Event) {
	st := lp.State.(*Station)
	msg := ev.Data.(*Msg)
	switch msg.Kind {
	case KindArrive:
		if ev.Bits.Test(bitStartedService) {
			st.Busy = false
		} else {
			st.queue = st.queue[:len(st.queue)-1]
		}
		st.Arrivals--
	case KindDepart:
		if ev.Bits.Test(bitStartedService) {
			st.qHead--
		} else {
			st.Busy = true
		}
		st.WaitTicks -= toTicks(ev.RecvTime() - msg.EnqueuedAt)
		st.Departs--
	}
}

// Commit implements core.Committer: trim the committed prefix of the FIFO.
func (m *Model) Commit(lp *core.LP, ev *core.Event) {
	st := lp.State.(*Station)
	if drop := st.qHead - st.qBase; drop > 256 {
		st.queue = append([]core.Time(nil), st.queue[drop:]...)
		st.qBase = st.qHead
	}
}

// Totals aggregates the network-wide queueing statistics.
type Totals struct {
	Stations   int
	Population int64 // jobs currently in the network (must equal the initial population)
	Arrivals   int64
	Departs    int64
	AvgWait    float64 // mean sojourn (queueing + service) time per completed service
	Throughput float64 // departures per station per unit time
}

// Totals folds every station's counters. horizon is the run's EndTime,
// needed for throughput.
func (m *Model) Totals(h core.Host, horizon core.Time) Totals {
	var t Totals
	var waitTicks int64
	h.ForEachLP(func(lp *core.LP) {
		st := lp.State.(*Station)
		t.Stations++
		t.Arrivals += st.Arrivals
		t.Departs += st.Departs
		waitTicks += st.WaitTicks
		// Jobs present: one in service plus the waiting queue.
		if st.Busy {
			t.Population++
		}
		t.Population += st.QueueLen()
	})
	if t.Departs > 0 {
		t.AvgWait = float64(waitTicks) / tickScale / float64(t.Departs)
	}
	if t.Stations > 0 && horizon > 0 {
		t.Throughput = float64(t.Departs) / float64(t.Stations) / float64(horizon)
	}
	return t
}

// String renders the totals.
func (t Totals) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "qnet: %d stations, population %d\n", t.Stations, t.Population)
	fmt.Fprintf(&b, "  services completed: %d (arrivals %d)\n", t.Departs, t.Arrivals)
	fmt.Fprintf(&b, "  avg sojourn:        %.3f\n", t.AvgWait)
	fmt.Fprintf(&b, "  throughput:         %.4f jobs/station/time\n", t.Throughput)
	return b.String()
}
