package qnet

import (
	"reflect"
	"testing"

	"repro/internal/core"
)

// TestStateCodecRoundTrip fills every Station field and requires
// decode(encode(s)) to reproduce the struct exactly — the codec must cover
// everything trace.StateHash renders, or resumed fingerprints can never
// match.
func TestStateCodecRoundTrip(t *testing.T) {
	s := &Station{
		Busy:      true,
		queue:     []core.Time{1.25, 2.5, 2.5, 7},
		qBase:     1,
		qHead:     2,
		Arrivals:  11,
		Departs:   7,
		WaitTicks: 123456,
	}
	enc, err := stateCodec{}.EncodeState(nil, s)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	got := &Station{}
	if err := (stateCodec{}).DecodeState(enc, got); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(got, s) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, s)
	}
	// Truncations must error, never panic.
	for i := 0; i < len(enc); i++ {
		if err := (stateCodec{}).DecodeState(enc[:i], &Station{}); err == nil {
			t.Fatalf("state prefix of %d/%d bytes decoded", i, len(enc))
		}
	}
}
