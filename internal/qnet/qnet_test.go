package qnet

import (
	"testing"

	"repro/internal/core"
)

// stationView is a comparable snapshot of a station's observable state.
type stationView struct {
	Busy      bool
	Arrivals  int64
	Departs   int64
	WaitTicks int64
	QueueLen  int64
}

func snapshot(h core.Host) []stationView {
	out := make([]stationView, h.NumLPs())
	for i := range out {
		st := h.LP(core.LPID(i)).State.(*Station)
		out[i] = stationView{
			Busy:      st.Busy,
			Arrivals:  st.Arrivals,
			Departs:   st.Departs,
			WaitTicks: st.WaitTicks,
			QueueLen:  st.QueueLen(),
		}
	}
	return out
}

// TestParallelMatchesSequential: the queueing model — with its FIFO state
// and fixed-point accumulators — must be rollback-exact.
func TestParallelMatchesSequential(t *testing.T) {
	cfg := Config{N: 6, JobsPerStation: 3, MeanService: 0.8, EndTime: 40, Seed: 41}
	seq, _, err := BuildSequential(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := seq.Run(); err != nil {
		t.Fatal(err)
	}
	want := snapshot(seq)

	for _, pes := range []int{2, 4} {
		pcfg := cfg
		pcfg.NumPEs = pes
		pcfg.NumKPs = 4 * pes
		pcfg.BatchSize = 4
		pcfg.GVTInterval = 2
		sim, _, err := Build(pcfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sim.Run(); err != nil {
			t.Fatal(err)
		}
		got := snapshot(sim)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("pes=%d station %d: %+v != %+v", pes, i, got[i], want[i])
			}
		}
	}
}

// TestClosedPopulation: jobs are never created or destroyed — final
// population equals the initial one, modulo jobs in 1ns flight at the
// horizon.
func TestClosedPopulation(t *testing.T) {
	cfg := Config{N: 8, JobsPerStation: 4, EndTime: 60, Seed: 3}
	seq, m, err := BuildSequential(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := seq.Run(); err != nil {
		t.Fatal(err)
	}
	tot := m.Totals(seq, cfg.EndTime)
	initial := int64(8 * 8 * cfg.JobsPerStation)
	diff := initial - tot.Population
	if diff < 0 || diff > 8 {
		t.Fatalf("population %d of %d (diff %d)", tot.Population, initial, diff)
	}
	if tot.Departs == 0 || tot.Arrivals < tot.Departs {
		t.Fatalf("flow accounting wrong: %+v", tot)
	}
}

// TestLittlesLawRoughly: mean population = throughput × mean sojourn
// (L = λW), within simulation tolerance — a strong end-to-end sanity
// check of the queueing dynamics and statistics together.
func TestLittlesLawRoughly(t *testing.T) {
	cfg := Config{N: 8, JobsPerStation: 3, MeanService: 1, EndTime: 400, Seed: 5}
	seq, m, err := BuildSequential(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := seq.Run(); err != nil {
		t.Fatal(err)
	}
	tot := m.Totals(seq, cfg.EndTime)
	l := float64(8 * 8 * cfg.JobsPerStation) // closed population is constant
	lambda := tot.Throughput * float64(tot.Stations)
	w := tot.AvgWait
	predicted := lambda * w
	ratio := predicted / l
	if ratio < 0.85 || ratio > 1.15 {
		t.Fatalf("Little's law off: λW = %.1f vs L = %.1f (ratio %.3f)", predicted, l, ratio)
	}
}

// TestServiceRateScalesThroughput: halving the mean service time must
// raise throughput substantially on a saturated network.
func TestServiceRateScalesThroughput(t *testing.T) {
	run := func(mean float64) Totals {
		cfg := Config{N: 6, JobsPerStation: 4, MeanService: mean, EndTime: 100, Seed: 7}
		seq, m, err := BuildSequential(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := seq.Run(); err != nil {
			t.Fatal(err)
		}
		return m.Totals(seq, cfg.EndTime)
	}
	slow := run(2.0)
	fast := run(1.0)
	if fast.Throughput < 1.5*slow.Throughput {
		t.Fatalf("throughput %.4f with mean 1 vs %.4f with mean 2", fast.Throughput, slow.Throughput)
	}
}

// TestBusyConsistency: a station with waiting jobs must be busy.
func TestBusyConsistency(t *testing.T) {
	cfg := Config{N: 6, JobsPerStation: 2, EndTime: 50, Seed: 9}
	seq, _, err := BuildSequential(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := seq.Run(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < seq.NumLPs(); i++ {
		st := seq.LP(core.LPID(i)).State.(*Station)
		if st.QueueLen() > 0 && !st.Busy {
			t.Fatalf("station %d has %d waiting jobs but an idle server", i, st.QueueLen())
		}
		if st.QueueLen() < 0 {
			t.Fatalf("station %d has negative queue %d", i, st.QueueLen())
		}
	}
}

// TestConfigValidation covers the guard rails and defaults.
func TestConfigValidation(t *testing.T) {
	if _, _, err := Build(Config{N: 1, EndTime: 10}); err == nil {
		t.Fatal("N=1 accepted")
	}
	if _, _, err := Build(Config{N: 4}); err == nil {
		t.Fatal("zero EndTime accepted")
	}
	cfg := Config{N: 4, EndTime: 10}
	if err := cfg.defaults(); err != nil {
		t.Fatal(err)
	}
	if cfg.JobsPerStation != 2 || cfg.MeanService != 1 {
		t.Fatalf("defaults wrong: %+v", cfg)
	}
	tot := Totals{Stations: 1}
	if s := tot.String(); len(s) == 0 {
		t.Fatal("empty rendering")
	}
}
