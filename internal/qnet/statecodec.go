package qnet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/replay"
)

// StateCodecName is the registered replay state codec for Station state.
const StateCodecName = "qnet-state.v1"

func init() {
	replay.RegisterStateCodec(stateCodec{})
}

// stateCodec serialises *Station state for checkpoints. The unexported
// queue window travels too (trace.StateHash renders it): enqueue times as
// float64 bit patterns, the absolute base that commit-time trimming
// advances, and the integer-tick accounting fields.
type stateCodec struct{}

func (stateCodec) Name() string { return StateCodecName }

func (stateCodec) EncodeState(dst []byte, state any) ([]byte, error) {
	st, ok := state.(*Station)
	if !ok {
		return nil, fmt.Errorf("qnet: cannot encode state of type %T", state)
	}
	if st.Busy {
		dst = append(dst, 1)
	} else {
		dst = append(dst, 0)
	}
	dst = binary.AppendUvarint(dst, uint64(len(st.queue)))
	for _, t := range st.queue {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(float64(t)))
	}
	dst = binary.AppendVarint(dst, st.qBase)
	dst = binary.AppendVarint(dst, st.qHead)
	dst = binary.AppendVarint(dst, st.Arrivals)
	dst = binary.AppendVarint(dst, st.Departs)
	dst = binary.AppendVarint(dst, st.WaitTicks)
	return dst, nil
}

func (stateCodec) DecodeState(src []byte, state any) error {
	st, ok := state.(*Station)
	if !ok {
		return fmt.Errorf("qnet: cannot decode state into type %T", state)
	}
	off := 0
	varint := func() (int64, error) {
		v, n := binary.Varint(src[off:])
		if n <= 0 {
			return 0, errors.New("qnet: truncated state")
		}
		off += n
		return v, nil
	}
	if len(src) < 1 {
		return errors.New("qnet: truncated state")
	}
	if src[0] > 1 {
		return fmt.Errorf("qnet: bad busy flag %d in state", src[0])
	}
	var dec Station
	dec.Busy = src[0] == 1
	off = 1
	qLen, n := binary.Uvarint(src[off:])
	if n <= 0 {
		return errors.New("qnet: truncated state")
	}
	off += n
	if qLen > uint64(len(src)-off)/8 {
		return fmt.Errorf("qnet: queue length %d exceeds state payload", qLen)
	}
	if qLen > 0 {
		dec.queue = make([]core.Time, 0, qLen)
	}
	for i := uint64(0); i < qLen; i++ {
		f := math.Float64frombits(binary.LittleEndian.Uint64(src[off:]))
		off += 8
		if math.IsNaN(f) || f < 0 {
			return errors.New("qnet: invalid enqueue time in state")
		}
		dec.queue = append(dec.queue, core.Time(f))
	}
	var err error
	if dec.qBase, err = varint(); err != nil {
		return err
	}
	if dec.qHead, err = varint(); err != nil {
		return err
	}
	if dec.qBase < 0 || dec.qHead < dec.qBase || dec.qHead > dec.qBase+int64(len(dec.queue)) {
		return fmt.Errorf("qnet: inconsistent queue window base=%d head=%d len=%d",
			dec.qBase, dec.qHead, len(dec.queue))
	}
	if dec.Arrivals, err = varint(); err != nil {
		return err
	}
	if dec.Departs, err = varint(); err != nil {
		return err
	}
	if dec.WaitTicks, err = varint(); err != nil {
		return err
	}
	if off != len(src) {
		return errors.New("qnet: trailing bytes in state")
	}
	*st = dec
	return nil
}
