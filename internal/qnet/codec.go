package qnet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/replay"
)

// CodecName is the registered replay codec for qnet payloads.
const CodecName = "qnet.v1"

func init() {
	replay.RegisterCodec(codec{})
}

// codec serialises *Msg payloads for the replay log: the event kind plus
// the enqueue timestamp Depart events carry.
type codec struct{}

func (codec) Name() string { return CodecName }

func (codec) Encode(dst []byte, data any) ([]byte, error) {
	if data == nil {
		return append(dst, 0), nil
	}
	m, ok := data.(*Msg)
	if !ok {
		return nil, fmt.Errorf("qnet: cannot encode payload of type %T", data)
	}
	dst = append(dst, 1, byte(m.Kind))
	return binary.LittleEndian.AppendUint64(dst, math.Float64bits(float64(m.EnqueuedAt))), nil
}

func (codec) Decode(src []byte) (any, error) {
	if len(src) == 0 {
		return nil, errors.New("qnet: empty payload")
	}
	if src[0] == 0 {
		if len(src) != 1 {
			return nil, errors.New("qnet: trailing bytes after nil payload")
		}
		return nil, nil
	}
	if src[0] != 1 || len(src) != 10 {
		return nil, errors.New("qnet: malformed payload")
	}
	if Kind(src[1]) > KindDepart {
		return nil, fmt.Errorf("qnet: unknown event kind %d", src[1])
	}
	t := math.Float64frombits(binary.LittleEndian.Uint64(src[2:]))
	if math.IsNaN(t) {
		return nil, errors.New("qnet: NaN timestamp in payload")
	}
	return &Msg{Kind: Kind(src[1]), EnqueuedAt: core.Time(t)}, nil
}
