package crash

import "testing"

// TestParseSpec pins the CRASHPOINTS grammar: bare point names arm hit 1,
// an explicit :n arms the n-th hit, and unknown points or malformed
// counts are rejected with an error naming the registry.
func TestParseSpec(t *testing.T) {
	for _, p := range Points() {
		point, n, err := parseSpec(p)
		if err != nil || point != p || n != 1 {
			t.Fatalf("parseSpec(%q) = %q, %d, %v", p, point, n, err)
		}
		point, n, err = parseSpec(p + ":3")
		if err != nil || point != p || n != 3 {
			t.Fatalf("parseSpec(%q:3) = %q, %d, %v", p, point, n, err)
		}
	}
	for _, bad := range []string{"", "nonesuch", PointMidFrame + ":0", PointMidFrame + ":x", PointMidFrame + ":"} {
		if _, _, err := parseSpec(bad); err == nil {
			t.Fatalf("parseSpec(%q) accepted", bad)
		}
	}
}

// TestPointsStable pins the registry contents and order: the crash harness
// and CI smoke iterate Points(), so an accidental rename breaks the
// recovery matrix silently if this drifts.
func TestPointsStable(t *testing.T) {
	want := []string{
		"checkpoint-write-start",
		"checkpoint-mid-frame",
		"checkpoint-pre-sync",
		"checkpoint-manifest-swap",
	}
	got := Points()
	if len(got) != len(want) {
		t.Fatalf("Points() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Points()[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

// TestHitDisabledIsNoOp: without the crashpoints tag (the default test
// build) Hit must be callable and inert.
func TestHitDisabledIsNoOp(t *testing.T) {
	if Enabled {
		t.Skip("built with crashpoints")
	}
	for _, p := range Points() {
		Hit(p)
	}
}
