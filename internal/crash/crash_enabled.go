//go:build crashpoints

package crash

import (
	"fmt"
	"os"
	"sync"
	"syscall"
)

// Enabled reports whether this binary was built with the crashpoints tag.
const Enabled = true

var (
	armedPoint string
	armedCount uint64
	hitMu      sync.Mutex
	hitCounts  = map[string]uint64{}
)

func init() {
	spec := os.Getenv("CRASHPOINTS")
	if spec == "" {
		return
	}
	point, n, err := parseSpec(spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	armedPoint, armedCount = point, n
}

// Hit records one pass through the named kill point and, if CRASHPOINTS
// armed this point and this is the armed hit, SIGKILLs the process —
// delivered by the kernel, not raised in-process, so no defer, recover or
// exit handler runs: the on-disk state is exactly what the instrumented
// write path had published so far.
func Hit(point string) {
	if armedPoint == "" {
		return
	}
	hitMu.Lock()
	hitCounts[point]++
	die := point == armedPoint && hitCounts[point] == armedCount
	hitMu.Unlock()
	if die {
		syscall.Kill(os.Getpid(), syscall.SIGKILL)
		select {} // SIGKILL delivery is asynchronous; never resume past the point
	}
}
