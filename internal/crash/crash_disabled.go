//go:build !crashpoints

package crash

// Enabled reports whether this binary was built with the crashpoints tag.
const Enabled = false

// Hit is a no-op in ordinary builds; the empty body inlines to nothing, so
// instrumented write paths carry zero cost outside crash tests.
func Hit(point string) {}
