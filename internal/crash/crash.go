// Package crash is the whitebox kill-point registry behind the
// checkpoint/restore crash tests. Code under test calls Hit(point) at
// every boundary where dying would leave interestingly-partial on-disk
// state; in ordinary builds Hit is an empty function the compiler inlines
// away, and under the crashpoints build tag it counts hits per point and
// SIGKILLs the process on the armed one — an un-catchable death, exactly
// what a power cut or OOM kill looks like to the filesystem.
//
// Arming is environmental so the harness (cmd/crashtest) can drive an
// unmodified child binary: CRASHPOINTS=<point>[:n] kills the process on
// the n-th hit of the named point (default the first). See
// docs/CHECKPOINT.md and docs/TESTING.md ("Crash testing").
package crash

import (
	"fmt"
	"strconv"
	"strings"
)

// The registered kill points, one per checkpoint publication boundary.
// Each names the state the filesystem is left in when the process dies
// there; the recovery contract (docs/CHECKPOINT.md) must hold at all of
// them.
const (
	// PointWriteStart fires before the temporary checkpoint file is
	// created: dying here leaves the previous checkpoint fully intact.
	PointWriteStart = "checkpoint-write-start"
	// PointMidFrame fires halfway through writing the temporary file:
	// dying here leaves a torn, unmanifested *.tmp next to the previous
	// checkpoint.
	PointMidFrame = "checkpoint-mid-frame"
	// PointPreSync fires after the full temporary file is written but
	// before fsync: the file content may or may not be durable.
	PointPreSync = "checkpoint-pre-sync"
	// PointManifestSwap fires after the checkpoint file is renamed into
	// place but before the manifest is swapped to point at it: the new
	// checkpoint exists, complete, but the manifest still names the old
	// one.
	PointManifestSwap = "checkpoint-manifest-swap"
)

// Points returns every registered kill point, in publication order. The
// crash harness iterates this list so a new point is automatically
// exercised.
func Points() []string {
	return []string{PointWriteStart, PointMidFrame, PointPreSync, PointManifestSwap}
}

// parseSpec splits a CRASHPOINTS value "<point>[:n]" into the point name
// and the 1-based hit count to die on. It is untagged so the parsing is
// unit-testable in ordinary builds.
func parseSpec(spec string) (point string, n uint64, err error) {
	point, count, ok := strings.Cut(spec, ":")
	n = 1
	if ok {
		n, err = strconv.ParseUint(count, 10, 32)
		if err != nil || n == 0 {
			return "", 0, fmt.Errorf("crash: bad hit count in CRASHPOINTS=%q", spec)
		}
	}
	known := false
	for _, p := range Points() {
		if p == point {
			known = true
		}
	}
	if !known {
		return "", 0, fmt.Errorf("crash: unknown point in CRASHPOINTS=%q (known: %s)", spec, strings.Join(Points(), ", "))
	}
	return point, n, nil
}
