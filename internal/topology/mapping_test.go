package topology

import (
	"testing"
	"testing/quick"
)

// TestMappingPartition: every LP lands on exactly one valid KP, every KP
// on a valid PE.
func TestMappingPartition(t *testing.T) {
	prop := func(sideRaw, kpRaw, peRaw uint8) bool {
		side := int(sideRaw%32) + 1
		kps := int(kpRaw%70) + 1
		pes := int(peRaw%9) + 1
		m := NewBlockMapping(side, kps, pes)
		for lp := 0; lp < side*side; lp++ {
			kp := m.KPOfLP(lp)
			if kp < 0 || kp >= m.NumKPs() {
				return false
			}
			pe := m.PEOfKP(kp)
			if pe < 0 || pe >= m.NumPEs() {
				return false
			}
			if m.PEOfLP(lp) != pe {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestMappingCoversAllKPs: every KP owns at least one LP (no empty KPs
// that would skew rollback statistics) and every PE at least one KP.
func TestMappingCoversAllKPs(t *testing.T) {
	cases := []struct{ side, kps, pes int }{
		{8, 4, 2}, {8, 64, 4}, {32, 64, 4}, {5, 7, 3}, {16, 16, 16}, {4, 16, 1},
	}
	for _, c := range cases {
		m := NewBlockMapping(c.side, c.kps, c.pes)
		kpSeen := make([]bool, m.NumKPs())
		for lp := 0; lp < c.side*c.side; lp++ {
			kpSeen[m.KPOfLP(lp)] = true
		}
		for kp, seen := range kpSeen {
			if !seen {
				t.Errorf("side=%d kps=%d: KP %d owns no LP", c.side, c.kps, kp)
			}
		}
		peSeen := make([]bool, m.NumPEs())
		for kp := 0; kp < m.NumKPs(); kp++ {
			peSeen[m.PEOfKP(kp)] = true
		}
		for pe, seen := range peSeen {
			if !seen {
				t.Errorf("side=%d pes=%d: PE %d owns no KP", c.side, c.pes, pe)
			}
		}
	}
}

// TestMappingIsRectangular: the LPs of one KP form a contiguous rectangle
// — the locality property that minimises boundary traffic (§3.2.3).
func TestMappingIsRectangular(t *testing.T) {
	m := NewBlockMapping(32, 64, 4)
	type box struct{ minR, maxR, minC, maxC, count int }
	boxes := map[int]*box{}
	for lp := 0; lp < 32*32; lp++ {
		kp := m.KPOfLP(lp)
		r, c := lp/32, lp%32
		b, ok := boxes[kp]
		if !ok {
			b = &box{minR: r, maxR: r, minC: c, maxC: c}
			boxes[kp] = b
		}
		if r < b.minR {
			b.minR = r
		}
		if r > b.maxR {
			b.maxR = r
		}
		if c < b.minC {
			b.minC = c
		}
		if c > b.maxC {
			b.maxC = c
		}
		b.count++
	}
	for kp, b := range boxes {
		area := (b.maxR - b.minR + 1) * (b.maxC - b.minC + 1)
		if area != b.count {
			t.Errorf("KP %d: bounding box %d != member count %d (not a solid rectangle)", kp, area, b.count)
		}
	}
}

// TestMappingBalance: LP counts per PE must differ by a small factor.
func TestMappingBalance(t *testing.T) {
	m := NewBlockMapping(32, 64, 4)
	counts := make([]int, m.NumPEs())
	for lp := 0; lp < 32*32; lp++ {
		counts[m.PEOfLP(lp)]++
	}
	min, max := counts[0], counts[0]
	for _, c := range counts {
		if c < min {
			min = c
		}
		if c > max {
			max = c
		}
	}
	if min == 0 || max > 2*min {
		t.Fatalf("imbalanced PE loads: %v", counts)
	}
}

// TestMappingClamps: more KPs than LPs, or more PEs than KPs, must clamp
// rather than fail.
func TestMappingClamps(t *testing.T) {
	m := NewBlockMapping(2, 100, 50)
	if m.NumKPs() > 4 {
		t.Fatalf("NumKPs = %d for a 2x2 grid", m.NumKPs())
	}
	if m.NumPEs() > m.NumKPs() {
		t.Fatalf("NumPEs %d > NumKPs %d", m.NumPEs(), m.NumKPs())
	}
}

// TestSquarestFactors checks the tile-shape helper.
func TestSquarestFactors(t *testing.T) {
	cases := []struct{ n, r, c int }{
		{1, 1, 1}, {4, 2, 2}, {8, 2, 4}, {12, 3, 4}, {64, 8, 8}, {7, 1, 7}, {36, 6, 6},
	}
	for _, tc := range cases {
		r, c := squarestFactors(tc.n)
		if r != tc.r || c != tc.c {
			t.Errorf("squarestFactors(%d) = (%d,%d), want (%d,%d)", tc.n, r, c, tc.r, tc.c)
		}
	}
}

// TestMappingPanicsOnBadInput guards preconditions.
func TestMappingPanicsOnBadInput(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for zero dimensions")
		}
	}()
	NewBlockMapping(0, 1, 1)
}
