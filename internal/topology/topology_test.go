package topology

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// nets returns torus and mesh instances of side n.
func nets(n int) []Network {
	return []Network{NewTorus(n), NewMesh(n)}
}

// TestDirectionAlgebra covers Opposite and the string names.
func TestDirectionAlgebra(t *testing.T) {
	for d := Direction(0); d < NumDirections; d++ {
		if d.Opposite().Opposite() != d {
			t.Errorf("%v: double opposite broken", d)
		}
		if d.Opposite() == d {
			t.Errorf("%v equals its opposite", d)
		}
		if d.String() == "" {
			t.Errorf("direction %d has no name", d)
		}
	}
	if None.Opposite() != None {
		t.Error("None.Opposite() != None")
	}
}

// TestDirSetOperations covers the small-set helpers.
func TestDirSetOperations(t *testing.T) {
	var s DirSet
	if !s.Empty() || s.Count() != 0 {
		t.Fatal("zero DirSet not empty")
	}
	s = s.Add(North).Add(West)
	if !s.Has(North) || !s.Has(West) || s.Has(East) || s.Has(South) {
		t.Fatalf("membership wrong: %v", s)
	}
	if s.Count() != 2 {
		t.Fatalf("Count = %d", s.Count())
	}
	if s.Nth(0) != North || s.Nth(1) != West {
		t.Fatalf("Nth order wrong: %v %v", s.Nth(0), s.Nth(1))
	}
	s = s.Remove(North)
	if s.Has(North) || s.Count() != 1 {
		t.Fatalf("Remove failed: %v", s)
	}
	if s.Has(None) {
		t.Fatal("Has(None) must be false")
	}
}

// TestDirSetNthPanics guards the precondition.
func TestDirSetNthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Nth out of range did not panic")
		}
	}()
	DirSet(0).Add(East).Nth(1)
}

// TestCoordRoundTrip: ID and Coord are inverses.
func TestCoordRoundTrip(t *testing.T) {
	tor := NewTorus(7)
	mesh := NewMesh(7)
	for id := 0; id < 49; id++ {
		r, c := tor.Coord(id)
		if tor.ID(r, c) != id {
			t.Fatalf("torus roundtrip failed for %d", id)
		}
		r, c = mesh.Coord(id)
		if mesh.ID(r, c) != id {
			t.Fatalf("mesh roundtrip failed for %d", id)
		}
	}
}

// TestTorusWrap checks the explicit wrap-around arithmetic the report
// gives for the East edge.
func TestTorusWrap(t *testing.T) {
	tor := NewTorus(4)
	// East from the last LP in a row wraps to the first.
	if got := tor.Neighbor(3, East); got != 0 {
		t.Fatalf("East from 3 = %d, want 0", got)
	}
	if got := tor.Neighbor(0, West); got != 3 {
		t.Fatalf("West from 0 = %d, want 3", got)
	}
	if got := tor.Neighbor(0, North); got != 12 {
		t.Fatalf("North from 0 = %d, want 12", got)
	}
	if got := tor.Neighbor(13, South); got != 1 {
		t.Fatalf("South from 13 = %d, want 1", got)
	}
}

// TestNeighborInverse: stepping d then Opposite(d) returns to the start on
// every link that exists.
func TestNeighborInverse(t *testing.T) {
	for _, net := range nets(6) {
		for id := 0; id < net.Size(); id++ {
			for d := Direction(0); d < NumDirections; d++ {
				nb := net.Neighbor(id, d)
				if nb < 0 {
					continue
				}
				if back := net.Neighbor(nb, d.Opposite()); back != id {
					t.Fatalf("%T: %d -%v-> %d -%v-> %d", net, id, d, nb, d.Opposite(), back)
				}
			}
		}
	}
}

// TestLinksMatchNeighbors: Links must list exactly the directions with
// neighbours.
func TestLinksMatchNeighbors(t *testing.T) {
	for _, net := range nets(5) {
		for id := 0; id < net.Size(); id++ {
			links := net.Links(id)
			for d := Direction(0); d < NumDirections; d++ {
				if links.Has(d) != (net.Neighbor(id, d) >= 0) {
					t.Fatalf("%T node %d dir %v: Links disagrees with Neighbor", net, id, d)
				}
			}
		}
	}
}

// TestMeshDegrees: corners 2, edges 3, interior 4.
func TestMeshDegrees(t *testing.T) {
	m := NewMesh(5)
	wantDeg := func(r, c int) int {
		deg := 4
		if r == 0 || r == 4 {
			deg--
		}
		if c == 0 || c == 4 {
			deg--
		}
		return deg
	}
	for id := 0; id < 25; id++ {
		r, c := m.Coord(id)
		if got := m.Links(id).Count(); got != wantDeg(r, c) {
			t.Fatalf("node (%d,%d) degree %d, want %d", r, c, got, wantDeg(r, c))
		}
	}
}

// TestDistanceMetric: symmetry, identity, triangle inequality, and the
// one-step property (neighbours at distance 1).
func TestDistanceMetric(t *testing.T) {
	for _, net := range nets(6) {
		size := net.Size()
		r := rand.New(rand.NewSource(5))
		for trial := 0; trial < 500; trial++ {
			a, b, c := r.Intn(size), r.Intn(size), r.Intn(size)
			if net.Dist(a, a) != 0 {
				t.Fatalf("%T: Dist(a,a) != 0", net)
			}
			if net.Dist(a, b) != net.Dist(b, a) {
				t.Fatalf("%T: asymmetric distance", net)
			}
			if net.Dist(a, c) > net.Dist(a, b)+net.Dist(b, c) {
				t.Fatalf("%T: triangle inequality violated", net)
			}
		}
		for id := 0; id < size; id++ {
			for d := Direction(0); d < NumDirections; d++ {
				if nb := net.Neighbor(id, d); nb >= 0 && net.Dist(id, nb) != 1 {
					t.Fatalf("%T: neighbour at distance %d", net, net.Dist(id, nb))
				}
			}
		}
	}
}

// TestTorusMaxDistance: the report's reason for simulating the torus — the
// maximum distance is N-1 for even N (⌊N/2⌋ per dimension), versus 2(N-1)
// on the mesh.
func TestTorusMaxDistance(t *testing.T) {
	for _, n := range []int{4, 6, 8} {
		tor := NewTorus(n)
		maxD := 0
		for a := 0; a < tor.Size(); a++ {
			for b := 0; b < tor.Size(); b++ {
				if d := tor.Dist(a, b); d > maxD {
					maxD = d
				}
			}
		}
		if maxD != n {
			// ⌊n/2⌋*2 = n for even n.
			t.Fatalf("torus N=%d: max distance %d, want %d", n, maxD, n)
		}
		mesh := NewMesh(n)
		maxD = 0
		for a := 0; a < mesh.Size(); a++ {
			for b := 0; b < mesh.Size(); b++ {
				if d := mesh.Dist(a, b); d > maxD {
					maxD = d
				}
			}
		}
		if maxD != 2*(n-1) {
			t.Fatalf("mesh N=%d: max distance %d, want %d", n, maxD, 2*(n-1))
		}
	}
}

// TestGoodDirsReduceDistance: every good direction strictly reduces the
// distance, every non-good existing direction does not.
func TestGoodDirsReduceDistance(t *testing.T) {
	for _, net := range nets(7) {
		size := net.Size()
		r := rand.New(rand.NewSource(11))
		for trial := 0; trial < 2000; trial++ {
			from, to := r.Intn(size), r.Intn(size)
			good := net.GoodDirs(from, to)
			if from == to && !good.Empty() {
				t.Fatalf("%T: good dirs at destination", net)
			}
			d0 := net.Dist(from, to)
			for d := Direction(0); d < NumDirections; d++ {
				nb := net.Neighbor(from, d)
				if nb < 0 {
					if good.Has(d) {
						t.Fatalf("%T: absent link marked good", net)
					}
					continue
				}
				d1 := net.Dist(nb, to)
				if good.Has(d) && d1 != d0-1 {
					t.Fatalf("%T: good dir %v gives %d -> %d", net, d, d0, d1)
				}
				if !good.Has(d) && d1 < d0 {
					t.Fatalf("%T: dir %v reduces distance but not good", net, d)
				}
			}
		}
	}
}

// TestGoodDirsNonEmptyAwayFromDest: whenever from != to there is at least
// one good direction.
func TestGoodDirsNonEmptyAwayFromDest(t *testing.T) {
	for _, net := range nets(6) {
		for from := 0; from < net.Size(); from++ {
			for to := 0; to < net.Size(); to++ {
				if from != to && net.GoodDirs(from, to).Empty() {
					t.Fatalf("%T: no good dir from %d to %d", net, from, to)
				}
			}
		}
	}
}

// TestHomeRunPath: following HomeRunDir reaches the destination in exactly
// Dist hops with at most one bend, row movement first.
func TestHomeRunPath(t *testing.T) {
	for _, net := range nets(8) {
		size := net.Size()
		for from := 0; from < size; from++ {
			for to := 0; to < size; to++ {
				cur := from
				hops := 0
				bends := 0
				var prev Direction = None
				for cur != to {
					d := net.HomeRunDir(cur, to)
					if d == None {
						t.Fatalf("%T: HomeRunDir None before destination (%d->%d at %d)", net, from, to, cur)
					}
					if prev != None && d != prev {
						bends++
					}
					prev = d
					cur = net.Neighbor(cur, d)
					if cur < 0 {
						t.Fatalf("%T: home-run walked off the network", net)
					}
					hops++
					if hops > 4*size {
						t.Fatalf("%T: home-run does not terminate (%d->%d)", net, from, to)
					}
				}
				if hops != net.Dist(from, to) {
					t.Fatalf("%T: home-run length %d != distance %d (%d->%d)", net, hops, net.Dist(from, to), from, to)
				}
				if bends > 1 {
					t.Fatalf("%T: home-run has %d bends (%d->%d)", net, bends, from, to)
				}
				if net.HomeRunDir(to, to) != None {
					t.Fatalf("%T: HomeRunDir at destination not None", net)
				}
			}
		}
	}
}

// TestHomeRunRowFirst: while not in the destination column, the home-run
// direction must be horizontal.
func TestHomeRunRowFirst(t *testing.T) {
	tor := NewTorus(6)
	for from := 0; from < 36; from++ {
		for to := 0; to < 36; to++ {
			_, fc := tor.Coord(from)
			_, tc := tor.Coord(to)
			d := tor.HomeRunDir(from, to)
			if fc != tc && d != East && d != West {
				t.Fatalf("from %d to %d: first leg %v not horizontal", from, to, d)
			}
		}
	}
}

// TestHomeRunIsGood: every home-run hop is a good link (it follows a
// shortest row-column path).
func TestHomeRunIsGood(t *testing.T) {
	for _, net := range nets(7) {
		for from := 0; from < net.Size(); from++ {
			for to := 0; to < net.Size(); to++ {
				if from == to {
					continue
				}
				d := net.HomeRunDir(from, to)
				if !net.GoodDirs(from, to).Has(d) {
					t.Fatalf("%T: home-run dir %v from %d to %d is not good", net, d, from, to)
				}
			}
		}
	}
}

// TestAxisDistProperty cross-checks the wrap arithmetic against a brute
// force ring walk.
func TestAxisDistProperty(t *testing.T) {
	prop := func(a, b uint8, nRaw uint8) bool {
		n := int(nRaw%30) + 2
		from, to := int(a)%n, int(b)%n
		dist, neg, pos := axisDist(from, to, n)
		fwd := ((to - from) + n) % n
		bwd := (n - fwd) % n
		wantDist := fwd
		if bwd < fwd {
			wantDist = bwd
		}
		if from == to {
			return dist == 0 && !neg && !pos
		}
		okDist := dist == wantDist
		okPos := pos == (fwd <= bwd)
		okNeg := neg == (bwd <= fwd)
		return okDist && okPos && okNeg
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

// TestConstructorPanics: degenerate sides are rejected.
func TestConstructorPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewTorus(1) },
		func() { NewMesh(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("constructor accepted degenerate side")
				}
			}()
			fn()
		}()
	}
}
