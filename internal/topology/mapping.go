package topology

// This file implements the LP → KP → PE placement described in §3.2.3 of
// the report: the N×N grid of logical processes is divided into rectangular
// tiles, one per kernel process, and the tiles are grouped into contiguous
// bands, one per processing element. Because packets only travel between
// adjacent routers, tiling minimises the KP–KP and PE–PE boundary length
// and therefore the remote messages (and thus the rollbacks) the optimistic
// kernel has to absorb.

// BlockMapping assigns the size*size row-major LP grid to numKPs kernel
// processes and those KPs to numPEs processing elements.
type BlockMapping struct {
	side        int
	kpRows      int // KP tile grid dimensions
	kpCols      int
	numKPs      int
	numPEs      int
	rowBounds   []int // kpRows+1 row boundaries of the tile grid
	colBounds   []int // kpCols+1 column boundaries
	kpToPE      []int
	lpRowOfKPRo []int // cached: for each grid row, which KP tile-row
	lpColOfKPCo []int
}

// NewBlockMapping builds the rectangular tiling. numKPs is factored into a
// tile grid as close to square as possible; when the side does not divide
// evenly the tiles differ by at most one row/column. KPs are assigned to
// PEs in contiguous runs of whole tile rows where possible, so each PE owns
// a horizontal band of the network.
func NewBlockMapping(side, numKPs, numPEs int) *BlockMapping {
	if side < 1 || numKPs < 1 || numPEs < 1 {
		panic("topology: mapping dimensions must be positive")
	}
	if numKPs > side*side {
		numKPs = side * side
	}
	if numPEs > numKPs {
		numPEs = numKPs
	}
	kpRows, kpCols := squarestFactors(numKPs)
	if kpRows > side {
		kpRows = side
	}
	if kpCols > side {
		kpCols = side
	}
	// Clamping the tile grid to the side can shrink the KP count below the
	// earlier numPEs clamp; re-clamp so no PE is left without a KP.
	if numPEs > kpRows*kpCols {
		numPEs = kpRows * kpCols
	}
	m := &BlockMapping{
		side:   side,
		kpRows: kpRows,
		kpCols: kpCols,
		numKPs: kpRows * kpCols,
		numPEs: numPEs,
	}
	m.rowBounds = bounds(side, kpRows)
	m.colBounds = bounds(side, kpCols)
	m.lpRowOfKPRo = invertBounds(m.rowBounds, side)
	m.lpColOfKPCo = invertBounds(m.colBounds, side)

	// Assign KPs to PEs in row-major tile order, split into numPEs nearly
	// equal contiguous runs: PE p owns KPs [p*K/P, (p+1)*K/P).
	m.kpToPE = make([]int, m.numKPs)
	for kp := 0; kp < m.numKPs; kp++ {
		m.kpToPE[kp] = kp * numPEs / m.numKPs
	}
	return m
}

// NumKPs returns the number of kernel processes actually used; it may be
// less than requested when the requested count could not tile the grid
// (e.g. more KPs than LPs).
func (m *BlockMapping) NumKPs() int { return m.numKPs }

// NumPEs returns the number of processing elements used.
func (m *BlockMapping) NumPEs() int { return m.numPEs }

// KPOfLP returns the kernel process that owns logical process lp.
func (m *BlockMapping) KPOfLP(lp int) int {
	row, col := lp/m.side, lp%m.side
	return m.lpRowOfKPRo[row]*m.kpCols + m.lpColOfKPCo[col]
}

// PEOfKP returns the processing element that owns kernel process kp.
func (m *BlockMapping) PEOfKP(kp int) int { return m.kpToPE[kp] }

// PEOfLP returns the processing element that owns logical process lp.
func (m *BlockMapping) PEOfLP(lp int) int { return m.kpToPE[m.KPOfLP(lp)] }

// squarestFactors returns (r, c) with r*c == n and r <= c, maximising r —
// the factor pair closest to a square.
func squarestFactors(n int) (int, int) {
	r := 1
	for f := 1; f*f <= n; f++ {
		if n%f == 0 {
			r = f
		}
	}
	return r, n / r
}

// bounds splits [0, side) into parts nearly-equal intervals and returns the
// parts+1 boundary positions.
func bounds(side, parts int) []int {
	b := make([]int, parts+1)
	for i := 0; i <= parts; i++ {
		b[i] = i * side / parts
	}
	return b
}

// invertBounds returns, for each position in [0, side), the index of the
// interval that contains it.
func invertBounds(b []int, side int) []int {
	out := make([]int, side)
	interval := 0
	for pos := 0; pos < side; pos++ {
		// Advance past any interval that ends at or before pos; this also
		// skips zero-width intervals when parts > side.
		for interval < len(b)-2 && pos >= b[interval+1] {
			interval++
		}
		out[pos] = interval
	}
	return out
}
