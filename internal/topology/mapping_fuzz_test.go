package topology

import "testing"

// FuzzBlockMapping drives the LP→KP→PE placement with arbitrary grid
// sides and KP/PE counts and checks the structural contract the kernel
// builds on:
//
//   - every LP maps to exactly one in-range KP, and every KP to one
//     in-range PE (a partition, no gaps);
//   - each KP's territory is a contiguous rectangular tile of the grid;
//   - the KP→PE assignment is a nondecreasing sequence of contiguous runs
//     covering every PE;
//   - the mapping is a pure function of its inputs: a second construction
//     and repeated lookups give identical answers (round-trip stability).
func FuzzBlockMapping(f *testing.F) {
	f.Add(uint16(8), uint16(64), uint16(4))
	f.Add(uint16(1), uint16(1), uint16(1))
	f.Add(uint16(7), uint16(13), uint16(5))
	f.Add(uint16(32), uint16(9999), uint16(999))
	f.Fuzz(func(t *testing.T, sideRaw, kpRaw, peRaw uint16) {
		side := int(sideRaw%48) + 1
		kpsAsked := int(kpRaw%(uint16(side*side)+64)) + 1
		pesAsked := int(peRaw%(uint16(kpsAsked)+8)) + 1
		m := NewBlockMapping(side, kpsAsked, pesAsked)
		numKPs, numPEs := m.NumKPs(), m.NumPEs()
		if numKPs < 1 || numKPs > side*side {
			t.Fatalf("NumKPs=%d out of range for side=%d", numKPs, side)
		}
		if numPEs < 1 || numPEs > numKPs {
			t.Fatalf("NumPEs=%d out of range for %d KPs", numPEs, numKPs)
		}

		// Partition + tile shape: collect each KP's bounding box and count.
		type box struct {
			minR, maxR, minC, maxC, count int
		}
		boxes := make([]box, numKPs)
		for i := range boxes {
			boxes[i] = box{minR: side, minC: side, maxR: -1, maxC: -1}
		}
		for lp := 0; lp < side*side; lp++ {
			kp := m.KPOfLP(lp)
			if kp < 0 || kp >= numKPs {
				t.Fatalf("KPOfLP(%d)=%d out of range [0,%d)", lp, kp, numKPs)
			}
			r, c := lp/side, lp%side
			b := &boxes[kp]
			if r < b.minR {
				b.minR = r
			}
			if r > b.maxR {
				b.maxR = r
			}
			if c < b.minC {
				b.minC = c
			}
			if c > b.maxC {
				b.maxC = c
			}
			b.count++
		}
		for kp, b := range boxes {
			if b.count == 0 {
				t.Fatalf("KP %d owns no LPs (side=%d kps=%d)", kp, side, numKPs)
			}
			if area := (b.maxR - b.minR + 1) * (b.maxC - b.minC + 1); area != b.count {
				t.Fatalf("KP %d is not a solid rectangle: bbox area %d, %d LPs", kp, area, b.count)
			}
		}

		// KP→PE: nondecreasing contiguous runs covering every PE.
		prev := 0
		seen := make([]bool, numPEs)
		for kp := 0; kp < numKPs; kp++ {
			pe := m.PEOfKP(kp)
			if pe < 0 || pe >= numPEs {
				t.Fatalf("PEOfKP(%d)=%d out of range [0,%d)", kp, pe, numPEs)
			}
			if pe < prev {
				t.Fatalf("PEOfKP not nondecreasing: PEOfKP(%d)=%d after %d", kp, pe, prev)
			}
			if pe > prev+1 {
				t.Fatalf("PEOfKP skips PEs: PEOfKP(%d)=%d after %d", kp, pe, prev)
			}
			prev = pe
			seen[pe] = true
		}
		for pe, ok := range seen {
			if !ok {
				t.Fatalf("PE %d owns no KPs (kps=%d pes=%d)", pe, numKPs, numPEs)
			}
		}

		// Round-trip stability: PEOfLP composes the two maps, and an
		// independent construction agrees everywhere.
		m2 := NewBlockMapping(side, kpsAsked, pesAsked)
		if m2.NumKPs() != numKPs || m2.NumPEs() != numPEs {
			t.Fatalf("reconstruction changed shape: (%d,%d) vs (%d,%d)",
				m2.NumKPs(), m2.NumPEs(), numKPs, numPEs)
		}
		for lp := 0; lp < side*side; lp++ {
			kp := m.KPOfLP(lp)
			if got, want := m.PEOfLP(lp), m.PEOfKP(kp); got != want {
				t.Fatalf("PEOfLP(%d)=%d but PEOfKP(KPOfLP)=%d", lp, got, want)
			}
			if m2.KPOfLP(lp) != kp || m2.PEOfLP(lp) != m.PEOfLP(lp) {
				t.Fatalf("reconstruction disagrees at LP %d", lp)
			}
			if m.KPOfLP(lp) != kp {
				t.Fatalf("repeated lookup disagrees at LP %d", lp)
			}
		}
	})
}
