// Package topology models the networks the hot-potato simulation routes
// on: the N×N torus used by the report's experiments and the N×N mesh used
// by the theoretical analysis in Busch, Herlihy & Wattenhofer (SPAA 2001).
//
// Nodes are identified by dense integer IDs laid out row-major, exactly as
// the report lays out ROSS logical processes ("Row 1 contains LP 0..31,
// Row 2 contains LP 32..." for N = 32). All routing geometry — which links
// bring a packet closer to its destination (good links), the one-bend
// home-run path, wrap-around distances — lives here so the routing policies
// and the simulation model can share one audited implementation.
package topology

import "fmt"

// Direction identifies one of the four bidirectional links of a node.
type Direction uint8

// The four link directions, plus None for "no link chosen". North decreases
// the row index, South increases it; West decreases the column, East
// increases it (with wrap-around on the torus).
const (
	North Direction = iota
	East
	South
	West
	None Direction = 0xFF
)

// NumDirections is the degree of an interior node.
const NumDirections = 4

// String returns the compass name of the direction.
func (d Direction) String() string {
	switch d {
	case North:
		return "North"
	case East:
		return "East"
	case South:
		return "South"
	case West:
		return "West"
	case None:
		return "None"
	}
	return fmt.Sprintf("Direction(%d)", uint8(d))
}

// Opposite returns the reverse direction; packets sent out direction d
// arrive at the neighbour on the link Opposite(d).
func (d Direction) Opposite() Direction {
	switch d {
	case North:
		return South
	case South:
		return North
	case East:
		return West
	case West:
		return East
	}
	return None
}

// DirSet is a small set of directions, used for free-link and good-link
// sets during a routing decision.
type DirSet uint8

// Add returns the set with d included.
func (s DirSet) Add(d Direction) DirSet { return s | 1<<d }

// Has reports whether d is in the set.
func (s DirSet) Has(d Direction) bool { return d != None && s&(1<<d) != 0 }

// Remove returns the set with d excluded.
func (s DirSet) Remove(d Direction) DirSet { return s &^ (1 << d) }

// Count returns the number of directions in the set.
func (s DirSet) Count() int {
	n := 0
	for d := Direction(0); d < NumDirections; d++ {
		if s.Has(d) {
			n++
		}
	}
	return n
}

// Nth returns the i-th direction of the set in North, East, South, West
// order. It panics if i is out of range; callers index with a value drawn
// uniformly from [0, Count()).
func (s DirSet) Nth(i int) Direction {
	for d := Direction(0); d < NumDirections; d++ {
		if s.Has(d) {
			if i == 0 {
				return d
			}
			i--
		}
	}
	panic("topology: DirSet.Nth index out of range")
}

// Empty reports whether the set has no directions.
func (s DirSet) Empty() bool { return s == 0 }

// String lists the members, e.g. "{North East}".
func (s DirSet) String() string {
	out := "{"
	for d := Direction(0); d < NumDirections; d++ {
		if s.Has(d) {
			if len(out) > 1 {
				out += " "
			}
			out += d.String()
		}
	}
	return out + "}"
}

// Network is the geometry interface shared by the torus and the mesh.
type Network interface {
	// Size returns the number of nodes.
	Size() int
	// N returns the side length of the square network.
	N() int
	// Neighbor returns the node reached by following the link in
	// direction d from node id, or -1 if the link does not exist
	// (mesh boundary).
	Neighbor(id int, d Direction) int
	// Links returns the set of directions that have links at node id.
	Links(id int) DirSet
	// Dist returns the minimum hop distance between two nodes.
	Dist(a, b int) int
	// GoodDirs returns the set of directions that strictly reduce the
	// distance from 'from' to 'to' (the report's "good links").
	GoodDirs(from, to int) DirSet
	// HomeRunDir returns the next hop of the one-bend home-run path from
	// 'from' to 'to': first along the row toward the destination column,
	// then along the column (report §1.2.4). Returns None when from == to.
	HomeRunDir(from, to int) Direction
}

// Torus is an N×N wrap-around mesh: every node has degree four and the
// maximum distance between two nodes is N-1 (versus 2(N-1) for the mesh),
// which is why the report simulates the torus.
type Torus struct {
	side int
}

// NewTorus returns an N×N torus. N must be at least 2.
func NewTorus(n int) Torus {
	if n < 2 {
		panic("topology: torus side must be >= 2")
	}
	return Torus{side: n}
}

// N returns the side length.
func (t Torus) N() int { return t.side }

// Size returns N*N.
func (t Torus) Size() int { return t.side * t.side }

// Coord returns the (row, column) of a node ID.
func (t Torus) Coord(id int) (row, col int) { return id / t.side, id % t.side }

// ID returns the node at (row, column); coordinates wrap.
func (t Torus) ID(row, col int) int {
	row = mod(row, t.side)
	col = mod(col, t.side)
	return row*t.side + col
}

// Links reports the full degree-four link set of every torus node.
func (t Torus) Links(int) DirSet {
	return DirSet(0).Add(North).Add(East).Add(South).Add(West)
}

// Neighbor returns the node across the link in direction d. The arithmetic
// mirrors the report's LP-number calculation, e.g. East from lp is
// ((lp/N)*N) + ((lp+1) mod N).
func (t Torus) Neighbor(id int, d Direction) int {
	row, col := t.Coord(id)
	switch d {
	case North:
		return t.ID(row-1, col)
	case South:
		return t.ID(row+1, col)
	case East:
		return t.ID(row, col+1)
	case West:
		return t.ID(row, col-1)
	}
	return -1
}

// axisDist returns the wrap-around distance along one axis and the
// direction sign(s) that reduce it: negative (North/West), positive
// (South/East), or both when the two ways around are equally short.
func axisDist(from, to, n int) (dist int, negGood, posGood bool) {
	d := mod(to-from, n)
	if d == 0 {
		return 0, false, false
	}
	forward := d      // moving in the positive direction
	backward := n - d // moving in the negative direction
	switch {
	case forward < backward:
		return forward, false, true
	case backward < forward:
		return backward, true, false
	default:
		return forward, true, true
	}
}

// Dist returns the minimum hop distance with wrap-around.
func (t Torus) Dist(a, b int) int {
	ar, ac := t.Coord(a)
	br, bc := t.Coord(b)
	dr, _, _ := axisDist(ar, br, t.side)
	dc, _, _ := axisDist(ac, bc, t.side)
	return dr + dc
}

// GoodDirs returns every direction that strictly reduces Dist(from, to).
// On a torus a dimension at exactly half the side length is good both
// ways around.
func (t Torus) GoodDirs(from, to int) DirSet {
	var s DirSet
	fr, fc := t.Coord(from)
	tr, tc := t.Coord(to)
	if _, neg, pos := axisDist(fr, tr, t.side); true {
		if neg {
			s = s.Add(North)
		}
		if pos {
			s = s.Add(South)
		}
	}
	if _, neg, pos := axisDist(fc, tc, t.side); true {
		if neg {
			s = s.Add(West)
		}
		if pos {
			s = s.Add(East)
		}
	}
	return s
}

// HomeRunDir returns the next hop of the row-first one-bend path. Ties
// (destination exactly opposite on the ring) resolve East / South so the
// home-run path of a packet is a fixed function of (from, to), as the
// algorithm requires: a Running packet re-requests the same path every
// step.
func (t Torus) HomeRunDir(from, to int) Direction {
	fr, fc := t.Coord(from)
	tr, tc := t.Coord(to)
	if fc != tc {
		_, neg, pos := axisDist(fc, tc, t.side)
		if pos {
			return East // East wins ties
		}
		if neg {
			return West
		}
	}
	if fr != tr {
		_, neg, pos := axisDist(fr, tr, t.side)
		if pos {
			return South // South wins ties
		}
		if neg {
			return North
		}
	}
	return None
}

// Mesh is an N×N grid without wrap-around; boundary nodes have degree
// three and corners degree two. It is the topology of the SPAA 2001
// theoretical analysis.
type Mesh struct {
	side int
}

// NewMesh returns an N×N mesh. N must be at least 2.
func NewMesh(n int) Mesh {
	if n < 2 {
		panic("topology: mesh side must be >= 2")
	}
	return Mesh{side: n}
}

// N returns the side length.
func (m Mesh) N() int { return m.side }

// Size returns N*N.
func (m Mesh) Size() int { return m.side * m.side }

// Coord returns the (row, column) of a node ID.
func (m Mesh) Coord(id int) (row, col int) { return id / m.side, id % m.side }

// ID returns the node at (row, column); coordinates must be in range.
func (m Mesh) ID(row, col int) int { return row*m.side + col }

// Neighbor returns the node across the link in direction d, or -1 at the
// boundary.
func (m Mesh) Neighbor(id int, d Direction) int {
	row, col := m.Coord(id)
	switch d {
	case North:
		row--
	case South:
		row++
	case East:
		col++
	case West:
		col--
	default:
		return -1
	}
	if row < 0 || row >= m.side || col < 0 || col >= m.side {
		return -1
	}
	return m.ID(row, col)
}

// Links returns the directions that exist at node id (2, 3 or 4 of them).
func (m Mesh) Links(id int) DirSet {
	var s DirSet
	for d := Direction(0); d < NumDirections; d++ {
		if m.Neighbor(id, d) >= 0 {
			s = s.Add(d)
		}
	}
	return s
}

// Dist returns the Manhattan distance.
func (m Mesh) Dist(a, b int) int {
	ar, ac := m.Coord(a)
	br, bc := m.Coord(b)
	return abs(ar-br) + abs(ac-bc)
}

// GoodDirs returns the directions that strictly reduce the Manhattan
// distance; on a mesh there is at most one per dimension.
func (m Mesh) GoodDirs(from, to int) DirSet {
	var s DirSet
	fr, fc := m.Coord(from)
	tr, tc := m.Coord(to)
	switch {
	case tr < fr:
		s = s.Add(North)
	case tr > fr:
		s = s.Add(South)
	}
	switch {
	case tc < fc:
		s = s.Add(West)
	case tc > fc:
		s = s.Add(East)
	}
	return s
}

// HomeRunDir returns the next hop of the row-first one-bend path.
func (m Mesh) HomeRunDir(from, to int) Direction {
	fr, fc := m.Coord(from)
	tr, tc := m.Coord(to)
	switch {
	case tc > fc:
		return East
	case tc < fc:
		return West
	case tr > fr:
		return South
	case tr < fr:
		return North
	}
	return None
}

func mod(a, n int) int {
	a %= n
	if a < 0 {
		a += n
	}
	return a
}

func abs(a int) int {
	if a < 0 {
		return -a
	}
	return a
}
