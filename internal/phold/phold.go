// Package phold implements PHOLD, the standard synthetic benchmark for
// parallel discrete-event simulators (Fujimoto, "Performance of Time Warp
// under synthetic workloads", 1990). A fixed population of jobs bounces
// between logical processes with exponential delays; the remote-message
// probability dials inter-PE traffic, and therefore rollback pressure, up
// and down.
//
// The hot-potato model is the report's workload; PHOLD is the neutral
// stressor the kernel ablations (queue choice, KP counts, GVT interval)
// use so their results are not confounded by routing dynamics.
package phold

import (
	"errors"

	"repro/internal/core"
)

// Config parameterises a PHOLD run.
type Config struct {
	// NumLPs is the number of logical processes.
	NumLPs int
	// Population is the number of jobs in flight per LP at start (the
	// classic "message density"); default 1.
	Population int
	// RemoteProb is the probability a job moves to a uniformly random LP
	// instead of staying home. Higher values mean more inter-PE traffic.
	RemoteProb float64
	// MeanDelay is the mean of the exponential hold time; default 1.
	MeanDelay float64
	// Lookahead is a constant added to every delay; PHOLD traditionally
	// runs with a small positive lookahead. Default 0.1.
	Lookahead float64
	// EndTime is the virtual-time horizon.
	EndTime core.Time
	// Seed selects the random universe.
	Seed uint64

	// Kernel passthrough.
	NumPEs      int
	NumKPs      int
	BatchSize   int
	GVTInterval int
	GVTMode     string
	Queue       string
	MaxOptimism core.Time
	// AdaptiveOptimism enables the kernel's rollback-efficiency throttle
	// (see core.Config.AdaptiveOptimism).
	AdaptiveOptimism bool
	// Faults arms the kernel's fault injectors (see core.Faults); only the
	// optimistic Build honours it.
	Faults *core.Faults
}

func (cfg *Config) defaults() error {
	if cfg.NumLPs <= 0 {
		return errors.New("phold: NumLPs must be positive")
	}
	if !(cfg.EndTime > 0) {
		return errors.New("phold: EndTime must be positive")
	}
	if cfg.Population <= 0 {
		cfg.Population = 1
	}
	if cfg.MeanDelay <= 0 {
		cfg.MeanDelay = 1
	}
	if cfg.Lookahead <= 0 {
		cfg.Lookahead = 0.1
	}
	if cfg.RemoteProb < 0 || cfg.RemoteProb > 1 {
		return errors.New("phold: RemoteProb must be in [0, 1]")
	}
	return nil
}

// State is the per-LP state: just a processed-job counter.
type State struct {
	Processed int64
}

// Model is the PHOLD handler.
type Model struct {
	cfg Config
}

// Build constructs the parallel simulator with PHOLD installed.
func Build(cfg Config) (*core.Simulator, *Model, error) {
	if err := cfg.defaults(); err != nil {
		return nil, nil, err
	}
	sim, err := core.New(core.Config{
		NumLPs:           cfg.NumLPs,
		NumPEs:           cfg.NumPEs,
		NumKPs:           cfg.NumKPs,
		EndTime:          cfg.EndTime,
		BatchSize:        cfg.BatchSize,
		GVTInterval:      cfg.GVTInterval,
		GVTMode:          cfg.GVTMode,
		Queue:            cfg.Queue,
		Seed:             cfg.Seed,
		MaxOptimism:      cfg.MaxOptimism,
		AdaptiveOptimism: cfg.AdaptiveOptimism,
		Faults:           cfg.Faults,
	})
	if err != nil {
		return nil, nil, err
	}
	m := &Model{cfg: cfg}
	m.install(sim)
	return sim, m, nil
}

// BuildConservative constructs the window-synchronous conservative
// executor; its usable lookahead is exactly cfg.Lookahead, so PHOLD is
// the natural workload for studying conservative lookahead sensitivity.
func BuildConservative(cfg Config) (*core.Conservative, *Model, error) {
	if err := cfg.defaults(); err != nil {
		return nil, nil, err
	}
	cons, err := core.NewConservative(core.Config{
		NumLPs:  cfg.NumLPs,
		NumPEs:  cfg.NumPEs,
		NumKPs:  cfg.NumKPs,
		EndTime: cfg.EndTime,
		Queue:   cfg.Queue,
		Seed:    cfg.Seed,
	}, core.Time(cfg.Lookahead))
	if err != nil {
		return nil, nil, err
	}
	m := &Model{cfg: cfg}
	m.install(cons)
	return cons, m, nil
}

// BuildSequential constructs the sequential reference run.
func BuildSequential(cfg Config) (*core.Sequential, *Model, error) {
	if err := cfg.defaults(); err != nil {
		return nil, nil, err
	}
	seq, err := core.NewSequential(core.Config{
		NumLPs:  cfg.NumLPs,
		EndTime: cfg.EndTime,
		Queue:   cfg.Queue,
		Seed:    cfg.Seed,
	})
	if err != nil {
		return nil, nil, err
	}
	m := &Model{cfg: cfg}
	m.install(seq)
	return seq, m, nil
}

func (m *Model) install(h core.Host) {
	h.ForEachLP(func(lp *core.LP) {
		lp.Handler = m
		lp.State = &State{}
	})
	// Stagger the initial population deterministically so no two bootstrap
	// events tie.
	n := h.NumLPs()
	for i := 0; i < n; i++ {
		for p := 0; p < m.cfg.Population; p++ {
			t := core.Time(float64(p*n+i+1) * 1e-6)
			h.Schedule(core.LPID(i), t, nil)
		}
	}
}

// Forward implements core.Handler: hold the job, then forward it. PHOLD
// jobs carry no payload (Data is nil), so the kernel's event free list
// alone makes the steady-state loop allocation-free — the model needs no
// core.Recycler, unlike hotpotato and qnet whose message structs are
// recycled through one.
func (m *Model) Forward(lp *core.LP, ev *core.Event) {
	lp.State.(*State).Processed++
	dst := lp.ID
	if lp.Rand() < m.cfg.RemoteProb {
		dst = core.LPID(lp.RandInt(0, int64(m.cfg.NumLPs)-1))
	}
	delay := core.Time(m.cfg.Lookahead + lp.RandExp(m.cfg.MeanDelay))
	lp.Send(dst, delay, nil)
}

// Reverse implements core.Handler.
func (m *Model) Reverse(lp *core.LP, ev *core.Event) {
	lp.State.(*State).Processed--
}

// TotalProcessed sums the per-LP job counters.
func (m *Model) TotalProcessed(h core.Host) int64 {
	var total int64
	h.ForEachLP(func(lp *core.LP) {
		total += lp.State.(*State).Processed
	})
	return total
}
