package phold

import (
	"errors"
	"fmt"

	"repro/internal/replay"
)

// CodecName is the registered replay codec for PHOLD payloads.
const CodecName = "phold.v1"

func init() {
	replay.RegisterCodec(codec{})
}

// codec serialises PHOLD payloads, which are always nil (jobs carry no
// data); the encoding is the empty byte string.
type codec struct{}

func (codec) Name() string { return CodecName }

func (codec) Encode(dst []byte, data any) ([]byte, error) {
	if data != nil {
		return nil, fmt.Errorf("phold: cannot encode payload of type %T (PHOLD events carry nil)", data)
	}
	return dst, nil
}

func (codec) Decode(src []byte) (any, error) {
	if len(src) != 0 {
		return nil, errors.New("phold: non-empty payload (PHOLD events carry nil)")
	}
	return nil, nil
}
