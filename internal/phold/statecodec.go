package phold

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/replay"
)

// StateCodecName is the registered replay state codec for PHOLD state.
const StateCodecName = "phold-state.v1"

func init() {
	replay.RegisterStateCodec(stateCodec{})
}

// stateCodec serialises *State (one processed-event counter) for
// checkpoints.
type stateCodec struct{}

func (stateCodec) Name() string { return StateCodecName }

func (stateCodec) EncodeState(dst []byte, state any) ([]byte, error) {
	st, ok := state.(*State)
	if !ok {
		return nil, fmt.Errorf("phold: cannot encode state of type %T", state)
	}
	return binary.AppendVarint(dst, st.Processed), nil
}

func (stateCodec) DecodeState(src []byte, state any) error {
	st, ok := state.(*State)
	if !ok {
		return fmt.Errorf("phold: cannot decode state into type %T", state)
	}
	v, n := binary.Varint(src)
	if n <= 0 {
		return errors.New("phold: truncated state")
	}
	if n != len(src) {
		return errors.New("phold: trailing bytes in state")
	}
	if v < 0 {
		return errors.New("phold: negative processed count in state")
	}
	st.Processed = v
	return nil
}
