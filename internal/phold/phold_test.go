package phold

import (
	"testing"

	"repro/internal/core"
)

func snapshot(h core.Host) []int64 {
	out := make([]int64, h.NumLPs())
	for i := range out {
		out[i] = h.LP(core.LPID(i)).State.(*State).Processed
	}
	return out
}

// TestParallelMatchesSequential: PHOLD under heavy remote traffic must
// commit the sequential history exactly.
func TestParallelMatchesSequential(t *testing.T) {
	cfg := Config{NumLPs: 64, Population: 4, RemoteProb: 0.9, EndTime: 30, Seed: 17}
	seq, sm, err := BuildSequential(cfg)
	if err != nil {
		t.Fatal(err)
	}
	seqStats, err := seq.Run()
	if err != nil {
		t.Fatal(err)
	}
	want := snapshot(seq)
	if sm.TotalProcessed(seq) == 0 {
		t.Fatal("sequential run processed nothing")
	}

	for _, pes := range []int{1, 2, 4} {
		pcfg := cfg
		pcfg.NumPEs = pes
		pcfg.NumKPs = 4 * pes
		pcfg.BatchSize = 4
		pcfg.GVTInterval = 2
		sim, _, err := Build(pcfg)
		if err != nil {
			t.Fatal(err)
		}
		parStats, err := sim.Run()
		if err != nil {
			t.Fatal(err)
		}
		got := snapshot(sim)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("pes=%d LP %d: %d != %d", pes, i, got[i], want[i])
			}
		}
		if parStats.Committed != seqStats.Committed {
			t.Fatalf("pes=%d: committed %d != %d", pes, parStats.Committed, seqStats.Committed)
		}
	}
}

// TestPopulationIsConserved: PHOLD's invariant — each processed event
// sends exactly one event, so the in-flight population never changes and
// processed counts track EndTime * population / meanDelay roughly.
func TestPopulationIsConserved(t *testing.T) {
	cfg := Config{NumLPs: 32, Population: 2, RemoteProb: 0.5, EndTime: 100, Seed: 3}
	seq, m, err := BuildSequential(cfg)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := seq.Run()
	if err != nil {
		t.Fatal(err)
	}
	if m.TotalProcessed(seq) != stats.Committed {
		t.Fatalf("model count %d != kernel count %d", m.TotalProcessed(seq), stats.Committed)
	}
	// 64 jobs, mean hold 1.1 (delay+lookahead), horizon 100 →
	// roughly 64*100/1.1 ≈ 5800 events; accept a broad band.
	if stats.Committed < 4000 || stats.Committed > 8000 {
		t.Fatalf("committed %d far from expectation", stats.Committed)
	}
}

// TestConservativeMatchesSequential: PHOLD under the conservative engine
// must commit the sequential history (its lookahead is explicit).
func TestConservativeMatchesSequential(t *testing.T) {
	cfg := Config{NumLPs: 32, Population: 2, RemoteProb: 0.7, Lookahead: 0.2, EndTime: 20, Seed: 19}
	seq, _, err := BuildSequential(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := seq.Run(); err != nil {
		t.Fatal(err)
	}
	want := snapshot(seq)

	ccfg := cfg
	ccfg.NumPEs = 4
	cons, _, err := BuildConservative(ccfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cons.Run(); err != nil {
		t.Fatal(err)
	}
	got := snapshot(cons)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("LP %d: conservative %d != sequential %d", i, got[i], want[i])
		}
	}
}

// TestRemoteProbExtremes: RemoteProb 0 must still run (self-loops only),
// and the config guard must reject out-of-range values.
func TestRemoteProbExtremes(t *testing.T) {
	cfg := Config{NumLPs: 8, RemoteProb: 0, EndTime: 10, Seed: 1}
	seq, m, err := BuildSequential(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := seq.Run(); err != nil {
		t.Fatal(err)
	}
	if m.TotalProcessed(seq) == 0 {
		t.Fatal("no events with RemoteProb=0")
	}
	if _, _, err := Build(Config{NumLPs: 8, RemoteProb: 1.5, EndTime: 10}); err == nil {
		t.Fatal("RemoteProb > 1 accepted")
	}
	if _, _, err := Build(Config{NumLPs: 0, EndTime: 10}); err == nil {
		t.Fatal("zero LPs accepted")
	}
	if _, _, err := Build(Config{NumLPs: 8}); err == nil {
		t.Fatal("zero EndTime accepted")
	}
}

// TestDefaultsApplied: zero optional fields must be filled.
func TestDefaultsApplied(t *testing.T) {
	cfg := Config{NumLPs: 4, EndTime: 5}
	if err := cfg.defaults(); err != nil {
		t.Fatal(err)
	}
	if cfg.Population != 1 || cfg.MeanDelay != 1 || cfg.Lookahead != 0.1 {
		t.Fatalf("defaults wrong: %+v", cfg)
	}
}
