package replay

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/core"
)

// Minimal codecs so writer-construction tests can run without a model.
type fakeStateCodec struct{}

func (fakeStateCodec) Name() string                                      { return "fake-state" }
func (fakeStateCodec) EncodeState(dst []byte, state any) ([]byte, error) { return dst, nil }
func (fakeStateCodec) DecodeState(src []byte, state any) error           { return nil }

type fakeCodec struct{}

func (fakeCodec) Name() string                                { return "fake-payload" }
func (fakeCodec) Encode(dst []byte, data any) ([]byte, error) { return dst, nil }
func (fakeCodec) Decode(src []byte) (any, error)              { return nil, nil }

func init() {
	RegisterStateCodec(fakeStateCodec{})
	RegisterCodec(fakeCodec{})
}

// sampleCheckpoint exercises every wire feature: optional trace digests,
// nil and non-nil state/payload bytes, a bootstrap-source frontier event
// (src == NoLP), and ties broken at every level of the event order.
func sampleCheckpoint() *Checkpoint {
	return &Checkpoint{
		StateCodec: "m-state",
		Codec:      "m",
		GVT:        12.5,
		Committed:  4096,
		NumLPs:     3,
		HasTrace:   true,
		TraceLen:   4096,
		TraceHash:  0xdeadbeefcafe,
		LPHashes:   []uint64{11, 22, 33},
		LPs: []CheckpointLP{
			{State: []byte{1, 2, 3}, RNG: [4]uint64{9, 8, 7, 6}, Draws: 42, SendSeq: 7},
			{State: nil, RNG: [4]uint64{1, 2, 3, 4}, Draws: 0, SendSeq: 0},
			{State: []byte{0xff}, RNG: [4]uint64{5, 5, 5, 5}, Draws: 1, SendSeq: 2},
		},
		Frontier: []CheckpointEvent{
			{T: 12.5, Dst: 0, Src: core.NoLP, Seq: 3, Data: []byte{1}},
			{T: 12.5, Dst: 1, Src: 2, Seq: 0, Data: nil},
			{T: 13, Dst: 0, Src: 0, Seq: 9, Data: []byte{2, 3}},
		},
	}
}

func TestCheckpointCodecRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		name string
		cp   *Checkpoint
	}{
		{"full", sampleCheckpoint()},
		{"no-trace", func() *Checkpoint {
			cp := sampleCheckpoint()
			cp.HasTrace = false
			cp.TraceLen, cp.TraceHash, cp.LPHashes = 0, 0, nil
			return cp
		}()},
		{"empty-frontier", func() *Checkpoint {
			cp := sampleCheckpoint()
			cp.Frontier = nil
			return cp
		}()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			enc := EncodeCheckpoint(tc.cp)
			got, err := DecodeCheckpoint(enc)
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			if !reflect.DeepEqual(got, tc.cp) {
				t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, tc.cp)
			}
			if re := EncodeCheckpoint(got); !bytes.Equal(re, enc) {
				t.Fatalf("re-encode is not canonical: %d vs %d bytes", len(re), len(enc))
			}
		})
	}
}

// TestCheckpointDecodeTruncated cuts a valid checkpoint at every prefix
// length: each must fail with an error, never a panic — a torn file must
// always be detected.
func TestCheckpointDecodeTruncated(t *testing.T) {
	enc := EncodeCheckpoint(sampleCheckpoint())
	for i := 0; i < len(enc); i++ {
		if _, err := DecodeCheckpoint(enc[:i]); err == nil {
			t.Fatalf("prefix of %d/%d bytes decoded without error", i, len(enc))
		}
	}
}

// TestCheckpointDecodeFlipped flips every byte of a valid checkpoint in
// turn. Each flip must either be rejected or — if it happens to still
// parse — decode to something that re-encodes exactly to the flipped
// input (the canonicality contract, same as the fuzz target's).
func TestCheckpointDecodeFlipped(t *testing.T) {
	enc := EncodeCheckpoint(sampleCheckpoint())
	buf := make([]byte, len(enc))
	for i := 0; i < len(enc); i++ {
		copy(buf, enc)
		buf[i] ^= 0xff
		cp, err := DecodeCheckpoint(buf)
		if err != nil {
			continue
		}
		if re := EncodeCheckpoint(cp); !bytes.Equal(re, buf) {
			t.Fatalf("byte %d flipped: accepted but not canonical", i)
		}
	}
}

func TestCheckpointDecodeRejects(t *testing.T) {
	base := sampleCheckpoint()
	mutate := func(fn func(cp *Checkpoint)) []byte {
		cp := sampleCheckpoint()
		fn(cp)
		return EncodeCheckpoint(cp)
	}
	for _, tc := range []struct {
		name string
		buf  []byte
	}{
		{"empty", nil},
		{"bad-magic", []byte("GTWR")},
		{"frontier-below-gvt", mutate(func(cp *Checkpoint) {
			cp.Frontier[0].T = cp.GVT - 1
		})},
		{"frontier-out-of-order", mutate(func(cp *Checkpoint) {
			cp.Frontier[0], cp.Frontier[2] = cp.Frontier[2], cp.Frontier[0]
		})},
		{"frontier-dst-out-of-range", mutate(func(cp *Checkpoint) {
			cp.Frontier[2].Dst = core.LPID(cp.NumLPs)
		})},
		{"frontier-src-out-of-range", mutate(func(cp *Checkpoint) {
			cp.Frontier[2].Src = -2
		})},
		{"lp-count-mismatch", mutate(func(cp *Checkpoint) {
			cp.LPs = cp.LPs[:2]
		})},
		{"lp-hash-count-mismatch", mutate(func(cp *Checkpoint) {
			cp.LPHashes = cp.LPHashes[:2]
		})},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := DecodeCheckpoint(tc.buf); err == nil {
				t.Fatal("malformed checkpoint decoded without error")
			}
		})
	}
	_ = base
}

func TestManifestRoundTrip(t *testing.T) {
	enc := EncodeManifest("checkpoint-000004.ckpt", 0xfeedface)
	m, err := decodeManifest(enc)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if m.file != "checkpoint-000004.ckpt" || m.sum != 0xfeedface {
		t.Fatalf("round trip mismatch: %+v", m)
	}
	for i := 0; i < len(enc); i++ {
		if _, err := decodeManifest(enc[:i]); err == nil {
			t.Fatalf("manifest prefix of %d bytes decoded", i)
		}
		buf := append([]byte(nil), enc...)
		buf[i] ^= 0xff
		if _, err := decodeManifest(buf); err == nil {
			t.Fatalf("manifest with byte %d flipped decoded", i)
		}
	}
	// A manifest must not be able to point the loader outside its directory.
	for _, name := range []string{"", ".", "..", "../evil", "sub/evil"} {
		if _, err := decodeManifest(EncodeManifest(name, 1)); err == nil {
			t.Fatalf("manifest naming %q decoded", name)
		}
	}
}

// publishRaw drives the writer's publication path with pre-encoded bytes,
// so torn-state tests can stage crashes without registered model codecs.
func publishRaw(t *testing.T, w *CheckpointWriter, cp *Checkpoint) {
	t.Helper()
	if err := w.publish(EncodeCheckpoint(cp)); err != nil {
		t.Fatalf("publish: %v", err)
	}
}

// TestLoadCheckpointTornStates verifies the crash-atomicity contract at
// the loader: for every way a publication can be interrupted, LoadCheckpoint
// returns the previous complete checkpoint (or ErrNoCheckpoint before the
// first), never a torn one.
func TestLoadCheckpointTornStates(t *testing.T) {
	cp1 := sampleCheckpoint()
	cp2 := sampleCheckpoint()
	cp2.GVT, cp2.Committed = 20, 8192
	for i := range cp2.Frontier {
		cp2.Frontier[i].T += 8
	}

	t.Run("empty-dir", func(t *testing.T) {
		if _, err := LoadCheckpoint(t.TempDir()); !errors.Is(err, ErrNoCheckpoint) {
			t.Fatalf("got %v, want ErrNoCheckpoint", err)
		}
	})
	t.Run("missing-dir", func(t *testing.T) {
		if _, err := LoadCheckpoint(filepath.Join(t.TempDir(), "nonesuch")); !errors.Is(err, ErrNoCheckpoint) {
			t.Fatalf("got %v, want ErrNoCheckpoint", err)
		}
	})
	t.Run("published", func(t *testing.T) {
		dir := t.TempDir()
		publishRaw(t, &CheckpointWriter{dir: dir, seq: 1}, cp1)
		got, err := LoadCheckpoint(dir)
		if err != nil {
			t.Fatalf("load: %v", err)
		}
		if !reflect.DeepEqual(got, cp1) {
			t.Fatal("loaded checkpoint differs from published one")
		}
	})
	t.Run("torn-tmp-write", func(t *testing.T) {
		// Crash during the second checkpoint's tmp write: a partial .tmp
		// file exists, the manifest still names checkpoint 1.
		dir := t.TempDir()
		w := &CheckpointWriter{dir: dir, seq: 1}
		publishRaw(t, w, cp1)
		enc2 := EncodeCheckpoint(cp2)
		torn := filepath.Join(dir, "checkpoint-000002.ckpt.tmp")
		if err := os.WriteFile(torn, enc2[:len(enc2)/2], 0o644); err != nil {
			t.Fatal(err)
		}
		got, err := LoadCheckpoint(dir)
		if err != nil {
			t.Fatalf("load: %v", err)
		}
		if got.Committed != cp1.Committed {
			t.Fatal("torn tmp write did not recover to the previous checkpoint")
		}
		// A fresh writer over the directory sweeps the debris and numbers
		// past the published file.
		w2, err := NewCheckpointWriter(dir, "fake-state", "fake-payload", nil)
		if err != nil {
			t.Fatalf("new writer over crashed dir: %v", err)
		}
		if _, err := os.Stat(torn); !errors.Is(err, os.ErrNotExist) {
			t.Fatal("new writer did not sweep tmp debris")
		}
		if w2.seq != 2 || w2.lastFile != "checkpoint-000001.ckpt" {
			t.Fatalf("writer resumed at seq=%d lastFile=%q", w2.seq, w2.lastFile)
		}
		publishRaw(t, w2, cp2)
		if got, err := LoadCheckpoint(dir); err != nil || got.Committed != cp2.Committed {
			t.Fatalf("publish after recovery: got %v, err %v", got, err)
		}
		if _, err := os.Stat(filepath.Join(dir, "checkpoint-000001.ckpt")); !errors.Is(err, os.ErrNotExist) {
			t.Fatal("superseded checkpoint not deleted after recovery publish")
		}
	})
	t.Run("torn-manifest-swap", func(t *testing.T) {
		// Crash between the new checkpoint's rename and the manifest swap:
		// checkpoint 2 is complete on disk but the manifest still names
		// checkpoint 1 — the loader must return checkpoint 1.
		dir := t.TempDir()
		publishRaw(t, &CheckpointWriter{dir: dir, seq: 1}, cp1)
		if err := os.WriteFile(filepath.Join(dir, "checkpoint-000002.ckpt"), EncodeCheckpoint(cp2), 0o644); err != nil {
			t.Fatal(err)
		}
		got, err := LoadCheckpoint(dir)
		if err != nil {
			t.Fatalf("load: %v", err)
		}
		if got.Committed != cp1.Committed || got.GVT != cp1.GVT {
			t.Fatal("torn manifest swap did not recover to the previous checkpoint")
		}
	})
	t.Run("corrupt-checkpoint", func(t *testing.T) {
		dir := t.TempDir()
		publishRaw(t, &CheckpointWriter{dir: dir, seq: 1}, cp1)
		path := filepath.Join(dir, "checkpoint-000001.ckpt")
		buf, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		buf[len(buf)/2] ^= 0xff
		if err := os.WriteFile(path, buf, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadCheckpoint(dir); err == nil || errors.Is(err, ErrNoCheckpoint) {
			t.Fatalf("corrupt checkpoint loaded: err=%v", err)
		}
	})
	t.Run("manifest-names-missing-file", func(t *testing.T) {
		dir := t.TempDir()
		publishRaw(t, &CheckpointWriter{dir: dir, seq: 1}, cp1)
		if err := os.Remove(filepath.Join(dir, "checkpoint-000001.ckpt")); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadCheckpoint(dir); err == nil || errors.Is(err, ErrNoCheckpoint) {
			t.Fatalf("dangling manifest loaded: err=%v", err)
		}
	})
	t.Run("supersede-deletes-previous", func(t *testing.T) {
		dir := t.TempDir()
		w := &CheckpointWriter{dir: dir, seq: 1}
		publishRaw(t, w, cp1)
		publishRaw(t, w, cp2)
		got, err := LoadCheckpoint(dir)
		if err != nil {
			t.Fatalf("load: %v", err)
		}
		if got.Committed != cp2.Committed {
			t.Fatal("second publication did not supersede the first")
		}
		if _, err := os.Stat(filepath.Join(dir, "checkpoint-000001.ckpt")); !errors.Is(err, os.ErrNotExist) {
			t.Fatal("superseded checkpoint file was not deleted")
		}
	})
}

// FuzzCheckpointCodec holds DecodeCheckpoint to the same contract as the
// log codec's fuzz target: arbitrary input must decode or error — never
// panic, never an outsized allocation — and anything accepted must be
// canonical and a fixpoint.
func FuzzCheckpointCodec(f *testing.F) {
	full := EncodeCheckpoint(sampleCheckpoint())
	f.Add(full)
	f.Add(full[:len(full)/2])
	noTrace := sampleCheckpoint()
	noTrace.HasTrace = false
	noTrace.TraceLen, noTrace.TraceHash, noTrace.LPHashes = 0, 0, nil
	f.Add(EncodeCheckpoint(noTrace))
	f.Add([]byte(nil))
	f.Add([]byte("GTWC"))
	f.Fuzz(func(t *testing.T, data []byte) {
		cp, err := DecodeCheckpoint(data)
		if err != nil {
			return
		}
		enc := EncodeCheckpoint(cp)
		if !bytes.Equal(enc, data) {
			t.Fatalf("accepted input is not canonical: %d in, %d re-encoded", len(data), len(enc))
		}
		cp2, err := DecodeCheckpoint(enc)
		if err != nil {
			t.Fatalf("re-encoded checkpoint fails to decode: %v", err)
		}
		if !bytes.Equal(EncodeCheckpoint(cp2), enc) {
			t.Fatal("encode/decode is not a fixpoint")
		}
	})
}
