package replay

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
	"math"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/core"
	"repro/internal/crash"
	"repro/internal/trace"
)

// Checkpoint file format (documented in docs/CHECKPOINT.md). A checkpoint
// serialises one kernel CheckpointState — the committed below-GVT prefix of
// a run plus the frontier that regenerates the rest — using the same
// CRC-framed varint conventions as the replay log (wire.go):
//
//	frame := type:1 | payloadLen:uvarint | payload | crc32(payload):4 LE
//
// The header frame comes first and the end frame last; an optional trace
// frame (the commit recorder's digests, present when the writer has one)
// precedes the mandatory lps and frontier frames. DecodeCheckpoint is
// total: malformed input of any kind yields an error, never a panic or an
// outsized allocation, and anything accepted is canonical — re-encoding
// reproduces the accepted bytes (FuzzCheckpointCodec holds it to that).
//
// Publication is crash-atomic: the writer streams into a .tmp file, fsyncs,
// renames it to its final name, fsyncs the directory, and only then swaps
// the MANIFEST (itself written via the same tmp/rename dance) to point at
// the new file. A crash anywhere in the sequence leaves the previous
// MANIFEST naming the previous complete checkpoint; LoadCheckpoint follows
// the manifest only, so torn or unreferenced files are never loaded. The
// internal/crash kill points mark exactly these boundaries and the crash
// harness SIGKILLs a victim at each one.

const (
	ckptMagic   = "GTWC"
	ckptVersion = 1

	ckptFrameHeader   byte = 1
	ckptFrameTrace    byte = 2
	ckptFrameLPs      byte = 3
	ckptFrameFrontier byte = 4
	ckptFrameEnd      byte = 5

	manifestMagic   = "GTWM"
	manifestVersion = 1

	// ManifestName is the file in a checkpoint directory that names the
	// current complete checkpoint; its atomic replacement is the publication
	// point.
	ManifestName = "MANIFEST"
)

// ErrNoCheckpoint is returned by LoadCheckpoint when the directory holds no
// published checkpoint (no manifest). Distinct from corruption errors: "no
// checkpoint yet" means start from scratch, a corrupt checkpoint means the
// durability contract broke.
var ErrNoCheckpoint = errors.New("replay: no checkpoint in directory")

// CheckpointLP is one LP's serialized committed state: the model state
// bytes (via a StateCodec), the RNG stream position and the send sequence.
type CheckpointLP struct {
	State   []byte
	RNG     [4]uint64
	Draws   uint64
	SendSeq uint64
}

// CheckpointEvent is one serialized frontier event, payload encoded via the
// model's payload Codec. Src is core.NoLP for bootstrap events.
type CheckpointEvent struct {
	T    core.Time
	Dst  core.LPID
	Src  core.LPID
	Seq  uint64
	Data []byte
}

// Checkpoint is one decoded checkpoint: everything a fresh build of the
// same Spec needs to continue the run from GVT, plus (when HasTrace) the
// commit recorder's digests at the cut so the resumed trace can be verified
// as an exact continuation. Frontier is sorted by the kernel's total event
// order, strictly increasing.
type Checkpoint struct {
	// StateCodec and Codec name the registered codecs that serialized LP
	// states and frontier payloads.
	StateCodec string
	Codec      string
	GVT        core.Time
	// Committed is the number of events the checkpointed run had committed —
	// exactly the events below GVT.
	Committed int64
	NumLPs    int
	// HasTrace marks checkpoints taken with a commit recorder attached:
	// TraceLen/TraceHash/LPHashes are that recorder's digests of the
	// committed prefix, used to seed the resumed run's recorder.
	HasTrace  bool
	TraceLen  int
	TraceHash uint64
	LPHashes  []uint64
	LPs       []CheckpointLP
	Frontier  []CheckpointEvent
}

// ---- encoding ----

func appendCkptHeader(dst []byte, cp *Checkpoint) []byte {
	p := []byte(ckptMagic)
	p = binary.AppendUvarint(p, ckptVersion)
	p = appendString(p, cp.StateCodec)
	p = appendString(p, cp.Codec)
	p = binary.LittleEndian.AppendUint64(p, math.Float64bits(float64(cp.GVT)))
	p = binary.AppendUvarint(p, uint64(cp.Committed))
	p = binary.AppendUvarint(p, uint64(cp.NumLPs))
	return appendFrame(dst, ckptFrameHeader, p)
}

func appendCkptTrace(dst []byte, cp *Checkpoint) []byte {
	p := binary.AppendUvarint(nil, uint64(cp.TraceLen))
	p = binary.LittleEndian.AppendUint64(p, cp.TraceHash)
	p = binary.AppendUvarint(p, uint64(len(cp.LPHashes)))
	for _, h := range cp.LPHashes {
		p = binary.LittleEndian.AppendUint64(p, h)
	}
	return appendFrame(dst, ckptFrameTrace, p)
}

func appendCkptLPs(dst []byte, cp *Checkpoint) []byte {
	p := binary.AppendUvarint(nil, uint64(len(cp.LPs)))
	for _, lp := range cp.LPs {
		p = binary.AppendUvarint(p, uint64(len(lp.State)))
		p = append(p, lp.State...)
		for _, s := range lp.RNG {
			p = binary.AppendUvarint(p, s)
		}
		p = binary.AppendUvarint(p, lp.Draws)
		p = binary.AppendUvarint(p, lp.SendSeq)
	}
	return appendFrame(dst, ckptFrameLPs, p)
}

func appendCkptFrontier(dst []byte, cp *Checkpoint) []byte {
	p := binary.AppendUvarint(nil, uint64(len(cp.Frontier)))
	var prevBits uint64
	var prevDst int64
	for _, ev := range cp.Frontier {
		bits := math.Float64bits(float64(ev.T))
		p = binary.AppendVarint(p, int64(bits-prevBits))
		prevBits = bits
		p = binary.AppendVarint(p, int64(ev.Dst)-prevDst)
		prevDst = int64(ev.Dst)
		p = binary.AppendVarint(p, int64(ev.Src))
		p = binary.AppendUvarint(p, ev.Seq)
		p = binary.AppendUvarint(p, uint64(len(ev.Data)))
		p = append(p, ev.Data...)
	}
	return appendFrame(dst, ckptFrameFrontier, p)
}

// EncodeCheckpoint serialises a checkpoint into the framed binary format.
func EncodeCheckpoint(cp *Checkpoint) []byte {
	dst := appendCkptHeader(nil, cp)
	if cp.HasTrace {
		dst = appendCkptTrace(dst, cp)
	}
	dst = appendCkptLPs(dst, cp)
	dst = appendCkptFrontier(dst, cp)
	return appendFrame(dst, ckptFrameEnd, nil)
}

// ---- decoding ----

func (c *cursor) u32() (uint32, error) {
	if c.remaining() < 4 {
		return 0, errTruncated
	}
	v := binary.LittleEndian.Uint32(c.buf[c.off:])
	c.off += 4
	return v, nil
}

func decodeCkptHeader(p []byte) (*Checkpoint, error) {
	c := &cursor{buf: p}
	cp := &Checkpoint{}
	m, err := c.bytes(uint64(len(ckptMagic)))
	if err != nil {
		return nil, err
	}
	if string(m) != ckptMagic {
		return nil, errors.New("replay: bad magic (not a checkpoint)")
	}
	ver, err := c.uvarint()
	if err != nil {
		return nil, err
	}
	if ver != ckptVersion {
		return nil, fmt.Errorf("replay: unsupported checkpoint version %d (want %d)", ver, ckptVersion)
	}
	if cp.StateCodec, err = c.str(); err != nil {
		return nil, err
	}
	if cp.Codec, err = c.str(); err != nil {
		return nil, err
	}
	bits, err := c.u64()
	if err != nil {
		return nil, err
	}
	if cp.GVT, err = timeFromBits(bits); err != nil {
		return nil, err
	}
	if cp.GVT < 0 {
		return nil, errors.New("replay: checkpoint GVT is negative")
	}
	committed, err := c.uvarint()
	if err != nil {
		return nil, err
	}
	if committed > math.MaxInt64 {
		return nil, errors.New("replay: committed count out of range")
	}
	cp.Committed = int64(committed)
	if cp.NumLPs, err = c.intField(); err != nil {
		return nil, err
	}
	if c.remaining() != 0 {
		return nil, errors.New("replay: trailing bytes in checkpoint header frame")
	}
	return cp, nil
}

func decodeCkptTrace(p []byte, cp *Checkpoint) error {
	c := &cursor{buf: p}
	var err error
	if cp.TraceLen, err = c.intField(); err != nil {
		return err
	}
	if cp.TraceHash, err = c.u64(); err != nil {
		return err
	}
	n, err := c.count(8)
	if err != nil {
		return err
	}
	if n != cp.NumLPs {
		return fmt.Errorf("replay: trace frame has %d LP hashes, checkpoint has %d LPs", n, cp.NumLPs)
	}
	cp.LPHashes = make([]uint64, 0, n)
	for i := 0; i < n; i++ {
		h, err := c.u64()
		if err != nil {
			return err
		}
		cp.LPHashes = append(cp.LPHashes, h)
	}
	if c.remaining() != 0 {
		return errors.New("replay: trailing bytes in checkpoint trace frame")
	}
	cp.HasTrace = true
	return nil
}

func decodeCkptLPs(p []byte, cp *Checkpoint) error {
	c := &cursor{buf: p}
	// state len + 4 rng components + draws + sendSeq ≥ 7 bytes per LP.
	n, err := c.count(7)
	if err != nil {
		return err
	}
	if n != cp.NumLPs {
		return fmt.Errorf("replay: lps frame has %d LPs, checkpoint header says %d", n, cp.NumLPs)
	}
	cp.LPs = make([]CheckpointLP, 0, n)
	for i := 0; i < n; i++ {
		var lp CheckpointLP
		sz, err := c.uvarint()
		if err != nil {
			return err
		}
		b, err := c.bytes(sz)
		if err != nil {
			return err
		}
		if len(b) > 0 {
			lp.State = append([]byte(nil), b...)
		}
		for j := range lp.RNG {
			if lp.RNG[j], err = c.uvarint(); err != nil {
				return err
			}
		}
		if lp.Draws, err = c.uvarint(); err != nil {
			return err
		}
		if lp.SendSeq, err = c.uvarint(); err != nil {
			return err
		}
		cp.LPs = append(cp.LPs, lp)
	}
	if c.remaining() != 0 {
		return errors.New("replay: trailing bytes in checkpoint lps frame")
	}
	return nil
}

func decodeCkptFrontier(p []byte, cp *Checkpoint) error {
	c := &cursor{buf: p}
	// time delta + dst delta + src + seq + payload len ≥ 5 bytes per event.
	n, err := c.count(5)
	if err != nil {
		return err
	}
	if n > 0 {
		cp.Frontier = make([]CheckpointEvent, 0, n)
	}
	var prevBits uint64
	var prevDst int64
	for i := 0; i < n; i++ {
		var ev CheckpointEvent
		d, err := c.varint()
		if err != nil {
			return err
		}
		prevBits += uint64(d)
		if ev.T, err = timeFromBits(prevBits); err != nil {
			return err
		}
		if ev.T < cp.GVT {
			return fmt.Errorf("replay: frontier event %d at %v is below checkpoint GVT %v", i, ev.T, cp.GVT)
		}
		dd, err := c.varint()
		if err != nil {
			return err
		}
		prevDst += dd
		if prevDst < 0 || prevDst >= int64(cp.NumLPs) {
			return fmt.Errorf("replay: frontier event %d targets LP %d, checkpoint has %d", i, prevDst, cp.NumLPs)
		}
		ev.Dst = core.LPID(prevDst)
		src, err := c.varint()
		if err != nil {
			return err
		}
		if src < int64(core.NoLP) || src >= int64(cp.NumLPs) {
			return fmt.Errorf("replay: frontier event %d has source LP %d out of range", i, src)
		}
		ev.Src = core.LPID(src)
		if ev.Seq, err = c.uvarint(); err != nil {
			return err
		}
		sz, err := c.uvarint()
		if err != nil {
			return err
		}
		b, err := c.bytes(sz)
		if err != nil {
			return err
		}
		if len(b) > 0 {
			ev.Data = append([]byte(nil), b...)
		}
		if i > 0 {
			if prev := cp.Frontier[i-1]; !beforeCkptEvent(prev, ev) {
				return fmt.Errorf("replay: frontier events %d and %d out of order", i-1, i)
			}
		}
		cp.Frontier = append(cp.Frontier, ev)
	}
	if c.remaining() != 0 {
		return errors.New("replay: trailing bytes in checkpoint frontier frame")
	}
	return nil
}

// beforeCkptEvent is the kernel's total event order on serialized frontier
// events; the frontier must be strictly increasing under it.
func beforeCkptEvent(a, b CheckpointEvent) bool {
	if a.T != b.T {
		return a.T < b.T
	}
	if a.Dst != b.Dst {
		return a.Dst < b.Dst
	}
	if a.Src != b.Src {
		return a.Src < b.Src
	}
	return a.Seq < b.Seq
}

// DecodeCheckpoint parses a framed checkpoint. It never panics: any
// malformed input returns an error.
func DecodeCheckpoint(buf []byte) (*Checkpoint, error) {
	c := &cursor{buf: buf}
	frame := func() (byte, []byte, error) {
		typ, err := c.byte()
		if err != nil {
			return 0, nil, err
		}
		sz, err := c.uvarint()
		if err != nil {
			return 0, nil, err
		}
		if sz > uint64(c.remaining()) {
			return 0, nil, errTruncated
		}
		payload, err := c.bytes(sz)
		if err != nil {
			return 0, nil, err
		}
		want, err := c.bytes(4)
		if err != nil {
			return 0, nil, err
		}
		if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(want) {
			return 0, nil, fmt.Errorf("replay: CRC mismatch in checkpoint frame type %d", typ)
		}
		return typ, payload, nil
	}

	typ, payload, err := frame()
	if err != nil {
		return nil, err
	}
	if typ != ckptFrameHeader {
		return nil, errors.New("replay: checkpoint does not start with a header frame")
	}
	cp, err := decodeCkptHeader(payload)
	if err != nil {
		return nil, err
	}
	if typ, payload, err = frame(); err != nil {
		return nil, err
	}
	if typ == ckptFrameTrace {
		if err := decodeCkptTrace(payload, cp); err != nil {
			return nil, err
		}
		if typ, payload, err = frame(); err != nil {
			return nil, err
		}
	}
	if typ != ckptFrameLPs {
		return nil, fmt.Errorf("replay: expected lps frame, got type %d", typ)
	}
	if err := decodeCkptLPs(payload, cp); err != nil {
		return nil, err
	}
	if typ, payload, err = frame(); err != nil {
		return nil, err
	}
	if typ != ckptFrameFrontier {
		return nil, fmt.Errorf("replay: expected frontier frame, got type %d", typ)
	}
	if err := decodeCkptFrontier(payload, cp); err != nil {
		return nil, err
	}
	if typ, payload, err = frame(); err != nil {
		return nil, err
	}
	if typ != ckptFrameEnd || len(payload) != 0 {
		return nil, errors.New("replay: bad checkpoint end frame")
	}
	if c.remaining() != 0 {
		return nil, errors.New("replay: trailing bytes after checkpoint end frame")
	}
	return cp, nil
}

// ---- manifest ----

// EncodeManifest serialises a manifest naming the current checkpoint file
// and the CRC of its entire contents. The manifest is itself CRC-trailed,
// so a torn manifest write is detectable (though the tmp/rename publication
// should make one impossible).
func EncodeManifest(file string, sum uint32) []byte {
	p := []byte(manifestMagic)
	p = binary.AppendUvarint(p, manifestVersion)
	p = appendString(p, file)
	p = binary.LittleEndian.AppendUint32(p, sum)
	return binary.LittleEndian.AppendUint32(p, crc32.ChecksumIEEE(p))
}

type manifest struct {
	file string
	sum  uint32
}

func decodeManifest(buf []byte) (manifest, error) {
	var m manifest
	if len(buf) < 4 {
		return m, errTruncated
	}
	p, tail := buf[:len(buf)-4], buf[len(buf)-4:]
	if crc32.ChecksumIEEE(p) != binary.LittleEndian.Uint32(tail) {
		return m, errors.New("replay: manifest CRC mismatch")
	}
	c := &cursor{buf: p}
	mg, err := c.bytes(uint64(len(manifestMagic)))
	if err != nil {
		return m, err
	}
	if string(mg) != manifestMagic {
		return m, errors.New("replay: bad manifest magic")
	}
	ver, err := c.uvarint()
	if err != nil {
		return m, err
	}
	if ver != manifestVersion {
		return m, fmt.Errorf("replay: unsupported manifest version %d", ver)
	}
	if m.file, err = c.str(); err != nil {
		return m, err
	}
	// The filename must stay inside the checkpoint directory: manifests come
	// from disk and must not be able to point a loader at an arbitrary path.
	if m.file == "" || m.file == "." || m.file == ".." || m.file != filepath.Base(m.file) {
		return m, fmt.Errorf("replay: manifest names invalid file %q", m.file)
	}
	if m.sum, err = c.u32(); err != nil {
		return m, err
	}
	if c.remaining() != 0 {
		return m, errors.New("replay: trailing bytes in manifest")
	}
	return m, nil
}

// ---- writer ----

// CheckpointWriter is a core.CheckpointSink that serialises each checkpoint
// the kernel hands it and publishes it crash-atomically into a directory.
// Only the manifest-named file is ever considered published; at most one
// previous checkpoint file is kept until the next publication completes.
type CheckpointWriter struct {
	dir        string
	stateCodec StateCodec
	codec      Codec
	rec        *trace.Recorder
	seq        int
	lastFile   string
}

// NewCheckpointWriter builds a writer over dir (created if needed). rec,
// when non-nil, must be the run's unbounded commit recorder: each
// checkpoint then carries the recorder's digests at the cut, which is what
// lets a resumed run's trace be verified as an exact continuation. Stale
// .tmp debris from a previously killed writer is removed; existing
// published checkpoints are left alone (file numbering continues past
// them), so resuming and re-checkpointing into the same directory works.
func NewCheckpointWriter(dir, stateCodecName, codecName string, rec *trace.Recorder) (*CheckpointWriter, error) {
	sc, err := StateCodecFor(stateCodecName)
	if err != nil {
		return nil, err
	}
	pc, err := CodecFor(codecName)
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	w := &CheckpointWriter{dir: dir, stateCodec: sc, codec: pc, rec: rec, seq: 1}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		name := e.Name()
		if strings.HasSuffix(name, ".tmp") {
			// Publication is rename-based, so a .tmp file is never the live
			// checkpoint — only debris from a killed writer.
			os.Remove(filepath.Join(dir, name))
			continue
		}
		var n int
		if _, err := fmt.Sscanf(name, "checkpoint-%d.ckpt", &n); err == nil && n >= w.seq {
			w.seq = n + 1
		}
	}
	if mb, err := os.ReadFile(filepath.Join(dir, ManifestName)); err == nil {
		if m, err := decodeManifest(mb); err == nil {
			w.lastFile = m.file
		}
	}
	return w, nil
}

// Checkpoint implements core.CheckpointSink: serialise the kernel's state
// through the model codecs and publish it. Runs on PE 0 while the machine
// is quiescent, so reading the trace recorder here sees exactly the
// committed below-GVT prefix.
func (w *CheckpointWriter) Checkpoint(cs *core.CheckpointState) error {
	cp := &Checkpoint{
		StateCodec: w.stateCodec.Name(),
		Codec:      w.codec.Name(),
		GVT:        cs.GVT,
		Committed:  cs.Committed,
		NumLPs:     len(cs.LPs),
	}
	if w.rec != nil {
		cp.HasTrace = true
		cp.TraceLen = w.rec.Len()
		cp.TraceHash = w.rec.Hash()
		cp.LPHashes = w.rec.LPHashes(len(cs.LPs))
	}
	cp.LPs = make([]CheckpointLP, len(cs.LPs))
	for i, lp := range cs.LPs {
		b, err := w.stateCodec.EncodeState(nil, lp.State)
		if err != nil {
			return fmt.Errorf("replay: encoding LP %d state: %w", i, err)
		}
		cp.LPs[i] = CheckpointLP{State: b, RNG: lp.RNG, Draws: lp.RNGDraws, SendSeq: lp.SendSeq}
	}
	cp.Frontier = make([]CheckpointEvent, len(cs.Frontier))
	for i, ev := range cs.Frontier {
		b, err := w.codec.Encode(nil, ev.Data)
		if err != nil {
			return fmt.Errorf("replay: encoding frontier payload for LP %d: %w", ev.Dst, err)
		}
		cp.Frontier[i] = CheckpointEvent{T: ev.T, Dst: ev.Dst, Src: ev.Src, Seq: ev.Seq, Data: b}
	}
	return w.publish(EncodeCheckpoint(cp))
}

// publish writes data crash-atomically: tmp file → fsync → rename → dir
// fsync → manifest via the same dance → delete the superseded file. The
// crash kill points bracket each durability step; a SIGKILL at any of them
// must leave the directory loading to the previous complete checkpoint
// (or ErrNoCheckpoint before the first), which is exactly what the crash
// harness verifies.
func (w *CheckpointWriter) publish(data []byte) error {
	crash.Hit(crash.PointWriteStart)
	name := fmt.Sprintf("checkpoint-%06d.ckpt", w.seq)
	w.seq++
	path := filepath.Join(w.dir, name)
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	half := len(data) / 2
	if _, err := f.Write(data[:half]); err != nil {
		f.Close()
		return err
	}
	crash.Hit(crash.PointMidFrame)
	if _, err := f.Write(data[half:]); err != nil {
		f.Close()
		return err
	}
	crash.Hit(crash.PointPreSync)
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	if err := syncDir(w.dir); err != nil {
		return err
	}
	crash.Hit(crash.PointManifestSwap)
	mpath := filepath.Join(w.dir, ManifestName)
	mtmp := mpath + ".tmp"
	mf, err := os.OpenFile(mtmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := mf.Write(EncodeManifest(name, crc32.ChecksumIEEE(data))); err != nil {
		mf.Close()
		return err
	}
	if err := mf.Sync(); err != nil {
		mf.Close()
		return err
	}
	if err := mf.Close(); err != nil {
		return err
	}
	if err := os.Rename(mtmp, mpath); err != nil {
		return err
	}
	if err := syncDir(w.dir); err != nil {
		return err
	}
	if w.lastFile != "" && w.lastFile != name {
		os.Remove(filepath.Join(w.dir, w.lastFile)) // best-effort cleanup
	}
	w.lastFile = name
	return nil
}

// syncDir fsyncs a directory, making a just-renamed entry durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// LoadCheckpoint loads the published checkpoint from dir: the manifest
// names the file, the manifest's CRC must match the file's contents, and
// the file must decode. ErrNoCheckpoint means no checkpoint was ever
// published; any other error means the directory is corrupt.
func LoadCheckpoint(dir string) (*Checkpoint, error) {
	mb, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, ErrNoCheckpoint
	}
	if err != nil {
		return nil, err
	}
	m, err := decodeManifest(mb)
	if err != nil {
		return nil, err
	}
	data, err := os.ReadFile(filepath.Join(dir, m.file))
	if err != nil {
		return nil, err
	}
	if crc32.ChecksumIEEE(data) != m.sum {
		return nil, fmt.Errorf("replay: checkpoint %s does not match manifest checksum", m.file)
	}
	return DecodeCheckpoint(data)
}

// ---- restore ----

// Resumable is the engine surface a checkpoint restore needs;
// *core.Simulator implements it. The sequential engine does not — resume
// is an optimistic-kernel feature (the sequential oracle re-runs from
// scratch instead, which is what makes it an oracle).
type Resumable interface {
	core.Host
	DropBootstrap()
	RestoreLP(id core.LPID, state [4]uint64, draws, sendSeq uint64) error
	ScheduleRestored(dst core.LPID, t core.Time, src core.LPID, seq uint64, data any)
}

// Checkpointable is the engine surface periodic checkpointing needs;
// *core.Simulator implements it.
type Checkpointable interface {
	SetCheckpoint(sink core.CheckpointSink, everyRounds int)
}

// RestoreCheckpoint reinstates cp into a freshly built, not-yet-run
// simulator: model bootstrap is dropped, every LP's state (decoded in
// place through the checkpoint's StateCodec), RNG stream and send sequence
// are reinstated, and the frontier is scheduled with original event
// identities so the kernel's total order continues exactly where the
// checkpointed run left it. rec, when non-nil, is the new run's empty
// commit recorder, seeded with the checkpoint's trace digests (an error if
// the checkpoint carries none).
func RestoreCheckpoint(cp *Checkpoint, sim Resumable, rec *trace.Recorder) error {
	if sim.NumLPs() != cp.NumLPs {
		return fmt.Errorf("replay: checkpoint has %d LPs, model has %d", cp.NumLPs, sim.NumLPs())
	}
	sc, err := StateCodecFor(cp.StateCodec)
	if err != nil {
		return err
	}
	codec, err := CodecFor(cp.Codec)
	if err != nil {
		return err
	}
	sim.DropBootstrap()
	for i, clp := range cp.LPs {
		lp := sim.LP(core.LPID(i))
		if err := sc.DecodeState(clp.State, lp.State); err != nil {
			return fmt.Errorf("replay: decoding LP %d state: %w", i, err)
		}
		if err := sim.RestoreLP(core.LPID(i), clp.RNG, clp.Draws, clp.SendSeq); err != nil {
			return fmt.Errorf("replay: restoring LP %d: %w", i, err)
		}
	}
	for i, ev := range cp.Frontier {
		data, err := codec.Decode(ev.Data)
		if err != nil {
			return fmt.Errorf("replay: decoding frontier event %d: %w", i, err)
		}
		sim.ScheduleRestored(ev.Dst, ev.T, ev.Src, ev.Seq, data)
	}
	if rec != nil {
		if !cp.HasTrace {
			return errors.New("replay: checkpoint carries no trace digests to seed the recorder")
		}
		rec.SeedPrefix(cp.TraceLen, cp.TraceHash, cp.LPHashes)
	}
	return nil
}

// ---- drivers ----

// ReplayCheckpointed is Replay under the optimistic engine with periodic
// checkpointing armed: every `every` GVT rounds a checkpoint is published
// into dir, and the run is still held to the recording's fingerprints (the
// checkpoint rendezvous is scheduling-only, so arming it must not change
// committed results). This is the victim the crash harness SIGKILLs.
func ReplayCheckpointed(r Runner, lg *Log, dir, stateCodecName string, every int) ([]string, error) {
	out, err := runWith(r, lg.Spec, lg.Inject, EngineOptimistic, func(inst *Instance) error {
		ck, ok := inst.Host.(Checkpointable)
		if !ok {
			return fmt.Errorf("replay: %T does not support checkpointing", inst.Host)
		}
		w, err := NewCheckpointWriter(dir, stateCodecName, lg.Spec.Codec, inst.Trace)
		if err != nil {
			return err
		}
		ck.SetCheckpoint(w, every)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return compareToLog(lg, out), nil
}

// ResumeVerify loads dir's published checkpoint, resumes the run it came
// from on a fresh build of lg's Spec, and holds the completed run to the
// recording: the final fingerprint must match bit-for-bit (committed count
// composed across the cut, trace hash folded from the seeded prefix), and
// every recorded GVT-round horizon at or beyond the checkpoint's GVT must
// reproduce its trace prefix hash. Horizons below the cut are skipped —
// the resumed recorder cannot split the prefix it never observed.
func ResumeVerify(r Runner, lg *Log, dir string) ([]string, error) {
	cp, err := LoadCheckpoint(dir)
	if err != nil {
		return nil, err
	}
	if cp.Codec != lg.Spec.Codec {
		return nil, fmt.Errorf("replay: checkpoint codec %q does not match log codec %q", cp.Codec, lg.Spec.Codec)
	}
	if !cp.HasTrace {
		return nil, errors.New("replay: checkpoint carries no trace digests; cannot verify against a recording")
	}
	inst, err := r.Build(lg.Spec, EngineOptimistic, false)
	if err != nil {
		return nil, err
	}
	if inst.Trace == nil {
		return nil, errors.New("replay: runner instance has no trace recorder")
	}
	rsm, ok := inst.Host.(Resumable)
	if !ok {
		return nil, fmt.Errorf("replay: %T does not support resume", inst.Host)
	}
	if err := RestoreCheckpoint(cp, rsm, inst.Trace); err != nil {
		return nil, err
	}
	stats, err := inst.Run()
	if err != nil {
		return nil, err
	}
	fp := Fingerprint{
		Committed: cp.Committed + stats.Committed,
		TraceLen:  inst.Trace.Len(),
		TraceHash: inst.Trace.Hash(),
		StateHash: trace.StateHash(inst.Host),
	}
	out := &outcome{Trace: inst.Trace, Final: fp}
	flg := *lg
	flg.Rounds = nil
	for _, rd := range lg.Rounds {
		if rd.GVT >= cp.GVT {
			flg.Rounds = append(flg.Rounds, rd)
		}
	}
	return compareToLog(&flg, out), nil
}
