package replay

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"os"

	"repro/internal/core"
)

// Binary log format (documented in docs/REPLAY.md). A log is a sequence of
// CRC-framed sections:
//
//	frame := type:1 | payloadLen:uvarint | payload | crc32(payload):4 LE
//
// The header frame must come first and the end frame last; inject, pe,
// rounds and final frames appear between them (inject/rounds/final at most
// once, one pe frame per PE). Integers are uvarints, signed deltas are
// zigzag varints, hashes and float bit patterns are fixed 8-byte LE.
// Decode is total: malformed input of any kind — truncation, bad CRC, bad
// magic, absurd counts — yields an error, never a panic or an outsized
// allocation (FuzzReplayCodec holds it to that).

const (
	logMagic   = "GTWR"
	logVersion = 1

	frameHeader byte = 1
	frameInject byte = 2
	framePE     byte = 3
	frameRounds byte = 4
	frameFinal  byte = 5
	frameEnd    byte = 6

	// maxName bounds decoded string fields; registry names are short.
	maxName = 256
)

var errTruncated = errors.New("replay: truncated log")

// ---- encoding ----

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func appendFrame(dst []byte, typ byte, payload []byte) []byte {
	dst = append(dst, typ)
	dst = binary.AppendUvarint(dst, uint64(len(payload)))
	dst = append(dst, payload...)
	return binary.LittleEndian.AppendUint32(dst, crc32.ChecksumIEEE(payload))
}

func appendHeader(dst []byte, s Spec) []byte {
	p := []byte(logMagic)
	p = binary.AppendUvarint(p, logVersion)
	p = appendString(p, s.Model)
	p = appendString(p, s.Codec)
	p = appendString(p, s.Queue)
	p = appendString(p, s.Mutation)
	p = binary.AppendUvarint(p, uint64(s.PEs))
	p = binary.AppendUvarint(p, uint64(s.KPs))
	p = binary.AppendUvarint(p, uint64(s.BatchSize))
	p = binary.AppendUvarint(p, uint64(s.GVTInterval))
	p = binary.AppendUvarint(p, s.Seed)
	p = binary.LittleEndian.AppendUint64(p, math.Float64bits(float64(s.EndTime)))
	if f := s.Faults; f != nil {
		p = append(p, 1)
		p = binary.AppendUvarint(p, f.Seed)
		p = binary.AppendUvarint(p, uint64(f.RollbackEvery))
		p = binary.AppendUvarint(p, uint64(f.RollbackDepth))
		p = binary.AppendUvarint(p, uint64(f.GVTDelay))
		p = binary.AppendUvarint(p, uint64(f.MailBurst))
		p = binary.AppendUvarint(p, uint64(f.ThrottlePEs))
		p = binary.AppendUvarint(p, uint64(f.ThrottleBatch))
		if f.ShuffleMail {
			p = append(p, 1)
		} else {
			p = append(p, 0)
		}
	} else {
		p = append(p, 0)
	}
	return appendFrame(dst, frameHeader, p)
}

func appendInject(dst []byte, inj []Injection) []byte {
	p := binary.AppendUvarint(nil, uint64(len(inj)))
	var prevDst int64
	var prevBits uint64
	for _, in := range inj {
		p = binary.AppendVarint(p, int64(in.Dst)-prevDst)
		prevDst = int64(in.Dst)
		bits := math.Float64bits(float64(in.T))
		p = binary.AppendVarint(p, int64(bits-prevBits))
		prevBits = bits
		p = binary.AppendUvarint(p, uint64(len(in.Data)))
		p = append(p, in.Data...)
	}
	return appendFrame(dst, frameInject, p)
}

func appendPE(dst []byte, pl PELog) []byte {
	p := binary.AppendUvarint(nil, uint64(pl.PE))
	p = binary.AppendUvarint(p, uint64(len(pl.Mail)))
	for _, mb := range pl.Mail {
		p = binary.AppendUvarint(p, uint64(mb.Src))
		p = binary.AppendUvarint(p, uint64(mb.N))
	}
	p = binary.AppendUvarint(p, uint64(len(pl.Rollbacks)))
	for _, rb := range pl.Rollbacks {
		p = binary.AppendUvarint(p, uint64(rb.KP))
		p = binary.AppendUvarint(p, uint64(rb.Events))
		var flags byte
		if rb.Secondary {
			flags |= 1
		}
		if rb.Forced {
			flags |= 2
		}
		p = append(p, flags)
	}
	return appendFrame(dst, framePE, p)
}

func appendRounds(dst []byte, rounds []Round) []byte {
	p := binary.AppendUvarint(nil, uint64(len(rounds)))
	var prevBits uint64
	for _, rd := range rounds {
		bits := math.Float64bits(float64(rd.GVT))
		p = binary.AppendVarint(p, int64(bits-prevBits))
		prevBits = bits
		p = binary.LittleEndian.AppendUint64(p, rd.TraceHash)
	}
	return appendFrame(dst, frameRounds, p)
}

func appendFinal(dst []byte, fp Fingerprint) []byte {
	p := binary.AppendUvarint(nil, uint64(fp.Committed))
	p = binary.AppendUvarint(p, uint64(fp.TraceLen))
	p = binary.LittleEndian.AppendUint64(p, fp.TraceHash)
	p = binary.LittleEndian.AppendUint64(p, fp.StateHash)
	return appendFrame(dst, frameFinal, p)
}

// Encode serialises a log into the framed binary format.
func Encode(lg *Log) []byte {
	dst := appendHeader(nil, lg.Spec)
	dst = appendInject(dst, lg.Inject)
	for _, pl := range lg.PEs {
		dst = appendPE(dst, pl)
	}
	dst = appendRounds(dst, lg.Rounds)
	dst = appendFinal(dst, lg.Final)
	return appendFrame(dst, frameEnd, nil)
}

// WriteFile encodes lg to path.
func WriteFile(path string, lg *Log) error {
	return os.WriteFile(path, Encode(lg), 0o644)
}

// ---- decoding ----

// cursor is a bounds-checked reader over one frame payload.
type cursor struct {
	buf []byte
	off int
}

func (c *cursor) remaining() int { return len(c.buf) - c.off }

func (c *cursor) uvarint() (uint64, error) {
	v, n := binary.Uvarint(c.buf[c.off:])
	if n <= 0 {
		return 0, errTruncated
	}
	c.off += n
	return v, nil
}

func (c *cursor) varint() (int64, error) {
	v, n := binary.Varint(c.buf[c.off:])
	if n <= 0 {
		return 0, errTruncated
	}
	c.off += n
	return v, nil
}

func (c *cursor) u64() (uint64, error) {
	if c.remaining() < 8 {
		return 0, errTruncated
	}
	v := binary.LittleEndian.Uint64(c.buf[c.off:])
	c.off += 8
	return v, nil
}

func (c *cursor) byte() (byte, error) {
	if c.remaining() < 1 {
		return 0, errTruncated
	}
	b := c.buf[c.off]
	c.off++
	return b, nil
}

func (c *cursor) bytes(n uint64) ([]byte, error) {
	if n > uint64(c.remaining()) {
		return nil, errTruncated
	}
	out := c.buf[c.off : c.off+int(n)]
	c.off += int(n)
	return out, nil
}

func (c *cursor) str() (string, error) {
	n, err := c.uvarint()
	if err != nil {
		return "", err
	}
	if n > maxName {
		return "", fmt.Errorf("replay: string field of %d bytes exceeds limit", n)
	}
	b, err := c.bytes(n)
	return string(b), err
}

// count reads an element count and rejects counts that cannot fit in the
// remaining payload at minBytes per element, so a corrupt count can never
// drive an outsized allocation.
func (c *cursor) count(minBytes int) (int, error) {
	v, err := c.uvarint()
	if err != nil {
		return 0, err
	}
	if v > uint64(c.remaining()/minBytes) {
		return 0, fmt.Errorf("replay: count %d exceeds payload", v)
	}
	return int(v), nil
}

// intField reads a uvarint that must fit in an int.
func (c *cursor) intField() (int, error) {
	v, err := c.uvarint()
	if err != nil {
		return 0, err
	}
	if v > math.MaxInt32 {
		return 0, fmt.Errorf("replay: integer field %d out of range", v)
	}
	return int(v), nil
}

func timeFromBits(bits uint64) (core.Time, error) {
	f := math.Float64frombits(bits)
	if math.IsNaN(f) {
		return 0, errors.New("replay: NaN time in log")
	}
	return core.Time(f), nil
}

func decodeHeader(p []byte) (Spec, error) {
	c := &cursor{buf: p}
	var s Spec
	m, err := c.bytes(uint64(len(logMagic)))
	if err != nil {
		return s, err
	}
	if string(m) != logMagic {
		return s, errors.New("replay: bad magic (not a .replay log)")
	}
	ver, err := c.uvarint()
	if err != nil {
		return s, err
	}
	if ver != logVersion {
		return s, fmt.Errorf("replay: unsupported log version %d (want %d)", ver, logVersion)
	}
	if s.Model, err = c.str(); err != nil {
		return s, err
	}
	if s.Codec, err = c.str(); err != nil {
		return s, err
	}
	if s.Queue, err = c.str(); err != nil {
		return s, err
	}
	if s.Mutation, err = c.str(); err != nil {
		return s, err
	}
	if s.PEs, err = c.intField(); err != nil {
		return s, err
	}
	if s.KPs, err = c.intField(); err != nil {
		return s, err
	}
	if s.BatchSize, err = c.intField(); err != nil {
		return s, err
	}
	if s.GVTInterval, err = c.intField(); err != nil {
		return s, err
	}
	if s.Seed, err = c.uvarint(); err != nil {
		return s, err
	}
	bits, err := c.u64()
	if err != nil {
		return s, err
	}
	if s.EndTime, err = timeFromBits(bits); err != nil {
		return s, err
	}
	present, err := c.byte()
	if err != nil {
		return s, err
	}
	switch present {
	case 0:
	case 1:
		f := &core.Faults{}
		if f.Seed, err = c.uvarint(); err != nil {
			return s, err
		}
		if f.RollbackEvery, err = c.intField(); err != nil {
			return s, err
		}
		if f.RollbackDepth, err = c.intField(); err != nil {
			return s, err
		}
		if f.GVTDelay, err = c.intField(); err != nil {
			return s, err
		}
		if f.MailBurst, err = c.intField(); err != nil {
			return s, err
		}
		if f.ThrottlePEs, err = c.intField(); err != nil {
			return s, err
		}
		if f.ThrottleBatch, err = c.intField(); err != nil {
			return s, err
		}
		sm, err := c.byte()
		if err != nil {
			return s, err
		}
		if sm > 1 {
			return s, fmt.Errorf("replay: bad ShuffleMail flag %d", sm)
		}
		f.ShuffleMail = sm == 1
		s.Faults = f
	default:
		return s, fmt.Errorf("replay: bad faults-present flag %d", present)
	}
	if c.remaining() != 0 {
		return s, errors.New("replay: trailing bytes in header frame")
	}
	return s, nil
}

func decodeInject(p []byte) ([]Injection, error) {
	c := &cursor{buf: p}
	n, err := c.count(3) // dst delta + time delta + payload len ≥ 3 bytes
	if err != nil {
		return nil, err
	}
	out := make([]Injection, 0, n)
	var prevDst int64
	var prevBits uint64
	for i := 0; i < n; i++ {
		var in Injection
		d, err := c.varint()
		if err != nil {
			return nil, err
		}
		prevDst += d
		if prevDst < 0 || prevDst > math.MaxInt32 {
			return nil, fmt.Errorf("replay: injection %d: LP %d out of range", i, prevDst)
		}
		in.Dst = core.LPID(prevDst)
		db, err := c.varint()
		if err != nil {
			return nil, err
		}
		prevBits += uint64(db)
		if in.T, err = timeFromBits(prevBits); err != nil {
			return nil, err
		}
		if in.T < 0 {
			return nil, fmt.Errorf("replay: injection %d has negative time", i)
		}
		sz, err := c.uvarint()
		if err != nil {
			return nil, err
		}
		b, err := c.bytes(sz)
		if err != nil {
			return nil, err
		}
		if len(b) > 0 {
			in.Data = append([]byte(nil), b...)
		}
		out = append(out, in)
	}
	if c.remaining() != 0 {
		return nil, errors.New("replay: trailing bytes in inject frame")
	}
	return out, nil
}

func decodePE(p []byte) (PELog, error) {
	c := &cursor{buf: p}
	var pl PELog
	var err error
	if pl.PE, err = c.intField(); err != nil {
		return pl, err
	}
	nm, err := c.count(2)
	if err != nil {
		return pl, err
	}
	if nm > 0 {
		pl.Mail = make([]MailBatch, 0, nm)
	}
	for i := 0; i < nm; i++ {
		var mb MailBatch
		if mb.Src, err = c.intField(); err != nil {
			return pl, err
		}
		if mb.N, err = c.intField(); err != nil {
			return pl, err
		}
		pl.Mail = append(pl.Mail, mb)
	}
	nr, err := c.count(3)
	if err != nil {
		return pl, err
	}
	if nr > 0 {
		pl.Rollbacks = make([]Rollback, 0, nr)
	}
	for i := 0; i < nr; i++ {
		var rb Rollback
		if rb.KP, err = c.intField(); err != nil {
			return pl, err
		}
		if rb.Events, err = c.intField(); err != nil {
			return pl, err
		}
		flags, err := c.byte()
		if err != nil {
			return pl, err
		}
		if flags > 3 {
			return pl, fmt.Errorf("replay: bad rollback flags %#x", flags)
		}
		rb.Secondary = flags&1 != 0
		rb.Forced = flags&2 != 0
		pl.Rollbacks = append(pl.Rollbacks, rb)
	}
	if c.remaining() != 0 {
		return pl, errors.New("replay: trailing bytes in pe frame")
	}
	return pl, nil
}

func decodeRounds(p []byte) ([]Round, error) {
	c := &cursor{buf: p}
	n, err := c.count(9) // gvt delta + fixed8 hash
	if err != nil {
		return nil, err
	}
	out := make([]Round, 0, n)
	var prevBits uint64
	for i := 0; i < n; i++ {
		var rd Round
		db, err := c.varint()
		if err != nil {
			return nil, err
		}
		prevBits += uint64(db)
		if rd.GVT, err = timeFromBits(prevBits); err != nil {
			return nil, err
		}
		if rd.TraceHash, err = c.u64(); err != nil {
			return nil, err
		}
		out = append(out, rd)
	}
	if c.remaining() != 0 {
		return nil, errors.New("replay: trailing bytes in rounds frame")
	}
	return out, nil
}

func decodeFinal(p []byte) (Fingerprint, error) {
	c := &cursor{buf: p}
	var fp Fingerprint
	committed, err := c.uvarint()
	if err != nil {
		return fp, err
	}
	if committed > math.MaxInt64 {
		return fp, errors.New("replay: committed count out of range")
	}
	fp.Committed = int64(committed)
	if fp.TraceLen, err = c.intField(); err != nil {
		return fp, err
	}
	if fp.TraceHash, err = c.u64(); err != nil {
		return fp, err
	}
	if fp.StateHash, err = c.u64(); err != nil {
		return fp, err
	}
	if c.remaining() != 0 {
		return fp, errors.New("replay: trailing bytes in final frame")
	}
	return fp, nil
}

// Decode parses a framed binary log. It never panics: any malformed input
// returns an error.
func Decode(buf []byte) (*Log, error) {
	c := &cursor{buf: buf}
	frame := func() (byte, []byte, error) {
		typ, err := c.byte()
		if err != nil {
			return 0, nil, err
		}
		sz, err := c.uvarint()
		if err != nil {
			return 0, nil, err
		}
		if sz > uint64(c.remaining()) {
			return 0, nil, errTruncated
		}
		payload, err := c.bytes(sz)
		if err != nil {
			return 0, nil, err
		}
		want, err := c.bytes(4)
		if err != nil {
			return 0, nil, err
		}
		if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(want) {
			return 0, nil, fmt.Errorf("replay: CRC mismatch in frame type %d", typ)
		}
		return typ, payload, nil
	}

	typ, payload, err := frame()
	if err != nil {
		return nil, err
	}
	if typ != frameHeader {
		return nil, errors.New("replay: log does not start with a header frame")
	}
	lg := &Log{}
	if lg.Spec, err = decodeHeader(payload); err != nil {
		return nil, err
	}
	var sawInject, sawRounds, sawFinal, sawEnd bool
	for !sawEnd {
		typ, payload, err := frame()
		if err != nil {
			return nil, err
		}
		switch typ {
		case frameInject:
			if sawInject {
				return nil, errors.New("replay: duplicate inject frame")
			}
			sawInject = true
			if lg.Inject, err = decodeInject(payload); err != nil {
				return nil, err
			}
		case framePE:
			pl, err := decodePE(payload)
			if err != nil {
				return nil, err
			}
			if len(lg.PEs) > 0 && pl.PE <= lg.PEs[len(lg.PEs)-1].PE {
				return nil, errors.New("replay: pe frames out of order")
			}
			lg.PEs = append(lg.PEs, pl)
		case frameRounds:
			if sawRounds {
				return nil, errors.New("replay: duplicate rounds frame")
			}
			sawRounds = true
			if lg.Rounds, err = decodeRounds(payload); err != nil {
				return nil, err
			}
		case frameFinal:
			if sawFinal {
				return nil, errors.New("replay: duplicate final frame")
			}
			sawFinal = true
			if lg.Final, err = decodeFinal(payload); err != nil {
				return nil, err
			}
		case frameEnd:
			if len(payload) != 0 {
				return nil, errors.New("replay: end frame with payload")
			}
			sawEnd = true
		case frameHeader:
			return nil, errors.New("replay: duplicate header frame")
		default:
			return nil, fmt.Errorf("replay: unknown frame type %d", typ)
		}
	}
	if !sawFinal {
		return nil, errors.New("replay: log has no final frame")
	}
	if c.remaining() != 0 {
		return nil, errors.New("replay: trailing bytes after end frame")
	}
	return lg, nil
}

// ReadFile reads and decodes a log from path.
func ReadFile(path string) (*Log, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Decode(buf)
}
