package replay

import (
	"fmt"
	"sort"
)

// StateCodec serialises one model's LP state into a checkpoint and back.
// Where Codec handles the event payloads a model schedules, StateCodec
// handles the state object each LP carries between events; a checkpoint
// needs both (frontier payloads go through the Codec, LP states through
// this). DecodeState restores into the live state object in place — the
// kernel hands out LP state by reference, so replacing the object would
// orphan the handler's view of it.
//
// EncodeState and DecodeState must be exact inverses over every field that
// trace.StateHash observes (it renders the whole struct, unexported fields
// included): a decoded state must hash identically to the encoded one, or
// resumed-run fingerprints can never match. Scratch fields that are always
// zero at a GVT commit point (reverse-computation save areas) may be
// omitted. DecodeState gets attacker-grade input (checkpoints come from
// disk) and must return an error, never panic, on malformed bytes.
type StateCodec interface {
	// Name is the registry key recorded in a checkpoint's header.
	Name() string
	// EncodeState appends state's serialization to dst and returns the
	// extended slice.
	EncodeState(dst []byte, state any) ([]byte, error)
	// DecodeState parses one EncodeState output into state, in place. The
	// input is exactly one EncodeState output (framing is the checkpoint's
	// concern).
	DecodeState(src []byte, state any) error
}

// stateCodecs is the global registry. Writes happen only from package init
// functions (models register themselves on import), reads only afterwards,
// so no locking is needed.
var stateCodecs = map[string]StateCodec{}

// RegisterStateCodec adds a state codec to the registry; it panics on a
// duplicate name. Call it from the model package's init so importing the
// model makes its checkpoints restorable.
func RegisterStateCodec(c StateCodec) {
	name := c.Name()
	if _, dup := stateCodecs[name]; dup {
		panic(fmt.Sprintf("replay: state codec %q registered twice", name))
	}
	stateCodecs[name] = c
}

// StateCodecFor looks up a registered state codec by name.
func StateCodecFor(name string) (StateCodec, error) {
	c, ok := stateCodecs[name]
	if !ok {
		return nil, fmt.Errorf("replay: no state codec %q registered (have %v)", name, StateCodecNames())
	}
	return c, nil
}

// StateCodecNames returns the registered state codec names, sorted.
func StateCodecNames() []string {
	names := make([]string, 0, len(stateCodecs))
	for name := range stateCodecs {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
