package replay

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/trace"
)

// Engine selects how a log is re-executed.
type Engine string

// The replayable engines. Verify mode re-runs the optimistic kernel;
// sequential mode is the oracle the differential harness compares against.
const (
	EngineOptimistic Engine = "optimistic"
	EngineSequential Engine = "sequential"
)

// Instance is one built simulation handed to the replay driver by a
// Runner: the host for scheduling and state hashing, the run entry point,
// the commit-time trace recorder the driver fingerprints, and the
// bootstrap/record access points the driver needs.
type Instance struct {
	Host core.Host
	Run  func() (*core.Stats, error)
	// Trace receives every committed event; must be unbounded so the
	// fingerprints cover the whole run.
	Trace  *trace.Recorder
	NumLPs int
	// NumPEs is the engine's processing-element count after any topology
	// re-clamping (1 for sequential).
	NumPEs int
	// EndTime is the resolved virtual-time horizon (models may quantize a
	// requested horizon, e.g. hot-potato's integer steps).
	EndTime core.Time
	// Bootstrap visits the model's own bootstrap injections in schedule
	// order; used once, at record time, to harvest them.
	Bootstrap func(fn func(dst core.LPID, t core.Time, data any))
	// SetRecord attaches a kernel record sink; nil for engines that cannot
	// record (sequential).
	SetRecord func(core.RecordSink)
}

// Runner rebuilds a simulation from a Spec. bootstrap=false builds with
// the model's own bootstrap events dropped, so the driver can schedule a
// recorded injection list in their place; everything else (handlers,
// state, RNG streams) must be identical either way. internal/simcheck
// provides the Runner for the bundled models.
type Runner interface {
	Build(spec Spec, eng Engine, bootstrap bool) (*Instance, error)
}

// Record builds spec's model once to harvest its bootstrap injections,
// then records one optimistic run of those injections and returns the log.
// Using the same injection-driven path as Replay (rather than a special
// record-time path) means record and replay cannot drift apart.
func Record(r Runner, spec Spec) (*Log, error) {
	inst, err := r.Build(spec, EngineOptimistic, true)
	if err != nil {
		return nil, err
	}
	if inst.Bootstrap == nil {
		return nil, errors.New("replay: runner instance exposes no bootstrap events")
	}
	codec, err := CodecFor(spec.Codec)
	if err != nil {
		return nil, err
	}
	var inj []Injection
	var encErr error
	inst.Bootstrap(func(dst core.LPID, t core.Time, data any) {
		if encErr != nil {
			return
		}
		b, err := codec.Encode(nil, data)
		if err != nil {
			encErr = fmt.Errorf("replay: encoding bootstrap payload for LP %d: %w", dst, err)
			return
		}
		inj = append(inj, Injection{T: t, Dst: dst, Data: b})
	})
	if encErr != nil {
		return nil, encErr
	}
	spec.EndTime = inst.EndTime
	out, err := run(r, spec, inj, EngineOptimistic)
	if err != nil {
		return nil, err
	}
	if out.Recorded == nil {
		return nil, errors.New("replay: runner instance does not support recording")
	}
	return out.Recorded, nil
}

// Replay re-executes log's injections under eng and compares fingerprints
// against the recording. It returns the mismatches (empty means the run
// reproduced the recording exactly); err covers runs that could not be
// built or crashed.
func Replay(r Runner, lg *Log, eng Engine) ([]string, error) {
	out, err := run(r, lg.Spec, lg.Inject, eng)
	if err != nil {
		return nil, err
	}
	return compareToLog(lg, out), nil
}

// outcome is one re-executed run: its trace, final fingerprint, and — for
// recording-capable engines — a fresh Log of the run itself.
type outcome struct {
	Trace    *trace.Recorder
	Final    Fingerprint
	Recorded *Log
}

// run builds spec without model bootstrap, schedules the injections, runs,
// and fingerprints the result.
func run(r Runner, spec Spec, inj []Injection, eng Engine) (*outcome, error) {
	return runWith(r, spec, inj, eng, nil)
}

// runWith is run with a pre-run hook: setup, when non-nil, sees the built
// instance after injections are scheduled and the record sink is attached,
// immediately before Run — the seam the checkpointing driver uses to arm
// its writer.
func runWith(r Runner, spec Spec, inj []Injection, eng Engine, setup func(*Instance) error) (*outcome, error) {
	inst, err := r.Build(spec, eng, false)
	if err != nil {
		return nil, err
	}
	if inst.Trace == nil {
		return nil, errors.New("replay: runner instance has no trace recorder")
	}
	if inst.EndTime > 0 {
		// Keep the spec (and any log finalized from this run) carrying the
		// model's resolved horizon, not the requested one.
		spec.EndTime = inst.EndTime
	}
	codec, err := CodecFor(spec.Codec)
	if err != nil {
		return nil, err
	}
	for i, in := range inj {
		if in.Dst < 0 || int(in.Dst) >= inst.NumLPs {
			return nil, fmt.Errorf("replay: injection %d targets LP %d, model has %d", i, in.Dst, inst.NumLPs)
		}
		if !(in.T >= 0) {
			return nil, fmt.Errorf("replay: injection %d has invalid time %v", i, in.T)
		}
		data, err := codec.Decode(in.Data)
		if err != nil {
			return nil, fmt.Errorf("replay: decoding injection %d: %w", i, err)
		}
		inst.Host.Schedule(in.Dst, in.T, data)
	}
	var rec *Recorder
	if eng == EngineOptimistic && inst.SetRecord != nil {
		rec = NewRecorder(inst.NumPEs)
		inst.SetRecord(rec)
	}
	if setup != nil {
		if err := setup(inst); err != nil {
			return nil, err
		}
	}
	stats, err := inst.Run()
	if err != nil {
		return nil, err
	}
	fp := Fingerprint{
		Committed: stats.Committed,
		TraceLen:  inst.Trace.Len(),
		TraceHash: inst.Trace.Hash(),
		StateHash: trace.StateHash(inst.Host),
	}
	out := &outcome{Trace: inst.Trace, Final: fp}
	if rec != nil {
		out.Recorded = rec.finalize(spec, inj, inst.Trace, fp)
	}
	return out, nil
}

// compareFingerprints returns the fields where got differs from ref.
func compareFingerprints(ref, got Fingerprint) []string {
	var diffs []string
	if ref.Committed != got.Committed {
		diffs = append(diffs, fmt.Sprintf("committed events: recorded=%d replay=%d", ref.Committed, got.Committed))
	}
	if ref.TraceLen != got.TraceLen {
		diffs = append(diffs, fmt.Sprintf("trace length: recorded=%d replay=%d", ref.TraceLen, got.TraceLen))
	}
	if ref.TraceHash != got.TraceHash {
		diffs = append(diffs, fmt.Sprintf("trace hash: recorded=%016x replay=%016x", ref.TraceHash, got.TraceHash))
	}
	if ref.StateHash != got.StateHash {
		diffs = append(diffs, fmt.Sprintf("final state hash: recorded=%016x replay=%016x", ref.StateHash, got.StateHash))
	}
	return diffs
}

// compareToLog checks a replay outcome against a recording: the final
// fingerprint, plus the recorded per-GVT-round horizons evaluated as
// prefix hashes of the replay's own committed trace. The horizons transfer
// between runs (and even engines) because a prefix hash depends only on
// the committed history and the horizon value, not on where this run's
// rounds happened to land.
func compareToLog(lg *Log, out *outcome) []string {
	diffs := compareFingerprints(lg.Final, out.Final)
	for i := 1; i < len(lg.Rounds); i++ {
		if lg.Rounds[i].GVT < lg.Rounds[i-1].GVT {
			return append(diffs, "recorded GVT sequence is not nondecreasing — corrupt log?")
		}
	}
	if len(lg.Rounds) == 0 {
		return diffs
	}
	horizons := make([]core.Time, len(lg.Rounds))
	for i, rd := range lg.Rounds {
		horizons[i] = rd.GVT
	}
	fps := out.Trace.PrefixHashes(horizons)
	bad := 0
	for i, rd := range lg.Rounds {
		if fps[i] != rd.TraceHash {
			if bad < 4 {
				diffs = append(diffs, fmt.Sprintf(
					"round %d (gvt=%v): trace prefix hash recorded=%016x replay=%016x",
					i, rd.GVT, rd.TraceHash, fps[i]))
			}
			bad++
		}
	}
	if bad > 4 {
		diffs = append(diffs, fmt.Sprintf("... %d of %d rounds diverge", bad, len(lg.Rounds)))
	}
	return diffs
}
