package replay

import (
	"fmt"
	"io"
)

// dumpCap is how many entries each -dump section prints without verbose.
const dumpCap = 16

// Dump writes a human-readable timeline of a log: the spec, the recorded
// injections (payloads decoded through the spec's codec when registered),
// each PE's mail and rollback stream, the GVT rounds, and the final
// fingerprint. verbose lifts the per-section entry cap.
func Dump(w io.Writer, lg *Log, verbose bool) error {
	p := func(format string, args ...any) error {
		_, err := fmt.Fprintf(w, format, args...)
		return err
	}
	limit := dumpCap
	if verbose {
		limit = int(^uint(0) >> 1)
	}

	s := lg.Spec
	if err := p("replay log v%d: model=%s codec=%s queue=%s pes=%d kps=%d seed=%d end=%v batch=%d gvt-interval=%d\n",
		logVersion, s.Model, s.Codec, s.Queue, s.PEs, s.KPs, s.Seed, s.EndTime, s.BatchSize, s.GVTInterval); err != nil {
		return err
	}
	if s.Mutation != "" {
		if err := p("mutation: %s\n", s.Mutation); err != nil {
			return err
		}
	}
	if s.Faults != nil {
		if err := p("faults: %+v\n", *s.Faults); err != nil {
			return err
		}
	}

	codec, codecErr := CodecFor(s.Codec)
	if err := p("injections: %d\n", len(lg.Inject)); err != nil {
		return err
	}
	for i, in := range lg.Inject {
		if i >= limit {
			if err := p("  ... %d more (use -v)\n", len(lg.Inject)-limit); err != nil {
				return err
			}
			break
		}
		payload := fmt.Sprintf("%d bytes", len(in.Data))
		if codecErr == nil {
			if data, err := codec.Decode(in.Data); err == nil {
				payload = fmt.Sprintf("%+v", data)
			} else {
				payload = fmt.Sprintf("undecodable (%v)", err)
			}
		}
		if err := p("  t=%-12v lp=%-4d %s\n", in.T, in.Dst, payload); err != nil {
			return err
		}
	}

	for _, pl := range lg.PEs {
		msgs := 0
		for _, mb := range pl.Mail {
			msgs += mb.N
		}
		var prim, sec, forced int
		for _, rb := range pl.Rollbacks {
			switch {
			case rb.Forced:
				forced++
			case rb.Secondary:
				sec++
			default:
				prim++
			}
		}
		if err := p("PE %d: %d mail batches (%d messages), %d rollbacks (%d primary, %d secondary, %d forced)\n",
			pl.PE, len(pl.Mail), msgs, len(pl.Rollbacks), prim, sec, forced); err != nil {
			return err
		}
		if verbose {
			for _, mb := range pl.Mail {
				if err := p("  mail from PE %d: %d messages\n", mb.Src, mb.N); err != nil {
					return err
				}
			}
			for _, rb := range pl.Rollbacks {
				kind := "primary"
				if rb.Forced {
					kind = "forced"
				} else if rb.Secondary {
					kind = "secondary"
				}
				if err := p("  rollback kp=%d events=%d %s\n", rb.KP, rb.Events, kind); err != nil {
					return err
				}
			}
		}
	}

	if err := p("rounds: %d\n", len(lg.Rounds)); err != nil {
		return err
	}
	for i, rd := range lg.Rounds {
		if i >= limit {
			if err := p("  ... %d more (use -v)\n", len(lg.Rounds)-limit); err != nil {
				return err
			}
			break
		}
		if err := p("  round %-3d gvt=%-12v prefix=%016x\n", i, rd.GVT, rd.TraceHash); err != nil {
			return err
		}
	}

	return p("final: committed=%d trace-len=%d trace=%016x state=%016x\n",
		lg.Final.Committed, lg.Final.TraceLen, lg.Final.TraceHash, lg.Final.StateHash)
}
