// Package replay is the kernel's deterministic record/replay subsystem.
//
// A recording captures everything needed to re-execute a run and check it
// reproduced bit-for-bit: the run's Spec (model, engine shape, seed, fault
// plan), every injected bootstrap event with its payload serialized
// through a model Codec, the cross-PE mail arrival order and rollback
// points each PE observed (diagnostic context for -dump), and one trace
// fingerprint per GVT round. The log is a compact varint-delta encoded,
// CRC-framed binary format documented in docs/REPLAY.md.
//
// Replaying re-runs the recorded injections from a fresh build of the same
// Spec — under the optimistic engine to verify determinism, or under the
// sequential engine as an oracle — and compares fingerprints. Because GVT
// round boundaries are a wall-clock artifact, per-round fingerprints are
// *prefix* hashes of the committed trace below the round's GVT estimate
// (see trace.Recorder.PrefixHashes): a pure function of the committed
// history and the recorded horizon, reproducible across runs even though
// round placement is not.
//
// Shrink delta-debugs a failing log — one whose optimistic run diverges
// from a clean sequential run of the same injections, e.g. a simcheck
// divergence or a seeded mutation — down to a minimal failing artifact by
// shortening the virtual-time horizon and bisecting injection subsets.
package replay

import (
	"repro/internal/core"
)

// Spec identifies a reproducible run: which model to build, under what
// engine shape, and from what seed. It is everything a Runner needs to
// rebuild the simulation that produced a log.
type Spec struct {
	// Model is the Runner's model name (e.g. "hotpotato").
	Model string
	// Codec names the registered payload codec for the model's messages.
	Codec string
	// Queue is the pending-queue kind (any registered eventq kind:
	// "heap", "ladder", or "splay").
	Queue string
	// Mutation optionally names a seeded bug the Runner arms on
	// non-sequential builds (simcheck's Mutation); recorded so a shrunk
	// artifact of a mutation-induced failure stays self-describing.
	Mutation string
	// PEs and KPs shape the optimistic engine.
	PEs, KPs int
	// BatchSize and GVTInterval are the scheduling knobs the recording ran
	// under. Informational: Runners with fixed harness knobs may ignore
	// them (committed results do not depend on scheduling granularity —
	// that is the determinism guarantee being verified).
	BatchSize, GVTInterval int
	// Seed selects the random universe.
	Seed uint64
	// EndTime is the virtual-time horizon. Zero means the model default;
	// recorded logs always carry the resolved value.
	EndTime core.Time
	// Faults is the kernel fault plan armed on optimistic builds, if any.
	Faults *core.Faults
}

// Injection is one recorded bootstrap event: its receive time, target LP
// and codec-encoded payload.
type Injection struct {
	T    core.Time
	Dst  core.LPID
	Data []byte
}

// MailBatch records that one lane drain delivered N messages from sender
// PE Src, in arrival order.
type MailBatch struct {
	Src int
	N   int
}

// Rollback records one rollback: the KP that unwound, how many events it
// reversed, and its cause (straggler when both flags are false).
type Rollback struct {
	KP        int
	Events    int
	Secondary bool
	Forced    bool
}

// PELog is one PE's recorded stream of mail arrivals and rollbacks, in the
// order that PE observed them.
type PELog struct {
	PE        int
	Mail      []MailBatch
	Rollbacks []Rollback
}

// Round is one GVT round: the estimate it computed and the FNV-1a hash of
// the committed-trace prefix strictly below that estimate.
type Round struct {
	GVT       core.Time
	TraceHash uint64
}

// Fingerprint is the whole-run summary replay compares: committed event
// count, trace length, the full-trace hash and the final model-state hash.
// The per-field meanings match simcheck's fingerprint.
type Fingerprint struct {
	Committed int64
	TraceLen  int
	TraceHash uint64
	StateHash uint64
}

// Log is one complete recording.
type Log struct {
	Spec   Spec
	Inject []Injection
	PEs    []PELog
	Rounds []Round
	Final  Fingerprint
}
