package replay

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
)

// sampleLog returns a fully-populated synthetic log touching every wire
// feature: faults, negative deltas (injection times and destinations that
// go down as well as up), empty and non-empty payloads, rollback flags.
func sampleLog() *Log {
	return &Log{
		Spec: Spec{
			Model: "hotpotato", Codec: "hotpotato.v1", Queue: "splay",
			Mutation: "broken-reverse",
			PEs:      4, KPs: 16, BatchSize: 8, GVTInterval: 2,
			Seed:    0xDEADBEEF,
			EndTime: 30,
			Faults: &core.Faults{
				Seed: 7, RollbackEvery: 2, RollbackDepth: 4, GVTDelay: 1,
				MailBurst: 4, ThrottlePEs: 1, ThrottleBatch: 1, ShuffleMail: true,
			},
		},
		Inject: []Injection{
			{T: 0.5, Dst: 9, Data: []byte{1, 2, 3}},
			{T: 0.25, Dst: 3, Data: []byte{0xFF}}, // time and dst both decrease
			{T: 2, Dst: 60, Data: []byte{9, 9, 9, 9}},
		},
		PEs: []PELog{
			{PE: 0, Mail: []MailBatch{{Src: 1, N: 5}, {Src: 3, N: 1}}},
			{PE: 2, Rollbacks: []Rollback{
				{KP: 4, Events: 12},
				{KP: 5, Events: 1, Secondary: true},
				{KP: 4, Events: 3, Forced: true},
			}},
		},
		Rounds: []Round{
			{GVT: 0.125, TraceHash: 0x1111111111111111},
			{GVT: 0.75, TraceHash: 0x2222222222222222},
			{GVT: 29.5, TraceHash: 0x3333333333333333},
		},
		Final: Fingerprint{Committed: 15919, TraceLen: 15919,
			TraceHash: 0x4444444444444444, StateHash: 0x5555555555555555},
	}
}

func TestWireRoundTrip(t *testing.T) {
	lg := sampleLog()
	enc := Encode(lg)
	got, err := Decode(enc)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(lg, got) {
		t.Fatalf("round trip lost data:\nin:  %+v\nout: %+v", lg, got)
	}
	// Canonical form: re-encoding the decoded log reproduces the bytes.
	if !bytes.Equal(enc, Encode(got)) {
		t.Fatal("re-encoding the decoded log produced different bytes")
	}
}

func TestWireRoundTripMinimal(t *testing.T) {
	// The smallest meaningful log: no injections, PEs, rounds or faults.
	lg := &Log{Spec: Spec{Model: "m", Codec: "c", Queue: "heap", EndTime: 1}}
	enc := Encode(lg)
	got, err := Decode(enc)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !bytes.Equal(enc, Encode(got)) {
		t.Fatal("minimal log is not canonical under re-encoding")
	}
}

// TestWireTruncation: every proper prefix of a valid log must fail to
// decode — cleanly, never by panicking.
func TestWireTruncation(t *testing.T) {
	enc := Encode(sampleLog())
	for n := 0; n < len(enc); n++ {
		if _, err := Decode(enc[:n]); err == nil {
			t.Fatalf("prefix of %d/%d bytes decoded successfully", n, len(enc))
		}
	}
}

// TestWireCorruption flips every single byte in turn; the CRC framing (or a
// downstream validity check) must reject every corrupted variant. A
// one-byte flip may legally truncate-or-grow a frame length, so the only
// unacceptable outcomes are a panic or a silently accepted log whose
// re-encoding differs from the corrupted input.
func TestWireCorruption(t *testing.T) {
	enc := Encode(sampleLog())
	mut := make([]byte, len(enc))
	for i := range enc {
		copy(mut, enc)
		mut[i] ^= 0x41
		lg, err := Decode(mut)
		if err != nil {
			continue
		}
		// Accepted: it must then be a canonical log (a flip that produced
		// an equivalent valid encoding would re-encode identically).
		if !bytes.Equal(Encode(lg), mut) {
			t.Fatalf("byte %d flipped: decode accepted a non-canonical log", i)
		}
	}
}

func TestWireBadMagicAndVersion(t *testing.T) {
	lg := sampleLog()
	enc := Encode(lg)
	// The header payload starts after [type][len uvarint]; magic is its
	// first four bytes.
	bad := append([]byte(nil), enc...)
	bad[2] = 'X'
	if _, err := Decode(bad); err == nil || !strings.Contains(err.Error(), "CRC") {
		t.Fatalf("corrupted magic not caught by CRC: %v", err)
	}
	// A wrong version with a VALID CRC must fail on the version check:
	// rebuild the header frame by hand with version 99.
	p := []byte(logMagic)
	p = appendVarintHelper(p, 99)
	frame := appendFrame(nil, frameHeader, p)
	if _, err := Decode(frame); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("unsupported version not rejected: %v", err)
	}
	// Bad magic with a valid CRC likewise.
	p2 := []byte("NOPE")
	p2 = appendVarintHelper(p2, logVersion)
	frame2 := appendFrame(nil, frameHeader, p2)
	if _, err := Decode(frame2); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Fatalf("bad magic not rejected: %v", err)
	}
}

func appendVarintHelper(dst []byte, v uint64) []byte {
	for v >= 0x80 {
		dst = append(dst, byte(v)|0x80)
		v >>= 7
	}
	return append(dst, byte(v))
}

func TestWireRejectsNaNTime(t *testing.T) {
	lg := sampleLog()
	lg.Spec.EndTime = core.Time(math.NaN())
	if _, err := Decode(Encode(lg)); err == nil {
		t.Error("NaN EndTime decoded without error")
	}
	lg = sampleLog()
	lg.Rounds[1].GVT = core.Time(math.NaN())
	if _, err := Decode(Encode(lg)); err == nil {
		t.Error("NaN round GVT decoded without error")
	}
}

func TestWireRejectsStructuralAbuse(t *testing.T) {
	lg := sampleLog()
	enc := Encode(lg)

	// Trailing garbage after the end frame.
	if _, err := Decode(append(append([]byte(nil), enc...), 0)); err == nil {
		t.Error("trailing bytes accepted")
	}
	// A log that is all zeros, or empty.
	if _, err := Decode(nil); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := Decode(make([]byte, 64)); err == nil {
		t.Error("zero input accepted")
	}
	// Absurd count with a tiny payload must not allocate or succeed: a
	// hand-built inject frame claiming 2^40 injections.
	p := appendVarintHelper(nil, 1<<40)
	abuse := appendHeader(nil, lg.Spec)
	abuse = appendFrame(abuse, frameInject, p)
	if _, err := Decode(abuse); err == nil {
		t.Error("absurd injection count accepted")
	}
	// PE frames out of order.
	bad := sampleLog()
	bad.PEs[1].PE = 0 // duplicate of PEs[0]
	if _, err := Decode(Encode(bad)); err == nil {
		t.Error("out-of-order pe frames accepted")
	}
}
