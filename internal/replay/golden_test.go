package replay_test

import (
	"flag"
	"path/filepath"
	"testing"

	"repro/internal/replay"
	"repro/internal/simcheck"
)

var update = flag.Bool("update", false, "regenerate golden .replay fixtures")

// goldenSpecs are the fixture recordings: one small torus hot-potato run
// and one PHOLD run, horizons shortened so the files stay a few KB.
func goldenSpecs() map[string]replay.Spec {
	hot := simcheck.SpecForCell(simcheck.Cell{
		Model: "hotpotato", PEs: 2, KPs: 8, Queue: "heap", Seed: 11,
	})
	hot.EndTime = 6
	phold := simcheck.SpecForCell(simcheck.Cell{
		Model: "phold", PEs: 2, KPs: 8, Queue: "heap", Seed: 11,
	})
	phold.EndTime = 8
	return map[string]replay.Spec{
		"hotpotato_torus.replay": hot,
		"phold.replay":           phold,
	}
}

// TestGoldenFixtures is the cross-session determinism check: fixtures
// recorded by a past build of this tree (regenerate with -update) must
// replay bit-for-bit today — every per-GVT-round prefix hash and the final
// fingerprint, under both the optimistic engine and the sequential oracle.
// A failure here means committed behaviour changed: either a determinism
// regression, or an intentional model/kernel change that needs -update and
// a changelog entry.
func TestGoldenFixtures(t *testing.T) {
	for name, spec := range goldenSpecs() {
		path := filepath.Join("testdata", name)
		if *update {
			lg, err := replay.Record(simcheck.Runner{}, spec)
			if err != nil {
				t.Fatalf("recording %s: %v", name, err)
			}
			if err := replay.WriteFile(path, lg); err != nil {
				t.Fatal(err)
			}
			t.Logf("regenerated %s: %d injections, %d rounds, %d committed",
				path, len(lg.Inject), len(lg.Rounds), lg.Final.Committed)
		}
		lg, err := replay.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: %v (regenerate with -update)", path, err)
		}
		if len(lg.Inject) == 0 || len(lg.Rounds) == 0 {
			t.Fatalf("%s: empty fixture (%d injections, %d rounds)", path, len(lg.Inject), len(lg.Rounds))
		}
		for _, eng := range []replay.Engine{replay.EngineOptimistic, replay.EngineSequential} {
			diffs, err := replay.Replay(simcheck.Runner{}, lg, eng)
			if err != nil {
				t.Fatalf("%s: %s replay: %v", name, eng, err)
			}
			for _, d := range diffs {
				t.Errorf("%s: %s replay diverged from fixture: %s", name, eng, d)
			}
		}
	}
}
