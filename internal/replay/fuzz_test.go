package replay

import (
	"bytes"
	"testing"
)

// FuzzReplayCodec holds Decode to its contract: arbitrary input — including
// truncated, bit-flipped and adversarially structured frames — must either
// decode or return an error. Never a panic, never an outsized allocation
// (the count() guards), and anything accepted must be canonical: re-encoding
// reproduces the accepted bytes, and the re-encoded form decodes to the
// same log again.
func FuzzReplayCodec(f *testing.F) {
	full := Encode(sampleLog())
	f.Add(full)
	f.Add(full[:len(full)/2])
	f.Add(Encode(&Log{Spec: Spec{Model: "m", Codec: "c", Queue: "heap"}}))
	f.Add([]byte(nil))
	f.Add([]byte("GTWR"))
	f.Fuzz(func(t *testing.T, data []byte) {
		lg, err := Decode(data)
		if err != nil {
			return
		}
		enc := Encode(lg)
		if !bytes.Equal(enc, data) {
			t.Fatalf("accepted input is not canonical: %d in, %d re-encoded", len(data), len(enc))
		}
		lg2, err := Decode(enc)
		if err != nil {
			t.Fatalf("re-encoded log fails to decode: %v", err)
		}
		if !bytes.Equal(Encode(lg2), enc) {
			t.Fatal("encode/decode is not a fixpoint")
		}
	})
}
