package replay

import (
	"fmt"
	"sort"
)

// Codec serialises one model's event payloads into the binary log and back.
// Encode and Decode must be inverses up to semantic equality: a decoded
// payload scheduled into a fresh build must drive the model exactly as the
// original did. Scratch fields (reverse-computation save areas) should be
// omitted — bootstrap payloads have not executed yet, so theirs are zero
// anyway. Decode gets attacker-grade input (logs come from disk) and must
// return an error, never panic, on malformed bytes.
type Codec interface {
	// Name is the registry key recorded in a log's Spec.
	Name() string
	// Encode appends data's serialization to dst and returns the extended
	// slice. It must handle every payload the model schedules, including
	// nil.
	Encode(dst []byte, data any) ([]byte, error)
	// Decode parses one payload previously produced by Encode. The input
	// is exactly one Encode output (framing is the log's concern).
	Decode(src []byte) (any, error)
}

// codecs is the global registry. Writes happen only from package init
// functions (models register themselves on import), reads only afterwards,
// so no locking is needed.
var codecs = map[string]Codec{}

// RegisterCodec adds a codec to the registry; it panics on a duplicate
// name. Call it from the model package's init so importing the model makes
// its logs replayable.
func RegisterCodec(c Codec) {
	name := c.Name()
	if _, dup := codecs[name]; dup {
		panic(fmt.Sprintf("replay: codec %q registered twice", name))
	}
	codecs[name] = c
}

// CodecFor looks up a registered codec by name.
func CodecFor(name string) (Codec, error) {
	c, ok := codecs[name]
	if !ok {
		return nil, fmt.Errorf("replay: no codec %q registered (have %v)", name, CodecNames())
	}
	return c, nil
}

// CodecNames returns the registered codec names, sorted.
func CodecNames() []string {
	names := make([]string, 0, len(codecs))
	for name := range codecs {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
