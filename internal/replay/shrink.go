package replay

import (
	"errors"

	"repro/internal/core"
)

// ShrinkResult summarises one shrink: the minimal failing log and how far
// it was reduced.
type ShrinkResult struct {
	// Log is the minimal failing recording — the optimistic run of the
	// reduced injection set, re-recorded during the last failing test, so
	// replaying it under EngineSequential still exhibits the divergence.
	Log *Log
	// Tests is the number of differential tests the shrinker ran (each is
	// one sequential plus one optimistic run).
	Tests int
	// FromInjections/ToInjections and FromEndTime/ToEndTime describe the
	// reduction.
	FromInjections, ToInjections int
	FromEndTime, ToEndTime       core.Time
}

// Shrink delta-debugs a failing log to a minimal failing one. The failure
// predicate is differential, mirroring simcheck's semantics: a candidate
// (injection subset, horizon) fails when the optimistic run — with the
// spec's mutation and fault plan armed — disagrees with a clean sequential
// run of the same injections. The horizon is shortened by bisection first
// (cheapening every later test), then the injection list is reduced with
// ddmin (Zeller's delta debugging over complements), then the horizon is
// bisected once more against the reduced list.
//
// Shrink keeps the recording produced by the last failing optimistic run
// as the artifact, so it remains a true failing recording even when the
// underlying bug is nondeterministic (the artifact's fingerprints are the
// run that actually failed, not a re-run). logf, when non-nil, receives
// progress lines. It returns an error if the input log does not fail —
// there is nothing to shrink — or if no candidate run could be built.
func Shrink(r Runner, lg *Log, logf func(format string, args ...any)) (*ShrinkResult, error) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	res := &ShrinkResult{
		FromInjections: len(lg.Inject),
		FromEndTime:    lg.Spec.EndTime,
	}
	var best *Log
	var lastErr error
	fails := func(inj []Injection, end core.Time) bool {
		res.Tests++
		spec := lg.Spec
		spec.EndTime = end
		seq, err := run(r, spec, inj, EngineSequential)
		if err != nil {
			// A candidate that cannot run is not a smaller repro of a
			// divergence; skip it rather than chase build errors.
			lastErr = err
			return false
		}
		opt, err := run(r, spec, inj, EngineOptimistic)
		if err != nil {
			lastErr = err
			return false
		}
		if len(compareFingerprints(seq.Final, opt.Final)) == 0 {
			return false
		}
		if opt.Recorded != nil {
			best = opt.Recorded
		}
		return true
	}

	cur := lg.Inject
	end := lg.Spec.EndTime
	if !fails(cur, end) {
		if lastErr != nil {
			return nil, lastErr
		}
		return nil, errors.New("replay: log does not fail differentially; nothing to shrink")
	}
	if best != nil {
		// The runner may have resolved (quantized) the requested horizon.
		end = best.Spec.EndTime
	}

	bisectHorizon := func() {
		lo := core.Time(0)
		for i := 0; i < 8; i++ {
			mid := (lo + end) / 2
			if !(mid > lo && mid < end) {
				break
			}
			if fails(cur, mid) {
				end = best.Spec.EndTime
				logf("shrink: horizon -> %v (%d injections)", end, len(cur))
			} else {
				lo = mid
			}
		}
	}

	bisectHorizon()

	// ddmin over the injection list: repeatedly try dropping one of n
	// chunks; on success restart with the reduced list, otherwise refine
	// the granularity until chunks are single injections.
	n := 2
	for len(cur) >= 2 && n >= 2 {
		chunk := (len(cur) + n - 1) / n
		reduced := false
		for start := 0; start < len(cur); start += chunk {
			endIdx := start + chunk
			if endIdx > len(cur) {
				endIdx = len(cur)
			}
			cand := make([]Injection, 0, len(cur)-(endIdx-start))
			cand = append(cand, cur[:start]...)
			cand = append(cand, cur[endIdx:]...)
			if len(cand) == len(cur) {
				continue
			}
			if fails(cand, end) {
				cur = cand
				if n > 2 {
					n--
				}
				reduced = true
				logf("shrink: %d injections remain", len(cur))
				break
			}
		}
		if !reduced {
			if chunk == 1 {
				break
			}
			n *= 2
			if n > len(cur) {
				n = len(cur)
			}
		}
	}

	bisectHorizon()

	if best == nil {
		return nil, errors.New("replay: shrink produced no recording")
	}
	res.Log = best
	res.ToInjections = len(best.Inject)
	res.ToEndTime = best.Spec.EndTime
	return res, nil
}
