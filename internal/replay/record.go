package replay

import (
	"repro/internal/core"
	"repro/internal/trace"
)

// Recorder accumulates one optimistic run's kernel recording. It
// implements core.RecordSink without locks: each per-PE stream is appended
// to only by that PE's goroutine (MailBatch and Rollback run on the
// observing PE), and the round stream only by PE 0 between GVT barriers;
// Run's completion orders every write before finalize's reads.
type Recorder struct {
	pes    []PELog
	rounds []Round
}

// NewRecorder sizes a recorder for an engine with numPEs processing
// elements.
func NewRecorder(numPEs int) *Recorder {
	r := &Recorder{pes: make([]PELog, numPEs)}
	for i := range r.pes {
		r.pes[i].PE = i
	}
	return r
}

// MailBatch implements core.RecordSink.
func (r *Recorder) MailBatch(dst, src, n int) {
	p := &r.pes[dst]
	p.Mail = append(p.Mail, MailBatch{Src: src, N: n})
}

// Rollback implements core.RecordSink.
func (r *Recorder) Rollback(pe, kp, events int, secondary, forced bool) {
	p := &r.pes[pe]
	p.Rollbacks = append(p.Rollbacks, Rollback{KP: kp, Events: events, Secondary: secondary, Forced: forced})
}

// GVTRound implements core.RecordSink. Only the estimate is stored here;
// the round's trace-prefix fingerprint is computed in finalize, once the
// committed trace is complete, because the fingerprint is defined over the
// final trace (see package comment).
func (r *Recorder) GVTRound(round int64, gvt core.Time) {
	r.rounds = append(r.rounds, Round{GVT: gvt})
}

// finalize assembles the finished Log: per-round prefix fingerprints are
// evaluated against the run's committed trace (GVT estimates are
// nondecreasing, which is what PrefixHashes requires).
func (r *Recorder) finalize(spec Spec, inj []Injection, tr *trace.Recorder, final Fingerprint) *Log {
	horizons := make([]core.Time, len(r.rounds))
	for i, rd := range r.rounds {
		horizons[i] = rd.GVT
	}
	fps := tr.PrefixHashes(horizons)
	rounds := make([]Round, len(r.rounds))
	for i := range rounds {
		rounds[i] = Round{GVT: r.rounds[i].GVT, TraceHash: fps[i]}
	}
	return &Log{Spec: spec, Inject: inj, PEs: r.pes, Rounds: rounds, Final: final}
}
