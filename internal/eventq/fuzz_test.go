package eventq

import (
	"sort"
	"testing"
)

// fuzzStep is one decoded operation: push the (key, id) element, or pop.
type fuzzStep struct {
	pop bool
	key int
}

// decodeFuzzOps turns fuzz input into an operation sequence. Each byte is
// one operation: low bit selects push/pop, the remaining bits are the
// pushed key — deliberately only 7 bits so ties are common and the
// tiebreak contracts actually get exercised.
func decodeFuzzOps(data []byte) []fuzzStep {
	ops := make([]fuzzStep, len(data))
	for i, b := range data {
		ops[i] = fuzzStep{pop: b&1 == 1, key: int(b >> 1)}
	}
	return ops
}

// runFuzzOps drives one queue through ops, tagging every push with a
// sequence id so tie order is observable, and returns the full pop
// stream (including the final drain).
func runFuzzOps(t *testing.T, kind string, ops []fuzzStep) []keyed {
	t.Helper()
	q, err := New[keyed](kind, keyedLess, keyedKey)
	if err != nil {
		t.Fatal(err)
	}
	var out []keyed
	next := 0
	for _, op := range ops {
		if op.pop {
			if v, ok := q.Pop(); ok {
				out = append(out, v)
			}
		} else {
			q.Push(keyed{key: op.key, id: next})
			next++
		}
	}
	for {
		v, ok := q.Pop()
		if !ok {
			return out
		}
		out = append(out, v)
	}
}

// FuzzQueuesDifferential drives every registered queue kind through the
// same operation sequence and demands, per kind:
//
//  1. agreement with a sorted-slice reference model on the popped key
//     stream (and on emptiness at every step);
//  2. drain-order determinism — a second identical run must produce a
//     bitwise-identical pop stream, ids included;
//  3. the kind's documented tiebreak contract: splay and ladder pop
//     equal keys in insertion order (FIFO ids), heap's equal-key order
//     is only required to be deterministic (covered by 2).
func FuzzQueuesDifferential(f *testing.F) {
	f.Add([]byte{2, 4, 6, 1, 3, 5})
	f.Add([]byte{0, 0, 0, 1, 1, 1})
	f.Add([]byte{255, 254, 253, 252, 251})
	f.Add([]byte{8, 8, 8, 8, 8, 8, 8, 8, 1, 1, 8, 8, 1, 1})
	fifoKinds := map[string]bool{"splay": true, "ladder": true}
	f.Fuzz(func(t *testing.T, data []byte) {
		ops := decodeFuzzOps(data)

		// Reference model: keys only, sorted ascending.
		var refStream []int
		var oracle []int
		for _, op := range ops {
			if op.pop {
				if len(oracle) > 0 {
					refStream = append(refStream, oracle[0])
					oracle = oracle[1:]
				}
			} else {
				oracle = append(oracle, op.key)
				sort.Ints(oracle)
			}
		}
		refStream = append(refStream, oracle...)

		for _, kind := range Kinds() {
			got := runFuzzOps(t, kind, ops)
			if len(got) != len(refStream) {
				t.Fatalf("%s: popped %d elements, reference %d", kind, len(got), len(refStream))
			}
			maxID := make(map[int]int) // key -> highest id popped at that key
			for i, v := range got {
				if v.key != refStream[i] {
					t.Fatalf("%s: pop %d key %d, reference %d", kind, i, v.key, refStream[i])
				}
				if fifoKinds[kind] {
					// FIFO among equals: a pop whose id is below an id
					// already popped at the same key means a later-pushed
					// equal overtook an earlier one (ids are assigned in
					// push order, so the earlier element was necessarily
					// still queued when the later one popped).
					if prev, seen := maxID[v.key]; seen && v.id < prev {
						t.Fatalf("%s: tie order violated at pop %d: id %d after id %d at key %d",
							kind, i, v.id, prev, v.key)
					}
				}
				if v.id > maxID[v.key] {
					maxID[v.key] = v.id
				}
			}
			// Determinism: an identical second run must match exactly.
			again := runFuzzOps(t, kind, ops)
			for i := range got {
				if got[i] != again[i] {
					t.Fatalf("%s: nondeterministic drain at %d: %+v vs %+v", kind, i, got[i], again[i])
				}
			}
		}
	})
}
