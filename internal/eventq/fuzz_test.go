package eventq

import (
	"sort"
	"testing"
)

// FuzzQueuesDifferential drives the heap and the splay tree through the
// same operation sequence decoded from fuzz input and demands identical
// behaviour — plus agreement with a sorted-slice oracle. Each input byte
// encodes one operation: low bit selects push/pop, the remaining bits are
// the pushed value.
func FuzzQueuesDifferential(f *testing.F) {
	f.Add([]byte{2, 4, 6, 1, 3, 5})
	f.Add([]byte{0, 0, 0, 1, 1, 1})
	f.Add([]byte{255, 254, 253, 252, 251})
	f.Fuzz(func(t *testing.T, ops []byte) {
		h := NewHeap(func(a, b int) bool { return a < b })
		s := NewSplay(func(a, b int) bool { return a < b })
		var oracle []int
		for _, op := range ops {
			if op&1 == 0 {
				v := int(op >> 1)
				h.Push(v)
				s.Push(v)
				oracle = append(oracle, v)
				sort.Ints(oracle)
			} else {
				hv, hok := h.Pop()
				sv, sok := s.Pop()
				if hok != sok {
					t.Fatalf("pop presence disagrees: heap %v splay %v", hok, sok)
				}
				if !hok {
					if len(oracle) != 0 {
						t.Fatalf("both empty but oracle has %d", len(oracle))
					}
					continue
				}
				if hv != sv || hv != oracle[0] {
					t.Fatalf("pop: heap %d splay %d oracle %d", hv, sv, oracle[0])
				}
				oracle = oracle[1:]
			}
			if h.Len() != len(oracle) || s.Len() != len(oracle) {
				t.Fatalf("lengths: heap %d splay %d oracle %d", h.Len(), s.Len(), len(oracle))
			}
		}
		// Drain and compare the tails.
		for len(oracle) > 0 {
			hv, _ := h.Pop()
			sv, _ := s.Pop()
			if hv != sv || hv != oracle[0] {
				t.Fatalf("drain: heap %d splay %d oracle %d", hv, sv, oracle[0])
			}
			oracle = oracle[1:]
		}
	})
}
