package eventq

import (
	"math/rand"
	"testing"
)

// keyed is an element whose ordering ignores its identity, so tests can
// observe what a queue does with ties.
type keyed struct {
	key int
	id  int
}

func keyedLess(a, b keyed) bool { return a.key < b.key }

// TestSplayTieFIFO pins the splay tree's documented tie contract: elements
// comparing equal pop in insertion order, even when the equal run is
// interleaved with other keys and partial drains (which reshape the tree
// via splaying).
func TestSplayTieFIFO(t *testing.T) {
	q := NewSplay(keyedLess)
	next := 0
	push := func(key int) {
		q.Push(keyed{key: key, id: next})
		next++
	}
	// Three ties at key 5 (ids 0,1,2) wrapped in other keys...
	push(9)
	push(5)
	push(5)
	push(3)
	push(5)
	// ...drain past the smaller key to force splaying...
	if v, _ := q.Pop(); v.key != 3 {
		t.Fatalf("first pop key = %d, want 3", v.key)
	}
	// ...then add two more ties (ids 5,6) after the tree reshaped.
	push(5)
	push(5)
	wantIDs := []int{1, 2, 4, 5, 6} // insertion order among the key-5 ties
	for i, want := range wantIDs {
		v, ok := q.Pop()
		if !ok || v.key != 5 {
			t.Fatalf("pop %d: got (%+v, %v), want a key-5 element", i, v, ok)
		}
		if v.id != want {
			t.Fatalf("tie order violated at pop %d: got id %d, want %d", i, v.id, want)
		}
	}
	if v, ok := q.Pop(); !ok || v.key != 9 {
		t.Fatalf("last pop = (%+v, %v), want key 9", v, ok)
	}
}

// TestHeapTieDeterministic pins the heap's (weaker) documented contract:
// the drain order of equal elements is a pure function of the operation
// sequence. Two queues fed the identical randomized Push/Pop schedule must
// produce bitwise-identical drains — if sift order ever consulted anything
// beyond the array state (map iteration, addresses, randomness), this
// would flake immediately.
func TestHeapTieDeterministic(t *testing.T) {
	run := func() []keyed {
		q := NewHeap(keyedLess)
		rng := rand.New(rand.NewSource(42))
		var out []keyed
		for i := 0; i < 2000; i++ {
			// Heavy ties: only 8 distinct keys across 2000 elements.
			q.Push(keyed{key: rng.Intn(8), id: i})
			if rng.Intn(3) == 0 {
				if v, ok := q.Pop(); ok {
					out = append(out, v)
				}
			}
		}
		for {
			v, ok := q.Pop()
			if !ok {
				return out
			}
			out = append(out, v)
		}
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("drain lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("drain diverges at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// TestQueuesAgreeUnderTotalOrder: with a total order (the kernel's case —
// ties cannot occur) both queues must drain identically, so the kernel's
// committed schedule cannot depend on the -queue flag. This is the
// queue-level half of simcheck's heap-vs-splay differential column.
func TestQueuesAgreeUnderTotalOrder(t *testing.T) {
	totalLess := func(a, b keyed) bool {
		if a.key != b.key {
			return a.key < b.key
		}
		return a.id < b.id // unique ids make the order total
	}
	drain := func(q Queue[keyed]) []keyed {
		rng := rand.New(rand.NewSource(7))
		var out []keyed
		for i := 0; i < 1500; i++ {
			q.Push(keyed{key: rng.Intn(16), id: i})
			if rng.Intn(4) == 0 {
				if v, ok := q.Pop(); ok {
					out = append(out, v)
				}
			}
		}
		for {
			v, ok := q.Pop()
			if !ok {
				return out
			}
			out = append(out, v)
		}
	}
	a := drain(NewHeap(totalLess))
	b := drain(NewSplay(totalLess))
	if len(a) != len(b) {
		t.Fatalf("drain lengths differ: heap %d vs splay %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("heap and splay disagree at %d under a total order: %+v vs %+v", i, a[i], b[i])
		}
	}
}
