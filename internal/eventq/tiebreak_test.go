package eventq

import (
	"math/rand"
	"testing"
)

// keyed is an element whose ordering ignores its identity, so tests can
// observe what a queue does with ties.
type keyed struct {
	key int
	id  int
}

func keyedLess(a, b keyed) bool { return a.key < b.key }

func keyedKey(k keyed) float64 { return float64(k.key) }

// TestSplayTieFIFO pins the splay tree's documented tie contract: elements
// comparing equal pop in insertion order, even when the equal run is
// interleaved with other keys and partial drains (which reshape the tree
// via splaying).
func TestSplayTieFIFO(t *testing.T) {
	q := NewSplay(keyedLess)
	next := 0
	push := func(key int) {
		q.Push(keyed{key: key, id: next})
		next++
	}
	// Three ties at key 5 (ids 0,1,2) wrapped in other keys...
	push(9)
	push(5)
	push(5)
	push(3)
	push(5)
	// ...drain past the smaller key to force splaying...
	if v, _ := q.Pop(); v.key != 3 {
		t.Fatalf("first pop key = %d, want 3", v.key)
	}
	// ...then add two more ties (ids 5,6) after the tree reshaped.
	push(5)
	push(5)
	wantIDs := []int{1, 2, 4, 5, 6} // insertion order among the key-5 ties
	for i, want := range wantIDs {
		v, ok := q.Pop()
		if !ok || v.key != 5 {
			t.Fatalf("pop %d: got (%+v, %v), want a key-5 element", i, v, ok)
		}
		if v.id != want {
			t.Fatalf("tie order violated at pop %d: got id %d, want %d", i, v.id, want)
		}
	}
	if v, ok := q.Pop(); !ok || v.key != 9 {
		t.Fatalf("last pop = (%+v, %v), want key 9", v, ok)
	}
}

// TestHeapTieDeterministic pins the heap's (weaker) documented contract:
// the drain order of equal elements is a pure function of the operation
// sequence. Two queues fed the identical randomized Push/Pop schedule must
// produce bitwise-identical drains — if sift order ever consulted anything
// beyond the array state (map iteration, addresses, randomness), this
// would flake immediately.
func TestHeapTieDeterministic(t *testing.T) {
	run := func() []keyed {
		q := NewHeap(keyedLess)
		rng := rand.New(rand.NewSource(42))
		var out []keyed
		for i := 0; i < 2000; i++ {
			// Heavy ties: only 8 distinct keys across 2000 elements.
			q.Push(keyed{key: rng.Intn(8), id: i})
			if rng.Intn(3) == 0 {
				if v, ok := q.Pop(); ok {
					out = append(out, v)
				}
			}
		}
		for {
			v, ok := q.Pop()
			if !ok {
				return out
			}
			out = append(out, v)
		}
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("drain lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("drain diverges at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// TestLadderTieFIFO pins the ladder's tie contract, which matches the
// splay tree's: elements comparing equal pop in insertion order. The
// first half replays the splay scenario (ties interleaved with other
// keys and a partial drain); the second half forces the equal run to
// straddle the ladder's band boundaries — some ties drain out of a
// sorted Bottom while later equal arrivals land in the Top band — which
// is exactly where a calendar structure would lose FIFO if bucket
// appends or the refill sort were unstable.
func TestLadderTieFIFO(t *testing.T) {
	q := NewLadder(keyedLess, keyedKey)
	next := 0
	push := func(key int) {
		q.Push(keyed{key: key, id: next})
		next++
	}
	push(9)
	push(5)
	push(5)
	push(3)
	push(5)
	if v, _ := q.Pop(); v.key != 3 {
		t.Fatalf("first pop key = %d, want 3", v.key)
	}
	push(5)
	push(5)
	wantIDs := []int{1, 2, 4, 5, 6} // insertion order among the key-5 ties
	for i, want := range wantIDs {
		v, ok := q.Pop()
		if !ok || v.key != 5 {
			t.Fatalf("pop %d: got (%+v, %v), want a key-5 element", i, v, ok)
		}
		if v.id != want {
			t.Fatalf("tie order violated at pop %d: got id %d, want %d", i, v.id, want)
		}
	}
	if v, ok := q.Pop(); !ok || v.key != 9 {
		t.Fatalf("last pop = (%+v, %v), want key 9", v, ok)
	}

	// Band-boundary half: heavy ties at few keys, interleaved pops, so
	// equal runs cross Top→rung→Bottom transfers. Compare against a
	// stable-sort oracle (equal keys in push order).
	rng := rand.New(rand.NewSource(11))
	var oracle []keyed
	for i := 0; i < 4000; i++ {
		if rng.Intn(3) > 0 || len(oracle) == 0 {
			e := keyed{key: rng.Intn(6), id: next}
			next++
			q.Push(e)
			// Insert after all equal keys: FIFO oracle.
			pos := len(oracle)
			for pos > 0 && oracle[pos-1].key > e.key {
				pos--
			}
			oracle = append(oracle, keyed{})
			copy(oracle[pos+1:], oracle[pos:])
			oracle[pos] = e
		} else {
			got, ok := q.Pop()
			if !ok {
				t.Fatalf("step %d: pop failed with %d queued", i, len(oracle))
			}
			if got != oracle[0] {
				t.Fatalf("step %d: pop %+v, oracle %+v", i, got, oracle[0])
			}
			oracle = oracle[1:]
		}
	}
}

// TestLadderTopBoundaryEqualKeys is the regression test for an equal-key
// split across the Top boundary. After transferTop moves the band down,
// a later arrival whose key equals the old band maximum must follow its
// equal-key peers down into Bottom/rungs — if it stays in Top, the two
// containers are never compared under less and the earlier (but
// less-greater) element drains first. The kernel hit exactly this: two
// events at one timestamp, tiebroken by LP id, popped in the wrong order.
func TestLadderTopBoundaryEqualKeys(t *testing.T) {
	// Total order: key ascending, then id ascending.
	totalLess := func(a, b keyed) bool {
		if a.key != b.key {
			return a.key < b.key
		}
		return a.id < b.id
	}
	q := NewLadder(totalLess, keyedKey)
	q.Push(keyed{key: 5, id: 2})
	q.Push(keyed{key: 1, id: 0})
	// First pop triggers transferTop: {1,0} and {5,2} sort into Bottom and
	// the Top boundary becomes the old band max, key 5.
	if v, _ := q.Pop(); v != (keyed{key: 1, id: 0}) {
		t.Fatalf("first pop = %+v, want {1 0}", v)
	}
	// A new key-5 arrival that sorts before the resident {5,2}.
	q.Push(keyed{key: 5, id: 1})
	for _, want := range []keyed{{key: 5, id: 1}, {key: 5, id: 2}} {
		v, ok := q.Pop()
		if !ok || v != want {
			t.Fatalf("pop = (%+v, %v), want %+v", v, ok, want)
		}
	}
}

// TestQueuesAgreeUnderTotalOrder: with a total order (the kernel's case —
// ties cannot occur) every registered queue must drain identically, so
// the kernel's committed schedule cannot depend on the -queue flag. This
// is the queue-level half of simcheck's queue-dimension differential.
// The schedule runs under two orders: id-ascending (later pushes sort
// later among equal float keys) and id-descending (later pushes sort
// EARLIER — the kernel's straggler shape, where an event arriving later
// must still drain first; this direction is what catches equal-key
// elements split across a keyed structure's internal bands).
func TestQueuesAgreeUnderTotalOrder(t *testing.T) {
	orders := map[string]func(a, b keyed) bool{
		"idAsc": func(a, b keyed) bool {
			if a.key != b.key {
				return a.key < b.key
			}
			return a.id < b.id
		},
		"idDesc": func(a, b keyed) bool {
			if a.key != b.key {
				return a.key < b.key
			}
			return a.id > b.id
		},
	}
	drain := func(q Queue[keyed]) []keyed {
		rng := rand.New(rand.NewSource(7))
		var out []keyed
		for i := 0; i < 1500; i++ {
			q.Push(keyed{key: rng.Intn(16), id: i})
			if rng.Intn(4) == 0 {
				if v, ok := q.Pop(); ok {
					out = append(out, v)
				}
			}
		}
		for {
			v, ok := q.Pop()
			if !ok {
				return out
			}
			out = append(out, v)
		}
	}
	for name, totalLess := range orders {
		t.Run(name, func(t *testing.T) {
			kinds := Kinds()
			drains := make([][]keyed, len(kinds))
			for i, kind := range kinds {
				q, err := New[keyed](kind, totalLess, keyedKey)
				if err != nil {
					t.Fatal(err)
				}
				drains[i] = drain(q)
			}
			for i := 1; i < len(kinds); i++ {
				a, b := drains[0], drains[i]
				if len(a) != len(b) {
					t.Fatalf("drain lengths differ: %s %d vs %s %d", kinds[0], len(a), kinds[i], len(b))
				}
				for j := range a {
					if a[j] != b[j] {
						t.Fatalf("%s and %s disagree at %d under a total order: %+v vs %+v",
							kinds[0], kinds[i], j, a[j], b[j])
					}
				}
			}
		})
	}
}
