package eventq_test

import (
	"fmt"

	"repro/internal/eventq"
)

// Example shows the queue API shared by the heap, splay and ladder
// implementations; the kernel schedules events through exactly this
// interface.
func Example() {
	q, err := eventq.New[int]("heap", func(a, b int) bool { return a < b }, nil)
	if err != nil {
		panic(err)
	}
	for _, v := range []int{5, 1, 4, 1, 3} {
		q.Push(v)
	}
	for {
		v, ok := q.Pop()
		if !ok {
			break
		}
		fmt.Print(v, " ")
	}
	fmt.Println()
	// Output: 1 1 3 4 5
}
