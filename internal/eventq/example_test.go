package eventq_test

import (
	"fmt"

	"repro/internal/eventq"
)

// Example shows the queue API shared by the heap and splay
// implementations; the kernel schedules events through exactly this
// interface.
func Example() {
	q := eventq.New[int]("heap", func(a, b int) bool { return a < b })
	for _, v := range []int{5, 1, 4, 1, 3} {
		q.Push(v)
	}
	for {
		v, ok := q.Pop()
		if !ok {
			break
		}
		fmt.Print(v, " ")
	}
	fmt.Println()
	// Output: 1 1 3 4 5
}
