package eventq

import "math"

// Ladder is a ladder queue (Tang, Goh & Thng, "Ladder queue: An O(1)
// priority queue structure for large-scale discrete event simulation",
// ACM TOMACS 2005): a three-band structure tuned for the PDES access
// pattern where almost every Push lands at or above the current drain
// frontier.
//
//   - Top: an unsorted spill array holding every element whose key
//     arrived at or above topStart. Pushes here are O(1) appends.
//   - Rungs: a short stack of bucket arrays. Each rung covers a key
//     range [start, start+width*nbuckets) at a fixed bucket width; an
//     overfull bucket is split by spawning a finer-grained child rung
//     below it, so sorting cost is deferred until a range is actually
//     about to drain.
//   - Bottom: a fully sorted run (smallest first) that Min/Pop serve
//     from directly. When it empties it is refilled from the innermost
//     rung's next bucket, and when the rungs empty the Top band is
//     transferred down wholesale.
//
// Ordering contract: the ladder buckets by key but ORDERS by less, so
// drain order is exactly the sorted order under less and is a pure
// function of the Push/Pop sequence — identical op sequences drain
// identically. Elements comparing equal under less pop in insertion
// order (FIFO ties, the same contract as Splay): bucket lists keep
// arrival order, the refill sorts are stable, and an element pushed
// equal to elements already in the sorted Bottom is inserted after all
// of them. This requires key to be monotone with respect to less
// (key(a) < key(b) implies less(a, b)); the kernel's projection —
// recvTime under the (recvTime, dst, src, seq) comparator — satisfies
// it, as does any "timestamp first" ordering.
//
// Steady-state operation allocates nothing. Bucket contents live as
// linked lists in one arena shared by every bucket of every rung
// (parallel vals/next arrays threaded with a free list), so recycled
// capacity is pooled: the arena plateaus at the high-water count of
// rung-resident elements. Giving each bucket its own recycled slice
// instead would never stop allocating — with thousands of buckets
// refilled from random occupancy, some bucket somewhere keeps setting a
// new per-slot capacity record more or less forever. The Top/Bottom
// arrays, rung bucket tables, and the merge scratch are recycled in
// place the ordinary way. Non-finite keys (the kernel's TimeInfinity
// projects to +Inf) cap into the last bucket and are ordered by the
// drain-time sort, never by degenerate bucket arithmetic.
type Ladder[T any] struct {
	less func(a, b T) bool
	key  func(T) float64
	n    int

	// bottom[bhead:] is the sorted run Min/Pop serve from; bhead is the
	// consumed prefix, kept so Pop is a pointer bump instead of a copy.
	bottom []T
	bhead  int

	// rungs[:nrungs] is the active rung stack, outermost (widest range)
	// first. Retired rungs keep their bucket tables for reuse.
	rungs  []*ladderRung[T]
	nrungs int

	// top is the unsorted spill band for keys >= topStart; topMin/topMax
	// track its key range so a transfer can size rung 0 without a scan.
	top      []T
	topMin   float64
	topMax   float64
	topStart float64

	// Shared bucket arena: arenaVals[s] holds an element, arenaNext[s]
	// the next slot in its bucket's list (-1 ends it). Free slots are
	// threaded through arenaNext from arenaFree. The arena is owned by
	// the PE goroutine running the queue: a recycled slot is reissued on
	// the next Push, so any cross-goroutine reference is a use-after-free.
	arenaVals []T     //simlint:owned
	arenaNext []int32 //simlint:owned
	arenaFree int32   //simlint:owned

	scratch []T // merge-sort scratch, recycled across sorts
}

// ladderRung is one bucket table. Bucket i covers keys in
// [start+i*width, start+(i+1)*width) and stores its elements as an
// arena-linked FIFO list from head[i] to tail[i] (-1 when empty); cur is
// the first bucket not yet drained, count the elements across
// buckets[cur:].
type ladderRung[T any] struct {
	start float64
	width float64
	cur   int
	count int
	head  []int32
	tail  []int32
}

const (
	// ladderBottomThreshold caps how many elements are sorted into
	// Bottom in one refill; a bucket above it spawns a finer rung
	// instead (the paper's THRES).
	ladderBottomThreshold = 64
	// ladderMaxRungs bounds spawn recursion; at the cap the bucket is
	// sorted into Bottom regardless of size, degrading gracefully to
	// O(n log n) for pathological (all-equal-key) distributions.
	ladderMaxRungs = 8
	// ladderMaxBuckets caps a rung's bucket count so a sparse band with
	// a huge key range cannot demand an enormous bucket table.
	ladderMaxBuckets = 2048
)

// NewLadder returns an empty ladder queue ordered by less, bucketing by
// key. key must be monotone with respect to less: key(a) < key(b) must
// imply less(a, b).
func NewLadder[T any](less func(a, b T) bool, key func(T) float64) *Ladder[T] {
	return &Ladder[T]{
		less:      less,
		key:       key,
		topMin:    math.Inf(1),
		topMax:    math.Inf(-1),
		topStart:  math.Inf(-1),
		arenaFree: -1,
	}
}

// Len returns the number of elements in the queue.
func (l *Ladder[T]) Len() int { return l.n }

// Push inserts v. The common PDES case — key at or above everything
// already drained and pending — is an O(1) append to Top; a rollback
// re-insertion lands in the rung bucket or sorted Bottom covering its
// key.
func (l *Ladder[T]) Push(v T) {
	l.n++
	k := l.key(v)
	if k >= l.topStart {
		l.top = append(l.top, v)
		if k < l.topMin {
			l.topMin = k
		}
		if k > l.topMax {
			l.topMax = k
		}
		return
	}
	// Below the Top band: the outermost rung whose undrained bucket
	// range covers k takes it. Inner rungs subdivide a bucket their
	// parent has already drained past, so their entire key range sits
	// strictly below every undrained parent bucket — the first match is
	// the right one, and an element matching no rung belongs in Bottom.
	for i := 0; i < l.nrungs; i++ {
		r := l.rungs[i]
		if k < r.start {
			continue
		}
		if idx := r.idxOf(k); idx >= r.cur {
			l.putRung(r, idx, v)
			return
		}
	}
	l.insertBottom(v)
}

// idxOf maps key k (>= r.start) to its bucket index. This is the ONLY
// arithmetic that bins a key — Push's membership test reuses it — and
// floating-point division is monotone, so for any two keys a < b,
// idxOf(a) <= idxOf(b): a later-delivered bucket can never hold a
// smaller key than an earlier one, regardless of rounding at bucket
// boundaries. Oversized and +Inf keys cap into the last bucket, where
// the drain-time sort orders them.
func (r *ladderRung[T]) idxOf(k float64) int {
	if math.IsInf(k, 1) {
		return len(r.head) - 1
	}
	idx := int((k - r.start) / r.width)
	if idx >= len(r.head) {
		idx = len(r.head) - 1
	}
	if idx < 0 {
		idx = 0
	}
	return idx
}

// allocSlot takes an arena slot for v, growing the arena only past its
// high-water mark.
func (l *Ladder[T]) allocSlot(v T) int32 {
	s := l.arenaFree
	if s >= 0 {
		l.arenaFree = l.arenaNext[s]
	} else {
		s = int32(len(l.arenaVals))
		var zero T
		l.arenaVals = append(l.arenaVals, zero)
		l.arenaNext = append(l.arenaNext, -1)
	}
	l.arenaVals[s] = v
	l.arenaNext[s] = -1
	return s
}

// freeSlot releases s back to the arena free list, dropping its element
// reference for GC.
func (l *Ladder[T]) freeSlot(s int32) {
	var zero T
	l.arenaVals[s] = zero
	l.arenaNext[s] = l.arenaFree
	l.arenaFree = s
}

// putRung appends v to bucket idx of r, preserving arrival order.
func (l *Ladder[T]) putRung(r *ladderRung[T], idx int, v T) {
	s := l.allocSlot(v)
	if t := r.tail[idx]; t >= 0 {
		l.arenaNext[t] = s
	} else {
		r.head[idx] = s
	}
	r.tail[idx] = s
	r.count++
}

// Min returns the smallest element without removing it.
func (l *Ladder[T]) Min() (T, bool) {
	if l.n == 0 {
		var zero T
		return zero, false
	}
	l.ensureBottom()
	return l.bottom[l.bhead], true
}

// Pop removes and returns the smallest element.
func (l *Ladder[T]) Pop() (T, bool) {
	if l.n == 0 {
		var zero T
		return zero, false
	}
	l.ensureBottom()
	v := l.bottom[l.bhead]
	var zero T
	l.bottom[l.bhead] = zero // release reference for GC
	l.bhead++
	l.n--
	if l.n == 0 {
		l.reset()
	}
	return v, true
}

// BulkDrain removes every element comparing strictly before upTo, in
// Pop order, calling fn on each. fn may Push elements that compare
// strictly after the delivered element; any still below upTo are
// delivered later in the same call. This is the ladder's fast path: the
// drain walks sorted Bottom runs directly, refilling bucket-at-a-time,
// with none of the per-element tree/heap rebalancing a Min/Pop loop
// pays elsewhere.
func (l *Ladder[T]) BulkDrain(upTo T, fn func(T)) {
	for l.n > 0 {
		l.ensureBottom()
		v := l.bottom[l.bhead]
		if !l.less(v, upTo) {
			return
		}
		var zero T
		l.bottom[l.bhead] = zero
		l.bhead++
		l.n--
		if l.n == 0 {
			l.reset()
		}
		fn(v)
	}
}

// Each visits every element in unspecified order.
func (l *Ladder[T]) Each(fn func(T)) {
	for _, v := range l.bottom[l.bhead:] {
		fn(v)
	}
	for i := 0; i < l.nrungs; i++ {
		r := l.rungs[i]
		for bi := r.cur; bi < len(r.head); bi++ {
			for s := r.head[bi]; s >= 0; s = l.arenaNext[s] {
				fn(l.arenaVals[s])
			}
		}
	}
	for _, v := range l.top {
		fn(v)
	}
}

// ensureBottom makes bottom[bhead:] non-empty (caller guarantees n > 0),
// refilling from the innermost rung or transferring the Top band.
func (l *Ladder[T]) ensureBottom() {
	for l.bhead >= len(l.bottom) {
		l.bottom = l.bottom[:0]
		l.bhead = 0
		if l.nrungs > 0 {
			l.refillFromRungs()
		} else {
			l.transferTop()
		}
	}
}

// refillFromRungs moves the innermost rung's next non-empty bucket into
// Bottom (sorted) or spawns a finer child rung when the bucket is too
// big to sort cheaply.
func (l *Ladder[T]) refillFromRungs() {
	r := l.rungs[l.nrungs-1]
	if r.count == 0 {
		l.nrungs-- // retired; keeps its bucket table for reuse
		return
	}
	for r.cur < len(r.head) && r.head[r.cur] < 0 {
		r.cur++
	}
	if r.cur >= len(r.head) {
		// count said elements remain but no bucket holds any; guard
		// against an inconsistent rung rather than loop forever.
		r.count = 0
		l.nrungs--
		return
	}
	// Walk the bucket once for its size and key range; both the spawn
	// decision and the child sizing need them.
	bn := 0
	bmin, bmax := math.Inf(1), math.Inf(-1)
	for s := r.head[r.cur]; s >= 0; s = l.arenaNext[s] {
		bn++
		k := l.key(l.arenaVals[s])
		if k < bmin {
			bmin = k
		}
		if k > bmax {
			bmax = k
		}
	}
	if bn > ladderBottomThreshold && l.nrungs < ladderMaxRungs {
		if child, ok := l.takeChildRung(bn, bmin, bmax); ok {
			// Rescatter the bucket into the child. Freeing each slot
			// before re-placing its element means the child's list
			// reuses the same arena slots — no net arena growth.
			for s := r.head[r.cur]; s >= 0; {
				v := l.arenaVals[s]
				next := l.arenaNext[s]
				l.freeSlot(s)
				l.putRung(child, child.idxOf(l.key(v)), v)
				s = next
			}
			r.head[r.cur] = -1
			r.tail[r.cur] = -1
			r.count -= bn
			r.cur++
			l.pushRung(child)
			return
		}
	}
	for s := r.head[r.cur]; s >= 0; {
		v := l.arenaVals[s]
		next := l.arenaNext[s]
		l.freeSlot(s)
		l.bottom = append(l.bottom, v)
		s = next
	}
	l.stableSort(l.bottom)
	r.head[r.cur] = -1
	r.tail[r.cur] = -1
	r.count -= bn
	r.cur++
	if r.count == 0 {
		l.nrungs--
	}
}

// takeChildRung prepares a recycled (or new) rung subdividing the key
// range [bmin, bmax] for bn elements. Returns ok=false when subdividing
// cannot help: the keys are all equal, or the bucket width would be
// non-finite or zero (sorting into Bottom is then the right
// degradation).
func (l *Ladder[T]) takeChildRung(bn int, bmin, bmax float64) (*ladderRung[T], bool) {
	if !(bmax > bmin) || math.IsInf(bmin, 0) || math.IsInf(bmax, 0) {
		return nil, false
	}
	nb := bn
	if nb > ladderMaxBuckets {
		nb = ladderMaxBuckets
	}
	if nb < 2 {
		return nil, false
	}
	// Spread the actual key range across nb buckets; the +1 ulp via
	// Nextafter keeps bmax itself inside the last bucket.
	cw := math.Nextafter(bmax-bmin, math.Inf(1)) / float64(nb)
	if cw <= 0 || math.IsInf(cw, 0) || math.IsNaN(cw) {
		return nil, false
	}
	r := l.takeRung(nb)
	r.start = bmin
	r.width = cw
	return r, true
}

// takeRung returns a recycled (or new) rung with nb empty buckets.
func (l *Ladder[T]) takeRung(nb int) *ladderRung[T] {
	var r *ladderRung[T]
	if l.nrungs < len(l.rungs) && l.rungs[l.nrungs] != nil {
		r = l.rungs[l.nrungs]
	} else {
		r = &ladderRung[T]{}
	}
	r.cur = 0
	r.count = 0
	if cap(r.head) < nb {
		r.head = make([]int32, nb)
		r.tail = make([]int32, nb)
	}
	r.head = r.head[:nb]
	r.tail = r.tail[:nb]
	for i := range r.head {
		r.head[i] = -1
		r.tail[i] = -1
	}
	return r
}

// pushRung activates r as the new innermost rung.
func (l *Ladder[T]) pushRung(r *ladderRung[T]) {
	if l.nrungs < len(l.rungs) {
		l.rungs[l.nrungs] = r
	} else {
		l.rungs = append(l.rungs, r)
	}
	l.nrungs++
}

// transferTop moves the Top band down: small or degenerate bands sort
// straight into Bottom; otherwise rung 0 is sized from the observed key
// range and the band is scattered into its buckets.
func (l *Ladder[T]) transferTop() {
	n := len(l.top)
	if n == 0 {
		return
	}
	// Future pushes strictly above the band's max stay O(1) in the new
	// Top. The boundary must be exclusive: keys equal to topMax are moving
	// down right now, and a later arrival at the same key may sort before
	// them under less (the kernel tiebreaks equal timestamps by lp/seq),
	// which only works if it lands in the same container and gets compared.
	// Nextafter makes membership k >= topStart equivalent to k > topMax.
	// (For topMax == +Inf this is saturating: +Inf keys keep landing in
	// Top, where FIFO among them is the best we can offer.)
	l.topStart = math.Nextafter(l.topMax, math.Inf(1))
	var r *ladderRung[T]
	ok := false
	if n > ladderBottomThreshold {
		r, ok = l.takeChildRung(n, l.topMin, l.topMax)
	}
	if ok {
		for _, v := range l.top {
			l.putRung(r, r.idxOf(l.key(v)), v)
		}
		l.pushRung(r)
	} else {
		l.bottom = append(l.bottom, l.top...)
		l.stableSort(l.bottom)
	}
	clearSlice(l.top)
	l.top = l.top[:0]
	l.topMin = math.Inf(1)
	l.topMax = math.Inf(-1)
}

// insertBottom places v into the sorted Bottom run, after all equal
// elements (FIFO ties). The dead slot just before bhead is reused for a
// front insertion when one exists; appending at capacity first compacts
// the consumed prefix away so the array cannot grow without bound under
// insert/pop interleaving.
func (l *Ladder[T]) insertBottom(v T) {
	// Binary search for the upper bound: first index with v < bottom[i].
	lo, hi := l.bhead, len(l.bottom)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if l.less(v, l.bottom[mid]) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	if lo == l.bhead && l.bhead > 0 {
		l.bhead--
		l.bottom[l.bhead] = v
		return
	}
	if len(l.bottom) == cap(l.bottom) && l.bhead > 0 {
		m := copy(l.bottom, l.bottom[l.bhead:])
		clearSlice(l.bottom[m:])
		l.bottom = l.bottom[:m]
		lo -= l.bhead
		l.bhead = 0
	}
	var zero T
	l.bottom = append(l.bottom, zero)
	copy(l.bottom[lo+1:], l.bottom[lo:])
	l.bottom[lo] = v
}

// reset returns the empty ladder to its initial band state, keeping
// every array's capacity (and the arena) for reuse. The caller
// guarantees n == 0, so every arena slot is already on the free list
// and every bucket list is empty.
func (l *Ladder[T]) reset() {
	clearSlice(l.bottom)
	l.bottom = l.bottom[:0]
	l.bhead = 0
	l.nrungs = 0
	clearSlice(l.top)
	l.top = l.top[:0]
	l.topMin = math.Inf(1)
	l.topMax = math.Inf(-1)
	l.topStart = math.Inf(-1)
}

// stableSort sorts s in place under l.less, preserving the relative
// order of equal elements. Hand-rolled (insertion sort for short runs,
// bottom-up merge above that) because sort.SliceStable allocates its
// closure header on every call, which would show up in the steady-state
// allocs/op gate.
func (l *Ladder[T]) stableSort(s []T) {
	n := len(s)
	if n < 2 {
		return
	}
	const runLen = 24
	if n <= runLen {
		insertionSort(s, l.less)
		return
	}
	for lo := 0; lo < n; lo += runLen {
		hi := lo + runLen
		if hi > n {
			hi = n
		}
		insertionSort(s[lo:hi], l.less)
	}
	if cap(l.scratch) < n {
		l.scratch = make([]T, n)
	}
	scratch := l.scratch[:n]
	for width := runLen; width < n; width *= 2 {
		for lo := 0; lo+width < n; lo += 2 * width {
			mid := lo + width
			hi := lo + 2*width
			if hi > n {
				hi = n
			}
			mergeRuns(s[lo:mid], s[mid:hi], scratch, l.less)
		}
	}
	clearSlice(scratch)
}

func insertionSort[T any](s []T, less func(a, b T) bool) {
	for i := 1; i < len(s); i++ {
		v := s[i]
		j := i - 1
		for j >= 0 && less(v, s[j]) {
			s[j+1] = s[j]
			j--
		}
		s[j+1] = v
	}
}

// mergeRuns merges the adjacent sorted runs a and b (b immediately
// follows a in the backing array) using scratch, ties taking from a so
// the merge is stable.
func mergeRuns[T any](a, b, scratch []T, less func(x, y T) bool) {
	tmp := scratch[:len(a)]
	copy(tmp, a)
	out := a[:len(a)+len(b)]
	i, j, k := 0, 0, 0
	for i < len(tmp) && j < len(b) {
		if less(b[j], tmp[i]) {
			out[k] = b[j]
			j++
		} else {
			out[k] = tmp[i]
			i++
		}
		k++
	}
	for i < len(tmp) {
		out[k] = tmp[i]
		i++
		k++
	}
	// Remaining b elements are already in place.
}

// clearSlice zeroes s so recycled arrays hold no stale references.
func clearSlice[T any](s []T) {
	var zero T
	for i := range s {
		s[i] = zero
	}
}
