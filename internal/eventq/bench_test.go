package eventq

// Microbenchmarks for the pending-set implementations under the access
// patterns a Time Warp kernel actually generates. Each benchmark is a
// classic hold model: prefill the queue to a target population n, then
// repeatedly pop the minimum and push a successor whose key is drawn from
// the pattern. The batch per b.N iteration is sized so that one iteration
// is meaningful under `-benchtime=1x` (the Makefile's bench target runs
// every benchmark once per sample and keeps the best of -count samples).
//
// Patterns:
//
//   - inc: mostly-increasing timestamps (exponential-ish increments) —
//     the steady-state main loop of a well-behaved PDES model.
//   - rollback: increasing baseline with periodic bursts of stragglers
//     pushed below the current frontier — the re-insertion traffic a
//     rollback storm generates.
//   - skew: bimodal increments (mostly tiny, occasionally huge) — the
//     heavy-tailed service times that defeat naive calendar queues.
//
// Elements carry a (t, seq) pair ordered lexicographically, mirroring the
// kernel's total order on events: float timestamp first, unique tiebreak
// second, so equal timestamps are legal inputs here even though the
// comparator is total.

import (
	"math/rand"
	"strconv"
	"testing"
	"time"
)

// benchItem mirrors the kernel's event ordering shape: float key plus a
// unique sequence tiebreak.
type benchItem struct {
	t   float64
	seq uint64
}

func benchLess(a, b benchItem) bool {
	if a.t != b.t {
		return a.t < b.t
	}
	return a.seq < b.seq
}

func benchKey(v benchItem) float64 { return v.t }

// benchSizes are the held populations; the ISSUE's perf acceptance gates
// read the n=100000 and n=1000000 inc cells.
var benchSizes = []int{1_000, 100_000, 1_000_000}

// holdPattern returns the increment stream for a pattern as a fixed table
// the hold loop cycles through, so RNG cost is identical across queue
// kinds and excluded from the per-kind comparison.
func holdPattern(pattern string) []float64 {
	rng := rand.New(rand.NewSource(99))
	inc := make([]float64, 1<<14)
	for i := range inc {
		switch pattern {
		case "inc":
			inc[i] = rng.ExpFloat64()
		case "rollback":
			// Mostly forward progress; every 64th draw is a straggler
			// landing up to 8 mean-increments below the frontier.
			if i%64 == 63 {
				inc[i] = -8 * rng.Float64()
			} else {
				inc[i] = rng.ExpFloat64()
			}
		case "skew":
			// Bimodal: 85% tiny steps, 15% jumps two orders larger.
			if rng.Intn(100) < 85 {
				inc[i] = rng.Float64() * 0.01
			} else {
				inc[i] = rng.Float64() * 100
			}
		default:
			panic("unknown pattern " + pattern)
		}
	}
	return inc
}

// prefill populates q with n items clustered like a warmed-up pending set.
func prefill(q Queue[benchItem], n int, seq *uint64) float64 {
	rng := rand.New(rand.NewSource(7))
	front := 0.0
	for i := 0; i < n; i++ {
		*seq++
		q.Push(benchItem{t: front + rng.ExpFloat64()*float64(n)/16, seq: *seq})
	}
	return front
}

// hold runs ops pop-push holds against q and returns the final frontier.
func hold(q Queue[benchItem], inc []float64, ops int, seq *uint64) float64 {
	frontier := 0.0
	for i := 0; i < ops; i++ {
		v, ok := q.Pop()
		if !ok {
			panic("bench: queue drained")
		}
		frontier = v.t
		nt := frontier + inc[i&(len(inc)-1)]
		if nt < 0 {
			nt = 0
		}
		*seq++
		q.Push(benchItem{t: nt, seq: *seq})
	}
	return frontier
}

// benchOps sizes one b.N iteration: enough work to dominate timer
// resolution at small n without making the 1e6 cells take minutes.
func benchOps(n int) int {
	ops := 2 * n
	if ops < 1<<17 {
		ops = 1 << 17
	}
	return ops
}

// BenchmarkQueue measures every registered kind under every pattern and
// size: Queue/<kind>/<pattern>/n=<n>. ns/op is per batch of benchOps(n)
// holds; the ns/hold metric is the per-operation figure.
func BenchmarkQueue(b *testing.B) {
	for _, kind := range Kinds() {
		b.Run(kind, func(b *testing.B) {
			for _, pattern := range []string{"inc", "rollback", "skew"} {
				b.Run(pattern, func(b *testing.B) {
					for _, n := range benchSizes {
						b.Run("n="+itoa(n), func(b *testing.B) {
							inc := holdPattern(pattern)
							ops := benchOps(n)
							var seq uint64
							q, err := New[benchItem](kind, benchLess, benchKey)
							if err != nil {
								b.Fatal(err)
							}
							prefill(q, n, &seq)
							// Warm the structure past its build-up
							// transient (ladder rung spawning, splay
							// reshaping) before the timer starts.
							hold(q, inc, ops/4, &seq)
							b.ReportAllocs()
							b.ResetTimer()
							for i := 0; i < b.N; i++ {
								hold(q, inc, ops, &seq)
							}
							b.StopTimer()
							perOp := float64(b.Elapsed().Nanoseconds()) / float64(b.N) / float64(ops)
							b.ReportMetric(perOp, "ns/hold")
						})
					}
				})
			}
		})
	}
}

// BenchmarkQueueLadderVsSplay reports the ladder's speedup over the splay
// tree on the mostly-increasing pattern — the cells the perf acceptance
// gates on (speedup >= 1 at n=1e5 and n=1e6). Both queues run the
// identical schedule inside one sample and the fastest of three rounds of
// each is compared, so one interference spike cannot manufacture or mask
// a regression. ns/op covers the whole harness and is not itself a gate.
func BenchmarkQueueLadderVsSplay(b *testing.B) {
	const rounds = 3
	for _, n := range []int{100_000, 1_000_000} {
		b.Run("n="+itoa(n), func(b *testing.B) {
			inc := holdPattern("inc")
			ops := benchOps(n)
			run := func(kind string) time.Duration {
				var seq uint64
				q, err := New[benchItem](kind, benchLess, benchKey)
				if err != nil {
					b.Fatal(err)
				}
				prefill(q, n, &seq)
				hold(q, inc, ops/4, &seq)
				best := time.Duration(0)
				for r := 0; r < rounds; r++ {
					start := time.Now()
					hold(q, inc, ops, &seq)
					if d := time.Since(start); best == 0 || d < best {
						best = d
					}
				}
				return best
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				splay := run("splay")
				ladder := run("ladder")
				b.ReportMetric(float64(splay)/float64(ladder), "speedup")
				b.ReportMetric(float64(ladder.Nanoseconds())/float64(ops), "ns/hold")
			}
		})
	}
}

func itoa(n int) string { return strconv.Itoa(n) }
