// Package eventq provides the pending-event priority queues used by the
// Time Warp kernel: a binary heap, a splay tree and a ladder queue, all
// parameterised over the element type and a strict-weak-ordering
// comparison function.
//
// ROSS ships a splay tree as its default pending queue and a heap as an
// alternative; the ladder queue (Tang, Goh & Thng) is the calendar-family
// structure whose Push/Pop are amortised O(1) for the PDES access pattern
// (mostly-increasing inserts with occasional rollback re-insertions). All
// three are provided so the event-queue ablation benchmark can compare
// them under that pattern.
//
// Queues are not safe for concurrent use; each processing element owns one.
package eventq

import (
	"fmt"
	"strings"
)

// Queue is the interface the kernel schedules through. Min returns the
// smallest element without removing it; Pop removes and returns it. Both
// return the zero value and false when the queue is empty.
type Queue[T any] interface {
	Push(T)
	Min() (T, bool)
	Pop() (T, bool)
	Len() int
	// Each visits every element in unspecified order; used by the
	// kernel's invariant checker and by diagnostics. The queue must not
	// be mutated during the visit.
	Each(func(T))
}

// BulkDrainer is optionally implemented by queues that can pop an entire
// prefix cheaply. BulkDrain removes every element comparing strictly
// before upTo, in exactly Pop order, calling fn on each as it is removed.
// fn may Push new elements, provided every pushed element compares
// strictly after the element just delivered (the kernel's causality rule:
// sends carry strictly positive delays); pushed elements still below upTo
// are delivered later in the same drain. The ladder implements this
// without per-element rebalancing — delivery walks the sorted Bottom run,
// refilling it bucket-at-a-time; a comparison-based queue gains nothing,
// so heap and splay rely on the Drain fallback instead.
type BulkDrainer[T any] interface {
	BulkDrain(upTo T, fn func(T))
}

// Drain pops every element of q comparing strictly before upTo (under
// less, which must be q's own ordering), in Pop order, calling fn on each.
// Queues implementing BulkDrainer take their fast path; anything else
// falls back to an equivalent Min/Pop loop. fn may Push, under the
// BulkDrainer contract.
func Drain[T any](q Queue[T], upTo T, less func(a, b T) bool, fn func(T)) {
	if bd, ok := q.(BulkDrainer[T]); ok {
		bd.BulkDrain(upTo, fn)
		return
	}
	for {
		v, ok := q.Min()
		if !ok || !less(v, upTo) {
			return
		}
		q.Pop()
		fn(v)
	}
}

// DefaultKind is the queue an empty kind name selects.
const DefaultKind = "splay"

// kindSpec is one registry entry; registry is the single place a queue
// kind is declared — Kinds, Valid and New all derive from it, so adding a
// kind is exactly one edit here.
type kindSpec[T any] struct {
	name string
	// needsKey marks kinds whose constructor requires the key projection
	// (calendar-family structures bucket by a numeric key; comparison-only
	// kinds ignore it).
	needsKey bool
	build    func(less func(a, b T) bool, key func(T) float64) Queue[T]
}

func registry[T any]() []kindSpec[T] {
	return []kindSpec[T]{
		{name: "heap", build: func(less func(a, b T) bool, _ func(T) float64) Queue[T] { return NewHeap(less) }},
		{name: "ladder", needsKey: true, build: func(less func(a, b T) bool, key func(T) float64) Queue[T] { return NewLadder(less, key) }},
		{name: "splay", build: func(less func(a, b T) bool, _ func(T) float64) Queue[T] { return NewSplay(less) }},
	}
}

// Kinds returns the registered queue kinds in registry order.
func Kinds() []string {
	specs := registry[struct{}]()
	names := make([]string, len(specs))
	for i, s := range specs {
		names[i] = s.name
	}
	return names
}

// Valid reports whether kind names a registered queue (or is empty, which
// selects DefaultKind); the error enumerates the valid kinds.
func Valid(kind string) error {
	if kind == "" {
		return nil
	}
	for _, s := range registry[struct{}]() {
		if s.name == kind {
			return nil
		}
	}
	return fmt.Errorf("eventq: unknown queue kind %q (valid: %s)", kind, strings.Join(Kinds(), ", "))
}

// New returns a queue of the named kind, defaulting to DefaultKind for an
// empty name. key projects an element to the numeric priority the
// calendar-family kinds bucket by; it must be monotone with respect to
// less (key(a) < key(b) implies less(a, b)) and may be nil for kinds that
// only compare — asking for a kind that needs it without one is an error.
func New[T any](kind string, less func(a, b T) bool, key func(T) float64) (Queue[T], error) {
	if kind == "" {
		kind = DefaultKind
	}
	for _, s := range registry[T]() {
		if s.name != kind {
			continue
		}
		if s.needsKey && key == nil {
			return nil, fmt.Errorf("eventq: queue kind %q requires a key projection", kind)
		}
		return s.build(less, key), nil
	}
	return nil, Valid(kind)
}

// Heap is a classic array-backed binary min-heap. Elements comparing equal
// pop in an order that is a pure function of the operation sequence — two
// runs issuing identical Push/Pop sequences drain identically — but NOT
// insertion order: sift-up and sift-down stop at equal elements, so a
// rollback re-insertion can overtake an older equal. The kernel is immune
// by construction (its comparator — recvTime, then destination, source and
// sequence number — is a total order, so equal elements never occur), but
// model-level users with partial keys must not read FIFO semantics into
// ties; use the splay tree if insertion order among equals matters.
type Heap[T any] struct {
	less  func(a, b T) bool
	items []T
}

// NewHeap returns an empty heap ordered by less.
func NewHeap[T any](less func(a, b T) bool) *Heap[T] {
	return &Heap[T]{less: less}
}

// Len returns the number of elements in the heap.
func (h *Heap[T]) Len() int { return len(h.items) }

// Push inserts v.
func (h *Heap[T]) Push(v T) {
	h.items = append(h.items, v)
	h.up(len(h.items) - 1)
}

// Min returns the smallest element without removing it.
func (h *Heap[T]) Min() (T, bool) {
	if len(h.items) == 0 {
		var zero T
		return zero, false
	}
	return h.items[0], true
}

// Pop removes and returns the smallest element.
func (h *Heap[T]) Pop() (T, bool) {
	if len(h.items) == 0 {
		var zero T
		return zero, false
	}
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	var zero T
	h.items[last] = zero // release reference for GC
	h.items = h.items[:last]
	if last > 0 {
		h.down(0)
	}
	return top, true
}

// Each visits every element in array order.
func (h *Heap[T]) Each(fn func(T)) {
	for _, v := range h.items {
		fn(v)
	}
}

func (h *Heap[T]) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(h.items[i], h.items[parent]) {
			return
		}
		h.items[i], h.items[parent] = h.items[parent], h.items[i]
		i = parent
	}
}

func (h *Heap[T]) down(i int) {
	n := len(h.items)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		smallest := left
		if right := left + 1; right < n && h.less(h.items[right], h.items[left]) {
			smallest = right
		}
		if !h.less(h.items[smallest], h.items[i]) {
			return
		}
		h.items[i], h.items[smallest] = h.items[smallest], h.items[i]
		i = smallest
	}
}

// Splay is a bottom-less top-down splay tree keyed by the comparison
// function. Equal elements are permitted; an element inserted equal to
// existing ones lands after ALL of them, so Pop returns equal elements in
// insertion order — FIFO ties. The kernel does not rely on this (its
// comparator is a total order, so ties never occur there), but models and
// tests with partial keys get a contract they can reason about.
type Splay[T any] struct {
	less func(a, b T) bool
	root *splayNode[T]
	n    int
}

type splayNode[T any] struct {
	v           T
	left, right *splayNode[T]
}

// NewSplay returns an empty splay tree ordered by less.
func NewSplay[T any](less func(a, b T) bool) *Splay[T] {
	return &Splay[T]{less: less}
}

// Len returns the number of elements in the tree.
func (s *Splay[T]) Len() int { return s.n }

// splay reorganises the tree so that the node closest to v (by the tree's
// ordering) becomes the root. Standard top-down splay, except that the
// search treats an element equal to v as smaller and keeps descending
// right. That guarantee is what makes Push's tie contract hold: after the
// splay, every element <= v (equals included) sits in the root's left
// spine or at the root itself, so the caller can splice a new equal node
// in after ALL existing equals, not merely after whichever equal the
// search happened to reach first.
func (s *Splay[T]) splay(v T) {
	if s.root == nil {
		return
	}
	var header splayNode[T]
	l, r := &header, &header
	t := s.root
	for {
		if s.less(v, t.v) {
			if t.left == nil {
				break
			}
			if s.less(v, t.left.v) { // rotate right
				y := t.left
				t.left = y.right
				y.right = t
				t = y
				if t.left == nil {
					break
				}
			}
			r.left = t // link right
			r = t
			t = t.left
		} else { // t.v <= v: equals descend right too
			if t.right == nil {
				break
			}
			if !s.less(v, t.right.v) { // rotate left
				y := t.right
				t.right = y.left
				y.left = t
				t = y
				if t.right == nil {
					break
				}
			}
			l.right = t // link left
			l = t
			t = t.right
		}
	}
	l.right = t.left
	r.left = t.right
	t.left = header.right
	t.right = header.left
	s.root = t
}

// Push inserts v.
func (s *Splay[T]) Push(v T) {
	n := &splayNode[T]{v: v}
	if s.root == nil {
		s.root = n
		s.n = 1
		return
	}
	s.splay(v)
	if s.less(v, s.root.v) {
		n.left = s.root.left
		n.right = s.root
		s.root.left = nil
	} else {
		n.right = s.root.right
		n.left = s.root
		s.root.right = nil
	}
	s.root = n
	s.n++
}

// splayMin brings the minimum element to the root using zig/zig-zig
// rotations down the left spine, halving the spine per pass (semi-splay),
// which preserves the amortised O(log n) bound.
func (s *Splay[T]) splayMin() {
	t := s.root
	for t != nil && t.left != nil {
		l := t.left
		if l.left != nil {
			// zig-zig: rotate l above t, then l.left above l.
			t.left = l.right
			l.right = t
			ll := l.left
			l.left = ll.right
			ll.right = l
			t = ll
		} else {
			// zig: single rotation.
			t.left = l.right
			l.right = t
			t = l
		}
	}
	s.root = t
}

// Min returns the smallest element without removing it.
func (s *Splay[T]) Min() (T, bool) {
	if s.root == nil {
		var zero T
		return zero, false
	}
	s.splayMin()
	return s.root.v, true
}

// Each visits every element in-order (ascending).
func (s *Splay[T]) Each(fn func(T)) {
	var walk func(n *splayNode[T])
	walk = func(n *splayNode[T]) {
		if n == nil {
			return
		}
		walk(n.left)
		fn(n.v)
		walk(n.right)
	}
	walk(s.root)
}

// Pop removes and returns the smallest element.
func (s *Splay[T]) Pop() (T, bool) {
	if s.root == nil {
		var zero T
		return zero, false
	}
	s.splayMin()
	v := s.root.v
	s.root = s.root.right
	s.n--
	return v, true
}
