package eventq

import (
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func intLess(a, b int) bool { return a < b }

func intKey(v int) float64 { return float64(v) }

// mustNew builds a queue of the given kind with the int ordering, failing
// the test on a constructor error.
func mustNew(t testing.TB, kind string) Queue[int] {
	t.Helper()
	q, err := New[int](kind, intLess, intKey)
	if err != nil {
		t.Fatalf("New(%q): %v", kind, err)
	}
	return q
}

// queues returns one of each registered implementation for table-driven
// tests.
func queues(t testing.TB) map[string]Queue[int] {
	m := make(map[string]Queue[int])
	for _, kind := range Kinds() {
		m[kind] = mustNew(t, kind)
	}
	return m
}

// TestKinds pins the registry contents: the three implementations, in
// deterministic order (soak schedules index into this slice by seed).
func TestKinds(t *testing.T) {
	got := Kinds()
	want := []string{"heap", "ladder", "splay"}
	if len(got) != len(want) {
		t.Fatalf("Kinds() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Kinds() = %v, want %v", got, want)
		}
	}
}

// TestEmptyQueue: Min/Pop on empty must report absence, Len must be zero.
func TestEmptyQueue(t *testing.T) {
	for name, q := range queues(t) {
		if _, ok := q.Min(); ok {
			t.Errorf("%s: Min on empty returned ok", name)
		}
		if _, ok := q.Pop(); ok {
			t.Errorf("%s: Pop on empty returned ok", name)
		}
		if q.Len() != 0 {
			t.Errorf("%s: empty Len = %d", name, q.Len())
		}
	}
}

// TestDrainIsSorted: pushing any slice and draining must yield it sorted.
func TestDrainIsSorted(t *testing.T) {
	for _, kind := range Kinds() {
		kind := kind
		prop := func(vals []int) bool {
			q := mustNew(t, kind)
			for _, v := range vals {
				q.Push(v)
			}
			if q.Len() != len(vals) {
				return false
			}
			want := append([]int(nil), vals...)
			sort.Ints(want)
			for _, w := range want {
				got, ok := q.Pop()
				if !ok || got != w {
					return false
				}
			}
			_, ok := q.Pop()
			return !ok && q.Len() == 0
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
			t.Errorf("%s: %v", kind, err)
		}
	}
}

// TestMinMatchesPop: Min must always preview exactly what Pop returns.
func TestMinMatchesPop(t *testing.T) {
	for name, q := range queues(t) {
		r := rand.New(rand.NewSource(42))
		for i := 0; i < 2000; i++ {
			q.Push(r.Intn(1000))
			if r.Intn(3) == 0 {
				m, ok1 := q.Min()
				p, ok2 := q.Pop()
				if ok1 != ok2 || m != p {
					t.Fatalf("%s: Min %v/%v != Pop %v/%v", name, m, ok1, p, ok2)
				}
			}
		}
	}
}

// TestInterleavedAgainstReference drives every implementation through a
// long random push/pop sequence in lockstep with a sorted-slice oracle.
func TestInterleavedAgainstReference(t *testing.T) {
	for name, q := range queues(t) {
		r := rand.New(rand.NewSource(7))
		var oracle []int
		for i := 0; i < 5000; i++ {
			if r.Intn(2) == 0 || len(oracle) == 0 {
				v := r.Intn(100)
				q.Push(v)
				oracle = append(oracle, v)
				sort.Ints(oracle)
			} else {
				got, ok := q.Pop()
				if !ok {
					t.Fatalf("%s: Pop failed with %d in oracle", name, len(oracle))
				}
				if got != oracle[0] {
					t.Fatalf("%s: Pop = %d, oracle %d", name, got, oracle[0])
				}
				oracle = oracle[1:]
			}
			if q.Len() != len(oracle) {
				t.Fatalf("%s: Len %d != oracle %d", name, q.Len(), len(oracle))
			}
		}
	}
}

// TestDuplicates: equal keys must all come out, ordered stably enough to
// all be equal.
func TestDuplicates(t *testing.T) {
	for name, q := range queues(t) {
		for i := 0; i < 100; i++ {
			q.Push(5)
		}
		q.Push(3)
		q.Push(7)
		if v, _ := q.Pop(); v != 3 {
			t.Fatalf("%s: first pop %d", name, v)
		}
		for i := 0; i < 100; i++ {
			if v, _ := q.Pop(); v != 5 {
				t.Fatalf("%s: dup pop %d", name, v)
			}
		}
		if v, _ := q.Pop(); v != 7 {
			t.Fatalf("%s: last pop %d", name, v)
		}
	}
}

// TestMostlyIncreasingPattern mimics the PDES access pattern: timestamps
// mostly increase, with occasional re-insertions in the past (rollbacks).
func TestMostlyIncreasingPattern(t *testing.T) {
	for name, q := range queues(t) {
		r := rand.New(rand.NewSource(99))
		now := 0
		var oracle []int
		for i := 0; i < 3000; i++ {
			if r.Intn(4) != 0 || len(oracle) == 0 {
				v := now + r.Intn(20)
				if r.Intn(20) == 0 { // straggler-style past insert
					v = now - r.Intn(5)
				}
				q.Push(v)
				oracle = append(oracle, v)
				sort.Ints(oracle)
			} else {
				got, _ := q.Pop()
				if got != oracle[0] {
					t.Fatalf("%s: pop %d want %d", name, got, oracle[0])
				}
				now = got
				oracle = oracle[1:]
			}
		}
	}
}

// TestPointerElements: the kernel stores *Event; ensure pointer elements
// and custom comparators work and popped slots are released.
func TestPointerElements(t *testing.T) {
	type ev struct{ t float64 }
	less := func(a, b *ev) bool { return a.t < b.t }
	key := func(e *ev) float64 { return e.t }
	for _, kind := range Kinds() {
		q, err := New[*ev](kind, less, key)
		if err != nil {
			t.Fatal(err)
		}
		q.Push(&ev{3})
		q.Push(&ev{1})
		q.Push(&ev{2})
		want := []float64{1, 2, 3}
		for _, w := range want {
			got, ok := q.Pop()
			if !ok || got.t != w {
				t.Fatalf("%s: got %v want %v", kind, got, w)
			}
		}
	}
}

// TestNewUnknownKind: the constructor must reject unregistered kinds with
// an error enumerating the valid ones, and Valid must agree.
func TestNewUnknownKind(t *testing.T) {
	q, err := New[int]("fibonacci", intLess, nil)
	if err == nil || q != nil {
		t.Fatalf("New(fibonacci) = %v, %v; want nil, error", q, err)
	}
	for _, kind := range Kinds() {
		if !strings.Contains(err.Error(), kind) {
			t.Fatalf("error %q does not enumerate kind %q", err, kind)
		}
	}
	if verr := Valid("fibonacci"); verr == nil {
		t.Fatal("Valid(fibonacci) = nil, want error")
	}
	for _, kind := range append(Kinds(), "") {
		if verr := Valid(kind); verr != nil {
			t.Fatalf("Valid(%q) = %v, want nil", kind, verr)
		}
	}
}

// TestLadderRequiresKey: calendar-family kinds cannot work without a key
// projection; the constructor must say so instead of crashing later.
func TestLadderRequiresKey(t *testing.T) {
	if _, err := New[int]("ladder", intLess, nil); err == nil {
		t.Fatal("New(ladder) without key projection succeeded")
	}
	// Comparison-only kinds must not require one.
	for _, kind := range []string{"heap", "splay", ""} {
		if _, err := New[int](kind, intLess, nil); err != nil {
			t.Fatalf("New(%q) with nil key: %v", kind, err)
		}
	}
}

// TestNewDefaultsToSplay: empty kind must produce a working queue of
// DefaultKind.
func TestNewDefaultsToSplay(t *testing.T) {
	if DefaultKind != "splay" {
		t.Fatalf("DefaultKind = %q", DefaultKind)
	}
	q := mustNew(t, "")
	if _, ok := q.(*Splay[int]); !ok {
		t.Fatalf("New(\"\") = %T, want *Splay", q)
	}
	q.Push(2)
	q.Push(1)
	if v, _ := q.Pop(); v != 1 {
		t.Fatalf("default queue pop = %d", v)
	}
}

// TestDrainHelper: eventq.Drain must pop exactly the strict prefix below
// upTo, in order, on every kind — BulkDrain fast path and Min/Pop
// fallback alike — and tolerate pushes from inside fn.
func TestDrainHelper(t *testing.T) {
	for _, kind := range Kinds() {
		q := mustNew(t, kind)
		for _, v := range []int{5, 1, 9, 3, 7, 3} {
			q.Push(v)
		}
		var got []int
		Drain[int](q, 6, intLess, func(v int) {
			got = append(got, v)
			if v == 1 {
				q.Push(4) // strictly after 1, still below the bound
			}
		})
		want := []int{1, 3, 3, 4, 5}
		if len(got) != len(want) {
			t.Fatalf("%s: drained %v, want %v", kind, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: drained %v, want %v", kind, got, want)
			}
		}
		if q.Len() != 2 {
			t.Fatalf("%s: %d left after drain, want 2", kind, q.Len())
		}
		if v, _ := q.Pop(); v != 7 {
			t.Fatalf("%s: post-drain pop %d, want 7", kind, v)
		}
	}
}

// TestLadderImplementsBulkDrainer pins the type assertion the kernel
// relies on: ladder has the fast path, heap and splay take the fallback.
func TestLadderImplementsBulkDrainer(t *testing.T) {
	var q Queue[int]
	q = NewLadder(intLess, intKey)
	if _, ok := q.(BulkDrainer[int]); !ok {
		t.Fatal("*Ladder does not implement BulkDrainer")
	}
	q = NewHeap(intLess)
	if _, ok := q.(BulkDrainer[int]); ok {
		t.Fatal("*Heap unexpectedly implements BulkDrainer")
	}
	q = NewSplay(intLess)
	if _, ok := q.(BulkDrainer[int]); ok {
		t.Fatal("*Splay unexpectedly implements BulkDrainer")
	}
}

// TestEachVisitsAll: Each must visit every live element exactly once,
// on every kind, including elements spread across the ladder's bands.
func TestEachVisitsAll(t *testing.T) {
	for name, q := range queues(t) {
		r := rand.New(rand.NewSource(13))
		counts := make(map[int]int)
		for i := 0; i < 500; i++ {
			v := r.Intn(1 << 16)
			q.Push(v)
			counts[v]++
		}
		// Pop some so the ladder has a partially drained Bottom, then
		// push more so Top repopulates.
		for i := 0; i < 100; i++ {
			v, _ := q.Pop()
			counts[v]--
		}
		for i := 0; i < 50; i++ {
			v := (1 << 16) + r.Intn(1<<10)
			q.Push(v)
			counts[v]++
		}
		got := make(map[int]int)
		q.Each(func(v int) { got[v]++ })
		total := 0
		for v, c := range counts {
			if got[v] != c {
				t.Fatalf("%s: Each saw %d of value %d, want %d", name, got[v], v, c)
			}
			total += c
		}
		if q.Len() != total {
			t.Fatalf("%s: Len %d != %d", name, q.Len(), total)
		}
	}
}

// TestLadderSteadyStateAllocs is the zero-alloc gate the ISSUE requires:
// after warmup grows every recycled array to its high-water mark, the
// hold pattern (Pop, then Push slightly ahead) must allocate nothing —
// rung structs, bucket arrays, Bottom, Top and the sort scratch are all
// reused in place. benchjson cannot gate a 0 allocs/op cell (it treats a
// zero field as missing), so the gate lives here as a hard test.
func TestLadderSteadyStateAllocs(t *testing.T) {
	q := NewLadder(intLess, intKey)
	r := rand.New(rand.NewSource(3))
	now := 0
	const pop = 4096
	for i := 0; i < pop; i++ {
		q.Push(now + r.Intn(1<<14))
	}
	hold := func() {
		v, _ := q.Pop()
		now = v
		q.Push(now + 1 + r.Intn(1<<14))
	}
	// Warmup: many full ladder generations (Top transfer, rung spawn,
	// Bottom refill) so every array reaches steady-state capacity.
	for i := 0; i < 20*pop; i++ {
		hold()
	}
	if avg := testing.AllocsPerRun(10000, hold); avg != 0 {
		t.Fatalf("steady-state hold allocates %v allocs/op, want 0", avg)
	}
	// BulkDrain + refill cycles must be allocation-free too. The drain
	// callback is hoisted so the measurement sees only the queue's own
	// allocations, not the test's closure literal.
	drainFn := func(v int) {
		now = v
		q.Push(now + 1 + r.Intn(1<<14))
	}
	cycle := func() {
		bound := now + 1<<12
		q.BulkDrain(bound, drainFn)
		now = bound
	}
	for i := 0; i < 200; i++ {
		cycle()
	}
	if avg := testing.AllocsPerRun(200, cycle); avg != 0 {
		t.Fatalf("steady-state BulkDrain allocates %v allocs/op, want 0", avg)
	}
}

// TestLadderDeepPast exercises rollback-style inserts far below the
// drain frontier (landing in rung buckets and the sorted Bottom) against
// the oracle, including inserts during a partially drained Bottom.
func TestLadderDeepPast(t *testing.T) {
	q := NewLadder(intLess, intKey)
	r := rand.New(rand.NewSource(21))
	var oracle []int
	push := func(v int) {
		q.Push(v)
		oracle = append(oracle, v)
		sort.Ints(oracle)
	}
	for i := 0; i < 2000; i++ {
		push(r.Intn(1 << 20))
	}
	for i := 0; i < 6000; i++ {
		switch {
		case len(oracle) == 0 || r.Intn(3) > 0:
			got, _ := q.Pop()
			if got != oracle[0] {
				t.Fatalf("step %d: pop %d want %d", i, got, oracle[0])
			}
			oracle = oracle[1:]
		case r.Intn(2) == 0 && len(oracle) > 0:
			// Straggler far in the past relative to pending min.
			push(oracle[0] + r.Intn(64) - 64)
		default:
			push(1<<20 + r.Intn(1<<20))
		}
	}
}

// TestLadderInfinityKeys: the kernel's TimeInfinity projects to +Inf;
// the ladder must order such elements last without degenerate rungs.
func TestLadderInfinityKeys(t *testing.T) {
	type ev struct{ t float64 }
	less := func(a, b *ev) bool { return a.t < b.t }
	key := func(e *ev) float64 { return e.t }
	q := NewLadder(less, key)
	inf := 1e308 * 1.5
	for i := 0; i < 200; i++ {
		q.Push(&ev{t: float64(i % 37)})
		if i%10 == 0 {
			q.Push(&ev{t: inf})
		}
	}
	prev := -1.0
	n := q.Len()
	for i := 0; i < n; i++ {
		v, ok := q.Pop()
		if !ok {
			t.Fatalf("pop %d failed", i)
		}
		if v.t < prev {
			t.Fatalf("pop %d: %v after %v", i, v.t, prev)
		}
		prev = v.t
	}
}
