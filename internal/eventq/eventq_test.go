package eventq

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func intLess(a, b int) bool { return a < b }

// queues returns one of each implementation for table-driven tests.
func queues() map[string]Queue[int] {
	return map[string]Queue[int]{
		"heap":  NewHeap(intLess),
		"splay": NewSplay(intLess),
	}
}

// TestEmptyQueue: Min/Pop on empty must report absence, Len must be zero.
func TestEmptyQueue(t *testing.T) {
	for name, q := range queues() {
		if _, ok := q.Min(); ok {
			t.Errorf("%s: Min on empty returned ok", name)
		}
		if _, ok := q.Pop(); ok {
			t.Errorf("%s: Pop on empty returned ok", name)
		}
		if q.Len() != 0 {
			t.Errorf("%s: empty Len = %d", name, q.Len())
		}
	}
}

// TestDrainIsSorted: pushing any slice and draining must yield it sorted.
func TestDrainIsSorted(t *testing.T) {
	for _, kind := range []string{"heap", "splay"} {
		kind := kind
		prop := func(vals []int) bool {
			q := New[int](kind, intLess)
			for _, v := range vals {
				q.Push(v)
			}
			if q.Len() != len(vals) {
				return false
			}
			want := append([]int(nil), vals...)
			sort.Ints(want)
			for _, w := range want {
				got, ok := q.Pop()
				if !ok || got != w {
					return false
				}
			}
			_, ok := q.Pop()
			return !ok && q.Len() == 0
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
			t.Errorf("%s: %v", kind, err)
		}
	}
}

// TestMinMatchesPop: Min must always preview exactly what Pop returns.
func TestMinMatchesPop(t *testing.T) {
	for name, q := range queues() {
		r := rand.New(rand.NewSource(42))
		for i := 0; i < 2000; i++ {
			q.Push(r.Intn(1000))
			if r.Intn(3) == 0 {
				m, ok1 := q.Min()
				p, ok2 := q.Pop()
				if ok1 != ok2 || m != p {
					t.Fatalf("%s: Min %v/%v != Pop %v/%v", name, m, ok1, p, ok2)
				}
			}
		}
	}
}

// TestInterleavedAgainstReference drives both implementations through a
// long random push/pop sequence in lockstep with a sorted-slice oracle.
func TestInterleavedAgainstReference(t *testing.T) {
	for name, q := range queues() {
		r := rand.New(rand.NewSource(7))
		var oracle []int
		for i := 0; i < 5000; i++ {
			if r.Intn(2) == 0 || len(oracle) == 0 {
				v := r.Intn(100)
				q.Push(v)
				oracle = append(oracle, v)
				sort.Ints(oracle)
			} else {
				got, ok := q.Pop()
				if !ok {
					t.Fatalf("%s: Pop failed with %d in oracle", name, len(oracle))
				}
				if got != oracle[0] {
					t.Fatalf("%s: Pop = %d, oracle %d", name, got, oracle[0])
				}
				oracle = oracle[1:]
			}
			if q.Len() != len(oracle) {
				t.Fatalf("%s: Len %d != oracle %d", name, q.Len(), len(oracle))
			}
		}
	}
}

// TestDuplicates: equal keys must all come out, ordered stably enough to
// all be equal.
func TestDuplicates(t *testing.T) {
	for name, q := range queues() {
		for i := 0; i < 100; i++ {
			q.Push(5)
		}
		q.Push(3)
		q.Push(7)
		if v, _ := q.Pop(); v != 3 {
			t.Fatalf("%s: first pop %d", name, v)
		}
		for i := 0; i < 100; i++ {
			if v, _ := q.Pop(); v != 5 {
				t.Fatalf("%s: dup pop %d", name, v)
			}
		}
		if v, _ := q.Pop(); v != 7 {
			t.Fatalf("%s: last pop %d", name, v)
		}
	}
}

// TestMostlyIncreasingPattern mimics the PDES access pattern: timestamps
// mostly increase, with occasional re-insertions in the past (rollbacks).
func TestMostlyIncreasingPattern(t *testing.T) {
	for name, q := range queues() {
		r := rand.New(rand.NewSource(99))
		now := 0
		var oracle []int
		for i := 0; i < 3000; i++ {
			if r.Intn(4) != 0 || len(oracle) == 0 {
				v := now + r.Intn(20)
				if r.Intn(20) == 0 { // straggler-style past insert
					v = now - r.Intn(5)
				}
				q.Push(v)
				oracle = append(oracle, v)
				sort.Ints(oracle)
			} else {
				got, _ := q.Pop()
				if got != oracle[0] {
					t.Fatalf("%s: pop %d want %d", name, got, oracle[0])
				}
				now = got
				oracle = oracle[1:]
			}
		}
	}
}

// TestPointerElements: the kernel stores *Event; ensure pointer elements
// and custom comparators work and popped slots are released.
func TestPointerElements(t *testing.T) {
	type ev struct{ t float64 }
	less := func(a, b *ev) bool { return a.t < b.t }
	for _, kind := range []string{"heap", "splay"} {
		q := New[*ev](kind, less)
		q.Push(&ev{3})
		q.Push(&ev{1})
		q.Push(&ev{2})
		want := []float64{1, 2, 3}
		for _, w := range want {
			got, ok := q.Pop()
			if !ok || got.t != w {
				t.Fatalf("%s: got %v want %v", kind, got, w)
			}
		}
	}
}

// TestNewUnknownKindPanics guards the factory.
func TestNewUnknownKindPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New with unknown kind did not panic")
		}
	}()
	New[int]("fibonacci", intLess)
}

// TestNewDefaultsToSplay: empty kind must produce a working queue.
func TestNewDefaultsToSplay(t *testing.T) {
	q := New[int]("", intLess)
	q.Push(2)
	q.Push(1)
	if v, _ := q.Pop(); v != 1 {
		t.Fatalf("default queue pop = %d", v)
	}
}

func benchQueue(b *testing.B, kind string) {
	q := New[int](kind, intLess)
	r := rand.New(rand.NewSource(1))
	// Hold a steady population of 4096 under the PDES hold pattern.
	for i := 0; i < 4096; i++ {
		q.Push(r.Intn(1 << 20))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v, _ := q.Pop()
		q.Push(v + r.Intn(64))
	}
}

func BenchmarkHeapHold(b *testing.B)  { benchQueue(b, "heap") }
func BenchmarkSplayHold(b *testing.B) { benchQueue(b, "splay") }
