// Package pcs implements a Personal Communication Service (cellular
// network) simulation after Carothers, Fujimoto & Lin, "A case study in
// simulating PCS networks using Time Warp" (PADS 1995) — the workload the
// report's simulation methodology descends from (its reference [4], via
// ROSS).
//
// Each logical process is a cell with a fixed number of radio channels.
// Calls arrive at each cell as a Poisson process; an engaged portable
// either completes its call in the cell or hands off mid-call to a
// neighbouring cell, where it needs a fresh channel or the call drops.
// The blocking and dropping probabilities are the model outputs.
package pcs

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/topology"
)

// Config parameterises a PCS run.
type Config struct {
	// N is the side of the N×N cell grid (wrapped into a torus so every
	// cell has four neighbours, as in the GTW/ROSS benchmarks).
	N int
	// Channels is the number of radio channels per cell.
	Channels int
	// MeanInterarrival is the mean time between fresh call arrivals at a
	// cell.
	MeanInterarrival float64
	// MeanCallDuration is the mean total call length.
	MeanCallDuration float64
	// MeanMoveTime is the mean time until an engaged portable crosses a
	// cell boundary.
	MeanMoveTime float64
	// EndTime is the virtual-time horizon.
	EndTime core.Time
	// Seed selects the random universe.
	Seed uint64

	// Kernel passthrough.
	NumPEs      int
	NumKPs      int
	BatchSize   int
	GVTInterval int
	Queue       string
	MaxOptimism core.Time
}

func (cfg *Config) defaults() error {
	if cfg.N < 2 {
		return errors.New("pcs: N must be at least 2")
	}
	if !(cfg.EndTime > 0) {
		return errors.New("pcs: EndTime must be positive")
	}
	if cfg.Channels <= 0 {
		cfg.Channels = 10
	}
	if cfg.MeanInterarrival <= 0 {
		cfg.MeanInterarrival = 1
	}
	if cfg.MeanCallDuration <= 0 {
		cfg.MeanCallDuration = 3
	}
	if cfg.MeanMoveTime <= 0 {
		cfg.MeanMoveTime = 6
	}
	return nil
}

// Kind discriminates the PCS event types.
type Kind uint8

// The event kinds.
const (
	KindNextArrival Kind = iota // cell-local Poisson arrival tick
	KindCallStart               // a fresh call requests a channel
	KindHandoffIn               // an engaged portable enters the cell
	KindCallEnd                 // an engaged call completes in this cell
	KindHandoffOut              // an engaged portable leaves the cell
)

// Msg is the PCS payload; Remaining carries the call's residual duration
// across handoffs.
type Msg struct {
	Kind      Kind
	Remaining float64
}

// Event bit flags.
const (
	bitEngaged = 0 // CallStart/HandoffIn: a channel was allocated
)

// Cell is the per-LP state.
type Cell struct {
	Busy int

	Arrivals  int64
	Blocked   int64
	Completed int64
	Dropped   int64
	HandIn    int64
	HandOut   int64
}

// Model is the PCS handler.
type Model struct {
	cfg  Config
	net  topology.Torus
	size int
}

// Build constructs the parallel simulator with the PCS model installed.
func Build(cfg Config) (*core.Simulator, *Model, error) {
	if err := cfg.defaults(); err != nil {
		return nil, nil, err
	}
	net := topology.NewTorus(cfg.N)
	sim, err := core.New(core.Config{
		NumLPs:      net.Size(),
		NumPEs:      cfg.NumPEs,
		NumKPs:      cfg.NumKPs,
		EndTime:     cfg.EndTime,
		BatchSize:   cfg.BatchSize,
		GVTInterval: cfg.GVTInterval,
		Queue:       cfg.Queue,
		Seed:        cfg.Seed,
		MaxOptimism: cfg.MaxOptimism,
	})
	if err != nil {
		return nil, nil, err
	}
	m := &Model{cfg: cfg, net: net, size: net.Size()}
	m.install(sim)
	return sim, m, nil
}

// BuildSequential constructs the sequential reference run.
func BuildSequential(cfg Config) (*core.Sequential, *Model, error) {
	if err := cfg.defaults(); err != nil {
		return nil, nil, err
	}
	net := topology.NewTorus(cfg.N)
	seq, err := core.NewSequential(core.Config{
		NumLPs:  net.Size(),
		EndTime: cfg.EndTime,
		Queue:   cfg.Queue,
		Seed:    cfg.Seed,
	})
	if err != nil {
		return nil, nil, err
	}
	m := &Model{cfg: cfg, net: net, size: net.Size()}
	m.install(seq)
	return seq, m, nil
}

func (m *Model) install(h core.Host) {
	h.ForEachLP(func(lp *core.LP) {
		lp.Handler = m
		lp.State = &Cell{}
	})
	for i := 0; i < m.size; i++ {
		// Deterministically staggered first arrival ticks.
		h.Schedule(core.LPID(i), core.Time(float64(i+1)*1e-6), &Msg{Kind: KindNextArrival})
	}
}

// Forward implements core.Handler.
func (m *Model) Forward(lp *core.LP, ev *core.Event) {
	msg := ev.Data.(*Msg)
	c := lp.State.(*Cell)
	switch msg.Kind {
	case KindNextArrival:
		// Schedule the fresh call and the next tick; the call itself
		// starts a hair later so its channel decision is a separate,
		// individually reversible event.
		lp.SendSelf(1e-9, &Msg{Kind: KindCallStart, Remaining: lp.RandExp(m.cfg.MeanCallDuration)})
		lp.SendSelf(core.Time(lp.RandExp(m.cfg.MeanInterarrival))+1e-9, &Msg{Kind: KindNextArrival})
	case KindCallStart:
		c.Arrivals++
		if c.Busy >= m.cfg.Channels {
			c.Blocked++
			return
		}
		ev.Bits.Set(bitEngaged)
		c.Busy++
		m.scheduleCallProgress(lp, msg.Remaining)
	case KindHandoffIn:
		c.HandIn++
		if c.Busy >= m.cfg.Channels {
			c.Dropped++
			return
		}
		ev.Bits.Set(bitEngaged)
		c.Busy++
		m.scheduleCallProgress(lp, msg.Remaining)
	case KindCallEnd:
		c.Busy--
		c.Completed++
	case KindHandoffOut:
		c.Busy--
		c.HandOut++
		dir := topology.Direction(lp.RandInt(0, topology.NumDirections-1))
		next := m.net.Neighbor(int(lp.ID), dir)
		lp.Send(core.LPID(next), 1e-9, &Msg{Kind: KindHandoffIn, Remaining: msg.Remaining})
	default:
		panic(fmt.Sprintf("pcs: unknown event kind %d", msg.Kind))
	}
}

// scheduleCallProgress decides whether the engaged call completes here or
// hands off first, and schedules the corresponding event.
func (m *Model) scheduleCallProgress(lp *core.LP, remaining float64) {
	move := lp.RandExp(m.cfg.MeanMoveTime)
	if move < remaining {
		lp.SendSelf(core.Time(move)+1e-9, &Msg{Kind: KindHandoffOut, Remaining: remaining - move})
	} else {
		lp.SendSelf(core.Time(remaining)+1e-9, &Msg{Kind: KindCallEnd})
	}
}

// Reverse implements core.Handler.
func (m *Model) Reverse(lp *core.LP, ev *core.Event) {
	msg := ev.Data.(*Msg)
	c := lp.State.(*Cell)
	switch msg.Kind {
	case KindNextArrival:
		// Sends are cancelled by the kernel; no state was touched.
	case KindCallStart:
		if ev.Bits.Test(bitEngaged) {
			c.Busy--
		} else {
			c.Blocked--
		}
		c.Arrivals--
	case KindHandoffIn:
		if ev.Bits.Test(bitEngaged) {
			c.Busy--
		} else {
			c.Dropped--
		}
		c.HandIn--
	case KindCallEnd:
		c.Busy++
		c.Completed--
	case KindHandoffOut:
		c.Busy++
		c.HandOut--
	}
}

// Totals aggregates the network-wide call statistics.
type Totals struct {
	Cells     int
	Arrivals  int64
	Blocked   int64
	Completed int64
	Dropped   int64
	Handoffs  int64
	Engaged   int64 // calls still in progress at the horizon

	BlockProb float64
	DropProb  float64
}

// Totals folds every cell's counters.
func (m *Model) Totals(h core.Host) Totals {
	var t Totals
	var busy int64
	h.ForEachLP(func(lp *core.LP) {
		c := lp.State.(*Cell)
		t.Cells++
		t.Arrivals += c.Arrivals
		t.Blocked += c.Blocked
		t.Completed += c.Completed
		t.Dropped += c.Dropped
		t.Handoffs += c.HandOut
		busy += int64(c.Busy)
	})
	t.Engaged = busy
	if t.Arrivals > 0 {
		t.BlockProb = float64(t.Blocked) / float64(t.Arrivals)
	}
	if t.Handoffs > 0 {
		t.DropProb = float64(t.Dropped) / float64(t.Handoffs)
	}
	return t
}

// String renders the totals.
func (t Totals) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "pcs: %d cells\n", t.Cells)
	fmt.Fprintf(&b, "  calls arrived:   %d (blocked %d, P_block=%.4f)\n", t.Arrivals, t.Blocked, t.BlockProb)
	fmt.Fprintf(&b, "  calls completed: %d, still engaged %d\n", t.Completed, t.Engaged)
	fmt.Fprintf(&b, "  handoffs:        %d (dropped %d, P_drop=%.4f)\n", t.Handoffs, t.Dropped, t.DropProb)
	return b.String()
}
