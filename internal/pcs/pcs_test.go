package pcs

import (
	"testing"

	"repro/internal/core"
)

func snapshot(h core.Host) []Cell {
	out := make([]Cell, h.NumLPs())
	for i := range out {
		out[i] = *h.LP(core.LPID(i)).State.(*Cell)
	}
	return out
}

// TestParallelMatchesSequential: the PCS model must be rollback-exact too.
func TestParallelMatchesSequential(t *testing.T) {
	cfg := Config{N: 6, Channels: 4, MeanInterarrival: 0.5, EndTime: 40, Seed: 23}
	seq, _, err := BuildSequential(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := seq.Run(); err != nil {
		t.Fatal(err)
	}
	want := snapshot(seq)

	for _, pes := range []int{2, 4} {
		pcfg := cfg
		pcfg.NumPEs = pes
		pcfg.NumKPs = 4 * pes
		pcfg.BatchSize = 4
		pcfg.GVTInterval = 2
		sim, _, err := Build(pcfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sim.Run(); err != nil {
			t.Fatal(err)
		}
		got := snapshot(sim)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("pes=%d cell %d: %+v != %+v", pes, i, got[i], want[i])
			}
		}
	}
}

// TestCallConservation: every admitted call is eventually completed,
// dropped, or still engaged at the horizon (handoffs travel in 1ns, so
// in-flight calls at the horizon are negligible and tolerated via slack).
func TestCallConservation(t *testing.T) {
	cfg := Config{N: 8, Channels: 6, MeanInterarrival: 0.8, EndTime: 60, Seed: 5}
	seq, m, err := BuildSequential(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := seq.Run(); err != nil {
		t.Fatal(err)
	}
	tot := m.Totals(seq)
	admitted := tot.Arrivals - tot.Blocked
	accounted := tot.Completed + tot.Dropped + tot.Engaged
	diff := admitted - accounted
	if diff < 0 || diff > 4 {
		t.Fatalf("conservation: admitted %d, accounted %d", admitted, accounted)
	}
	if tot.Arrivals == 0 {
		t.Fatal("no calls arrived")
	}
}

// TestBlockingGrowsWithLoad: fewer channels must mean more blocking — the
// Erlang-loss shape the model exists to produce.
func TestBlockingGrowsWithLoad(t *testing.T) {
	run := func(channels int) Totals {
		cfg := Config{N: 6, Channels: channels, MeanInterarrival: 0.4, MeanCallDuration: 3, EndTime: 80, Seed: 9}
		seq, m, err := BuildSequential(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := seq.Run(); err != nil {
			t.Fatal(err)
		}
		return m.Totals(seq)
	}
	tight := run(2)
	roomy := run(30)
	if tight.BlockProb <= roomy.BlockProb {
		t.Fatalf("blocking with 2 channels (%.4f) <= with 30 (%.4f)", tight.BlockProb, roomy.BlockProb)
	}
	if tight.BlockProb == 0 {
		t.Fatal("overloaded cell never blocked")
	}
}

// TestBusyNeverExceedsChannels: channel occupancy is bounded — checked on
// the final state of every cell plus implied by the admission logic.
func TestBusyNeverExceedsChannels(t *testing.T) {
	cfg := Config{N: 6, Channels: 3, MeanInterarrival: 0.3, EndTime: 50, Seed: 2}
	seq, _, err := BuildSequential(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := seq.Run(); err != nil {
		t.Fatal(err)
	}
	for _, c := range snapshot(seq) {
		if c.Busy < 0 || c.Busy > cfg.Channels {
			t.Fatalf("cell busy count %d out of [0,%d]", c.Busy, cfg.Channels)
		}
	}
}

// TestHandoffsOccur: with move time comparable to call duration, handoffs
// must actually happen, and dropped <= handoffs.
func TestHandoffsOccur(t *testing.T) {
	cfg := Config{N: 6, MeanMoveTime: 2, MeanCallDuration: 4, EndTime: 60, Seed: 7}
	seq, m, err := BuildSequential(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := seq.Run(); err != nil {
		t.Fatal(err)
	}
	tot := m.Totals(seq)
	if tot.Handoffs == 0 {
		t.Fatal("no handoffs")
	}
	if tot.Dropped > tot.Handoffs {
		t.Fatalf("dropped %d > handoffs %d", tot.Dropped, tot.Handoffs)
	}
	if s := tot.String(); len(s) == 0 {
		t.Fatal("empty rendering")
	}
}

// TestConfigValidation covers the guard rails.
func TestConfigValidation(t *testing.T) {
	if _, _, err := Build(Config{N: 1, EndTime: 10}); err == nil {
		t.Fatal("N=1 accepted")
	}
	if _, _, err := Build(Config{N: 4}); err == nil {
		t.Fatal("zero EndTime accepted")
	}
	cfg := Config{N: 4, EndTime: 10}
	if err := cfg.defaults(); err != nil {
		t.Fatal(err)
	}
	if cfg.Channels != 10 || cfg.MeanCallDuration != 3 || cfg.MeanMoveTime != 6 {
		t.Fatalf("defaults wrong: %+v", cfg)
	}
}
