package rng_test

import (
	"fmt"

	"repro/internal/rng"
)

// Example demonstrates the property the kernel is built on: Reverse
// rewinds the stream exactly, so replay reproduces the same values.
func Example() {
	st := rng.NewStream(42)
	a := st.Integer(0, 99)
	b := st.Integer(0, 99)
	st.Reverse(2) // roll both draws back
	fmt.Println(st.Integer(0, 99) == a, st.Integer(0, 99) == b)
	// Output: true true
}
