package rng

import "testing"

// FuzzReversibleRNG checks the property the Time Warp kernel's rollback
// machinery rests on: for an arbitrary sequence of draws of arbitrary
// kinds, reversing them in exact reverse order restores the generator
// state bit-for-bit at every intermediate point, all the way back to the
// initial state, with the draw counter in agreement throughout.
func FuzzReversibleRNG(f *testing.F) {
	f.Add(uint64(0), []byte{})
	f.Add(uint64(1), []byte{0, 1, 2, 3})
	f.Add(uint64(0xDEADBEEF), []byte{3, 3, 3, 0, 2, 1})
	f.Add(^uint64(0), []byte{255, 128, 64, 7, 9, 11, 13})
	f.Fuzz(func(t *testing.T, id uint64, ops []byte) {
		if len(ops) > 1024 {
			ops = ops[:1024]
		}
		draw := func(s *Stream, op byte) {
			switch op % 4 {
			case 0:
				s.Uniform()
			case 1:
				s.Integer(int64(op)-7, int64(op)+11)
			case 2:
				s.Exponential(0.25 + float64(op))
			case 3:
				s.Bool(float64(op) / 255)
			}
		}

		s := NewStream(id)
		states := make([][4]uint64, 0, len(ops)+1)
		states = append(states, s.State())
		for _, op := range ops {
			draw(s, op)
			states = append(states, s.State())
		}
		if s.Draws() != uint64(len(ops)) {
			t.Fatalf("draw counter %d after %d draws", s.Draws(), len(ops))
		}

		// Unwind one draw at a time, the way event-by-event rollback does,
		// checking every intermediate state.
		for i := len(ops); i > 0; i-- {
			s.Reverse(1)
			if s.State() != states[i-1] {
				t.Fatalf("state after reversing draw %d: got %x want %x", i, s.State(), states[i-1])
			}
			if s.Draws() != uint64(i-1) {
				t.Fatalf("draw counter after reversing draw %d: got %d want %d", i, s.Draws(), i-1)
			}
		}

		// Block reversal (how the kernel rewinds a whole event's draws)
		// must land on the same state as stepwise reversal.
		s2 := NewStream(id)
		for _, op := range ops {
			draw(s2, op)
		}
		s2.Reverse(uint64(len(ops)))
		if s2.State() != states[0] || s2.Draws() != 0 {
			t.Fatalf("block Reverse(%d): state %x draws %d, want %x draws 0",
				len(ops), s2.State(), s2.Draws(), states[0])
		}

		// Replaying after a rewind must reproduce the original trajectory
		// (rollback followed by re-execution).
		for i, op := range ops {
			draw(s2, op)
			if s2.State() != states[i+1] {
				t.Fatalf("replay diverged at draw %d", i+1)
			}
		}
	})
}
