package rng

import (
	"math"
	"testing"
	"testing/quick"
)

// TestReverseIsExactInverse: the defining property — after any mixture of
// draws, Reverse restores the exact generator state.
func TestReverseIsExactInverse(t *testing.T) {
	prop := func(stream uint16, warmup uint8, n uint8) bool {
		st := NewStream(uint64(stream))
		for i := 0; i < int(warmup); i++ {
			st.Uniform()
		}
		before := st.State()
		draws := st.Draws()
		for i := 0; i < int(n); i++ {
			switch i % 4 {
			case 0:
				st.Uniform()
			case 1:
				st.Integer(0, 100)
			case 2:
				st.Exponential(2.5)
			case 3:
				st.Bool(0.5)
			}
		}
		st.Reverse(uint64(n))
		return st.State() == before && st.Draws() == draws
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestReverseReplaysIdentically: after reversing, the stream must emit the
// exact same values again.
func TestReverseReplaysIdentically(t *testing.T) {
	st := NewStream(7)
	const n = 1000
	first := make([]float64, n)
	for i := range first {
		first[i] = st.Uniform()
	}
	st.Reverse(n)
	for i := range first {
		if v := st.Uniform(); v != first[i] {
			t.Fatalf("draw %d: replay %v != original %v", i, v, first[i])
		}
	}
}

// TestEachMethodIsOneDraw: the kernel's automatic rewind counts one step
// per public drawing call; every method must consume exactly one.
func TestEachMethodIsOneDraw(t *testing.T) {
	st := NewStream(1)
	checks := []func(){
		func() { st.Uniform() },
		func() { st.Integer(5, 9) },
		func() { st.Exponential(1) },
		func() { st.Bool(0.3) },
	}
	for i, fn := range checks {
		before := st.Draws()
		fn()
		if st.Draws() != before+1 {
			t.Fatalf("method %d consumed %d draws", i, st.Draws()-before)
		}
	}
}

// TestUniformRange: outputs lie strictly inside (0, 1).
func TestUniformRange(t *testing.T) {
	st := NewStream(3)
	for i := 0; i < 100000; i++ {
		u := st.Uniform()
		if u <= 0 || u >= 1 {
			t.Fatalf("draw %d out of range: %v", i, u)
		}
	}
}

// TestUniformMoments: sample mean and variance must be near 1/2 and 1/12.
func TestUniformMoments(t *testing.T) {
	st := NewStream(4)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		u := st.Uniform()
		sum += u
		sumSq += u * u
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-0.5) > 0.005 {
		t.Errorf("mean = %v", mean)
	}
	if math.Abs(variance-1.0/12) > 0.005 {
		t.Errorf("variance = %v", variance)
	}
}

// TestIntegerBoundsProperty: Integer stays in [lo, hi] for arbitrary
// bounds, and hits both endpoints for small ranges.
func TestIntegerBoundsProperty(t *testing.T) {
	st := NewStream(5)
	prop := func(a int32, span uint8) bool {
		lo := int64(a)
		hi := lo + int64(span)
		v := st.Integer(lo, hi)
		return v >= lo && v <= hi
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
	seen := map[int64]bool{}
	for i := 0; i < 1000; i++ {
		seen[st.Integer(0, 3)] = true
	}
	for v := int64(0); v <= 3; v++ {
		if !seen[v] {
			t.Errorf("Integer(0,3) never produced %d", v)
		}
	}
}

// TestIntegerDegenerateRange: lo == hi must return lo and still consume a
// draw (so branch-free reverse counting works).
func TestIntegerDegenerateRange(t *testing.T) {
	st := NewStream(6)
	before := st.Draws()
	if v := st.Integer(42, 42); v != 42 {
		t.Fatalf("Integer(42,42) = %d", v)
	}
	if st.Draws() != before+1 {
		t.Fatal("degenerate Integer did not consume a draw")
	}
}

// TestIntegerPanicsOnBadRange guards the precondition.
func TestIntegerPanicsOnBadRange(t *testing.T) {
	st := NewStream(6)
	defer func() {
		if recover() == nil {
			t.Fatal("Integer(9, 5) did not panic")
		}
	}()
	st.Integer(9, 5)
}

// TestExponentialMoments: mean of Exponential(m) must be near m, and all
// values positive.
func TestExponentialMoments(t *testing.T) {
	st := NewStream(8)
	const n = 200000
	const mean = 3.5
	var sum float64
	for i := 0; i < n; i++ {
		v := st.Exponential(mean)
		if v <= 0 {
			t.Fatalf("non-positive exponential %v", v)
		}
		sum += v
	}
	if got := sum / n; math.Abs(got-mean) > 0.05 {
		t.Errorf("exponential mean = %v, want ~%v", got, mean)
	}
}

// TestBoolProbability: Bool(p) frequency must track p.
func TestBoolProbability(t *testing.T) {
	st := NewStream(9)
	for _, p := range []float64{0.1, 0.5, 0.9} {
		hits := 0
		const n = 100000
		for i := 0; i < n; i++ {
			if st.Bool(p) {
				hits++
			}
		}
		if got := float64(hits) / n; math.Abs(got-p) > 0.01 {
			t.Errorf("Bool(%v) frequency %v", p, got)
		}
	}
}

// TestStreamsDiffer: distinct stream IDs must produce distinct sequences.
func TestStreamsDiffer(t *testing.T) {
	a, b := NewStream(0), NewStream(1)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uniform() == b.Uniform() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams 0 and 1 agreed on %d of 100 draws", same)
	}
}

// TestStreamsReproducible: the same ID always yields the same sequence.
func TestStreamsReproducible(t *testing.T) {
	a, b := NewStream(77), NewStream(77)
	for i := 0; i < 1000; i++ {
		if a.Uniform() != b.Uniform() {
			t.Fatalf("stream 77 not reproducible at draw %d", i)
		}
	}
}

// TestSeedStreamResets: SeedStream must restore the exact initial state.
func TestSeedStreamResets(t *testing.T) {
	st := NewStream(13)
	first := st.Uniform()
	for i := 0; i < 500; i++ {
		st.Uniform()
	}
	st.SeedStream(13)
	if st.Draws() != 0 {
		t.Fatal("SeedStream did not reset the draw count")
	}
	if got := st.Uniform(); got != first {
		t.Fatalf("after reseed first draw %v != %v", got, first)
	}
}

// TestStreamJumpConsistency: stream k must equal stream 0 advanced by
// k * 2^41 steps. Verifying the full jump is infeasible; instead check the
// jump arithmetic directly against iterated squaring for small multiples.
func TestStreamJumpConsistency(t *testing.T) {
	// a^(2*spacing) computed two ways.
	for i := range clcg4M {
		twice := powMod(clcg4A[i], streamSpacing, clcg4M[i])
		twice = twice * twice % clcg4M[i]
		direct := powMod(powMod(clcg4A[i], streamSpacing, clcg4M[i]), 2, clcg4M[i])
		if twice != direct {
			t.Fatalf("component %d: jump arithmetic inconsistent", i)
		}
	}
	// And stream 2's state must equal stream 1 jumped once more.
	s1 := NewStream(1)
	s2 := NewStream(2)
	st := s1.State()
	for i := range st {
		jump := powMod(clcg4A[i], streamSpacing, clcg4M[i])
		st[i] = st[i] * jump % clcg4M[i]
	}
	if st != s2.State() {
		t.Fatal("stream 2 != stream 1 advanced by one spacing")
	}
}

// TestPowMod checks the modular exponentiation helper against small cases.
func TestPowMod(t *testing.T) {
	cases := []struct{ b, e, m, want uint64 }{
		{2, 10, 1000, 24},
		{3, 0, 7, 1},
		{5, 1, 7, 5},
		{7, 3, 11, 2}, // 343 mod 11
		{10, 9, 6, 4}, // 10^9 mod 6
		{45991, 2147483645, 2147483647, powMod(45991, 2147483645, 2147483647)},
	}
	for _, c := range cases {
		if got := powMod(c.b, c.e, c.m); got != c.want {
			t.Errorf("powMod(%d,%d,%d) = %d, want %d", c.b, c.e, c.m, got, c.want)
		}
	}
	// Fermat inverse property: a * a^(m-2) ≡ 1 (mod m) for prime m.
	for i := range clcg4M {
		if clcg4A[i]*clcg4B[i]%clcg4M[i] != 1 {
			t.Errorf("component %d: inverse multiplier wrong", i)
		}
	}
}

// TestComponentStatesNeverZero: a zero component state would stick at zero
// forever; the moduli/seeds guarantee it never happens.
func TestComponentStatesNeverZero(t *testing.T) {
	st := NewStream(21)
	for i := 0; i < 50000; i++ {
		st.Uniform()
		for j, s := range st.State() {
			if s == 0 {
				t.Fatalf("component %d hit zero at draw %d", j, i)
			}
		}
	}
}

func BenchmarkUniform(b *testing.B) {
	st := NewStream(1)
	for i := 0; i < b.N; i++ {
		st.Uniform()
	}
}

func BenchmarkReverse(b *testing.B) {
	st := NewStream(1)
	for i := 0; i < b.N; i++ {
		st.Uniform()
		st.Reverse(1)
	}
}
