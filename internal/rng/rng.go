// Package rng implements the reversible pseudo-random number generator used
// by the Time Warp kernel, modelled on ROSS's CLCG4 generator
// (L'Ecuyer & Andres, "A random number generator based on the combination
// of four LCGs", Mathematics and Computers in Simulation, 1997).
//
// Reversibility is the property the kernel depends on: every draw advances
// each of the four component LCGs by exactly one multiplication, and
// Reverse undoes draws exactly by multiplying with the precomputed modular
// inverse of each multiplier. A logical process that is rolled back k draws
// therefore returns to the precise generator state it had before, which is
// what makes reverse computation (rather than state saving) possible.
//
// Every public drawing method (Uniform, Integer, Exponential, Bool) consumes
// exactly one underlying generator step, so the kernel can undo a handler's
// randomness by counting its draws and calling Reverse with that count.
package rng

import (
	"fmt"
	"math"
)

// Component moduli and multipliers of the combined generator.
var clcg4M = [4]uint64{2147483647, 2147483543, 2147483423, 2147483323}
var clcg4A = [4]uint64{45991, 207707, 138556, 49689}

// clcg4B holds the modular inverses of the multipliers, computed once at
// package initialisation: b[i] = a[i]^(m[i]-2) mod m[i] (Fermat inverse;
// every modulus is prime).
var clcg4B [4]uint64

// clcg4Norm holds 1/m[i] for the output combination.
var clcg4Norm [4]float64

func init() {
	for i := range clcg4M {
		clcg4B[i] = powMod(clcg4A[i], clcg4M[i]-2, clcg4M[i])
		clcg4Norm[i] = 1.0 / float64(clcg4M[i])
	}
}

// powMod returns base^exp mod m using binary exponentiation. All operands
// are below 2^31, so intermediate products fit comfortably in a uint64.
func powMod(base, exp, m uint64) uint64 {
	result := uint64(1)
	base %= m
	for exp > 0 {
		if exp&1 == 1 {
			result = result * base % m
		}
		base = base * base % m
		exp >>= 1
	}
	return result
}

// defaultSeed is the canonical initial state of stream 0, taken from the
// L'Ecuyer–Andres reference implementation.
var defaultSeed = [4]uint64{11111111, 22222222, 33333333, 44444444}

// streamSpacing is the per-stream jump distance. Adjacent streams are
// 2^41 steps apart, far beyond any single simulation's consumption, so
// per-LP streams never overlap.
const streamSpacing = uint64(1) << 41

// Stream is one reversible random stream. Each logical process in a
// simulation owns its own Stream so that event-processing order across
// processors cannot perturb the random sequence any LP observes.
//
// A Stream is not safe for concurrent use; the kernel guarantees each LP is
// only ever touched by one processor at a time.
type Stream struct {
	s     [4]uint64
	draws uint64 // net draws since creation (draws - reversals)
}

// NewStream returns the stream with the given identifier. Stream i starts
// 2^41*i steps into the base CLCG4 sequence; the jump is computed in
// O(log spacing) time with modular exponentiation.
func NewStream(id uint64) *Stream {
	st := &Stream{}
	st.SeedStream(id)
	return st
}

// SeedStream resets the stream to the initial state of stream id.
func (st *Stream) SeedStream(id uint64) {
	for i := range st.s {
		// a^(id * spacing) mod m, computed as (a^spacing)^id to keep the
		// exponent within uint64 without overflow concerns.
		jump := powMod(powMod(clcg4A[i], streamSpacing, clcg4M[i]), id, clcg4M[i])
		st.s[i] = defaultSeed[i] * jump % clcg4M[i]
	}
	st.draws = 0
}

// State returns the four component states; useful for checkpointing and in
// tests that assert exact reversal.
func (st *Stream) State() [4]uint64 { return st.s }

// Draws returns the net number of draws consumed so far.
func (st *Stream) Draws() uint64 { return st.draws }

// step advances every component LCG by one multiplication and returns the
// combined uniform variate in (0, 1).
func (st *Stream) step() float64 {
	u := 0.0
	sign := 1.0
	for i := range st.s {
		st.s[i] = clcg4A[i] * st.s[i] % clcg4M[i]
		u += sign * float64(st.s[i]) * clcg4Norm[i]
		sign = -sign
	}
	// Fold the combination into (0,1). u is in (-2, 2) before folding.
	u -= math.Floor(u)
	if u <= 0 {
		// Guard against an exact 0 after folding; the component states are
		// never zero, so nudging to the smallest representable step keeps
		// the output strictly positive (required by Exponential).
		u = 0.5 * clcg4Norm[0]
	}
	st.draws++
	return u
}

// unstep moves every component LCG back by one multiplication.
func (st *Stream) unstep() {
	for i := range st.s {
		st.s[i] = clcg4B[i] * st.s[i] % clcg4M[i]
	}
	st.draws--
}

// Uniform returns a uniform variate in (0, 1), consuming one draw.
func (st *Stream) Uniform() float64 { return st.step() }

// Integer returns a uniform integer in [lo, hi] inclusive, consuming one
// draw. It panics if hi < lo.
func (st *Stream) Integer(lo, hi int64) int64 {
	if hi < lo {
		panic("rng: Integer called with hi < lo")
	}
	span := uint64(hi-lo) + 1
	v := int64(st.step() * float64(span))
	if v >= int64(span) { // defensive: floating point edge at u -> 1
		v = int64(span) - 1
	}
	return lo + v
}

// Exponential returns an exponential variate with the given mean,
// consuming one draw.
func (st *Stream) Exponential(mean float64) float64 {
	return -mean * math.Log(st.step())
}

// Bool returns true with probability p, consuming one draw.
func (st *Stream) Bool(p float64) bool { return st.step() < p }

// Restore sets the stream to a previously captured (State, Draws) pair, as
// used by checkpoint resume. Each component state must lie in [1, m_i-1] —
// 0 is an absorbing state the generator can never reach, and anything at or
// above the modulus is not a residue at all — so a corrupted checkpoint is
// rejected here rather than silently degrading the stream.
func (st *Stream) Restore(state [4]uint64, draws uint64) error {
	for i, s := range state {
		if s == 0 || s >= clcg4M[i] {
			return fmt.Errorf("rng: component %d state %d outside [1, %d]", i, s, clcg4M[i]-1)
		}
	}
	st.s = state
	st.draws = draws
	return nil
}

// Reverse undoes the last n draws exactly. After Reverse(n) the stream
// produces the same sequence it produced after the corresponding earlier
// point. Reversing more draws than were ever taken walks the underlying
// sequence backwards past the seed, which is well defined but almost
// certainly a caller bug; the kernel never does it.
func (st *Stream) Reverse(n uint64) {
	for i := uint64(0); i < n; i++ {
		st.unstep()
	}
}
