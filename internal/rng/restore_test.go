package rng

import "testing"

// TestRestoreRoundTrip proves Restore reproduces a captured stream exactly:
// the restored stream emits the same sequence the original would have.
func TestRestoreRoundTrip(t *testing.T) {
	src := NewStream(3)
	for i := 0; i < 100; i++ {
		src.Uniform()
	}
	state, draws := src.State(), src.Draws()

	var want [32]float64
	for i := range want {
		want[i] = src.Uniform()
	}

	dst := NewStream(99) // deliberately different starting point
	if err := dst.Restore(state, draws); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if dst.Draws() != draws {
		t.Fatalf("Draws after restore = %d, want %d", dst.Draws(), draws)
	}
	for i := range want {
		if got := dst.Uniform(); got != want[i] {
			t.Fatalf("draw %d after restore = %v, want %v", i, got, want[i])
		}
	}
}

// TestRestoreRejectsBadState proves the range validation: zero components
// and components at or above the modulus must be rejected, leaving the
// stream untouched.
func TestRestoreRejectsBadState(t *testing.T) {
	for i := 0; i < 4; i++ {
		for _, bad := range []uint64{0, clcg4M[i], clcg4M[i] + 17} {
			st := NewStream(1)
			before := st.State()
			s := [4]uint64{1, 1, 1, 1}
			s[i] = bad
			if err := st.Restore(s, 5); err == nil {
				t.Fatalf("Restore accepted component %d = %d", i, bad)
			}
			if st.State() != before || st.Draws() != 0 {
				t.Fatalf("failed Restore mutated the stream")
			}
		}
	}
}
