// Package repro is a Go reproduction of "Routing without Flow Control —
// Hot-Potato Routing Simulation Analysis" (Bush, RPI 2002), the simulation
// study of the Busch–Herlihy–Wattenhofer SPAA 2001 hot-potato routing
// algorithm on ROSS.
//
// The repository layers two systems:
//
//   - internal/core — gotw, an optimistic (Time Warp) parallel
//     discrete-event simulation kernel with reverse computation, kernel
//     processes, barrier GVT and fossil collection: the ROSS analogue.
//   - internal/hotpotato — the dynamic hot-potato routing model (four
//     priority states, home-run paths, probabilistic upgrades, continuous
//     injection) on an N×N torus or mesh.
//
// See README.md for the tour, DESIGN.md for the system inventory and
// experiment index, and EXPERIMENTS.md for paper-vs-measured results.
// The benchmarks in bench_test.go regenerate each figure's measurement at
// reduced scale; cmd/figures produces the full tables.
package repro
